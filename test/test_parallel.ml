(* Parallel sweep harness tests: the deterministic domain pool
   (ordering, clamping, exception choice), Obs.Snapshot merging, and
   the end-to-end byte-identity guarantee — the resilience grid and a
   50-seed differential sweep must produce the same bytes at
   --domains 1, 2 and 4. *)

(* ------------------------------------------------------------------ *)
(* Pool *)

let test_empty_jobs () =
  Alcotest.(check int) "no jobs, no results" 0
    (Array.length (Parallel.Pool.run_jobs ~domains:4 [||]))

let test_map_order () =
  let xs = Array.init 100 Fun.id in
  let squares = Parallel.Pool.map ~domains:4 (fun x -> x * x) xs in
  Alcotest.(check (array int))
    "results in job-index order"
    (Array.map (fun x -> x * x) xs)
    squares

let test_map_list_order () =
  let xs = List.init 37 Fun.id in
  Alcotest.(check (list int))
    "list results follow input order"
    (List.map (fun x -> x + 1) xs)
    (Parallel.Pool.map_list ~domains:3 (fun x -> x + 1) xs)

let test_more_domains_than_jobs () =
  (* the worker count clamps to the job count: with 3 jobs and 8
     requested domains only 2 extra domains spawn, and every job still
     runs exactly once *)
  let hits = Array.make 3 0 in
  let out =
    Parallel.Pool.run_jobs ~domains:8
      (Array.init 3 (fun i () ->
           hits.(i) <- hits.(i) + 1;
           i * 10))
  in
  Alcotest.(check (array int)) "results" [| 0; 10; 20 |] out;
  Alcotest.(check (array int)) "each job ran once" [| 1; 1; 1 |] hits

exception Job_failed of int

let test_exception_lowest_index () =
  (* jobs 2 and 5 both fail; the join must re-raise job 2's exception
     at any domain count, and the surviving jobs still run *)
  List.iter
    (fun domains ->
      let ran = Array.make 8 false in
      let jobs =
        Array.init 8 (fun i () ->
            ran.(i) <- true;
            if i = 2 || i = 5 then raise (Job_failed i);
            i)
      in
      (match Parallel.Pool.run_jobs ~domains jobs with
      | _ -> Alcotest.fail "expected Job_failed"
      | exception Job_failed i ->
        Alcotest.(check int)
          (Printf.sprintf "lowest-indexed failure wins at domains=%d" domains)
          2 i);
      Alcotest.(check (array bool))
        "every job still ran"
        (Array.make 8 true) ran)
    [ 1; 2; 4 ]

let test_bad_domains () =
  Alcotest.check_raises "domains < 1 rejected"
    (Invalid_argument "Parallel.Pool.run_jobs: domains < 1") (fun () ->
      ignore (Parallel.Pool.run_jobs ~domains:0 [| (fun () -> ()) |]))

(* ------------------------------------------------------------------ *)
(* Obs.Snapshot merging *)

let test_snapshot_merge () =
  let run label gauge_v extra =
    let m = Obs.Metric.create () in
    let c = Obs.Metric.counter m "chunks" in
    Obs.Metric.add c (10 * label);
    let g = Obs.Metric.gauge m "custody_bits" in
    Obs.Metric.set g gauge_v;
    let h = Obs.Metric.histogram m ~lo:0. ~hi:10. ~bins:2 "fct" in
    Obs.Metric.observe h 1.;
    Obs.Metric.observe h (float_of_int label);
    if extra then ignore (Obs.Metric.counter m "only_in_run2");
    Obs.Metric.snapshot m
  in
  let merged = Obs.Snapshot.merge [ run 1 5. false; run 2 3. true ] in
  let find name =
    (List.find (fun (s : Obs.Metric.sample) -> s.Obs.Metric.name = name) merged)
      .Obs.Metric.value
  in
  (match find "chunks" with
  | Obs.Metric.Counter_v n -> Alcotest.(check int) "counters sum" 30 n
  | _ -> Alcotest.fail "chunks should stay a counter");
  (match find "custody_bits" with
  | Obs.Metric.Gauge_v v ->
    Alcotest.(check (float 0.)) "gauges keep the peak" 5. v
  | _ -> Alcotest.fail "custody_bits should stay a gauge");
  (match find "fct" with
  | Obs.Metric.Histogram_v h ->
    Alcotest.(check int) "histogram counts sum" 4 h.Obs.Metric.count;
    Alcotest.(check (float 1e-9)) "histogram sums add" 5. h.Obs.Metric.sum;
    Alcotest.(check (float 1e-9)) "histogram mean recomputed" 1.25
      h.Obs.Metric.mean
  | _ -> Alcotest.fail "fct should stay a histogram");
  (* first-occurrence order: run 0's instruments, then run 1's new one *)
  Alcotest.(check (list string))
    "instrument order is first-occurrence"
    [ "chunks"; "custody_bits"; "fct"; "only_in_run2" ]
    (List.map (fun (s : Obs.Metric.sample) -> s.Obs.Metric.name) merged)

let test_snapshot_merge_rejects_mismatch () =
  let with_hist bins =
    let m = Obs.Metric.create () in
    ignore (Obs.Metric.histogram m ~lo:0. ~hi:10. ~bins "fct");
    Obs.Metric.snapshot m
  in
  (try
     ignore (Obs.Snapshot.merge [ with_hist 2; with_hist 4 ]);
     Alcotest.fail "bucket-edge mismatch must raise"
   with Invalid_argument _ -> ());
  let counter_m = Obs.Metric.create () in
  ignore (Obs.Metric.counter counter_m "x");
  let gauge_m = Obs.Metric.create () in
  ignore (Obs.Metric.gauge gauge_m "x");
  try
    ignore
      (Obs.Snapshot.merge
         [ Obs.Metric.snapshot counter_m; Obs.Metric.snapshot gauge_m ]);
    Alcotest.fail "kind mismatch must raise"
  with Invalid_argument _ -> ()

let test_merge_series () =
  let series label n =
    let s = Obs.Series.create ~labels:[ ("node", "3") ] "custody_bits" in
    for i = 1 to n do
      Obs.Series.add s ~time:(float_of_int i) (float_of_int (label * i))
    done;
    s
  in
  let merged =
    Obs.Snapshot.merge_series
      [ ("runA", [ series 1 3 ]); ("runB", [ series 2 5 ]) ]
  in
  Alcotest.(check int) "all series kept" 2 (List.length merged);
  let a = List.nth merged 0 and b = List.nth merged 1 in
  Alcotest.(check (list (pair string string)))
    "run label prepended"
    [ ("run", "runA"); ("node", "3") ]
    (Obs.Series.labels a);
  Alcotest.(check (list (pair string string)))
    "run order preserved"
    [ ("run", "runB"); ("node", "3") ]
    (Obs.Series.labels b);
  Alcotest.(check int) "points copied" 5 (Obs.Series.length b);
  Alcotest.(check (pair (float 0.) (float 0.)))
    "point values intact" (5., 10.)
    (Obs.Series.get b 4)

(* ------------------------------------------------------------------ *)
(* End-to-end byte-identity at several domain counts *)

let capture_resilience domains =
  Experiments.set_domains domains;
  Fun.protect
    ~finally:(fun () -> Experiments.set_domains 1)
    (fun () ->
      Experiments.capture
        (Experiments.resilience_grid ~stores:[ 100. ] ~levels:[ 0; 2 ]
           ~isp:false))

let test_resilience_grid_determinism () =
  let d1 = capture_resilience 1 in
  Alcotest.(check bool) "grid produced output" true (String.length d1 > 0);
  Alcotest.(check string) "domains=2 bytes = domains=1 bytes" d1
    (capture_resilience 2);
  Alcotest.(check string) "domains=4 bytes = domains=1 bytes" d1
    (capture_resilience 4)

let test_differential_sweep_determinism () =
  let seeds = List.init 50 Fun.id in
  let run domains =
    let v =
      Check.Differential.sweep ~domains ~seeds
        Check.Differential.queue_tie_order
    in
    Alcotest.(check bool)
      (Printf.sprintf "sweep equal at domains=%d" domains)
      true v.Check.Differential.equal;
    v.Check.Differential.detail
  in
  let d1 = run 1 in
  Alcotest.(check string) "verdict detail identical at domains=2" d1 (run 2);
  Alcotest.(check string) "verdict detail identical at domains=4" d1 (run 4)

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "empty job list" `Quick test_empty_jobs;
          Alcotest.test_case "map keeps order" `Quick test_map_order;
          Alcotest.test_case "map_list keeps order" `Quick test_map_list_order;
          Alcotest.test_case "more domains than jobs" `Quick
            test_more_domains_than_jobs;
          Alcotest.test_case "lowest-index exception wins" `Quick
            test_exception_lowest_index;
          Alcotest.test_case "domains < 1 rejected" `Quick test_bad_domains;
        ] );
      ( "snapshot-merge",
        [
          Alcotest.test_case "counters sum, gauges peak, hists sum" `Quick
            test_snapshot_merge;
          Alcotest.test_case "mismatched instruments rejected" `Quick
            test_snapshot_merge_rejects_mismatch;
          Alcotest.test_case "series gain run labels" `Quick test_merge_series;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "resilience grid at domains 1/2/4" `Quick
            test_resilience_grid_determinism;
          Alcotest.test_case "50-seed sweep at domains 1/2/4" `Quick
            test_differential_sweep_determinism;
        ] );
    ]
