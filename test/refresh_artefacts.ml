(* Regenerate test/golden/artefacts.sha256.

   Usage (from the repo root):

     dune exec test/refresh_artefacts.exe

   Runs each paper-artefact experiment in-process (same closures the
   golden regression test replays), digests the captured stdout, and
   rewrites the golden file.  Review the resulting diff before
   committing: a changed digest means the printed artefact changed. *)

let artefacts =
  [
    "table1"; "fig3"; "fig4a"; "fig4b"; "custody"; "phases"; "backpressure";
    "protocols"; "popularity"; "overload";
  ]

let () =
  let path =
    if Array.length Sys.argv > 1 then Sys.argv.(1)
    else "test/golden/artefacts.sha256"
  in
  let oc = open_out path in
  List.iter
    (fun id ->
      let run =
        match Experiments.find id with
        | Some f -> f
        | None -> failwith ("unknown experiment id " ^ id)
      in
      let digest = Check.Sha256.hex_digest (Experiments.capture run) in
      Printf.fprintf oc "%s  %s\n" digest id;
      Printf.printf "%s  %s\n%!" digest id)
    artefacts;
  close_out oc;
  Printf.printf "wrote %s\n" path
