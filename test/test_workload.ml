(* Workload engine: statistical laws and determinism.

   The law tests derive their tolerances in-test from the exact
   distributions the generators expose (Catalog.probability,
   Catalog.survival, the exponential inter-arrival moments): each
   bound is z standard errors of the estimator under the law being
   checked, z = 5 (two-sided miss probability < 1e-6 per comparison),
   never a hand-tuned margin.  Every test also runs at three distinct
   seeds — and because generation is pure, a pass is a pass forever,
   not a lucky draw. *)

let seeds = [ 7L; 101L; 9001L ]

let at_seeds name f =
  List.map
    (fun seed ->
      Alcotest.test_case
        (Printf.sprintf "%s (seed %Ld)" name seed)
        `Quick
        (fun () -> f seed))
    seeds

let z = 5.

(* ------------------------------------------------------------------ *)
(* Catalog: Zipf rank-frequency *)

(* Weighted least squares of log(empirical frequency) on log(rank).
   On the exact probabilities the slope is exactly -alpha (finite-N
   Zipf is an exact power law), so the estimator's deviation is pure
   sampling noise: log p-hat - log p ~ (p-hat - p)/p with binomial sd
   sqrt((1-p)/(N p)), and the slope is the w-weighted sum of the
   per-rank deviations.  The small additive slack covers the
   second-order term of the log linearisation. *)
let zipf_slope alpha seed =
  let n = 50 and draws = 20_000 in
  let cat = Workload.Catalog.create ~alpha ~objects:n ~seed () in
  let rng = Sim.Rng.create (Int64.add seed 1L) in
  let counts = Array.make n 0 in
  for _ = 1 to draws do
    let id = Workload.Catalog.draw cat rng in
    counts.(id) <- counts.(id) + 1
  done;
  let fn = float_of_int n in
  let x = Array.init n (fun k -> log (float_of_int (k + 1))) in
  let xbar = Array.fold_left ( +. ) 0. x /. fn in
  let sxx = Array.fold_left (fun a xi -> a +. ((xi -. xbar) ** 2.)) 0. x in
  let w = Array.map (fun xi -> (xi -. xbar) /. sxx) x in
  let slope = ref 0. and var = ref 0. in
  Array.iteri
    (fun k c ->
      if c = 0 then
        Alcotest.failf "rank %d drew no samples — widen draws" (k + 1);
      let p = Workload.Catalog.probability cat k in
      slope := !slope +. (w.(k) *. log (float_of_int c /. float_of_int draws));
      var := !var +. (w.(k) ** 2.) *. (1. -. p) /. (float_of_int draws *. p))
    counts;
  let tolerance = (z *. sqrt !var) +. 0.02 in
  if Float.abs (!slope +. alpha) > tolerance then
    Alcotest.failf "Zipf slope %.4f vs -%.2f exceeds %.4f" !slope alpha
      tolerance;
  (* and every rank's raw frequency within its own binomial bound *)
  Array.iteri
    (fun k c ->
      let p = Workload.Catalog.probability cat k in
      let se = sqrt (p *. (1. -. p) /. float_of_int draws) in
      let dev =
        Float.abs ((float_of_int c /. float_of_int draws) -. p)
      in
      if dev > (z *. se) +. (1. /. float_of_int draws) then
        Alcotest.failf "rank %d frequency off by %.5f (> %.5f)" (k + 1) dev
          ((z *. se) +. (1. /. float_of_int draws)))
    counts

let test_zipf_slope seed =
  List.iter (fun alpha -> zipf_slope alpha seed) [ 0.6; 1.0 ]

(* the probabilities the tolerance derivation leans on must themselves
   sum to one and decay monotonically *)
let test_zipf_mass () =
  let cat = Workload.Catalog.create ~alpha:0.8 ~objects:100 ~seed:1L () in
  let total = ref 0. in
  for k = 0 to 99 do
    total := !total +. Workload.Catalog.probability cat k;
    if k > 0 then
      Alcotest.(check bool) "monotone" true
        (Workload.Catalog.probability cat k
        <= Workload.Catalog.probability cat (k - 1))
  done;
  Alcotest.(check (float 1e-9)) "sums to 1" 1. !total

(* ------------------------------------------------------------------ *)
(* Catalog: bounded-Pareto chunk counts *)

(* each object's chunk count is an iid bounded-Pareto draw, so a large
   catalogue is a large sample; Catalog.survival is the exact law of
   the discretised draw, making the empirical tail a binomial whose
   standard error we can bound *)
let test_pareto_tail seed =
  let objects = 4_000 in
  let cat =
    Workload.Catalog.create ~chunk_min:4 ~chunk_max:256 ~chunk_shape:1.2
      ~objects ~seed ()
  in
  let fobjects = float_of_int objects in
  List.iter
    (fun k ->
      let p = Workload.Catalog.survival cat k in
      let tail = ref 0 in
      for id = 0 to objects - 1 do
        if Workload.Catalog.chunks cat id >= k then incr tail
      done;
      let emp = float_of_int !tail /. fobjects in
      let se = sqrt (p *. (1. -. p) /. fobjects) in
      if Float.abs (emp -. p) > (z *. se) +. (1. /. fobjects) then
        Alcotest.failf "tail mass at %d: %.5f vs exact %.5f (se %.5f)" k emp
          p se)
    [ 4; 6; 8; 12; 16; 24; 32; 64; 128; 256 ];
  (* the bounds are hard, not statistical *)
  for id = 0 to objects - 1 do
    let c = Workload.Catalog.chunks cat id in
    if c < 4 || c > 256 then Alcotest.failf "chunks %d out of bounds" c
  done

(* ------------------------------------------------------------------ *)
(* Arrivals: Poisson law and thinning *)

let test_poisson_interarrivals seed =
  let rate = 5. and n = 20_000 in
  let a = Workload.Arrivals.create ~rate ~seed () in
  let fn = float_of_int n in
  let prev = ref 0. and sum = ref 0. and sumsq = ref 0. in
  for _ = 1 to n do
    let t = Workload.Arrivals.next a in
    let gap = t -. !prev in
    if gap <= 0. then Alcotest.fail "arrivals must strictly increase";
    prev := t;
    sum := !sum +. gap;
    sumsq := !sumsq +. (gap *. gap)
  done;
  let mean = !sum /. fn in
  let var = (!sumsq /. fn) -. (mean *. mean) in
  let mu = 1. /. rate in
  (* sd of the sample mean of exponentials is mu / sqrt n *)
  let se_mean = mu /. sqrt fn in
  if Float.abs (mean -. mu) > z *. se_mean then
    Alcotest.failf "inter-arrival mean %.5f vs %.5f (se %.5f)" mean mu se_mean;
  (* Var(S^2) for exponentials ~ 8 sigma^4 / n *)
  let se_var = sqrt 8. *. mu *. mu /. sqrt fn in
  if Float.abs (var -. (mu *. mu)) > z *. se_var then
    Alcotest.failf "inter-arrival variance %.6f vs %.6f (se %.6f)" var
      (mu *. mu) se_var

(* a flash crowd multiplies the rate, so the count of arrivals inside
   the burst window is Poisson with mass boost * rate * duration —
   the thinning sampler has to reproduce it, not just the base rate *)
let test_burst_mass seed =
  let rate = 40. in
  let burst = Workload.Arrivals.burst ~at:10. ~duration:5. ~boost:3. in
  let a = Workload.Arrivals.create ~rate ~bursts:[ burst ] ~seed () in
  let before = ref 0 and inside = ref 0 in
  let rec count () =
    let t = Workload.Arrivals.next a in
    if t < 20. then begin
      if t >= 10. && t < 15. then incr inside
      else if t < 10. then incr before;
      count ()
    end
  in
  count ();
  let check_window label count mass =
    let sd = sqrt mass in
    if Float.abs (float_of_int count -. mass) > z *. sd then
      Alcotest.failf "%s: %d arrivals vs Poisson(%.0f)" label count mass
  in
  check_window "pre-burst" !before (rate *. 10.);
  check_window "burst window" !inside (3. *. rate *. 5.)

(* the rate curve itself is deterministic — check the closed form and
   that the thinning envelope really dominates it *)
let test_rate_curve () =
  let burst = Workload.Arrivals.burst ~at:100. ~duration:50. ~boost:2. in
  let a =
    Workload.Arrivals.create ~diurnal_amplitude:0.5 ~diurnal_period:1000.
      ~bursts:[ burst ] ~rate:10. ~seed:1L ()
  in
  let expected t =
    let d = 10. *. (1. +. (0.5 *. sin (2. *. Float.pi *. t /. 1000.))) in
    if t >= 100. && t < 150. then 2. *. d else d
  in
  List.iter
    (fun t ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "rate at %.0f" t)
        (expected t)
        (Workload.Arrivals.rate_at a t))
    [ 0.; 99.; 100.; 149.; 150.; 250.; 750. ];
  let peak = Workload.Arrivals.peak_rate a in
  for i = 0 to 2_000 do
    let t = float_of_int i in
    if Workload.Arrivals.rate_at a t > peak +. 1e-9 then
      Alcotest.failf "envelope %.3f below rate at t=%.0f" peak t
  done

(* ------------------------------------------------------------------ *)
(* Determinism *)

let graph () =
  Topology.Builders.dumbbell ~access_capacity:10e6 ~bottleneck_capacity:5e6 4

let spec_of_seed seed =
  {
    Workload.Gen.default with
    Workload.Gen.seed;
    horizon = 5.;
    max_requests = 128;
    rate = 10.;
    diurnal_amplitude = 0.3;
    diurnal_period = 10.;
    bursts = [ Workload.Arrivals.burst ~at:1. ~duration:1. ~boost:2. ];
  }

let to_bytes requests =
  String.concat ""
    (List.map
       (fun r -> Obs.Json.to_string (Workload.Request.to_json r) ^ "\n")
       requests)

let prop_same_seed_identical =
  QCheck.Test.make ~name:"same seed, two fresh generators, same bytes"
    ~count:20 QCheck.int64 (fun seed ->
      let g = graph () in
      let spec = spec_of_seed seed in
      let a = Workload.Gen.requests spec g in
      let b = Workload.Gen.requests spec g in
      List.length a = List.length b
      && List.for_all2 Workload.Request.equal a b
      && String.equal (to_bytes a) (to_bytes b))

let prop_stream_well_formed =
  QCheck.Test.make ~name:"generated streams are well-formed" ~count:20
    QCheck.int64 (fun seed ->
      let g = graph () in
      let spec = spec_of_seed seed in
      let requests = Workload.Gen.requests spec g in
      let sorted = ref true and prev = ref neg_infinity in
      List.iter
        (fun (r : Workload.Request.t) ->
          if r.start < !prev then sorted := false;
          prev := r.start)
        requests;
      !sorted
      && List.length requests <= spec.Workload.Gen.max_requests
      && List.for_all
           (fun (r : Workload.Request.t) ->
             r.start >= 0.
             && r.start < spec.Workload.Gen.horizon
             && r.src <> r.dst
             && r.content >= 0
             && r.content < spec.Workload.Gen.objects
             && r.chunks >= spec.Workload.Gen.chunk_min
             && r.chunks <= spec.Workload.Gen.chunk_max)
           requests)

let test_distinct_seeds_differ () =
  let g = graph () in
  let a = Workload.Gen.requests (spec_of_seed 7L) g in
  let b = Workload.Gen.requests (spec_of_seed 8L) g in
  Alcotest.(check bool) "different seeds, different streams" false
    (String.equal (to_bytes a) (to_bytes b))

(* the --domains guarantee: a pool of jobs each generating its own
   stream joins to the same bytes at any domain count, because
   Gen.requests is a pure function of (spec, graph) *)
let test_domains_identical () =
  let g = graph () in
  let jobs =
    Array.of_list
      (List.map
         (fun seed () -> to_bytes (Workload.Gen.requests (spec_of_seed seed) g))
         seeds)
  in
  let baseline = Parallel.Pool.run_jobs ~domains:1 jobs in
  List.iter
    (fun domains ->
      let got = Parallel.Pool.run_jobs ~domains jobs in
      Array.iteri
        (fun i bytes ->
          if not (String.equal bytes baseline.(i)) then
            Alcotest.failf "stream %d differs at domains=%d" i domains)
        got)
    [ 2; 4 ]

(* ------------------------------------------------------------------ *)
(* Lazy stream: requests_seq is the primitive, requests the wrapper *)

(* the contract in gen.mli: List.of_seq (requests_seq spec g) =
   requests spec g, byte for byte *)
let test_seq_matches_list seed =
  let g = graph () in
  let spec = spec_of_seed seed in
  let from_seq = List.of_seq (Workload.Gen.requests_seq spec g) in
  let from_list = Workload.Gen.requests spec g in
  Alcotest.(check int) "same length" (List.length from_list)
    (List.length from_seq);
  Alcotest.(check string) "same bytes" (to_bytes from_list)
    (to_bytes from_seq)

(* memoization makes the imperative generator state persistent: forcing
   a prefix twice (or a prefix then the whole stream) must not misdraw *)
let test_seq_persistent seed =
  let g = graph () in
  let spec = spec_of_seed seed in
  let s = Workload.Gen.requests_seq spec g in
  let prefix1 = List.of_seq (Seq.take 5 s) in
  let prefix2 = List.of_seq (Seq.take 5 s) in
  Alcotest.(check string) "prefix forced twice" (to_bytes prefix1)
    (to_bytes prefix2);
  let full = List.of_seq s in
  Alcotest.(check string) "partial forcing does not shift the tail"
    (to_bytes (Workload.Gen.requests spec g))
    (to_bytes full)

(* lazy consumption: taking n of an (effectively) unbounded stream
   yields exactly the n requests a generator capped at n produces —
   the consumer, not the spec, can bound the traversal *)
let test_seq_prefix seed =
  let g = graph () in
  let unbounded =
    { (spec_of_seed seed) with
      Workload.Gen.max_requests = 1_000_000;
      horizon = 1e6 }
  in
  let capped = { unbounded with Workload.Gen.max_requests = 7 } in
  let prefix =
    List.of_seq (Seq.take 7 (Workload.Gen.requests_seq unbounded g))
  in
  Alcotest.(check string) "take 7 = max_requests 7"
    (to_bytes (Workload.Gen.requests capped g))
    (to_bytes prefix)

let test_catalog_pure seed =
  let mk () =
    Workload.Catalog.create ~alpha:0.9 ~chunk_min:2 ~chunk_max:128
      ~chunk_shape:1.5 ~objects:200 ~seed ()
  in
  let a = mk () and b = mk () in
  for id = 0 to 199 do
    Alcotest.(check int) "same chunk count"
      (Workload.Catalog.chunks a id)
      (Workload.Catalog.chunks b id)
  done

let test_arrivals_pure seed =
  let mk () = Workload.Arrivals.create ~rate:20. ~seed () in
  let a = mk () and b = mk () in
  for _ = 1 to 1_000 do
    let ta = Workload.Arrivals.next a and tb = Workload.Arrivals.next b in
    if ta <> tb then Alcotest.fail "same-seed arrival streams diverged"
  done

(* ------------------------------------------------------------------ *)
(* Trace round trip *)

let test_trace_round_trip seed =
  let g = graph () in
  let requests = Workload.Gen.requests (spec_of_seed seed) g in
  Alcotest.(check bool) "non-empty stream" true (requests <> []);
  let path = Filename.temp_file "workload" ".ndjson" in
  Workload.Trace.save_file path requests;
  (match Workload.Trace.load_file path with
  | Error e -> Alcotest.failf "load failed: %s" e
  | Ok loaded ->
    Alcotest.(check int) "same length" (List.length requests)
      (List.length loaded);
    List.iter2
      (fun a b ->
        if not (Workload.Request.equal a b) then
          Alcotest.failf "round trip changed %a into %a" Workload.Request.pp
            a Workload.Request.pp b)
      requests loaded;
    match Workload.Trace.validate g loaded with
    | Ok () -> ()
    | Error e -> Alcotest.failf "validate rejected own trace: %s" e);
  Sys.remove path

let test_trace_rejects_foreign () =
  let g = graph () in
  let bad =
    [ { Workload.Request.start = 0.; src = 0; dst = 999; content = 0;
        chunks = 1 } ]
  in
  match Workload.Trace.validate g bad with
  | Ok () -> Alcotest.fail "out-of-range endpoint must be rejected"
  | Error _ -> ()

let test_request_json_rejects () =
  List.iter
    (fun s ->
      match Obs.Json.parse s with
      | Error e -> Alcotest.failf "test input must be valid JSON: %s" e
      | Ok j -> begin
        match Workload.Request.of_json j with
        | Ok _ -> Alcotest.failf "must reject %s" s
        | Error _ -> ()
      end)
    [
      {|{"t":0,"src":1,"dst":2,"content":3}|} (* missing chunks *);
      {|{"t":-1,"src":1,"dst":2,"content":3,"chunks":4}|};
      {|{"t":0,"src":1,"dst":1,"content":3,"chunks":4}|};
      {|{"t":0,"src":1,"dst":2,"content":3,"chunks":0}|};
      {|{"t":0,"src":-1,"dst":2,"content":3,"chunks":4}|};
      {|[1,2,3]|};
    ]

(* ------------------------------------------------------------------ *)
(* Session affinity *)

(* affinity = 0 must make no extra RNG draws at all, so the pair
   stream is byte-identical to a pre-affinity session *)
let test_affinity_zero_identical seed =
  let g = Topology.Builders.fig3 () in
  let plain = Workload.Session.create ~seed g in
  let zero = Workload.Session.create ~affinity:0. ~seed g in
  for i = 1 to 200 do
    let a = Workload.Session.draw plain and b = Workload.Session.draw zero in
    Alcotest.(check (pair int int))
      (Printf.sprintf "draw %d identical" i)
      a b
  done

let repeat_fraction session draws =
  let repeats = ref 0 and prev = ref None in
  for _ = 1 to draws do
    let p = Workload.Session.draw session in
    (match !prev with Some q when q = p -> incr repeats | _ -> ());
    prev := Some p
  done;
  float_of_int !repeats /. float_of_int (draws - 1)

(* an affinity-a draw repeats with probability at least a (chance
   collisions of fresh draws only add); the binomial z-band around a
   bounds it above *)
let test_affinity_sticks seed =
  let g = Topology.Builders.fig3 () in
  let draws = 2000 in
  let a = 0.8 in
  let f =
    repeat_fraction (Workload.Session.create ~affinity:a ~seed g) draws
  in
  let sd = sqrt (a *. (1. -. a) /. float_of_int draws) in
  Alcotest.(check bool)
    (Printf.sprintf "repeat fraction %.3f within [%.3f, %.3f]" f a
       (a +. (z *. sd) +. 0.1))
    true
    (f >= a && f <= a +. (z *. sd) +. 0.1);
  let f0 = repeat_fraction (Workload.Session.create ~seed g) draws in
  Alcotest.(check bool)
    (Printf.sprintf "independent draws rarely repeat (%.3f)" f0)
    true (f0 < 0.3)

let test_affinity_range () =
  let g = Topology.Builders.fig3 () in
  List.iter
    (fun a ->
      Alcotest.check_raises
        (Printf.sprintf "affinity %f rejected" a)
        (Invalid_argument "Session.create: affinity outside [0,1]")
        (fun () -> ignore (Workload.Session.create ~affinity:a ~seed:1L g)))
    [ -0.1; 1.1 ]

(* the spec-level wiring: affinity 0 leaves the generated request
   stream byte-identical to the default spec *)
let test_affinity_spec_zero_identical seed =
  let g = Topology.Builders.fig3 () in
  let base = { Workload.Gen.default with Workload.Gen.seed } in
  let zero = { base with Workload.Gen.affinity = 0. } in
  Alcotest.(check bool) "affinity-0 spec streams identically" true
    (Workload.Gen.requests base g = Workload.Gen.requests zero g)

let test_affinity_spec_concentrates seed =
  let g = Topology.Builders.fig3 () in
  let base =
    { Workload.Gen.default with Workload.Gen.seed; max_requests = 400 }
  in
  let sticky = { base with Workload.Gen.affinity = 0.9 } in
  let pairs spec =
    List.map
      (fun r -> (r.Workload.Request.src, r.Workload.Request.dst))
      (Workload.Gen.requests spec g)
  in
  let free = pairs base and bound = pairs sticky in
  Alcotest.(check int) "same stream length" (List.length free)
    (List.length bound);
  (* on a tiny graph the distinct pair *sets* can coincide; adjacent
     repeats are what affinity actually drives *)
  let reps ps =
    let r = ref 0 in
    ignore
      (List.fold_left
         (fun prev p ->
           (match prev with Some q when q = p -> incr r | _ -> ());
           Some p)
         None ps);
    !r
  in
  Alcotest.(check bool)
    (Printf.sprintf "sticky stream repeats adjacent pairs (%d > %d)"
       (reps bound) (reps free))
    true
    (reps bound > reps free)

(* ------------------------------------------------------------------ *)

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "workload"
    [
      ( "zipf",
        at_seeds "rank-frequency slope" test_zipf_slope
        @ [ Alcotest.test_case "exact mass" `Quick test_zipf_mass ] );
      ("pareto", at_seeds "tail mass" test_pareto_tail);
      ( "arrivals",
        at_seeds "poisson inter-arrivals" test_poisson_interarrivals
        @ at_seeds "burst mass" test_burst_mass
        @ [ Alcotest.test_case "rate curve" `Quick test_rate_curve ] );
      ( "determinism",
        qc [ prop_same_seed_identical; prop_stream_well_formed ]
        @ at_seeds "catalog pure" test_catalog_pure
        @ at_seeds "arrivals pure" test_arrivals_pure
        @ [
            Alcotest.test_case "distinct seeds differ" `Quick
              test_distinct_seeds_differ;
            Alcotest.test_case "byte-identical at domains 1/2/4" `Quick
              test_domains_identical;
          ] );
      ( "affinity",
        at_seeds "zero is byte-identical" test_affinity_zero_identical
        @ at_seeds "sticky draws repeat" test_affinity_sticks
        @ at_seeds "spec zero identical" test_affinity_spec_zero_identical
        @ at_seeds "spec concentrates" test_affinity_spec_concentrates
        @ [ Alcotest.test_case "range check" `Quick test_affinity_range ] );
      ( "seq",
        at_seeds "of_seq = requests" test_seq_matches_list
        @ at_seeds "memoized prefix is persistent" test_seq_persistent
        @ at_seeds "lazy prefix = capped list" test_seq_prefix );
      ( "trace",
        at_seeds "round trip" test_trace_round_trip
        @ [
            Alcotest.test_case "foreign trace rejected" `Quick
              test_trace_rejects_foreign;
            Alcotest.test_case "bad request json rejected" `Quick
              test_request_json_rejects;
          ] );
    ]
