(* Validation subsystem tests: the SHA-256 primitive behind the golden
   artefacts, the runtime invariant checkers (fed synthetic violating
   traces so we know they actually fire), the differential equivalence
   harness swept over many seeds, and end-to-end protocol runs under
   [?check]. *)

module Inv = Check.Invariant
module Trace = Chunksim.Trace

(* ------------------------------------------------------------------ *)
(* SHA-256 *)

let test_sha256_vectors () =
  let check_vec msg expect =
    Alcotest.(check string) ("sha256 " ^ string_of_int (String.length msg))
      expect
      (Check.Sha256.hex_digest msg)
  in
  check_vec ""
    "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855";
  check_vec "abc"
    "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad";
  check_vec (String.make 1000 'a')
    "41edece42d63e8d9bf515a9ba6932e1c20cbc9f5a5d134645adb5db1b9737ea3"

(* ------------------------------------------------------------------ *)
(* Collector basics *)

let test_collector_basics () =
  let c = Inv.create ~limit:2 () in
  Alcotest.(check bool) "fresh collector ok" true (Inv.ok c);
  Inv.violate c ~time:1. ~checker:"a" "first";
  Inv.violate c ~time:2. ~checker:"b" "second";
  Inv.violate c ~time:3. ~checker:"c" "third";
  Alcotest.(check bool) "violations mean not ok" false (Inv.ok c);
  Alcotest.(check int) "total counts past the limit" 3 (Inv.total c);
  let kept = Inv.violations c in
  Alcotest.(check int) "retention bounded by limit" 2 (List.length kept);
  (match kept with
  | [ a; b ] ->
    Alcotest.(check bool) "oldest-first order" true
      (a.Inv.time < b.Inv.time)
  | _ -> Alcotest.fail "expected two retained violations");
  Alcotest.(check bool) "report names a checker" true
    (let r = Inv.report c in
     String.length r > 0)

let test_probes_run () =
  let c = Inv.create () in
  let hits = ref [] in
  Inv.add_probe c (fun t -> hits := t :: !hits);
  Inv.probe c ~time:0.5;
  Inv.probe c ~time:1.5;
  Alcotest.(check (list (float 0.))) "probe times" [ 1.5; 0.5 ] !hits

(* ------------------------------------------------------------------ *)
(* Phase legality *)

let phase ~node ~link p = Trace.Phase_change { node; link; phase = p }

let test_phase_legality_clean () =
  let c = Inv.create () in
  let h = Inv.phase_legality c in
  (* full legal tour from the implicit initial push-data state,
     including the custody-drained backpressure -> detour edge *)
  h 0.1 (phase ~node:1 ~link:0 "detour");
  h 0.2 (phase ~node:1 ~link:0 "backpressure");
  h 0.3 (phase ~node:1 ~link:0 "detour");
  h 0.4 (phase ~node:1 ~link:0 "push-data");
  h 0.5 (phase ~node:1 ~link:0 "backpressure");
  h 0.6 (phase ~node:1 ~link:0 "push-data");
  (* independent interface state per (node, link) *)
  h 0.7 (phase ~node:1 ~link:1 "backpressure");
  h 0.8 (phase ~node:2 ~link:0 "detour");
  Alcotest.(check bool) "legal tour is clean" true (Inv.ok c)

let test_phase_legality_self_transition () =
  let c = Inv.create () in
  let h = Inv.phase_legality c in
  h 0.1 (phase ~node:0 ~link:0 "detour");
  h 0.2 (phase ~node:0 ~link:0 "detour");
  Alcotest.(check int) "self-transition flagged" 1 (Inv.total c)

let test_phase_legality_unknown_phase () =
  let c = Inv.create () in
  let h = Inv.phase_legality c in
  h 0.1 (phase ~node:0 ~link:0 "warp-drive");
  Alcotest.(check bool) "unknown phase flagged" false (Inv.ok c)

let test_phase_legality_initial_state () =
  let c = Inv.create () in
  let h = Inv.phase_legality c in
  (* recording "push-data" first is a self-transition out of the
     implicit initial state and must be flagged *)
  h 0.1 (phase ~node:3 ~link:2 "push-data");
  Alcotest.(check int) "initial state is push-data" 1 (Inv.total c)

(* ------------------------------------------------------------------ *)
(* Back-pressure ordering *)

let bp ~node ~flow engage = Trace.Bp_signal { node; flow; engage }

let test_bp_ordering_clean () =
  let c = Inv.create () in
  let h = Inv.bp_ordering c in
  (* local engage + relayed engage, then both released *)
  h 0.1 (bp ~node:1 ~flow:0 true);
  h 0.2 (bp ~node:1 ~flow:0 true);
  h 0.3 (bp ~node:1 ~flow:0 false);
  h 0.4 (bp ~node:1 ~flow:0 false);
  (* a different flow on the same node is tracked separately *)
  h 0.5 (bp ~node:1 ~flow:1 true);
  h 0.6 (bp ~node:1 ~flow:1 false);
  Alcotest.(check bool) "balanced signals are clean" true (Inv.ok c)

let test_bp_ordering_triple_engage () =
  let c = Inv.create () in
  let h = Inv.bp_ordering c in
  h 0.1 (bp ~node:1 ~flow:0 true);
  h 0.2 (bp ~node:1 ~flow:0 true);
  h 0.3 (bp ~node:1 ~flow:0 true);
  Alcotest.(check int) "third engage flagged" 1 (Inv.total c)

let test_bp_ordering_spurious_release () =
  let c = Inv.create () in
  let h = Inv.bp_ordering c in
  h 0.1 (bp ~node:2 ~flow:5 false);
  Alcotest.(check int) "release before engage flagged" 1 (Inv.total c)

(* ------------------------------------------------------------------ *)
(* Chunk conservation *)

let test_conservation_clean () =
  let c = Inv.create () in
  let cons = Inv.Conservation.create c in
  Inv.Conservation.note_push cons ~flow:0 ~idx:0;
  Inv.Conservation.note_push cons ~flow:0 ~idx:1;
  Inv.Conservation.note_delivery cons ~time:0.2 ~flow:0 ~idx:0;
  Inv.Conservation.note_delivery cons ~time:0.3 ~flow:0 ~idx:1;
  Inv.Conservation.finish cons ~time:1. ~quiescent:true ~in_custody:0
    ~drops:0 ~wire_losses:0;
  Alcotest.(check int) "pushes" 2 (Inv.Conservation.pushes cons);
  Alcotest.(check int) "deliveries" 2 (Inv.Conservation.deliveries cons);
  Alcotest.(check bool) "balanced run is clean" true (Inv.ok c)

let test_conservation_duplicate_delivery () =
  let c = Inv.create () in
  let cons = Inv.Conservation.create c in
  Inv.Conservation.note_push cons ~flow:0 ~idx:0;
  Inv.Conservation.note_delivery cons ~time:0.2 ~flow:0 ~idx:0;
  Inv.Conservation.note_delivery cons ~time:0.3 ~flow:0 ~idx:0;
  Alcotest.(check bool) "duplicate delivery flagged" false (Inv.ok c)

let test_conservation_conjured_chunk () =
  let c = Inv.create () in
  let cons = Inv.Conservation.create c in
  Inv.Conservation.note_delivery cons ~time:0.1 ~flow:7 ~idx:3;
  Alcotest.(check bool) "unsent delivery flagged" false (Inv.ok c)

let test_conservation_missing_chunks () =
  let c = Inv.create () in
  let cons = Inv.Conservation.create c in
  Inv.Conservation.note_push cons ~flow:0 ~idx:0;
  Inv.Conservation.note_push cons ~flow:0 ~idx:1;
  Inv.Conservation.note_delivery cons ~time:0.2 ~flow:0 ~idx:0;
  (* chunk 1 vanished: not delivered, not in custody, no drops *)
  Inv.Conservation.finish cons ~time:1. ~quiescent:true ~in_custody:0
    ~drops:0 ~wire_losses:0;
  Alcotest.(check bool) "vanished chunk flagged" false (Inv.ok c)

let test_conservation_cache_hit_is_push () =
  let c = Inv.create () in
  let cons = Inv.Conservation.create c in
  let h = Inv.Conservation.handler cons in
  Inv.Conservation.note_push cons ~flow:0 ~idx:0;
  Inv.Conservation.note_delivery cons ~time:0.2 ~flow:0 ~idx:0;
  (* a cache hit conjures a fresh copy, so a second delivery of the
     same chunk id is legitimate *)
  h 0.3 (Trace.Cache_hit { node = 1; flow = 0; idx = 0 });
  Inv.Conservation.note_delivery cons ~time:0.4 ~flow:0 ~idx:0;
  Inv.Conservation.finish cons ~time:1. ~quiescent:true ~in_custody:0
    ~drops:0 ~wire_losses:0;
  Alcotest.(check bool) "cache-hit copy accounted" true (Inv.ok c)

let test_custody_ledger_probe () =
  let c = Inv.create () in
  let counts = ref (0, 0) in
  Inv.custody_ledger c ~name:"router-9" (fun () -> !counts);
  Inv.probe c ~time:0.1;
  Alcotest.(check bool) "agreeing ledgers clean" true (Inv.ok c);
  counts := (2, 3);
  Inv.probe c ~time:0.2;
  Alcotest.(check int) "desynced ledgers flagged" 1 (Inv.total c)

(* ------------------------------------------------------------------ *)
(* Differential harness *)

let seeds n = List.init n (fun i -> i)

(* sweep seeds across a couple of domains so the ordinary test run
   also exercises the parallel path; verdict folding is seed-ordered,
   so the result is identical to a sequential sweep *)
let sweep_domains = 2

let check_sweep name differential =
  let v =
    Check.Differential.sweep ~domains:sweep_domains ~seeds:(seeds 50)
      differential
  in
  if not v.Check.Differential.equal then
    Alcotest.failf "%s diverged: %s" name v.Check.Differential.detail

let test_differential_fast_vs_legacy () =
  check_sweep "fast vs legacy" Check.Differential.fast_vs_legacy

let test_differential_queue_tie_order () =
  check_sweep "eager vs lazy tie order" Check.Differential.queue_tie_order

let test_scenarios_exercise_contention () =
  (* the differential is vacuous if no scenario ever stresses the
     queues; check the seed family produces drops somewhere *)
  let total_drops =
    List.fold_left
      (fun acc seed -> acc + (Check.Scenario.run ~seed ()).Check.Scenario.drops)
      0 (seeds 10)
  in
  Alcotest.(check bool) "some scenario drops" true (total_drops > 0)

(* ------------------------------------------------------------------ *)
(* Protocol-level differential and [?check] integration *)

let bulk = { Inrpp.Config.default with Inrpp.Config.anticipation = 512 }

let check_flow_equal i (a : Inrpp.Protocol.flow_result)
    (b : Inrpp.Protocol.flow_result) =
  Alcotest.(check (option (float 0.)))
    (Printf.sprintf "flow %d fct" i)
    a.Inrpp.Protocol.fct b.Inrpp.Protocol.fct;
  Alcotest.(check int)
    (Printf.sprintf "flow %d chunks" i)
    a.Inrpp.Protocol.chunks_received b.Inrpp.Protocol.chunks_received;
  Alcotest.(check int)
    (Printf.sprintf "flow %d requests" i)
    a.Inrpp.Protocol.requests_sent b.Inrpp.Protocol.requests_sent

let test_protocol_fast_vs_legacy () =
  (* same protocol run through the loss-free fast path and through the
     legacy transmit path (loss injection with probability zero); all
     protocol observables must agree.  engine_events legitimately
     differs (1 vs 2 events per packet) and is not compared. *)
  let run loss_rate =
    let g = Topology.Builders.fig3 () in
    Inrpp.Protocol.run ~cfg:bulk ?loss_rate g
      [
        Inrpp.Protocol.flow_spec ~src:0 ~dst:3 150;
        Inrpp.Protocol.flow_spec ~src:0 ~dst:3 ~start:0.2 100;
      ]
  in
  let fast = run None and legacy = run (Some 0.) in
  let i field f =
    Alcotest.(check int) field (f fast) (f legacy)
  in
  Array.iteri
    (fun idx a ->
      check_flow_equal idx a legacy.Inrpp.Protocol.flows.(idx))
    fast.Inrpp.Protocol.flows;
  i "completed" (fun r -> r.Inrpp.Protocol.completed);
  i "drops" (fun r -> r.Inrpp.Protocol.total_drops);
  i "forwarded" (fun r -> r.Inrpp.Protocol.forwarded_data);
  i "detoured" (fun r -> r.Inrpp.Protocol.detoured);
  i "custody stored" (fun r -> r.Inrpp.Protocol.custody_stored);
  i "custody released" (fun r -> r.Inrpp.Protocol.custody_released);
  i "bp engages" (fun r -> r.Inrpp.Protocol.bp_engages);
  i "bp releases" (fun r -> r.Inrpp.Protocol.bp_releases);
  i "cache hits" (fun r -> r.Inrpp.Protocol.cache_hits);
  i "phase transitions" (fun r -> r.Inrpp.Protocol.phase_transitions);
  Alcotest.(check (float 0.))
    "goodput" fast.Inrpp.Protocol.goodput legacy.Inrpp.Protocol.goodput;
  Alcotest.(check bool) "event counts differ across paths" true
    (fast.Inrpp.Protocol.engine_events
    < legacy.Inrpp.Protocol.engine_events)

(* ------------------------------------------------------------------ *)
(* SoA vs legacy flow store (50-seed differential), and PIT-less
   forwarding under the invariant checkers *)

(* seed-varied multi-flow scenario: even seeds run fig3 (detours in
   play), odd seeds a 5x-overloaded bottleneck line (custody, BP, and
   under PIT-less, queue drops); flow count, sizes and start offsets
   all derive from the seed *)
let seeded_scenario seed =
  let rng = Sim.Rng.create (Int64.of_int (0xF10A + seed)) in
  let g, src, dst =
    if seed mod 2 = 0 then (Topology.Builders.fig3 (), 0, 3)
    else
      let b = Topology.Graph.Builder.create () in
      let n0 = Topology.Graph.Builder.add_node b "src" in
      let n1 = Topology.Graph.Builder.add_node b "mid" in
      let n2 = Topology.Graph.Builder.add_node b "dst" in
      Topology.Graph.Builder.add_edge b ~capacity:10e6 ~delay:2e-3 n0 n1;
      Topology.Graph.Builder.add_edge b ~capacity:2e6 ~delay:2e-3 n1 n2;
      (Topology.Graph.Builder.build b, n0, n2)
  in
  let n = 1 + Sim.Rng.int rng 3 in
  let specs =
    List.init n (fun i ->
        Inrpp.Protocol.flow_spec ~src ~dst
          ~start:(float_of_int i *. (0.05 +. Sim.Rng.float rng 0.2))
          (30 + Sim.Rng.int rng 90))
  in
  (g, specs)

(* every protocol observable, flattened to a string so "byte-identical"
   is literal.  flow_table_bytes is layout-dependent by design (the
   legacy layout counts its records) and is excluded. *)
let result_fingerprint (r : Inrpp.Protocol.result) =
  let flows =
    Array.to_list r.Inrpp.Protocol.flows
    |> List.map (fun (f : Inrpp.Protocol.flow_result) ->
           Printf.sprintf "(fct=%s rx=%d dup=%d req=%d)"
             (match f.Inrpp.Protocol.fct with
             | Some t -> Printf.sprintf "%.9f" t
             | None -> "-")
             f.Inrpp.Protocol.chunks_received f.Inrpp.Protocol.duplicates
             f.Inrpp.Protocol.requests_sent)
    |> String.concat " "
  in
  Printf.sprintf
    "done=%d t=%.9f drops=%d fwd=%d det=%d cust=%d/%d bp=%d/%d hits=%d \
     ph=%d peak=%.3f util=%.9f gp=%.9f ev=%d live=%d fpeak=%d rec=%d %s"
    r.Inrpp.Protocol.completed r.Inrpp.Protocol.sim_time
    r.Inrpp.Protocol.total_drops r.Inrpp.Protocol.forwarded_data
    r.Inrpp.Protocol.detoured r.Inrpp.Protocol.custody_stored
    r.Inrpp.Protocol.custody_released r.Inrpp.Protocol.bp_engages
    r.Inrpp.Protocol.bp_releases r.Inrpp.Protocol.cache_hits
    r.Inrpp.Protocol.phase_transitions r.Inrpp.Protocol.peak_custody_bits
    r.Inrpp.Protocol.mean_utilisation r.Inrpp.Protocol.goodput
    r.Inrpp.Protocol.engine_events r.Inrpp.Protocol.flow_entries_live
    r.Inrpp.Protocol.flow_entries_peak r.Inrpp.Protocol.flow_entries_recycled
    flows

let soa_vs_legacy ~seed =
  let g, specs = seeded_scenario seed in
  let run store =
    Inrpp.Protocol.run
      ~cfg:{ bulk with Inrpp.Config.flow_store = store }
      ~horizon:120. g specs
  in
  let a = result_fingerprint (run `Soa)
  and b = result_fingerprint (run `Legacy) in
  if String.equal a b then
    {
      Check.Differential.equal = true;
      detail = Printf.sprintf "seed %d: soa = legacy (%s)" seed a;
    }
  else
    {
      Check.Differential.equal = false;
      detail = Printf.sprintf "seed %d:\n  soa    %s\n  legacy %s" seed a b;
    }

let test_differential_soa_vs_legacy () =
  check_sweep "soa vs legacy flow store" soa_vs_legacy

(* PIT-less runs keep no router flow state: conservation and the
   custody ledger must still balance (drops degrade the aggregate
   check to an inequality), and the odd-seed bottleneck scenarios do
   drop *)
let pitless_checked ~seed =
  let g, specs = seeded_scenario seed in
  let chk = Inv.create () in
  let r =
    Inrpp.Protocol.run
      ~cfg:{ bulk with Inrpp.Config.pitless = true }
      ~horizon:600. ~check:chk g specs
  in
  let n = List.length specs in
  if Inv.ok chk && r.Inrpp.Protocol.completed = n then
    {
      Check.Differential.equal = true;
      detail =
        Printf.sprintf "seed %d: %d flows clean, %d drops, 0 table bytes kept"
          seed n r.Inrpp.Protocol.total_drops;
    }
  else
    {
      Check.Differential.equal = false;
      detail =
        Printf.sprintf "seed %d: completed %d/%d; %s" seed
          r.Inrpp.Protocol.completed n (Inv.report chk);
    }

let test_differential_pitless_checked () =
  check_sweep "pitless conservation/ledger" pitless_checked

let checked_run ?cfg ?loss_rate g specs =
  let chk = Inv.create () in
  let r = Inrpp.Protocol.run ?cfg ?loss_rate ~check:chk g specs in
  (r, chk)

let test_check_clean_fig3 () =
  let g = Topology.Builders.fig3 () in
  let r, chk =
    checked_run ~cfg:bulk g [ Inrpp.Protocol.flow_spec ~src:0 ~dst:3 300 ]
  in
  Alcotest.(check int) "completes" 1 r.Inrpp.Protocol.completed;
  if not (Inv.ok chk) then Alcotest.fail (Inv.report chk)

let test_check_clean_backpressure () =
  (* dumbbell with aggressive senders: exercises custody, back
     pressure and phase changes under the checkers *)
  let g =
    Topology.Builders.dumbbell ~access_capacity:10e6
      ~bottleneck_capacity:2e6 3
  in
  let specs =
    List.init 3 (fun i ->
        Inrpp.Protocol.flow_spec ~src:(2 + i) ~dst:(5 + i) 120)
  in
  let r, chk = checked_run ~cfg:bulk g specs in
  Alcotest.(check int) "completes" 3 r.Inrpp.Protocol.completed;
  Alcotest.(check bool) "backpressure exercised" true
    (r.Inrpp.Protocol.bp_engages > 0);
  if not (Inv.ok chk) then Alcotest.fail (Inv.report chk)

let test_check_clean_lossy () =
  (* under injected wire loss the aggregate balance degrades to an
     inequality; the checkers must accept a clean lossy run *)
  let g = Topology.Builders.line ~capacity:10e6 ~delay:2e-3 3 in
  let r, chk =
    checked_run ~cfg:bulk ~loss_rate:0.02 g
      [ Inrpp.Protocol.flow_spec ~src:0 ~dst:2 100 ]
  in
  Alcotest.(check int) "completes despite loss" 1 r.Inrpp.Protocol.completed;
  if not (Inv.ok chk) then Alcotest.fail (Inv.report chk)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "validation"
    [
      ( "sha256",
        [ Alcotest.test_case "known vectors" `Quick test_sha256_vectors ] );
      ( "collector",
        [
          Alcotest.test_case "basics" `Quick test_collector_basics;
          Alcotest.test_case "probes" `Quick test_probes_run;
        ] );
      ( "phase legality",
        [
          Alcotest.test_case "legal tour" `Quick test_phase_legality_clean;
          Alcotest.test_case "self transition" `Quick
            test_phase_legality_self_transition;
          Alcotest.test_case "unknown phase" `Quick
            test_phase_legality_unknown_phase;
          Alcotest.test_case "initial state" `Quick
            test_phase_legality_initial_state;
        ] );
      ( "bp ordering",
        [
          Alcotest.test_case "balanced" `Quick test_bp_ordering_clean;
          Alcotest.test_case "triple engage" `Quick
            test_bp_ordering_triple_engage;
          Alcotest.test_case "spurious release" `Quick
            test_bp_ordering_spurious_release;
        ] );
      ( "conservation",
        [
          Alcotest.test_case "clean" `Quick test_conservation_clean;
          Alcotest.test_case "duplicate delivery" `Quick
            test_conservation_duplicate_delivery;
          Alcotest.test_case "conjured chunk" `Quick
            test_conservation_conjured_chunk;
          Alcotest.test_case "missing chunks" `Quick
            test_conservation_missing_chunks;
          Alcotest.test_case "cache hit copies" `Quick
            test_conservation_cache_hit_is_push;
          Alcotest.test_case "custody ledger probe" `Quick
            test_custody_ledger_probe;
        ] );
      ( "differential",
        [
          Alcotest.test_case "fast vs legacy x50" `Quick
            test_differential_fast_vs_legacy;
          Alcotest.test_case "queue tie order x50" `Quick
            test_differential_queue_tie_order;
          Alcotest.test_case "scenarios drop" `Quick
            test_scenarios_exercise_contention;
          Alcotest.test_case "soa vs legacy flow store x50" `Quick
            test_differential_soa_vs_legacy;
          Alcotest.test_case "pitless conservation x50" `Quick
            test_differential_pitless_checked;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "fast vs legacy" `Quick
            test_protocol_fast_vs_legacy;
          Alcotest.test_case "check clean fig3" `Quick test_check_clean_fig3;
          Alcotest.test_case "check clean backpressure" `Quick
            test_check_clean_backpressure;
          Alcotest.test_case "check clean lossy" `Quick test_check_clean_lossy;
        ] );
    ]
