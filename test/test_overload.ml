(* Overload-control layer: custody admission policies, the receiver
   circuit breaker, the collapse watchdog, schedule merging, and the
   config-off differential (Protocol.run ~overload:Config.off must be
   bit-identical to run without the argument, swept over 50 seeds). *)

module Cache = Chunksim.Cache

(* ------------------------------------------------------------------ *)
(* Admission policies *)

let chunk = 80_000.

let pressure ?(capacity = 10. *. chunk) ?(free = capacity)
    ?(custody_bits = 0.) ?(flow_bits = 0.) ?(flow_backlog = 0)
    ?(incoming_bits = chunk) ?(flows = 0) () =
  let free = Float.min free (capacity -. custody_bits) in
  { Cache.capacity; free; custody_bits; flow_bits; flow_backlog;
    incoming_bits; flows }

let admit p (module P : Cache.POLICY) = P.admit p

let test_drop_tail () =
  Alcotest.(check bool) "empty store" true (admit (pressure ()) Cache.drop_tail);
  Alcotest.(check bool) "full store still admits (capacity bounds via `Full)"
    true
    (admit
       (pressure ~custody_bits:(10. *. chunk) ~free:0. ())
       Cache.drop_tail)

let test_object_runs () =
  let p = Cache.object_runs ~threshold:0.5 () in
  Alcotest.(check bool) "new run under threshold" true
    (admit (pressure ~custody_bits:(2. *. chunk) ()) p);
  Alcotest.(check bool) "new run above threshold refused" false
    (admit (pressure ~custody_bits:(6. *. chunk) ()) p);
  Alcotest.(check bool) "continuing run always admitted" true
    (admit
       (pressure ~custody_bits:(9. *. chunk) ~flow_bits:chunk ~flow_backlog:1
          ())
       p);
  Alcotest.check_raises "threshold 0 rejected"
    (Invalid_argument "Cache.object_runs: threshold must be in (0, 1]")
    (fun () -> ignore (Cache.object_runs ~threshold:0. ()))

let test_fair_share () =
  let p = Cache.fair_share ~share:1.0 () in
  (* 4 flows in custody: equal split is 2.5 chunks each *)
  Alcotest.(check bool) "first chunk always admitted" true
    (admit (pressure ~custody_bits:(9. *. chunk) ~flows:4 ()) p);
  Alcotest.(check bool) "under fair share" true
    (admit
       (pressure ~custody_bits:(8. *. chunk) ~flow_bits:chunk ~flow_backlog:1
          ~flows:4 ())
       p);
  Alcotest.(check bool) "over fair share refused" false
    (admit
       (pressure ~custody_bits:(8. *. chunk) ~flow_bits:(2.5 *. chunk)
          ~flow_backlog:2 ~flows:4 ())
       p);
  Alcotest.check_raises "share 0 rejected"
    (Invalid_argument "Cache.fair_share: share <= 0") (fun () ->
      ignore (Cache.fair_share ~share:0. ()))

let test_policy_in_store () =
  let c =
    Cache.create ~capacity:(4. *. chunk)
      ~policy:(Cache.object_runs ~threshold:0.5 ())
      ()
  in
  Alcotest.(check (option string)) "policy name" (Some "object-runs(0.50)")
    (Cache.policy_name c);
  (* flow 0 starts a run and may continue it past the threshold;
     flow 1's new run is rejected once occupancy is at/over half *)
  Alcotest.(check bool) "first admit" true
    (Cache.put_custody c ~flow:0 ~idx:0 ~bits:chunk = `Stored);
  Alcotest.(check bool) "run continues" true
    (Cache.put_custody c ~flow:0 ~idx:1 ~bits:chunk = `Stored);
  Alcotest.(check bool) "run continues past threshold" true
    (Cache.put_custody c ~flow:0 ~idx:2 ~bits:chunk = `Stored);
  Alcotest.(check bool) "new run rejected at pressure" true
    (Cache.put_custody c ~flow:1 ~idx:0 ~bits:chunk = `Rejected);
  (* no policy: `Rejected is never returned *)
  let plain = Cache.create ~capacity:chunk () in
  Alcotest.(check bool) "no policy: full, not rejected" true
    (Cache.put_custody plain ~flow:0 ~idx:0 ~bits:chunk = `Stored
    && Cache.put_custody plain ~flow:0 ~idx:1 ~bits:chunk = `Full)

let test_peek_commit () =
  let c = Cache.create ~capacity:(4. *. chunk) () in
  ignore (Cache.put_custody c ~flow:7 ~idx:3 ~bits:chunk);
  ignore (Cache.put_custody c ~flow:7 ~idx:4 ~bits:chunk);
  (* peek is non-destructive: budget stays charged *)
  Alcotest.(check (option (pair int (float 0.)))) "peek oldest" (Some (3, chunk))
    (Cache.peek_custody c ~flow:7);
  Alcotest.(check (float 0.)) "still charged" (2. *. chunk)
    (Cache.custody_occupancy c);
  Cache.commit_custody c ~flow:7;
  Alcotest.(check (float 0.)) "released on commit" chunk
    (Cache.custody_occupancy c);
  Alcotest.(check (option (pair int (float 0.)))) "next chunk" (Some (4, chunk))
    (Cache.peek_custody c ~flow:7);
  Cache.commit_custody c ~flow:7;
  Alcotest.check_raises "commit with no custody"
    (Invalid_argument "Cache.commit_custody: flow holds no custody")
    (fun () -> Cache.commit_custody c ~flow:7)

(* ------------------------------------------------------------------ *)
(* Circuit breaker *)

let test_breaker_cycle () =
  let b = Overload.Breaker.create ~budget:2 ~probe_interval:1.0 in
  Alcotest.(check bool) "starts closed" true
    (Overload.Breaker.state b = Overload.Breaker.Closed);
  Alcotest.(check bool) "retry 1" true
    (Overload.Breaker.on_timeout b ~now:0.1 = `Retry);
  Alcotest.(check bool) "retry 2" true
    (Overload.Breaker.on_timeout b ~now:0.2 = `Retry);
  Alcotest.(check bool) "budget exhausted: trips open" true
    (Overload.Breaker.on_timeout b ~now:0.3 = `Wait);
  Alcotest.(check int) "one trip" 1 (Overload.Breaker.trips b);
  Alcotest.(check bool) "open waits inside the probe interval" true
    (Overload.Breaker.on_timeout b ~now:0.9 = `Wait);
  Alcotest.(check bool) "probe after the interval" true
    (Overload.Breaker.on_timeout b ~now:1.4 = `Probe);
  Alcotest.(check bool) "half-open" true
    (Overload.Breaker.state b = Overload.Breaker.Half_open);
  (* a barren probe re-opens; progress closes *)
  Alcotest.(check bool) "barren probe re-opens" true
    (Overload.Breaker.on_timeout b ~now:1.5 = `Wait);
  Alcotest.(check bool) "probe again" true
    (Overload.Breaker.on_timeout b ~now:2.6 = `Probe);
  Overload.Breaker.on_progress b;
  Alcotest.(check bool) "progress closes" true
    (Overload.Breaker.state b = Overload.Breaker.Closed);
  Alcotest.(check bool) "closed retries again" true
    (Overload.Breaker.on_timeout b ~now:3.0 = `Retry)

(* Permanent partition: the breaker caps sends at roughly
   budget + elapsed / probe_interval; without it the receiver's
   exponential backoff is the only brake.  The flow can never
   complete, so the run lasts the full horizon. *)
let test_breaker_bounded_partition () =
  let b = Topology.Graph.Builder.create () in
  let n0 = Topology.Graph.Builder.add_node b "sender" in
  let n1 = Topology.Graph.Builder.add_node b "router" in
  let n2 = Topology.Graph.Builder.add_node b "receiver" in
  (* 1 Mbps: 50 chunks take ~4 s, so the 0.5 s partition catches the
     flow mid-flight and it can never complete *)
  Topology.Graph.Builder.add_edge b ~capacity:1e6 ~delay:2e-3 n0 n1;
  Topology.Graph.Builder.add_edge b ~capacity:1e6 ~delay:2e-3 n1 n2;
  let g = Topology.Graph.Builder.build b in
  let lid a z =
    (Option.get (Topology.Graph.find_link g a z)).Topology.Link.id
  in
  (* both directions die at 0.5 s and never come back *)
  let faults =
    Fault.Schedule.of_list
      (List.concat_map
         (fun (a, z) ->
           [
             { Fault.Schedule.at = 0.5;
               event =
                 Fault.Schedule.Link_down
                   { link = lid a z; policy = `Drop_queued } };
           ])
         [ (0, 1); (1, 0); (1, 2); (2, 1) ])
  in
  let horizon = 30. in
  let probe_interval = 2.0 in
  let overload =
    { Overload.Config.default with
      Overload.Config.retry_budget = 3;
      probe_interval }
  in
  let r =
    Inrpp.Protocol.run ~horizon ~faults ~overload g
      [ Inrpp.Protocol.flow_spec ~src:0 ~dst:2 50 ]
  in
  Alcotest.(check int) "flow cannot complete" 0 r.Inrpp.Protocol.completed;
  let sent = r.Inrpp.Protocol.flows.(0).Inrpp.Protocol.requests_sent in
  let bound =
    10 (* pre-partition chunk requests: ~6 delivered plus pipeline *)
    + 3 (* retry budget *)
    + int_of_float (horizon /. probe_interval)
    + 2 (* edge slack *)
  in
  Alcotest.(check bool)
    (Printf.sprintf "requests bounded (%d <= %d)" sent bound)
    true (sent <= bound);
  Alcotest.(check bool) "breaker actually probed (sent > budget)" true
    (sent > 4)

(* ------------------------------------------------------------------ *)
(* Collapse watchdog *)

let feed wd ~from ~until ~step ~bits =
  let t = ref from in
  while !t < until -. 1e-9 do
    Obs.Watchdog.note_delivery wd ~time:!t ~bits;
    t := !t +. step
  done

let test_watchdog_once_per_episode () =
  let collapses = ref 0 and recoveries = ref [] in
  let wd =
    Obs.Watchdog.create ~window:1.0 ~collapse_ratio:0.3 ~recovery_ratio:0.7
      ~on_collapse:(fun ~time:_ ~rate:_ ~peak:_ -> incr collapses)
      ~on_recover:(fun ~time:_ ~elapsed -> recoveries := elapsed :: !recoveries)
      ()
  in
  (* steady 10 kbps for 4 s *)
  feed wd ~from:0. ~until:4. ~step:0.1 ~bits:1000.;
  Alcotest.(check int) "no collapse while steady" 0 (Obs.Watchdog.episodes wd);
  (* total stall: only ticks observe it; the callback fires exactly
     once no matter how many ticks land inside the episode *)
  List.iter (fun t -> Obs.Watchdog.tick wd ~time:t) [ 4.5; 5.0; 5.5; 6.0 ];
  Alcotest.(check int) "one episode" 1 (Obs.Watchdog.episodes wd);
  Alcotest.(check int) "callback fired once" 1 !collapses;
  Alcotest.(check bool) "in collapse" true (Obs.Watchdog.in_collapse wd);
  (* resume at the old rate: recovery fires, with measured elapsed *)
  feed wd ~from:6. ~until:8. ~step:0.1 ~bits:1000.;
  Alcotest.(check bool) "recovered" false (Obs.Watchdog.in_collapse wd);
  Alcotest.(check int) "still one episode" 1 (Obs.Watchdog.episodes wd);
  (match Obs.Watchdog.recovery_times wd with
  | [ e ] ->
    Alcotest.(check bool)
      (Printf.sprintf "recovery elapsed %.2f in (1, 4)" e)
      true
      (e > 1. && e < 4.)
  | l -> Alcotest.failf "expected one recovery, got %d" (List.length l));
  (* a second stall is a second episode *)
  List.iter (fun t -> Obs.Watchdog.tick wd ~time:t) [ 9.0; 9.5; 10.0 ];
  Alcotest.(check int) "second episode" 2 (Obs.Watchdog.episodes wd);
  Alcotest.(check int) "second callback" 2 !collapses

let test_watchdog_peak_decay () =
  (* a one-off startup burst must not anchor the thresholds: after the
     burst, steady delivery at a third of the burst rate is NOT a
     collapse once the reference has aged *)
  let collapses = ref 0 in
  let wd =
    Obs.Watchdog.create ~window:1.0 ~peak_tau:1.
      ~on_collapse:(fun ~time:_ ~rate:_ ~peak:_ -> incr collapses)
      ()
  in
  feed wd ~from:0. ~until:1. ~step:0.05 ~bits:3000. (* burst: 60 kbps *);
  feed wd ~from:1. ~until:12. ~step:0.1 ~bits:1000. (* steady: 10 kbps *);
  Alcotest.(check int) "no collapse from normalisation" 0 !collapses;
  Alcotest.(check bool) "reference decayed towards steady rate" true
    (Obs.Watchdog.peak wd < 20_000.)

let test_watchdog_min_peak () =
  let collapses = ref 0 in
  let wd =
    Obs.Watchdog.create ~window:1.0 ~min_peak:50_000.
      ~on_collapse:(fun ~time:_ ~rate:_ ~peak:_ -> incr collapses)
      ()
  in
  (* rates below min_peak never arm the detector *)
  feed wd ~from:0. ~until:2. ~step:0.1 ~bits:1000.;
  List.iter (fun t -> Obs.Watchdog.tick wd ~time:t) [ 3.; 4.; 5. ];
  Alcotest.(check int) "disarmed below min_peak" 0 (Obs.Watchdog.episodes wd)

(* ------------------------------------------------------------------ *)
(* Schedule merge *)

let test_schedule_merge () =
  let module S = Fault.Schedule in
  let ev at event = { S.at; event } in
  let a =
    S.of_list ~seed:5L
      [
        ev 1.0 (S.Link_down { link = 0; policy = `Hold_queued });
        ev 3.0 (S.Link_up { link = 0 });
      ]
  in
  let b =
    S.of_list ~seed:9L
      [
        ev 1.0 (S.Link_down { link = 1; policy = `Drop_queued });
        ev 2.0 (S.Link_up { link = 1 });
      ]
  in
  let m = S.merge a b in
  Alcotest.(check int) "all events kept" 4 (S.length m);
  Alcotest.(check bool) "keeps a's seed" true (S.seed m = 5L);
  (match List.map (fun { S.at; _ } -> at) (S.events m) with
  | [ 1.0; 1.0; 2.0; 3.0 ] -> ()
  | ts ->
    Alcotest.failf "bad merge order: %s"
      (String.concat "," (List.map string_of_float ts)));
  (* stability: at equal times a's event comes first *)
  (match S.events m with
  | { S.event = S.Link_down { link = 0; _ }; _ } :: _ -> ()
  | _ -> Alcotest.fail "merge not stable at equal times");
  Alcotest.(check bool) "empty is left identity" true
    (S.events (S.merge S.empty a) = S.events a && S.seed (S.merge S.empty a) = 5L);
  Alcotest.(check bool) "empty is right identity" true
    (S.events (S.merge a S.empty) = S.events a)

(* ------------------------------------------------------------------ *)
(* Config.off differential: 50 seeds, run without ?overload vs with
   Config.off must produce structurally identical results (the off
   config gates every mechanism to a no-op) *)

let off_scenario ~seed =
  let g =
    Topology.Builders.dumbbell ~access_capacity:10e6
      ~bottleneck_capacity:2e6 3
  in
  let workload =
    {
      Workload.Gen.default with
      Workload.Gen.seed = Int64.of_int (1000 + seed);
      horizon = 3.;
      max_requests = 16;
      objects = 8;
      chunk_min = 2;
      chunk_max = 16;
      rate = 5.;
      bursts = [ Workload.Arrivals.burst ~at:1. ~duration:1. ~boost:4. ];
      producers = [ Topology.Node.Host ];
      consumers = [ Topology.Node.Host ];
    }
  in
  let cfg =
    {
      Inrpp.Config.default with
      Inrpp.Config.cache_bits =
        30. *. Inrpp.Config.default.Inrpp.Config.chunk_bits;
    }
  in
  let run overload = Inrpp.Protocol.run ~cfg ~horizon:40. ~workload ?overload g [] in
  let base = run None in
  let off = run (Some Overload.Config.off) in
  if base = off then { Check.Differential.equal = true; detail = "" }
  else
    {
      Check.Differential.equal = false;
      detail =
        Printf.sprintf
          "seed %d: overload:off diverged from no-overload (completed %d vs \
           %d, goodput %.6g vs %.6g, drops %d vs %d)"
          seed base.Inrpp.Protocol.completed off.Inrpp.Protocol.completed
          base.Inrpp.Protocol.goodput off.Inrpp.Protocol.goodput
          base.Inrpp.Protocol.total_drops off.Inrpp.Protocol.total_drops;
    }

let test_off_differential () =
  let v =
    Check.Differential.sweep ~domains:2
      ~seeds:(List.init 50 (fun i -> i))
      off_scenario
  in
  if not v.Check.Differential.equal then
    Alcotest.failf "off differential diverged: %s" v.Check.Differential.detail

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "overload"
    [
      ( "admission",
        [
          Alcotest.test_case "drop-tail" `Quick test_drop_tail;
          Alcotest.test_case "object-runs" `Quick test_object_runs;
          Alcotest.test_case "fair-share" `Quick test_fair_share;
          Alcotest.test_case "policy in store" `Quick test_policy_in_store;
          Alcotest.test_case "peek then commit" `Quick test_peek_commit;
        ] );
      ( "breaker",
        [
          Alcotest.test_case "state cycle" `Quick test_breaker_cycle;
          Alcotest.test_case "bounded under permanent partition" `Quick
            test_breaker_bounded_partition;
        ] );
      ( "watchdog",
        [
          Alcotest.test_case "fires once per episode" `Quick
            test_watchdog_once_per_episode;
          Alcotest.test_case "peak decay" `Quick test_watchdog_peak_decay;
          Alcotest.test_case "min peak disarms" `Quick test_watchdog_min_peak;
        ] );
      ( "schedule",
        [ Alcotest.test_case "merge" `Quick test_schedule_merge ] );
      ( "differential",
        [
          Alcotest.test_case "off = absent over 50 seeds" `Quick
            test_off_differential;
        ] );
    ]
