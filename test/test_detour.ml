(* Tests for detour discovery/classification and the synthetic ISP zoo
   — the machinery behind the paper's Table 1. *)

open Topology

(* ------------------------------------------------------------------ *)
(* classify_link on known motifs *)

let test_triangle_one_hop () =
  let g = Builders.ring 3 in
  List.iter
    (fun l ->
      match Detour.classify_link g l with
      | Detour.Detour 1 -> ()
      | Detour.Detour n -> Alcotest.failf "triangle link classed %d" n
      | Detour.Unavailable -> Alcotest.fail "triangle link has a detour")
    (Graph.undirected_links g)

let test_square_two_hop () =
  let g = Builders.ring 4 in
  List.iter
    (fun l ->
      match Detour.classify_link g l with
      | Detour.Detour 2 -> ()
      | _ -> Alcotest.fail "square links are 2-hop detours")
    (Graph.undirected_links g)

let test_pentagon_three_plus () =
  let g = Builders.ring 5 in
  List.iter
    (fun l ->
      match Detour.classify_link g l with
      | Detour.Detour 3 -> ()
      | _ -> Alcotest.fail "pentagon links are 3-hop detours")
    (Graph.undirected_links g)

let test_bridge_unavailable () =
  let g = Builders.line 3 in
  List.iter
    (fun l ->
      Alcotest.(check bool) "bridges have no detour" true
        (Detour.classify_link g l = Detour.Unavailable))
    (Graph.undirected_links g)

let test_mesh_all_one_hop () =
  let g = Builders.full_mesh 6 in
  let p = Detour.classify_links g in
  Alcotest.(check (float 1e-9)) "all 1-hop" 1. p.Detour.one_hop;
  Alcotest.(check int) "link count" 15 p.Detour.total_links

let test_best_detour_path () =
  let g = Builders.ring 4 in
  let l = Option.get (Graph.find_link g 0 1) in
  match Detour.best_detour g l with
  | None -> Alcotest.fail "ring has detours"
  | Some p ->
    Alcotest.(check (list int)) "goes the long way" [ 0; 3; 2; 1 ] p.Path.nodes

let test_best_detour_ignores_reverse () =
  (* the reverse direction of the protected link must not be used as
     part of the "alternative" *)
  let g = Builders.line 2 in
  let l = Option.get (Graph.find_link g 0 1) in
  Alcotest.(check bool) "no detour on isolated edge" true
    (Detour.best_detour g l = None)

let test_classify_profile_sums_to_one () =
  let g = Isp_zoo.graph Isp_zoo.Exodus in
  let p = Detour.classify_links g in
  let sum =
    p.Detour.one_hop +. p.Detour.two_hop +. p.Detour.three_plus
    +. p.Detour.unavailable
  in
  Alcotest.(check (float 1e-9)) "fractions sum to 1" 1. sum

(* ------------------------------------------------------------------ *)
(* detours_via *)

let test_detours_via_diamond () =
  let g = Graph.of_edges 4 [ (0, 1); (1, 3); (0, 2); (2, 3); (0, 3) ] in
  let l = Option.get (Graph.find_link g 0 3) in
  let ds = Detour.detours_via g l ~max_intermediate:1 in
  let vias = List.map fst ds in
  Alcotest.(check (list int)) "two 1-hop detours" [ 1; 2 ]
    (List.sort Int.compare vias);
  List.iter
    (fun (_, p) ->
      Alcotest.(check int) "1 intermediate" 2 (Path.hops p);
      Alcotest.(check int) "src" 0 (Path.src p);
      Alcotest.(check int) "dst" 3 (Path.dst p))
    ds

let test_detours_via_depth_limit () =
  let g = Builders.ring 5 in
  let l = Option.get (Graph.find_link g 0 1) in
  Alcotest.(check int) "no detour within 2"
    0
    (List.length (Detour.detours_via g l ~max_intermediate:2));
  Alcotest.(check int) "detour within 3"
    1
    (List.length (Detour.detours_via g l ~max_intermediate:3))

let test_detours_via_excludes_protected () =
  let g = Builders.ring 4 in
  let l = Option.get (Graph.find_link g 0 1) in
  List.iter
    (fun (_, p) ->
      Alcotest.(check bool) "protected link unused" false (Path.mem_link p l))
    (Detour.detours_via g l ~max_intermediate:3)

let test_detours_via_no_bounce () =
  (* first hop must not return through the origin node *)
  let g = Builders.ring 4 in
  let l = Option.get (Graph.find_link g 0 1) in
  List.iter
    (fun (_, p) ->
      let inner = List.tl p.Path.nodes in
      let inner = List.filteri (fun i _ -> i < List.length inner - 1) inner in
      Alcotest.(check bool) "origin not revisited" false (List.mem 0 inner))
    (Detour.detours_via g l ~max_intermediate:3)

(* ------------------------------------------------------------------ *)
(* Table 1 calibration *)

let check_isp_row ?(tolerance = 4.0) isp =
  let p1, p2, p3, pna = Isp_zoo.table1_row isp in
  let profile = Detour.classify_links (Isp_zoo.graph isp) in
  let checks =
    [
      ("1 hop", p1, 100. *. profile.Detour.one_hop);
      ("2 hops", p2, 100. *. profile.Detour.two_hop);
      ("3+ hops", p3, 100. *. profile.Detour.three_plus);
      ("N/A", pna, 100. *. profile.Detour.unavailable);
    ]
  in
  List.iter
    (fun (label, expected, actual) ->
      if Float.abs (expected -. actual) > tolerance then
        Alcotest.failf "%s %s: paper %.2f%% vs synthetic %.2f%%"
          (Isp_zoo.name isp) label expected actual)
    checks

let isp_calibration_tests =
  List.map
    (fun isp ->
      Alcotest.test_case (Isp_zoo.name isp) `Quick (fun () ->
          check_isp_row isp))
    Isp_zoo.all

let test_zoo_connected () =
  List.iter
    (fun isp ->
      Alcotest.(check bool)
        (Isp_zoo.name isp ^ " connected")
        true
        (Graph.is_connected (Isp_zoo.graph isp)))
    Isp_zoo.all

let test_zoo_sizes () =
  List.iter
    (fun isp ->
      let s = Isp_zoo.spec isp in
      let g = Isp_zoo.graph isp in
      let actual = List.length (Graph.undirected_links g) in
      let drift = abs (actual - s.Isp_zoo.target_links) in
      if drift > 5 then
        Alcotest.failf "%s: %d links vs target %d" (Isp_zoo.name isp) actual
          s.Isp_zoo.target_links)
    Isp_zoo.all

let test_zoo_deterministic () =
  let a = Isp_zoo.generate (Isp_zoo.spec Isp_zoo.Sprint) in
  let b = Isp_zoo.generate (Isp_zoo.spec Isp_zoo.Sprint) in
  Alcotest.(check string) "same serialisation" (Serial.to_string a)
    (Serial.to_string b)

let test_zoo_names () =
  List.iter
    (fun isp ->
      match Isp_zoo.of_name (Isp_zoo.name isp) with
      | Some isp' when isp' = isp -> ()
      | _ -> Alcotest.failf "name roundtrip failed for %s" (Isp_zoo.name isp))
    Isp_zoo.all;
  Alcotest.(check bool) "case insensitive" true
    (Isp_zoo.of_name "LEVEL 3" = Some Isp_zoo.Level3);
  Alcotest.(check bool) "unknown" true (Isp_zoo.of_name "fastly" = None)

let test_zoo_average_row () =
  (* the paper's Average row: 52.80 / 30.86 / 3.24 / 13.10 *)
  let profiles = List.map (fun i -> Detour.classify_links (Isp_zoo.graph i)) Isp_zoo.all in
  let n = float_of_int (List.length profiles) in
  let avg f = 100. *. List.fold_left (fun acc p -> acc +. f p) 0. profiles /. n in
  let a1 = avg (fun p -> p.Detour.one_hop) in
  let a2 = avg (fun p -> p.Detour.two_hop) in
  let a3 = avg (fun p -> p.Detour.three_plus) in
  let ana = avg (fun p -> p.Detour.unavailable) in
  let close expected actual =
    Alcotest.(check bool)
      (Printf.sprintf "avg %.2f vs %.2f" expected actual)
      true
      (Float.abs (expected -. actual) < 3.)
  in
  close 52.80 a1;
  close 30.86 a2;
  close 3.24 a3;
  close 13.10 ana

let test_fig4_isps () =
  Alcotest.(check int) "three ISPs" 3 (List.length Isp_zoo.fig4_isps);
  Alcotest.(check bool) "telstra included" true
    (List.mem Isp_zoo.Telstra Isp_zoo.fig4_isps)

(* ------------------------------------------------------------------ *)
(* Properties *)

let prop_best_detour_consistent_with_class =
  QCheck.Test.make
    ~name:"best_detour length matches classify_link" ~count:40
    (QCheck.make QCheck.Gen.(pair (int_range 5 25) (int_range 0 10_000)))
    (fun (n, seed) ->
      let g = Builders.erdos_renyi ~seed:(Int64.of_int seed) ~p:0.3 n in
      List.for_all
        (fun l ->
          match Detour.classify_link g l, Detour.best_detour g l with
          | Detour.Unavailable, None -> true
          | Detour.Detour k, Some p -> Path.hops p = k + 1
          | _ -> false)
        (Graph.undirected_links g))

let prop_detours_via_within_depth =
  QCheck.Test.make ~name:"detours_via respects depth bound" ~count:40
    (QCheck.make QCheck.Gen.(pair (int_range 5 20) (int_range 0 10_000)))
    (fun (n, seed) ->
      let g = Builders.erdos_renyi ~seed:(Int64.of_int seed) ~p:0.35 n in
      List.for_all
        (fun l ->
          List.for_all
            (fun (_, p) -> Path.hops p <= 3)
            (Detour.detours_via g l ~max_intermediate:2))
        (Graph.undirected_links g))

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "detour"
    [
      ( "classification",
        [
          Alcotest.test_case "triangle 1-hop" `Quick test_triangle_one_hop;
          Alcotest.test_case "square 2-hop" `Quick test_square_two_hop;
          Alcotest.test_case "pentagon 3-hop" `Quick test_pentagon_three_plus;
          Alcotest.test_case "bridge unavailable" `Quick test_bridge_unavailable;
          Alcotest.test_case "mesh all 1-hop" `Quick test_mesh_all_one_hop;
          Alcotest.test_case "best detour path" `Quick test_best_detour_path;
          Alcotest.test_case "reverse excluded" `Quick test_best_detour_ignores_reverse;
          Alcotest.test_case "profile sums to 1" `Quick test_classify_profile_sums_to_one;
        ] );
      ( "detours_via",
        [
          Alcotest.test_case "diamond" `Quick test_detours_via_diamond;
          Alcotest.test_case "depth limit" `Quick test_detours_via_depth_limit;
          Alcotest.test_case "protected excluded" `Quick test_detours_via_excludes_protected;
          Alcotest.test_case "no bounce" `Quick test_detours_via_no_bounce;
        ] );
      ("table1 calibration", isp_calibration_tests);
      ( "isp zoo",
        [
          Alcotest.test_case "connected" `Quick test_zoo_connected;
          Alcotest.test_case "sizes" `Quick test_zoo_sizes;
          Alcotest.test_case "deterministic" `Quick test_zoo_deterministic;
          Alcotest.test_case "names" `Quick test_zoo_names;
          Alcotest.test_case "average row" `Quick test_zoo_average_row;
          Alcotest.test_case "fig4 trio" `Quick test_fig4_isps;
        ] );
      ( "properties",
        qc [ prop_best_detour_consistent_with_class; prop_detours_via_within_depth ] );
    ]
