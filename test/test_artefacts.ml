(* Golden-artefact regression: every paper-facing output of
   bench/main.exe is pinned by SHA-256.  Each test regenerates one
   artefact in-process (via Experiments.capture, which reproduces the
   CLI byte stream exactly) and compares against the digest stored in
   test/golden/artefacts.sha256.

   If an output changed on purpose, refresh the golden file with

     dune exec test/refresh_artefacts.exe

   and commit the diff. *)

(* `dune runtest` runs the action in _build/default/test; `dune exec`
   keeps the invoking cwd (the repo root) *)
let golden_path =
  if Sys.file_exists "golden/artefacts.sha256" then "golden/artefacts.sha256"
  else "test/golden/artefacts.sha256"

let golden =
  lazy
    (let ic = open_in golden_path in
     let rec loop acc =
       match input_line ic with
       | line ->
         let acc =
           (* "<64 hex chars>  <id>" *)
           match String.index_opt line ' ' with
           | Some i when i = 64 ->
             let digest = String.sub line 0 64 in
             let id =
               String.trim (String.sub line 64 (String.length line - 64))
             in
             (id, digest) :: acc
           | _ -> acc
         in
         loop acc
       | exception End_of_file ->
         close_in ic;
         List.rev acc
     in
     loop [])

let check_artefact id () =
  let expected =
    match List.assoc_opt id (Lazy.force golden) with
    | Some d -> d
    | None -> Alcotest.failf "no golden digest for %s - refresh the file" id
  in
  let run =
    match Experiments.find id with
    | Some f -> f
    | None -> Alcotest.failf "unknown experiment id %s" id
  in
  let out = Experiments.capture run in
  let actual = Check.Sha256.hex_digest out in
  if not (String.equal actual expected) then
    Alcotest.failf
      "artefact %s changed (%d bytes printed)@.  golden  %s@.  actual  %s@.If \
       intentional, refresh with: dune exec test/refresh_artefacts.exe"
      id (String.length out) expected actual

let ids =
  [
    "table1"; "fig3"; "fig4a"; "fig4b"; "custody"; "phases"; "backpressure";
    "protocols"; "popularity"; "overload";
  ]

let () =
  Alcotest.run "artefacts"
    [
      ( "golden",
        List.map
          (fun id -> Alcotest.test_case id `Quick (check_artefact id))
          ids );
    ]
