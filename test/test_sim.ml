(* Tests for the simulation core: units, rng, event queue, engine,
   stats, timeline. *)

let check_float = Alcotest.(check (float 1e-9))
let check_close msg tolerance expected actual =
  Alcotest.(check (float tolerance)) msg expected actual

(* ------------------------------------------------------------------ *)
(* Units *)

let test_units_sizes () =
  check_float "byte is 8 bits" 8. (Sim.Units.bytes 1.);
  check_float "kB" 8e3 (Sim.Units.kilobytes 1.);
  check_float "MB" 8e6 (Sim.Units.megabytes 1.);
  check_float "GB" 8e9 (Sim.Units.gigabytes 1.);
  check_float "KiB" (8. *. 1024.) (Sim.Units.kibibytes 1.);
  check_float "GiB" (8. *. 1073741824.) (Sim.Units.gibibytes 1.)

let test_units_rates () =
  check_float "kbps" 1e3 (Sim.Units.kbps 1.);
  check_float "mbps" 1e6 (Sim.Units.mbps 1.);
  check_float "gbps" 4e10 (Sim.Units.gbps 40.)

let test_units_times () =
  check_float "ms" 1e-3 (Sim.Units.milliseconds 1.);
  check_float "us" 1e-6 (Sim.Units.microseconds 1.)

let test_transmission_time () =
  check_float "1 Mbit over 1 Mbps = 1 s" 1.
    (Sim.Units.transmission_time ~bits:1e6 ~rate:1e6);
  Alcotest.check_raises "zero rate rejected"
    (Invalid_argument "Units.transmission_time: rate <= 0") (fun () ->
      ignore (Sim.Units.transmission_time ~bits:1. ~rate:0.))

let test_custody_claim () =
  (* the paper's §3.3 number: 10 GB cache behind 40 Gbps holds ~2 s *)
  let t =
    Sim.Units.holding_time ~cache_bits:(Sim.Units.gigabytes 10.)
      ~rate:(Sim.Units.gbps 40.)
  in
  check_float "10GB / 40Gbps = 2s" 2. t

let test_pp_formats () =
  let str pp v = Format.asprintf "%a" pp v in
  Alcotest.(check string) "rate" "2.5 Gbps" (str Sim.Units.pp_rate 2.5e9);
  Alcotest.(check string) "size" "10 GB" (str Sim.Units.pp_size (Sim.Units.gigabytes 10.));
  Alcotest.(check string) "time ms" "1.5 ms" (str Sim.Units.pp_time 1.5e-3);
  Alcotest.(check string) "time s" "2 s" (str Sim.Units.pp_time 2.);
  Alcotest.(check string) "time us" "12 us" (str Sim.Units.pp_time 12e-6);
  Alcotest.(check string) "time ns" "3 ns" (str Sim.Units.pp_time 3e-9);
  Alcotest.(check string) "time zero" "0 s" (str Sim.Units.pp_time 0.);
  Alcotest.(check string) "rate kbps" "900 kbps" (str Sim.Units.pp_rate 9e5)

(* ------------------------------------------------------------------ *)
(* Rng *)

let test_rng_determinism () =
  let a = Sim.Rng.create 42L and b = Sim.Rng.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64)
      "same seed, same stream" (Sim.Rng.next_int64 a) (Sim.Rng.next_int64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Sim.Rng.create 1L and b = Sim.Rng.create 2L in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Sim.Rng.next_int64 a = Sim.Rng.next_int64 b then incr same
  done;
  Alcotest.(check bool) "different seeds diverge" true (!same < 2)

let test_rng_float_range () =
  let r = Sim.Rng.create 7L in
  for _ = 1 to 10_000 do
    let x = Sim.Rng.float r 3.5 in
    if x < 0. || x >= 3.5 then Alcotest.fail "float out of range"
  done

let test_rng_int_range () =
  let r = Sim.Rng.create 7L in
  let seen = Array.make 10 false in
  for _ = 1 to 10_000 do
    let x = Sim.Rng.int r 10 in
    if x < 0 || x >= 10 then Alcotest.fail "int out of range";
    seen.(x) <- true
  done;
  Alcotest.(check bool) "all buckets hit" true (Array.for_all Fun.id seen)

let test_rng_split_independent () =
  let parent = Sim.Rng.create 9L in
  let child = Sim.Rng.split parent in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Sim.Rng.next_int64 parent = Sim.Rng.next_int64 child then incr same
  done;
  Alcotest.(check bool) "split streams differ" true (!same < 2)

let test_exponential_mean () =
  let r = Sim.Rng.create 11L in
  let acc = ref 0. in
  let n = 200_000 in
  for _ = 1 to n do
    acc := !acc +. Sim.Rng.exponential r ~mean:2.
  done;
  check_close "exponential mean ~2" 0.05 2. (!acc /. float_of_int n)

let test_pareto_support () =
  let r = Sim.Rng.create 13L in
  for _ = 1 to 10_000 do
    let x = Sim.Rng.pareto r ~shape:1.5 ~scale:4. in
    if x < 4. then Alcotest.fail "pareto below scale"
  done

let test_pareto_mean () =
  let r = Sim.Rng.create 17L in
  let acc = ref 0. in
  let n = 500_000 in
  for _ = 1 to n do
    acc := !acc +. Sim.Rng.pareto r ~shape:3. ~scale:2.
  done;
  (* mean = shape*scale/(shape-1) = 3 *)
  check_close "pareto mean ~3" 0.1 3. (!acc /. float_of_int n)

let test_zipf_bounds_and_skew () =
  let r = Sim.Rng.create 19L in
  let sampler = Sim.Rng.zipf_sampler ~n:100 ~s:1.0 in
  let counts = Array.make 101 0 in
  for _ = 1 to 50_000 do
    let k = sampler r in
    if k < 1 || k > 100 then Alcotest.fail "zipf out of range";
    counts.(k) <- counts.(k) + 1
  done;
  Alcotest.(check bool) "rank 1 most popular" true (counts.(1) > counts.(2));
  Alcotest.(check bool) "rank 2 beats rank 50" true (counts.(2) > counts.(50))

let test_poisson_mean () =
  let r = Sim.Rng.create 23L in
  let total = ref 0 in
  let n = 100_000 in
  for _ = 1 to n do
    total := !total + Sim.Rng.poisson r ~mean:4.
  done;
  check_close "poisson mean ~4" 0.1 4. (float_of_int !total /. float_of_int n);
  Alcotest.(check int) "zero mean" 0 (Sim.Rng.poisson r ~mean:0.)

let test_poisson_large_mean () =
  let r = Sim.Rng.create 29L in
  let total = ref 0 in
  let n = 50_000 in
  for _ = 1 to n do
    total := !total + Sim.Rng.poisson r ~mean:100.
  done;
  check_close "poisson mean ~100 (normal approx)" 1. 100.
    (float_of_int !total /. float_of_int n)

let test_shuffle_permutation () =
  let r = Sim.Rng.create 31L in
  let arr = Array.init 50 Fun.id in
  Sim.Rng.shuffle r arr;
  let sorted = Array.copy arr in
  Array.sort Int.compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 Fun.id) sorted

let test_choose () =
  let r = Sim.Rng.create 37L in
  Alcotest.(check (option int)) "empty" None (Sim.Rng.choose r []);
  Alcotest.(check (option int)) "singleton" (Some 5) (Sim.Rng.choose r [ 5 ])

(* ------------------------------------------------------------------ *)
(* Event queue *)

let test_queue_order () =
  let q = Sim.Event_queue.create () in
  ignore (Sim.Event_queue.push q ~time:3. "c");
  ignore (Sim.Event_queue.push q ~time:1. "a");
  ignore (Sim.Event_queue.push q ~time:2. "b");
  let popped = List.init 3 (fun _ -> Sim.Event_queue.pop q) in
  Alcotest.(check (list (option (pair (float 0.) string))))
    "time order"
    [ Some (1., "a"); Some (2., "b"); Some (3., "c") ]
    popped;
  Alcotest.(check bool) "drained" true (Sim.Event_queue.is_empty q)

let test_queue_fifo_ties () =
  let q = Sim.Event_queue.create () in
  for i = 0 to 9 do
    ignore (Sim.Event_queue.push q ~time:5. i)
  done;
  for expect = 0 to 9 do
    match Sim.Event_queue.pop q with
    | Some (_, got) -> Alcotest.(check int) "FIFO among ties" expect got
    | None -> Alcotest.fail "queue drained early"
  done

let test_queue_cancel () =
  let q = Sim.Event_queue.create () in
  let _a = Sim.Event_queue.push q ~time:1. "a" in
  let b = Sim.Event_queue.push q ~time:2. "b" in
  let _c = Sim.Event_queue.push q ~time:3. "c" in
  Sim.Event_queue.cancel b;
  Alcotest.(check bool) "cancelled flag" true (Sim.Event_queue.is_cancelled b);
  Alcotest.(check int) "size excludes cancelled" 2 (Sim.Event_queue.size q);
  let seq = List.init 2 (fun _ -> Option.map snd (Sim.Event_queue.pop q)) in
  Alcotest.(check (list (option string))) "skips cancelled"
    [ Some "a"; Some "c" ] seq

let test_queue_peek () =
  let q = Sim.Event_queue.create () in
  Alcotest.(check (option (float 0.))) "empty peek" None
    (Sim.Event_queue.peek_time q);
  let h = Sim.Event_queue.push q ~time:1. () in
  ignore (Sim.Event_queue.push q ~time:2. ());
  Sim.Event_queue.cancel h;
  Alcotest.(check (option (float 0.))) "peek skips cancelled" (Some 2.)
    (Sim.Event_queue.peek_time q)

(* [size] must stay exact under arbitrary push/cancel/pop
   interleavings — the pre-overhaul implementation recomputed the live
   count by scanning, and rewrote it as a side effect of the read *)
let test_queue_size_exact_random () =
  let r = Sim.Rng.create 7L in
  let q = Sim.Event_queue.create () in
  let live = Hashtbl.create 64 in
  let next = ref 0 in
  let model = ref 0 in
  for _ = 1 to 2_000 do
    (match Sim.Rng.int r 4 with
    | 0 | 1 ->
      let h = Sim.Event_queue.push q ~time:(Sim.Rng.float r 100.) !next in
      Hashtbl.replace live !next h;
      incr next;
      incr model
    | 2 ->
      if Hashtbl.length live > 0 then begin
        let ks = Hashtbl.fold (fun k _ acc -> k :: acc) live [] in
        let k = List.nth ks (Sim.Rng.int r (List.length ks)) in
        Sim.Event_queue.cancel (Hashtbl.find live k);
        Hashtbl.remove live k;
        decr model
      end
    | _ -> (
      match Sim.Event_queue.pop q with
      | Some (_, k) ->
        Hashtbl.remove live k;
        decr model
      | None -> ()));
    if Sim.Event_queue.size q <> !model then
      Alcotest.failf "size drifted: %d <> model %d"
        (Sim.Event_queue.size q) !model;
    if Sim.Event_queue.is_empty q <> (!model = 0) then
      Alcotest.fail "is_empty inconsistent with size"
  done;
  let st = Sim.Event_queue.stats q in
  Alcotest.(check int) "scheduled counter" !next
    st.Sim.Event_queue.scheduled

(* cancelling is idempotent on the counters, and a mostly-dead heap is
   compacted on the next push *)
let test_queue_cancel_idempotent_compaction () =
  let q = Sim.Event_queue.create () in
  let hs =
    Array.init 200 (fun i ->
        Sim.Event_queue.push q ~time:(float_of_int i) i)
  in
  Array.iter Sim.Event_queue.cancel hs;
  Array.iter Sim.Event_queue.cancel hs;
  Alcotest.(check int) "all cancelled" 0 (Sim.Event_queue.size q);
  let st = Sim.Event_queue.stats q in
  Alcotest.(check int) "cancel counted once" 200 st.Sim.Event_queue.cancelled;
  ignore (Sim.Event_queue.push q ~time:1000. (-1));
  let st = Sim.Event_queue.stats q in
  Alcotest.(check bool) "push over dead heap compacts" true
    (st.Sim.Event_queue.compacted >= 1);
  Alcotest.(check int) "live survives compaction" 1 (Sim.Event_queue.size q);
  (match Sim.Event_queue.pop q with
  | Some (t, v) ->
    Alcotest.(check (float 0.)) "survivor time" 1000. t;
    Alcotest.(check int) "survivor payload" (-1) v
  | None -> Alcotest.fail "survivor lost by compaction");
  Alcotest.(check bool) "drained" true (Sim.Event_queue.is_empty q)

let test_queue_nan_rejected () =
  let q = Sim.Event_queue.create () in
  Alcotest.check_raises "NaN time"
    (Invalid_argument "Event_queue.push: NaN time") (fun () ->
      ignore (Sim.Event_queue.push q ~time:Float.nan ()))

let test_queue_large_random () =
  let r = Sim.Rng.create 101L in
  let q = Sim.Event_queue.create () in
  let times = Array.init 5_000 (fun _ -> Sim.Rng.float r 1000.) in
  Array.iter (fun t -> ignore (Sim.Event_queue.push q ~time:t ())) times;
  let last = ref neg_infinity in
  let count = ref 0 in
  let rec drain () =
    match Sim.Event_queue.pop q with
    | None -> ()
    | Some (t, ()) ->
      if t < !last then Alcotest.fail "out of order pop";
      last := t;
      incr count;
      drain ()
  in
  drain ();
  Alcotest.(check int) "all popped" 5_000 !count

(* ------------------------------------------------------------------ *)
(* Engine *)

let test_engine_clock_and_order () =
  let e = Sim.Engine.create () in
  let log = ref [] in
  ignore (Sim.Engine.schedule e ~delay:2. (fun () -> log := "b" :: !log));
  ignore (Sim.Engine.schedule e ~delay:1. (fun () -> log := "a" :: !log));
  Sim.Engine.run e;
  Alcotest.(check (list string)) "handler order" [ "a"; "b" ] (List.rev !log);
  check_float "clock at last event" 2. (Sim.Engine.now e)

let test_engine_nested_scheduling () =
  let e = Sim.Engine.create () in
  let fired = ref 0. in
  ignore
    (Sim.Engine.schedule e ~delay:1. (fun () ->
         ignore
           (Sim.Engine.schedule e ~delay:1.5 (fun () ->
                fired := Sim.Engine.now e))));
  Sim.Engine.run e;
  check_float "nested event at 2.5" 2.5 !fired

let test_engine_until () =
  let e = Sim.Engine.create () in
  let count = ref 0 in
  for i = 1 to 10 do
    ignore (Sim.Engine.schedule e ~delay:(float_of_int i) (fun () -> incr count))
  done;
  Sim.Engine.run ~until:5.5 e;
  Alcotest.(check int) "only first five fire" 5 !count;
  check_float "clock parked at horizon" 5.5 (Sim.Engine.now e);
  Sim.Engine.run e;
  Alcotest.(check int) "rest fire on resume" 10 !count

let test_engine_past_rejected () =
  let e = Sim.Engine.create () in
  ignore (Sim.Engine.schedule e ~delay:1. (fun () ->
      match Sim.Engine.schedule_at e ~time:0.5 (fun () -> ()) with
      | _ -> Alcotest.fail "scheduling into the past must raise"
      | exception Invalid_argument _ -> ()));
  Sim.Engine.run e

let test_engine_periodic () =
  let e = Sim.Engine.create () in
  let ticks = ref 0 in
  ignore
  @@ Sim.Engine.schedule_periodic e ~interval:1. (fun () ->
         incr ticks;
         !ticks < 4);
  Sim.Engine.run e;
  Alcotest.(check int) "stops when false" 4 !ticks;
  check_float "last tick time" 4. (Sim.Engine.now e)

let test_engine_cancel () =
  let e = Sim.Engine.create () in
  let fired = ref false in
  let h = Sim.Engine.schedule e ~delay:1. (fun () -> fired := true) in
  Sim.Engine.cancel h;
  Sim.Engine.run e;
  Alcotest.(check bool) "cancelled handler never fires" false !fired

let test_engine_periodic_cancel () =
  let e = Sim.Engine.create () in
  let ticks = ref 0 in
  let p =
    Sim.Engine.schedule_periodic e ~interval:1. (fun () ->
        incr ticks;
        true)
  in
  Alcotest.(check bool) "active before run" true (Sim.Engine.periodic_active p);
  (* a third party stops the schedule mid-run *)
  ignore
    (Sim.Engine.schedule e ~delay:3.5 (fun () -> Sim.Engine.cancel_periodic p));
  Sim.Engine.run e;
  Alcotest.(check int) "ticks until cancelled" 3 !ticks;
  Alcotest.(check bool) "inactive after cancel" false
    (Sim.Engine.periodic_active p);
  (* idempotent *)
  Sim.Engine.cancel_periodic p;
  Alcotest.(check bool) "still inactive" false (Sim.Engine.periodic_active p)

let test_engine_step () =
  let e = Sim.Engine.create () in
  let fired = ref 0 in
  ignore (Sim.Engine.schedule e ~delay:1. (fun () -> incr fired));
  ignore (Sim.Engine.schedule e ~delay:2. (fun () -> incr fired));
  Alcotest.(check int) "pending" 2 (Sim.Engine.pending e);
  Alcotest.(check bool) "step one" true (Sim.Engine.step e);
  Alcotest.(check int) "one fired" 1 !fired;
  Alcotest.(check bool) "step two" true (Sim.Engine.step e);
  Alcotest.(check bool) "drained" false (Sim.Engine.step e);
  Alcotest.(check int) "handled" 2 (Sim.Engine.events_handled e)

let test_engine_max_events () =
  let e = Sim.Engine.create () in
  let rec forever () = ignore (Sim.Engine.schedule e ~delay:1. forever) in
  forever ();
  Sim.Engine.run ~max_events:100 e;
  Alcotest.(check int) "bounded" 100 (Sim.Engine.events_handled e)

(* ------------------------------------------------------------------ *)
(* Stats *)

let test_running_moments () =
  let s = Sim.Stats.Running.create () in
  List.iter (Sim.Stats.Running.add s) [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ];
  Alcotest.(check int) "count" 8 (Sim.Stats.Running.count s);
  check_float "mean" 5. (Sim.Stats.Running.mean s);
  check_close "variance" 1e-9 (32. /. 7.) (Sim.Stats.Running.variance s);
  check_float "min" 2. (Sim.Stats.Running.min s);
  check_float "max" 9. (Sim.Stats.Running.max s);
  check_float "sum" 40. (Sim.Stats.Running.sum s)

let test_running_merge () =
  let a = Sim.Stats.Running.create () and b = Sim.Stats.Running.create () in
  let all = Sim.Stats.Running.create () in
  List.iter
    (fun x ->
      Sim.Stats.Running.add all x;
      if x < 5. then Sim.Stats.Running.add a x else Sim.Stats.Running.add b x)
    [ 1.; 2.; 3.; 6.; 7.; 10. ];
  let merged = Sim.Stats.Running.merge a b in
  check_close "merged mean" 1e-9 (Sim.Stats.Running.mean all)
    (Sim.Stats.Running.mean merged);
  check_close "merged variance" 1e-9
    (Sim.Stats.Running.variance all)
    (Sim.Stats.Running.variance merged)

let test_samples_percentiles () =
  let s = Sim.Stats.Samples.create () in
  for i = 1 to 100 do
    Sim.Stats.Samples.add s (float_of_int i)
  done;
  check_float "p0 = min" 1. (Sim.Stats.Samples.percentile s 0.);
  check_float "p100 = max" 100. (Sim.Stats.Samples.percentile s 100.);
  check_float "median" 50.5 (Sim.Stats.Samples.median s);
  check_close "p90" 0.5 90. (Sim.Stats.Samples.percentile s 90.)

let test_samples_cdf () =
  let s = Sim.Stats.Samples.create () in
  List.iter (Sim.Stats.Samples.add s) [ 1.; 2.; 3.; 4. ];
  check_float "cdf below" 0. (Sim.Stats.Samples.cdf_at s 0.5);
  check_float "cdf mid" 0.5 (Sim.Stats.Samples.cdf_at s 2.);
  check_float "cdf above" 1. (Sim.Stats.Samples.cdf_at s 10.);
  let curve = Sim.Stats.Samples.cdf ~points:4 s in
  Alcotest.(check int) "curve points" 4 (List.length curve);
  let last_p = snd (List.nth curve 3) in
  check_float "curve ends at 1" 1. last_p

let test_mean_ci95 () =
  let s = Sim.Stats.Samples.create () in
  for i = 1 to 100 do
    Sim.Stats.Samples.add s (float_of_int (i mod 10))
  done;
  let m, hw = Sim.Stats.Samples.mean_ci95 s in
  check_float "mean" 4.5 m;
  Alcotest.(check bool) "positive half width" true (hw > 0. && hw < 1.);
  let single = Sim.Stats.Samples.create () in
  Sim.Stats.Samples.add single 3.;
  let m1, hw1 = Sim.Stats.Samples.mean_ci95 single in
  check_float "single mean" 3. m1;
  check_float "single hw" 0. hw1;
  Alcotest.check_raises "empty"
    (Invalid_argument "Stats.Samples.mean_ci95: empty") (fun () ->
      ignore (Sim.Stats.Samples.mean_ci95 (Sim.Stats.Samples.create ())))

let test_histogram () =
  let h = Sim.Stats.Histogram.create ~lo:0. ~hi:10. ~bins:5 in
  List.iter (Sim.Stats.Histogram.add h) [ 1.; 3.; 5.; 7.; 9.; -1.; 11. ];
  Alcotest.(check int) "total" 7 (Sim.Stats.Histogram.total h);
  let counts = Sim.Stats.Histogram.counts h in
  Alcotest.(check int) "clamped low" 2 counts.(0);
  Alcotest.(check int) "clamped high" 2 counts.(4);
  Alcotest.(check int) "edges" 6 (Array.length (Sim.Stats.Histogram.bin_edges h))

(* ------------------------------------------------------------------ *)
(* Timeline *)

let test_timeline_average () =
  let tl = Sim.Timeline.create ~start:0. () in
  Sim.Timeline.record tl ~time:2. 10.;   (* 0 over [0,2) *)
  Sim.Timeline.record tl ~time:4. 0.;    (* 10 over [2,4) *)
  check_float "integral" 20. (Sim.Timeline.integral tl ~until:6.);
  check_close "time average" 1e-9 (20. /. 6.)
    (Sim.Timeline.time_average tl ~until:6.);
  check_float "peak" 10. (Sim.Timeline.peak tl);
  check_float "current value" 0. (Sim.Timeline.value tl)

let test_timeline_initial () =
  let tl = Sim.Timeline.create ~initial:5. ~start:1. () in
  check_float "avg of constant" 5. (Sim.Timeline.time_average tl ~until:3.);
  Alcotest.(check int) "one change point" 1 (List.length (Sim.Timeline.changes tl))

let test_timeline_backwards_rejected () =
  let tl = Sim.Timeline.create ~start:0. () in
  Sim.Timeline.record tl ~time:2. 1.;
  Alcotest.check_raises "backwards"
    (Invalid_argument "Timeline.record: time 1 < last 2") (fun () ->
      Sim.Timeline.record tl ~time:1. 2.)

(* ------------------------------------------------------------------ *)
(* Properties *)

let prop_percentile_monotone =
  QCheck.Test.make ~name:"percentiles are monotone in p" ~count:200
    QCheck.(pair (list_of_size Gen.(int_range 1 50) (float_bound_exclusive 1000.))
              (pair (float_bound_inclusive 100.) (float_bound_inclusive 100.)))
    (fun (xs, (p1, p2)) ->
      QCheck.assume (xs <> []);
      let s = Sim.Stats.Samples.create () in
      List.iter (Sim.Stats.Samples.add s) xs;
      let lo = Float.min p1 p2 and hi = Float.max p1 p2 in
      Sim.Stats.Samples.percentile s lo <= Sim.Stats.Samples.percentile s hi)

let prop_running_mean_bounded =
  QCheck.Test.make ~name:"running mean within [min,max]" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 100) (float_range (-1e6) 1e6))
    (fun xs ->
      let s = Sim.Stats.Running.create () in
      List.iter (Sim.Stats.Running.add s) xs;
      let m = Sim.Stats.Running.mean s in
      m >= Sim.Stats.Running.min s -. 1e-6
      && m <= Sim.Stats.Running.max s +. 1e-6)

let prop_queue_pops_sorted =
  QCheck.Test.make ~name:"event queue pops in sorted order" ~count:100
    QCheck.(list (float_bound_exclusive 1e6))
    (fun ts ->
      let q = Sim.Event_queue.create () in
      List.iter (fun t -> ignore (Sim.Event_queue.push q ~time:t ())) ts;
      let rec drain last =
        match Sim.Event_queue.pop q with
        | None -> true
        | Some (t, ()) -> t >= last && drain t
      in
      drain neg_infinity)

let prop_timeline_integral_additive =
  QCheck.Test.make ~name:"timeline integral is additive over records" ~count:200
    QCheck.(list (pair (float_bound_inclusive 10.) (float_bound_inclusive 100.)))
    (fun steps ->
      let tl = Sim.Timeline.create ~start:0. () in
      let time = ref 0. in
      let manual = ref 0. in
      let last_v = ref 0. in
      List.iter
        (fun (dt, v) ->
          manual := !manual +. (!last_v *. dt);
          time := !time +. dt;
          Sim.Timeline.record tl ~time:!time v;
          last_v := v)
        steps;
      let horizon = !time +. 1. in
      let expected = !manual +. !last_v in
      Float.abs (Sim.Timeline.integral tl ~until:horizon -. expected)
      < 1e-6 *. (1. +. Float.abs expected))

let prop_exponential_positive =
  QCheck.Test.make ~name:"exponential draws are positive" ~count:200
    QCheck.(pair int64 (float_range 0.001 100.))
    (fun (seed, mean) ->
      let r = Sim.Rng.create seed in
      Sim.Rng.exponential r ~mean > 0.)

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "sim"
    [
      ( "units",
        [
          Alcotest.test_case "sizes" `Quick test_units_sizes;
          Alcotest.test_case "rates" `Quick test_units_rates;
          Alcotest.test_case "times" `Quick test_units_times;
          Alcotest.test_case "transmission time" `Quick test_transmission_time;
          Alcotest.test_case "paper custody claim" `Quick test_custody_claim;
          Alcotest.test_case "pretty printers" `Quick test_pp_formats;
        ] );
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "int range" `Quick test_rng_int_range;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "exponential mean" `Slow test_exponential_mean;
          Alcotest.test_case "pareto support" `Quick test_pareto_support;
          Alcotest.test_case "pareto mean" `Slow test_pareto_mean;
          Alcotest.test_case "zipf bounds and skew" `Quick test_zipf_bounds_and_skew;
          Alcotest.test_case "poisson mean" `Slow test_poisson_mean;
          Alcotest.test_case "poisson large mean" `Slow test_poisson_large_mean;
          Alcotest.test_case "shuffle is a permutation" `Quick test_shuffle_permutation;
          Alcotest.test_case "choose" `Quick test_choose;
        ] );
      ( "event_queue",
        [
          Alcotest.test_case "time order" `Quick test_queue_order;
          Alcotest.test_case "FIFO ties" `Quick test_queue_fifo_ties;
          Alcotest.test_case "cancel" `Quick test_queue_cancel;
          Alcotest.test_case "peek" `Quick test_queue_peek;
          Alcotest.test_case "NaN rejected" `Quick test_queue_nan_rejected;
          Alcotest.test_case "large random load" `Quick test_queue_large_random;
          Alcotest.test_case "size exact under interleavings" `Quick
            test_queue_size_exact_random;
          Alcotest.test_case "cancel idempotent, compaction" `Quick
            test_queue_cancel_idempotent_compaction;
        ] );
      ( "engine",
        [
          Alcotest.test_case "clock and order" `Quick test_engine_clock_and_order;
          Alcotest.test_case "nested scheduling" `Quick test_engine_nested_scheduling;
          Alcotest.test_case "run until" `Quick test_engine_until;
          Alcotest.test_case "past rejected" `Quick test_engine_past_rejected;
          Alcotest.test_case "periodic" `Quick test_engine_periodic;
          Alcotest.test_case "periodic cancel" `Quick test_engine_periodic_cancel;
          Alcotest.test_case "cancel" `Quick test_engine_cancel;
          Alcotest.test_case "max events guard" `Quick test_engine_max_events;
          Alcotest.test_case "step" `Quick test_engine_step;
        ] );
      ( "stats",
        [
          Alcotest.test_case "running moments" `Quick test_running_moments;
          Alcotest.test_case "running merge" `Quick test_running_merge;
          Alcotest.test_case "percentiles" `Quick test_samples_percentiles;
          Alcotest.test_case "cdf" `Quick test_samples_cdf;
          Alcotest.test_case "histogram" `Quick test_histogram;
          Alcotest.test_case "mean ci95" `Quick test_mean_ci95;
        ] );
      ( "timeline",
        [
          Alcotest.test_case "time average" `Quick test_timeline_average;
          Alcotest.test_case "initial value" `Quick test_timeline_initial;
          Alcotest.test_case "backwards rejected" `Quick test_timeline_backwards_rejected;
        ] );
      ( "properties",
        qc
          [
            prop_percentile_monotone;
            prop_running_mean_bounded;
            prop_queue_pops_sorted;
            prop_exponential_positive;
            prop_timeline_integral_additive;
          ] );
    ]
