(* Observability subsystem: registry, series, sampler, sinks, export
   round-trips, and the end-to-end protocol instrumentation. *)

module M = Obs.Metric
module J = Obs.Json

let check_close msg eps expected got =
  if Float.abs (expected -. got) > eps then
    Alcotest.failf "%s: expected %.17g, got %.17g" msg expected got

(* ------------------------------------------------------------------ *)
(* Metric registry *)

let test_metric_basics () =
  let reg = M.create () in
  let c = M.counter reg ~labels:[ ("node", "1") ] "reqs" in
  let g = M.gauge reg "queue_bits" in
  let h = M.histogram reg ~lo:0. ~hi:10. ~bins:5 "fct" in
  M.incr c;
  M.add c 4;
  Alcotest.(check int) "counter value" 5 (M.counter_value c);
  M.set g 3.5;
  M.gauge_add g 1.5;
  check_close "gauge value" 1e-9 5. (M.gauge_value g);
  List.iter (M.observe h) [ 1.; 3.; 9. ];
  M.callback reg "cb" (fun () -> 42.);
  Alcotest.(check int) "size" 4 (M.size reg);
  match M.snapshot reg with
  | [ s1; s2; s3; s4 ] ->
    Alcotest.(check string) "registration order" "reqs" s1.M.name;
    (match s1.M.value with
    | M.Counter_v 5 -> ()
    | _ -> Alcotest.fail "counter sample");
    Alcotest.(check (list (pair string string))) "labels kept"
      [ ("node", "1") ] s1.M.labels;
    (match s2.M.value with
    | M.Gauge_v v -> check_close "gauge sample" 1e-9 5. v
    | _ -> Alcotest.fail "gauge sample");
    (match s3.M.value with
    | M.Histogram_v hs ->
      Alcotest.(check int) "hist count" 3 hs.M.count;
      check_close "hist sum" 1e-9 13. hs.M.sum;
      check_close "hist min" 1e-9 1. hs.M.min_v;
      check_close "hist max" 1e-9 9. hs.M.max_v;
      Alcotest.(check int) "bucket total" 3
        (List.fold_left (fun acc (_, _, n) -> acc + n) 0 hs.M.buckets)
    | _ -> Alcotest.fail "histogram sample");
    (match s4.M.value with
    | M.Gauge_v v -> check_close "callback read at snapshot" 1e-9 42. v
    | _ -> Alcotest.fail "callback sample")
  | l -> Alcotest.failf "expected 4 samples, got %d" (List.length l)

let test_metric_duplicate () =
  let reg = M.create () in
  ignore (M.counter reg ~labels:[ ("a", "1") ] "x");
  (* same name, different labels: fine *)
  ignore (M.counter reg ~labels:[ ("a", "2") ] "x");
  Alcotest.check_raises "duplicate (name, labels)"
    (Invalid_argument "Metric.register: duplicate x{a=1}") (fun () ->
      ignore (M.counter reg ~labels:[ ("a", "1") ] "x"))

(* The hot path must not allocate: counters are int-field bumps,
   gauges are stores into a flat float record.  Histograms go through
   Stats.Running (a mixed record, so each float store boxes) — bounded
   per-op, but the point of the handle design is that there is no
   per-event closure or lookup on any of them. *)
let test_metric_hot_path_no_alloc () =
  match Sys.backend_type with
  | Sys.Bytecode | Sys.Other _ -> () (* bytecode boxes every float *)
  | Sys.Native ->
    let reg = M.create () in
    let c = M.counter reg "c" in
    let g = M.gauge reg "g" in
    let h = M.histogram reg ~lo:0. ~hi:1. ~bins:4 "h" in
    let rounds = 10_000 in
    let measure f =
      f ();  (* warm up: first call may allocate lazily *)
      let before = Gc.minor_words () in
      for _ = 1 to rounds do
        f ()
      done;
      Gc.minor_words () -. before
    in
    check_close "incr allocates nothing" 0. 0. (measure (fun () -> M.incr c));
    check_close "add allocates nothing" 0. 0. (measure (fun () -> M.add c 3));
    check_close "set allocates nothing" 0. 0.
      (measure (fun () -> M.set g 1.25));
    check_close "gauge_add allocates nothing" 0. 0.
      (measure (fun () -> M.gauge_add g 0.5));
    let per_op = measure (fun () -> M.observe h 0.5) /. float_of_int rounds in
    Alcotest.(check bool) "observe stays O(words), no closures" true
      (per_op < 16.)

(* ------------------------------------------------------------------ *)
(* Series *)

let test_series_basics () =
  let s = Obs.Series.create ~labels:[ ("link", "0") ] "q" in
  Alcotest.(check int) "empty" 0 (Obs.Series.length s);
  Alcotest.(check bool) "no last" true (Obs.Series.last s = None);
  for i = 0 to 999 do
    Obs.Series.add s ~time:(float_of_int i) (float_of_int (i * 2))
  done;
  Alcotest.(check int) "growth past initial capacity" 1000
    (Obs.Series.length s);
  let t5, v5 = Obs.Series.get s 5 in
  check_close "get time" 1e-9 5. t5;
  check_close "get value" 1e-9 10. v5;
  (match Obs.Series.last s with
  | Some (t, v) ->
    check_close "last time" 1e-9 999. t;
    check_close "last value" 1e-9 1998. v
  | None -> Alcotest.fail "last");
  check_close "max" 1e-9 1998. (Obs.Series.max_value s);
  let n = ref 0 in
  Obs.Series.iter (fun ~time:_ _ -> incr n) s;
  Alcotest.(check int) "iter visits all" 1000 !n;
  Alcotest.check_raises "time must not go backwards"
    (Invalid_argument "Series.add: time went backwards") (fun () ->
      Obs.Series.add s ~time:0. 0.)

(* ------------------------------------------------------------------ *)
(* Sampler *)

let test_sampler () =
  let eng = Sim.Engine.create () in
  let smp = Obs.Sampler.create ~eng ~interval:0.1 () in
  let x = ref 0. in
  let hook_runs = ref 0 in
  Obs.Sampler.on_sample smp (fun () -> incr hook_runs);
  let sx = Obs.Sampler.track smp "x" (fun () -> !x) in
  ignore (Obs.Sampler.track smp ~labels:[ ("k", "v") ] "x" (fun () -> 2. *. !x));
  ignore
    (Sim.Engine.schedule eng ~delay:0.25 (fun () -> x := 7.));
  Obs.Sampler.start smp;
  Sim.Engine.run ~until:0.55 eng;
  (* baseline at t=0 plus ticks at 0.1..0.5 *)
  Alcotest.(check int) "points" 6 (Obs.Series.length sx);
  Alcotest.(check int) "hook once per sample" 6 !hook_runs;
  let t0, v0 = Obs.Series.get sx 0 in
  check_close "baseline time" 1e-9 0. t0;
  check_close "baseline value" 1e-9 0. v0;
  let _, v3 = Obs.Series.get sx 3 in
  check_close "sees the scheduled change" 1e-9 7. v3;
  (match Obs.Sampler.find smp ~labels:[ ("k", "v") ] "x" with
  | Some s ->
    let _, v = Obs.Series.get s 5 in
    check_close "labelled probe tracked separately" 1e-9 14. v
  | None -> Alcotest.fail "find with labels");
  Alcotest.(check bool) "find without labels is the plain series" true
    (Obs.Sampler.find smp "x" = Some sx)

(* ------------------------------------------------------------------ *)
(* JSON *)

let test_json_round_trip () =
  let v =
    J.Obj
      [
        ("a", J.Num 0.1);
        ("b", J.Num (-1. /. 3.));
        ("c", J.Num 1e-9);
        ("d", J.Num 12345678901234.);
        ("e", J.Str "quote \" slash \\ newline \n tab \t");
        ("f", J.List [ J.Null; J.Bool true; J.Bool false; J.Num (-0.) ]);
        ("empty", J.Obj []);
      ]
  in
  match J.parse (J.to_string v) with
  | Ok v' ->
    if v' <> v then
      Alcotest.failf "round trip changed the value: %s vs %s" (J.to_string v)
        (J.to_string v')
  | Error e -> Alcotest.failf "parse failed: %s" e

let test_json_accessors () =
  match J.parse {|{"n": 3, "s": "hi", "x": 2.5}|} with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok v ->
    Alcotest.(check (option int)) "int" (Some 3)
      (Option.bind (J.member "n" v) J.to_int);
    Alcotest.(check (option string)) "str" (Some "hi")
      (Option.bind (J.member "s" v) J.to_str);
    (match Option.bind (J.member "x" v) J.to_float with
    | Some f -> check_close "float" 1e-12 2.5 f
    | None -> Alcotest.fail "float member");
    Alcotest.(check bool) "missing member" true (J.member "zz" v = None)

let test_json_nonfinite () =
  (* JSON has no literals for NaN or the infinities: NaN prints as
     null (and parses back as Null — the Export layer restores NaN);
     the infinities print as the overflow literal 1e999, which parses
     straight back to an infinite float *)
  Alcotest.(check string) "nan prints as null" "null"
    (J.to_string (J.Num Float.nan));
  Alcotest.(check string) "inf" "1e999" (J.to_string (J.Num infinity));
  Alcotest.(check string) "-inf" "-1e999" (J.to_string (J.Num neg_infinity));
  let printed =
    J.to_string (J.List [ J.Num Float.nan; J.Num infinity; J.Num neg_infinity ])
  in
  match J.parse printed with
  | Ok (J.List [ J.Null; J.Num pos; J.Num neg ]) ->
    Alcotest.(check bool) "1e999 parses to inf" true (pos = infinity);
    Alcotest.(check bool) "-1e999 parses to -inf" true (neg = neg_infinity)
  | Ok j -> Alcotest.failf "unexpected reparse %s" (J.to_string j)
  | Error e -> Alcotest.failf "reparse failed: %s" e

(* ------------------------------------------------------------------ *)
(* Incremental NDJSON reader *)

(* drain a reader into ([Ok] values, first [Error]) *)
let drain r =
  let rec loop acc =
    match J.Reader.next r with
    | None -> (List.rev acc, None)
    | Some (Ok v) -> loop (v :: acc)
    | Some (Error e) -> (List.rev acc, Some e)
  in
  loop []

let test_reader_basics () =
  let input = {|{"a":1}
[1,2,3]

"hello"
|} in
  (* tiny chunk so every line spans several refills *)
  let r = J.Reader.of_string ~chunk_size:3 input in
  let values, err = drain r in
  Alcotest.(check (option string)) "no error" None err;
  Alcotest.(check int) "three values (blank skipped)" 3 (List.length values);
  Alcotest.(check int) "line count includes the blank" 4 (J.Reader.line_no r);
  match values with
  | [ J.Obj [ ("a", J.Num 1.) ]; J.List _; J.Str "hello" ] -> ()
  | _ -> Alcotest.fail "unexpected values"

let test_reader_long_line () =
  (* one line far beyond the default 8 KiB chunk: memory is bounded by
     the longest line, and the line must reassemble across refills *)
  let big = String.make 70_000 'x' in
  let v = J.Obj [ ("payload", J.Str big); ("n", J.Num 7.) ] in
  let input = J.to_string v ^ "\n" ^ {|{"tail":true}|} ^ "\n" in
  Alcotest.(check bool) "line really exceeds 64 KiB" true
    (String.length (J.to_string v) > 65_536);
  let values, err = drain (J.Reader.of_string input) in
  Alcotest.(check (option string)) "no error" None err;
  (match values with
  | [ v'; J.Obj [ ("tail", J.Bool true) ] ] ->
    if v' <> v then Alcotest.fail "long line changed in transit"
  | _ -> Alcotest.fail "unexpected shape");
  (* same input through a pathologically small buffer *)
  let values2, err2 = drain (J.Reader.of_string ~chunk_size:1 input) in
  Alcotest.(check (option string)) "no error (1-byte chunks)" None err2;
  Alcotest.(check bool) "chunk size is invisible" true (values = values2)

let test_reader_truncated_tail () =
  (* a writer died mid-line: the complete lines parse, the torn tail
     surfaces as an Error carrying its line number *)
  let input = "{\"a\":1}\n{\"b\":2}\n{\"c\":" in
  let values, err = drain (J.Reader.of_string input) in
  Alcotest.(check int) "complete lines parsed" 2 (List.length values);
  (match err with
  | Some e ->
    Alcotest.(check bool) ("error names line 3: " ^ e) true
      (String.length e >= 7 && String.sub e 0 7 = "line 3:")
  | None -> Alcotest.fail "truncated tail must error");
  (* a trailing newline-terminated stream has no torn tail *)
  let _, err' = drain (J.Reader.of_string "{\"a\":1}\n") in
  Alcotest.(check (option string)) "terminated stream clean" None err'

let test_reader_crlf () =
  let input = "{\"a\":1}\r\n{\"b\":2}\r\n" in
  let values, err = drain (J.Reader.of_string ~chunk_size:2 input) in
  Alcotest.(check (option string)) "no error" None err;
  match values with
  | [ J.Obj [ ("a", J.Num 1.) ]; J.Obj [ ("b", J.Num 2.) ] ] -> ()
  | _ -> Alcotest.fail "CRLF lines must parse like LF lines"

let test_reader_of_channel () =
  let path = Filename.temp_file "obs_reader" ".ndjson" in
  let oc = open_out path in
  output_string oc "{\"x\":1}\n\n{\"y\":[1,2]}\n";
  close_out oc;
  let ic = open_in path in
  let values, err = drain (J.Reader.of_channel ~chunk_size:4 ic) in
  close_in ic;
  Sys.remove path;
  Alcotest.(check (option string)) "no error" None err;
  Alcotest.(check int) "two values" 2 (List.length values)

(* equivalence sweep: anything the in-memory parser round-trips, the
   incremental reader must round-trip identically — including the
   non-finite encodings the Export layer leans on *)
let test_reader_matches_parse () =
  let cases =
    [
      J.Null;
      J.Bool false;
      J.Num 0.1;
      J.Num (-1. /. 3.);
      J.Num 1e-9;
      J.Num infinity;
      J.Str "quote \" slash \\ newline \n tab \t";
      J.List [ J.Null; J.Bool true; J.Num (-0.) ];
      J.Obj [ ("nested", J.Obj [ ("deep", J.List [ J.Num 1. ]) ]) ];
      Obs.Export.sample_to_json
        { M.name = "c"; labels = [ ("node", "3") ]; value = M.Counter_v 17 };
    ]
  in
  let input =
    String.concat "" (List.map (fun v -> J.to_string v ^ "\n") cases)
  in
  List.iter
    (fun chunk_size ->
      let values, err = drain (J.Reader.of_string ~chunk_size input) in
      Alcotest.(check (option string)) "no error" None err;
      let expected =
        List.map
          (fun v ->
            match J.parse (J.to_string v) with
            | Ok v' -> v'
            | Error e -> Alcotest.failf "in-memory parse failed: %s" e)
          cases
      in
      if values <> expected then
        Alcotest.failf "reader disagrees with J.parse at chunk_size %d"
          chunk_size)
    [ 1; 2; 7; 4096 ]

(* ------------------------------------------------------------------ *)
(* Export round-trips *)

let test_export_sample_round_trip () =
  let samples =
    [
      { M.name = "c"; labels = [ ("node", "3") ]; value = M.Counter_v 17 };
      { M.name = "g"; labels = []; value = M.Gauge_v 2.75 };
      {
        M.name = "h";
        labels = [ ("a", "b"); ("c", "d") ];
        value =
          M.Histogram_v
            {
              M.count = 2;
              sum = 3.;
              mean = 1.5;
              min_v = 1.;
              max_v = 2.;
              buckets = [ (0., 1., 1); (1., 2., 1) ];
            };
      };
    ]
  in
  List.iter
    (fun s ->
      match Obs.Export.sample_of_json (Obs.Export.sample_to_json s) with
      | Ok s' ->
        if s <> s' then Alcotest.failf "sample %s changed in round trip" s.M.name
      | Error e -> Alcotest.failf "sample %s: %s" s.M.name e)
    samples

let test_export_ndjson_and_csv () =
  let s = Obs.Series.create ~labels:[ ("link", "1") ] "q" in
  Obs.Series.add s ~time:0. 1.5;
  Obs.Series.add s ~time:0.1 2.5;
  let buf = Buffer.create 256 in
  Obs.Export.series_to_ndjson buf [ s ];
  let lines =
    String.split_on_char '\n' (String.trim (Buffer.contents buf))
  in
  Alcotest.(check int) "one line per point" 2 (List.length lines);
  List.iteri
    (fun i line ->
      match
        Result.bind (J.parse line) (fun j ->
            Obs.Export.point_of_json j)
      with
      | Ok (name, labels, t, v) ->
        Alcotest.(check string) "series name" "q" name;
        Alcotest.(check (list (pair string string))) "labels"
          [ ("link", "1") ] labels;
        check_close "time" 1e-12 (0.1 *. float_of_int i) t;
        check_close "value" 1e-12 (1.5 +. float_of_int i) v
      | Error e -> Alcotest.failf "line %d: %s" i e)
    lines;
  (* CSV: header + histogram flattening *)
  let reg = M.create () in
  let h = M.histogram reg ~lo:0. ~hi:4. ~bins:2 "fct" in
  M.observe h 1.;
  M.observe h 3.;
  let buf = Buffer.create 256 in
  Obs.Export.snapshot_to_csv buf ~time:9. (M.snapshot reg);
  Obs.Export.series_to_csv buf [ s ];
  let rows =
    String.split_on_char '\n' (String.trim (Buffer.contents buf))
  in
  (* fct.count/.sum/.mean/.min/.max + 2 series points *)
  Alcotest.(check int) "csv rows" 7 (List.length rows);
  Alcotest.(check bool) "histogram flattened" true
    (List.exists
       (fun r ->
         String.length r >= 20 && String.sub r 0 20 = "histogram,fct.count,")
       rows);
  Alcotest.(check string) "header shape" "record,name,labels,time,value"
    Obs.Export.csv_header;
  Alcotest.(check string) "labels cell" "a=1;b=2"
    (Obs.Export.labels_to_string [ ("a", "1"); ("b", "2") ])

let reparse_sample s =
  (* full text path: print, reparse, decode *)
  match
    Result.bind
      (J.parse (J.to_string (Obs.Export.sample_to_json s)))
      Obs.Export.sample_of_json
  with
  | Ok s' -> s'
  | Error e -> Alcotest.failf "sample %s: %s" s.M.name e

let test_export_nonfinite_round_trip () =
  (* a NaN gauge (e.g. a 0/0 ratio callback) survives the text path *)
  let g = { M.name = "g"; labels = []; value = M.Gauge_v Float.nan } in
  (match reparse_sample g with
  | { M.value = M.Gauge_v v; _ } ->
    Alcotest.(check bool) "NaN gauge round-trips" true (Float.is_nan v)
  | _ -> Alcotest.fail "gauge decoded to a different kind");
  (* an empty histogram summary carries min = +inf, max = -inf *)
  let h =
    {
      M.name = "h";
      labels = [];
      value =
        M.Histogram_v
          {
            M.count = 0;
            sum = 0.;
            mean = 0.;
            min_v = infinity;
            max_v = neg_infinity;
            buckets = [ (0., 1., 0) ];
          };
    }
  in
  if reparse_sample h <> h then
    Alcotest.fail "empty histogram changed in round trip";
  (* sampled points: NaN and the infinities through point_of_json *)
  let s = Obs.Series.create "raw" in
  Obs.Series.add s ~time:0. Float.nan;
  Obs.Series.add s ~time:1. infinity;
  Obs.Series.add s ~time:2. neg_infinity;
  let buf = Buffer.create 256 in
  Obs.Export.series_to_ndjson buf [ s ];
  let vs =
    String.split_on_char '\n' (String.trim (Buffer.contents buf))
    |> List.map (fun line ->
           match Result.bind (J.parse line) Obs.Export.point_of_json with
           | Ok (_, _, _, v) -> v
           | Error e -> Alcotest.failf "point %S: %s" line e)
  in
  match vs with
  | [ a; b; c ] ->
    Alcotest.(check bool) "NaN point" true (Float.is_nan a);
    Alcotest.(check bool) "inf point" true (b = infinity);
    Alcotest.(check bool) "-inf point" true (c = neg_infinity)
  | _ -> Alcotest.failf "expected 3 points, got %d" (List.length vs)

let test_export_empty_series () =
  let s = Obs.Series.create ~labels:[ ("k", "v") ] "nothing" in
  Alcotest.(check int) "no points" 0 (Obs.Series.length s);
  Alcotest.(check bool) "no last" true (Obs.Series.last s = None);
  let buf = Buffer.create 16 in
  Obs.Export.series_to_ndjson buf [ s ];
  Alcotest.(check string) "no ndjson lines" "" (Buffer.contents buf);
  Obs.Export.series_to_csv buf [ s ];
  Alcotest.(check string) "no csv rows" "" (Buffer.contents buf)

(* ------------------------------------------------------------------ *)
(* Sinks *)

let some_events =
  [
    Chunksim.Trace.Cached { node = 1; flow = 0; idx = 3 };
    Chunksim.Trace.Phase_change { node = 1; link = 2; phase = "backpressure" };
    Chunksim.Trace.Bp_signal { node = 1; flow = 0; engage = true };
    Chunksim.Trace.Cached { node = 1; flow = 0; idx = 4 };
  ]

let test_sink_counter_tap_and_filter () =
  let reg = M.create () in
  let tap = Obs.Sink.counter_tap reg in
  let seen = ref 0 in
  let only_cached =
    Obs.Sink.filter
      (function Chunksim.Trace.Cached _ -> true | _ -> false)
      (Obs.Sink.callback (fun _ _ -> incr seen))
  in
  let fan = Obs.Sink.fan_out [ tap; only_cached ] in
  let tr = Chunksim.Trace.create () in
  Obs.Sink.attach fan tr;
  List.iteri
    (fun i e -> Chunksim.Trace.record tr ~time:(float_of_int i) e)
    some_events;
  Alcotest.(check int) "filter passed only cached" 2 !seen;
  let value kind =
    List.find_map
      (fun (s : M.sample) ->
        if s.M.name = "trace_events_total" && s.M.labels = [ ("kind", kind) ]
        then
          match s.M.value with
          | M.Counter_v n -> Some n
          | _ -> None
        else None)
      (M.snapshot reg)
  in
  Alcotest.(check (option int)) "cached counted" (Some 2) (value "cached");
  Alcotest.(check (option int)) "phase_change counted" (Some 1)
    (value "phase_change");
  Alcotest.(check (option int)) "sent untouched" (Some 0) (value "sent")

let test_sink_ndjson_stream () =
  let file = Filename.temp_file "obs_test" ".ndjson" in
  let oc = open_out file in
  let sink = Obs.Sink.ndjson oc in
  let tr = Chunksim.Trace.create ~limit:2 () in
  Obs.Sink.attach sink tr;
  List.iteri
    (fun i e -> Chunksim.Trace.record tr ~time:(float_of_int i) e)
    some_events;
  Obs.Sink.close sink;
  close_out oc;
  let ic = open_in file in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove file;
  let lines = List.rev !lines in
  (* the file sees every event even though the ring holds only 2 *)
  Alcotest.(check int) "all events on file" (List.length some_events)
    (List.length lines);
  List.iter
    (fun line ->
      match J.parse line with
      | Ok j ->
        Alcotest.(check (option string)) "typed as event" (Some "event")
          (Option.bind (J.member "type" j) J.to_str)
      | Error e -> Alcotest.failf "bad NDJSON line %S: %s" line e)
    lines

let test_sink_ndjson_long_line () =
  (* one NDJSON line well past the 64 KiB the probe CLI sizes its
     buffer for must survive the write + read-back path intact *)
  let big = String.make 100_000 'p' in
  let file = Filename.temp_file "obs_test" ".ndjson" in
  let oc = open_out file in
  let sink = Obs.Sink.ndjson oc in
  let tr = Chunksim.Trace.create () in
  Obs.Sink.attach sink tr;
  Chunksim.Trace.record tr ~time:0.5
    (Chunksim.Trace.Sent { node = 1; link = 2; packet = big });
  Obs.Sink.close sink;
  close_out oc;
  let ic = open_in file in
  let line = input_line ic in
  close_in ic;
  Sys.remove file;
  Alcotest.(check bool) "line longer than the buffer" true
    (String.length line > 100_000);
  match J.parse line with
  | Ok j ->
    Alcotest.(check (option string)) "payload intact" (Some big)
      (Option.bind (J.member "packet" j) J.to_str)
  | Error e -> Alcotest.failf "long line failed to parse: %s" e

(* ------------------------------------------------------------------ *)
(* Observer + instrumented protocol run *)

let backpressure_graph () =
  let b = Topology.Graph.Builder.create () in
  let n0 = Topology.Graph.Builder.add_node b "s" in
  let n1 = Topology.Graph.Builder.add_node b "r" in
  let n2 = Topology.Graph.Builder.add_node b "d" in
  Topology.Graph.Builder.add_edge b ~capacity:10e6 ~delay:2e-3 n0 n1;
  Topology.Graph.Builder.add_edge b ~capacity:2e6 ~delay:2e-3 n1 n2;
  Topology.Graph.Builder.build b

let test_observer_install_once () =
  let o = Obs.Observer.create () in
  let eng = Sim.Engine.create () in
  ignore (Obs.Observer.install_sampler o ~eng ~default_interval:0.1);
  Alcotest.check_raises "second install refused"
    (Invalid_argument "Observer.install_sampler: sampler already installed")
    (fun () ->
      ignore (Obs.Observer.install_sampler o ~eng ~default_interval:0.1))

let test_protocol_instrumented_run () =
  let g = backpressure_graph () in
  let cfg =
    {
      Inrpp.Config.default with
      Inrpp.Config.anticipation = 512;
      cache_bits = 30. *. Inrpp.Config.default.Inrpp.Config.chunk_bits;
    }
  in
  let o = Obs.Observer.create () in
  Obs.Observer.add_sink o (Obs.Sink.counter_tap (Obs.Observer.registry o));
  let r =
    Inrpp.Protocol.run ~cfg ~horizon:30. ~obs:o g
      [ Inrpp.Protocol.flow_spec ~src:0 ~dst:2 150 ]
  in
  Alcotest.(check int) "flow completed" 1 r.Inrpp.Protocol.completed;
  Alcotest.(check bool) "obs implies a trace" true
    (r.Inrpp.Protocol.trace <> None);
  (* the bottleneck router's custody store filled: its sampled series
     must show occupancy *)
  (match Obs.Observer.find_series o ~labels:[ ("node", "1") ] "custody_bits" with
  | Some s ->
    Alcotest.(check bool) "custody occupancy sampled" true
      (Obs.Series.max_value s > 0.)
  | None -> Alcotest.fail "custody_bits series for the bottleneck router");
  (* some interface spent time in back-pressure *)
  let bp_occupancy =
    List.filter
      (fun s ->
        Obs.Series.name s = "iface_phase_occupancy"
        && List.assoc_opt "phase" (Obs.Series.labels s) = Some "backpressure")
      (Obs.Observer.series o)
  in
  Alcotest.(check bool) "phase occupancy series exist" true
    (bp_occupancy <> []);
  Alcotest.(check bool) "an interface sat in backpressure" true
    (List.exists (fun s -> Obs.Series.max_value s > 0.) bp_occupancy);
  (* callback metrics reflect the run; the counter tap saw the trace *)
  let snapshot = Obs.Observer.snapshot o in
  let find name labels =
    List.find_map
      (fun (s : M.sample) ->
        if s.M.name = name && s.M.labels = labels then
          match s.M.value with
          | M.Gauge_v v -> Some v
          | M.Counter_v n -> Some (float_of_int n)
          | M.Histogram_v _ -> None
        else None)
      snapshot
  in
  (match find "router_bp_engages_total" [ ("node", "1") ] with
  | Some v -> Alcotest.(check bool) "bottleneck engaged bp" true (v > 0.)
  | None -> Alcotest.fail "router_bp_engages_total metric");
  (match find "trace_events_total" [ ("kind", "phase_change") ] with
  | Some v ->
    check_close "tap agrees with the result counters" 0.5
      (float_of_int r.Inrpp.Protocol.phase_transitions) v
  | None -> Alcotest.fail "trace_events_total metric");
  (* every sampled series exports and parses back *)
  let buf = Buffer.create 4096 in
  Obs.Export.series_to_ndjson buf (Obs.Observer.series o);
  Obs.Export.snapshot_to_ndjson buf snapshot;
  String.split_on_char '\n' (String.trim (Buffer.contents buf))
  |> List.iter (fun line ->
         match J.parse line with
         | Ok _ -> ()
         | Error e -> Alcotest.failf "export line %S: %s" line e)

let () =
  Alcotest.run "obs"
    [
      ( "metric",
        [
          Alcotest.test_case "basics" `Quick test_metric_basics;
          Alcotest.test_case "duplicate" `Quick test_metric_duplicate;
          Alcotest.test_case "hot path no alloc" `Quick
            test_metric_hot_path_no_alloc;
        ] );
      ("series", [ Alcotest.test_case "basics" `Quick test_series_basics ]);
      ("sampler", [ Alcotest.test_case "ticks" `Quick test_sampler ]);
      ( "json",
        [
          Alcotest.test_case "round trip" `Quick test_json_round_trip;
          Alcotest.test_case "accessors" `Quick test_json_accessors;
          Alcotest.test_case "non-finite floats" `Quick test_json_nonfinite;
        ] );
      ( "reader",
        [
          Alcotest.test_case "basics" `Quick test_reader_basics;
          Alcotest.test_case "long line" `Quick test_reader_long_line;
          Alcotest.test_case "truncated tail" `Quick
            test_reader_truncated_tail;
          Alcotest.test_case "crlf" `Quick test_reader_crlf;
          Alcotest.test_case "of_channel" `Quick test_reader_of_channel;
          Alcotest.test_case "matches in-memory parser" `Quick
            test_reader_matches_parse;
        ] );
      ( "export",
        [
          Alcotest.test_case "sample round trip" `Quick
            test_export_sample_round_trip;
          Alcotest.test_case "ndjson and csv" `Quick test_export_ndjson_and_csv;
          Alcotest.test_case "non-finite round trip" `Quick
            test_export_nonfinite_round_trip;
          Alcotest.test_case "empty series" `Quick test_export_empty_series;
        ] );
      ( "sink",
        [
          Alcotest.test_case "counter tap + filter + fan out" `Quick
            test_sink_counter_tap_and_filter;
          Alcotest.test_case "ndjson stream" `Quick test_sink_ndjson_stream;
          Alcotest.test_case "ndjson long line" `Quick
            test_sink_ndjson_long_line;
        ] );
      ( "observer",
        [
          Alcotest.test_case "install once" `Quick test_observer_install_once;
          Alcotest.test_case "instrumented protocol run" `Quick
            test_protocol_instrumented_run;
        ] );
    ]
