(* Tests for the flow-level simulator: allocation (max-min and INRP),
   routing strategies, workload generation, snapshots and the DES. *)

open Topology
module A = Flowsim.Allocation
module R = Flowsim.Routing
module W = Flowsim.Workload

let check_close msg tolerance expected actual =
  Alcotest.(check (float tolerance)) msg expected actual

let mbps x = x *. 1e6

let path_of g ns = Path.of_nodes_exn g ns

(* ------------------------------------------------------------------ *)
(* max_min *)

let test_max_min_single_link () =
  let g = Graph.of_edges ~capacity:(mbps 10.) 2 [ (0, 1) ] in
  let p = path_of g [ 0; 1 ] in
  let rates = A.max_min g [| (p, infinity); (p, infinity); (p, infinity) |] in
  Array.iter (fun r -> check_close "equal thirds" 1. (mbps 10. /. 3.) r) rates

let test_max_min_demand_cap () =
  let g = Graph.of_edges ~capacity:(mbps 10.) 2 [ (0, 1) ] in
  let p = path_of g [ 0; 1 ] in
  let rates = A.max_min g [| (p, mbps 2.); (p, infinity) |] in
  check_close "capped flow" 1. (mbps 2.) rates.(0);
  check_close "leftover to the elastic flow" 1. (mbps 8.) rates.(1)

let test_max_min_fig3_e2e () =
  (* the paper's left-hand Fig. 3 numbers: 2 and 8 Mbps *)
  let g = Builders.fig3 () in
  let a = path_of g [ 0; 1; 3 ] in
  let b = path_of g [ 0; 1 ] in
  let rates = A.max_min g [| (a, infinity); (b, infinity) |] in
  check_close "flow A limited by bottleneck" 1. (mbps 2.) rates.(0);
  check_close "flow B grabs the rest" 1. (mbps 8.) rates.(1);
  let jain = Metrics.Fairness.jain [| rates.(0); rates.(1) |] in
  check_close "paper's fairness index" 0.01 0.735 jain

let test_max_min_parking_lot () =
  (* classic parking lot: long flow crosses two links shared with one
     short flow each: all get half of each link *)
  let g = Graph.of_edges ~capacity:(mbps 10.) 3 [ (0, 1); (1, 2) ] in
  let long = path_of g [ 0; 1; 2 ] in
  let s1 = path_of g [ 0; 1 ] in
  let s2 = path_of g [ 1; 2 ] in
  let rates = A.max_min g [| (long, infinity); (s1, infinity); (s2, infinity) |] in
  check_close "long" 1. (mbps 5.) rates.(0);
  check_close "short 1" 1. (mbps 5.) rates.(1);
  check_close "short 2" 1. (mbps 5.) rates.(2)

let test_max_min_empty_and_zero_hop () =
  let g = Graph.of_edges 2 [ (0, 1) ] in
  Alcotest.(check int) "empty" 0 (Array.length (A.max_min g [||]));
  let z = Path.singleton 0 in
  let rates = A.max_min g [| (z, 5.); (z, infinity) |] in
  check_close "zero-hop takes demand" 1e-9 5. rates.(0);
  check_close "unbounded zero-hop gets zero" 1e-9 0. rates.(1)

let test_max_min_conservation () =
  (* no link carries more than its capacity *)
  let g = Isp_zoo.graph Isp_zoo.Vsnl in
  let router = R.create g R.sp in
  let pairs = [ (0, 5); (1, 7); (2, 9); (3, 10); (0, 10); (4, 8) ] in
  let paths =
    List.filter_map
      (fun (s, d) -> R.route router ~flow_id:0 s d)
      pairs
  in
  let demands = Array.of_list (List.map (fun p -> (p, infinity)) paths) in
  let rates = A.max_min g demands in
  let carried = Array.make (Graph.link_count g) 0. in
  Array.iteri
    (fun i (p, _) ->
      List.iter
        (fun (l : Link.t) -> carried.(l.Link.id) <- carried.(l.Link.id) +. rates.(i))
        p.Path.links)
    demands;
  Array.iteri
    (fun lid c ->
      let cap = (Graph.link g lid).Link.capacity in
      if c > cap +. 1e-6 then
        Alcotest.failf "link %d overbooked: %.3g > %.3g" lid c cap)
    carried

(* ------------------------------------------------------------------ *)
(* INRP allocation *)

let fig3_pairs = [ (0, 3); (0, 1) ]

let run_fig3 strategy =
  Flowsim.Simulator.run_static (Builders.fig3 ()) ~strategy fig3_pairs

let test_inrp_fig3 () =
  (* the paper's right-hand Fig. 3 numbers: 5 and 5 Mbps, Jain = 1 *)
  let rates = run_fig3 (R.Inrp A.fig3_inrp) in
  check_close "flow A detours to 5" 1000. (mbps 5.) rates.(0);
  check_close "flow B equal share 5" 1000. (mbps 5.) rates.(1)

let test_inrp_no_detour_matches_bottleneck () =
  (* without detours INRP degenerates to the bottleneck rate *)
  let g = Graph.of_edges ~capacity:(mbps 10.) 3 [ (0, 1); (1, 2) ] in
  let table = A.Detour_table.create g in
  let p = path_of g [ 0; 1; 2 ] in
  let res =
    A.inrp
      ~options:{ A.default_inrp with max_detour = 0 }
      ~detours:(A.Detour_table.find table) g
      [| (p, infinity) |]
  in
  check_close "full line rate" 1000. (mbps 10.) res.A.delivered.(0)

let test_inrp_delivered_le_pushed () =
  let g = Isp_zoo.graph Isp_zoo.Vsnl in
  let table = A.Detour_table.create g in
  let router = R.create g R.sp in
  let paths =
    List.filter_map (fun (s, d) -> R.route router ~flow_id:0 s d)
      [ (0, 6); (1, 8); (2, 10); (5, 9) ]
  in
  let demands = Array.of_list (List.map (fun p -> (p, 1e10)) paths) in
  let res = A.inrp ~detours:(A.Detour_table.find table) g demands in
  Array.iteri
    (fun i d ->
      if d > res.A.pushed.(i) +. 1e-6 then
        Alcotest.failf "flow %d delivered %.3g > pushed %.3g" i d
          res.A.pushed.(i))
    res.A.delivered

let test_inrp_capacity_conserved () =
  let g = Isp_zoo.graph Isp_zoo.Vsnl in
  let table = A.Detour_table.create g in
  let router = R.create g R.sp in
  let paths =
    List.filter_map (fun (s, d) -> R.route router ~flow_id:0 s d)
      [ (0, 6); (1, 8); (2, 10); (5, 9); (3, 7); (0, 9) ]
  in
  let demands = Array.of_list (List.map (fun p -> (p, infinity)) paths) in
  let res = A.inrp ~detours:(A.Detour_table.find table) g demands in
  Array.iteri
    (fun lid c ->
      let cap = (Graph.link g lid).Link.capacity in
      if c > cap +. 1e-6 then Alcotest.failf "link %d overbooked" lid;
      if c < -.1e-6 then Alcotest.failf "link %d negative load" lid)
    res.A.link_carried

let test_inrp_effective_hops_sane () =
  let g = Builders.fig3 () in
  let table = A.Detour_table.create g in
  let a = path_of g [ 0; 1; 3 ] in
  let b = path_of g [ 0; 1 ] in
  let res =
    A.inrp ~options:A.fig3_inrp ~detours:(A.Detour_table.find table) g
      [| (a, infinity); (b, infinity) |]
  in
  (* flow A: 2 Mbps over 2 hops, 3 Mbps over 3 hops -> 2.6 mean hops *)
  check_close "rate-weighted hops" 0.05 2.6 res.A.effective_hops.(0);
  check_close "flow B stays on its link" 0.01 1. res.A.effective_hops.(1);
  Alcotest.(check bool) "flow A traffic detoured" true
    (res.A.detoured_fraction > 0.2)

let test_inrp_options_validation () =
  let g = Builders.fig3 () in
  let table = A.Detour_table.create g in
  let p = path_of g [ 0; 1 ] in
  Alcotest.check_raises "rounds" (Invalid_argument "Allocation.inrp: rounds < 1")
    (fun () ->
      ignore
        (A.inrp
           ~options:{ A.default_inrp with rounds = 0 }
           ~detours:(A.Detour_table.find table) g [| (p, 1.) |]));
  Alcotest.check_raises "bp" (Invalid_argument "Allocation.inrp: bp_iterations < 1")
    (fun () ->
      ignore
        (A.inrp
           ~options:{ A.default_inrp with bp_iterations = 0 }
           ~detours:(A.Detour_table.find table) g [| (p, 1.) |]))

(* ------------------------------------------------------------------ *)
(* Routing *)

let test_routing_sp_deterministic () =
  let g = Isp_zoo.graph Isp_zoo.Vsnl in
  let r1 = R.create g R.sp and r2 = R.create g R.sp in
  for flow = 0 to 20 do
    let src = flow mod Graph.node_count g in
    let dst = (flow * 3 + 1) mod Graph.node_count g in
    if src <> dst then begin
      let a = R.route r1 ~flow_id:flow src dst in
      let b = R.route r2 ~flow_id:flow src dst in
      match a, b with
      | Some pa, Some pb ->
        Alcotest.(check bool) "same path" true (Path.equal pa pb)
      | None, None -> ()
      | _ -> Alcotest.fail "inconsistent reachability"
    end
  done

let test_routing_ecmp_spreads () =
  let g = Builders.grid 3 3 in
  let r = R.create g R.ecmp in
  let used = Hashtbl.create 4 in
  for flow = 0 to 63 do
    match R.route r ~flow_id:flow 0 8 with
    | Some p -> Hashtbl.replace used p.Path.nodes ()
    | None -> Alcotest.fail "grid reachable"
  done;
  Alcotest.(check bool) "uses several equal-cost paths" true
    (Hashtbl.length used >= 2)

let test_routing_detours_only_inrp () =
  let g = Builders.fig3 () in
  let l = Option.get (Graph.find_link g 1 3) in
  let sp = R.create g R.sp in
  Alcotest.(check int) "sp: none" 0 (List.length (R.detours sp l));
  let inrp = R.create g R.inrp in
  Alcotest.(check bool) "inrp: some" true (List.length (R.detours inrp l) > 0)

let test_routing_names () =
  Alcotest.(check string) "sp" "SP" (R.name R.sp);
  Alcotest.(check string) "ecmp" "ECMP" (R.name R.ecmp);
  Alcotest.(check string) "inrp" "INRP" (R.name R.inrp);
  Alcotest.(check bool) "is_inrp" true (R.is_inrp R.inrp);
  Alcotest.(check bool) "sp not inrp" false (R.is_inrp R.sp)

(* ------------------------------------------------------------------ *)
(* Workload *)

let test_workload_distinct_pairs () =
  let g = Builders.full_mesh 5 in
  let wl = W.create ~arrival_rate:10. ~size:(W.Fixed 100.) ~seed:3L g in
  for id = 0 to 200 do
    let src, dst, size = W.draw_flow wl ~time:0. ~id in
    if src = dst then Alcotest.fail "src = dst";
    check_close "fixed size" 1e-9 100. size
  done

let test_workload_role_filter () =
  let g = Builders.dumbbell 3 in
  (* dumbbell hosts are nodes 2..7 *)
  let wl =
    W.create ~endpoints:(W.Role_pairs [ Node.Host ]) ~arrival_rate:1.
      ~size:(W.Fixed 1.) ~seed:1L g
  in
  for id = 0 to 100 do
    let src, dst, _ = W.draw_flow wl ~time:0. ~id in
    if src < 2 || dst < 2 then Alcotest.fail "router chosen as endpoint"
  done

let test_workload_sizes () =
  let g = Builders.full_mesh 3 in
  let wl =
    W.create ~arrival_rate:5. ~size:(W.Exponential 1e6) ~seed:9L g
  in
  let acc = ref 0. in
  let n = 20_000 in
  for id = 0 to n - 1 do
    let _, _, size = W.draw_flow wl ~time:0. ~id in
    if size <= 0. then Alcotest.fail "non-positive size";
    acc := !acc +. size
  done;
  check_close "mean size" 5e4 1e6 (!acc /. float_of_int n);
  check_close "offered load" 1e-3 5e6 (W.offered_load wl)

let test_workload_interarrivals () =
  let g = Builders.full_mesh 3 in
  let wl = W.create ~arrival_rate:100. ~size:(W.Fixed 1.) ~seed:5L g in
  let acc = ref 0. in
  let n = 50_000 in
  for _ = 1 to n do
    acc := !acc +. W.next_interarrival wl
  done;
  check_close "mean gap 10ms" 5e-4 0.01 (!acc /. float_of_int n)

let test_workload_pareto_shape () =
  let g = Builders.full_mesh 3 in
  let wl =
    W.create ~arrival_rate:1. ~size:(W.Pareto { shape = 0.5; mean = 1e6 })
      ~seed:1L g
  in
  match W.draw_flow wl ~time:0. ~id:0 with
  | _ -> Alcotest.fail "Pareto shape <= 1 accepted"
  | exception Invalid_argument _ -> ()

let test_workload_role_fallback () =
  (* fewer than two nodes with the requested role: fall back to any *)
  let g = Builders.full_mesh 3 in
  let wl =
    W.create ~endpoints:(W.Role_pairs [ Node.Host ]) ~arrival_rate:1.
      ~size:(W.Fixed 1.) ~seed:1L g
  in
  let src, dst, _ = W.draw_flow wl ~time:0. ~id:0 in
  Alcotest.(check bool) "still draws a pair" true (src <> dst)

let test_workload_validation () =
  let g = Builders.full_mesh 3 in
  Alcotest.check_raises "rate" (Invalid_argument "Workload.create: arrival_rate <= 0")
    (fun () -> ignore (W.create ~arrival_rate:0. ~size:(W.Fixed 1.) ~seed:1L g));
  let tiny = Graph.of_edges 1 [] in
  Alcotest.check_raises "nodes" (Invalid_argument "Workload.create: need at least two nodes")
    (fun () -> ignore (W.create ~arrival_rate:1. ~size:(W.Fixed 1.) ~seed:1L tiny))

(* ------------------------------------------------------------------ *)
(* Snapshot *)

let test_snapshot_deterministic () =
  let g = Isp_zoo.graph Isp_zoo.Vsnl in
  let a = Flowsim.Snapshot.run ~strategy:R.sp ~demand:1e9 ~nflows:20 ~seed:4L g in
  let b = Flowsim.Snapshot.run ~strategy:R.sp ~demand:1e9 ~nflows:20 ~seed:4L g in
  check_close "same throughput" 1e-12 a.Flowsim.Snapshot.throughput
    b.Flowsim.Snapshot.throughput

let test_snapshot_throughput_bounds () =
  let g = Isp_zoo.graph Isp_zoo.Vsnl in
  List.iter
    (fun strategy ->
      let r =
        Flowsim.Snapshot.run ~strategy ~demand:2e9 ~nflows:30 ~seed:2L g
      in
      let t = r.Flowsim.Snapshot.throughput in
      if t < 0. || t > 1. +. 1e-9 then
        Alcotest.failf "%s throughput %.3f outside [0,1]"
          r.Flowsim.Snapshot.strategy t)
    [ R.sp; R.ecmp; R.inrp ]

let test_snapshot_fig4a_ordering () =
  (* the paper's Fig. 4a shape: INRP >= ECMP >= SP (allowing noise) *)
  let eps = W.Role_pairs [ Node.Core; Node.Aggregation ] in
  let g = Isp_zoo.graph Isp_zoo.Telstra in
  let n = 2 * Graph.node_count g in
  let seeds = [ 1L; 2L ] in
  let thr strategy =
    (Flowsim.Snapshot.ensemble ~endpoints:eps ~strategy ~demand:6e9 ~nflows:n
       ~seeds g).Flowsim.Snapshot.throughput
  in
  let sp = thr R.sp and ecmp = thr R.ecmp and inrp = thr R.inrp in
  Alcotest.(check bool)
    (Printf.sprintf "INRP (%.3f) > SP (%.3f)" inrp sp)
    true (inrp > sp);
  Alcotest.(check bool)
    (Printf.sprintf "ECMP (%.3f) >= SP (%.3f)" ecmp sp)
    true (ecmp >= sp -. 0.005)

let test_snapshot_stretch_bounds () =
  let eps = W.Role_pairs [ Node.Core; Node.Aggregation ] in
  let g = Isp_zoo.graph Isp_zoo.Exodus in
  let r =
    Flowsim.Snapshot.run ~endpoints:eps ~strategy:R.inrp ~demand:6e9
      ~nflows:(2 * Graph.node_count g) ~seed:1L g
  in
  Alcotest.(check bool) "mean stretch in the Fig. 4b band" true
    (r.Flowsim.Snapshot.mean_stretch >= 1.
    && r.Flowsim.Snapshot.mean_stretch < 1.4);
  let arr = Sim.Stats.Samples.to_sorted_array r.Flowsim.Snapshot.stretch_samples in
  Array.iter
    (fun s -> if s < 1. -. 1e-9 then Alcotest.failf "stretch %.3f < 1" s)
    arr

let test_snapshot_no_detour_matches_sp () =
  (* with detours disabled, the INRP allocator's throughput must land on
     the SP baseline (consistency between the two allocators) *)
  let eps = W.Role_pairs [ Node.Core; Node.Aggregation ] in
  let g = Isp_zoo.graph Isp_zoo.Vsnl in
  let run strategy =
    (Flowsim.Snapshot.run ~endpoints:eps ~strategy ~demand:6e9 ~nflows:20
       ~seed:3L g).Flowsim.Snapshot.throughput
  in
  let sp = run R.sp in
  let inrp0 = run (R.Inrp { A.default_inrp with max_detour = 0 }) in
  check_close
    (Printf.sprintf "no-detour INRP %.3f ~ SP %.3f" inrp0 sp)
    0.03 sp inrp0

let test_snapshot_validation () =
  let g = Builders.fig3 () in
  Alcotest.check_raises "nflows" (Invalid_argument "Snapshot.run: nflows <= 0")
    (fun () -> ignore (Flowsim.Snapshot.run ~strategy:R.sp ~nflows:0 ~seed:1L g));
  Alcotest.check_raises "seeds" (Invalid_argument "Snapshot.ensemble: no seeds")
    (fun () ->
      ignore (Flowsim.Snapshot.ensemble ~strategy:R.sp ~nflows:2 ~seeds:[] g))

(* ------------------------------------------------------------------ *)
(* DES simulator *)

let test_des_conservation () =
  let g = Builders.dumbbell ~bottleneck_capacity:1e8 4 in
  let cfg =
    Flowsim.Simulator.config ~strategy:R.sp ~arrival_rate:20.
      ~size:(W.Exponential 1e6)
      ~endpoints:(W.Role_pairs [ Node.Host ]) ~warmup:0.5 ~duration:3.
      ~seed:11L ()
  in
  let r = Flowsim.Simulator.run g cfg in
  Alcotest.(check bool) "delivered <= offered (plus backlog drain)" true
    (r.Flowsim.Results.delivered_bits
    <= r.Flowsim.Results.offered_bits +. 3. *. 1e8);
  Alcotest.(check bool) "some flows completed" true
    (r.Flowsim.Results.completions > 0);
  Alcotest.(check bool) "throughput positive" true
    (r.Flowsim.Results.throughput > 0.)

let test_des_deterministic () =
  let g = Builders.dumbbell 3 in
  let cfg =
    Flowsim.Simulator.config ~strategy:R.sp ~arrival_rate:10.
      ~endpoints:(W.Role_pairs [ Node.Host ]) ~warmup:0.2 ~duration:1.
      ~seed:21L ()
  in
  let a = Flowsim.Simulator.run g cfg in
  let b = Flowsim.Simulator.run g cfg in
  Alcotest.(check int) "same completions" a.Flowsim.Results.completions
    b.Flowsim.Results.completions;
  check_close "same delivered" 1e-6 a.Flowsim.Results.delivered_bits
    b.Flowsim.Results.delivered_bits

let test_des_underload_completes_everything () =
  (* far below capacity every flow should complete quickly: throughput ~ 1 *)
  let g = Builders.dumbbell ~bottleneck_capacity:1e9 2 in
  let cfg =
    Flowsim.Simulator.config ~strategy:R.sp ~arrival_rate:5.
      ~size:(W.Fixed 1e5)
      ~endpoints:(W.Role_pairs [ Node.Host ]) ~warmup:1. ~duration:5.
      ~seed:31L ()
  in
  let r = Flowsim.Simulator.run g cfg in
  Alcotest.(check bool)
    (Printf.sprintf "throughput %.3f ~ 1" r.Flowsim.Results.throughput)
    true
    (r.Flowsim.Results.throughput > 0.95);
  Alcotest.(check bool) "fct is positive and small" true
    (r.Flowsim.Results.mean_fct > 0. && r.Flowsim.Results.mean_fct < 0.1)

let test_des_inrp_runs () =
  let g = Builders.fig3 () in
  let cfg =
    Flowsim.Simulator.config ~strategy:R.inrp ~arrival_rate:20.
      ~size:(W.Fixed 1e5) ~warmup:0.5 ~duration:2. ~seed:41L ()
  in
  let r = Flowsim.Simulator.run g cfg in
  Alcotest.(check string) "labelled" "INRP" r.Flowsim.Results.strategy;
  Alcotest.(check bool) "completes flows" true (r.Flowsim.Results.completions > 0)

let test_des_validation () =
  let g = Builders.fig3 () in
  Alcotest.check_raises "duration"
    (Invalid_argument "Simulator.run: bad warmup/duration") (fun () ->
      ignore
        (Flowsim.Simulator.run g
           (Flowsim.Simulator.config ~strategy:R.sp ~arrival_rate:1.
              ~duration:0. ())))

let test_run_static_unroutable () =
  let g = Graph.of_edges 4 [ (0, 1); (2, 3) ] in
  match Flowsim.Simulator.run_static g ~strategy:R.sp [ (0, 3) ] with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Flow unit tests *)

let test_flow_lifecycle () =
  let g = Builders.line 3 in
  let p = path_of g [ 0; 1; 2 ] in
  let f =
    Flowsim.Flow.make ~id:1 ~src:0 ~dst:2 ~size:100. ~arrival:1.
      ~shortest_hops:2 ~path:p
  in
  Alcotest.(check bool) "fresh" false (Flowsim.Flow.is_complete f);
  f.Flowsim.Flow.rate <- 50.;
  Flowsim.Flow.advance f ~dt:1.;
  check_close "half drained" 1e-9 50. f.Flowsim.Flow.remaining;
  Flowsim.Flow.advance f ~dt:10.;
  Alcotest.(check bool) "complete" true (Flowsim.Flow.is_complete f);
  check_close "no overdraw" 1e-9 100. f.Flowsim.Flow.delivered_bits;
  check_close "stretch 1 on shortest" 1e-9 1. (Flowsim.Flow.stretch f);
  f.Flowsim.Flow.completed_at <- Some 4.;
  Alcotest.(check (option (float 1e-9))) "fct" (Some 3.) (Flowsim.Flow.fct f)

let test_flow_validation () =
  let g = Builders.line 2 in
  let p = path_of g [ 0; 1 ] in
  Alcotest.check_raises "size" (Invalid_argument "Flow.make: size <= 0")
    (fun () ->
      ignore
        (Flowsim.Flow.make ~id:0 ~src:0 ~dst:1 ~size:0. ~arrival:0.
           ~shortest_hops:1 ~path:p))

(* ------------------------------------------------------------------ *)
(* Properties *)

let prop_max_min_within_capacity =
  QCheck.Test.make ~name:"max-min never overbooks a link" ~count:50
    (QCheck.make QCheck.Gen.(pair (int_range 5 15) (int_range 0 1000)))
    (fun (n, seed) ->
      let g =
        Builders.erdos_renyi ~capacity:1e6 ~seed:(Int64.of_int seed) ~p:0.4 n
      in
      let router = R.create g R.sp in
      let rng = Sim.Rng.create (Int64.of_int (seed + 1)) in
      let paths = ref [] in
      for _ = 1 to 10 do
        let s = Sim.Rng.int rng n and d = Sim.Rng.int rng n in
        if s <> d then
          match R.route router ~flow_id:0 s d with
          | Some p -> paths := p :: !paths
          | None -> ()
      done;
      let demands = Array.of_list (List.map (fun p -> (p, infinity)) !paths) in
      let rates = A.max_min g demands in
      let carried = Array.make (Graph.link_count g) 0. in
      Array.iteri
        (fun i (p, _) ->
          List.iter
            (fun (l : Link.t) ->
              carried.(l.Link.id) <- carried.(l.Link.id) +. rates.(i))
            p.Path.links)
        demands;
      Array.for_all2
        (fun c (l : Link.t) -> c <= l.Link.capacity +. 1.)
        carried
        (Array.of_list (Graph.links g)))

let prop_inrp_no_overbooking =
  QCheck.Test.make ~name:"inrp never overbooks a link" ~count:30
    (QCheck.make QCheck.Gen.(pair (int_range 5 12) (int_range 0 1000)))
    (fun (n, seed) ->
      let g =
        Builders.erdos_renyi ~capacity:1e6 ~seed:(Int64.of_int seed) ~p:0.4 n
      in
      let router = R.create g R.inrp in
      let table = A.Detour_table.create g in
      let rng = Sim.Rng.create (Int64.of_int (seed + 7)) in
      let paths = ref [] in
      for _ = 1 to 8 do
        let s = Sim.Rng.int rng n and d = Sim.Rng.int rng n in
        if s <> d then
          match R.route router ~flow_id:0 s d with
          | Some p -> paths := p :: !paths
          | None -> ()
      done;
      match !paths with
      | [] -> true
      | ps ->
        let demands = Array.of_list (List.map (fun p -> (p, infinity)) ps) in
        let res = A.inrp ~detours:(A.Detour_table.find table) g demands in
        Array.for_all2
          (fun c (l : Link.t) -> c <= l.Link.capacity +. 1. && c >= -1.)
          res.A.link_carried
          (Array.of_list (Graph.links g)))

(* The greedy detour pass serves each flow in [rounds] quanta of
   q_f = demand_f / rounds.  Enabling detours can strand at most one
   quantum per link a parcel crosses, and a detoured parcel crosses at
   most [hops_f + d] links where [d] is the extra length of the longest
   admissible detour (its intermediate count: max(max_detour, 2) when
   [allow_further], else max_detour).  So the aggregate delivered rate
   can drop by at most sum_f q_f * (hops_f + d) — a bound derived from
   the scenario itself rather than a hand-widened constant.  An
   exhaustive sweep of this generator's domain (n in 5..12, seed in
   0..500, 3967 routable scenarios) peaks at 0.67 of the bound, at
   n=5 seed=356 — pinned below as a regression. *)
let detour_deficit ~n ~seed =
  let capacity = 1e6 in
  let g =
    Builders.erdos_renyi ~capacity ~seed:(Int64.of_int seed) ~p:0.4 n
  in
  let router = R.create g R.sp in
  let table = A.Detour_table.create g in
  let rng = Sim.Rng.create (Int64.of_int (seed + 3)) in
  let paths = ref [] in
  for _ = 1 to 8 do
    let s = Sim.Rng.int rng n and d = Sim.Rng.int rng n in
    if s <> d then
      match R.route router ~flow_id:0 s d with
      | Some p -> paths := p :: !paths
      | None -> ()
  done;
  match !paths with
  | [] -> None
  | ps ->
    let demands = Array.of_list (List.map (fun p -> (p, capacity /. 2.)) ps) in
    let total options =
      let res =
        A.inrp ~options ~detours:(A.Detour_table.find table) g demands
      in
      Array.fold_left ( +. ) 0. res.A.delivered
    in
    let opts = A.default_inrp in
    let with_detour = total opts in
    let without = total { opts with A.max_detour = 0 } in
    let detour_extra =
      if opts.A.allow_further then max opts.A.max_detour 2
      else opts.A.max_detour
    in
    let bound =
      Array.fold_left
        (fun acc (p, d) ->
          acc
          +. (d /. float_of_int opts.A.rounds)
             *. float_of_int (Path.hops p + detour_extra))
        0. demands
    in
    Some (without -. with_detour, bound)

let prop_inrp_beats_or_matches_no_detour =
  QCheck.Test.make
    ~name:"detours never reduce aggregate delivered rate" ~count:25
    (QCheck.make QCheck.Gen.(pair (int_range 5 12) (int_range 0 500)))
    (fun (n, seed) ->
      match detour_deficit ~n ~seed with
      | None -> true
      | Some (deficit, bound) -> deficit <= bound)

let test_inrp_detour_deficit_worst_case () =
  (* worst quantisation deficit over the property's whole domain *)
  match detour_deficit ~n:5 ~seed:356 with
  | None -> Alcotest.fail "worst-case scenario became unroutable"
  | Some (deficit, bound) ->
    check_close "deficit is the known worst" 1. 2e5 deficit;
    Alcotest.(check bool)
      (Printf.sprintf "deficit %.0f within derived bound %.0f" deficit bound)
      true
      (deficit <= bound)

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "flowsim"
    [
      ( "max_min",
        [
          Alcotest.test_case "single link equal shares" `Quick test_max_min_single_link;
          Alcotest.test_case "demand cap" `Quick test_max_min_demand_cap;
          Alcotest.test_case "fig3 e2e numbers" `Quick test_max_min_fig3_e2e;
          Alcotest.test_case "parking lot" `Quick test_max_min_parking_lot;
          Alcotest.test_case "empty and zero-hop" `Quick test_max_min_empty_and_zero_hop;
          Alcotest.test_case "conservation" `Quick test_max_min_conservation;
        ] );
      ( "inrp",
        [
          Alcotest.test_case "fig3 INRPP numbers" `Quick test_inrp_fig3;
          Alcotest.test_case "no detour = bottleneck" `Quick test_inrp_no_detour_matches_bottleneck;
          Alcotest.test_case "delivered <= pushed" `Quick test_inrp_delivered_le_pushed;
          Alcotest.test_case "capacity conserved" `Quick test_inrp_capacity_conserved;
          Alcotest.test_case "effective hops" `Quick test_inrp_effective_hops_sane;
          Alcotest.test_case "options validation" `Quick test_inrp_options_validation;
          Alcotest.test_case "detour deficit worst case" `Quick
            test_inrp_detour_deficit_worst_case;
        ] );
      ( "routing",
        [
          Alcotest.test_case "sp deterministic" `Quick test_routing_sp_deterministic;
          Alcotest.test_case "ecmp spreads" `Quick test_routing_ecmp_spreads;
          Alcotest.test_case "detours only inrp" `Quick test_routing_detours_only_inrp;
          Alcotest.test_case "names" `Quick test_routing_names;
        ] );
      ( "workload",
        [
          Alcotest.test_case "distinct pairs" `Quick test_workload_distinct_pairs;
          Alcotest.test_case "role filter" `Quick test_workload_role_filter;
          Alcotest.test_case "sizes" `Quick test_workload_sizes;
          Alcotest.test_case "interarrivals" `Quick test_workload_interarrivals;
          Alcotest.test_case "pareto shape" `Quick test_workload_pareto_shape;
          Alcotest.test_case "role fallback" `Quick test_workload_role_fallback;
          Alcotest.test_case "validation" `Quick test_workload_validation;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "deterministic" `Quick test_snapshot_deterministic;
          Alcotest.test_case "throughput bounds" `Quick test_snapshot_throughput_bounds;
          Alcotest.test_case "fig4a ordering" `Slow test_snapshot_fig4a_ordering;
          Alcotest.test_case "stretch bounds" `Slow test_snapshot_stretch_bounds;
          Alcotest.test_case "no-detour matches SP" `Quick test_snapshot_no_detour_matches_sp;
          Alcotest.test_case "validation" `Quick test_snapshot_validation;
        ] );
      ( "des",
        [
          Alcotest.test_case "conservation" `Quick test_des_conservation;
          Alcotest.test_case "deterministic" `Quick test_des_deterministic;
          Alcotest.test_case "underload completes" `Quick test_des_underload_completes_everything;
          Alcotest.test_case "inrp runs" `Quick test_des_inrp_runs;
          Alcotest.test_case "validation" `Quick test_des_validation;
          Alcotest.test_case "unroutable static" `Quick test_run_static_unroutable;
        ] );
      ( "flow",
        [
          Alcotest.test_case "lifecycle" `Quick test_flow_lifecycle;
          Alcotest.test_case "validation" `Quick test_flow_validation;
        ] );
      ( "properties",
        qc
          [
            prop_max_min_within_capacity;
            prop_inrp_no_overbooking;
            prop_inrp_beats_or_matches_no_detour;
          ] );
    ]
