(* Tests for the INRPP protocol: config, session bookkeeping, the
   rate estimator (eq. 1), the phase machine, flowlets, detour tables,
   and full protocol runs exercising push/detour/back-pressure. *)

let check_close msg tolerance expected actual =
  Alcotest.(check (float tolerance)) msg expected actual

(* ------------------------------------------------------------------ *)
(* Config *)

let test_config_default_valid () =
  match Inrpp.Config.validate Inrpp.Config.default with
  | Ok _ -> ()
  | Error m -> Alcotest.fail m

let test_config_rejections () =
  let bad f =
    match Inrpp.Config.validate (f Inrpp.Config.default) with
    | Ok _ -> Alcotest.fail "accepted invalid config"
    | Error _ -> ()
  in
  bad (fun c -> { c with Inrpp.Config.chunk_bits = 0. });
  bad (fun c -> { c with Inrpp.Config.anticipation = -1 });
  bad (fun c -> { c with Inrpp.Config.engage_ratio = 0.5; release_ratio = 0.6 });
  bad (fun c -> { c with Inrpp.Config.cache_low_water = 0.9 });
  bad (fun c -> { c with Inrpp.Config.speed_factor = 1.5 });
  bad (fun c -> { c with Inrpp.Config.ti = 0. });
  bad (fun c -> { c with Inrpp.Config.flowlet_gap = -1. });
  bad (fun c -> { c with Inrpp.Config.pitless = true; icn_caching = true })

let test_config_chunk_tx_time () =
  check_close "80kb at 10Mbps" 1e-12 8e-3
    (Inrpp.Config.chunk_tx_time Inrpp.Config.default ~rate:10e6)

(* ------------------------------------------------------------------ *)
(* Flow table: both layouts through the same op sequences *)

module Ft = Inrpp.Flow_table

(* the tests are generic over the layout; the registry instantiates
   them for [`Soa] and [`Legacy] so a divergence names the layout *)
let ft_install_release store () =
  let t : unit Ft.t = Ft.create ~store ~gap:0.5 () in
  Alcotest.(check int) "empty find" (-1) (Ft.find t 7);
  Alcotest.(check int) "empty live" 0 (Ft.live t);
  let s = Ft.install t ~flow:7 ~content:42 ~data_link:3 ~req_link:(-1) in
  Alcotest.(check int) "find" s (Ft.find t 7);
  Alcotest.(check int) "flow_of inverts" 7 (Ft.flow_of t s);
  Alcotest.(check int) "content" 42 (Ft.content t s);
  Alcotest.(check int) "data link" 3 (Ft.data_link t s);
  Alcotest.(check int) "req link (none)" (-1) (Ft.req_link t s);
  Alcotest.(check int) "live" 1 (Ft.live t);
  Alcotest.(check int) "peak" 1 (Ft.peak t);
  Ft.set_links t s ~data_link:5 ~req_link:2;
  Alcotest.(check int) "links update" 5 (Ft.data_link t s);
  Ft.release t ~flow:7;
  Alcotest.(check int) "released find" (-1) (Ft.find t 7);
  Alcotest.(check int) "live back to 0" 0 (Ft.live t);
  Alcotest.(check int) "peak sticks" 1 (Ft.peak t);
  Alcotest.(check int) "recycled" 1 (Ft.recycled t);
  Ft.release t ~flow:7 (* no-op *);
  Alcotest.(check int) "double release no-ops" 1 (Ft.recycled t);
  Alcotest.(check bool) "bytes accounted" true (Ft.approx_bytes t > 0)

let ft_slot_recycling store () =
  let t : unit Ft.t = Ft.create ~store ~gap:0.5 () in
  let slots =
    List.init 8 (fun f ->
        Ft.install t ~flow:f ~content:f ~data_link:(-1) ~req_link:(-1))
  in
  Alcotest.(check int) "peak 8" 8 (Ft.peak t);
  List.iter (fun f -> Ft.release t ~flow:f) [ 2; 5 ];
  let s9 = Ft.install t ~flow:99 ~content:99 ~data_link:(-1) ~req_link:(-1) in
  (match store with
  | `Soa ->
    (* the SoA free list hands a released slot to the new flow *)
    Alcotest.(check bool) "freed slot reused" true
      (List.mem s9 [ List.nth slots 2; List.nth slots 5 ])
  | `Legacy ->
    (* legacy slots are flow ids; releases leave holes *)
    Alcotest.(check int) "legacy slot is the flow id" 99 s9);
  Alcotest.(check int) "peak unchanged by reuse" 8 (Ft.peak t);
  Alcotest.(check int) "live" 7 (Ft.live t)

let ft_reinstall_semantics store () =
  let t : int Ft.t = Ft.create ~store ~gap:0.5 () in
  let s = Ft.install t ~flow:3 ~content:1 ~data_link:4 ~req_link:4 in
  Ft.set_bp_local t s true;
  Ft.set_failed_over t s true;
  Ft.set_hot t s (Some 99);
  (* pin the flowlet, then reinstall: slot and pin survive, links,
     flags and hot cache reset (legacy Hashtbl.replace semantics) *)
  let pinned = Ft.flowlet_choose t s ~now:1.0 ~preferred:(Inrpp.Flowlet.Via 2) in
  Alcotest.(check bool) "pin taken" true (pinned = Inrpp.Flowlet.Via 2);
  let s' = Ft.install t ~flow:3 ~content:8 ~data_link:(-1) ~req_link:(-1) in
  Alcotest.(check int) "reinstall keeps slot" s s';
  Alcotest.(check int) "content reset" 8 (Ft.content t s');
  Alcotest.(check bool) "bp flag reset" false (Ft.bp_local t s');
  Alcotest.(check bool) "failover flag reset" false (Ft.failed_over t s');
  Alcotest.(check bool) "hot cache reset" true (Ft.hot t s' = None);
  Alcotest.(check bool) "flowlet pin survives (within gap)" true
    (Ft.flowlet_choose t s' ~now:1.1 ~preferred:Inrpp.Flowlet.Primary
    = Inrpp.Flowlet.Via 2);
  Alcotest.(check int) "reinstall is not a release" 0 (Ft.recycled t)

let ft_flags_roundtrip store () =
  let t : unit Ft.t = Ft.create ~store ~gap:0.5 () in
  let s = Ft.install t ~flow:0 ~content:0 ~data_link:(-1) ~req_link:(-1) in
  let flags =
    [
      ("bp_local", Ft.bp_local, Ft.set_bp_local);
      ("bp_forwarded", Ft.bp_forwarded, Ft.set_bp_forwarded);
      ("detour_override", Ft.detour_override, Ft.set_detour_override);
      ("bp_outage", Ft.bp_outage, Ft.set_bp_outage);
      ("failed_over", Ft.failed_over, Ft.set_failed_over);
    ]
  in
  List.iter
    (fun (name, get, set) ->
      Alcotest.(check bool) (name ^ " starts clear") false (get t s);
      set t s true;
      Alcotest.(check bool) (name ^ " sets") true (get t s);
      (* the other flags must be independent bits *)
      List.iter
        (fun (n2, g2, _) ->
          if n2 <> name then
            Alcotest.(check bool) (name ^ " leaves " ^ n2) false (g2 t s))
        flags;
      set t s false;
      Alcotest.(check bool) (name ^ " clears") false (get t s))
    flags

(* iter order is observable (drain and fault loops); both layouts must
   produce the same order for the same install/release history *)
let test_ft_iter_order_parity () =
  let history t =
    for f = 0 to 19 do
      ignore (Ft.install t ~flow:f ~content:f ~data_link:(-1) ~req_link:(-1))
    done;
    List.iter (fun f -> Ft.release t ~flow:f) [ 3; 11; 4 ];
    for f = 20 to 24 do
      ignore (Ft.install t ~flow:f ~content:f ~data_link:(-1) ~req_link:(-1))
    done;
    let order = ref [] in
    Ft.iter t (fun flow _ -> order := flow :: !order);
    List.rev !order
  in
  let soa : unit Ft.t = Ft.create ~store:`Soa ~gap:0.5 () in
  let legacy : unit Ft.t = Ft.create ~store:`Legacy ~gap:0.5 () in
  Alcotest.(check (list int))
    "iteration order identical across layouts" (history legacy) (history soa)

let test_ft_invalid_args () =
  Alcotest.check_raises "negative gap"
    (Invalid_argument "Flow_table.create: gap < 0") (fun () ->
      ignore (Ft.create ~store:`Soa ~gap:(-1.) () : unit Ft.t));
  let t : unit Ft.t = Ft.create ~store:`Soa ~gap:0.5 () in
  Alcotest.check_raises "negative flow"
    (Invalid_argument "Flow_table.install: flow < 0") (fun () ->
      ignore (Ft.install t ~flow:(-1) ~content:0 ~data_link:0 ~req_link:0))

(* ------------------------------------------------------------------ *)
(* Session *)

let test_session_in_order () =
  let s = Inrpp.Session.create ~total_chunks:3 in
  Alcotest.(check int) "needs 0" 0 (Inrpp.Session.next_needed s);
  Alcotest.(check bool) "new" true (Inrpp.Session.receive s 0 = `New);
  Alcotest.(check bool) "dup" true (Inrpp.Session.receive s 0 = `Duplicate);
  ignore (Inrpp.Session.receive s 1);
  ignore (Inrpp.Session.receive s 2);
  Alcotest.(check bool) "complete" true (Inrpp.Session.is_complete s);
  Alcotest.(check int) "next = total" 3 (Inrpp.Session.next_needed s)

let test_session_out_of_order () =
  let s = Inrpp.Session.create ~total_chunks:5 in
  ignore (Inrpp.Session.receive s 3);
  ignore (Inrpp.Session.receive s 1);
  Alcotest.(check int) "still needs 0" 0 (Inrpp.Session.next_needed s);
  Alcotest.(check int) "highest" 3 (Inrpp.Session.highest_received s);
  ignore (Inrpp.Session.receive s 0);
  Alcotest.(check int) "skips received 1" 2 (Inrpp.Session.next_needed s);
  Alcotest.(check (list int)) "missing below 5" [ 2; 4 ]
    (Inrpp.Session.missing_below s 5);
  Alcotest.(check int) "count" 3 (Inrpp.Session.received_count s)

let test_session_bounds () =
  let s = Inrpp.Session.create ~total_chunks:2 in
  Alcotest.check_raises "out of range"
    (Invalid_argument "Session.receive: chunk 2 outside [0,2)") (fun () ->
      ignore (Inrpp.Session.receive s 2))

(* ------------------------------------------------------------------ *)
(* Rate estimator *)

let test_estimator_converges () =
  let e = Inrpp.Rate_estimator.create ~ti:0.1 ~alpha:0.5 ~capacity:1e6 in
  (* 50 kbit predicted per 0.1 s interval = 500 kbps steady demand *)
  for _ = 1 to 20 do
    for _ = 1 to 5 do
      Inrpp.Rate_estimator.note_request e ~expected_bits:1e4
    done;
    Inrpp.Rate_estimator.tick e
  done;
  check_close "ra converged" 1e3 5e5 (Inrpp.Rate_estimator.anticipated_rate e);
  check_close "ratio" 1e-2 0.5 (Inrpp.Rate_estimator.ratio e);
  Alcotest.(check int) "intervals" 20 (Inrpp.Rate_estimator.intervals e)

let test_estimator_transit_counts () =
  let e = Inrpp.Rate_estimator.create ~ti:1. ~alpha:1. ~capacity:1e6 in
  Inrpp.Rate_estimator.note_request e ~expected_bits:3e5;
  Inrpp.Rate_estimator.note_transit e ~bits:2e5;
  Inrpp.Rate_estimator.tick e;
  check_close "both counted" 1e-6 5e5 (Inrpp.Rate_estimator.anticipated_rate e)

let test_estimator_decays () =
  let e = Inrpp.Rate_estimator.create ~ti:1. ~alpha:0.5 ~capacity:1e6 in
  Inrpp.Rate_estimator.note_request e ~expected_bits:1e6;
  Inrpp.Rate_estimator.tick e;
  let first = Inrpp.Rate_estimator.anticipated_rate e in
  Inrpp.Rate_estimator.tick e;
  Inrpp.Rate_estimator.tick e;
  Alcotest.(check bool) "decays toward zero" true
    (Inrpp.Rate_estimator.anticipated_rate e < first /. 2.)

let test_shares_eq1 () =
  let s = Inrpp.Rate_estimator.Shares.create ~ifaces:3 in
  (* iface 0 forwarded 3 requests to iface 1 and 1 to iface 2 *)
  for _ = 1 to 3 do
    Inrpp.Rate_estimator.Shares.note s ~from_iface:0 ~to_iface:1
  done;
  Inrpp.Rate_estimator.Shares.note s ~from_iface:0 ~to_iface:2;
  check_close "y(0->1)" 1e-9 0.75
    (Inrpp.Rate_estimator.Shares.y s ~from_iface:0 ~to_iface:1);
  check_close "y(0->2)" 1e-9 0.25
    (Inrpp.Rate_estimator.Shares.y s ~from_iface:0 ~to_iface:2);
  check_close "empty row" 1e-9 0.
    (Inrpp.Rate_estimator.Shares.y s ~from_iface:1 ~to_iface:0);
  Inrpp.Rate_estimator.Shares.reset s;
  check_close "reset" 1e-9 0.
    (Inrpp.Rate_estimator.Shares.y s ~from_iface:0 ~to_iface:1)

(* ------------------------------------------------------------------ *)
(* Phase machine *)

let phase_mk () = Inrpp.Phase.create ~engage:0.95 ~release:0.75

let upd p ~ratio ~detour ~pressure ~drained =
  Inrpp.Phase.update p ~ratio ~detour_usable:detour ~custody_pressure:pressure
    ~custody_drained:drained

let test_phase_push_to_detour () =
  let p = phase_mk () in
  Alcotest.(check bool) "starts in push" true
    (Inrpp.Phase.current p = Inrpp.Phase.Push_data);
  let next = upd p ~ratio:1.0 ~detour:true ~pressure:false ~drained:true in
  Alcotest.(check bool) "engages detour" true (next = Inrpp.Phase.Detour)

let test_phase_push_to_bp_without_detour () =
  let p = phase_mk () in
  let next = upd p ~ratio:1.0 ~detour:false ~pressure:false ~drained:true in
  Alcotest.(check bool) "goes straight to bp" true
    (next = Inrpp.Phase.Backpressure)

let test_phase_hysteresis () =
  let p = phase_mk () in
  ignore (upd p ~ratio:1.0 ~detour:true ~pressure:false ~drained:true);
  (* a ratio between release and engage must NOT flip back *)
  let mid = upd p ~ratio:0.85 ~detour:true ~pressure:false ~drained:true in
  Alcotest.(check bool) "holds detour" true (mid = Inrpp.Phase.Detour);
  let low = upd p ~ratio:0.5 ~detour:true ~pressure:false ~drained:true in
  Alcotest.(check bool) "releases" true (low = Inrpp.Phase.Push_data);
  Alcotest.(check int) "transitions counted" 2 (Inrpp.Phase.transitions p)

let test_phase_detour_to_bp_on_pressure () =
  let p = phase_mk () in
  ignore (upd p ~ratio:1.0 ~detour:true ~pressure:false ~drained:true);
  let next = upd p ~ratio:1.0 ~detour:true ~pressure:true ~drained:false in
  Alcotest.(check bool) "custody pressure escalates" true
    (next = Inrpp.Phase.Backpressure)

let test_phase_bp_recovery () =
  let p = phase_mk () in
  ignore (upd p ~ratio:1.0 ~detour:false ~pressure:true ~drained:false);
  (* still congested, not drained: stay *)
  let still = upd p ~ratio:1.0 ~detour:false ~pressure:false ~drained:false in
  Alcotest.(check bool) "stays in bp" true (still = Inrpp.Phase.Backpressure);
  let back = upd p ~ratio:0.5 ~detour:false ~pressure:false ~drained:true in
  Alcotest.(check bool) "recovers to push" true (back = Inrpp.Phase.Push_data)

(* ------------------------------------------------------------------ *)
(* Flowlet *)

let test_flowlet_pinning () =
  let f = Inrpp.Flowlet.create ~gap:0.1 in
  let r1 = Inrpp.Flowlet.choose f ~flow:1 ~now:0. ~preferred:(Inrpp.Flowlet.Via 5) in
  Alcotest.(check bool) "first pick" true (r1 = Inrpp.Flowlet.Via 5);
  (* within the gap, preference changes are ignored *)
  let r2 = Inrpp.Flowlet.choose f ~flow:1 ~now:0.05 ~preferred:Inrpp.Flowlet.Primary in
  Alcotest.(check bool) "pinned" true (r2 = Inrpp.Flowlet.Via 5);
  (* after an idle gap the flow re-pins *)
  let r3 = Inrpp.Flowlet.choose f ~flow:1 ~now:0.3 ~preferred:Inrpp.Flowlet.Primary in
  Alcotest.(check bool) "re-pinned" true (r3 = Inrpp.Flowlet.Primary);
  Alcotest.(check int) "one flow tracked" 1 (Inrpp.Flowlet.active_flows f)

(* ------------------------------------------------------------------ *)
(* Detour table *)

let test_detour_table_candidates () =
  let g = Topology.Builders.fig3 () in
  let t = Inrpp.Detour_table.create g in
  let l13 = Option.get (Topology.Graph.find_link g 1 3) in
  (match Inrpp.Detour_table.candidates t l13 with
  | c :: _ as cs ->
    (* shortest first: the 1-intermediate detour via node 2; the
       2-intermediate 1-0-2-3 fallback follows *)
    Alcotest.(check int) "two candidates" 2 (List.length cs);
    Alcotest.(check int) "deflects to node 2" 2
      c.Inrpp.Detour_table.first_link.Topology.Link.dst;
    Alcotest.(check (list int)) "rejoins at 3" [ 3 ] c.Inrpp.Detour_table.rest;
    Alcotest.(check int) "2 hops" 2 c.Inrpp.Detour_table.hops;
    Alcotest.(check int) "2 links" 2 (List.length c.Inrpp.Detour_table.links)
  | [] -> Alcotest.fail "expected candidates");
  Alcotest.(check bool) "has detour" true (Inrpp.Detour_table.has_detour t l13)

let test_detour_table_none_on_line () =
  let g = Topology.Builders.line 3 in
  let t = Inrpp.Detour_table.create g in
  let l = Option.get (Topology.Graph.find_link g 0 1) in
  Alcotest.(check bool) "no detour on a line" false
    (Inrpp.Detour_table.has_detour t l)

(* ------------------------------------------------------------------ *)
(* Hot-path allocation budget *)

(* The protocol hot path is allocation-free past the packet itself:
   flow lookup is a dense-array read, phase/estimator/queue-limit are
   resolved once per flow, and push-data forwarding builds no
   closures.  Pin it with a per-forwarded-chunk minor-word ceiling —
   router, interface and engine included (style of the iface budget
   test in test_chunksim.ml). *)
let test_router_handler_alloc_budget () =
  match Sys.backend_type with
  | Sys.Bytecode | Sys.Other _ -> () (* minor-word counts differ *)
  | Sys.Native ->
    let cfg = Inrpp.Config.default in
    let eng = Sim.Engine.create () in
    let g =
      Topology.Builders.dumbbell ~access_capacity:1e9
        ~bottleneck_capacity:1e9 1
    in
    let net = Chunksim.Net.create ~queue_bits:1e12 eng g in
    let detours = Inrpp.Detour_table.create g in
    let router = Inrpp.Router.create ~cfg ~net ~node:0 ~detours () in
    let dl = Option.get (Topology.Graph.find_link g 0 1) in
    Inrpp.Router.install_flow router ~flow:0 ~data_link:(Some dl)
      ~req_link:None ();
    Chunksim.Net.set_handler net 1 (fun ~from:_ _ -> ());
    let handle = Inrpp.Router.handler router in
    let p =
      Chunksim.Packet.data ~flow:0 ~idx:0 ~born:0. cfg.Inrpp.Config.chunk_bits
    in
    (* warm up: resolve the flow's hot caches, grow rings past
       steady-state size *)
    for _ = 1 to 1_000 do
      handle ~from:None p;
      Sim.Engine.run eng
    done;
    let rounds = 10_000 in
    let before = Gc.minor_words () in
    for _ = 1 to rounds do
      handle ~from:None p;
      Sim.Engine.run eng
    done;
    let per_chunk = (Gc.minor_words () -. before) /. float_of_int rounds in
    Alcotest.(check bool)
      (Printf.sprintf "allocation per forwarded chunk (%.1f minor words)"
         per_chunk)
      true (per_chunk <= 100.)

(* ------------------------------------------------------------------ *)
(* Sender / Receiver unit behaviour *)

let test_sender_paced_push () =
  let eng = Sim.Engine.create () in
  let sent = ref [] in
  let cfg = Inrpp.Config.default in
  let s =
    Inrpp.Sender.create ~cfg ~eng ~flow:0 ~total_chunks:20
      ~pace_rate:(10. *. cfg.Inrpp.Config.chunk_bits) (* 10 chunks/s *)
      ~transmit:(fun p -> sent := (Sim.Engine.now eng, p) :: !sent)
      ()
  in
  (* one request invites chunks 0..4 (ac = 4) into the backlog *)
  Inrpp.Sender.handle s (Chunksim.Packet.request ~flow:0 ~nc:0 ~ack:0 ~ac:4);
  Alcotest.(check int) "first chunk sent immediately" 1 (List.length !sent);
  Alcotest.(check int) "backlog holds the rest" 4 (Inrpp.Sender.backlog s);
  Sim.Engine.run eng;
  Alcotest.(check int) "all invited chunks sent" 5 (List.length !sent);
  Alcotest.(check int) "pushed high-water" 5 (Inrpp.Sender.pushed s);
  (* pacing: consecutive sends are 0.1 s apart *)
  let times = List.rev_map fst !sent in
  let rec gaps = function
    | a :: (b :: _ as rest) ->
      Alcotest.(check (float 1e-9)) "pace gap" 0.1 (b -. a);
      gaps rest
    | _ -> ()
  in
  gaps times

let test_sender_backpressure_mode () =
  let eng = Sim.Engine.create () in
  let sent = ref 0 in
  let cfg = Inrpp.Config.default in
  let s =
    Inrpp.Sender.create ~cfg ~eng ~flow:0 ~total_chunks:100
      ~pace_rate:(100. *. cfg.Inrpp.Config.chunk_bits)
      ~transmit:(fun _ -> incr sent)
      ()
  in
  Inrpp.Sender.handle s (Chunksim.Packet.backpressure ~flow:0 ~engage:true);
  Alcotest.(check bool) "in bp" true (Inrpp.Sender.in_backpressure s);
  (* closed loop: exactly one chunk per request, no anticipation *)
  Inrpp.Sender.handle s (Chunksim.Packet.request ~flow:0 ~nc:0 ~ack:0 ~ac:50);
  Inrpp.Sender.handle s (Chunksim.Packet.request ~flow:0 ~nc:1 ~ack:1 ~ac:51);
  Sim.Engine.run eng;
  Alcotest.(check int) "1-to-1 flow balance" 2 !sent;
  (* release resumes the open loop *)
  Inrpp.Sender.handle s (Chunksim.Packet.backpressure ~flow:0 ~engage:false);
  Inrpp.Sender.handle s (Chunksim.Packet.request ~flow:0 ~nc:2 ~ack:2 ~ac:9);
  Sim.Engine.run eng;
  Alcotest.(check int) "open loop refills to ac" 10 !sent

let test_sender_stall_retransmission () =
  let eng = Sim.Engine.create () in
  let sent = ref [] in
  let cfg = Inrpp.Config.default in
  let s =
    Inrpp.Sender.create ~cfg ~eng ~flow:0 ~total_chunks:10
      ~pace_rate:(1000. *. cfg.Inrpp.Config.chunk_bits)
      ~transmit:(fun p ->
        match p.Chunksim.Packet.header with
        | Chunksim.Packet.Data { idx; _ } -> sent := idx :: !sent
        | _ -> ())
      ()
  in
  Inrpp.Sender.handle s (Chunksim.Packet.request ~flow:0 ~nc:0 ~ack:0 ~ac:5);
  Sim.Engine.run eng;
  let before = List.length !sent in
  (* two repeats are tolerated (reordering)... *)
  Inrpp.Sender.handle s (Chunksim.Packet.request ~flow:0 ~nc:2 ~ack:2 ~ac:5);
  Inrpp.Sender.handle s (Chunksim.Packet.request ~flow:0 ~nc:2 ~ack:2 ~ac:5);
  Sim.Engine.run eng;
  Alcotest.(check int) "no retransmit yet" before (List.length !sent);
  (* ...the third identical Nc is a stall: retransmit chunk 2 *)
  Inrpp.Sender.handle s (Chunksim.Packet.request ~flow:0 ~nc:2 ~ack:2 ~ac:5);
  Sim.Engine.run eng;
  Alcotest.(check int) "retransmitted" (before + 1) (List.length !sent);
  Alcotest.(check int) "the hole chunk" 2 (List.hd !sent)

let test_receiver_flow_balance () =
  let eng = Sim.Engine.create () in
  let requests = ref [] in
  let completed = ref None in
  let cfg = Inrpp.Config.default in
  let r =
    Inrpp.Receiver.create ~cfg ~eng ~flow:0 ~total_chunks:3
      ~send_request:(fun p -> requests := p :: !requests)
      ~on_complete:(fun ~fct -> completed := Some fct)
      ()
  in
  Inrpp.Receiver.start r;
  Alcotest.(check int) "initial request" 1 (List.length !requests);
  (* each arriving chunk triggers exactly one further request *)
  Inrpp.Receiver.handle_data r
    (Chunksim.Packet.data ~flow:0 ~idx:0 ~born:0. cfg.Inrpp.Config.chunk_bits);
  Alcotest.(check int) "one per data" 2 (List.length !requests);
  Inrpp.Receiver.handle_data r
    (Chunksim.Packet.data ~flow:0 ~idx:1 ~born:0. cfg.Inrpp.Config.chunk_bits);
  Inrpp.Receiver.handle_data r
    (Chunksim.Packet.data ~flow:0 ~idx:2 ~born:0. cfg.Inrpp.Config.chunk_bits);
  Alcotest.(check bool) "completed" true (!completed <> None);
  Alcotest.(check int) "duplicates zero" 0 (Inrpp.Receiver.duplicates r);
  (* the last data needs no further request *)
  Alcotest.(check int) "no request after completion" 3 (List.length !requests)

let test_receiver_timeout_rerequests () =
  let eng = Sim.Engine.create () in
  let requests = ref 0 in
  let cfg = { Inrpp.Config.default with Inrpp.Config.request_timeout = 0.05 } in
  let r =
    Inrpp.Receiver.create ~cfg ~eng ~flow:0 ~total_chunks:5
      ~send_request:(fun _ -> incr requests)
      ~on_complete:(fun ~fct -> ignore fct)
      ()
  in
  Inrpp.Receiver.start r;
  (* nothing ever arrives: the timeout must keep re-asking *)
  Sim.Engine.run ~until:0.3 eng;
  Alcotest.(check bool)
    (Printf.sprintf "re-requested (%d requests)" !requests)
    true (!requests >= 4)

(* ------------------------------------------------------------------ *)
(* Protocol end-to-end *)

let bulk = { Inrpp.Config.default with Inrpp.Config.anticipation = 512 }

let bottleneck_graph () =
  let b = Topology.Graph.Builder.create () in
  let n0 = Topology.Graph.Builder.add_node b "0" in
  let n1 = Topology.Graph.Builder.add_node b "1" in
  let n2 = Topology.Graph.Builder.add_node b "2" in
  Topology.Graph.Builder.add_edge b ~capacity:10e6 ~delay:2e-3 n0 n1;
  Topology.Graph.Builder.add_edge b ~capacity:2e6 ~delay:2e-3 n1 n2;
  Topology.Graph.Builder.build b

let test_protocol_clean_line () =
  let g = Topology.Builders.line ~capacity:10e6 ~delay:2e-3 3 in
  let r = Inrpp.Protocol.run ~cfg:bulk g [ Inrpp.Protocol.flow_spec ~src:0 ~dst:2 200 ] in
  Alcotest.(check int) "completes" 1 r.Inrpp.Protocol.completed;
  Alcotest.(check int) "no drops" 0 r.Inrpp.Protocol.total_drops;
  Alcotest.(check int) "no detours on a line" 0 r.Inrpp.Protocol.detoured;
  (* 200 x 80 kbit at 10 Mbps is 1.6 s; allow protocol overhead *)
  match r.Inrpp.Protocol.flows.(0).Inrpp.Protocol.fct with
  | Some fct ->
    Alcotest.(check bool)
      (Printf.sprintf "fct %.3f near line rate" fct)
      true
      (fct > 1.5 && fct < 2.0)
  | None -> Alcotest.fail "flow unfinished"

let test_protocol_bottleneck_custody () =
  (* pushing 10 Mbps into a 2 Mbps link: custody absorbs, nothing drops,
     and the transfer finishes at bottleneck pace *)
  let g = bottleneck_graph () in
  let r = Inrpp.Protocol.run ~cfg:bulk g [ Inrpp.Protocol.flow_spec ~src:0 ~dst:2 200 ] in
  Alcotest.(check int) "completes" 1 r.Inrpp.Protocol.completed;
  Alcotest.(check int) "zero loss despite 5x overload" 0 r.Inrpp.Protocol.total_drops;
  Alcotest.(check bool) "custody used" true (r.Inrpp.Protocol.custody_stored > 0);
  Alcotest.(check bool) "custody bounded by store" true
    (r.Inrpp.Protocol.peak_custody_bits <= bulk.Inrpp.Config.cache_bits);
  match r.Inrpp.Protocol.flows.(0).Inrpp.Protocol.fct with
  | Some fct ->
    Alcotest.(check bool)
      (Printf.sprintf "fct %.3f near bottleneck pace (8 s ideal)" fct)
      true
      (fct > 7.5 && fct < 10.)
  | None -> Alcotest.fail "flow unfinished"

let test_protocol_backpressure_engages () =
  (* a small store forces the back-pressure phase: the congested router
     must signal upstream and the sender must enter the closed loop *)
  let g = bottleneck_graph () in
  let cfg = { bulk with Inrpp.Config.cache_bits = 20. *. bulk.Inrpp.Config.chunk_bits } in
  let r =
    Inrpp.Protocol.run ~cfg ~collect_trace:true g
      [ Inrpp.Protocol.flow_spec ~src:0 ~dst:2 200 ]
  in
  Alcotest.(check int) "completes" 1 r.Inrpp.Protocol.completed;
  Alcotest.(check bool) "bp engaged" true (r.Inrpp.Protocol.bp_engages > 0);
  Alcotest.(check bool) "bp released" true (r.Inrpp.Protocol.bp_releases > 0);
  let tr = Option.get r.Inrpp.Protocol.trace in
  Alcotest.(check bool) "bp signal traced" true
    (Chunksim.Trace.count tr (function
       | Chunksim.Trace.Bp_signal { engage = true; _ } -> true
       | _ -> false)
    > 0)

let test_protocol_fig3_detours () =
  let g = Topology.Builders.fig3 () in
  let r =
    Inrpp.Protocol.run ~cfg:bulk ~collect_trace:true g
      [ Inrpp.Protocol.flow_spec ~src:0 ~dst:3 300 ]
  in
  Alcotest.(check int) "completes" 1 r.Inrpp.Protocol.completed;
  Alcotest.(check bool) "detour used" true (r.Inrpp.Protocol.detoured > 50);
  (* detour + primary beat the 2 Mbps bottleneck alone: 300 chunks =
     24 Mbit; at 2 Mbps that is 12 s, with detours it must be well under *)
  (match r.Inrpp.Protocol.flows.(0).Inrpp.Protocol.fct with
  | Some fct ->
    Alcotest.(check bool)
      (Printf.sprintf "fct %.3f beats single-path 12 s" fct)
      true (fct < 9.)
  | None -> Alcotest.fail "flow unfinished");
  let tr = Option.get r.Inrpp.Protocol.trace in
  Alcotest.(check bool) "detour events traced" true
    (Chunksim.Trace.count tr (function
       | Chunksim.Trace.Detoured _ -> true
       | _ -> false)
    > 0)

let test_protocol_phase_transitions_observed () =
  let g = Topology.Builders.fig3 () in
  let r =
    Inrpp.Protocol.run ~cfg:bulk ~collect_trace:true g
      [ Inrpp.Protocol.flow_spec ~src:0 ~dst:3 300 ]
  in
  Alcotest.(check bool) "phases changed" true (r.Inrpp.Protocol.phase_transitions > 0);
  let tr = Option.get r.Inrpp.Protocol.trace in
  let entered_detour =
    Chunksim.Trace.count tr (function
      | Chunksim.Trace.Phase_change { phase = "detour"; _ } -> true
      | _ -> false)
  in
  Alcotest.(check bool) "detour phase entered" true (entered_detour > 0)

let test_protocol_two_flows_share () =
  let g = Topology.Builders.fig3 () in
  let specs =
    [
      Inrpp.Protocol.flow_spec ~src:0 ~dst:3 150;
      Inrpp.Protocol.flow_spec ~src:0 ~dst:1 150;
    ]
  in
  let r = Inrpp.Protocol.run ~cfg:bulk g specs in
  Alcotest.(check int) "both complete" 2 r.Inrpp.Protocol.completed;
  let rates =
    Array.map
      (fun fr ->
        match fr.Inrpp.Protocol.fct with
        | Some fct ->
          float_of_int fr.Inrpp.Protocol.chunks_received
          *. bulk.Inrpp.Config.chunk_bits /. fct
        | None -> 0.)
      r.Inrpp.Protocol.flows
  in
  let jain = Metrics.Fairness.jain rates in
  Alcotest.(check bool)
    (Printf.sprintf "fair rates (jain %.3f)" jain)
    true (jain > 0.85)

let test_protocol_icn_cache_hits () =
  (* the same content fetched twice: the repeat is served on path *)
  let g = Topology.Builders.line ~capacity:10e6 ~delay:5e-3 5 in
  let cfg = { bulk with Inrpp.Config.icn_caching = true; cache_bits = 64e6 } in
  let specs =
    [
      Inrpp.Protocol.flow_spec ~content:7 ~src:0 ~dst:4 100;
      Inrpp.Protocol.flow_spec ~content:7 ~start:2. ~src:0 ~dst:4 100;
    ]
  in
  let r = Inrpp.Protocol.run ~cfg g specs in
  Alcotest.(check int) "both complete" 2 r.Inrpp.Protocol.completed;
  Alcotest.(check bool) "cache hits happened" true (r.Inrpp.Protocol.cache_hits > 50);
  match
    ( r.Inrpp.Protocol.flows.(0).Inrpp.Protocol.fct,
      r.Inrpp.Protocol.flows.(1).Inrpp.Protocol.fct )
  with
  | Some first, Some repeat ->
    Alcotest.(check bool)
      (Printf.sprintf "repeat %.3f much faster than first %.3f" repeat first)
      true
      (repeat < first /. 2.)
  | _ -> Alcotest.fail "flows unfinished"

let test_protocol_icn_cache_off_by_default () =
  let g = Topology.Builders.line ~capacity:10e6 ~delay:5e-3 4 in
  let specs =
    [
      Inrpp.Protocol.flow_spec ~content:7 ~src:0 ~dst:3 50;
      Inrpp.Protocol.flow_spec ~content:7 ~start:1. ~src:0 ~dst:3 50;
    ]
  in
  let r = Inrpp.Protocol.run ~cfg:bulk g specs in
  Alcotest.(check int) "no hits without the flag" 0 r.Inrpp.Protocol.cache_hits

let test_protocol_drr_runs () =
  let g = Topology.Builders.fig3 () in
  let cfg = { bulk with Inrpp.Config.drr_scheduler = true } in
  let specs =
    [
      Inrpp.Protocol.flow_spec ~src:0 ~dst:3 150;
      Inrpp.Protocol.flow_spec ~src:0 ~dst:1 150;
    ]
  in
  let r = Inrpp.Protocol.run ~cfg g specs in
  Alcotest.(check int) "both complete under DRR" 2 r.Inrpp.Protocol.completed;
  Alcotest.(check int) "no drops" 0 r.Inrpp.Protocol.total_drops

let test_protocol_recovers_from_wire_loss () =
  let g = Topology.Builders.line ~capacity:10e6 ~delay:2e-3 4 in
  let r =
    Inrpp.Protocol.run ~cfg:bulk ~loss_rate:0.02 ~horizon:120. g
      [ Inrpp.Protocol.flow_spec ~src:0 ~dst:3 150 ]
  in
  Alcotest.(check int) "completes despite 2% loss" 1 r.Inrpp.Protocol.completed;
  Alcotest.(check int) "every chunk delivered" 150
    r.Inrpp.Protocol.flows.(0).Inrpp.Protocol.chunks_received

let test_protocol_loss_is_deterministic () =
  let g = Topology.Builders.line ~capacity:10e6 ~delay:2e-3 4 in
  let run () =
    Inrpp.Protocol.run ~cfg:bulk ~loss_rate:0.03 ~horizon:120. g
      [ Inrpp.Protocol.flow_spec ~src:0 ~dst:3 100 ]
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "same fct under same loss seed" true
    (a.Inrpp.Protocol.flows.(0).Inrpp.Protocol.fct
    = b.Inrpp.Protocol.flows.(0).Inrpp.Protocol.fct)

let test_protocol_isp_multi_flow () =
  (* integration: three concurrent transfers across the VSNL ISP graph
     all complete losslessly *)
  let g = Topology.Isp_zoo.graph Topology.Isp_zoo.Vsnl in
  let n = Topology.Graph.node_count g in
  let cfg =
    {
      bulk with
      Inrpp.Config.chunk_bits = 80e3;
      cache_bits = 100e6;
      queue_bits = 64. *. 80e3;
    }
  in
  let specs =
    [
      Inrpp.Protocol.flow_spec ~src:(n - 4) ~dst:(n - 1) 150;
      Inrpp.Protocol.flow_spec ~src:(n - 4) ~dst:(n - 2) 150;
      Inrpp.Protocol.flow_spec ~src:0 ~dst:(n - 3) 150;
    ]
  in
  let r = Inrpp.Protocol.run ~cfg ~horizon:30. g specs in
  Alcotest.(check int) "all complete" 3 r.Inrpp.Protocol.completed;
  Alcotest.(check int) "lossless" 0 r.Inrpp.Protocol.total_drops

let test_protocol_deterministic () =
  let g = Topology.Builders.fig3 () in
  let run () =
    Inrpp.Protocol.run ~cfg:bulk g [ Inrpp.Protocol.flow_spec ~src:0 ~dst:3 100 ]
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "same fct" true
    (a.Inrpp.Protocol.flows.(0).Inrpp.Protocol.fct
    = b.Inrpp.Protocol.flows.(0).Inrpp.Protocol.fct);
  Alcotest.(check int) "same detours" a.Inrpp.Protocol.detoured
    b.Inrpp.Protocol.detoured

let test_protocol_validation () =
  let g = Topology.Builders.line 3 in
  Alcotest.check_raises "no flows" (Invalid_argument "Protocol.run: no flows")
    (fun () -> ignore (Inrpp.Protocol.run g []));
  let disconnected = Topology.Graph.of_edges 4 [ (0, 1); (2, 3) ] in
  (match
     Inrpp.Protocol.run disconnected [ Inrpp.Protocol.flow_spec ~src:0 ~dst:3 1 ]
   with
  | _ -> Alcotest.fail "unroutable accepted"
  | exception Invalid_argument _ -> ());
  Alcotest.check_raises "bad spec" (Invalid_argument "Protocol.flow_spec: chunks <= 0")
    (fun () -> ignore (Inrpp.Protocol.flow_spec ~src:0 ~dst:1 0))

(* ------------------------------------------------------------------ *)
(* Properties *)

let prop_session_next_needed_is_lowest_missing =
  QCheck.Test.make ~name:"session next_needed is the lowest missing" ~count:200
    QCheck.(pair (int_range 1 50) (list (int_range 0 49)))
    (fun (total, arrivals) ->
      let s = Inrpp.Session.create ~total_chunks:total in
      let got = Array.make total false in
      List.iter
        (fun idx ->
          if idx < total then begin
            ignore (Inrpp.Session.receive s idx);
            got.(idx) <- true
          end)
        arrivals;
      let expected =
        let rec scan i = if i >= total then total else if got.(i) then scan (i + 1) else i in
        scan 0
      in
      Inrpp.Session.next_needed s = expected)

let prop_phase_never_skips_validation =
  QCheck.Test.make ~name:"phase machine output is stable under repeats"
    ~count:200
    QCheck.(triple (float_bound_inclusive 2.) bool bool)
    (fun (ratio, detour, pressure) ->
      let p = phase_mk () in
      let a = upd p ~ratio ~detour ~pressure ~drained:(not pressure) in
      let b = upd p ~ratio ~detour ~pressure ~drained:(not pressure) in
      (* a second identical update never changes the phase again, except
         the legal Detour -> Backpressure escalation under pressure *)
      a = b || (a = Inrpp.Phase.Detour && b = Inrpp.Phase.Backpressure))

let prop_session_any_permutation_completes =
  QCheck.Test.make ~name:"session completes under any arrival order" ~count:100
    QCheck.(int_range 1 60)
    (fun n ->
      let s = Inrpp.Session.create ~total_chunks:n in
      let order = Array.init n Fun.id in
      let rng = Sim.Rng.create (Int64.of_int (n * 7919)) in
      Sim.Rng.shuffle rng order;
      Array.iter (fun idx -> ignore (Inrpp.Session.receive s idx)) order;
      Inrpp.Session.is_complete s
      && Inrpp.Session.next_needed s = n
      && Inrpp.Session.received_count s = n)

let prop_protocol_completes_on_random_lines =
  QCheck.Test.make
    ~name:"single transfer completes on random line topologies" ~count:15
    QCheck.(pair (int_range 3 6) (int_range 1 50))
    (fun (hops, chunks) ->
      let g = Topology.Builders.line ~capacity:10e6 ~delay:1e-3 hops in
      let r =
        Inrpp.Protocol.run ~cfg:bulk ~horizon:120. g
          [ Inrpp.Protocol.flow_spec ~src:0 ~dst:(hops - 1) chunks ]
      in
      r.Inrpp.Protocol.completed = 1 && r.Inrpp.Protocol.total_drops = 0)

let prop_shares_are_a_distribution =
  (* eq. 1: the y_{i->j} request shares of every from-interface form a
     probability distribution over the router's outgoing interfaces *)
  QCheck.Test.make ~name:"request shares y are a distribution (eq. 1)"
    ~count:200
    QCheck.(
      pair (int_range 2 6) (small_list (pair small_nat small_nat)))
    (fun (ifaces, mix) ->
      let s = Inrpp.Rate_estimator.Shares.create ~ifaces in
      List.iter
        (fun (f, t) ->
          Inrpp.Rate_estimator.Shares.note s ~from_iface:(f mod ifaces)
            ~to_iface:(t mod ifaces))
        mix;
      let forwarded = Array.make ifaces 0 in
      List.iter
        (fun (f, _) ->
          let f = f mod ifaces in
          forwarded.(f) <- forwarded.(f) + 1)
        mix;
      let ok_from f =
        let row =
          List.init ifaces (fun t ->
              Inrpp.Rate_estimator.Shares.y s ~from_iface:f ~to_iface:t)
        in
        List.for_all (fun y -> y >= 0. && y <= 1.) row
        &&
        let sum = List.fold_left ( +. ) 0. row in
        if forwarded.(f) = 0 then sum = 0.
        else Float.abs (sum -. 1.) <= 1e-9
      in
      List.for_all ok_from (List.init ifaces Fun.id))

let prop_estimator_converges_under_stationary_mix =
  (* constant per-interval demand: the EWMA follows the closed form
     ra_k = inst * (1 - (1-alpha)^k), stays below the instantaneous
     rate and converges to it *)
  QCheck.Test.make ~name:"estimator converges under a stationary mix"
    ~count:200
    QCheck.(triple (int_range 1 20) (int_range 1 1000) (int_range 1 120))
    (fun (a20, kbits, ticks) ->
      let alpha = float_of_int a20 /. 20. in
      let bits = float_of_int kbits *. 1000. in
      let ti = 0.04 in
      let est = Inrpp.Rate_estimator.create ~ti ~alpha ~capacity:10e6 in
      for _ = 1 to ticks do
        Inrpp.Rate_estimator.note_request est ~expected_bits:bits;
        Inrpp.Rate_estimator.tick est
      done;
      let inst = bits /. ti in
      let ra = Inrpp.Rate_estimator.anticipated_rate est in
      let closed = inst *. (1. -. ((1. -. alpha) ** float_of_int ticks)) in
      Inrpp.Rate_estimator.intervals est = ticks
      && Float.abs (ra -. closed) <= 1e-6 *. inst
      && ra <= inst *. (1. +. 1e-12)
      && (* convergence: (1-alpha)^k <= 3e-8 for alpha >= 1/4, k >= 60 *)
      (alpha < 0.25 || ticks < 60 || Float.abs (ra -. inst) <= 1e-5 *. inst))

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "inrpp"
    [
      ( "config",
        [
          Alcotest.test_case "default valid" `Quick test_config_default_valid;
          Alcotest.test_case "rejections" `Quick test_config_rejections;
          Alcotest.test_case "chunk tx time" `Quick test_config_chunk_tx_time;
        ] );
      ( "flow table",
        (List.concat_map
           (fun (lname, store) ->
             [
               Alcotest.test_case (lname ^ ": install/release") `Quick
                 (ft_install_release store);
               Alcotest.test_case (lname ^ ": slot recycling") `Quick
                 (ft_slot_recycling store);
               Alcotest.test_case (lname ^ ": reinstall semantics") `Quick
                 (ft_reinstall_semantics store);
               Alcotest.test_case (lname ^ ": flag bits") `Quick
                 (ft_flags_roundtrip store);
             ])
           [ ("soa", `Soa); ("legacy", `Legacy) ]
        @ [
            Alcotest.test_case "iter order parity" `Quick
              test_ft_iter_order_parity;
            Alcotest.test_case "invalid args" `Quick test_ft_invalid_args;
          ]) );
      ( "session",
        [
          Alcotest.test_case "in order" `Quick test_session_in_order;
          Alcotest.test_case "out of order" `Quick test_session_out_of_order;
          Alcotest.test_case "bounds" `Quick test_session_bounds;
        ] );
      ( "estimator",
        [
          Alcotest.test_case "converges" `Quick test_estimator_converges;
          Alcotest.test_case "transit counts" `Quick test_estimator_transit_counts;
          Alcotest.test_case "decays" `Quick test_estimator_decays;
          Alcotest.test_case "eq.1 shares" `Quick test_shares_eq1;
        ] );
      ( "phase",
        [
          Alcotest.test_case "push to detour" `Quick test_phase_push_to_detour;
          Alcotest.test_case "push to bp" `Quick test_phase_push_to_bp_without_detour;
          Alcotest.test_case "hysteresis" `Quick test_phase_hysteresis;
          Alcotest.test_case "pressure escalation" `Quick test_phase_detour_to_bp_on_pressure;
          Alcotest.test_case "bp recovery" `Quick test_phase_bp_recovery;
        ] );
      ("flowlet", [ Alcotest.test_case "pinning" `Quick test_flowlet_pinning ]);
      ( "detour table",
        [
          Alcotest.test_case "fig3 candidates" `Quick test_detour_table_candidates;
          Alcotest.test_case "line has none" `Quick test_detour_table_none_on_line;
        ] );
      ( "hot path",
        [
          Alcotest.test_case "handler alloc budget" `Quick
            test_router_handler_alloc_budget;
        ] );
      ( "endpoints",
        [
          Alcotest.test_case "sender paced push" `Quick test_sender_paced_push;
          Alcotest.test_case "sender backpressure mode" `Quick test_sender_backpressure_mode;
          Alcotest.test_case "sender stall retransmission" `Quick test_sender_stall_retransmission;
          Alcotest.test_case "receiver flow balance" `Quick test_receiver_flow_balance;
          Alcotest.test_case "receiver timeout" `Quick test_receiver_timeout_rerequests;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "clean line" `Quick test_protocol_clean_line;
          Alcotest.test_case "bottleneck custody" `Quick test_protocol_bottleneck_custody;
          Alcotest.test_case "backpressure engages" `Quick test_protocol_backpressure_engages;
          Alcotest.test_case "fig3 detours" `Quick test_protocol_fig3_detours;
          Alcotest.test_case "phase transitions" `Quick test_protocol_phase_transitions_observed;
          Alcotest.test_case "two flows share" `Quick test_protocol_two_flows_share;
          Alcotest.test_case "icn cache hits" `Quick test_protocol_icn_cache_hits;
          Alcotest.test_case "icn cache off by default" `Quick test_protocol_icn_cache_off_by_default;
          Alcotest.test_case "drr scheduler runs" `Quick test_protocol_drr_runs;
          Alcotest.test_case "recovers from wire loss" `Quick test_protocol_recovers_from_wire_loss;
          Alcotest.test_case "loss determinism" `Quick test_protocol_loss_is_deterministic;
          Alcotest.test_case "isp multi-flow integration" `Quick test_protocol_isp_multi_flow;
          Alcotest.test_case "deterministic" `Quick test_protocol_deterministic;
          Alcotest.test_case "validation" `Quick test_protocol_validation;
        ] );
      ( "properties",
        qc
          [
            prop_session_next_needed_is_lowest_missing;
            prop_phase_never_skips_validation;
            prop_session_any_permutation_completes;
            prop_protocol_completes_on_random_lines;
            prop_shares_are_a_distribution;
            prop_estimator_converges_under_stationary_mix;
          ] );
    ]
