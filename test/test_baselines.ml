(* Tests for the baseline transports (AIMD / MPTCP / RCP) and the
   INRPP-vs-baselines comparison harness. *)

let check_close msg tolerance expected actual =
  Alcotest.(check (float tolerance)) msg expected actual

let line10 () = Topology.Builders.line ~capacity:10e6 ~delay:2e-3 3

let spec ?(start = 0.) src dst chunks =
  Inrpp.Protocol.flow_spec ~start ~src ~dst chunks

let bulk = { Inrpp.Config.default with Inrpp.Config.anticipation = 512 }

(* ------------------------------------------------------------------ *)
(* Window *)

let test_window_slow_start () =
  let w = Baselines.Window.create ~init:2. ~ssthresh:8. () in
  Alcotest.(check bool) "starts slow" true (Baselines.Window.in_slow_start w);
  for _ = 1 to 6 do
    Baselines.Window.on_ack w ~now:0. ~rtt_sample:0.1
  done;
  Alcotest.(check bool) "left slow start" false (Baselines.Window.in_slow_start w);
  Alcotest.(check bool) "window grew" true (Baselines.Window.size w >= 8.)

let test_window_ca_growth_rate () =
  let w = Baselines.Window.create ~init:10. ~ssthresh:5. () in
  let before = Baselines.Window.size w in
  Baselines.Window.on_ack w ~now:0. ~rtt_sample:0.1;
  check_close "1/w growth" 1e-9 (before +. (1. /. before)) (Baselines.Window.size w)

let test_window_loss_halves () =
  let w = Baselines.Window.create ~init:16. ~ssthresh:4. () in
  Baselines.Window.on_ack w ~now:0. ~rtt_sample:0.1;
  let before = Baselines.Window.size w in
  Baselines.Window.on_loss w ~now:1.;
  check_close "halved" 1e-6 (before /. 2.) (Baselines.Window.size w);
  (* a second loss within the same RTT is one congestion event *)
  Baselines.Window.on_loss w ~now:1.01;
  check_close "single cut" 1e-6 (before /. 2.) (Baselines.Window.size w);
  Alcotest.(check int) "one loss event" 1 (Baselines.Window.losses w)

let test_window_rto () =
  let w = Baselines.Window.create () in
  check_close "initial rto 1s" 1e-9 1. (Baselines.Window.rto w);
  Baselines.Window.on_ack w ~now:0. ~rtt_sample:0.1;
  let rto = Baselines.Window.rto w in
  Alcotest.(check bool) "rto tracks rtt" true (rto > 0.1 && rto < 1.)

let test_window_coupled_growth () =
  let w = Baselines.Window.create ~init:10. ~ssthresh:5. () in
  let before = Baselines.Window.size w in
  (* total window 40 across subflows: growth min(1/40, 1/10) = 1/40 *)
  Baselines.Window.on_ack_coupled w ~now:0. ~rtt_sample:0.1 ~total_window:40.;
  check_close "LIA damped" 1e-9 (before +. (1. /. 40.)) (Baselines.Window.size w)

(* ------------------------------------------------------------------ *)
(* AIMD transport *)

let test_aimd_completes_clean_path () =
  let r = Baselines.Aimd.run (line10 ()) [ spec 0 2 100 ] in
  Alcotest.(check int) "done" 1 r.Baselines.Run_result.completed;
  Alcotest.(check bool) "reasonable fct" true
    (r.Baselines.Run_result.mean_fct > 0.8
    && r.Baselines.Run_result.mean_fct < 10.)

let test_aimd_losses_on_bottleneck () =
  (* a 5x bandwidth drop with small buffers must cause losses and
     recovery, and still complete *)
  let b = Topology.Graph.Builder.create () in
  let n0 = Topology.Graph.Builder.add_node b "0" in
  let n1 = Topology.Graph.Builder.add_node b "1" in
  let n2 = Topology.Graph.Builder.add_node b "2" in
  Topology.Graph.Builder.add_edge b ~capacity:10e6 ~delay:2e-3 n0 n1;
  Topology.Graph.Builder.add_edge b ~capacity:2e6 ~delay:2e-3 n1 n2;
  let g = Topology.Graph.Builder.build b in
  let r = Baselines.Aimd.run ~queue_bits:(16. *. 80e3) g [ spec 0 2 200 ] in
  Alcotest.(check int) "done" 1 r.Baselines.Run_result.completed;
  Alcotest.(check bool) "losses happened" true (r.Baselines.Run_result.drops > 0);
  Alcotest.(check bool) "recovered all chunks" true
    (r.Baselines.Run_result.retransmissions > 0)

let test_aimd_two_flows_fair () =
  let g = Topology.Builders.dumbbell ~access_capacity:10e6 ~bottleneck_capacity:4e6 2 in
  (* dumbbell hosts: sources 2,3; sinks 4,5 *)
  let r = Baselines.Aimd.run g [ spec 2 4 150; spec 3 5 150 ] in
  Alcotest.(check int) "both done" 2 r.Baselines.Run_result.completed;
  Alcotest.(check bool)
    (Printf.sprintf "fair-ish (jain %.3f)" r.Baselines.Run_result.jain)
    true
    (r.Baselines.Run_result.jain > 0.8)

(* ------------------------------------------------------------------ *)
(* MPTCP transport *)

let test_mptcp_uses_both_paths () =
  (* fig3 has two disjoint 0->3 paths; MPTCP should beat AIMD *)
  let g = Topology.Builders.fig3 () in
  let aimd = Baselines.Aimd.run g [ spec 0 3 300 ] in
  let mptcp = Baselines.Mptcp.run g [ spec 0 3 300 ] in
  Alcotest.(check int) "aimd done" 1 aimd.Baselines.Run_result.completed;
  Alcotest.(check int) "mptcp done" 1 mptcp.Baselines.Run_result.completed;
  Alcotest.(check bool)
    (Printf.sprintf "mptcp %.2fs < aimd %.2fs" mptcp.Baselines.Run_result.mean_fct
       aimd.Baselines.Run_result.mean_fct)
    true
    (mptcp.Baselines.Run_result.mean_fct < aimd.Baselines.Run_result.mean_fct)

let test_mptcp_single_path_degenerates () =
  (* on a line there is one path: MPTCP ~ AIMD *)
  let g = line10 () in
  let aimd = Baselines.Aimd.run g [ spec 0 2 100 ] in
  let mptcp = Baselines.Mptcp.run g [ spec 0 2 100 ] in
  check_close "same fct" 0.5 aimd.Baselines.Run_result.mean_fct
    mptcp.Baselines.Run_result.mean_fct

(* ------------------------------------------------------------------ *)
(* RCP transport *)

let test_rcp_completes_and_paces () =
  let r = Baselines.Rcp.run (line10 ()) [ spec 0 2 100 ] in
  Alcotest.(check int) "done" 1 r.Baselines.Run_result.completed;
  (* paced at the fair share: no queue overflows at all *)
  Alcotest.(check int) "no drops" 0 r.Baselines.Run_result.drops

let test_rcp_fair_shares () =
  let g = Topology.Builders.dumbbell ~access_capacity:10e6 ~bottleneck_capacity:4e6 2 in
  let r = Baselines.Rcp.run g [ spec 2 4 100; spec 3 5 100 ] in
  Alcotest.(check int) "both done" 2 r.Baselines.Run_result.completed;
  Alcotest.(check bool)
    (Printf.sprintf "near-perfect fairness (jain %.3f)" r.Baselines.Run_result.jain)
    true
    (r.Baselines.Run_result.jain > 0.95)

(* ------------------------------------------------------------------ *)
(* HBH interest shaping *)

let test_hbh_lossless_on_bottleneck () =
  (* shaping the interest stream prevents any queue overflow, but the
     transfer runs at the slowest link (the paper's §4 critique) *)
  let b = Topology.Graph.Builder.create () in
  let n0 = Topology.Graph.Builder.add_node b "0" in
  let n1 = Topology.Graph.Builder.add_node b "1" in
  let n2 = Topology.Graph.Builder.add_node b "2" in
  Topology.Graph.Builder.add_edge b ~capacity:10e6 ~delay:2e-3 n0 n1;
  Topology.Graph.Builder.add_edge b ~capacity:2e6 ~delay:2e-3 n1 n2;
  let g = Topology.Graph.Builder.build b in
  let r = Baselines.Hbh.run g [ spec 0 2 200 ] in
  Alcotest.(check int) "done" 1 r.Baselines.Run_result.completed;
  Alcotest.(check int) "lossless" 0 r.Baselines.Run_result.drops;
  (* 200 x 80 kbit over 2 Mbps = 8 s ideal *)
  Alcotest.(check bool)
    (Printf.sprintf "bottleneck-paced (%.2fs ~ 8s)" r.Baselines.Run_result.mean_fct)
    true
    (r.Baselines.Run_result.mean_fct > 7.5 && r.Baselines.Run_result.mean_fct < 10.)

let test_hbh_cannot_detour () =
  (* on fig3, HBH stays on the single path: INRPP must beat it *)
  let g = Topology.Builders.fig3 () in
  let hbh = Baselines.Hbh.run g [ spec 0 3 200 ] in
  let inrpp =
    Baselines.Comparison.run_one ~cfg:bulk Baselines.Comparison.Inrpp_proto g
      [ spec 0 3 200 ]
  in
  Alcotest.(check int) "hbh done" 1 hbh.Baselines.Run_result.completed;
  Alcotest.(check bool)
    (Printf.sprintf "inrpp %.2fs beats hbh %.2fs"
       inrpp.Baselines.Run_result.mean_fct hbh.Baselines.Run_result.mean_fct)
    true
    (inrpp.Baselines.Run_result.mean_fct < hbh.Baselines.Run_result.mean_fct)

(* ------------------------------------------------------------------ *)
(* Comparison *)

let test_comparison_runs_all () =
  let g = Topology.Builders.fig3 () in
  let rows = Baselines.Comparison.run_all ~cfg:bulk g [ spec 0 3 150 ] in
  Alcotest.(check int) "five protocols" 5 (List.length rows);
  List.iter
    (fun r ->
      Alcotest.(check int)
        (r.Baselines.Run_result.protocol ^ " completes")
        1 r.Baselines.Run_result.completed)
    rows

let test_comparison_inrpp_avoids_drops () =
  (* the paper's core claim: INRPP moves traffic without packet drops
     where AIMD probing causes loss *)
  let g = Topology.Builders.fig3 () in
  let specs = [ spec 0 3 200 ] in
  let inrpp =
    Baselines.Comparison.run_one ~cfg:bulk Baselines.Comparison.Inrpp_proto g
      specs
  in
  let aimd =
    Baselines.Comparison.run_one ~cfg:bulk Baselines.Comparison.Aimd_proto g
      specs
  in
  Alcotest.(check int) "inrpp lossless" 0 inrpp.Baselines.Run_result.drops;
  Alcotest.(check bool)
    (Printf.sprintf "inrpp %.2fs beats aimd %.2fs"
       inrpp.Baselines.Run_result.mean_fct aimd.Baselines.Run_result.mean_fct)
    true
    (inrpp.Baselines.Run_result.mean_fct < aimd.Baselines.Run_result.mean_fct)

let test_comparison_names () =
  Alcotest.(check (list string)) "labels"
    [ "INRPP"; "AIMD"; "MPTCP"; "RCP"; "HBH" ]
    (List.map Baselines.Comparison.name Baselines.Comparison.all)

(* ------------------------------------------------------------------ *)
(* Run_result *)

let test_run_result_derivations () =
  let fcts = [| Some 2.; None; Some 4. |] in
  let r =
    Baselines.Run_result.make ~protocol:"X" ~fcts ~chunk_bits:1e3
      ~chunks:[| 100; 50; 100 |] ~drops:3 ~retransmissions:7 ~sim_time:10.
  in
  Alcotest.(check int) "completed" 2 r.Baselines.Run_result.completed;
  check_close "mean fct" 1e-9 3. r.Baselines.Run_result.mean_fct;
  check_close "goodput" 1e-6 2e4 r.Baselines.Run_result.goodput;
  Alcotest.(check bool) "jain accounts for the stuck flow" true
    (r.Baselines.Run_result.jain < 1.)

let test_run_result_validation () =
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Run_result.make: fcts/chunks length mismatch") (fun () ->
      ignore
        (Baselines.Run_result.make ~protocol:"X" ~fcts:[| None |]
           ~chunk_bits:1. ~chunks:[||] ~drops:0 ~retransmissions:0
           ~sim_time:1.))

let () =
  Alcotest.run "baselines"
    [
      ( "window",
        [
          Alcotest.test_case "slow start" `Quick test_window_slow_start;
          Alcotest.test_case "ca growth" `Quick test_window_ca_growth_rate;
          Alcotest.test_case "loss halves" `Quick test_window_loss_halves;
          Alcotest.test_case "rto" `Quick test_window_rto;
          Alcotest.test_case "coupled growth" `Quick test_window_coupled_growth;
        ] );
      ( "aimd",
        [
          Alcotest.test_case "clean path" `Quick test_aimd_completes_clean_path;
          Alcotest.test_case "bottleneck losses" `Quick test_aimd_losses_on_bottleneck;
          Alcotest.test_case "two flows fair" `Quick test_aimd_two_flows_fair;
        ] );
      ( "mptcp",
        [
          Alcotest.test_case "uses both paths" `Quick test_mptcp_uses_both_paths;
          Alcotest.test_case "single path degenerates" `Quick test_mptcp_single_path_degenerates;
        ] );
      ( "rcp",
        [
          Alcotest.test_case "completes paced" `Quick test_rcp_completes_and_paces;
          Alcotest.test_case "fair shares" `Quick test_rcp_fair_shares;
        ] );
      ( "hbh",
        [
          Alcotest.test_case "lossless bottleneck" `Quick test_hbh_lossless_on_bottleneck;
          Alcotest.test_case "cannot detour" `Quick test_hbh_cannot_detour;
        ] );
      ( "comparison",
        [
          Alcotest.test_case "runs all" `Slow test_comparison_runs_all;
          Alcotest.test_case "inrpp avoids drops" `Slow test_comparison_inrpp_avoids_drops;
          Alcotest.test_case "names" `Quick test_comparison_names;
        ] );
      ( "run_result",
        [
          Alcotest.test_case "derivations" `Quick test_run_result_derivations;
          Alcotest.test_case "validation" `Quick test_run_result_validation;
        ] );
    ]
