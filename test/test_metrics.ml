(* Tests for the metrics library: fairness indices and report
   rendering. *)

let check_close msg tolerance expected actual =
  Alcotest.(check (float tolerance)) msg expected actual

(* ------------------------------------------------------------------ *)
(* Jain's index *)

let test_jain_equal_shares () =
  check_close "all equal" 1e-12 1. (Metrics.Fairness.jain [| 5.; 5.; 5.; 5. |])

let test_jain_single_hog () =
  (* one of n gets everything: F = 1/n *)
  check_close "1/4" 1e-12 0.25 (Metrics.Fairness.jain [| 8.; 0.; 0.; 0. |])

let test_jain_paper_example () =
  (* the paper's Fig. 3 left-hand computation: flows at 2 and 8 Mbps *)
  check_close "0.735" 1e-3 0.735 (Metrics.Fairness.jain [| 2.; 8. |]);
  (* right-hand side: 5 and 5 *)
  check_close "perfect" 1e-12 1. (Metrics.Fairness.jain [| 5.; 5. |])

let test_jain_edge_cases () =
  check_close "empty" 1e-12 1. (Metrics.Fairness.jain [||]);
  check_close "all zero" 1e-12 1. (Metrics.Fairness.jain [| 0.; 0. |]);
  check_close "singleton" 1e-12 1. (Metrics.Fairness.jain [| 3. |]);
  Alcotest.check_raises "negative"
    (Invalid_argument "Fairness: negative or NaN throughput") (fun () ->
      ignore (Metrics.Fairness.jain [| 1.; -1. |]))

let test_jain_scale_invariant () =
  let a = Metrics.Fairness.jain [| 1.; 2.; 3. |] in
  let b = Metrics.Fairness.jain [| 10.; 20.; 30. |] in
  check_close "scale invariant" 1e-12 a b

let test_max_min_ratio () =
  check_close "equal" 1e-12 1. (Metrics.Fairness.max_min_ratio [| 4.; 4. |]);
  check_close "quarter" 1e-12 0.25 (Metrics.Fairness.max_min_ratio [| 1.; 4. |]);
  check_close "empty" 1e-12 1. (Metrics.Fairness.max_min_ratio [||])

let test_entropy () =
  check_close "equal shares" 1e-9 1.
    (Metrics.Fairness.normalised_entropy [| 2.; 2.; 2. |]);
  check_close "hog" 1e-9 0.
    (Metrics.Fairness.normalised_entropy [| 5.; 0.; 0. |]);
  let skewed = Metrics.Fairness.normalised_entropy [| 9.; 1. |] in
  Alcotest.(check bool) "between" true (skewed > 0. && skewed < 1.)

(* ------------------------------------------------------------------ *)
(* Report *)

let render f = Format.asprintf "%t" (fun ppf -> f ppf ())

let test_table_alignment () =
  let out =
    render
      (Metrics.Report.table ~header:[ "name"; "value" ]
         [ [ "alpha"; "1" ]; [ "b"; "22" ] ])
  in
  let lines = String.split_on_char '\n' (String.trim out) in
  Alcotest.(check int) "4 lines" 4 (List.length lines);
  (* all lines same width *)
  match lines with
  | first :: rest ->
    List.iter
      (fun l -> Alcotest.(check int) "aligned" (String.length first) (String.length l))
      rest
  | [] -> Alcotest.fail "no output"

let test_table_validation () =
  Alcotest.check_raises "ragged row"
    (Invalid_argument "Report.table: row 0 has 1 cells, expected 2") (fun () ->
      render (Metrics.Report.table ~header:[ "a"; "b" ] [ [ "only" ] ])
      |> ignore)

let test_bar_chart () =
  let out =
    render
      (Metrics.Report.bar_chart ~width:10 ~header:"test"
         [ ("full", 10.); ("half", 5.); ("zero", 0.) ])
  in
  Alcotest.(check bool) "contains header" true
    (String.length out > 0 && String.sub out 0 4 = "test");
  (* the full bar must be twice the half bar *)
  let count_hashes line =
    String.fold_left (fun acc c -> if c = '#' then acc + 1 else acc) 0 line
  in
  let lines = String.split_on_char '\n' out in
  let full = List.find (fun l -> String.length l > 3 && String.sub l 0 4 = "full") lines in
  let half = List.find (fun l -> String.length l > 3 && String.sub l 0 4 = "half") lines in
  Alcotest.(check int) "proportional" (count_hashes full) (2 * count_hashes half)

let test_cdf_plot_runs () =
  let series =
    [
      ("a", [ (1.0, 0.2); (1.1, 0.6); (1.3, 1.0) ]);
      ("b", [ (1.0, 0.5); (1.2, 1.0) ]);
    ]
  in
  let out = render (Metrics.Report.cdf_plot ~width:30 ~height:8 ~header:"cdf" series) in
  Alcotest.(check bool) "mentions legend a" true
    (String.length out > 0
    && String.split_on_char '\n' out
       |> List.exists (fun l -> String.trim l = "* a"));
  Alcotest.(check bool) "draws glyphs" true (String.contains out '*')

let test_percent () =
  Alcotest.(check string) "format" "12.34%" (Metrics.Report.percent 0.1234)

(* ------------------------------------------------------------------ *)
(* Properties *)

let prop_jain_range =
  QCheck.Test.make ~name:"jain in [1/n, 1]" ~count:300
    QCheck.(list_of_size Gen.(int_range 1 20) (float_bound_inclusive 100.))
    (fun xs ->
      let arr = Array.of_list xs in
      let j = Metrics.Fairness.jain arr in
      let n = float_of_int (Array.length arr) in
      j >= (1. /. n) -. 1e-9 && j <= 1. +. 1e-9)

let prop_jain_max_at_equal =
  QCheck.Test.make ~name:"equal vectors maximise jain" ~count:100
    QCheck.(pair (float_range 0.1 100.) (int_range 2 10))
    (fun (v, n) ->
      let equal = Array.make n v in
      Metrics.Fairness.jain equal > 1. -. 1e-9)

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "metrics"
    [
      ( "jain",
        [
          Alcotest.test_case "equal shares" `Quick test_jain_equal_shares;
          Alcotest.test_case "single hog" `Quick test_jain_single_hog;
          Alcotest.test_case "paper example" `Quick test_jain_paper_example;
          Alcotest.test_case "edge cases" `Quick test_jain_edge_cases;
          Alcotest.test_case "scale invariance" `Quick test_jain_scale_invariant;
          Alcotest.test_case "max-min ratio" `Quick test_max_min_ratio;
          Alcotest.test_case "entropy" `Quick test_entropy;
        ] );
      ( "report",
        [
          Alcotest.test_case "table alignment" `Quick test_table_alignment;
          Alcotest.test_case "table validation" `Quick test_table_validation;
          Alcotest.test_case "bar chart" `Quick test_bar_chart;
          Alcotest.test_case "cdf plot" `Quick test_cdf_plot_runs;
          Alcotest.test_case "percent" `Quick test_percent;
        ] );
      ("properties", qc [ prop_jain_range; prop_jain_max_at_equal ]);
    ]
