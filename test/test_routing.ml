(* Tests for Dijkstra, Yen's k-shortest paths and ECMP. *)

open Topology

let diamond () = Graph.of_edges 4 [ (0, 1); (1, 3); (0, 2); (2, 3) ]

(* Weighted graph where the hop-shortest and delay-shortest paths
   differ: 0-1-3 is 2 hops with 10ms total, 0-2-3 is 2 hops with 2ms,
   and 0-3 direct is 1 hop with 50ms. *)
let weighted () =
  let b = Graph.Builder.create () in
  let n = Array.init 4 (fun i -> Graph.Builder.add_node b (string_of_int i)) in
  Graph.Builder.add_edge b ~delay:5e-3 n.(0) n.(1);
  Graph.Builder.add_edge b ~delay:5e-3 n.(1) n.(3);
  Graph.Builder.add_edge b ~delay:1e-3 n.(0) n.(2);
  Graph.Builder.add_edge b ~delay:1e-3 n.(2) n.(3);
  Graph.Builder.add_edge b ~delay:50e-3 n.(0) n.(3);
  Graph.Builder.build b

(* ------------------------------------------------------------------ *)
(* Dijkstra *)

let test_hops_tree () =
  let g = diamond () in
  let t = Dijkstra.run g 0 in
  Alcotest.(check (option (float 0.))) "self" (Some 0.) (Dijkstra.distance t 0);
  Alcotest.(check (option (float 0.))) "one hop" (Some 1.) (Dijkstra.distance t 1);
  Alcotest.(check (option (float 0.))) "two hops" (Some 2.) (Dijkstra.distance t 3);
  Alcotest.(check int) "source" 0 (Dijkstra.source t)

let test_metric_choice () =
  let g = weighted () in
  let by_hops = Option.get (Dijkstra.shortest_path ~metric:Dijkstra.Hops g 0 3) in
  Alcotest.(check int) "hop metric takes direct link" 1 (Path.hops by_hops);
  let by_delay = Option.get (Dijkstra.shortest_path ~metric:Dijkstra.Delay g 0 3) in
  Alcotest.(check (list int)) "delay metric takes fast branch" [ 0; 2; 3 ]
    by_delay.Path.nodes

let test_unreachable () =
  let g = Graph.of_edges 4 [ (0, 1); (2, 3) ] in
  let t = Dijkstra.run g 0 in
  Alcotest.(check bool) "unreachable" false (Dijkstra.reachable t 3);
  Alcotest.(check (option (float 0.))) "no distance" None (Dijkstra.distance t 3);
  Alcotest.(check bool) "no path" true (Dijkstra.path_to t 3 = None)

let test_forbidden_links () =
  let g = diamond () in
  let l01 = Option.get (Graph.find_link g 0 1) in
  let l10 = Option.get (Graph.find_link g 1 0) in
  let banned (l : Link.t) = l.Link.id = l01.Link.id || l.Link.id = l10.Link.id in
  let t = Dijkstra.run ~forbidden_links:banned g 0 in
  let p = Option.get (Dijkstra.path_to t 3) in
  Alcotest.(check (list int)) "avoids banned link" [ 0; 2; 3 ] p.Path.nodes

let test_forbidden_nodes () =
  let g = diamond () in
  let t = Dijkstra.run ~forbidden_nodes:(fun u -> u = 1) g 0 in
  let p = Option.get (Dijkstra.path_to t 3) in
  Alcotest.(check (list int)) "avoids banned node" [ 0; 2; 3 ] p.Path.nodes

let test_path_reconstruction_valid () =
  let g = Builders.grid 4 5 in
  let t = Dijkstra.run g 0 in
  for v = 0 to Graph.node_count g - 1 do
    match Dijkstra.path_to t v with
    | None -> Alcotest.fail "grid is connected"
    | Some p ->
      Alcotest.(check int) "path src" 0 (Path.src p);
      Alcotest.(check int) "path dst" v (Path.dst p);
      Alcotest.(check bool) "path simple" true (Path.is_simple p)
  done

let test_all_pairs_matches_bfs () =
  let g = Builders.grid 3 3 in
  let matrix = Dijkstra.all_pairs_hops g in
  (* corner to opposite corner of a 3x3 grid is 4 hops *)
  Alcotest.(check int) "corner to corner" 4 matrix.(0).(8);
  Alcotest.(check int) "diagonal zero" 0 matrix.(4).(4);
  (* symmetric because the graph is *)
  Alcotest.(check int) "symmetric" matrix.(2).(6) matrix.(6).(2)

let test_eccentricity () =
  let g = Builders.line 5 in
  Alcotest.(check (option int)) "end of line" (Some 4) (Dijkstra.eccentricity g 0);
  Alcotest.(check (option int)) "middle" (Some 2) (Dijkstra.eccentricity g 2)

let test_next_hops () =
  let g = diamond () in
  let hops = Dijkstra.next_hops g 0 ~dst:3 in
  let firsts = List.map (fun (l : Link.t) -> l.Link.dst) hops in
  Alcotest.(check (list int)) "both branches tie" [ 1; 2 ]
    (List.sort Int.compare firsts);
  Alcotest.(check (list int)) "self" []
    (List.map (fun (l : Link.t) -> l.Link.dst) (Dijkstra.next_hops g 3 ~dst:3))

(* ------------------------------------------------------------------ *)
(* Yen *)

let test_yen_basic () =
  let g = diamond () in
  let paths = Yen.k_shortest g ~k:3 0 3 in
  Alcotest.(check int) "only two loopless" 2 (List.length paths);
  List.iter
    (fun p -> Alcotest.(check int) "both are 2 hops" 2 (Path.hops p))
    paths;
  (* distinct *)
  match paths with
  | [ a; b ] -> Alcotest.(check bool) "distinct" false (Path.equal a b)
  | _ -> Alcotest.fail "expected two"

let test_yen_ordering () =
  (* ladder where longer alternatives exist *)
  let g =
    Graph.of_edges 6 [ (0, 1); (1, 2); (0, 3); (3, 4); (4, 2); (1, 4); (3, 1) ]
  in
  let paths = Yen.k_shortest g ~k:5 0 2 in
  let costs = List.map Path.hops paths in
  let sorted = List.sort Int.compare costs in
  Alcotest.(check (list int)) "non-decreasing" sorted costs;
  Alcotest.(check bool) "first is shortest" true (List.hd costs = 2)

let test_yen_all_simple () =
  let g = Builders.grid 3 3 in
  let paths = Yen.k_shortest g ~k:10 0 8 in
  Alcotest.(check bool) "got several" true (List.length paths >= 5);
  List.iter
    (fun p ->
      Alcotest.(check bool) "simple" true (Path.is_simple p);
      Alcotest.(check int) "src" 0 (Path.src p);
      Alcotest.(check int) "dst" 8 (Path.dst p))
    paths

let test_yen_unreachable () =
  let g = Graph.of_edges 3 [ (0, 1) ] in
  Alcotest.(check int) "no paths" 0 (List.length (Yen.k_shortest g ~k:4 0 2))

let test_yen_k_one () =
  let g = diamond () in
  match Yen.k_shortest g ~k:1 0 3 with
  | [ p ] -> Alcotest.(check int) "is shortest" 2 (Path.hops p)
  | _ -> Alcotest.fail "expected exactly one"

let test_k_disjoint () =
  let g = diamond () in
  let paths = Yen.k_disjoint g ~k:3 0 3 in
  Alcotest.(check int) "two disjoint routes" 2 (List.length paths);
  match paths with
  | [ a; b ] ->
    List.iter
      (fun (l : Link.t) ->
        Alcotest.(check bool) "link-disjoint" false (Path.mem_link b l))
      a.Path.links
  | _ -> Alcotest.fail "expected two"

(* ------------------------------------------------------------------ *)
(* ECMP *)

let test_ecmp_enumerates_ties () =
  let g = diamond () in
  let paths = Ecmp.equal_cost_paths g 0 3 in
  Alcotest.(check int) "two equal-cost" 2 (List.length paths);
  List.iter (fun p -> Alcotest.(check int) "2 hops" 2 (Path.hops p)) paths

let test_ecmp_limit () =
  (* 3-stage butterfly has 8 equal-cost paths; limit must cap *)
  let g = Builders.grid 2 4 in
  let all = Ecmp.equal_cost_paths ~limit:100 g 0 7 in
  let capped = Ecmp.equal_cost_paths ~limit:2 g 0 7 in
  Alcotest.(check bool) "several paths" true (List.length all >= 3);
  Alcotest.(check int) "capped" 2 (List.length capped)

let test_ecmp_self () =
  let g = diamond () in
  match Ecmp.equal_cost_paths g 2 2 with
  | [ p ] -> Alcotest.(check int) "self path" 0 (Path.hops p)
  | _ -> Alcotest.fail "expected singleton"

let test_ecmp_unreachable () =
  let g = Graph.of_edges 3 [ (0, 1) ] in
  Alcotest.(check int) "none" 0 (List.length (Ecmp.equal_cost_paths g 0 2))

let test_ecmp_hash_stability () =
  let a = Ecmp.hash_flow ~flow_id:1234 ~buckets:7 in
  let b = Ecmp.hash_flow ~flow_id:1234 ~buckets:7 in
  Alcotest.(check int) "deterministic" a b;
  Alcotest.check_raises "bad buckets"
    (Invalid_argument "Ecmp.hash_flow: buckets must be positive") (fun () ->
      ignore (Ecmp.hash_flow ~flow_id:1 ~buckets:0))

let test_ecmp_hash_spread () =
  let buckets = 4 in
  let counts = Array.make buckets 0 in
  for flow = 0 to 3999 do
    let b = Ecmp.hash_flow ~flow_id:flow ~buckets in
    counts.(b) <- counts.(b) + 1
  done;
  Array.iter
    (fun c ->
      if c < 800 || c > 1200 then
        Alcotest.failf "bucket skew: %d of 4000 (expected ~1000)" c)
    counts

let test_ecmp_pick () =
  let g = diamond () in
  let paths = Ecmp.equal_cost_paths g 0 3 in
  Alcotest.(check bool) "picks some path" true (Ecmp.pick paths ~flow_id:5 <> None);
  Alcotest.(check bool) "empty gives none" true (Ecmp.pick [] ~flow_id:5 = None);
  (* different flows eventually use both paths *)
  let used = Hashtbl.create 2 in
  for flow = 0 to 63 do
    match Ecmp.pick paths ~flow_id:flow with
    | Some p -> Hashtbl.replace used p.Path.nodes ()
    | None -> ()
  done;
  Alcotest.(check int) "both used" 2 (Hashtbl.length used)

(* ------------------------------------------------------------------ *)
(* Properties *)

let graph_gen =
  QCheck.make
    QCheck.Gen.(pair (int_range 4 30) (int_range 0 10_000))

let connected_er (n, seed) =
  (* raise p until connected; deterministic given inputs *)
  let rec go p =
    let g = Builders.erdos_renyi ~seed:(Int64.of_int seed) ~p n in
    if Graph.is_connected g || p > 0.95 then g else go (p +. 0.1)
  in
  go 0.2

let prop_triangle_inequality =
  QCheck.Test.make ~name:"hop distances obey triangle inequality" ~count:60
    graph_gen (fun (n, seed) ->
      let g = connected_er (n, seed) in
      let m = Dijkstra.all_pairs_hops g in
      let nc = Graph.node_count g in
      let ok = ref true in
      for i = 0 to nc - 1 do
        for j = 0 to nc - 1 do
          for k = 0 to nc - 1 do
            if
              m.(i).(j) < max_int && m.(j).(k) < max_int
              && m.(i).(k) > m.(i).(j) + m.(j).(k)
            then ok := false
          done
        done
      done;
      !ok)

let prop_yen_sorted_distinct =
  QCheck.Test.make ~name:"yen paths sorted and distinct" ~count:40 graph_gen
    (fun (n, seed) ->
      let g = connected_er (n, seed) in
      let paths = Yen.k_shortest g ~k:6 0 (Graph.node_count g - 1) in
      let hops = List.map Path.hops paths in
      let sorted = List.sort Int.compare hops in
      let node_lists = List.map (fun p -> p.Path.nodes) paths in
      let distinct =
        List.length node_lists
        = List.length (List.sort_uniq compare node_lists)
      in
      hops = sorted && distinct)

let prop_ecmp_paths_equal_cost =
  QCheck.Test.make ~name:"ecmp paths all have shortest cost" ~count:60
    graph_gen (fun (n, seed) ->
      let g = connected_er (n, seed) in
      let d = Graph.node_count g - 1 in
      match Dijkstra.shortest_path g 0 d with
      | None -> true
      | Some sp ->
        let best = Path.hops sp in
        List.for_all
          (fun p -> Path.hops p = best)
          (Ecmp.equal_cost_paths g 0 d))

let prop_dijkstra_is_minimal =
  QCheck.Test.make ~name:"dijkstra beats any yen alternative" ~count:40
    graph_gen (fun (n, seed) ->
      let g = connected_er (n, seed) in
      let d = Graph.node_count g - 1 in
      match Dijkstra.shortest_path g 0 d with
      | None -> true
      | Some sp ->
        List.for_all
          (fun p -> Path.hops p >= Path.hops sp)
          (Yen.k_shortest g ~k:4 0 d))

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "routing"
    [
      ( "dijkstra",
        [
          Alcotest.test_case "hop tree" `Quick test_hops_tree;
          Alcotest.test_case "metric choice" `Quick test_metric_choice;
          Alcotest.test_case "unreachable" `Quick test_unreachable;
          Alcotest.test_case "forbidden links" `Quick test_forbidden_links;
          Alcotest.test_case "forbidden nodes" `Quick test_forbidden_nodes;
          Alcotest.test_case "reconstruction validity" `Quick test_path_reconstruction_valid;
          Alcotest.test_case "all pairs" `Quick test_all_pairs_matches_bfs;
          Alcotest.test_case "eccentricity" `Quick test_eccentricity;
          Alcotest.test_case "next hops" `Quick test_next_hops;
        ] );
      ( "yen",
        [
          Alcotest.test_case "basic" `Quick test_yen_basic;
          Alcotest.test_case "ordering" `Quick test_yen_ordering;
          Alcotest.test_case "all simple" `Quick test_yen_all_simple;
          Alcotest.test_case "unreachable" `Quick test_yen_unreachable;
          Alcotest.test_case "k=1" `Quick test_yen_k_one;
          Alcotest.test_case "disjoint" `Quick test_k_disjoint;
        ] );
      ( "ecmp",
        [
          Alcotest.test_case "enumerates ties" `Quick test_ecmp_enumerates_ties;
          Alcotest.test_case "limit" `Quick test_ecmp_limit;
          Alcotest.test_case "self" `Quick test_ecmp_self;
          Alcotest.test_case "unreachable" `Quick test_ecmp_unreachable;
          Alcotest.test_case "hash stability" `Quick test_ecmp_hash_stability;
          Alcotest.test_case "hash spread" `Quick test_ecmp_hash_spread;
          Alcotest.test_case "pick" `Quick test_ecmp_pick;
        ] );
      ( "properties",
        qc
          [
            prop_triangle_inequality;
            prop_yen_sorted_distinct;
            prop_ecmp_paths_equal_cost;
            prop_dijkstra_is_minimal;
          ] );
    ]
