(* Tracing / profiling / flight-recorder subsystem: lifecycle-event
   codec laws, span collection and critical-path attribution, Perfetto
   export shape, the engine self-profiler, sampler self-observation,
   and the flight-recorder ring. *)

module T = Chunksim.Trace
module J = Obs.Json

let check_close msg eps expected got =
  if Float.abs (expected -. got) > eps then
    Alcotest.failf "%s: expected %.17g, got %.17g" msg expected got

(* ------------------------------------------------------------------ *)
(* Trace_codec laws for the lifecycle events *)

let lifecycle_events =
  [
    T.Enqueued { node = 3; link = 7; flow = 1; idx = 42 };
    T.Tx_begin { link = 7; flow = 1; idx = 42 };
    T.Delivered { node = 9; flow = 1; idx = 42 };
    T.Retransmit { flow = 1; idx = 42 };
    T.Custody_evacuated { node = 3; flow = 1; idx = 42 };
    T.Custody_evicted { node = 3; flow = 1; idx = 42 };
  ]

let round_trip ~time e =
  (* full text path: print, reparse, decode *)
  match
    Result.bind
      (J.parse (J.to_string (Obs.Trace_codec.to_json ~time e)))
      Obs.Trace_codec.of_json
  with
  | Ok te -> te
  | Error err ->
    Alcotest.failf "%s failed to round-trip: %s" (Obs.Trace_codec.kind e) err

let test_codec_lifecycle_round_trip () =
  List.iter
    (fun e ->
      let t', e' = round_trip ~time:1.25 e in
      check_close (Obs.Trace_codec.kind e ^ " time") 0. 1.25 t';
      if e' <> e then
        Alcotest.failf "%s changed in round trip" (Obs.Trace_codec.kind e);
      (* every lifecycle kind is registered in the stable kind list *)
      Alcotest.(check bool)
        (Obs.Trace_codec.kind e ^ " in all_kinds")
        true
        (List.mem (Obs.Trace_codec.kind e) Obs.Trace_codec.all_kinds))
    lifecycle_events

let test_codec_nan_time () =
  (* NaN has no JSON literal: the printer writes null, the decoder
     restores NaN, so a NaN-timestamped event survives the text path *)
  List.iter
    (fun e ->
      let text = J.to_string (Obs.Trace_codec.to_json ~time:Float.nan e) in
      Alcotest.(check bool)
        (Obs.Trace_codec.kind e ^ " NaN prints as null")
        true
        (match J.parse text with
        | Ok j -> J.member "t" j = Some J.Null
        | Error _ -> false);
      let t', e' = round_trip ~time:Float.nan e in
      Alcotest.(check bool)
        (Obs.Trace_codec.kind e ^ " NaN time restored")
        true (Float.is_nan t');
      if e' <> e then
        Alcotest.failf "%s changed under NaN time" (Obs.Trace_codec.kind e))
    lifecycle_events

let test_codec_long_line () =
  (* one event line well past 64 KiB must survive encode + decode *)
  let big = String.make 100_000 'x' in
  let e = T.Sent { node = 1; link = 2; packet = big } in
  let text = J.to_string (Obs.Trace_codec.to_json ~time:0.5 e) in
  Alcotest.(check bool) "line longer than 64 KiB" true
    (String.length text > 65_536);
  let t', e' = round_trip ~time:0.5 e in
  check_close "time" 0. 0.5 t';
  if e' <> e then Alcotest.fail "long event changed in round trip"

let test_codec_csv_has_lifecycle_rows () =
  List.iter
    (fun e ->
      let row = Obs.Trace_codec.to_csv_row ~time:2.5 e in
      let cells = String.split_on_char ',' row in
      Alcotest.(check int)
        (Obs.Trace_codec.kind e ^ " csv column count")
        (List.length (String.split_on_char ',' Obs.Trace_codec.csv_header))
        (List.length cells);
      Alcotest.(check string)
        (Obs.Trace_codec.kind e ^ " csv kind cell")
        (Obs.Trace_codec.kind e) (List.nth cells 1))
    lifecycle_events

(* ------------------------------------------------------------------ *)
(* Span collection and critical-path attribution *)

(* one chunk through sender queue -> wire -> custody -> queue -> wire
   -> delivery; hand-checkable stage totals *)
let chunk_timeline =
  [
    (0.0, T.Enqueued { node = 0; link = 0; flow = 1; idx = 2 });
    (1.0, T.Tx_begin { link = 0; flow = 1; idx = 2 });
    (3.0, T.Cached { node = 1; flow = 1; idx = 2 });
    (6.0, T.Custody_released { node = 1; flow = 1; idx = 2 });
    (6.0, T.Enqueued { node = 1; link = 1; flow = 1; idx = 2 });
    (7.0, T.Tx_begin { link = 1; flow = 1; idx = 2 });
    (7.5, T.Delivered { node = 2; flow = 1; idx = 2 });
  ]

let test_span_attribution () =
  let s = Obs.Span.of_events chunk_timeline in
  Alcotest.(check int) "one chunk" 1 (Obs.Span.chunk_count s);
  Alcotest.(check int) "events counted" (List.length chunk_timeline)
    (Obs.Span.event_count s);
  match Obs.Span.breakdowns s with
  | [ b ] ->
    Alcotest.(check int) "flow" 1 b.Obs.Span.flow;
    Alcotest.(check int) "idx" 2 b.Obs.Span.idx;
    check_close "queue: two waits" 1e-9 2.0 b.Obs.Span.queue_s;
    check_close "wire: two transmissions" 1e-9 2.5 b.Obs.Span.wire_s;
    check_close "custody: one hold" 1e-9 3.0 b.Obs.Span.custody_s;
    check_close "other: nothing unexplained" 1e-9 0. b.Obs.Span.other_s;
    Alcotest.(check int) "hops" 2 b.Obs.Span.hops;
    Alcotest.(check int) "no detours" 0 b.Obs.Span.detours;
    Alcotest.(check int) "no retransmits" 0 b.Obs.Span.retransmits;
    Alcotest.(check bool) "delivered" true b.Obs.Span.delivered;
    (* the invariant the attribution scheme guarantees: stages sum
       exactly to the chunk's elapsed time *)
    check_close "stages sum to elapsed" 1e-9
      (b.Obs.Span.last_t -. b.Obs.Span.first_t)
      (b.Obs.Span.queue_s +. b.Obs.Span.wire_s +. b.Obs.Span.custody_s
     +. b.Obs.Span.other_s)
  | bs -> Alcotest.failf "expected 1 breakdown, got %d" (List.length bs)

let test_span_nan_timestamps () =
  (* a NaN-timestamped event (e.g. decoded from a truncated line)
     sorts last and contributes zero width — the finite stages are
     unchanged *)
  let s =
    Obs.Span.of_events
      (chunk_timeline @ [ (Float.nan, T.Retransmit { flow = 1; idx = 2 }) ])
  in
  match Obs.Span.breakdowns s with
  | [ b ] ->
    check_close "queue unchanged" 1e-9 2.0 b.Obs.Span.queue_s;
    check_close "wire unchanged" 1e-9 2.5 b.Obs.Span.wire_s;
    check_close "custody unchanged" 1e-9 3.0 b.Obs.Span.custody_s;
    check_close "other unchanged" 1e-9 0. b.Obs.Span.other_s;
    Alcotest.(check bool) "last_t stays finite" true
      (Float.is_finite b.Obs.Span.last_t);
    Alcotest.(check int) "retransmit still counted" 1 b.Obs.Span.retransmits
  | bs -> Alcotest.failf "expected 1 breakdown, got %d" (List.length bs)

let test_span_out_of_order_insert () =
  (* the lazy virtual transmitter records Tx_begin with start times in
     the past: attribution must sort by timestamp, not arrival order *)
  let shuffled =
    [
      List.nth chunk_timeline 2; List.nth chunk_timeline 0;
      List.nth chunk_timeline 5; List.nth chunk_timeline 1;
      List.nth chunk_timeline 6; List.nth chunk_timeline 3;
      List.nth chunk_timeline 4;
    ]
  in
  let a = Obs.Span.breakdowns (Obs.Span.of_events chunk_timeline) in
  let b = Obs.Span.breakdowns (Obs.Span.of_events shuffled) in
  match (a, b) with
  | [ a ], [ b ] ->
    check_close "queue order-independent" 1e-9 a.Obs.Span.queue_s
      b.Obs.Span.queue_s;
    check_close "wire order-independent" 1e-9 a.Obs.Span.wire_s
      b.Obs.Span.wire_s;
    check_close "custody order-independent" 1e-9 a.Obs.Span.custody_s
      b.Obs.Span.custody_s
  | _ -> Alcotest.fail "expected one breakdown from each collector"

let test_span_report_renders () =
  let s = Obs.Span.of_events chunk_timeline in
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  Obs.Span.report ppf s;
  Format.pp_print_flush ppf ();
  let text = Buffer.contents buf in
  let contains needle =
    let nl = String.length needle and tl = String.length text in
    let rec go i = i + nl <= tl && (String.sub text i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "summary line" true
    (contains "Critical path over 1 chunks");
  Alcotest.(check bool) "chunk row" true (contains "f1   #2");
  (* empty collector degrades to a hint, not an empty table *)
  Buffer.clear buf;
  Obs.Span.report ppf (Obs.Span.create ());
  Format.pp_print_flush ppf ();
  Alcotest.(check bool) "empty hint" true
    (Buffer.contents buf = "no chunk lifecycle events (span tracing off?)\n")

(* ------------------------------------------------------------------ *)
(* Perfetto export *)

let test_perfetto_export_shape () =
  let s = Obs.Span.of_events chunk_timeline in
  Obs.Span.add s ~time:2.0
    (T.Phase_change { node = 1; link = 0; phase = "backpressure" });
  let buf = Buffer.create 1024 in
  Obs.Span.to_perfetto buf s;
  match J.parse (Buffer.contents buf) with
  | Error e -> Alcotest.failf "perfetto output is not JSON: %s" e
  | Ok j ->
    let events =
      match J.member "traceEvents" j with
      | Some (J.List l) -> l
      | _ -> Alcotest.fail "missing traceEvents list"
    in
    let ph e =
      match J.member "ph" e with
      | Some (J.Str s) -> s
      | _ -> Alcotest.fail "event without ph"
    in
    let count p = List.length (List.filter (fun e -> ph e = p) events) in
    (* track metadata: 1 flow x (1 process + 3 threads) *)
    Alcotest.(check int) "metadata records" 4 (count "M");
    (* flow-arrow chain: one start, one finish, the rest steps *)
    Alcotest.(check int) "chain start" 1 (count "s");
    Alcotest.(check int) "chain finish" 1 (count "f");
    Alcotest.(check int) "chain steps" 5 (count "t");
    (* stage slices: the 6.0 -> 6.0 release/enqueue pair is zero-width
       and skipped, leaving 5 non-degenerate intervals *)
    Alcotest.(check int) "complete slices" 5 (count "X");
    (* the Phase_change global annotation lands as an instant *)
    Alcotest.(check bool) "global instant" true (count "i" >= 1);
    (* every slice is well-formed enough for the Perfetto importer *)
    List.iter
      (fun e ->
        if ph e = "X" then begin
          (match J.member "ts" e with
          | Some (J.Num ts) ->
            Alcotest.(check bool) "ts in microseconds" true
              (ts >= 0. && ts <= 7.5e6)
          | _ -> Alcotest.fail "slice without numeric ts");
          match J.member "dur" e with
          | Some (J.Num d) ->
            Alcotest.(check bool) "positive duration" true (d > 0.)
          | _ -> Alcotest.fail "slice without numeric dur"
        end)
      events;
    (* causal links all reference the packed chunk key *)
    let key =
      float_of_int (Chunksim.Chunk_key.pack ~flow:1 ~idx:2)
    in
    List.iter
      (fun e ->
        if ph e = "s" || ph e = "t" || ph e = "f" then
          match J.member "id" e with
          | Some (J.Num id) -> check_close "flow-arrow id" 0. key id
          | _ -> Alcotest.fail "flow event without id")
      events

(* ------------------------------------------------------------------ *)
(* Profile rows: engine attribution + JSON round-trip *)

let test_engine_profiler_attribution () =
  let eng = Sim.Engine.create () in
  (* deterministic fake clock: one tick per read *)
  let now = ref 0. in
  let clock () =
    now := !now +. 0.001;
    !now
  in
  let k_a = Sim.Engine.profile_kind eng "alpha" in
  let k_b = Sim.Engine.profile_kind eng "beta" in
  Sim.Engine.profile_start ~clock eng;
  Alcotest.(check bool) "profiling on" true (Sim.Engine.profiling eng);
  for i = 1 to 3 do
    ignore
      (Sim.Engine.schedule eng
         ~delay:(float_of_int i)
         (fun () -> Sim.Engine.profile_mark eng k_a))
  done;
  ignore
    (Sim.Engine.schedule eng ~delay:10. (fun () ->
         Sim.Engine.profile_mark eng k_b));
  ignore (Sim.Engine.schedule eng ~delay:11. (fun () -> ()));
  Sim.Engine.run eng;
  Sim.Engine.profile_stop eng;
  Alcotest.(check bool) "profiling off" false (Sim.Engine.profiling eng);
  let rows = Sim.Engine.profile_rows eng in
  let find k =
    match List.find_opt (fun (name, _, _, _) -> name = k) rows with
    | Some r -> r
    | None -> Alcotest.failf "missing profile row %s" k
  in
  let _, na, wa, _ = find "alpha" in
  let _, nb, _, _ = find "beta" in
  let _, no, _, _ = find "other" in
  Alcotest.(check int) "alpha events" 3 na;
  Alcotest.(check int) "beta events" 1 nb;
  Alcotest.(check int) "unmarked handler lands in other" 1 no;
  Alcotest.(check bool) "alpha wall-clock accumulated" true (wa > 0.);
  let total = List.fold_left (fun acc (_, n, _, _) -> acc + n) 0 rows in
  Alcotest.(check int) "every event attributed exactly once"
    (Sim.Engine.events_handled eng) total

let test_profile_json_round_trip () =
  let rows =
    [ ("packet", 1376, 0.0006, 53_000.); ("tick", 1, 0.0037, 792_860.) ]
  in
  let j = Obs.Profile.to_json ~extra:[ ("scenario", J.Str "test") ] rows in
  (match J.member "schema" j with
  | Some (J.Str s) -> Alcotest.(check string) "schema" "inrpp-profile/v1" s
  | _ -> Alcotest.fail "missing schema");
  (match J.member "scenario" j with
  | Some (J.Str s) -> Alcotest.(check string) "extra field kept" "test" s
  | _ -> Alcotest.fail "extra field dropped");
  (match Result.bind (J.parse (J.to_string j)) Obs.Profile.of_json with
  | Ok rows' ->
    (* to_json sorts by wall-clock descending *)
    Alcotest.(check bool) "rows round-trip (sorted by wall desc)" true
      (rows' = [ List.nth rows 1; List.nth rows 0 ])
  | Error e -> Alcotest.failf "profile decode: %s" e);
  match Obs.Profile.of_json (J.Obj [ ("type", J.Str "profile") ]) with
  | Ok _ -> Alcotest.fail "decoder accepted a schema-less object"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Sampler self-observation *)

let test_sampler_self_observation () =
  let eng = Sim.Engine.create () in
  let now = ref 0. in
  let clock () =
    now := !now +. 0.002;
    !now
  in
  let smp = Obs.Sampler.create ~eng ~interval:0.1 ~clock () in
  Alcotest.(check bool) "self-observing with a clock" true
    (Obs.Sampler.self_observing smp);
  ignore (Obs.Sampler.track smp "x" (fun () -> 1.));
  Obs.Sampler.start smp;
  Sim.Engine.run ~until:0.55 eng;
  Alcotest.(check int) "ticks" 6 (Obs.Sampler.ticks smp);
  (* the fake clock advances 2 ms per read and sample_now reads it
     twice per tick, so cumulative probe time is exactly 6 x 2 ms *)
  check_close "probe seconds accumulate" 1e-9 0.012
    (Obs.Sampler.probe_seconds smp);
  let plain = Obs.Sampler.create ~eng ~interval:0.1 () in
  Alcotest.(check bool) "clockless sampler opts out" false
    (Obs.Sampler.self_observing plain);
  check_close "clockless probe time is zero" 0. 0.
    (Obs.Sampler.probe_seconds plain)

(* ------------------------------------------------------------------ *)
(* Flight recorder *)

let read_lines path =
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  List.rev !lines

let with_tmp f =
  let path = Filename.temp_file "flight" ".ndjson" in
  Sys.remove path;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

let test_recorder_ring_and_dump () =
  with_tmp (fun path ->
      let rc = Obs.Recorder.create ~capacity:4 ~path () in
      for i = 0 to 9 do
        Obs.Recorder.record rc
          ~time:(float_of_int i)
          (T.Delivered { node = 0; flow = 0; idx = i })
      done;
      Alcotest.(check int) "ring holds capacity" 4 (Obs.Recorder.size rc);
      Alcotest.(check int) "all events seen" 10 (Obs.Recorder.seen rc);
      (match Obs.Recorder.contents rc with
      | [ (t6, _); _; _; (t9, _) ] ->
        check_close "oldest survivor" 1e-9 6. t6;
        check_close "newest survivor" 1e-9 9. t9
      | l -> Alcotest.failf "expected 4 events, got %d" (List.length l));
      (* lazy open: nothing on disk until the first dump *)
      Alcotest.(check bool) "clean run leaves no artefact" false
        (Sys.file_exists path);
      Obs.Recorder.dump rc ~reason:"invariant: conservation" ~time:9.5;
      Alcotest.(check int) "dump recorded" 1 (Obs.Recorder.dumps rc);
      Obs.Recorder.close rc;
      Obs.Recorder.close rc;
      (* close is idempotent *)
      let lines = read_lines path in
      Alcotest.(check int) "header + ring" 5 (List.length lines);
      (match J.parse (List.hd lines) with
      | Ok j ->
        Alcotest.(check (option string)) "header type" (Some "flight_dump")
          (Option.bind (J.member "type" j) J.to_str);
        Alcotest.(check (option string)) "header reason"
          (Some "invariant: conservation")
          (Option.bind (J.member "reason" j) J.to_str);
        Alcotest.(check (option int)) "header count" (Some 4)
          (Option.bind (J.member "events" j) J.to_int)
      | Error e -> Alcotest.failf "header line: %s" e);
      List.iteri
        (fun i line ->
          match Result.bind (J.parse line) Obs.Trace_codec.of_json with
          | Ok (t, T.Delivered { idx; _ }) ->
            check_close "event time" 1e-9 (float_of_int (6 + i)) t;
            Alcotest.(check int) "event idx" (6 + i) idx
          | Ok _ -> Alcotest.failf "line %d decoded to the wrong event" i
          | Error e -> Alcotest.failf "line %d: %s" i e)
        (List.tl lines))

let test_recorder_dump_cap () =
  with_tmp (fun path ->
      let rc = Obs.Recorder.create ~capacity:2 ~max_dumps:2 ~path () in
      Obs.Recorder.record rc ~time:0. (T.Retransmit { flow = 0; idx = 0 });
      for i = 1 to 5 do
        Obs.Recorder.dump rc ~reason:"again" ~time:(float_of_int i)
      done;
      Alcotest.(check int) "dumps capped" 2 (Obs.Recorder.dumps rc);
      Obs.Recorder.close rc;
      let headers =
        List.filter
          (fun l ->
            match J.parse l with
            | Ok j -> J.member "type" j = Some (J.Str "flight_dump")
            | Error _ -> false)
          (read_lines path)
      in
      Alcotest.(check int) "only capped dumps on disk" 2 (List.length headers))

let test_recorder_on_invariant_violation () =
  (* the wiring protocol.ml uses: a checker violation triggers a dump *)
  with_tmp (fun path ->
      let rc = Obs.Recorder.create ~path () in
      Obs.Recorder.record rc ~time:0.1
        (T.Cached { node = 1; flow = 0; idx = 0 });
      let chk = Check.Invariant.create () in
      Check.Invariant.on_violation chk (fun v ->
          Obs.Recorder.dump rc
            ~reason:("invariant: " ^ v.Check.Invariant.checker)
            ~time:v.Check.Invariant.time);
      Check.Invariant.violate chk ~checker:"conservation" ~time:0.2
        "chunk leaked";
      Alcotest.(check bool) "violation dumped the ring" true
        (Obs.Recorder.dumps rc = 1);
      Obs.Recorder.close rc;
      match read_lines path with
      | header :: _ ->
        Alcotest.(check (option string)) "reason names the checker"
          (Some "invariant: conservation")
          (Option.bind
             (Result.to_option (J.parse header))
             (fun j -> Option.bind (J.member "reason" j) J.to_str))
      | [] -> Alcotest.fail "no dump written")

(* ------------------------------------------------------------------ *)
(* End-to-end: spans + profiler through a protocol run *)

let backpressure_graph () =
  let b = Topology.Graph.Builder.create () in
  let n0 = Topology.Graph.Builder.add_node b "s" in
  let n1 = Topology.Graph.Builder.add_node b "r" in
  let n2 = Topology.Graph.Builder.add_node b "d" in
  Topology.Graph.Builder.add_edge b ~capacity:10e6 ~delay:2e-3 n0 n1;
  Topology.Graph.Builder.add_edge b ~capacity:2e6 ~delay:2e-3 n1 n2;
  Topology.Graph.Builder.build b

let bp_cfg =
  {
    Inrpp.Config.default with
    Inrpp.Config.anticipation = 512;
    cache_bits = 30. *. Inrpp.Config.default.Inrpp.Config.chunk_bits;
  }

let test_protocol_span_run () =
  let g = backpressure_graph () in
  let spans = Obs.Span.create () in
  let o = Obs.Observer.create ~spans () in
  let r =
    Inrpp.Protocol.run ~cfg:bp_cfg ~horizon:30. ~obs:o g
      [ Inrpp.Protocol.flow_spec ~src:0 ~dst:2 150 ]
  in
  Alcotest.(check int) "flow completed" 1 r.Inrpp.Protocol.completed;
  Alcotest.(check int) "every chunk traced" 150 (Obs.Span.chunk_count spans);
  let bs = Obs.Span.breakdowns spans in
  List.iter
    (fun b ->
      Alcotest.(check bool)
        (Printf.sprintf "chunk %d delivered" b.Obs.Span.idx)
        true b.Obs.Span.delivered;
      Alcotest.(check bool)
        (Printf.sprintf "chunk %d crossed two links" b.Obs.Span.idx)
        true
        (b.Obs.Span.hops >= 2);
      check_close
        (Printf.sprintf "chunk %d stages sum to elapsed" b.Obs.Span.idx)
        1e-6
        (b.Obs.Span.last_t -. b.Obs.Span.first_t)
        (b.Obs.Span.queue_s +. b.Obs.Span.wire_s +. b.Obs.Span.custody_s
       +. b.Obs.Span.other_s))
    bs;
  (* the tiny store forced custody: time must be attributed to it *)
  let custody_total =
    List.fold_left (fun acc b -> acc +. b.Obs.Span.custody_s) 0. bs
  in
  Alcotest.(check bool) "custody time attributed" true (custody_total > 0.);
  (* the export is valid JSON with the expected top-level shape *)
  let buf = Buffer.create 65536 in
  Obs.Span.to_perfetto buf spans;
  match J.parse (Buffer.contents buf) with
  | Ok j ->
    Alcotest.(check bool) "perfetto traceEvents non-empty" true
      (match J.member "traceEvents" j with
      | Some (J.List (_ :: _)) -> true
      | _ -> false)
  | Error e -> Alcotest.failf "perfetto export: %s" e

let test_protocol_span_run_deterministic_vs_plain () =
  (* span collection must observe, not perturb: the simulated outcome
     with tracing on is identical to the plain run *)
  let g = backpressure_graph () in
  let specs = [ Inrpp.Protocol.flow_spec ~src:0 ~dst:2 150 ] in
  let plain = Inrpp.Protocol.run ~cfg:bp_cfg ~horizon:30. g specs in
  let spans = Obs.Span.create () in
  let o = Obs.Observer.create ~spans () in
  let traced = Inrpp.Protocol.run ~cfg:bp_cfg ~horizon:30. ~obs:o g specs in
  Alcotest.(check (option (float 0.)))
    "fct identical" plain.Inrpp.Protocol.flows.(0).Inrpp.Protocol.fct
    traced.Inrpp.Protocol.flows.(0).Inrpp.Protocol.fct;
  Alcotest.(check int) "drops identical" plain.Inrpp.Protocol.total_drops
    traced.Inrpp.Protocol.total_drops;
  Alcotest.(check int) "forwarded identical" plain.Inrpp.Protocol.forwarded_data
    traced.Inrpp.Protocol.forwarded_data

let test_protocol_profile_run () =
  let g = backpressure_graph () in
  let now = ref 0. in
  let clock () =
    now := !now +. 1e-6;
    !now
  in
  let o = Obs.Observer.create ~profile:true ~clock () in
  let r =
    Inrpp.Protocol.run ~cfg:bp_cfg ~horizon:30. ~obs:o g
      [ Inrpp.Protocol.flow_spec ~src:0 ~dst:2 150 ]
  in
  Alcotest.(check int) "flow completed" 1 r.Inrpp.Protocol.completed;
  let rows = Obs.Observer.profile_rows o in
  Alcotest.(check bool) "profiler produced rows" true (rows <> []);
  let total = List.fold_left (fun acc (_, n, _, _) -> acc + n) 0 rows in
  Alcotest.(check int) "every engine event attributed"
    r.Inrpp.Protocol.engine_events total;
  Alcotest.(check bool) "packet kind attributed" true
    (List.exists (fun (k, n, _, _) -> k = "packet" && n > 0) rows)

let () =
  Alcotest.run "span"
    [
      ( "codec",
        [
          Alcotest.test_case "lifecycle round trip" `Quick
            test_codec_lifecycle_round_trip;
          Alcotest.test_case "NaN time" `Quick test_codec_nan_time;
          Alcotest.test_case "long line" `Quick test_codec_long_line;
          Alcotest.test_case "csv rows" `Quick
            test_codec_csv_has_lifecycle_rows;
        ] );
      ( "span",
        [
          Alcotest.test_case "attribution" `Quick test_span_attribution;
          Alcotest.test_case "NaN timestamps" `Quick test_span_nan_timestamps;
          Alcotest.test_case "out-of-order insert" `Quick
            test_span_out_of_order_insert;
          Alcotest.test_case "report renders" `Quick test_span_report_renders;
          Alcotest.test_case "perfetto export" `Quick
            test_perfetto_export_shape;
        ] );
      ( "profile",
        [
          Alcotest.test_case "engine attribution" `Quick
            test_engine_profiler_attribution;
          Alcotest.test_case "json round trip" `Quick
            test_profile_json_round_trip;
        ] );
      ( "sampler",
        [
          Alcotest.test_case "self-observation" `Quick
            test_sampler_self_observation;
        ] );
      ( "recorder",
        [
          Alcotest.test_case "ring and dump" `Quick test_recorder_ring_and_dump;
          Alcotest.test_case "dump cap" `Quick test_recorder_dump_cap;
          Alcotest.test_case "invariant violation" `Quick
            test_recorder_on_invariant_violation;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "span run" `Quick test_protocol_span_run;
          Alcotest.test_case "tracing does not perturb" `Quick
            test_protocol_span_run_deterministic_vs_plain;
          Alcotest.test_case "profile run" `Quick test_protocol_profile_run;
        ] );
    ]
