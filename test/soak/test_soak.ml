(* RUN_SOAK=1 large-topology soak: hundreds of INRPP flows across the
   EBONE ISP-zoo graph with every runtime invariant checker attached,
   plus a cross-scale assertion that Obs.Sampler overhead stays
   sub-linear in engine event count.

     RUN_SOAK=1 dune runtest test/soak
     RUN_SOAK=1 SOAK_NDJSON=/tmp/soak.ndjson dune runtest test/soak
     RUN_SOAK=1 SOAK_DOMAINS=4 dune runtest test/soak

   With SOAK_NDJSON set, the large run's sampled series, metric
   snapshot and per-scale measurement outcomes are written there as
   NDJSON (the nightly CI job uploads it as an artifact).
   SOAK_DOMAINS=D (D >= 2) additionally runs one independent
   distinct-seed EBONE soak per domain — all checkers on, one
   Obs.Observer per run with its snapshot taken inside the owning
   domain — and merges the observable output with Obs.Snapshot at the
   join.  Without RUN_SOAK=1 the test prints a skip notice and
   exits 0. *)

let chunks_per_flow = 120

(* keep the request timeout far above any soak-scale queueing delay:
   spurious retransmissions would show up as duplicate pushes and turn
   the conservation equality into noise *)
let cfg =
  {
    Inrpp.Config.default with
    Inrpp.Config.anticipation = 512;
    request_timeout = 10.;
    (* small stores: hotspot custody fills them and forces the
       backpressure phase, so the soak covers all three phases *)
    cache_bits = 40. *. Inrpp.Config.default.Inrpp.Config.chunk_bits;
  }

let make_specs g ~nflows ~seed =
  let n = Topology.Graph.node_count g in
  let rng = Sim.Rng.create (Int64.of_int seed) in
  (* half the flows converge on a handful of hotspot destinations so
     the soak actually drives stores into custody and back pressure;
     the rest spread uniformly *)
  let hotspots = Array.init 4 (fun _ -> Sim.Rng.int rng n) in
  let specs = ref [] and made = ref 0 and attempts = ref 0 in
  while !made < nflows && !attempts < nflows * 100 do
    incr attempts;
    let s = Sim.Rng.int rng n in
    let d =
      if !made mod 2 = 0 then hotspots.(!made mod Array.length hotspots)
      else Sim.Rng.int rng n
    in
    if s <> d && Option.is_some (Topology.Dijkstra.shortest_path g s d)
    then begin
      let start = Sim.Rng.float rng 2. in
      specs :=
        Inrpp.Protocol.flow_spec ~start ~src:s ~dst:d chunks_per_flow
        :: !specs;
      incr made
    end
  done;
  if !made < nflows then
    failwith
      (Printf.sprintf "only %d of %d flows routable on the soak graph" !made
         nflows);
  List.rev !specs

type scale_result = {
  outcome : Harness.outcome;
  sampler_ticks : int;
  result : Inrpp.Protocol.result;
  check : Check.Invariant.t;
  obs : Obs.Observer.t;
}

let run_scale ~label ~nflows ~sinks =
  let g = Topology.Isp_zoo.graph Topology.Isp_zoo.Ebone in
  let specs = make_specs g ~nflows ~seed:97 in
  let chk = Check.Invariant.create () in
  let obs = Obs.Observer.create ~sinks () in
  let result = ref None in
  let outcome =
    Harness.measure label (fun () ->
        let r =
          Inrpp.Protocol.run ~cfg ~horizon:600. ~obs ~check:chk g specs
        in
        result := Some r;
        let received =
          Array.fold_left
            (fun acc (f : Inrpp.Protocol.flow_result) ->
              acc + f.Inrpp.Protocol.chunks_received)
            0 r.Inrpp.Protocol.flows
        in
        (r.Inrpp.Protocol.engine_events, received))
  in
  let r = Option.get !result in
  (* one sampler tick appends one point to every tracked series *)
  let sampler_ticks =
    List.fold_left
      (fun acc s -> max acc (Obs.Series.length s))
      0 (Obs.Observer.series obs)
  in
  if r.Inrpp.Protocol.completed <> nflows then
    failwith
      (Printf.sprintf "%s: %d of %d flows completed by the horizon" label
         r.Inrpp.Protocol.completed nflows);
  if not (Check.Invariant.ok chk) then
    failwith
      (Printf.sprintf "%s: invariant violations\n%s" label
         (Check.Invariant.report chk));
  Printf.printf
    "%-6s %4d flows  %9d events  %7.3fs wall  %6d ticks  sim %.2fs  \
     custody %d  bp %d/%d  drops %d\n%!"
    label nflows outcome.Harness.events outcome.Harness.wall_s sampler_ticks
    r.Inrpp.Protocol.sim_time r.Inrpp.Protocol.custody_stored
    r.Inrpp.Protocol.bp_engages r.Inrpp.Protocol.bp_releases
    r.Inrpp.Protocol.total_drops;
  { outcome; sampler_ticks; result = r; check = chk; obs }

(* the full sampled series set for an ISP-zoo soak runs to gigabytes
   of NDJSON (every interface times every phase times ~7k ticks), so
   the artifact keeps the per-node aggregates, each thinned to at most
   [max_points] points *)
let artifact_series = [ "custody_bits"; "bp_active_flows"; "detoured_total" ]
let max_points = 200

let write_ndjson path small large =
  let oc = open_out path in
  let buf = Buffer.create 65536 in
  let line j =
    Obs.Json.to_buffer buf j;
    Buffer.add_char buf '\n'
  in
  List.iter
    (fun s -> line (Harness.outcome_json s.outcome))
    [ small; large ];
  Obs.Export.snapshot_to_ndjson buf (Obs.Observer.snapshot large.obs);
  List.iter
    (fun s ->
      if List.mem (Obs.Series.name s) artifact_series then begin
        let len = Obs.Series.length s in
        let stride = max 1 (len / max_points) in
        let i = ref 0 in
        while !i < len do
          let time, v = Obs.Series.get s !i in
          line (Obs.Export.point_to_json s ~time v);
          i := !i + stride
        done
      end)
    (Obs.Observer.series large.obs);
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "soak NDJSON written to %s\n%!" path

(* one seeded fault schedule under every checker: link outages, a
   custody-wiping crash and a control burst against the same EBONE
   graph.  Fault attribution must keep conservation green, and every
   flow must still complete once the faults resolve. *)
let run_fault_soak () =
  let g = Topology.Isp_zoo.graph Topology.Isp_zoo.Ebone in
  let nflows = 120 in
  let specs = make_specs g ~nflows ~seed:97 in
  let faults =
    Fault.Schedule.random ~seed:2026L ~link_outages:3 ~crashes:1 ~bursts:1
      ~horizon:30. g
  in
  let chk = Check.Invariant.create () in
  let r = Inrpp.Protocol.run ~cfg ~horizon:600. ~check:chk ~faults g specs in
  if not (Check.Invariant.ok chk) then
    failwith
      (Printf.sprintf "fault soak: invariant violations\n%s"
         (Check.Invariant.report chk));
  if r.Inrpp.Protocol.completed <> nflows then
    failwith
      (Printf.sprintf "fault soak: %d of %d flows completed by the horizon"
         r.Inrpp.Protocol.completed nflows);
  Printf.printf
    "fault  %4d flows  %d failovers  %d custody chunks lost  recovery %s\n%!"
    nflows r.Inrpp.Protocol.failovers r.Inrpp.Protocol.chunks_lost_in_custody
    (match r.Inrpp.Protocol.recovery_time with
    | Some t -> Printf.sprintf "%.3fs" t
    | None -> "-")

(* workload-driven soak: an open-loop generated schedule (hot Zipf
   catalogue, Poisson sessions, one flash crowd) against EBONE with
   ICN caching on and every checker attached — the request mix the
   workload engine produces, not the hand-built hotspot pattern of
   [make_specs].  A hot catalogue over a modest object set guarantees
   repeat fetches, so the popularity region must actually serve
   hits. *)
let run_workload_soak () =
  let g = Topology.Isp_zoo.graph Topology.Isp_zoo.Ebone in
  let workload =
    {
      Workload.Gen.default with
      Workload.Gen.seed = 443L;
      horizon = 6.;
      max_requests = 150;
      objects = 32;
      alpha = 1.0;
      chunk_min = 4;
      chunk_max = 64;
      rate = 12.;
      bursts = [ Workload.Arrivals.burst ~at:2. ~duration:2. ~boost:3. ];
    }
  in
  let cfg = { cfg with Inrpp.Config.icn_caching = true } in
  let chk = Check.Invariant.create () in
  let r = Inrpp.Protocol.run ~cfg ~horizon:600. ~check:chk ~workload g [] in
  if not (Check.Invariant.ok chk) then
    failwith
      (Printf.sprintf "workload soak: invariant violations\n%s"
         (Check.Invariant.report chk));
  let nflows = Array.length r.Inrpp.Protocol.flows in
  if r.Inrpp.Protocol.completed <> nflows then
    failwith
      (Printf.sprintf "workload soak: %d of %d flows completed by the horizon"
         r.Inrpp.Protocol.completed nflows);
  if r.Inrpp.Protocol.cache_hits = 0 then
    failwith
      "workload soak: a hot catalogue produced no on-path cache hits";
  Printf.printf
    "wload  %4d flows  %d cache hits  custody %d  bp %d/%d  drops %d\n%!"
    nflows r.Inrpp.Protocol.cache_hits r.Inrpp.Protocol.custody_stored
    r.Inrpp.Protocol.bp_engages r.Inrpp.Protocol.bp_releases
    r.Inrpp.Protocol.total_drops

(* chaos soak: a flash-crowd workload composed (Fault.Schedule.merge)
   with deterministic bottleneck-ish outages AND random background
   faults, run with the full overload-control layer on and every
   checker attached.  The point is the composition: admission
   shedding, the circuit breaker and the collapse watchdog must not
   break conservation or custody accounting while faults fire mid
   crowd, and the run must still drain to completion. *)
let run_chaos_soak () =
  let g = Topology.Isp_zoo.graph Topology.Isp_zoo.Ebone in
  let workload =
    {
      Workload.Gen.default with
      Workload.Gen.seed = 577L;
      horizon = 6.;
      max_requests = 150;
      objects = 32;
      alpha = 1.0;
      chunk_min = 4;
      chunk_max = 64;
      rate = 12.;
      bursts = [ Workload.Arrivals.burst ~at:2. ~duration:2. ~boost:6. ];
    }
  in
  let faults =
    Fault.Schedule.merge
      (Fault.Schedule.random ~seed:31L ~link_outages:2 ~bursts:1 ~horizon:20.
         g)
      (Fault.Schedule.random ~seed:32L ~link_outages:1 ~crashes:1 ~horizon:25.
         g)
  in
  let overload =
    { Overload.Config.default with Overload.Config.retry_budget = 16 }
  in
  let chk = Check.Invariant.create () in
  let r =
    Inrpp.Protocol.run ~cfg ~horizon:600. ~check:chk ~workload ~faults
      ~overload g []
  in
  if not (Check.Invariant.ok chk) then
    failwith
      (Printf.sprintf "chaos soak: invariant violations\n%s"
         (Check.Invariant.report chk));
  let nflows = Array.length r.Inrpp.Protocol.flows in
  if r.Inrpp.Protocol.completed <> nflows then
    failwith
      (Printf.sprintf "chaos soak: %d of %d flows completed by the horizon"
         r.Inrpp.Protocol.completed nflows);
  Printf.printf
    "chaos  %4d flows  %d shed  %d failovers  %d collapse(s)  recovery %s  \
     drops %d\n%!"
    nflows r.Inrpp.Protocol.shed r.Inrpp.Protocol.failovers
    r.Inrpp.Protocol.collapse_episodes
    (match r.Inrpp.Protocol.collapse_recovery_time with
    | Some t -> Printf.sprintf "%.3fs" t
    | None -> "-")
    r.Inrpp.Protocol.total_drops

(* SOAK_DOMAINS multi-seed mode: one full-checker EBONE soak per
   domain, each on its own seed (disjoint from the scale runs' 97).
   Every job owns its engine, RNG, checkers and Observer; the snapshot
   is taken inside the owning domain (the Metric registry is per-run
   state) and only the immutable results cross back to the join, where
   they merge in job-index order. *)
let run_parallel_soak ~domains =
  let nflows = 120 in
  let jobs =
    Array.init domains (fun i () ->
        let seed = 211 + i in
        let g = Topology.Isp_zoo.graph Topology.Isp_zoo.Ebone in
        let specs = make_specs g ~nflows ~seed in
        let chk = Check.Invariant.create () in
        let obs = Obs.Observer.create ~sinks:[] () in
        let r =
          Inrpp.Protocol.run ~cfg ~horizon:600. ~obs ~check:chk g specs
        in
        let snap = Obs.Observer.snapshot obs in
        let series = Obs.Observer.series obs in
        Obs.Observer.close obs;
        (seed, r, chk, snap, series))
  in
  let runs = Parallel.Pool.run_jobs ~domains jobs in
  Array.iter
    (fun (seed, (r : Inrpp.Protocol.result), chk, _, _) ->
      if not (Check.Invariant.ok chk) then
        failwith
          (Printf.sprintf "parallel soak seed %d: invariant violations\n%s"
             seed (Check.Invariant.report chk));
      if r.Inrpp.Protocol.completed <> nflows then
        failwith
          (Printf.sprintf
             "parallel soak seed %d: %d of %d flows completed by the horizon"
             seed r.Inrpp.Protocol.completed nflows))
    runs;
  let per_run = Array.to_list (Array.map (fun (_, _, _, s, _) -> s) runs) in
  let merged = Obs.Snapshot.merge per_run in
  (* merge keeps instrument identity: no per-run snapshot can have
     more instruments than the union *)
  List.iter
    (fun snap ->
      if List.length snap > List.length merged then
        failwith "parallel soak: merged snapshot lost instruments")
    per_run;
  let merged_series =
    Obs.Snapshot.merge_series
      (Array.to_list
         (Array.map (fun (seed, _, _, _, ss) -> (string_of_int seed, ss)) runs))
  in
  let total_series =
    Array.fold_left (fun acc (_, _, _, _, ss) -> acc + List.length ss) 0 runs
  in
  if List.length merged_series <> total_series then
    failwith
      (Printf.sprintf "parallel soak: %d merged series, expected %d"
         (List.length merged_series) total_series);
  Printf.printf
    "par    %4d seeds  %d merged instruments  %d run-labelled series\n%!"
    domains (List.length merged) (List.length merged_series)

let soak () =
  let small = run_scale ~label:"small" ~nflows:120 ~sinks:[] in
  let large = run_scale ~label:"large" ~nflows:360 ~sinks:[] in
  run_fault_soak ();
  run_workload_soak ();
  run_chaos_soak ();
  (* a soak that never leaves push-data is not soaking anything *)
  if
    large.result.Inrpp.Protocol.custody_stored = 0
    || large.result.Inrpp.Protocol.bp_engages = 0
  then failwith "large run exercised neither custody nor back pressure";
  (* Sampler work is periodic — proportional to simulated time over
     the sampling interval, not to traffic.  Tripling the flow count
     multiplies the event count far faster than the run lengthens, so
     the tick growth must stay well under the event growth. *)
  let ratio a b = float_of_int a /. float_of_int b in
  let event_ratio =
    ratio large.outcome.Harness.events small.outcome.Harness.events
  in
  let tick_ratio = ratio large.sampler_ticks small.sampler_ticks in
  Printf.printf "event ratio %.2f, sampler tick ratio %.2f\n%!" event_ratio
    tick_ratio;
  if tick_ratio > 0.5 *. event_ratio then
    failwith
      (Printf.sprintf
         "sampler overhead not sub-linear: ticks grew %.2fx vs events %.2fx"
         tick_ratio event_ratio);
  (match Sys.getenv_opt "SOAK_DOMAINS" with
  | Some d ->
    (match int_of_string_opt d with
    | Some n when n >= 2 -> run_parallel_soak ~domains:n
    | Some _ -> ()
    | None ->
      failwith (Printf.sprintf "SOAK_DOMAINS wants an integer, got %s" d))
  | None -> ());
  (match Sys.getenv_opt "SOAK_NDJSON" with
  | Some path when path <> "" -> write_ndjson path small large
  | _ -> ());
  Obs.Observer.close small.obs;
  Obs.Observer.close large.obs;
  print_endline "soak passed"

let () =
  match Sys.getenv_opt "RUN_SOAK" with
  | Some "1" -> soak ()
  | _ -> print_endline "soak skipped (set RUN_SOAK=1 to run)"
