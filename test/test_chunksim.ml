(* Tests for the chunk-level network substrate: packets, queues,
   caches, interfaces, network assembly and tracing. *)

let check_close msg tolerance expected actual =
  Alcotest.(check (float tolerance)) msg expected actual

module P = Chunksim.Packet

(* ------------------------------------------------------------------ *)
(* Packet *)

let test_packet_request () =
  let p = P.request ~flow:3 ~nc:5 ~ack:4 ~ac:13 in
  Alcotest.(check int) "flow" 3 (P.flow p);
  Alcotest.(check bool) "not data" false (P.is_data p);
  check_close "size" 0. 400. p.P.size;
  Alcotest.check_raises "ac < nc" (Invalid_argument "Packet.request: ac < nc")
    (fun () -> ignore (P.request ~flow:0 ~nc:5 ~ack:0 ~ac:4))

let test_packet_data () =
  let p = P.data ~flow:1 ~idx:7 ~born:0.5 80_000. in
  Alcotest.(check bool) "is data" true (P.is_data p);
  check_close "size" 0. 80_000. p.P.size;
  (match p.P.header with
  | P.Data { anticipated; via_detour; detour_route; _ } ->
    Alcotest.(check bool) "defaults" false (anticipated || via_detour);
    Alcotest.(check (list int)) "no route" [] detour_route
  | _ -> Alcotest.fail "wrong header");
  Alcotest.check_raises "bad size" (Invalid_argument "Packet.data: chunk_bits <= 0")
    (fun () -> ignore (P.data ~flow:0 ~idx:0 ~born:0. 0.))

let test_packet_pp () =
  let str p = Format.asprintf "%a" P.pp p in
  Alcotest.(check string) "req" "req[f1 nc=2 ack=1 ac=5]"
    (str (P.request ~flow:1 ~nc:2 ~ack:1 ~ac:5));
  Alcotest.(check string) "bp" "bp[f2 engage]"
    (str (P.backpressure ~flow:2 ~engage:true))

(* ------------------------------------------------------------------ *)
(* Fifo *)

let test_fifo_order_and_bounds () =
  let q = Chunksim.Fifo.create ~capacity:1000. in
  let mk i = P.data ~flow:0 ~idx:i ~born:0. 400. in
  Alcotest.(check bool) "first fits" true (Chunksim.Fifo.push q (mk 0) = `Queued);
  Alcotest.(check bool) "second fits" true (Chunksim.Fifo.push q (mk 1) = `Queued);
  Alcotest.(check bool) "third dropped" true (Chunksim.Fifo.push q (mk 2) = `Dropped);
  Alcotest.(check int) "drop counter" 1 (Chunksim.Fifo.total_dropped q);
  check_close "occupancy" 0. 800. (Chunksim.Fifo.occupancy q);
  (match Chunksim.Fifo.pop q with
  | Some p -> (match p.P.header with
    | P.Data { idx; _ } -> Alcotest.(check int) "FIFO order" 0 idx
    | _ -> Alcotest.fail "wrong kind")
  | None -> Alcotest.fail "queue empty");
  check_close "occupancy after pop" 0. 400. (Chunksim.Fifo.occupancy q)

let test_fifo_empty () =
  let q = Chunksim.Fifo.create ~capacity:10. in
  Alcotest.(check bool) "empty" true (Chunksim.Fifo.is_empty q);
  Alcotest.(check bool) "pop none" true (Chunksim.Fifo.pop q = None);
  Alcotest.(check bool) "peek none" true (Chunksim.Fifo.peek q = None)

(* ------------------------------------------------------------------ *)
(* Rr_queue *)

let test_rr_round_robin () =
  let q = Chunksim.Rr_queue.create ~quantum:400. ~capacity:1e6 () in
  (* flow 0 bursts 4 packets, flow 1 has 2: service must interleave *)
  for i = 0 to 3 do
    ignore (Chunksim.Rr_queue.push q ~class_id:0 (P.data ~flow:0 ~idx:i ~born:0. 400.))
  done;
  for i = 0 to 1 do
    ignore (Chunksim.Rr_queue.push q ~class_id:1 (P.data ~flow:1 ~idx:i ~born:0. 400.))
  done;
  let order = ref [] in
  let rec drain () =
    match Chunksim.Rr_queue.pop q with
    | Some p ->
      order := P.flow p :: !order;
      drain ()
    | None -> ()
  in
  drain ();
  let order = List.rev !order in
  Alcotest.(check int) "all served" 6 (List.length order);
  (* the first four services alternate between the two classes *)
  (match order with
  | a :: b :: c :: d :: _ ->
    Alcotest.(check bool) "interleaved" true
      (a <> b && c <> d && a <> c || a <> b && b <> c)
  | _ -> Alcotest.fail "expected six packets");
  Alcotest.(check bool) "empty after drain" true (Chunksim.Rr_queue.is_empty q)

let test_rr_capacity_shared () =
  let q = Chunksim.Rr_queue.create ~quantum:400. ~capacity:1000. () in
  Alcotest.(check bool) "first fits" true
    (Chunksim.Rr_queue.push q ~class_id:0 (P.data ~flow:0 ~idx:0 ~born:0. 600.) = `Queued);
  Alcotest.(check bool) "second class overflows shared budget" true
    (Chunksim.Rr_queue.push q ~class_id:1 (P.data ~flow:1 ~idx:0 ~born:0. 600.) = `Dropped);
  Alcotest.(check int) "drop counted" 1 (Chunksim.Rr_queue.total_dropped q)

let test_rr_large_packet_accumulates_deficit () =
  (* a packet bigger than one quantum must still be served *)
  let q = Chunksim.Rr_queue.create ~quantum:100. ~capacity:1e6 () in
  ignore (Chunksim.Rr_queue.push q ~class_id:0 (P.data ~flow:0 ~idx:0 ~born:0. 950.));
  (match Chunksim.Rr_queue.pop q with
  | Some p -> Alcotest.(check bool) "served" true (P.is_data p)
  | None -> Alcotest.fail "starved");
  Alcotest.(check bool) "empty" true (Chunksim.Rr_queue.is_empty q)

let test_iface_drr_discipline () =
  let eng = Sim.Engine.create () in
  let g = Topology.Graph.of_edges ~capacity:1e6 ~delay:0. 2 [ (0, 1) ] in
  let l = Option.get (Topology.Graph.find_link g 0 1) in
  let order = ref [] in
  let iface =
    Chunksim.Iface.create ~discipline:(Chunksim.Iface.Drr 400.) eng l
      ~deliver:(fun p -> order := P.flow p :: !order)
  in
  (* flow 0 bursts first; the first packet seizes the transmitter, the
     rest must alternate with flow 1 *)
  for i = 0 to 2 do
    ignore (Chunksim.Iface.send iface (P.data ~flow:0 ~idx:i ~born:0. 400.))
  done;
  for i = 0 to 2 do
    ignore (Chunksim.Iface.send iface (P.data ~flow:1 ~idx:i ~born:0. 400.))
  done;
  Sim.Engine.run eng;
  let order = List.rev !order in
  Alcotest.(check int) "all delivered" 6 (List.length order);
  (* after the head-of-line packet, services alternate *)
  (match order with
  | _ :: b :: c :: d :: e :: _ ->
    Alcotest.(check bool) "alternation" true (b <> c && c <> d && d <> e)
  | _ -> Alcotest.fail "unexpected")

(* ------------------------------------------------------------------ *)
(* Cache *)

let cache () = Chunksim.Cache.create ~capacity:1000. ()

let test_cache_custody_fifo () =
  let c = cache () in
  Alcotest.(check bool) "store 1" true
    (Chunksim.Cache.put_custody c ~flow:1 ~idx:10 ~bits:100. = `Stored);
  Alcotest.(check bool) "store 2" true
    (Chunksim.Cache.put_custody c ~flow:1 ~idx:11 ~bits:100. = `Stored);
  Alcotest.(check int) "backlog" 2 (Chunksim.Cache.custody_backlog c ~flow:1);
  (match Chunksim.Cache.take_custody c ~flow:1 with
  | Some (idx, bits) ->
    Alcotest.(check int) "oldest first" 10 idx;
    check_close "bits" 0. 100. bits
  | None -> Alcotest.fail "custody empty");
  Alcotest.(check int) "backlog after take" 1
    (Chunksim.Cache.custody_backlog c ~flow:1)

let test_cache_custody_full () =
  let c = cache () in
  Alcotest.(check bool) "big store" true
    (Chunksim.Cache.put_custody c ~flow:0 ~idx:0 ~bits:900. = `Stored);
  Alcotest.(check bool) "overflow refused" true
    (Chunksim.Cache.put_custody c ~flow:0 ~idx:1 ~bits:200. = `Full);
  check_close "occupancy unchanged" 0. 900.
    (Chunksim.Cache.custody_occupancy c)

let test_cache_watermarks () =
  let c =
    Chunksim.Cache.create ~high_water:0.7 ~low_water:0.3 ~capacity:1000. ()
  in
  Alcotest.(check bool) "empty below low" true (Chunksim.Cache.below_low c);
  ignore (Chunksim.Cache.put_custody c ~flow:0 ~idx:0 ~bits:750.);
  Alcotest.(check bool) "above high" true (Chunksim.Cache.above_high c);
  Alcotest.(check bool) "not below low" false (Chunksim.Cache.below_low c);
  ignore (Chunksim.Cache.take_custody c ~flow:0);
  Alcotest.(check bool) "drained" true (Chunksim.Cache.below_low c)

let test_cache_lru () =
  let c = cache () in
  Chunksim.Cache.insert_popular c ~flow:0 ~idx:0 ~bits:400.;
  Chunksim.Cache.insert_popular c ~flow:0 ~idx:1 ~bits:400.;
  Alcotest.(check bool) "hit 0" true (Chunksim.Cache.lookup_popular c ~flow:0 ~idx:0);
  (* inserting a third 400-bit entry must evict the LRU, which is idx 1
     because idx 0 was refreshed by the hit *)
  Chunksim.Cache.insert_popular c ~flow:0 ~idx:2 ~bits:400.;
  Alcotest.(check bool) "0 survives" true
    (Chunksim.Cache.lookup_popular c ~flow:0 ~idx:0);
  Alcotest.(check bool) "1 evicted" false
    (Chunksim.Cache.lookup_popular c ~flow:0 ~idx:1);
  Alcotest.(check int) "hits" 2 (Chunksim.Cache.hits c);
  Alcotest.(check int) "misses" 1 (Chunksim.Cache.misses c)

let test_cache_custody_evicts_popular () =
  let c = cache () in
  Chunksim.Cache.insert_popular c ~flow:0 ~idx:0 ~bits:800.;
  Alcotest.(check bool) "custody displaces LRU" true
    (Chunksim.Cache.put_custody c ~flow:1 ~idx:0 ~bits:500. = `Stored);
  Alcotest.(check bool) "popular gone" false
    (Chunksim.Cache.lookup_popular c ~flow:0 ~idx:0)

(* Regression for the custody-vs-popularity audit (workload PR): a
   router holding custody for a hot object must keep every custody
   chunk while the same object's forwarded copies churn the LRU —
   [insert_popular]'s make-room only ever reclaims popularity bytes,
   and the two regions' accounting stays exact under the churn.  (The
   router keys custody by flow id and popularity by content id, so
   one hot object exercises both keyspaces against one byte budget.) *)
let test_cache_custody_survives_popularity_churn () =
  let c = cache () in
  List.iter
    (fun idx ->
      Alcotest.(check bool) "stored" true
        (Chunksim.Cache.put_custody c ~flow:7 ~idx ~bits:100. = `Stored))
    [ 0; 1; 2 ];
  (* 50 later chunks of the same object (content id 42), 5x the whole
     store: every insertion that needs room must evict LRU entries,
     never custody *)
  for idx = 0 to 49 do
    Chunksim.Cache.insert_popular c ~flow:42 ~idx ~bits:100.
  done;
  Alcotest.(check int) "custody backlog intact" 3
    (Chunksim.Cache.custody_backlog c ~flow:7);
  Alcotest.(check (float 1e-9)) "custody bytes intact" 300.
    (Chunksim.Cache.custody_occupancy c);
  Alcotest.(check bool) "popularity confined to the leftover budget" true
    (Chunksim.Cache.popular_occupancy c <= 700.);
  Alcotest.(check (float 1e-9)) "regions account for the whole store"
    (Chunksim.Cache.custody_occupancy c +. Chunksim.Cache.popular_occupancy c)
    (Chunksim.Cache.occupancy c);
  (match Chunksim.Cache.take_custody c ~flow:7 with
  | Some (0, bits) -> Alcotest.(check (float 1e-9)) "fifo head bits" 100. bits
  | Some (idx, _) -> Alcotest.failf "fifo order broken: got idx %d" idx
  | None -> Alcotest.fail "custody emptied by popularity churn");
  Alcotest.(check int) "backlog after take" 2
    (Chunksim.Cache.custody_backlog c ~flow:7)

let test_cache_holding_time () =
  (* the paper's §3.3 envelope: 10 GB behind 40 Gbps holds 2 s *)
  let c = Chunksim.Cache.create ~capacity:(Sim.Units.gigabytes 10.) () in
  check_close "2 seconds" 1e-9 2.
    (Chunksim.Cache.holding_time c ~rate:(Sim.Units.gbps 40.))

let test_cache_validation () =
  Alcotest.check_raises "capacity"
    (Invalid_argument "Cache.create: capacity <= 0") (fun () ->
      ignore (Chunksim.Cache.create ~capacity:0. ()));
  Alcotest.check_raises "watermarks"
    (Invalid_argument
       "Cache.create: watermarks must satisfy 0 <= low < high <= 1")
    (fun () ->
      ignore
        (Chunksim.Cache.create ~high_water:0.2 ~low_water:0.5 ~capacity:1. ()))

(* ------------------------------------------------------------------ *)
(* Iface + Net *)

let test_iface_serialisation () =
  let eng = Sim.Engine.create () in
  let g = Topology.Graph.of_edges ~capacity:1e6 ~delay:0.01 2 [ (0, 1) ] in
  let l = Option.get (Topology.Graph.find_link g 0 1) in
  let arrivals = ref [] in
  let iface =
    Chunksim.Iface.create eng l ~deliver:(fun p ->
        arrivals := (Sim.Engine.now eng, p) :: !arrivals)
  in
  (* two 10^5-bit packets at 10^6 bps: tx 0.1s each, +10ms delay *)
  ignore (Chunksim.Iface.send iface (P.data ~flow:0 ~idx:0 ~born:0. 1e5));
  ignore (Chunksim.Iface.send iface (P.data ~flow:0 ~idx:1 ~born:0. 1e5));
  Sim.Engine.run eng;
  match List.rev !arrivals with
  | [ (t0, _); (t1, _) ] ->
    check_close "first arrival" 1e-9 0.11 t0;
    check_close "second arrival" 1e-9 0.21 t1;
    check_close "tx bits" 0. 2e5 (Chunksim.Iface.tx_bits iface);
    Alcotest.(check int) "tx packets" 2 (Chunksim.Iface.tx_packets iface)
  | l -> Alcotest.failf "expected 2 arrivals, got %d" (List.length l)

let test_iface_speed_factor () =
  let eng = Sim.Engine.create () in
  let g = Topology.Graph.of_edges ~capacity:1e6 ~delay:0. 2 [ (0, 1) ] in
  let l = Option.get (Topology.Graph.find_link g 0 1) in
  let arrived_at = ref 0. in
  let iface =
    Chunksim.Iface.create ~speed_factor:0.5 eng l ~deliver:(fun _ ->
        arrived_at := Sim.Engine.now eng)
  in
  check_close "derated" 0. 5e5 (Chunksim.Iface.rate iface);
  ignore (Chunksim.Iface.send iface (P.data ~flow:0 ~idx:0 ~born:0. 1e5));
  Sim.Engine.run eng;
  check_close "slower tx" 1e-9 0.2 !arrived_at

let test_iface_utilisation () =
  let eng = Sim.Engine.create () in
  let g = Topology.Graph.of_edges ~capacity:1e6 ~delay:0. 2 [ (0, 1) ] in
  let l = Option.get (Topology.Graph.find_link g 0 1) in
  let iface = Chunksim.Iface.create eng l ~deliver:(fun _ -> ()) in
  (* 0.5 s of transmission, observed at t = 1 s *)
  ignore (Chunksim.Iface.send iface (P.data ~flow:0 ~idx:0 ~born:0. 5e5));
  ignore (Sim.Engine.schedule eng ~delay:1. (fun () -> ()));
  Sim.Engine.run eng;
  check_close "50% busy" 1e-9 0.5
    (Chunksim.Iface.utilisation iface ~now:(Sim.Engine.now eng))

let test_iface_wire_loss () =
  let eng = Sim.Engine.create () in
  let g = Topology.Graph.of_edges ~capacity:1e9 ~delay:0. 2 [ (0, 1) ] in
  let l = Option.get (Topology.Graph.find_link g 0 1) in
  let delivered = ref 0 in
  let iface =
    Chunksim.Iface.create ~loss:(0.5, Sim.Rng.create 42L) eng l
      ~deliver:(fun _ -> incr delivered)
  in
  for i = 0 to 199 do
    ignore (Chunksim.Iface.send iface (P.data ~flow:0 ~idx:i ~born:0. 1e3))
  done;
  Sim.Engine.run eng;
  let lost = Chunksim.Iface.wire_losses iface in
  Alcotest.(check int) "conservation" 200 (!delivered + lost);
  Alcotest.(check bool)
    (Printf.sprintf "about half lost (%d)" lost)
    true
    (lost > 60 && lost < 140)

(* the loss-free fast path costs exactly one engine event per
   transmitted packet (the overhaul's core invariant) *)
let test_iface_one_event_per_packet () =
  let eng = Sim.Engine.create () in
  let g = Topology.Graph.of_edges ~capacity:1e6 ~delay:0.002 2 [ (0, 1) ] in
  let l = Option.get (Topology.Graph.find_link g 0 1) in
  let delivered = ref 0 in
  let iface =
    Chunksim.Iface.create ~queue_bits:1e9 eng l ~deliver:(fun _ ->
        incr delivered)
  in
  let n = 50 in
  for i = 0 to n - 1 do
    ignore (Chunksim.Iface.send iface (P.data ~flow:0 ~idx:i ~born:0. 1e4))
  done;
  Sim.Engine.run eng;
  Alcotest.(check int) "all delivered" n !delivered;
  Alcotest.(check int) "one event per packet" n
    (Sim.Engine.events_handled eng)

(* per-packet allocation on the loss-free path is bounded: no
   per-packet closures, no tuples on pop (style of test_obs.ml) *)
let test_iface_alloc_budget () =
  match Sys.backend_type with
  | Sys.Bytecode | Sys.Other _ -> () (* minor-word counts differ *)
  | Sys.Native ->
    let eng = Sim.Engine.create () in
    let g = Topology.Graph.of_edges ~capacity:1e9 ~delay:0. 2 [ (0, 1) ] in
    let l = Option.get (Topology.Graph.find_link g 0 1) in
    let iface =
      Chunksim.Iface.create ~queue_bits:1e12 eng l ~deliver:(fun _ -> ())
    in
    let p = P.data ~flow:0 ~idx:0 ~born:0. 1e3 in
    (* warm up: grow the heap and FIFO rings past steady-state size *)
    for _ = 1 to 1_000 do
      ignore (Chunksim.Iface.send iface p)
    done;
    Sim.Engine.run eng;
    let rounds = 10_000 in
    let before = Gc.minor_words () in
    for _ = 1 to rounds do
      ignore (Chunksim.Iface.send iface p)
    done;
    Sim.Engine.run eng;
    let per_packet = (Gc.minor_words () -. before) /. float_of_int rounds in
    Alcotest.(check bool)
      (Printf.sprintf "allocation per packet (%.1f minor words)" per_packet)
      true (per_packet <= 64.)

(* The fast path must be observationally identical to the legacy
   two-event transmitter, which [~loss] still uses — probability 0
   keeps the dice harmless while forcing that path.  Same bursts,
   mid-run arrivals and overflows through both; delivery times must
   match to the last bit. *)
let iface_delivery_trace ~discipline ~legacy () =
  let eng = Sim.Engine.create () in
  let g = Topology.Graph.of_edges ~capacity:1e6 ~delay:0.003 2 [ (0, 1) ] in
  let l = Option.get (Topology.Graph.find_link g 0 1) in
  let idx p = match p.P.header with P.Data { idx; _ } -> idx | _ -> -1 in
  let trace = ref [] in
  let loss = if legacy then Some (0., Sim.Rng.create 1L) else None in
  let iface =
    Chunksim.Iface.create ?loss ~queue_bits:6e4 ~discipline eng l
      ~deliver:(fun p ->
        trace :=
          Printf.sprintf "%.17g f%d i%d" (Sim.Engine.now eng) (P.flow p)
            (idx p)
          :: !trace)
  in
  let send flow idx bits =
    ignore (Chunksim.Iface.send iface (P.data ~flow ~idx ~born:0. bits))
  in
  (* initial bursts, varied sizes, enough to overflow the 6e4-bit queue *)
  for i = 0 to 9 do
    send 0 i (float_of_int (4_000 + (i * 700)));
    send 1 i 8_000.
  done;
  (* mid-run arrivals: while the transmitter is busy and after it idles *)
  for i = 10 to 14 do
    let d = 0.05 *. float_of_int i in
    ignore (Sim.Engine.schedule eng ~delay:d (fun () -> send (i mod 2) i 5_000.))
  done;
  ignore (Sim.Engine.schedule eng ~delay:2. (fun () -> send 0 99 1_000.));
  Sim.Engine.run eng;
  (List.rev !trace, Chunksim.Iface.drops iface, Chunksim.Iface.tx_bits iface)

let check_fast_legacy_equiv discipline =
  let fast_trace, fast_drops, fast_bits =
    iface_delivery_trace ~discipline ~legacy:false ()
  in
  let legacy_trace, legacy_drops, legacy_bits =
    iface_delivery_trace ~discipline ~legacy:true ()
  in
  Alcotest.(check (list string)) "delivery order and times" legacy_trace
    fast_trace;
  Alcotest.(check int) "drops" legacy_drops fast_drops;
  Alcotest.(check (float 0.)) "tx bits" legacy_bits fast_bits;
  Alcotest.(check bool) "queue overflowed in scenario" true (fast_drops > 0)

let test_iface_fast_legacy_equiv_fifo () =
  check_fast_legacy_equiv Chunksim.Iface.Fifo_discipline

let test_iface_fast_legacy_equiv_drr () =
  check_fast_legacy_equiv (Chunksim.Iface.Drr 4_000.)

let test_net_delivery_and_handlers () =
  let eng = Sim.Engine.create () in
  let g = Topology.Graph.of_edges ~capacity:1e6 ~delay:1e-3 3 [ (0, 1); (1, 2) ] in
  let net = Chunksim.Net.create eng g in
  let seen_at_1 = ref 0 in
  (* node 1 relays data to node 2 *)
  Chunksim.Net.set_handler net 1 (fun ~from:_ p ->
      incr seen_at_1;
      let l = Option.get (Topology.Graph.find_link g 1 2) in
      ignore (Chunksim.Net.send net ~via:l p));
  let done_at_2 = ref false in
  Chunksim.Net.set_handler net 2 (fun ~from p ->
      (match from with
      | Some l -> Alcotest.(check int) "arrived over 1->2" 1 l.Topology.Link.src
      | None -> Alcotest.fail "expected a link");
      Alcotest.(check bool) "payload intact" true (P.is_data p);
      done_at_2 := true);
  let l01 = Option.get (Topology.Graph.find_link g 0 1) in
  ignore (Chunksim.Net.send net ~via:l01 (P.data ~flow:0 ~idx:0 ~born:0. 1e4));
  Sim.Engine.run eng;
  Alcotest.(check int) "relay saw it" 1 !seen_at_1;
  Alcotest.(check bool) "delivered end to end" true !done_at_2

let test_net_inject () =
  let eng = Sim.Engine.create () in
  let g = Topology.Graph.of_edges 2 [ (0, 1) ] in
  let net = Chunksim.Net.create eng g in
  let got = ref false in
  Chunksim.Net.set_handler net 0 (fun ~from p ->
      Alcotest.(check bool) "local" true (from = None);
      ignore p;
      got := true);
  Chunksim.Net.inject net ~at:0 (P.backpressure ~flow:0 ~engage:true);
  Alcotest.(check bool) "handler ran synchronously" true !got

(* ------------------------------------------------------------------ *)
(* Trace *)

let test_trace_basics () =
  let tr = Chunksim.Trace.create () in
  Chunksim.Trace.record tr ~time:1. (Chunksim.Trace.Cached { node = 1; flow = 0; idx = 5 });
  Chunksim.Trace.record tr ~time:2.
    (Chunksim.Trace.Bp_signal { node = 1; flow = 0; engage = true });
  Alcotest.(check int) "count cached" 1
    (Chunksim.Trace.count tr (function
      | Chunksim.Trace.Cached _ -> true
      | _ -> false));
  (match Chunksim.Trace.events tr with
  | [ (t1, _); (t2, _) ] ->
    check_close "oldest first" 0. 1. t1;
    check_close "then newer" 0. 2. t2
  | _ -> Alcotest.fail "expected two events");
  Chunksim.Trace.clear tr;
  Alcotest.(check int) "cleared" 0 (List.length (Chunksim.Trace.events tr))

let test_trace_limit () =
  let tr = Chunksim.Trace.create ~limit:10 () in
  for i = 0 to 99 do
    Chunksim.Trace.record tr ~time:(float_of_int i)
      (Chunksim.Trace.Flow_complete { flow = i; fct = 0. })
  done;
  let evs = Chunksim.Trace.events tr in
  Alcotest.(check bool) "bounded" true (List.length evs <= 20);
  (* newest events survive *)
  let has_99 =
    List.exists
      (fun (_, e) ->
        match e with
        | Chunksim.Trace.Flow_complete { flow = 99; _ } -> true
        | _ -> false)
      evs
  in
  Alcotest.(check bool) "newest kept" true has_99

(* Regression for the amortised trim: the ring trims only when the
   size exceeds [2 * limit], and what survives must be exactly the
   [limit] newest events, still in chronological order, with [count]
   and [find_all] agreeing with [events]. *)
let test_trace_trim_regression () =
  let limit = 10 in
  let tr = Chunksim.Trace.create ~limit () in
  let n = (2 * limit) + 1 in
  for i = 0 to n - 1 do
    Chunksim.Trace.record tr ~time:(float_of_int i)
      (Chunksim.Trace.Flow_complete { flow = i; fct = 0. })
  done;
  let evs = Chunksim.Trace.events tr in
  Alcotest.(check int) "exactly limit survive" limit (List.length evs);
  let flows =
    List.map
      (fun (_, e) ->
        match e with
        | Chunksim.Trace.Flow_complete { flow; _ } -> flow
        | _ -> Alcotest.fail "unexpected event kind")
      evs
  in
  let expected = List.init limit (fun k -> n - limit + k) in
  Alcotest.(check (list int)) "newest, chronological" expected flows;
  List.iter2
    (fun (t, _) flow -> check_close "timestamp matches flow" 0. (float_of_int flow) t)
    evs flows;
  Alcotest.(check int) "count agrees" limit
    (Chunksim.Trace.count tr (fun _ -> true));
  Alcotest.(check int) "find_all agrees" limit
    (List.length (Chunksim.Trace.find_all tr (fun _ -> true)));
  (* one more record after a trim must not trim again prematurely *)
  Chunksim.Trace.record tr ~time:(float_of_int n)
    (Chunksim.Trace.Flow_complete { flow = n; fct = 0. });
  Alcotest.(check int) "grows past limit between trims" (limit + 1)
    (List.length (Chunksim.Trace.events tr))

let test_trace_taps () =
  let tr = Chunksim.Trace.create ~limit:5 () in
  let seen = ref [] in
  Chunksim.Trace.on_record tr (fun time e -> seen := (time, e) :: !seen);
  let n = 20 in
  for i = 0 to n - 1 do
    Chunksim.Trace.record tr ~time:(float_of_int i)
      (Chunksim.Trace.Cached { node = 0; flow = 0; idx = i })
  done;
  (* taps see every event, unbounded by the ring's limit *)
  Alcotest.(check int) "tap saw all" n (List.length !seen);
  Alcotest.(check bool) "ring stayed bounded" true
    (List.length (Chunksim.Trace.events tr) <= 2 * 5)

(* ------------------------------------------------------------------ *)
(* Properties *)

let prop_fifo_conserves_bits =
  QCheck.Test.make ~name:"fifo occupancy equals queued minus popped" ~count:100
    QCheck.(list (int_range 1 1000))
    (fun sizes ->
      let q = Chunksim.Fifo.create ~capacity:1e9 in
      List.iteri
        (fun i s ->
          ignore (Chunksim.Fifo.push q (P.data ~flow:0 ~idx:i ~born:0. (float_of_int s))))
        sizes;
      let total = List.fold_left ( + ) 0 sizes in
      let popped = ref 0. in
      let rec pop_half n =
        if n > 0 then begin
          match Chunksim.Fifo.pop q with
          | Some p ->
            popped := !popped +. p.P.size;
            pop_half (n - 1)
          | None -> ()
        end
      in
      pop_half (List.length sizes / 2);
      Float.abs (Chunksim.Fifo.occupancy q +. !popped -. float_of_int total)
      < 1e-6)

let prop_cache_occupancy_consistent =
  QCheck.Test.make ~name:"cache occupancy = custody + popular" ~count:100
    QCheck.(list (pair (int_range 0 5) (int_range 1 100)))
    (fun ops ->
      let c = Chunksim.Cache.create ~capacity:5000. () in
      List.iteri
        (fun i (flow, bits) ->
          let bits = float_of_int bits in
          if i mod 2 = 0 then
            ignore (Chunksim.Cache.put_custody c ~flow ~idx:i ~bits)
          else Chunksim.Cache.insert_popular c ~flow ~idx:i ~bits)
        ops;
      Float.abs
        (Chunksim.Cache.occupancy c
        -. (Chunksim.Cache.custody_occupancy c
           +. Chunksim.Cache.popular_occupancy c))
      < 1e-9
      && Chunksim.Cache.occupancy c <= Chunksim.Cache.capacity c +. 1e-9)

let prop_rr_work_conserving =
  QCheck.Test.make ~name:"rr queue conserves every queued packet" ~count:100
    QCheck.(list (pair (int_range 0 4) (int_range 1 500)))
    (fun ops ->
      let q = Chunksim.Rr_queue.create ~quantum:200. ~capacity:1e9 () in
      let queued = ref 0 in
      List.iteri
        (fun i (cls, size) ->
          match
            Chunksim.Rr_queue.push q ~class_id:cls
              (P.data ~flow:cls ~idx:i ~born:0. (float_of_int size))
          with
          | `Queued -> incr queued
          | `Dropped -> ())
        ops;
      let popped = ref 0 in
      let rec drain () =
        match Chunksim.Rr_queue.pop q with
        | Some _ ->
          incr popped;
          drain ()
        | None -> ()
      in
      drain ();
      !popped = !queued && Chunksim.Rr_queue.is_empty q)

let prop_rr_two_class_fairness =
  QCheck.Test.make ~name:"rr queue serves equal backlogs near-equally"
    ~count:50
    QCheck.(int_range 2 40)
    (fun n ->
      let q = Chunksim.Rr_queue.create ~quantum:400. ~capacity:1e9 () in
      for i = 0 to n - 1 do
        ignore (Chunksim.Rr_queue.push q ~class_id:0 (P.data ~flow:0 ~idx:i ~born:0. 400.));
        ignore (Chunksim.Rr_queue.push q ~class_id:1 (P.data ~flow:1 ~idx:i ~born:0. 400.))
      done;
      (* after any even prefix of services, counts differ by at most 1 *)
      let c0 = ref 0 and c1 = ref 0 in
      let ok = ref true in
      for _ = 1 to 2 * n do
        (match Chunksim.Rr_queue.pop q with
        | Some p -> if P.flow p = 0 then incr c0 else incr c1
        | None -> ok := false);
        if abs (!c0 - !c1) > 1 then ok := false
      done;
      !ok)

let prop_custody_per_flow_fifo =
  QCheck.Test.make ~name:"custody is FIFO within each flow" ~count:100
    QCheck.(list (int_range 0 3))
    (fun flows ->
      let c = Chunksim.Cache.create ~capacity:1e9 () in
      let counters = Array.make 4 0 in
      List.iter
        (fun f ->
          ignore
            (Chunksim.Cache.put_custody c ~flow:f ~idx:counters.(f) ~bits:10.);
          counters.(f) <- counters.(f) + 1)
        flows;
      let expect = Array.make 4 0 in
      let ok = ref true in
      for f = 0 to 3 do
        let rec drain () =
          match Chunksim.Cache.take_custody c ~flow:f with
          | Some (idx, _) ->
            if idx <> expect.(f) then ok := false;
            expect.(f) <- expect.(f) + 1;
            drain ()
          | None -> ()
        in
        drain ()
      done;
      !ok && Array.for_all2 ( = ) expect counters)

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "chunksim"
    [
      ( "packet",
        [
          Alcotest.test_case "request" `Quick test_packet_request;
          Alcotest.test_case "data" `Quick test_packet_data;
          Alcotest.test_case "pp" `Quick test_packet_pp;
        ] );
      ( "fifo",
        [
          Alcotest.test_case "order and bounds" `Quick test_fifo_order_and_bounds;
          Alcotest.test_case "empty" `Quick test_fifo_empty;
        ] );
      ( "cache",
        [
          Alcotest.test_case "custody fifo" `Quick test_cache_custody_fifo;
          Alcotest.test_case "custody full" `Quick test_cache_custody_full;
          Alcotest.test_case "watermarks" `Quick test_cache_watermarks;
          Alcotest.test_case "lru" `Quick test_cache_lru;
          Alcotest.test_case "custody evicts popular" `Quick test_cache_custody_evicts_popular;
          Alcotest.test_case "custody survives popularity churn" `Quick
            test_cache_custody_survives_popularity_churn;
          Alcotest.test_case "paper holding time" `Quick test_cache_holding_time;
          Alcotest.test_case "validation" `Quick test_cache_validation;
        ] );
      ( "iface",
        [
          Alcotest.test_case "serialisation" `Quick test_iface_serialisation;
          Alcotest.test_case "speed factor" `Quick test_iface_speed_factor;
          Alcotest.test_case "drr discipline" `Quick test_iface_drr_discipline;
          Alcotest.test_case "utilisation" `Quick test_iface_utilisation;
          Alcotest.test_case "wire loss" `Quick test_iface_wire_loss;
          Alcotest.test_case "one event per packet" `Quick
            test_iface_one_event_per_packet;
          Alcotest.test_case "allocation budget" `Quick test_iface_alloc_budget;
          Alcotest.test_case "fast = legacy (FIFO)" `Quick
            test_iface_fast_legacy_equiv_fifo;
          Alcotest.test_case "fast = legacy (DRR)" `Quick
            test_iface_fast_legacy_equiv_drr;
        ] );
      ( "rr_queue",
        [
          Alcotest.test_case "round robin" `Quick test_rr_round_robin;
          Alcotest.test_case "shared capacity" `Quick test_rr_capacity_shared;
          Alcotest.test_case "large packet" `Quick test_rr_large_packet_accumulates_deficit;
        ] );
      ( "net",
        [
          Alcotest.test_case "delivery and handlers" `Quick test_net_delivery_and_handlers;
          Alcotest.test_case "inject" `Quick test_net_inject;
        ] );
      ( "trace",
        [
          Alcotest.test_case "basics" `Quick test_trace_basics;
          Alcotest.test_case "limit" `Quick test_trace_limit;
          Alcotest.test_case "trim regression" `Quick test_trace_trim_regression;
          Alcotest.test_case "taps" `Quick test_trace_taps;
        ] );
      ( "properties",
        qc
          [
            prop_fifo_conserves_bits;
            prop_cache_occupancy_consistent;
            prop_rr_work_conserving;
            prop_rr_two_class_fairness;
            prop_custody_per_flow_fifo;
          ] );
    ]
