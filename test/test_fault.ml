(* Tests for the fault stack: schedules, interface outage mechanics,
   the link-state view, protocol-level recovery (detour failover,
   custody evacuation, crash wipes, bounded request backoff), and the
   seeded fault/loss sweeps the CI matrix runs.

   Layout note: the "fault-matrix" suite at the bottom is the tier-1
   CI smoke job — three named schedules crossed with two topologies at
   small horizons. *)

module P = Chunksim.Packet
module S = Fault.Schedule

let check_close msg tolerance expected actual =
  Alcotest.(check (float tolerance)) msg expected actual

(* ------------------------------------------------------------------ *)
(* Schedule *)

let ev at event = { S.at; event }

let test_schedule_empty_and_sort () =
  Alcotest.(check bool) "empty" true (S.is_empty S.empty);
  Alcotest.(check int) "empty length" 0 (S.length S.empty);
  let sched =
    S.of_list
      [
        ev 2.0 (S.Link_up { link = 0 });
        ev 0.5 (S.Link_down { link = 0; policy = `Hold_queued });
        ev 1.0 (S.Control_loss_burst { duration = 0.1; loss = 0.5 });
      ]
  in
  Alcotest.(check bool) "non-empty" false (S.is_empty sched);
  Alcotest.(check (list (float 0.)))
    "time-sorted" [ 0.5; 1.0; 2.0 ]
    (List.map (fun t -> t.S.at) (S.events sched));
  Alcotest.check_raises "negative time"
    (Invalid_argument "Schedule.of_list: negative event time")
    (fun () -> ignore (S.of_list [ ev (-1.) (S.Link_up { link = 0 }) ]))

let test_schedule_random_deterministic () =
  let g = Topology.Builders.dumbbell 2 in
  let make seed =
    S.random ~seed ~link_outages:3 ~crashes:1 ~bursts:1 ~horizon:20. g
  in
  let a = make 42L and b = make 42L and c = make 43L in
  Alcotest.(check bool) "same seed, same events" true
    (S.events a = S.events b);
  Alcotest.(check int64) "seed recorded" 42L (S.seed a);
  Alcotest.(check bool) "different seed, different schedule" true
    (S.events a <> S.events c);
  (* every outage resolves strictly before the horizon *)
  List.iter
    (fun t -> Alcotest.(check bool) "within horizon" true (t.S.at < 20.))
    (S.events a)

(* ------------------------------------------------------------------ *)
(* Link_state *)

let test_link_state () =
  let g = Topology.Builders.line 3 in
  let ls = Topology.Link_state.create g in
  Alcotest.(check bool) "all up at start" true (Topology.Link_state.all_up ls);
  let flips = ref [] in
  Topology.Link_state.on_change ls (fun id up -> flips := (id, up) :: !flips);
  Topology.Link_state.set ls 1 ~up:false;
  Topology.Link_state.set ls 1 ~up:false;
  (* idempotent: no second flip *)
  Alcotest.(check int) "one transition" 1 (Topology.Link_state.transitions ls);
  Alcotest.(check bool) "down" false (Topology.Link_state.is_up ls 1);
  Alcotest.(check (list int)) "down list" [ 1 ]
    (Topology.Link_state.down_links ls);
  Topology.Link_state.set ls 1 ~up:true;
  Alcotest.(check (list (pair int bool)))
    "subscriber saw both flips"
    [ (1, false); (1, true) ]
    (List.rev !flips);
  Alcotest.check_raises "range check"
    (Invalid_argument "Link_state: link id 99 out of range") (fun () ->
      ignore (Topology.Link_state.is_up ls 99))

(* ------------------------------------------------------------------ *)
(* Iface outage mechanics *)

let outage_iface () =
  let eng = Sim.Engine.create () in
  let g = Topology.Graph.of_edges ~capacity:1e6 ~delay:1e-3 2 [ (0, 1) ] in
  let l = Option.get (Topology.Graph.find_link g 0 1) in
  let delivered = ref 0 in
  let iface =
    Chunksim.Iface.create eng l ~deliver:(fun _ -> incr delivered)
  in
  (eng, iface, delivered)

(* 3 × 80 kbit packets at 1 Mbps: tx 0.08 s each.  Down at 0.01 s the
   first packet is on the wire (destroyed); the other two are queued. *)
let send3 eng iface =
  Sim.Engine.schedule_fixed eng ~delay:0. (fun () ->
      for i = 0 to 2 do
        ignore (Chunksim.Iface.send iface (P.data ~flow:0 ~idx:i ~born:0. 8e4))
      done)

let test_iface_down_drop_queued () =
  let eng, iface, delivered = outage_iface () in
  send3 eng iface;
  let refused = ref `Queued in
  Sim.Engine.schedule_fixed eng ~delay:0.01 (fun () ->
      Chunksim.Iface.set_down iface;
      refused := Chunksim.Iface.send iface (P.data ~flow:0 ~idx:9 ~born:0. 8e4));
  Sim.Engine.run eng;
  Alcotest.(check bool) "down refuses admission" true (!refused = `Dropped);
  Alcotest.(check bool) "still down" false (Chunksim.Iface.is_up iface);
  Alcotest.(check int) "nothing delivered" 0 !delivered;
  (* wire kill + two flushed from the queue *)
  Alcotest.(check int) "fault drops" 3 (Chunksim.Iface.fault_drops iface)

let test_iface_down_hold_queued_then_up () =
  let eng, iface, delivered = outage_iface () in
  let tapped = ref 0 in
  Chunksim.Iface.set_fault_tap iface (fun _ -> incr tapped);
  send3 eng iface;
  Sim.Engine.schedule_fixed eng ~delay:0.01 (fun () ->
      Chunksim.Iface.set_down ~policy:`Hold_queued iface);
  Sim.Engine.schedule_fixed eng ~delay:0.5 (fun () ->
      Chunksim.Iface.set_up iface;
      Chunksim.Iface.set_up iface (* idempotent *));
  Sim.Engine.run eng;
  Alcotest.(check int) "held packets delivered after set_up" 2 !delivered;
  Alcotest.(check int) "only the wire packet died" 1
    (Chunksim.Iface.fault_drops iface);
  Alcotest.(check int) "fault tap saw it" 1 !tapped;
  (* resumed transmission starts at 0.5: two tx + prop *)
  check_close "resume timing" 1e-9 0.661 (Sim.Engine.now eng)

(* ------------------------------------------------------------------ *)
(* Protocol-level recovery *)

let flow = Inrpp.Protocol.flow_spec

(* The probe's diamond: primary 1->3 bottleneck with an equal-rate
   detour 1->2->3. *)
let diamond () =
  let b = Topology.Graph.Builder.create () in
  let n0 = Topology.Graph.Builder.add_node b "sender" in
  let n1 = Topology.Graph.Builder.add_node b "fork" in
  let n2 = Topology.Graph.Builder.add_node b "via" in
  let n3 = Topology.Graph.Builder.add_node b "receiver" in
  Topology.Graph.Builder.add_edge b ~capacity:10e6 ~delay:2e-3 n0 n1;
  Topology.Graph.Builder.add_edge b ~capacity:10e6 ~delay:2e-3 n1 n3;
  Topology.Graph.Builder.add_edge b ~capacity:10e6 ~delay:3e-3 n1 n2;
  Topology.Graph.Builder.add_edge b ~capacity:10e6 ~delay:3e-3 n2 n3;
  Topology.Graph.Builder.build b

let link_id g a z = (Option.get (Topology.Graph.find_link g a z)).Topology.Link.id

let both_directions g a z policy at ~up =
  [
    ev at (S.Link_down { link = link_id g a z; policy });
    ev at (S.Link_down { link = link_id g z a; policy });
    ev up (S.Link_up { link = link_id g a z });
    ev up (S.Link_up { link = link_id g z a });
  ]

(* No-fault baseline for the graph, reused by several cases. *)
let run_clean ?cfg g specs = Inrpp.Protocol.run ?cfg ~horizon:60. g specs

let test_empty_schedule_bit_identity () =
  let g = Topology.Builders.fig3 () in
  let specs = [ flow ~src:0 ~dst:3 120 ] in
  let a = run_clean g specs in
  let b = Inrpp.Protocol.run ~horizon:60. ~faults:S.empty g specs in
  Alcotest.(check int) "engine events" a.Inrpp.Protocol.engine_events
    b.Inrpp.Protocol.engine_events;
  Alcotest.(check (option (float 0.)))
    "fct" a.Inrpp.Protocol.flows.(0).Inrpp.Protocol.fct
    b.Inrpp.Protocol.flows.(0).Inrpp.Protocol.fct;
  Alcotest.(check int) "drops" a.Inrpp.Protocol.total_drops
    b.Inrpp.Protocol.total_drops;
  Alcotest.(check int) "forwarded" a.Inrpp.Protocol.forwarded_data
    b.Inrpp.Protocol.forwarded_data;
  Alcotest.(check int) "requests" a.Inrpp.Protocol.flows.(0).requests_sent
    b.Inrpp.Protocol.flows.(0).requests_sent;
  Alcotest.(check int) "no failovers" 0 b.Inrpp.Protocol.failovers;
  Alcotest.(check bool) "no recovery time" true
    (b.Inrpp.Protocol.recovery_time = None)

let test_failover_onto_detour () =
  let g = diamond () in
  let specs = [ flow ~src:0 ~dst:3 400 ] in
  let clean = run_clean g specs in
  let clean_fct = Option.get clean.Inrpp.Protocol.flows.(0).fct in
  (* primary 1->3 goes down mid-transfer and never comes back *)
  let faults =
    S.of_list
      [
        ev 0.1 (S.Link_down { link = link_id g 1 3; policy = `Drop_queued });
        ev 0.1 (S.Link_down { link = link_id g 3 1; policy = `Drop_queued });
      ]
  in
  let check = Check.Invariant.create () in
  let r = Inrpp.Protocol.run ~horizon:60. ~faults ~check g specs in
  Alcotest.(check int) "completes over the detour" 1 r.Inrpp.Protocol.completed;
  Alcotest.(check bool)
    (Printf.sprintf "failovers > 0 (%d)" r.Inrpp.Protocol.failovers)
    true
    (r.Inrpp.Protocol.failovers > 0);
  Alcotest.(check bool) "recovery time measured" true
    (r.Inrpp.Protocol.recovery_time <> None);
  Alcotest.(check bool)
    (Printf.sprintf "fct sane (%.3f vs clean %.3f)"
       (Option.get r.Inrpp.Protocol.flows.(0).fct)
       clean_fct)
    true
    (Option.get r.Inrpp.Protocol.flows.(0).fct >= clean_fct *. 0.9);
  if not (Check.Invariant.ok check) then
    Alcotest.fail (Check.Invariant.report check)

let test_outage_backpressure_and_recovery () =
  (* line graph: no detour exists, so a mid-path outage must engage
     back-pressure / custody and the flow finishes only after the link
     heals *)
  let g = Topology.Builders.line 3 ~capacity:10e6 ~delay:2e-3 in
  let specs = [ flow ~src:0 ~dst:2 200 ] in
  let faults = S.of_list (both_directions g 1 2 `Drop_queued 0.2 ~up:3.0) in
  let check = Check.Invariant.create () in
  let r = Inrpp.Protocol.run ~horizon:60. ~faults ~check g specs in
  Alcotest.(check int) "completes after heal" 1 r.Inrpp.Protocol.completed;
  let fct = Option.get r.Inrpp.Protocol.flows.(0).fct in
  Alcotest.(check bool)
    (Printf.sprintf "fct after the outage window (%.3f)" fct)
    true (fct > 3.0);
  (match r.Inrpp.Protocol.recovery_time with
  | None -> Alcotest.fail "expected a recovery-time measurement"
  | Some tr ->
    Alcotest.(check bool)
      (Printf.sprintf "recovery within the outage+heal window (%.3f)" tr)
      true
      (tr > 0. && tr < 10.));
  if not (Check.Invariant.ok check) then
    Alcotest.fail (Check.Invariant.report check)

let test_crash_wipes_custody () =
  (* 5x bandwidth drop with a small store: the bottleneck router holds
     custody when it crashes, so Wipe_custody must surface as
     chunks_lost_in_custody and be attributed (not reported as a
     conservation leak) *)
  let b = Topology.Graph.Builder.create () in
  let n0 = Topology.Graph.Builder.add_node b "sender" in
  let n1 = Topology.Graph.Builder.add_node b "bottleneck" in
  let n2 = Topology.Graph.Builder.add_node b "receiver" in
  Topology.Graph.Builder.add_edge b ~capacity:10e6 ~delay:2e-3 n0 n1;
  Topology.Graph.Builder.add_edge b ~capacity:2e6 ~delay:2e-3 n1 n2;
  let g = Topology.Graph.Builder.build b in
  let cfg =
    {
      Inrpp.Config.default with
      Inrpp.Config.anticipation = 512;
      cache_bits = 30. *. Inrpp.Config.default.Inrpp.Config.chunk_bits;
      timeout_backoff = 2.;
    }
  in
  let faults =
    S.of_list
      [
        ev 0.5 (S.Node_crash { node = n1; policy = S.Wipe_custody });
        ev 2.0 (S.Node_restart { node = n1 });
      ]
  in
  let check = Check.Invariant.create () in
  let r =
    Inrpp.Protocol.run ~cfg ~horizon:120. ~faults ~check g
      [ flow ~src:n0 ~dst:n2 150 ]
  in
  Alcotest.(check bool)
    (Printf.sprintf "custody wiped (%d)" r.Inrpp.Protocol.chunks_lost_in_custody)
    true
    (r.Inrpp.Protocol.chunks_lost_in_custody > 0);
  Alcotest.(check int) "still completes" 1 r.Inrpp.Protocol.completed;
  if not (Check.Invariant.ok check) then
    Alcotest.fail (Check.Invariant.report check)

let test_crash_preserve_custody () =
  let g = Topology.Builders.line 3 ~capacity:10e6 ~delay:2e-3 in
  let faults =
    S.of_list
      [
        ev 0.05 (S.Node_crash { node = 1; policy = S.Preserve_custody });
        ev 1.0 (S.Node_restart { node = 1 });
      ]
  in
  let r =
    Inrpp.Protocol.run ~horizon:60. ~faults g [ flow ~src:0 ~dst:2 100 ]
  in
  Alcotest.(check int) "nothing lost from custody" 0
    r.Inrpp.Protocol.chunks_lost_in_custody;
  Alcotest.(check int) "completes" 1 r.Inrpp.Protocol.completed

(* Satellite regression: evacuation-in-flight chunks stay charged
   against the store budget.  The drain is peek-then-commit — between
   the peek and the successful handoff the chunk still counts, so a
   concurrent arrival cannot be admitted into the transient gap the
   old take-then-re-put opened (which could also lose the chunk
   outright if the re-put found the store full). *)
let test_evacuation_budget_charged () =
  let chunk = 80_000. in
  let c = Chunksim.Cache.create ~capacity:(2. *. chunk) () in
  Alcotest.(check bool) "fill 1" true
    (Chunksim.Cache.put_custody c ~flow:0 ~idx:0 ~bits:chunk = `Stored);
  Alcotest.(check bool) "fill 2" true
    (Chunksim.Cache.put_custody c ~flow:1 ~idx:0 ~bits:chunk = `Stored);
  (* evacuation of flow 0 begins: peek, handoff in flight *)
  (match Chunksim.Cache.peek_custody c ~flow:0 with
  | Some (0, b) -> check_close "peeked bits" 0. chunk b
  | _ -> Alcotest.fail "expected flow 0's oldest chunk");
  (* the in-flight chunk still holds its budget: nothing fits *)
  Alcotest.(check bool) "no admission into the transient gap" true
    (Chunksim.Cache.put_custody c ~flow:2 ~idx:0 ~bits:chunk = `Full);
  (* handoff failed (link went down mid-drain): nothing lost, nothing
     leaked — the chunk is still there and still charged *)
  (match Chunksim.Cache.peek_custody c ~flow:0 with
  | Some (0, _) -> ()
  | _ -> Alcotest.fail "failed handoff must leave custody untouched");
  check_close "occupancy unchanged" 0. (2. *. chunk)
    (Chunksim.Cache.custody_occupancy c);
  (* handoff succeeded on retry: commit releases, the next admit fits *)
  Chunksim.Cache.commit_custody c ~flow:0;
  Alcotest.(check bool) "admitted after commit" true
    (Chunksim.Cache.put_custody c ~flow:2 ~idx:0 ~bits:chunk = `Stored)

(* The protocol-level face of the same regression: a primary that
   flaps three times mid-transfer forces repeated evacuation attempts
   against a small store, some of which race the outages and fail.
   Every checker stays green and the flow completes — the old drain
   could leak a chunk (conservation) or stall the flow (lost chunk
   never re-requested from custody). *)
let test_evacuation_under_flapping_primary () =
  let g = diamond () in
  let specs = [ flow ~src:0 ~dst:3 300 ] in
  let cfg =
    {
      Inrpp.Config.default with
      Inrpp.Config.cache_bits =
        20. *. Inrpp.Config.default.Inrpp.Config.chunk_bits;
    }
  in
  let faults =
    S.of_list
      (List.concat_map
         (fun (down, up) -> both_directions g 1 3 `Drop_queued down ~up)
         [ (0.1, 0.4); (0.6, 0.9); (1.1, 1.4) ])
  in
  let check = Check.Invariant.create () in
  let r = Inrpp.Protocol.run ~cfg ~horizon:60. ~faults ~check g specs in
  Alcotest.(check int) "completes across the flaps" 1
    r.Inrpp.Protocol.completed;
  if not (Check.Invariant.ok check) then
    Alcotest.fail (Check.Invariant.report check)

let test_replay_deterministic () =
  let g = Topology.Builders.fig3 () in
  let faults =
    S.random ~seed:21L ~link_outages:2 ~crashes:1 ~horizon:5. g
  in
  let specs = [ flow ~src:0 ~dst:3 200; flow ~src:1 ~dst:2 100 ] in
  let once () = Inrpp.Protocol.run ~horizon:60. ~faults g specs in
  let a = once () and b = once () in
  Alcotest.(check int) "engine events" a.Inrpp.Protocol.engine_events
    b.Inrpp.Protocol.engine_events;
  Alcotest.(check int) "failovers" a.Inrpp.Protocol.failovers
    b.Inrpp.Protocol.failovers;
  Alcotest.(check int) "custody losses" a.Inrpp.Protocol.chunks_lost_in_custody
    b.Inrpp.Protocol.chunks_lost_in_custody;
  Alcotest.(check (option (float 0.)))
    "recovery time" a.Inrpp.Protocol.recovery_time
    b.Inrpp.Protocol.recovery_time;
  Array.iteri
    (fun i fa ->
      Alcotest.(check (option (float 0.)))
        (Printf.sprintf "fct %d" i) fa.Inrpp.Protocol.fct
        b.Inrpp.Protocol.flows.(i).Inrpp.Protocol.fct)
    a.Inrpp.Protocol.flows

(* ------------------------------------------------------------------ *)
(* Bounded request backoff (satellite: exponential backoff knob) *)

let test_backoff_bounds_requests_during_partition () =
  let g = Topology.Builders.line 3 ~capacity:10e6 ~delay:2e-3 in
  let specs = [ flow ~src:0 ~dst:2 40 ] in
  (* partition the receiver side for ~30 s, then heal *)
  let faults = S.of_list (both_directions g 1 2 `Drop_queued 0.1 ~up:30.) in
  let run backoff =
    let cfg = { Inrpp.Config.default with Inrpp.Config.timeout_backoff = backoff } in
    Inrpp.Protocol.run ~cfg ~horizon:60. ~faults g specs
  in
  let flat = run 1. and backed = run 2. in
  let clean = Inrpp.Protocol.run ~horizon:60. g specs in
  Alcotest.(check int) "flat completes" 1 flat.Inrpp.Protocol.completed;
  Alcotest.(check int) "backoff completes" 1 backed.Inrpp.Protocol.completed;
  let rf = flat.Inrpp.Protocol.flows.(0).requests_sent in
  let rb = backed.Inrpp.Protocol.flows.(0).requests_sent in
  Alcotest.(check bool)
    (Printf.sprintf "backoff sends fewer requests (%d < %d)" rb rf)
    true (rb < rf);
  (* derived bound: the fault-free request load, plus the doublings up
     to the cap, plus one request per capped interval across the
     partition, plus slack for the post-heal refetch *)
  let cfg = Inrpp.Config.default in
  let cap =
    cfg.Inrpp.Config.timeout_backoff_cap *. cfg.Inrpp.Config.request_timeout
  in
  let doublings =
    int_of_float (ceil (log cfg.Inrpp.Config.timeout_backoff_cap /. log 2.))
  in
  let partition = 30. in
  let bound =
    clean.Inrpp.Protocol.flows.(0).requests_sent
    + doublings
    + int_of_float (ceil (partition /. cap))
    + 10
  in
  Alcotest.(check bool)
    (Printf.sprintf "requests bounded (%d <= %d)" rb bound)
    true (rb <= bound)

let test_control_burst_recovery () =
  (* a total request blackout for 1 s delays but does not kill the
     transfer: timers re-request once the burst lifts *)
  let g = Topology.Builders.line 3 ~capacity:10e6 ~delay:2e-3 in
  let faults =
    S.of_list ~seed:5L
      [ ev 0.1 (S.Control_loss_burst { duration = 1.0; loss = 1.0 }) ]
  in
  let cfg = { Inrpp.Config.default with Inrpp.Config.timeout_backoff = 2. } in
  let r =
    Inrpp.Protocol.run ~cfg ~horizon:60. ~faults g [ flow ~src:0 ~dst:2 100 ]
  in
  Alcotest.(check int) "completes" 1 r.Inrpp.Protocol.completed

(* ------------------------------------------------------------------ *)
(* Seeded sweeps *)

let dumbbell_specs n chunks =
  List.init n (fun i -> flow ~src:(2 + i) ~dst:(2 + n + i) chunks)

(* Satellite: loss-recovery sweep.  All flows complete under 1-5%
   random wire loss; duplicates and request overhead stay within a
   bound derived from the loss-free baseline. *)
let test_loss_recovery_sweep () =
  let g = Topology.Builders.dumbbell 3 in
  let specs = dumbbell_specs 3 60 in
  let cfg = { Inrpp.Config.default with Inrpp.Config.timeout_backoff = 2. } in
  let run ?loss_rate () = Inrpp.Protocol.run ~cfg ~horizon:120. ?loss_rate g specs in
  let base = run () in
  let base_requests =
    Array.fold_left
      (fun acc f -> acc + f.Inrpp.Protocol.requests_sent)
      0 base.Inrpp.Protocol.flows
  in
  List.iter
    (fun loss ->
      let r = run ~loss_rate:loss () in
      Alcotest.(check int)
        (Printf.sprintf "all complete at %.0f%% loss" (100. *. loss))
        3 r.Inrpp.Protocol.completed;
      let requests, dups, chunks =
        Array.fold_left
          (fun (rq, d, c) f ->
            ( rq + f.Inrpp.Protocol.requests_sent,
              d + f.Inrpp.Protocol.duplicates,
              c + f.Inrpp.Protocol.spec.Inrpp.Protocol.chunks ))
          (0, 0, 0) r.Inrpp.Protocol.flows
      in
      (* each lost data or request packet costs at most one timeout
         re-request; re-requests can refetch a window, so allow a
         window of duplicates per retransmission round *)
      let slack = int_of_float (ceil (float_of_int chunks *. loss *. 8.)) in
      Alcotest.(check bool)
        (Printf.sprintf "requests bounded at %.0f%% (%d <= %d)" (100. *. loss)
           requests
           (base_requests + slack + 30))
        true
        (requests <= base_requests + slack + 30);
      Alcotest.(check bool)
        (Printf.sprintf "duplicates bounded at %.0f%% (%d)" (100. *. loss) dups)
        true
        (dups <= slack + 30))
    [ 0.01; 0.02; 0.05 ]

(* Fault-aware conservation: random schedules across many seeds, every
   checker on.  Custody wipes and wire kills must be attributed, never
   reported as leaks. *)
let test_conservation_random_schedules () =
  let g = Topology.Builders.dumbbell 2 in
  let specs = dumbbell_specs 2 30 in
  for seed = 1 to 50 do
    let faults =
      S.random ~seed:(Int64.of_int seed) ~link_outages:2 ~crashes:1
        ~horizon:8. g
    in
    let check = Check.Invariant.create () in
    let r = Inrpp.Protocol.run ~horizon:40. ~faults ~check g specs in
    ignore (r : Inrpp.Protocol.result);
    if not (Check.Invariant.ok check) then
      Alcotest.failf "seed %d: %s" seed (Check.Invariant.report check)
  done

(* A custody wipe mid-run must trigger the flight recorder: the dump
   file gets a header naming the wipe plus the ring of events leading
   up to it.  A clean replay of the same scenario (no faults) with the
   same recorder wiring must leave no file at all — the recorder opens
   its output lazily, on the first dump. *)
let test_flight_recorder_on_custody_wipe () =
  let b = Topology.Graph.Builder.create () in
  let n0 = Topology.Graph.Builder.add_node b "sender" in
  let n1 = Topology.Graph.Builder.add_node b "bottleneck" in
  let n2 = Topology.Graph.Builder.add_node b "receiver" in
  Topology.Graph.Builder.add_edge b ~capacity:10e6 ~delay:2e-3 n0 n1;
  Topology.Graph.Builder.add_edge b ~capacity:2e6 ~delay:2e-3 n1 n2;
  let g = Topology.Graph.Builder.build b in
  let cfg =
    {
      Inrpp.Config.default with
      Inrpp.Config.anticipation = 512;
      cache_bits = 30. *. Inrpp.Config.default.Inrpp.Config.chunk_bits;
      timeout_backoff = 2.;
    }
  in
  let specs = [ flow ~src:n0 ~dst:n2 150 ] in
  let run ~faults path =
    let rc = Obs.Recorder.create ~path () in
    let o = Obs.Observer.create ~recorder:rc () in
    let r = Inrpp.Protocol.run ~cfg ~horizon:120. ~faults ~obs:o g specs in
    Obs.Observer.close o;
    r
  in
  let path = Filename.temp_file "flight_fault" ".ndjson" in
  Sys.remove path;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      (* clean run first: recorder wired, nothing to dump *)
      let clean = run ~faults:S.empty path in
      Alcotest.(check int) "clean run completes" 1
        clean.Inrpp.Protocol.completed;
      Alcotest.(check bool) "clean run leaves no dump file" false
        (Sys.file_exists path);
      let faults =
        S.of_list
          [
            ev 0.5 (S.Node_crash { node = n1; policy = S.Wipe_custody });
            ev 2.0 (S.Node_restart { node = n1 });
          ]
      in
      let r = run ~faults path in
      Alcotest.(check bool) "custody wiped" true
        (r.Inrpp.Protocol.chunks_lost_in_custody > 0);
      Alcotest.(check bool) "wipe dumped the flight recorder" true
        (Sys.file_exists path);
      let ic = open_in path in
      let header = input_line ic in
      let events = ref 0 in
      (try
         while true do
           let line = input_line ic in
           match
             Result.bind (Obs.Json.parse line) Obs.Trace_codec.of_json
           with
           | Ok _ -> incr events
           | Error e -> Alcotest.failf "undecodable dump line %S: %s" line e
         done
       with End_of_file -> ());
      close_in ic;
      match Obs.Json.parse header with
      | Error e -> Alcotest.failf "dump header: %s" e
      | Ok j ->
        Alcotest.(check (option string)) "header type" (Some "flight_dump")
          (Option.bind (Obs.Json.member "type" j) Obs.Json.to_str);
        (match Option.bind (Obs.Json.member "reason" j) Obs.Json.to_str with
        | Some reason ->
          Alcotest.(check bool)
            (Printf.sprintf "reason names the wipe (%S)" reason)
            true
            (String.length reason >= 13
            && String.sub reason 0 13 = "custody wiped")
        | None -> Alcotest.fail "dump header without a reason");
        Alcotest.(check bool) "ring contents follow the header" true
          (!events > 0))

(* ------------------------------------------------------------------ *)
(* Flow-table teardown: entries for flows that finish during or after
   an outage must be released and their slots recycled when
   [cfg.flow_teardown] is on — the regression here was entries
   surviving the run forever (never recycled) when the flow's end
   raced an outage.  Default-off keeps the historical behaviour:
   entries persist to the end of the run. *)

let test_teardown_recycles_after_outage () =
  let g = Topology.Builders.line 3 ~capacity:10e6 ~delay:2e-3 in
  let specs = [ flow ~src:0 ~dst:2 150 ] in
  (* mid-path outage while the flow is in flight; it completes after
     the heal, so teardown runs on a table that lived through the
     outage (including any reconvergence installs) *)
  let faults = S.of_list (both_directions g 1 2 `Drop_queued 0.2 ~up:1.0) in
  let run cfg = Inrpp.Protocol.run ~cfg ~horizon:60. ~faults g specs in
  let kept = run Inrpp.Config.default in
  Alcotest.(check int) "completes (default)" 1 kept.Inrpp.Protocol.completed;
  Alcotest.(check bool) "default keeps entries to end of run" true
    (kept.Inrpp.Protocol.flow_entries_live > 0);
  let torn =
    run { Inrpp.Config.default with Inrpp.Config.flow_teardown = true }
  in
  Alcotest.(check int) "completes (teardown)" 1 torn.Inrpp.Protocol.completed;
  Alcotest.(check int) "live entries back to 0" 0
    torn.Inrpp.Protocol.flow_entries_live;
  Alcotest.(check bool) "slots recycled" true
    (torn.Inrpp.Protocol.flow_entries_recycled > 0);
  Alcotest.(check int) "peak unchanged by teardown"
    kept.Inrpp.Protocol.flow_entries_peak torn.Inrpp.Protocol.flow_entries_peak

let test_teardown_recycles_after_crash () =
  (* node crash on the path: recovery reinstalls state; the completed
     flow must still tear down to zero live entries everywhere *)
  let g = diamond () in
  let specs = [ flow ~src:0 ~dst:3 150 ] in
  let faults =
    S.of_list
      [
        ev 0.2 (S.Node_crash { node = 1; policy = S.Preserve_custody });
        ev 1.0 (S.Node_restart { node = 1 });
      ]
  in
  let torn =
    Inrpp.Protocol.run
      ~cfg:{ Inrpp.Config.default with Inrpp.Config.flow_teardown = true }
      ~horizon:60. ~faults g specs
  in
  Alcotest.(check int) "completes" 1 torn.Inrpp.Protocol.completed;
  Alcotest.(check int) "live entries back to 0" 0
    torn.Inrpp.Protocol.flow_entries_live;
  Alcotest.(check bool) "slots recycled" true
    (torn.Inrpp.Protocol.flow_entries_recycled > 0)

(* ------------------------------------------------------------------ *)
(* CI fault matrix: 3 schedules x 2 topologies, small horizons *)

let matrix_schedules g =
  [
    ("outage", S.random ~seed:11L ~link_outages:2 ~horizon:4. g);
    ("crash", S.random ~seed:12L ~link_outages:0 ~crashes:1 ~horizon:4. g);
    ( "burst",
      S.of_list ~seed:13L
        [ ev 0.3 (S.Control_loss_burst { duration = 1.0; loss = 0.9 }) ] );
  ]

let matrix_topologies () =
  [
    ("dumbbell", Topology.Builders.dumbbell 2, dumbbell_specs 2 40);
    ("fig3", Topology.Builders.fig3 (), [ flow ~src:0 ~dst:3 80 ]);
  ]

let test_fault_matrix () =
  List.iter
    (fun (tname, g, specs) ->
      List.iter
        (fun (sname, faults) ->
          let check = Check.Invariant.create () in
          let r = Inrpp.Protocol.run ~horizon:30. ~faults ~check g specs in
          if not (Check.Invariant.ok check) then
            Alcotest.failf "%s/%s: %s" tname sname
              (Check.Invariant.report check);
          Alcotest.(check int)
            (Printf.sprintf "%s/%s: all flows complete" tname sname)
            (List.length specs) r.Inrpp.Protocol.completed)
        (matrix_schedules g))
    (matrix_topologies ())

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "fault"
    [
      ( "schedule",
        [
          Alcotest.test_case "empty and sort" `Quick test_schedule_empty_and_sort;
          Alcotest.test_case "random is seed-deterministic" `Quick
            test_schedule_random_deterministic;
        ] );
      ( "link_state",
        [ Alcotest.test_case "flips and subscribers" `Quick test_link_state ] );
      ( "iface",
        [
          Alcotest.test_case "down drops queued" `Quick
            test_iface_down_drop_queued;
          Alcotest.test_case "hold-queued survives outage" `Quick
            test_iface_down_hold_queued_then_up;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "empty schedule is bit-identical" `Quick
            test_empty_schedule_bit_identity;
          Alcotest.test_case "failover onto detour" `Quick
            test_failover_onto_detour;
          Alcotest.test_case "outage back-pressure and recovery" `Quick
            test_outage_backpressure_and_recovery;
          Alcotest.test_case "crash wipes custody" `Quick
            test_crash_wipes_custody;
          Alcotest.test_case "crash preserves custody" `Quick
            test_crash_preserve_custody;
          Alcotest.test_case "evacuation-in-flight stays charged" `Quick
            test_evacuation_budget_charged;
          Alcotest.test_case "evacuation under flapping primary" `Quick
            test_evacuation_under_flapping_primary;
          Alcotest.test_case "replay is deterministic" `Quick
            test_replay_deterministic;
          Alcotest.test_case "teardown recycles after outage" `Quick
            test_teardown_recycles_after_outage;
          Alcotest.test_case "teardown recycles after crash" `Quick
            test_teardown_recycles_after_crash;
        ] );
      ( "flight-recorder",
        [
          Alcotest.test_case "dump on custody wipe" `Quick
            test_flight_recorder_on_custody_wipe;
        ] );
      ( "backoff",
        [
          Alcotest.test_case "bounded requests during partition" `Quick
            test_backoff_bounds_requests_during_partition;
          Alcotest.test_case "control-burst recovery" `Quick
            test_control_burst_recovery;
        ] );
      ( "sweeps",
        [
          Alcotest.test_case "loss-recovery sweep" `Quick
            test_loss_recovery_sweep;
          Alcotest.test_case "conservation under random schedules" `Slow
            test_conservation_random_schedules;
        ] );
      ( "fault-matrix",
        [ Alcotest.test_case "3 schedules x 2 topologies" `Quick
            test_fault_matrix ] );
    ]
