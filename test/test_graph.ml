(* Tests for graph construction, paths, serialisation and structural
   statistics. *)

open Topology

let diamond () =
  (* 0 - 1 - 3 with 0 - 2 - 3 alternative *)
  Graph.of_edges 4 [ (0, 1); (1, 3); (0, 2); (2, 3) ]

(* ------------------------------------------------------------------ *)
(* Graph *)

let test_counts () =
  let g = diamond () in
  Alcotest.(check int) "nodes" 4 (Graph.node_count g);
  Alcotest.(check int) "directed links" 8 (Graph.link_count g);
  Alcotest.(check int) "undirected links" 4
    (List.length (Graph.undirected_links g))

let test_adjacency () =
  let g = diamond () in
  Alcotest.(check (list int)) "succs of 0" [ 1; 2 ] (Graph.succs g 0);
  Alcotest.(check (list int)) "preds of 3" [ 1; 2 ] (Graph.preds g 3);
  Alcotest.(check int) "out degree" 2 (Graph.out_degree g 0)

let test_find_and_reverse () =
  let g = diamond () in
  match Graph.find_link g 0 1 with
  | None -> Alcotest.fail "missing link 0->1"
  | Some l ->
    Alcotest.(check (pair int int)) "endpoints" (0, 1) (Link.endpoints l);
    (match Graph.reverse g l with
    | None -> Alcotest.fail "missing reverse"
    | Some r -> Alcotest.(check (pair int int)) "reverse" (1, 0) (Link.endpoints r));
    Alcotest.(check bool) "absent link" true (Graph.find_link g 0 3 = None)

let test_duplicate_rejected () =
  let b = Graph.Builder.create () in
  let u = Graph.Builder.add_node b "u" in
  let v = Graph.Builder.add_node b "v" in
  Graph.Builder.add_link b u v;
  Graph.Builder.add_link b u v;
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Graph.Builder.build: duplicate link 0->1") (fun () ->
      ignore (Graph.Builder.build b))

let test_invalid_links_rejected () =
  let b = Graph.Builder.create () in
  let u = Graph.Builder.add_node b "u" in
  Alcotest.check_raises "self loop"
    (Invalid_argument "Graph.Builder.add_link: self-loop") (fun () ->
      Graph.Builder.add_link b u u);
  Alcotest.check_raises "unknown node"
    (Invalid_argument "Graph.Builder: unknown node 7") (fun () ->
      Graph.Builder.add_link b u 7);
  Alcotest.check_raises "bad capacity"
    (Invalid_argument "Graph.Builder.add_link: capacity <= 0") (fun () ->
      let v = Graph.Builder.add_node b "v" in
      Graph.Builder.add_link b ~capacity:0. u v)

let test_connectivity () =
  Alcotest.(check bool) "diamond connected" true (Graph.is_connected (diamond ()));
  let disconnected = Graph.of_edges 4 [ (0, 1); (2, 3) ] in
  Alcotest.(check bool) "two components" false (Graph.is_connected disconnected);
  let empty = Graph.of_edges 0 [] in
  Alcotest.(check bool) "empty is connected" true (Graph.is_connected empty)

let test_total_capacity () =
  let g = Graph.of_edges ~capacity:5. 2 [ (0, 1) ] in
  Alcotest.(check (float 1e-9)) "both directions" 10. (Graph.total_capacity g)

(* ------------------------------------------------------------------ *)
(* Path *)

let test_path_of_nodes () =
  let g = diamond () in
  let p = Path.of_nodes_exn g [ 0; 1; 3 ] in
  Alcotest.(check int) "hops" 2 (Path.hops p);
  Alcotest.(check int) "src" 0 (Path.src p);
  Alcotest.(check int) "dst" 3 (Path.dst p);
  Alcotest.(check bool) "simple" true (Path.is_simple p);
  match Path.of_nodes g [ 0; 3 ] with
  | Ok _ -> Alcotest.fail "0-3 not linked"
  | Error _ -> ()

let test_path_singleton () =
  let p = Path.singleton 2 in
  Alcotest.(check int) "no hops" 0 (Path.hops p);
  Alcotest.(check (float 0.)) "zero delay" 0. (Path.delay p);
  Alcotest.(check bool) "infinite bottleneck" true
    (Path.bottleneck p = infinity)

let test_path_costs () =
  let g = Graph.of_edges ~capacity:10. ~delay:0.5 4 [ (0, 1); (1, 2); (2, 3) ] in
  let p = Path.of_nodes_exn g [ 0; 1; 2; 3 ] in
  Alcotest.(check (float 1e-9)) "delay" 1.5 (Path.delay p);
  Alcotest.(check (float 1e-9)) "bottleneck" 10. (Path.bottleneck p);
  Alcotest.(check (float 1e-9)) "stretch vs 2" 1.5 (Path.stretch ~shortest:2 p)

let test_path_concat () =
  let g = diamond () in
  let a = Path.of_nodes_exn g [ 0; 1 ] in
  let b = Path.of_nodes_exn g [ 1; 3 ] in
  (match Path.concat a b with
  | Ok p -> Alcotest.(check int) "joined" 2 (Path.hops p)
  | Error m -> Alcotest.fail m);
  match Path.concat b a with
  | Ok _ -> Alcotest.fail "mismatched endpoints accepted"
  | Error _ -> ()

let test_path_splice () =
  let g = diamond () in
  let p = Path.of_nodes_exn g [ 0; 1; 3 ] in
  let detour = Path.of_nodes_exn g [ 0; 2; 3 ] in
  match Path.splice p ~at:0 ~replacement:detour ~rejoin:3 with
  | Error m -> Alcotest.fail m
  | Ok spliced ->
    Alcotest.(check (list int)) "rerouted" [ 0; 2; 3 ] spliced.Path.nodes

let test_path_splice_middle () =
  let g = Graph.of_edges 5 [ (0, 1); (1, 2); (2, 3); (3, 4); (1, 3) ] in
  let p = Path.of_nodes_exn g [ 0; 1; 2; 3; 4 ] in
  let shortcut = Path.of_nodes_exn g [ 1; 3 ] in
  match Path.splice p ~at:1 ~replacement:shortcut ~rejoin:3 with
  | Error m -> Alcotest.fail m
  | Ok spliced ->
    Alcotest.(check (list int)) "middle replaced" [ 0; 1; 3; 4 ] spliced.Path.nodes;
    Alcotest.(check int) "links follow" 3 (List.length spliced.Path.links)

let test_path_splice_errors () =
  let g = diamond () in
  let p = Path.of_nodes_exn g [ 0; 1; 3 ] in
  let detour = Path.of_nodes_exn g [ 0; 2; 3 ] in
  (match Path.splice p ~at:2 ~replacement:detour ~rejoin:3 with
  | Ok _ -> Alcotest.fail "at-node not on path accepted"
  | Error _ -> ());
  (match Path.splice p ~at:3 ~replacement:detour ~rejoin:0 with
  | Ok _ -> Alcotest.fail "rejoin before at accepted"
  | Error _ -> ());
  match Path.splice p ~at:1 ~replacement:detour ~rejoin:3 with
  | Ok _ -> Alcotest.fail "mismatched replacement endpoints accepted"
  | Error _ -> ()

let test_graph_folds () =
  let g = diamond () in
  let link_sum = Graph.fold_links (fun _ acc -> acc + 1) g 0 in
  Alcotest.(check int) "fold_links" 8 link_sum;
  let node_sum = Graph.fold_nodes (fun _ acc -> acc + 1) g 0 in
  Alcotest.(check int) "fold_nodes" 4 node_sum;
  let seen = ref 0 in
  Graph.iter_links (fun _ -> incr seen) g;
  Alcotest.(check int) "iter_links" 8 !seen

let test_path_mem () =
  let g = diamond () in
  let p = Path.of_nodes_exn g [ 0; 1; 3 ] in
  Alcotest.(check bool) "mem node" true (Path.mem_node p 1);
  Alcotest.(check bool) "not mem node" false (Path.mem_node p 2);
  let l = Option.get (Graph.find_link g 0 1) in
  let l' = Option.get (Graph.find_link g 0 2) in
  Alcotest.(check bool) "mem link" true (Path.mem_link p l);
  Alcotest.(check bool) "not mem link" false (Path.mem_link p l')

(* ------------------------------------------------------------------ *)
(* Serial *)

let test_serial_roundtrip () =
  let g = Builders.fig3 () in
  let text = Serial.to_string g in
  match Serial.of_string text with
  | Error m -> Alcotest.fail m
  | Ok g' ->
    Alcotest.(check int) "nodes" (Graph.node_count g) (Graph.node_count g');
    Alcotest.(check int) "links" (Graph.link_count g) (Graph.link_count g');
    List.iter
      (fun (l : Link.t) ->
        match Graph.find_link g' l.Link.src l.Link.dst with
        | None -> Alcotest.fail "link lost in roundtrip"
        | Some l' ->
          Alcotest.(check (float 0.)) "capacity" l.Link.capacity l'.Link.capacity;
          Alcotest.(check (float 0.)) "delay" l.Link.delay l'.Link.delay)
      (Graph.links g)

let test_serial_roles_roundtrip () =
  let b = Graph.Builder.create () in
  let c = Graph.Builder.add_node b ~role:Node.Core "c" in
  let h = Graph.Builder.add_node b ~role:Node.Host "h" in
  Graph.Builder.add_edge b c h;
  let g = Graph.Builder.build b in
  match Serial.of_string (Serial.to_string g) with
  | Error m -> Alcotest.fail m
  | Ok g' ->
    Alcotest.(check string) "role kept" "host"
      (Node.role_to_string (Graph.node g' 1).Node.role)

let test_serial_errors () =
  let check_err text =
    match Serial.of_string text with
    | Ok _ -> Alcotest.fail ("accepted bad input: " ^ text)
    | Error _ -> ()
  in
  check_err "frobnicate 1 2\n";
  check_err "node 5 foo core\n";
  check_err "node 0 foo king\n";
  check_err "node 0 a core\nedge 0 7 1e9 0.001\n";
  check_err "node 0 a core\nnode 1 b core\nedge 0 1 bad 0.001\n"

let test_serial_file_roundtrip () =
  let g = Isp_zoo.graph Isp_zoo.Vsnl in
  let path = Filename.temp_file "inrpp_topo" ".topo" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Serial.save g path;
      match Serial.load path with
      | Error m -> Alcotest.fail m
      | Ok g' ->
        Alcotest.(check int) "nodes" (Graph.node_count g) (Graph.node_count g');
        Alcotest.(check int) "links" (Graph.link_count g) (Graph.link_count g'));
  Alcotest.(check bool) "missing file errors" true
    (match Serial.load "/nonexistent/inrpp.topo" with
    | Error _ -> true
    | Ok _ -> false)

let test_serial_comments_and_blanks () =
  let text = "# heading\n\nnode 0 a core\nnode 1 b core # trailing\nedge 0 1 1e9 0.001\n" in
  match Serial.of_string text with
  | Error m -> Alcotest.fail m
  | Ok g -> Alcotest.(check int) "parsed" 2 (Graph.node_count g)

(* ------------------------------------------------------------------ *)
(* Builders + stats *)

let test_builder_shapes () =
  let check_shape name g nodes ulinks =
    Alcotest.(check int) (name ^ " nodes") nodes (Graph.node_count g);
    Alcotest.(check int) (name ^ " links") ulinks
      (List.length (Graph.undirected_links g));
    Alcotest.(check bool) (name ^ " connected") true (Graph.is_connected g)
  in
  check_shape "line" (Builders.line 5) 5 4;
  check_shape "ring" (Builders.ring 6) 6 6;
  check_shape "star" (Builders.star 4) 5 4;
  check_shape "mesh" (Builders.full_mesh 5) 5 10;
  check_shape "grid" (Builders.grid 3 4) 12 17;
  check_shape "tree" (Builders.binary_tree 3) 15 14;
  check_shape "dumbbell" (Builders.dumbbell 3) 8 7;
  check_shape "fig3" (Builders.fig3 ()) 4 5

let test_builder_validation () =
  let expect_invalid f =
    match f () with
    | _ -> Alcotest.fail "expected Invalid_argument"
    | exception Invalid_argument _ -> ()
  in
  expect_invalid (fun () -> Builders.line 0);
  expect_invalid (fun () -> Builders.ring 2);
  expect_invalid (fun () -> Builders.full_mesh 1);
  expect_invalid (fun () -> Builders.binary_tree (-1));
  expect_invalid (fun () -> Builders.erdos_renyi ~seed:1L ~p:1.5 4);
  expect_invalid (fun () -> Builders.barabasi_albert ~seed:1L ~m:3 3)

let test_random_builders_deterministic () =
  let a = Builders.erdos_renyi ~seed:5L ~p:0.3 30 in
  let b = Builders.erdos_renyi ~seed:5L ~p:0.3 30 in
  Alcotest.(check int) "same link count" (Graph.link_count a) (Graph.link_count b);
  let wa = Builders.waxman ~seed:5L ~alpha:0.9 ~beta:0.3 30 in
  let wb = Builders.waxman ~seed:5L ~alpha:0.9 ~beta:0.3 30 in
  Alcotest.(check int) "waxman deterministic" (Graph.link_count wa)
    (Graph.link_count wb)

let test_barabasi_albert_degrees () =
  let g = Builders.barabasi_albert ~seed:3L ~m:2 80 in
  Alcotest.(check bool) "connected" true (Graph.is_connected g);
  (* every non-seed node has degree >= m *)
  let stats = Graph_stats.compute g in
  Alcotest.(check bool) "min degree >= 2" true (stats.Graph_stats.min_degree >= 2);
  (* preferential attachment yields a hub *)
  Alcotest.(check bool) "has a hub" true (stats.Graph_stats.max_degree >= 8)

let test_graph_stats_mesh () =
  let g = Builders.full_mesh 5 in
  let s = Graph_stats.compute g in
  Alcotest.(check (float 1e-9)) "avg degree" 4. s.Graph_stats.avg_degree;
  Alcotest.(check (option int)) "diameter" (Some 1) s.Graph_stats.diameter;
  Alcotest.(check (float 1e-9)) "clustering" 1. s.Graph_stats.clustering;
  Alcotest.(check (float 1e-9)) "avg path" 1. s.Graph_stats.avg_path_length

let test_betweenness_line () =
  (* on a 3-node line all 0<->2 shortest paths pass through node 1 *)
  let g = Builders.line 3 in
  let cb = Graph_stats.betweenness g in
  Alcotest.(check (float 1e-9)) "ends" 0. cb.(0);
  Alcotest.(check (float 1e-9)) "ends" 0. cb.(2);
  (* node 1 lies on 0->2 and 2->0 *)
  Alcotest.(check (float 1e-9)) "middle" 2. cb.(1)

let test_betweenness_star () =
  let g = Builders.star 4 in
  let cb = Graph_stats.betweenness g in
  (* hub carries all 4*3 leaf pairs *)
  Alcotest.(check (float 1e-9)) "hub" 12. cb.(0);
  for leaf = 1 to 4 do
    Alcotest.(check (float 1e-9)) "leaf" 0. cb.(leaf)
  done

let test_betweenness_mesh_zero () =
  let g = Builders.full_mesh 4 in
  let cb = Graph_stats.betweenness g in
  Array.iter (fun v -> Alcotest.(check (float 1e-9)) "no transit" 0. v) cb

let test_graph_stats_line () =
  let g = Builders.line 4 in
  let s = Graph_stats.compute g in
  Alcotest.(check (option int)) "diameter" (Some 3) s.Graph_stats.diameter;
  Alcotest.(check (float 1e-9)) "clustering" 0. s.Graph_stats.clustering;
  let dist = Graph_stats.degree_distribution g in
  Alcotest.(check (list (pair int int))) "degree dist" [ (1, 2); (2, 2) ] dist

(* ------------------------------------------------------------------ *)
(* Properties *)

let random_graph_gen =
  QCheck.Gen.(
    pair (int_range 2 40) (int_range 0 1000) >>= fun (n, seed) ->
    return (n, seed))

let prop_of_edges_symmetric =
  QCheck.Test.make ~name:"of_edges graphs are symmetric" ~count:100
    (QCheck.make random_graph_gen) (fun (n, seed) ->
      let g =
        Builders.erdos_renyi ~seed:(Int64.of_int seed) ~p:0.4 n
      in
      List.for_all
        (fun (l : Link.t) -> Graph.reverse g l <> None)
        (Graph.links g))

let prop_undirected_halves =
  QCheck.Test.make ~name:"undirected_links is half of links" ~count:100
    (QCheck.make random_graph_gen) (fun (n, seed) ->
      let g = Builders.erdos_renyi ~seed:(Int64.of_int seed) ~p:0.4 n in
      2 * List.length (Graph.undirected_links g) = Graph.link_count g)

let prop_serial_roundtrip =
  QCheck.Test.make ~name:"serial roundtrip preserves structure" ~count:50
    (QCheck.make random_graph_gen) (fun (n, seed) ->
      let g = Builders.erdos_renyi ~seed:(Int64.of_int seed) ~p:0.3 n in
      match Serial.of_string (Serial.to_string g) with
      | Error _ -> false
      | Ok g' ->
        Graph.node_count g = Graph.node_count g'
        && Graph.link_count g = Graph.link_count g')

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "graph"
    [
      ( "graph",
        [
          Alcotest.test_case "counts" `Quick test_counts;
          Alcotest.test_case "adjacency" `Quick test_adjacency;
          Alcotest.test_case "find and reverse" `Quick test_find_and_reverse;
          Alcotest.test_case "duplicate rejected" `Quick test_duplicate_rejected;
          Alcotest.test_case "invalid links rejected" `Quick test_invalid_links_rejected;
          Alcotest.test_case "connectivity" `Quick test_connectivity;
          Alcotest.test_case "total capacity" `Quick test_total_capacity;
        ] );
      ( "path",
        [
          Alcotest.test_case "of_nodes" `Quick test_path_of_nodes;
          Alcotest.test_case "singleton" `Quick test_path_singleton;
          Alcotest.test_case "costs" `Quick test_path_costs;
          Alcotest.test_case "concat" `Quick test_path_concat;
          Alcotest.test_case "splice ends" `Quick test_path_splice;
          Alcotest.test_case "splice middle" `Quick test_path_splice_middle;
          Alcotest.test_case "membership" `Quick test_path_mem;
          Alcotest.test_case "splice errors" `Quick test_path_splice_errors;
          Alcotest.test_case "folds" `Quick test_graph_folds;
        ] );
      ( "serial",
        [
          Alcotest.test_case "roundtrip fig3" `Quick test_serial_roundtrip;
          Alcotest.test_case "roles roundtrip" `Quick test_serial_roles_roundtrip;
          Alcotest.test_case "errors" `Quick test_serial_errors;
          Alcotest.test_case "comments and blanks" `Quick test_serial_comments_and_blanks;
          Alcotest.test_case "file roundtrip" `Quick test_serial_file_roundtrip;
        ] );
      ( "builders",
        [
          Alcotest.test_case "shapes" `Quick test_builder_shapes;
          Alcotest.test_case "validation" `Quick test_builder_validation;
          Alcotest.test_case "random deterministic" `Quick test_random_builders_deterministic;
          Alcotest.test_case "barabasi-albert degrees" `Quick test_barabasi_albert_degrees;
          Alcotest.test_case "stats mesh" `Quick test_graph_stats_mesh;
          Alcotest.test_case "stats line" `Quick test_graph_stats_line;
          Alcotest.test_case "betweenness line" `Quick test_betweenness_line;
          Alcotest.test_case "betweenness star" `Quick test_betweenness_star;
          Alcotest.test_case "betweenness mesh" `Quick test_betweenness_mesh_zero;
        ] );
      ( "properties",
        qc [ prop_of_edges_symmetric; prop_undirected_halves; prop_serial_roundtrip ] );
    ]
