(* The paper's Fig. 3 worked example, reproduced end to end.

   Two flows from node 1: flow A to node 4 (through the 2 Mbps
   bottleneck), flow B to node 2.  Under e2e flow control the
   bottleneck caps A at 2 Mbps and B grabs 8 Mbps (Jain 0.73); under
   INRPP the shared link splits 5/5 and A's overflow detours through
   node 3 (Jain 1.0).

     dune exec examples/fig3_fairness.exe
*)

let mbps r = r /. 1e6

let () =
  let g = Topology.Builders.fig3 () in
  let pairs = [ (0, 3); (0, 1) ] in

  Format.printf "Fig. 3 topology: 1-2 at 10 Mbps, 2-4 at 2 Mbps, detour 2-3-4 at 5 Mbps@.@.";

  (* Left side of the figure: e2e flow control *)
  let e2e = Flowsim.Simulator.run_static g ~strategy:Flowsim.Routing.sp pairs in
  Format.printf "e2e flow control (TCP-like max-min on single paths):@.";
  Format.printf "  flow A (1->4): %5.2f Mbps   <- capped by the 2 Mbps bottleneck@."
    (mbps e2e.(0));
  Format.printf "  flow B (1->2): %5.2f Mbps   <- dominates the shared link@."
    (mbps e2e.(1));
  Format.printf "  Jain fairness: %.3f          (paper: 0.73)@.@."
    (Metrics.Fairness.jain e2e);

  (* Right side: INRPP -- global fairness + local stability *)
  let inrp =
    Flowsim.Simulator.run_static g
      ~strategy:(Flowsim.Routing.Inrp Flowsim.Allocation.fig3_inrp)
      pairs
  in
  Format.printf "INRPP (equal shares up to the bottleneck, detour via node 3):@.";
  Format.printf "  flow A (1->4): %5.2f Mbps   <- 2 direct + 3 detoured@."
    (mbps inrp.(0));
  Format.printf "  flow B (1->2): %5.2f Mbps@." (mbps inrp.(1));
  Format.printf "  Jain fairness: %.3f          (paper: 1.00)@.@."
    (Metrics.Fairness.jain inrp);

  (* The same story at chunk level with the real protocol. *)
  Format.printf "chunk-level protocol check (300-chunk bulk transfers):@.";
  let cfg = { Inrpp.Config.default with Inrpp.Config.anticipation = 512 } in
  let specs =
    [
      Inrpp.Protocol.flow_spec ~src:0 ~dst:3 300;
      Inrpp.Protocol.flow_spec ~src:0 ~dst:1 300;
    ]
  in
  let r = Inrpp.Protocol.run ~cfg g specs in
  Array.iteri
    (fun i fr ->
      match fr.Inrpp.Protocol.fct with
      | Some fct ->
        let rate =
          float_of_int fr.Inrpp.Protocol.chunks_received
          *. cfg.Inrpp.Config.chunk_bits /. fct
        in
        Format.printf "  flow %c: %.2f Mbps effective (fct %.2f s)@."
          (Char.chr (Char.code 'A' + i))
          (mbps rate) fct
      | None -> Format.printf "  flow %d incomplete@." i)
    r.Inrpp.Protocol.flows;
  Format.printf "  detoured chunks: %d, drops: %d@." r.Inrpp.Protocol.detoured
    r.Inrpp.Protocol.total_drops
