(* Custody caching and the back-pressure wave, step by step.

   A sender pushes open-loop into a 5x bandwidth drop with a
   deliberately small content store.  Watch the router behind the
   bottleneck take chunks into custody, cross its high watermark,
   signal the sender into the closed loop, drain, and release.

     dune exec examples/backpressure_demo.exe
*)

let () =
  (* 0 --10 Mbps--> 1 --2 Mbps--> 2, no alternative path *)
  let b = Topology.Graph.Builder.create () in
  let n0 = Topology.Graph.Builder.add_node b "sender" in
  let n1 = Topology.Graph.Builder.add_node b "bottleneck-router" in
  let n2 = Topology.Graph.Builder.add_node b "receiver" in
  Topology.Graph.Builder.add_edge b ~capacity:10e6 ~delay:2e-3 n0 n1;
  Topology.Graph.Builder.add_edge b ~capacity:2e6 ~delay:2e-3 n1 n2;
  let g = Topology.Graph.Builder.build b in

  let cfg =
    {
      Inrpp.Config.default with
      Inrpp.Config.anticipation = 512;     (* bulk transfer: push everything *)
      cache_bits = 30. *. 80e3;            (* tiny store: 30 chunks *)
    }
  in
  Format.printf
    "store: %g chunks, watermarks engage at %.0f%% / release at %.0f%%@.@."
    (cfg.Inrpp.Config.cache_bits /. cfg.Inrpp.Config.chunk_bits)
    (100. *. cfg.Inrpp.Config.cache_high_water)
    (100. *. cfg.Inrpp.Config.cache_low_water);

  let r =
    Inrpp.Protocol.run ~cfg ~collect_trace:true g
      [ Inrpp.Protocol.flow_spec ~src:0 ~dst:2 150 ]
  in

  (* narrate the interesting part of the trace *)
  let tr = Option.get r.Inrpp.Protocol.trace in
  let interesting = function
    | Chunksim.Trace.Bp_signal _ | Chunksim.Trace.Phase_change _
    | Chunksim.Trace.Flow_complete _ | Chunksim.Trace.Link_fault _
    | Chunksim.Trace.Node_fault _ ->
      true
    | _ -> false
  in
  Format.printf "control-plane timeline:@.";
  List.iter
    (fun (time, e) ->
      Format.printf "  %7.3fs  %a@." time Chunksim.Trace.pp_event e)
    (Chunksim.Trace.find_all tr interesting);

  let cached =
    Chunksim.Trace.count tr (function
      | Chunksim.Trace.Cached _ -> true
      | _ -> false)
  in
  let released =
    Chunksim.Trace.count tr (function
      | Chunksim.Trace.Custody_released _ -> true
      | _ -> false)
  in
  Format.printf "@.custody: %d chunks stored, %d handed on downstream@." cached
    released;
  Format.printf "peak custody occupancy: %a (store %a)@." Sim.Units.pp_size
    r.Inrpp.Protocol.peak_custody_bits Sim.Units.pp_size
    cfg.Inrpp.Config.cache_bits;
  Format.printf "drops: %d — back-pressure kept the 5x overload lossless@."
    r.Inrpp.Protocol.total_drops;
  Format.printf "%a@." Inrpp.Protocol.pp_result r
