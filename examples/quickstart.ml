(* Quickstart: a five-minute tour of the library.

   Build a topology, ask where detours exist, allocate bandwidth under
   e2e max-min and under INRPP, and run one chunk-level INRPP transfer.

     dune exec examples/quickstart.exe
*)

let () =
  (* 1. A topology: the paper's Fig. 3 network (4 nodes; the 2 Mbps
     link 2->4 is the bottleneck; node 3 offers a 5 Mbps detour). *)
  let g = Topology.Builders.fig3 () in
  Format.printf "topology: %a@." Topology.Graph.pp g;

  (* 2. Detour structure (what Table 1 measures). *)
  let profile = Topology.Detour.classify_links g in
  Format.printf "detours:  %a@." Topology.Detour.pp_profile profile;

  (* 3. Bandwidth sharing, e2e vs INRPP (what Fig. 3 argues).
     Flow A: node 1 -> node 4 (ids 0 -> 3); flow B: node 1 -> node 2. *)
  let pairs = [ (0, 3); (0, 1) ] in
  let show label rates =
    Format.printf "%s A=%.1f Mbps, B=%.1f Mbps (Jain %.3f)@." label
      (rates.(0) /. 1e6) (rates.(1) /. 1e6)
      (Metrics.Fairness.jain rates)
  in
  show "e2e:     "
    (Flowsim.Simulator.run_static g ~strategy:Flowsim.Routing.sp pairs);
  show "INRPP:   "
    (Flowsim.Simulator.run_static g
       ~strategy:(Flowsim.Routing.Inrp Flowsim.Allocation.fig3_inrp)
       pairs);

  (* 4. The protocol itself, chunk by chunk: a 2 MB transfer that
     overflows the bottleneck and detours through node 3. *)
  let cfg = { Inrpp.Config.default with Inrpp.Config.anticipation = 512 } in
  let r =
    Inrpp.Protocol.run ~cfg g [ Inrpp.Protocol.flow_spec ~src:0 ~dst:3 200 ]
  in
  Format.printf "transfer: %a@." Inrpp.Protocol.pp_result r
