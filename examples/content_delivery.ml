(* Content delivery on an ISP topology: INRPP against the e2e
   baselines.

   Several consumers at the edge of the synthetic VSNL network fetch
   content from a producer; we compare completion times, losses and
   fairness across INRPP, AIMD, MPTCP and RCP on the same workload —
   the scenario the paper's introduction motivates (ICN transport that
   uses in-network storage instead of e2e probing).

     dune exec examples/content_delivery.exe
*)

let () =
  (* VSNL is the smallest zoo member: 11 nodes, a triangle core, a
     ring, and five stub customers. *)
  let g = Topology.Isp_zoo.graph Topology.Isp_zoo.Vsnl in
  Format.printf "network: %s — %a@." (Topology.Isp_zoo.name Topology.Isp_zoo.Vsnl)
    Topology.Graph.pp g;

  (* the producer sits behind a 2.5 Gbps stub link; three consumers at
     other stubs fetch the same 25 MB object concurrently, so the
     producer's access link is the shared bottleneck *)
  let n = Topology.Graph.node_count g in
  let producer = n - 4 in
  let consumers = [ n - 1; n - 2; n - 3 ] in
  let chunks = 2500 in
  let specs =
    List.map
      (fun dst -> Inrpp.Protocol.flow_spec ~src:producer ~dst chunks)
      consumers
  in
  List.iteri
    (fun i dst ->
      Format.printf "flow %d: %s -> %s, %d chunks (25 MB)@." i
        (Topology.Graph.node g producer).Topology.Node.name
        (Topology.Graph.node g dst).Topology.Node.name chunks)
    consumers;
  Format.printf "@.";

  (* scale the protocol to these 2.5 Gbps stub links: bigger chunks so
     the simulation stays comfortable *)
  let cfg =
    {
      Inrpp.Config.default with
      Inrpp.Config.chunk_bits = 80e3;
      anticipation = 4096;
      cache_bits = 400e6;
      queue_bits = 64. *. 80e3;
    }
  in
  let rows = Baselines.Comparison.run_all ~cfg ~horizon:60. g specs in
  Baselines.Run_result.pp_table Format.std_formatter rows;
  Format.printf "@.";
  match rows with
  | inrpp :: rest ->
    let best_baseline =
      List.fold_left
        (fun acc r ->
          if r.Baselines.Run_result.mean_fct < acc.Baselines.Run_result.mean_fct
          then r
          else acc)
        (List.hd rest) rest
    in
    Format.printf
      "INRPP mean FCT %.3gs vs best baseline (%s) %.3gs; INRPP drops: %d@."
      inrpp.Baselines.Run_result.mean_fct
      best_baseline.Baselines.Run_result.protocol
      best_baseline.Baselines.Run_result.mean_fct
      inrpp.Baselines.Run_result.drops
  | [] -> ()
