let available_domains () = Domain.recommended_domain_count ()

(* Each result slot is written exactly once, by whichever domain
   claimed that index off the shared cursor; the slots are disjoint
   and the Domain.join at the end publishes them to the caller. *)
type 'a slot =
  | Empty
  | Ok_v of 'a
  | Exn of exn * Printexc.raw_backtrace

let run_jobs ?(domains = 1) jobs =
  if domains < 1 then invalid_arg "Parallel.Pool.run_jobs: domains < 1";
  let n = Array.length jobs in
  if n = 0 then [||]
  else begin
    let results = Array.make n Empty in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (results.(i) <-
            (match jobs.(i) () with
            | v -> Ok_v v
            | exception e -> Exn (e, Printexc.get_raw_backtrace ())));
          loop ()
        end
      in
      loop ()
    in
    let extra = min (domains - 1) (n - 1) in
    let spawned = List.init extra (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join spawned;
    (* index-ordered join: the lowest failing index wins, so the
       surfaced exception is independent of completion order *)
    Array.map
      (function
        | Ok_v v -> v
        | Exn (e, bt) -> Printexc.raise_with_backtrace e bt
        | Empty -> assert false)
      results
  end

let map ?domains f xs = run_jobs ?domains (Array.map (fun x () -> f x) xs)

let map_list ?domains f xs =
  Array.to_list (map ?domains f (Array.of_list xs))
