(** Deterministic [Domain]-based pool for embarrassingly parallel
    sweeps (OCaml 5).

    Jobs are independent closures; workers claim them dynamically off
    one shared queue (an atomic cursor — the degenerate work-stealing
    deque where every domain steals from the same global tail), so a
    slow job never idles the other domains.  Determinism comes from
    the join, not the schedule: results are delivered in {e job-index
    order}, whatever the completion order or domain count, so a caller
    that folds the result array produces byte-identical output at
    [~domains:1] and [~domains:64].

    The contract that makes this safe is {e domain locality}: a job
    must own every piece of mutable state it touches (its engine, RNG,
    observer, trace rings, checkers) and may share only immutable
    values with other jobs (topology graphs, configs, fault
    schedules).  See DESIGN §11 — "no cross-domain sharing except the
    job queue". *)

val available_domains : unit -> int
(** [Domain.recommended_domain_count ()] — the host parallelism a
    caller may want to default its [~domains] argument to. *)

val run_jobs : ?domains:int -> (unit -> 'a) array -> 'a array
(** [run_jobs ~domains jobs] executes every job and returns their
    results in job-index order.  [domains] (default [1]) is the total
    worker count including the calling domain; it is clamped to the
    job count, and [~domains:1] runs every job inline in the calling
    domain — the exact sequential schedule.

    If jobs raise, every job still runs to completion and the
    exception of the {e lowest-indexed} failing job is re-raised at
    the join (with its backtrace) — which exception surfaces does not
    depend on the domain count.

    @raise Invalid_argument if [domains < 1]. *)

val map : ?domains:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map ~domains f xs] = [run_jobs ~domains [| fun () -> f xs.(0); ... |]]. *)

val map_list : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** List version of {!map}; result order follows input order. *)
