(** Flight recorder: a bounded ring of the most recent trace events,
    dumped to NDJSON only when something goes wrong (an invariant
    violation, an unrecovered fault).  In a clean run nothing is ever
    written — the dump file is opened lazily on the first dump, so
    clean runs leave no artefact.

    Each dump appends one header line
    [{"type":"flight_dump","reason":...,"t":...,"events":N}] followed
    by the ring's [N] event lines (oldest first, same row shape as
    {!Sink.ndjson}); successive dumps append to the same file.  Dumps
    beyond [max_dumps] are dropped (the ring keeps recording) so a
    pathological run can't fill the disk. *)

type t

val create : ?capacity:int -> ?max_dumps:int -> path:string -> unit -> t
(** Ring of the last [capacity] events (default 4096), at most
    [max_dumps] dumps written (default 8).
    @raise Invalid_argument if [capacity] or [max_dumps] is not
    positive. *)

val record : t -> time:float -> Chunksim.Trace.event -> unit
val sink : t -> Sink.t
(** Record off a live trace.  Closing the sink closes the recorder. *)

val size : t -> int
(** Events currently held (≤ capacity). *)

val seen : t -> int
(** Events recorded over the recorder's lifetime. *)

val dump : t -> reason:string -> time:float -> unit
(** Append a header + the ring's contents to [path].  No-op once
    [max_dumps] dumps have been written. *)

val dumps : t -> int
(** Dumps actually written so far. *)

val contents : t -> (float * Chunksim.Trace.event) list
(** Oldest first. *)

val close : t -> unit
(** Flush and close the dump file if one was opened.  Idempotent. *)
