let labels_to_json labels =
  Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) labels)

let labels_of_json = function
  | Json.Obj fields ->
    let rec conv acc = function
      | [] -> Ok (List.rev acc)
      | (k, Json.Str v) :: rest -> conv ((k, v) :: acc) rest
      | (k, _) :: _ -> Error ("non-string label " ^ k)
    in
    conv [] fields
  | _ -> Error "labels is not an object"

let sample_to_json (s : Metric.sample) =
  let base =
    [
      ("type", Json.Str "metric");
      ("name", Json.Str s.Metric.name);
      ("labels", labels_to_json s.Metric.labels);
    ]
  in
  let value =
    match s.Metric.value with
    | Metric.Counter_v n ->
      [ ("kind", Json.Str "counter"); ("value", Json.Num (float_of_int n)) ]
    | Metric.Gauge_v v -> [ ("kind", Json.Str "gauge"); ("value", Json.Num v) ]
    | Metric.Histogram_v h ->
      [
        ("kind", Json.Str "histogram");
        ("count", Json.Num (float_of_int h.Metric.count));
        ("sum", Json.Num h.Metric.sum);
        ("mean", Json.Num h.Metric.mean);
        ("min", Json.Num h.Metric.min_v);
        ("max", Json.Num h.Metric.max_v);
        ( "buckets",
          Json.List
            (List.map
               (fun (lo, hi, c) ->
                 Json.Obj
                   [
                     ("lo", Json.Num lo);
                     ("hi", Json.Num hi);
                     ("count", Json.Num (float_of_int c));
                   ])
               h.Metric.buckets) );
      ]
  in
  Json.Obj (base @ value)

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let req j key conv what =
  match Option.bind (Json.member key j) conv with
  | Some v -> Ok v
  | None -> Error ("missing or malformed " ^ what ^ " field '" ^ key ^ "'")

(* NaN prints as null (JSON has no NaN literal), so any float field may
   legitimately come back as null — e.g. a NaN gauge callback *)
let req_float j key what =
  match Json.member key j with
  | Some Json.Null -> Ok Float.nan
  | _ -> req j key Json.to_float what

let sample_of_json j =
  let* name = req j "name" Json.to_str "metric" in
  let* labels =
    match Json.member "labels" j with
    | Some l -> labels_of_json l
    | None -> Ok []
  in
  let* kind = req j "kind" Json.to_str "metric" in
  let* value =
    match kind with
    | "counter" ->
      let* n = req j "value" Json.to_int "counter" in
      Ok (Metric.Counter_v n)
    | "gauge" ->
      let* v = req_float j "value" "gauge" in
      Ok (Metric.Gauge_v v)
    | "histogram" ->
      let* count = req j "count" Json.to_int "histogram" in
      let* sum = req_float j "sum" "histogram" in
      let* mean = req_float j "mean" "histogram" in
      let* min_v = req_float j "min" "histogram" in
      let* max_v = req_float j "max" "histogram" in
      let* buckets =
        match Json.member "buckets" j with
        | Some (Json.List bs) ->
          let rec conv acc = function
            | [] -> Ok (List.rev acc)
            | b :: rest ->
              let* lo = req b "lo" Json.to_float "bucket" in
              let* hi = req b "hi" Json.to_float "bucket" in
              let* c = req b "count" Json.to_int "bucket" in
              conv ((lo, hi, c) :: acc) rest
          in
          conv [] bs
        | _ -> Error "missing histogram buckets"
      in
      Ok
        (Metric.Histogram_v
           { Metric.count; sum; mean; min_v; max_v; buckets })
    | k -> Error ("unknown metric kind " ^ k)
  in
  Ok { Metric.name; labels; value }

let point_to_json series ~time v =
  Json.Obj
    [
      ("type", Json.Str "sample");
      ("series", Json.Str (Series.name series));
      ("labels", labels_to_json (Series.labels series));
      ("t", Json.Num time);
      ("v", Json.Num v);
    ]

let point_of_json j =
  let* series = req j "series" Json.to_str "sample" in
  let* labels =
    match Json.member "labels" j with
    | Some l -> labels_of_json l
    | None -> Ok []
  in
  let* time = req j "t" Json.to_float "sample" in
  let* v = req_float j "v" "sample" in
  Ok (series, labels, time, v)

let add_line buf j =
  Json.to_buffer buf j;
  Buffer.add_char buf '\n'

let snapshot_to_ndjson buf samples =
  List.iter (fun s -> add_line buf (sample_to_json s)) samples

let series_to_ndjson buf series =
  List.iter
    (fun s -> Series.iter (fun ~time v -> add_line buf (point_to_json s ~time v)) s)
    series

(* ------------------------------------------------------------------ *)
(* CSV *)

let csv_header = "record,name,labels,time,value"

let labels_to_string labels =
  String.concat ";" (List.map (fun (k, v) -> k ^ "=" ^ v) labels)

let csv_row buf ~record ~name ~labels ~time ~value =
  Buffer.add_string buf
    (Printf.sprintf "%s,%s,%s,%.9g,%.12g\n" record name
       (labels_to_string labels) time value)

let snapshot_to_csv buf ~time samples =
  List.iter
    (fun (s : Metric.sample) ->
      let name = s.Metric.name and labels = s.Metric.labels in
      match s.Metric.value with
      | Metric.Counter_v n ->
        csv_row buf ~record:"counter" ~name ~labels ~time
          ~value:(float_of_int n)
      | Metric.Gauge_v v -> csv_row buf ~record:"gauge" ~name ~labels ~time ~value:v
      | Metric.Histogram_v h ->
        let part suffix value =
          csv_row buf ~record:"histogram" ~name:(name ^ suffix) ~labels ~time
            ~value
        in
        part ".count" (float_of_int h.Metric.count);
        part ".sum" h.Metric.sum;
        part ".mean" h.Metric.mean;
        if h.Metric.count > 0 then begin
          part ".min" h.Metric.min_v;
          part ".max" h.Metric.max_v
        end)
    samples

let series_to_csv buf series =
  List.iter
    (fun s ->
      Series.iter
        (fun ~time v ->
          csv_row buf ~record:"sample" ~name:(Series.name s)
            ~labels:(Series.labels s) ~time ~value:v)
        s)
    series
