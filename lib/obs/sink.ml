module T = Chunksim.Trace

type t = {
  emit_fn : float -> T.event -> unit;
  close_fn : unit -> unit;
}

let emit t ~time e = t.emit_fn time e
let close t = t.close_fn ()
let attach t tr = T.on_record tr t.emit_fn

let callback ?(close = ignore) f = { emit_fn = f; close_fn = close }

let ring tr =
  { emit_fn = (fun time e -> T.record tr ~time e); close_fn = ignore }

let ndjson oc =
  let buf = Buffer.create 256 in
  {
    emit_fn =
      (fun time e ->
        Buffer.clear buf;
        Json.to_buffer buf (Trace_codec.to_json ~time e);
        Buffer.add_char buf '\n';
        Buffer.output_buffer oc buf);
    close_fn = (fun () -> flush oc);
  }

let csv ?(header = true) oc =
  if header then begin
    output_string oc Trace_codec.csv_header;
    output_char oc '\n'
  end;
  {
    emit_fn =
      (fun time e ->
        output_string oc (Trace_codec.to_csv_row ~time e);
        output_char oc '\n');
    close_fn = (fun () -> flush oc);
  }

let counter_tap registry =
  (* one pre-registered counter per kind: the hot path is a match plus
     an int increment *)
  let c kind = Metric.counter registry ~labels:[ ("kind", kind) ] "trace_events_total" in
  let sent = c "sent" and received = c "received" and dropped = c "dropped" in
  let cached = c "cached" and cache_hit = c "cache_hit" in
  let custody_released = c "custody_released" and detoured = c "detoured" in
  let phase_change = c "phase_change" and bp_signal = c "bp_signal" in
  let flow_complete = c "flow_complete" in
  let link_fault = c "link_fault" and node_fault = c "node_fault" in
  let enqueued = c "enqueued" and tx_begin = c "tx_begin" in
  let delivered = c "delivered" and retransmit = c "retransmit" in
  let custody_evacuated = c "custody_evacuated" in
  let custody_evicted = c "custody_evicted" in
  {
    emit_fn =
      (fun _time e ->
        Metric.incr
          (match e with
          | T.Sent _ -> sent
          | T.Received _ -> received
          | T.Dropped _ -> dropped
          | T.Cached _ -> cached
          | T.Cache_hit _ -> cache_hit
          | T.Custody_released _ -> custody_released
          | T.Detoured _ -> detoured
          | T.Phase_change _ -> phase_change
          | T.Bp_signal _ -> bp_signal
          | T.Flow_complete _ -> flow_complete
          | T.Link_fault _ -> link_fault
          | T.Node_fault _ -> node_fault
          | T.Enqueued _ -> enqueued
          | T.Tx_begin _ -> tx_begin
          | T.Delivered _ -> delivered
          | T.Retransmit _ -> retransmit
          | T.Custody_evacuated _ -> custody_evacuated
          | T.Custody_evicted _ -> custody_evicted));
    close_fn = ignore;
  }

let filter pred t =
  {
    emit_fn = (fun time e -> if pred e then t.emit_fn time e);
    close_fn = t.close_fn;
  }

let fan_out sinks =
  {
    emit_fn = (fun time e -> List.iter (fun s -> s.emit_fn time e) sinks);
    close_fn = (fun () -> List.iter (fun s -> s.close_fn ()) sinks);
  }
