(** Periodic timeseries sampler over a {!Sim.Engine}.

    Probes are registered at setup time ([unit -> float] closures); on
    every tick the sampler appends one point per probe to its
    {!Series.t}, all sharing the same timestamp.  Driven by
    {!Sim.Engine.schedule_periodic}, so sampling interleaves correctly
    with the simulation's own events.

    Hooks run before the probes on each tick — use them to advance
    derived state (e.g. phase-occupancy accumulators) exactly once per
    sample. *)

type t

val create :
  eng:Sim.Engine.t -> interval:float -> ?clock:(unit -> float) -> unit -> t
(** [clock] (a wall clock, e.g. [Unix.gettimeofday]) turns on
    self-observation: every {!sample_now} is timed and accumulated
    into {!probe_seconds}, making the sampler's own overhead a
    first-class measurement.  Without it, sampling is untimed and
    {!probe_seconds} stays [0.].
    @raise Invalid_argument if [interval <= 0.]. *)

val interval : t -> float

val track : t -> ?labels:Metric.labels -> string -> (unit -> float) -> Series.t
(** Register a probe; returns its series.  Probes fire in registration
    order. *)

val on_sample : t -> (unit -> unit) -> unit
(** Register a pre-probe hook. *)

val sample_now : t -> unit
(** Take one sample at the engine's current time immediately. *)

val start : ?stop:(unit -> bool) -> t -> unit
(** Take a baseline sample now, then one every [interval] until [stop]
    returns [true] (one final sample is taken at the stopping tick) or
    {!stop} is called.
    @raise Invalid_argument if already started. *)

val stop : t -> unit
(** Cancel the periodic tick (see {!Sim.Engine.cancel_periodic});
    idempotent, no-op before [start].  No further samples are taken. *)

val running : t -> bool
(** [true] between [start] and whichever comes first of [stop] and the
    stop predicate firing. *)

val series : t -> Series.t list
(** Registration order. *)

val find : t -> ?labels:Metric.labels -> string -> Series.t option
val ticks : t -> int

val probe_seconds : t -> float
(** Cumulative wall-clock seconds spent inside {!sample_now} — [0.]
    unless a [clock] was given to {!create}. *)

val self_observing : t -> bool
(** [true] iff a [clock] was given to {!create}. *)
