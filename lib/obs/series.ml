type t = {
  s_name : string;
  s_labels : Metric.labels;
  mutable times : float array;
  mutable values : float array;
  mutable n : int;
}

let create ?(labels = []) name =
  {
    s_name = name;
    s_labels = labels;
    times = Array.make 16 0.;
    values = Array.make 16 0.;
    n = 0;
  }

let name t = t.s_name
let labels t = t.s_labels

let add t ~time v =
  if t.n > 0 && time < t.times.(t.n - 1) then
    invalid_arg "Series.add: time went backwards";
  if t.n = Array.length t.times then begin
    let cap = 2 * t.n in
    let grow a =
      let bigger = Array.make cap 0. in
      Array.blit a 0 bigger 0 t.n;
      bigger
    in
    t.times <- grow t.times;
    t.values <- grow t.values
  end;
  t.times.(t.n) <- time;
  t.values.(t.n) <- v;
  t.n <- t.n + 1

let length t = t.n

let get t i =
  if i < 0 || i >= t.n then invalid_arg "Series.get: index out of bounds";
  (t.times.(i), t.values.(i))

let last t = if t.n = 0 then None else Some (t.times.(t.n - 1), t.values.(t.n - 1))

let iter f t =
  for i = 0 to t.n - 1 do
    f ~time:t.times.(i) t.values.(i)
  done

let to_list t = List.init t.n (fun i -> (t.times.(i), t.values.(i)))

let max_value t =
  let m = ref neg_infinity in
  for i = 0 to t.n - 1 do
    if t.values.(i) > !m then m := t.values.(i)
  done;
  !m
