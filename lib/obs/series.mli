(** Append-only numeric timeseries: [(time, value)] points in two flat
    float arrays (amortised doubling, no boxing on append).  Produced
    by the {!Sampler}; exported by {!Export}. *)

type t

val create : ?labels:Metric.labels -> string -> t
val name : t -> string
val labels : t -> Metric.labels

val add : t -> time:float -> float -> unit
(** @raise Invalid_argument if [time] precedes the last point. *)

val length : t -> int

val get : t -> int -> float * float
(** [(time, value)] of the i-th point, oldest first.
    @raise Invalid_argument out of bounds. *)

val last : t -> (float * float) option
val iter : (time:float -> float -> unit) -> t -> unit
val to_list : t -> (float * float) list

val max_value : t -> float
(** [neg_infinity] when empty. *)
