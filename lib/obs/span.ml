module T = Chunksim.Trace
module Key = Chunksim.Chunk_key

type chunk = {
  c_flow : int;
  c_idx : int;
  mutable c_rev : (float * T.event) list; (* newest first *)
}

type t = {
  chunks : (int, chunk) Hashtbl.t;
  mutable rev_global : (float * T.event) list; (* annotations, newest first *)
  mutable n_events : int;
}

type breakdown = {
  flow : int;
  idx : int;
  first_t : float;
  last_t : float;
  queue_s : float;
  wire_s : float;
  custody_s : float;
  other_s : float;
  hops : int;
  detours : int;
  retransmits : int;
  delivered : bool;
}

let create () =
  { chunks = Hashtbl.create 256; rev_global = []; n_events = 0 }

let chunk_of t ~flow ~idx =
  let key = Key.pack ~flow ~idx in
  match Hashtbl.find_opt t.chunks key with
  | Some c -> c
  | None ->
    let c = { c_flow = flow; c_idx = idx; c_rev = [] } in
    Hashtbl.add t.chunks key c;
    c

(* chunk key of an event, or None for keyless events *)
let event_key = function
  | T.Enqueued { flow; idx; _ }
  | T.Tx_begin { flow; idx; _ }
  | T.Delivered { flow; idx; _ }
  | T.Retransmit { flow; idx }
  | T.Cached { flow; idx; _ }
  | T.Cache_hit { flow; idx; _ }
  | T.Custody_released { flow; idx; _ }
  | T.Custody_evacuated { flow; idx; _ }
  | T.Custody_evicted { flow; idx; _ }
  | T.Detoured { flow; idx; _ } ->
    Some (flow, idx)
  | T.Sent _ | T.Received _ | T.Dropped _ | T.Phase_change _ | T.Bp_signal _
  | T.Flow_complete _ | T.Link_fault _ | T.Node_fault _ ->
    None

let add t ~time e =
  t.n_events <- t.n_events + 1;
  match event_key e with
  | Some (flow, idx) ->
    let c = chunk_of t ~flow ~idx in
    c.c_rev <- (time, e) :: c.c_rev
  | None -> (
    match e with
    | T.Phase_change _ | T.Bp_signal _ | T.Flow_complete _ | T.Link_fault _
    | T.Node_fault _ ->
      t.rev_global <- (time, e) :: t.rev_global
    | _ -> ())

let sink t = Sink.callback (fun time e -> add t ~time e)

let of_events evs =
  let t = create () in
  List.iter (fun (time, e) -> add t ~time e) evs;
  t

let chunk_count t = Hashtbl.length t.chunks
let event_count t = t.n_events

(* sort a chunk's events by timestamp, NaN last; record order breaks
   ties (List.stable_sort) so simultaneous events keep causal order *)
let cmp_ev (a, _) (b, _) =
  match (Float.is_nan a, Float.is_nan b) with
  | true, true -> 0
  | true, false -> 1
  | false, true -> -1
  | false, false -> Float.compare a b

let sorted_events c = List.stable_sort cmp_ev (List.rev c.c_rev)

type stage = Queue | Wire | Custody | Other

let stage_opened = function
  | T.Enqueued _ -> Queue
  | T.Tx_begin _ -> Wire
  | T.Cached _ -> Custody
  | _ -> Other

let interval t0 t1 =
  let d = t1 -. t0 in
  if Float.is_finite d && d > 0. then d else 0.

let breakdown_of c =
  let evs = sorted_events c in
  let queue = ref 0. and wire = ref 0. and custody = ref 0. in
  let other = ref 0. in
  let hops = ref 0 and detours = ref 0 and retransmits = ref 0 in
  let delivered = ref false in
  let rec walk = function
    | (t0, e0) :: ((t1, _) :: _ as rest) ->
      let d = interval t0 t1 in
      (match stage_opened e0 with
      | Queue -> queue := !queue +. d
      | Wire -> wire := !wire +. d
      | Custody -> custody := !custody +. d
      | Other -> other := !other +. d);
      walk rest
    | [ _ ] | [] -> ()
  in
  walk evs;
  List.iter
    (fun (_, e) ->
      match e with
      | T.Tx_begin _ -> incr hops
      | T.Detoured _ -> incr detours
      | T.Retransmit _ -> incr retransmits
      | T.Delivered _ -> delivered := true
      | _ -> ())
    evs;
  let first_t = match evs with (t, _) :: _ -> t | [] -> Float.nan in
  let last_t =
    List.fold_left (fun acc (t, _) -> if Float.is_nan t then acc else t)
      first_t evs
  in
  {
    flow = c.c_flow;
    idx = c.c_idx;
    first_t;
    last_t;
    queue_s = !queue;
    wire_s = !wire;
    custody_s = !custody;
    other_s = !other;
    hops = !hops;
    detours = !detours;
    retransmits = !retransmits;
    delivered = !delivered;
  }

let breakdowns t =
  let bs = Hashtbl.fold (fun _ c acc -> breakdown_of c :: acc) t.chunks [] in
  List.sort
    (fun a b ->
      match Int.compare a.flow b.flow with
      | 0 -> Int.compare a.idx b.idx
      | c -> c)
    bs

let elapsed b = interval b.first_t b.last_t

let report ?(limit = 16) ppf t =
  let bs = breakdowns t in
  if bs = [] then
    Format.fprintf ppf "no chunk lifecycle events (span tracing off?)@."
  else begin
    let n = List.length bs in
    let tq = ref 0. and tw = ref 0. and tc = ref 0. and to_ = ref 0. in
    List.iter
      (fun b ->
        tq := !tq +. b.queue_s;
        tw := !tw +. b.wire_s;
        tc := !tc +. b.custody_s;
        to_ := !to_ +. b.other_s)
      bs;
    let total = !tq +. !tw +. !tc +. !to_ in
    let pct x = if total > 0. then 100. *. x /. total else 0. in
    Format.fprintf ppf
      "Critical path over %d chunks: queue %.4gs (%.1f%%)  wire %.4gs \
       (%.1f%%)  custody %.4gs (%.1f%%)  other %.4gs (%.1f%%)@.@."
      n !tq (pct !tq) !tw (pct !tw) !tc (pct !tc) !to_ (pct !to_);
    let worst =
      List.sort (fun a b -> Float.compare (elapsed b) (elapsed a)) bs
    in
    let rec take k = function
      | [] -> []
      | _ when k = 0 -> []
      | x :: rest -> x :: take (k - 1) rest
    in
    let shown = take limit worst in
    Format.fprintf ppf
      "  %-10s %9s %9s %9s %9s %9s %5s %4s %5s %s@." "chunk" "elapsed"
      "queue" "wire" "custody" "other" "hops" "det" "retx" "done";
    List.iter
      (fun b ->
        Format.fprintf ppf
          "  f%-4d#%-4d %8.4fs %8.4fs %8.4fs %8.4fs %8.4fs %5d %4d %5d %s@."
          b.flow b.idx (elapsed b) b.queue_s b.wire_s b.custody_s b.other_s
          b.hops b.detours b.retransmits
          (if b.delivered then "yes" else "no"))
      shown;
    if n > limit then
      Format.fprintf ppf "  (... %d more chunks, worst %d shown)@."
        (n - limit) limit
  end

(* ------------------------------------------------------------------ *)
(* Chrome trace-event / Perfetto export *)

let us t = t *. 1e6

let node_of = function
  | T.Enqueued { node; _ }
  | T.Delivered { node; _ }
  | T.Cached { node; _ }
  | T.Cache_hit { node; _ }
  | T.Custody_released { node; _ }
  | T.Custody_evacuated { node; _ }
  | T.Custody_evicted { node; _ }
  | T.Detoured { node; _ }
  | T.Phase_change { node; _ }
  | T.Bp_signal { node; _ }
  | T.Node_fault { node; _ }
  | T.Sent { node; _ }
  | T.Received { node; _ }
  | T.Dropped { node; _ } ->
    Some node
  | T.Tx_begin _ | T.Retransmit _ | T.Flow_complete _ | T.Link_fault _ ->
    None

let num x = Json.Num x
let numi i = Json.Num (float_of_int i)
let str s = Json.Str s

let obj_line buf first j =
  if not !first then Buffer.add_string buf ",\n";
  first := false;
  Buffer.add_string buf "    ";
  Json.to_buffer buf j

let stage_name = function
  | Queue -> "queue"
  | Wire -> "wire"
  | Custody -> "custody"
  | Other -> "gap"

let to_perfetto buf t =
  Buffer.add_string buf
    "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  let first = ref true in
  let emit j = obj_line buf first j in
  (* track naming: pid = flow, tid = node *)
  let flows = Hashtbl.create 16 and nodes = Hashtbl.create 16 in
  Hashtbl.iter
    (fun _ c ->
      Hashtbl.replace flows c.c_flow ();
      List.iter
        (fun (_, e) ->
          match node_of e with
          | Some n -> Hashtbl.replace nodes n ()
          | None -> ())
        c.c_rev)
    t.chunks;
  let sorted_keys tbl =
    List.sort Int.compare (Hashtbl.fold (fun k () acc -> k :: acc) tbl [])
  in
  List.iter
    (fun f ->
      emit
        (Json.Obj
           [ ("ph", str "M"); ("name", str "process_name"); ("pid", numi f);
             ("args", Json.Obj [ ("name", str (Printf.sprintf "flow %d" f)) ]);
           ]);
      List.iter
        (fun n ->
          emit
            (Json.Obj
               [ ("ph", str "M"); ("name", str "thread_name"); ("pid", numi f);
                 ("tid", numi n);
                 ("args",
                  Json.Obj [ ("name", str (Printf.sprintf "node %d" n)) ]);
               ]))
        (sorted_keys nodes))
    (sorted_keys flows);
  (* per-chunk slices + causal flow-arrow chain *)
  let chunk_keys =
    List.sort Int.compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.chunks [])
  in
  List.iter
    (fun key ->
      let c = Hashtbl.find t.chunks key in
      let evs =
        List.filter (fun (t0, _) -> not (Float.is_nan t0)) (sorted_events c)
      in
      let name = Printf.sprintf "f%d#%d" c.c_flow c.c_idx in
      let pid = numi c.c_flow in
      (* the node a wire slice belongs to: the last node-bearing event *)
      let cur_node = ref 0 in
      let n_evs = List.length evs in
      List.iteri
        (fun i (t0, e0) ->
          (match node_of e0 with Some n -> cur_node := n | None -> ());
          let tid = numi !cur_node in
          (* stage slice up to the next event *)
          (match List.nth_opt evs (i + 1) with
          | Some (t1, _) when interval t0 t1 > 0. ->
            let stage = stage_opened e0 in
            let args =
              match e0 with
              | T.Enqueued { link; _ } | T.Tx_begin { link; _ } ->
                [ ("link", numi link) ]
              | _ -> []
            in
            emit
              (Json.Obj
                 [ ("ph", str "X"); ("name", str (stage_name stage));
                   ("cat", str "chunk"); ("pid", pid); ("tid", tid);
                   ("ts", num (us t0)); ("dur", num (us (interval t0 t1)));
                   ("args", Json.Obj (("chunk", str name) :: args));
                 ])
          | _ -> ());
          (* causal chain: start / step / finish flow events keyed by
             the packed chunk key *)
          let ph =
            if i = 0 then "s" else if i = n_evs - 1 then "f" else "t"
          in
          let base =
            [ ("ph", str ph); ("id", numi key); ("name", str "chunk");
              ("cat", str "chunk"); ("pid", pid); ("tid", tid);
              ("ts", num (us t0));
            ]
          in
          emit
            (Json.Obj (if ph = "f" then base @ [ ("bp", str "e") ] else base));
          (* notable lifecycle instants *)
          match e0 with
          | T.Retransmit _ | T.Detoured _ | T.Cache_hit _
          | T.Custody_evicted _ | T.Custody_evacuated _ ->
            emit
              (Json.Obj
                 [ ("ph", str "i"); ("name", str (Trace_codec.kind e0));
                   ("cat", str "chunk"); ("s", str "t"); ("pid", pid);
                   ("tid", tid); ("ts", num (us t0));
                 ])
          | _ -> ())
        evs)
    chunk_keys;
  (* global annotations as process-scoped instants on pid 0 *)
  List.iter
    (fun (t0, e) ->
      if not (Float.is_nan t0) then
        emit
          (Json.Obj
             [ ("ph", str "i"); ("name", str (Trace_codec.kind e));
               ("cat", str "net"); ("s", str "g"); ("pid", numi 0);
               ("tid", numi (Option.value ~default:0 (node_of e)));
               ("ts", num (us t0));
             ]))
    (List.rev t.rev_global);
  Buffer.add_string buf "\n]}\n"
