type row = string * int * float * float

let schema = "inrpp-profile/v1"

let sorted rows =
  List.sort (fun (_, _, wa, _) (_, _, wb, _) -> Float.compare wb wa) rows

let to_json ?(extra = []) rows =
  let row_json (kind, events, wall, words) =
    Json.Obj
      [
        ("kind", Json.Str kind);
        ("events", Json.Num (float_of_int events));
        ("wall_s", Json.Num wall);
        ("minor_words", Json.Num words);
      ]
  in
  Json.Obj
    ([
       ("type", Json.Str "profile");
       ("schema", Json.Str schema);
       ("rows", Json.List (List.map row_json (sorted rows)));
     ]
    @ extra)

let of_json j =
  let ( let* ) r f = Result.bind r f in
  let* () =
    match Json.member "type" j with
    | Some (Json.Str "profile") -> Ok ()
    | _ -> Error "profile: type is not \"profile\""
  in
  let* () =
    match Json.member "schema" j with
    | Some (Json.Str s) when s = schema -> Ok ()
    | Some (Json.Str s) -> Error ("profile: unknown schema " ^ s)
    | _ -> Error "profile: missing schema"
  in
  let float_f r name =
    match Option.bind (Json.member name r) Json.to_float with
    | Some x -> Ok x
    | None -> Error (Printf.sprintf "profile row: bad field %S" name)
  in
  let row r =
    let* kind =
      match Option.bind (Json.member "kind" r) Json.to_str with
      | Some s -> Ok s
      | None -> Error "profile row: bad field \"kind\""
    in
    let* events =
      match Option.bind (Json.member "events" r) Json.to_int with
      | Some i -> Ok i
      | None -> Error "profile row: bad field \"events\""
    in
    let* wall = float_f r "wall_s" in
    let* words = float_f r "minor_words" in
    Ok (kind, events, wall, words)
  in
  match Json.member "rows" j with
  | Some (Json.List rs) ->
    let rec conv acc = function
      | [] -> Ok (List.rev acc)
      | r :: rest ->
        let* v = row r in
        conv (v :: acc) rest
    in
    conv [] rs
  | _ -> Error "profile: missing rows"

let report ppf rows =
  match sorted rows with
  | [] -> Format.fprintf ppf "no profile rows (profiler off?)@."
  | rows ->
    let t_wall =
      List.fold_left (fun acc (_, _, w, _) -> acc +. w) 0. rows
    in
    let t_events = List.fold_left (fun acc (_, n, _, _) -> acc + n) 0 rows in
    Format.fprintf ppf "  %-16s %10s %10s %6s %10s %12s@." "kind" "events"
      "wall" "share" "us/event" "words/event";
    List.iter
      (fun (kind, events, wall, words) ->
        let n = float_of_int (max events 1) in
        Format.fprintf ppf "  %-16s %10d %9.4fs %5.1f%% %10.3f %12.1f@." kind
          events wall
          (if t_wall > 0. then 100. *. wall /. t_wall else 0.)
          (1e6 *. wall /. n) (words /. n))
      rows;
    Format.fprintf ppf "  %-16s %10d %9.4fs@." "total" t_events t_wall
