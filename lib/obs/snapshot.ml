let merge_hist name (a : Metric.hist_summary) (b : Metric.hist_summary) :
    Metric.hist_summary =
  let edges_match =
    List.length a.Metric.buckets = List.length b.Metric.buckets
    && List.for_all2
         (fun (lo1, hi1, _) (lo2, hi2, _) -> lo1 = lo2 && hi1 = hi2)
         a.Metric.buckets b.Metric.buckets
  in
  if not edges_match then
    invalid_arg
      (Printf.sprintf "Obs.Snapshot.merge: histogram %s bucket edges differ"
         name);
  let count = a.Metric.count + b.Metric.count in
  let sum = a.Metric.sum +. b.Metric.sum in
  {
    Metric.count;
    sum;
    (* mirrors Sim.Stats.Running.mean: 0. when empty *)
    mean = (if count = 0 then 0. else sum /. float_of_int count);
    min_v = Float.min a.Metric.min_v b.Metric.min_v;
    max_v = Float.max a.Metric.max_v b.Metric.max_v;
    buckets =
      List.map2
        (fun (lo, hi, c1) (_, _, c2) -> (lo, hi, c1 + c2))
        a.Metric.buckets b.Metric.buckets;
  }

let merge_value name a b =
  match (a, b) with
  | Metric.Counter_v x, Metric.Counter_v y -> Metric.Counter_v (x + y)
  | Metric.Gauge_v x, Metric.Gauge_v y -> Metric.Gauge_v (Float.max x y)
  | Metric.Histogram_v x, Metric.Histogram_v y ->
    Metric.Histogram_v (merge_hist name x y)
  | _ ->
    invalid_arg
      (Printf.sprintf "Obs.Snapshot.merge: %s has mismatched value kinds" name)

let merge snapshots =
  (* first-occurrence order across the run list, so the merged output
     is independent of job completion order *)
  let index : (string * Metric.labels, int) Hashtbl.t = Hashtbl.create 64 in
  let merged : Metric.sample array ref = ref (Array.make 0 Metric.{ name = ""; labels = []; value = Counter_v 0 }) in
  let n = ref 0 in
  let push (s : Metric.sample) =
    let key = (s.Metric.name, s.Metric.labels) in
    match Hashtbl.find_opt index key with
    | Some i ->
      let prev = !merged.(i) in
      !merged.(i) <-
        {
          prev with
          Metric.value =
            merge_value s.Metric.name prev.Metric.value s.Metric.value;
        }
    | None ->
      if !n = Array.length !merged then begin
        let grown =
          Array.make
            (max 16 (2 * Array.length !merged))
            Metric.{ name = ""; labels = []; value = Counter_v 0 }
        in
        Array.blit !merged 0 grown 0 !n;
        merged := grown
      end;
      !merged.(!n) <- s;
      Hashtbl.add index key !n;
      incr n
  in
  List.iter (List.iter push) snapshots;
  Array.to_list (Array.sub !merged 0 !n)

let merge_series runs =
  List.concat_map
    (fun (label, series) ->
      List.map
        (fun s ->
          let copy =
            Series.create
              ~labels:(("run", label) :: Series.labels s)
              (Series.name s)
          in
          Series.iter (fun ~time v -> Series.add copy ~time v) s;
          copy)
        series)
    runs
