(** Collapse watchdog: sliding-window goodput detector.

    Feed it every delivery ({!note_delivery}) and a periodic {!tick};
    it maintains goodput over a sliding [window] and a {e decaying}
    peak reference — the peak windowed rate, aged exponentially with
    time constant [peak_tau] so that a one-off startup burst cannot
    anchor the thresholds forever.  When the windowed rate falls below
    [collapse_ratio × peak] it declares a collapse episode — firing
    [on_collapse] {e exactly once} per episode — and the episode ends
    only when the rate recovers past [recovery_ratio × peak]
    ([on_recover], with the measured time-to-recovery).  The reference
    keeps decaying through an episode: recovery is judged against an
    aging memory of pre-collapse goodput, so a long outage's bar
    relaxes towards what the recovered system can actually sustain
    instead of demanding a return to a stale burst level.  The gap
    between the two ratios is the hysteresis that keeps a rate
    hovering at the threshold from generating an episode per sample.

    Pure data structure: no clock, no engine dependency — callers pass
    simulation time in. *)

type t

val create :
  ?window:float ->
  ?collapse_ratio:float ->
  ?recovery_ratio:float ->
  ?min_peak:float ->
  ?peak_tau:float ->
  on_collapse:(time:float -> rate:float -> peak:float -> unit) ->
  ?on_recover:(time:float -> elapsed:float -> unit) ->
  unit ->
  t
(** Defaults: [window] 1 s, ratios 0.3 / 0.7, [peak_tau] 8 × window.
    [min_peak] (bits/s) suppresses the detector until the peak
    windowed rate has reached it — keeps slow ramp-ups from reading as
    collapses (default [0.]: armed from the first delivery); the decay
    can drop the reference back below [min_peak], disarming the
    detector until the rate pushes it up again.  [peak_tau = infinity]
    recovers the undecayed all-time peak.
    @raise Invalid_argument unless [window > 0.], [peak_tau > 0.] and
    [0 < collapse_ratio < recovery_ratio <= 1]. *)

val note_delivery : t -> time:float -> bits:float -> unit
(** A chunk reached its consumer. *)

val tick : t -> time:float -> unit
(** Periodic evaluation — required to detect a collapse during which
    {e nothing} is delivered (no deliveries means no [note_delivery]
    edges to observe it on). *)

val in_collapse : t -> bool
val episodes : t -> int
val peak : t -> float
(** Current (decayed) peak-goodput reference, bits/s. *)

val rate : t -> float
(** Current windowed goodput, bits/s (as of the last note/tick). *)

val recovery_times : t -> float list
(** Per-episode time-to-recovery, episode order; open episodes absent. *)

val total_recovery_time : t -> float
