(** NDJSON / CSV export of metric snapshots and timeseries, with the
    inverse parsers used to verify round-trips.

    Row shapes (NDJSON, one object per line):
    - metric:  [{"type":"metric","name":...,"labels":{...},"kind":
      "counter"|"gauge"|"histogram", ...value fields}]
    - sample:  [{"type":"sample","series":...,"labels":{...},
      "t":...,"v":...}]

    CSV uses one flat schema for both: [record,name,labels,time,value]
    where [labels] is [k=v] pairs joined with [;], histogram summaries
    are flattened to [<name>.count/.sum/.mean/.min/.max] rows, and
    metric rows carry the snapshot time. *)

val sample_to_json : Metric.sample -> Json.t
val sample_of_json : Json.t -> (Metric.sample, string) result
(** Float fields accept [null] as NaN — the printer writes NaN as
    [null] (JSON has no NaN literal), so e.g. a NaN gauge callback
    round-trips. *)

val point_to_json : Series.t -> time:float -> float -> Json.t
val point_of_json :
  Json.t -> (string * Metric.labels * float * float, string) result
(** [(series, labels, time, value)].  A [null] value parses as NaN —
    the printer writes NaN as [null] (JSON has no NaN literal), so the
    pair round-trips. *)

val snapshot_to_ndjson : Buffer.t -> Metric.sample list -> unit
val series_to_ndjson : Buffer.t -> Series.t list -> unit

val csv_header : string
val snapshot_to_csv : Buffer.t -> time:float -> Metric.sample list -> unit
val series_to_csv : Buffer.t -> Series.t list -> unit
(** Rows only — write {!csv_header} once per file yourself. *)

val labels_to_string : Metric.labels -> string
(** [k=v;k2=v2] — the CSV labels cell. *)
