type probe = {
  series : Series.t;
  read : unit -> float;
}

type t = {
  eng : Sim.Engine.t;
  s_interval : float;
  mutable probes : probe list;     (* reverse registration order *)
  mutable hooks : (unit -> unit) list;  (* reverse registration order *)
  mutable started : bool;
  mutable samples : int;
  mutable ticker : Sim.Engine.periodic option;
}

let create ~eng ~interval () =
  if interval <= 0. || Float.is_nan interval then
    invalid_arg "Sampler.create: interval <= 0";
  { eng; s_interval = interval; probes = []; hooks = []; started = false;
    samples = 0; ticker = None }

let interval t = t.s_interval

let track t ?(labels = []) name read =
  let series = Series.create ~labels name in
  t.probes <- { series; read } :: t.probes;
  series

let on_sample t hook = t.hooks <- hook :: t.hooks

let sample_now t =
  let now = Sim.Engine.now t.eng in
  List.iter (fun h -> h ()) (List.rev t.hooks);
  List.iter
    (fun p -> Series.add p.series ~time:now (p.read ()))
    (List.rev t.probes);
  t.samples <- t.samples + 1

let start ?(stop = fun () -> false) t =
  if t.started then invalid_arg "Sampler.start: already started";
  t.started <- true;
  sample_now t;
  t.ticker <-
    Some
      (Sim.Engine.schedule_periodic t.eng ~interval:t.s_interval (fun () ->
           let continue = not (stop ()) in
           sample_now t;
           continue))

let stop t =
  match t.ticker with
  | Some p ->
    Sim.Engine.cancel_periodic p;
    t.ticker <- None
  | None -> ()

let running t =
  match t.ticker with
  | Some p -> Sim.Engine.periodic_active p
  | None -> false

let series t = List.rev_map (fun p -> p.series) t.probes

let find t ?labels name =
  List.find_opt
    (fun s ->
      Series.name s = name
      && match labels with None -> true | Some l -> Series.labels s = l)
    (series t)

let ticks t = t.samples
