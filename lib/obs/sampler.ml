type probe = {
  series : Series.t;
  read : unit -> float;
}

type t = {
  eng : Sim.Engine.t;
  s_interval : float;
  clock : (unit -> float) option;  (* wall clock for self-observation *)
  mutable probes : probe list;     (* reverse registration order *)
  mutable hooks : (unit -> unit) list;  (* reverse registration order *)
  mutable started : bool;
  mutable samples : int;
  mutable probe_s : float;         (* cumulative wall time in sample_now *)
  mutable ticker : Sim.Engine.periodic option;
}

let create ~eng ~interval ?clock () =
  if interval <= 0. || Float.is_nan interval then
    invalid_arg "Sampler.create: interval <= 0";
  { eng; s_interval = interval; clock; probes = []; hooks = [];
    started = false; samples = 0; probe_s = 0.; ticker = None }

let interval t = t.s_interval

let track t ?(labels = []) name read =
  let series = Series.create ~labels name in
  t.probes <- { series; read } :: t.probes;
  series

let on_sample t hook = t.hooks <- hook :: t.hooks

let sample_now t =
  let now = Sim.Engine.now t.eng in
  let t0 = match t.clock with Some c -> c () | None -> 0. in
  List.iter (fun h -> h ()) (List.rev t.hooks);
  List.iter
    (fun p -> Series.add p.series ~time:now (p.read ()))
    (List.rev t.probes);
  (match t.clock with
  | Some c -> t.probe_s <- t.probe_s +. (c () -. t0)
  | None -> ());
  t.samples <- t.samples + 1

let start ?(stop = fun () -> false) t =
  if t.started then invalid_arg "Sampler.start: already started";
  t.started <- true;
  sample_now t;
  t.ticker <-
    Some
      (Sim.Engine.schedule_periodic t.eng ~interval:t.s_interval (fun () ->
           let continue = not (stop ()) in
           sample_now t;
           continue))

let stop t =
  match t.ticker with
  | Some p ->
    Sim.Engine.cancel_periodic p;
    t.ticker <- None
  | None -> ()

let running t =
  match t.ticker with
  | Some p -> Sim.Engine.periodic_active p
  | None -> false

let series t = List.rev_map (fun p -> p.series) t.probes

let find t ?labels name =
  List.find_opt
    (fun s ->
      Series.name s = name
      && match labels with None -> true | Some l -> Series.labels s = l)
    (series t)

let ticks t = t.samples
let probe_seconds t = t.probe_s
let self_observing t = t.clock <> None
