type t = {
  o_registry : Metric.t;
  mutable o_sinks : Sink.t list;
  sample_interval : float option;
  mutable o_sampler : Sampler.t option;
}

let create ?sample_interval ?(sinks = []) () =
  (match sample_interval with
  | Some i when i <= 0. || Float.is_nan i ->
    invalid_arg "Observer.create: sample_interval <= 0"
  | _ -> ());
  { o_registry = Metric.create (); o_sinks = sinks; sample_interval;
    o_sampler = None }

let registry t = t.o_registry
let sinks t = t.o_sinks
let add_sink t s = t.o_sinks <- t.o_sinks @ [ s ]

let attach_trace t tr = List.iter (fun s -> Sink.attach s tr) t.o_sinks

let install_sampler t ~eng ~default_interval =
  if t.o_sampler <> None then
    invalid_arg "Observer.install_sampler: sampler already installed";
  let interval = Option.value ~default:default_interval t.sample_interval in
  let s = Sampler.create ~eng ~interval () in
  t.o_sampler <- Some s;
  s

let sampler t = t.o_sampler

let series t =
  match t.o_sampler with
  | None -> []
  | Some s -> Sampler.series s

let find_series t ?labels name =
  match t.o_sampler with
  | None -> None
  | Some s -> Sampler.find s ?labels name

let snapshot t = Metric.snapshot t.o_registry

let close t = List.iter Sink.close t.o_sinks
