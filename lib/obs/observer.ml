type t = {
  o_registry : Metric.t;
  mutable o_sinks : Sink.t list;
  sample_interval : float option;
  mutable o_sampler : Sampler.t option;
  o_spans : Span.t option;
  o_recorder : Recorder.t option;
  o_profile : bool;
  o_clock : (unit -> float) option;
  mutable o_profile_rows : Profile.row list;
}

let create ?sample_interval ?(sinks = []) ?spans ?recorder ?(profile = false)
    ?clock () =
  (match sample_interval with
  | Some i when i <= 0. || Float.is_nan i ->
    invalid_arg "Observer.create: sample_interval <= 0"
  | _ -> ());
  let sinks =
    sinks
    @ (match spans with Some sp -> [ Span.sink sp ] | None -> [])
    @ (match recorder with Some r -> [ Recorder.sink r ] | None -> [])
  in
  { o_registry = Metric.create (); o_sinks = sinks; sample_interval;
    o_sampler = None; o_spans = spans; o_recorder = recorder;
    o_profile = profile; o_clock = clock; o_profile_rows = [] }

let registry t = t.o_registry
let sinks t = t.o_sinks
let add_sink t s = t.o_sinks <- t.o_sinks @ [ s ]

let attach_trace t tr = List.iter (fun s -> Sink.attach s tr) t.o_sinks

let spans t = t.o_spans
let recorder t = t.o_recorder
let profile_requested t = t.o_profile
let clock t = t.o_clock
let set_profile_rows t rows = t.o_profile_rows <- rows
let profile_rows t = t.o_profile_rows

let install_sampler t ~eng ~default_interval =
  if t.o_sampler <> None then
    invalid_arg "Observer.install_sampler: sampler already installed";
  let interval = Option.value ~default:default_interval t.sample_interval in
  let s = Sampler.create ~eng ~interval ?clock:t.o_clock () in
  t.o_sampler <- Some s;
  s

let sampler t = t.o_sampler

let series t =
  match t.o_sampler with
  | None -> []
  | Some s -> Sampler.series s

let find_series t ?labels name =
  match t.o_sampler with
  | None -> None
  | Some s -> Sampler.find s ?labels name

let snapshot t = Metric.snapshot t.o_registry

let close t = List.iter Sink.close t.o_sinks
