(** Causal chunk-lifecycle spans.

    A collector folds the trace's chunk-lifecycle events (see
    {!Chunksim.Trace.set_lifecycle}) into one per-chunk timeline keyed
    by the packed {!Chunksim.Chunk_key}, and derives from each
    timeline a {e critical-path breakdown}: the chunk's elapsed time
    partitioned into lifecycle stages —

    - {b queue}: admitted to an output queue, waiting to serialise
      ([Enqueued] → [Tx_begin]);
    - {b wire}: serialisation + propagation ([Tx_begin] → the next
      event downstream);
    - {b custody}: held in a custody store ([Cached] →
      [Custody_released]/[_evacuated]/[_evicted]);
    - {b other}: everything else (sender pacing gaps between
      retransmit copies, request-plane stalls).

    Events are sorted per chunk by timestamp before attribution: the
    lazy fast-path transmitter records [Tx_begin] with virtual start
    times that may precede earlier-recorded events.  Attribution is
    sequential — each inter-event interval is charged to the stage the
    {e earlier} event opened — so the four stages always sum exactly
    to the chunk's elapsed time.  When a retransmit puts concurrent
    copies of one chunk in flight, their interleaved events trade
    attribution between stages (the total stays exact); the
    [retransmits] count flags affected chunks.

    The collector also exports the whole run as Chrome trace-event /
    Perfetto-loadable JSON: one track per (flow = process, node =
    thread), an "X" complete slice per stage interval, and an
    "s"/"t"/"f" flow-arrow chain per chunk (id = the packed chunk key)
    carrying the causal parent links across nodes. *)

type t

type breakdown = {
  flow : int;
  idx : int;
  first_t : float;
  last_t : float;
  queue_s : float;
  wire_s : float;
  custody_s : float;
  other_s : float;
  hops : int;         (** [Tx_begin] count (retransmit copies included) *)
  detours : int;
  retransmits : int;
  delivered : bool;
}

val create : unit -> t

val add : t -> time:float -> Chunksim.Trace.event -> unit
(** Feed one event.  Chunk-lifecycle and per-chunk custody/detour
    events accumulate under their chunk key; [Phase_change],
    [Bp_signal], fault and [Flow_complete] events are kept as global
    annotations for the Perfetto export; [Sent]/[Received]/[Dropped]
    carry no chunk key and are ignored. *)

val sink : t -> Sink.t
(** Collect off a live trace (attach via an {!Observer} sink list or
    {!Sink.attach}). *)

val of_events : (float * Chunksim.Trace.event) list -> t

val chunk_count : t -> int
val event_count : t -> int

val breakdowns : t -> breakdown list
(** One per chunk, sorted by (flow, idx).  NaN-timestamped events sort
    last and contribute zero-width intervals. *)

val report : ?limit:int -> Format.formatter -> t -> unit
(** Per-chunk critical-path table (worst elapsed first, [limit] rows —
    default 16) plus a stage-total summary line. *)

val to_perfetto : Buffer.t -> t -> unit
(** Chrome trace-event JSON ([{"traceEvents":[...],...}]), timestamps
    in microseconds of simulated time.  Loadable by Perfetto /
    chrome://tracing. *)
