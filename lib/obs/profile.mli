(** Export and rendering of the engine self-profiler's per-event-kind
    rows (see {!Sim.Engine.profile_rows}).

    A row is [(kind, events, wall_s, minor_words)]: the number of
    engine events attributed to [kind], the wall-clock seconds and the
    minor-heap words their handlers cost in total.  Attribution is by
    {!Sim.Engine.profile_mark} — handlers that never mark land in the
    ["other"] row. *)

type row = string * int * float * float

val to_json : ?extra:(string * Json.t) list -> row list -> Json.t
(** [{"type":"profile","schema":"inrpp-profile/v1","rows":[...]}],
    rows sorted by wall-clock descending, [extra] fields appended to
    the top-level object. *)

val of_json : Json.t -> (row list, string) result
(** Inverse of {!to_json} (row order preserved). *)

val report : Format.formatter -> row list -> unit
(** Table sorted by wall-clock share descending, with per-event
    averages (µs and minor words per event). *)
