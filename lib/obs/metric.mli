(** Typed metrics registry: labelled counters, gauges and histograms.

    A registry is a set of named instruments, each identified by a
    [(name, labels)] pair.  Instruments are created once (setup time)
    and return a concrete handle; the hot-path update operations
    ({!incr}, {!add}, {!set}, {!observe}) work on the handle directly —
    a single mutable-field write, no lookup, no closure, no allocation
    (counters are int fields, gauges are unboxed float records).

    [Callback] instruments read their value lazily at snapshot time —
    the cheapest way to expose counters a subsystem already maintains
    (e.g. {!Inrpp.Router.counters}) without touching its hot path.

    Histograms reuse {!Sim.Stats.Histogram} for bucketing and
    {!Sim.Stats.Running} for exact moments. *)

type t
(** A registry. *)

type labels = (string * string) list
(** Label pairs, e.g. [["node", "3"; "link", "7"]].  Order is part of
    the identity: register with a fixed order per metric family. *)

type counter
type gauge
type histogram

val create : unit -> t

(** {1 Registration (setup path)}

    All raise [Invalid_argument] on a duplicate [(name, labels)]. *)

val counter : t -> ?labels:labels -> string -> counter
val gauge : t -> ?labels:labels -> string -> gauge

val histogram :
  t -> ?labels:labels -> lo:float -> hi:float -> bins:int -> string ->
  histogram
(** Fixed linear buckets over [[lo, hi)] plus exact count/sum/min/max
    (out-of-range observations clamp into the edge buckets, as in
    {!Sim.Stats.Histogram}). *)

val callback : t -> ?labels:labels -> string -> (unit -> float) -> unit
(** Gauge whose value is read at snapshot time. *)

(** {1 Hot path — O(1), allocation-free} *)

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

val set : gauge -> float -> unit
val gauge_add : gauge -> float -> unit
val gauge_value : gauge -> float

val observe : histogram -> float -> unit

(** {1 Snapshot} *)

type hist_summary = {
  count : int;
  sum : float;
  mean : float;
  min_v : float;  (** [infinity] when empty *)
  max_v : float;  (** [neg_infinity] when empty *)
  buckets : (float * float * int) list;  (** [(lo, hi, count)] *)
}

type value =
  | Counter_v of int
  | Gauge_v of float
  | Histogram_v of hist_summary

type sample = {
  name : string;
  labels : labels;
  value : value;
}

val snapshot : t -> sample list
(** One sample per registered instrument, in registration order.
    Callback gauges are invoked here. *)

val size : t -> int
(** Registered instruments. *)
