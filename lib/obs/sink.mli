(** Pluggable trace sinks: stream {!Chunksim.Trace} events somewhere
    as they are recorded, instead of (or in addition to) the bounded
    in-memory ring.

    A sink is attached to a trace with {!attach}, which registers it
    as a {!Chunksim.Trace.on_record} tap.  Sinks compose: attach
    several, or build one {!fan_out}.  Typical composition for a probe
    run: ring (already inside the trace) + NDJSON file + per-kind
    counter tap. *)

type t

val emit : t -> time:float -> Chunksim.Trace.event -> unit
val close : t -> unit
(** Flush/close underlying resources.  Idempotent for the built-in
    sinks. *)

val attach : t -> Chunksim.Trace.t -> unit

(** {1 Constructors} *)

val callback :
  ?close:(unit -> unit) -> (float -> Chunksim.Trace.event -> unit) -> t
(** [close] (default no-op) runs on {!close}. *)

val ring : Chunksim.Trace.t -> t
(** Forward into {e another} bounded ring (e.g. a small recent-events
    window next to a full file sink).  Never attach a trace's ring
    sink to itself. *)

val ndjson : out_channel -> t
(** One {!Trace_codec.to_json} object per line.  [close] flushes but
    does not close the channel (the caller owns it). *)

val csv : ?header:bool -> out_channel -> t
(** {!Trace_codec.csv_header} columns; [header] (default true) writes
    the header line immediately. *)

val counter_tap : Metric.t -> t
(** Registers one counter [trace_events_total{kind=...}] per event
    kind in the registry and bumps the matching one per event —
    allocation-free per event. *)

val filter : (Chunksim.Trace.event -> bool) -> t -> t
(** Pass only matching events through. *)

val fan_out : t list -> t
