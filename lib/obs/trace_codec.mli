(** Serialisation of {!Chunksim.Trace} events to JSON and CSV — the
    wire format of the streaming {!Sink}s and the probe CLI. *)

val kind : Chunksim.Trace.event -> string
(** Stable snake_case tag, e.g. ["phase_change"]. *)

val all_kinds : string list

val to_json : time:float -> Chunksim.Trace.event -> Json.t
(** [{"type":"event","t":...,"kind":...,...}] with only the fields the
    variant carries. *)

val of_json : Json.t -> (float * Chunksim.Trace.event, string) result
(** Inverse of {!to_json}: [(time, event)].  A [null] time parses as
    NaN — the printer writes NaN as [null] (JSON has no NaN literal),
    so the pair round-trips. *)

val csv_header : string
(** [t,kind,node,link,flow,idx,via,phase,engage,packet,fct] — fixed
    columns, empty when not applicable. *)

val to_csv_row : time:float -> Chunksim.Trace.event -> string
