(** Merging the observable output of several independent runs into one
    aggregate — the join step of a domain-parallel sweep
    ({!Parallel.Pool} customers take one snapshot per run {e inside}
    the owning domain, then merge at the join).

    Merge semantics, per [(name, labels)] instrument identity:
    - {e counters} sum;
    - {e histograms} sum (bucket counts, totals; min/max combine) —
      every run must have registered the histogram with identical
      bucket edges;
    - {e gauges} (and callback gauges) keep the {e maximum} across
      runs: a gauge is an instantaneous level (queue depth, custody
      bits), so the merged value reads as "peak across runs".  Callers
      needing a different gauge aggregation should merge the per-run
      snapshots themselves.

    Order is deterministic: instruments appear in the order they first
    occur across the run list (run 0's instruments first, then any
    new ones from run 1, ...), independent of how the runs were
    scheduled. *)

val merge : Metric.sample list list -> Metric.sample list
(** Merge per-run snapshots ([Metric.snapshot] output).
    @raise Invalid_argument if the same [(name, labels)] instrument
    appears with different value kinds or different histogram bucket
    edges across runs. *)

val merge_series : (string * Series.t list) list -> Series.t list
(** [merge_series [(label, series_of_run); ...]] concatenates the
    per-run series lists in run order; each series is copied with a
    [("run", label)] pair prepended to its labels so same-named series
    from different runs stay distinguishable in exports. *)
