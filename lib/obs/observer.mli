(** One handle bundling everything an instrumented run produces: a
    metrics {!Metric.t} registry, trace {!Sink.t}s and (once the run
    wires it) a periodic {!Sampler.t}.

    The caller builds an observer, passes it to an instrumented runner
    ([Inrpp.Protocol.run ~obs], [Flowsim.Simulator.run ~obs],
    [Baselines.Harness.run_pull ~obs]); the runner attaches the sinks
    to its trace, registers its gauges/counters and installs the
    sampler.  Afterwards the caller reads {!series} and
    [Metric.snapshot (registry obs)] and exports with {!Export}. *)

type t

val create : ?sample_interval:float -> ?sinks:Sink.t list -> unit -> t
(** [sample_interval] overrides the runner's default sampling period
    (seconds).  @raise Invalid_argument if non-positive. *)

val registry : t -> Metric.t
val sinks : t -> Sink.t list

val add_sink : t -> Sink.t -> unit
(** Append a sink before handing the observer to a runner — needed
    for sinks built over this observer's own registry, e.g.
    [add_sink o (Sink.counter_tap (registry o))]. *)

val attach_trace : t -> Chunksim.Trace.t -> unit
(** Attach every sink as a tap.  Called by the instrumented runner. *)

val install_sampler : t -> eng:Sim.Engine.t -> default_interval:float -> Sampler.t
(** Create (once) and remember the sampler, using [sample_interval]
    when given, else [default_interval].  Called by the instrumented
    runner; @raise Invalid_argument if a sampler is already installed
    (an observer instruments one run). *)

val sampler : t -> Sampler.t option
val series : t -> Series.t list
(** [[]] before a sampler is installed. *)

val find_series : t -> ?labels:Metric.labels -> string -> Series.t option
val snapshot : t -> Metric.sample list

val close : t -> unit
(** Close all sinks (flush files). *)
