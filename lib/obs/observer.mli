(** One handle bundling everything an instrumented run produces: a
    metrics {!Metric.t} registry, trace {!Sink.t}s and (once the run
    wires it) a periodic {!Sampler.t}.

    The caller builds an observer, passes it to an instrumented runner
    ([Inrpp.Protocol.run ~obs], [Flowsim.Simulator.run ~obs],
    [Baselines.Harness.run_pull ~obs]); the runner attaches the sinks
    to its trace, registers its gauges/counters and installs the
    sampler.  Afterwards the caller reads {!series} and
    [Metric.snapshot (registry obs)] and exports with {!Export}. *)

type t

val create :
  ?sample_interval:float ->
  ?sinks:Sink.t list ->
  ?spans:Span.t ->
  ?recorder:Recorder.t ->
  ?profile:bool ->
  ?clock:(unit -> float) ->
  unit ->
  t
(** [sample_interval] overrides the runner's default sampling period
    (seconds).  [spans] and [recorder] are appended to [sinks] (as
    {!Span.sink} / {!Recorder.sink}) and remembered so the runner can
    enable lifecycle tracing, trigger flight dumps and the caller can
    read them back.  [profile] asks the runner to run the engine
    self-profiler (see {!Sim.Engine.profile_start}) and publish its
    rows via {!profile_rows}.  [clock] is the wall clock used by the
    profiler and the sampler's self-observation (e.g.
    [Unix.gettimeofday]); without it the profiler falls back to the
    engine's default clock and the sampler is untimed.
    @raise Invalid_argument if [sample_interval] is non-positive. *)

val registry : t -> Metric.t
val sinks : t -> Sink.t list

val add_sink : t -> Sink.t -> unit
(** Append a sink before handing the observer to a runner — needed
    for sinks built over this observer's own registry, e.g.
    [add_sink o (Sink.counter_tap (registry o))]. *)

val attach_trace : t -> Chunksim.Trace.t -> unit
(** Attach every sink as a tap.  Called by the instrumented runner. *)

val install_sampler : t -> eng:Sim.Engine.t -> default_interval:float -> Sampler.t
(** Create (once) and remember the sampler, using [sample_interval]
    when given, else [default_interval].  Called by the instrumented
    runner; @raise Invalid_argument if a sampler is already installed
    (an observer instruments one run). *)

val sampler : t -> Sampler.t option
val series : t -> Series.t list
(** [[]] before a sampler is installed. *)

(** {1 Tracing, profiling, flight recording} *)

val spans : t -> Span.t option
(** When set, the runner enables chunk-lifecycle trace events (see
    {!Chunksim.Trace.set_lifecycle}) and wires the per-interface
    transmit taps, so the span collector sees the full causal
    timeline. *)

val recorder : t -> Recorder.t option
(** When set, the runner dumps the flight ring on invariant violations
    and unrecovered faults. *)

val profile_requested : t -> bool
val clock : t -> (unit -> float) option

val set_profile_rows : t -> Profile.row list -> unit
(** Called by the runner after the run with
    [Sim.Engine.profile_rows eng]. *)

val profile_rows : t -> Profile.row list
(** [[]] unless [profile] was requested and the run finished. *)

val find_series : t -> ?labels:Metric.labels -> string -> Series.t option
val snapshot : t -> Metric.sample list

val close : t -> unit
(** Close all sinks (flush files). *)
