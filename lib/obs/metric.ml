type labels = (string * string) list

type counter = { mutable count : int }

(* single-float record: flat representation, [set] writes in place *)
type gauge = { mutable value : float }

type histogram = {
  histo : Sim.Stats.Histogram.t;
  running : Sim.Stats.Running.t;
}

type instrument =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram
  | Callback of (unit -> float)

type entry = {
  e_name : string;
  e_labels : labels;
  instrument : instrument;
}

type t = {
  index : (string * labels, unit) Hashtbl.t;
  mutable entries : entry list;  (* reverse registration order *)
  mutable n : int;
}

let create () = { index = Hashtbl.create 64; entries = []; n = 0 }

let register t ~name ~labels instrument =
  let key = (name, labels) in
  if Hashtbl.mem t.index key then
    invalid_arg
      (Printf.sprintf "Metric.register: duplicate %s{%s}" name
         (String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) labels)));
  Hashtbl.add t.index key ();
  t.entries <- { e_name = name; e_labels = labels; instrument } :: t.entries;
  t.n <- t.n + 1

let counter t ?(labels = []) name =
  let c = { count = 0 } in
  register t ~name ~labels (Counter c);
  c

let gauge t ?(labels = []) name =
  let g = { value = 0. } in
  register t ~name ~labels (Gauge g);
  g

let histogram t ?(labels = []) ~lo ~hi ~bins name =
  let h =
    {
      histo = Sim.Stats.Histogram.create ~lo ~hi ~bins;
      running = Sim.Stats.Running.create ();
    }
  in
  register t ~name ~labels (Histogram h);
  h

let callback t ?(labels = []) name f = register t ~name ~labels (Callback f)

(* hot path *)
let incr c = c.count <- c.count + 1
let add c n = c.count <- c.count + n
let counter_value c = c.count
let set g v = g.value <- v
let gauge_add g v = g.value <- g.value +. v
let gauge_value g = g.value

let observe h v =
  Sim.Stats.Histogram.add h.histo v;
  Sim.Stats.Running.add h.running v

(* snapshot *)
type hist_summary = {
  count : int;
  sum : float;
  mean : float;
  min_v : float;
  max_v : float;
  buckets : (float * float * int) list;
}

type value =
  | Counter_v of int
  | Gauge_v of float
  | Histogram_v of hist_summary

type sample = {
  name : string;
  labels : labels;
  value : value;
}

let summarise h =
  let edges = Sim.Stats.Histogram.bin_edges h.histo in
  let counts = Sim.Stats.Histogram.counts h.histo in
  let buckets =
    List.init (Array.length counts) (fun i ->
        (edges.(i), edges.(i + 1), counts.(i)))
  in
  {
    count = Sim.Stats.Running.count h.running;
    sum = Sim.Stats.Running.sum h.running;
    mean = Sim.Stats.Running.mean h.running;
    min_v = Sim.Stats.Running.min h.running;
    max_v = Sim.Stats.Running.max h.running;
    buckets;
  }

let snapshot t =
  List.rev_map
    (fun e ->
      let value =
        match e.instrument with
        | Counter c -> Counter_v c.count
        | Gauge g -> Gauge_v g.value
        | Histogram h -> Histogram_v (summarise h)
        | Callback f -> Gauge_v (f ())
      in
      { name = e.e_name; labels = e.e_labels; value })
    t.entries

let size t = t.n
