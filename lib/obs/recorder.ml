module T = Chunksim.Trace

type t = {
  capacity : int;
  max_dumps : int;
  path : string;
  times : float array;
  events : T.event array;
  mutable head : int; (* next write slot *)
  mutable count : int; (* events held, <= capacity *)
  mutable total : int; (* events ever recorded *)
  mutable n_dumps : int;
  mutable oc : out_channel option; (* opened on first dump *)
  mutable closed : bool;
}

let filler = T.Retransmit { flow = 0; idx = 0 }

let create ?(capacity = 4096) ?(max_dumps = 8) ~path () =
  if capacity <= 0 then invalid_arg "Recorder.create: capacity <= 0";
  if max_dumps <= 0 then invalid_arg "Recorder.create: max_dumps <= 0";
  {
    capacity;
    max_dumps;
    path;
    times = Array.make capacity 0.;
    events = Array.make capacity filler;
    head = 0;
    count = 0;
    total = 0;
    n_dumps = 0;
    oc = None;
    closed = false;
  }

let record t ~time e =
  t.times.(t.head) <- time;
  t.events.(t.head) <- e;
  t.head <- (t.head + 1) mod t.capacity;
  if t.count < t.capacity then t.count <- t.count + 1;
  t.total <- t.total + 1

let size t = t.count
let seen t = t.total
let dumps t = t.n_dumps

let iter_oldest_first t f =
  let start = (t.head - t.count + t.capacity * 2) mod t.capacity in
  for i = 0 to t.count - 1 do
    let j = (start + i) mod t.capacity in
    f t.times.(j) t.events.(j)
  done

let contents t =
  let acc = ref [] in
  iter_oldest_first t (fun time e -> acc := (time, e) :: !acc);
  List.rev !acc

let channel t =
  match t.oc with
  | Some oc -> oc
  | None ->
    let oc = open_out t.path in
    t.oc <- Some oc;
    oc

let dump t ~reason ~time =
  if (not t.closed) && t.n_dumps < t.max_dumps then begin
    t.n_dumps <- t.n_dumps + 1;
    let oc = channel t in
    let buf = Buffer.create 256 in
    Json.to_buffer buf
      (Json.Obj
         [
           ("type", Json.Str "flight_dump");
           ("reason", Json.Str reason);
           ("t", Json.Num time);
           ("events", Json.Num (float_of_int t.count));
         ]);
    Buffer.add_char buf '\n';
    iter_oldest_first t (fun etime e ->
        Json.to_buffer buf (Trace_codec.to_json ~time:etime e);
        Buffer.add_char buf '\n');
    Buffer.output_buffer oc buf;
    flush oc
  end

let close t =
  if not t.closed then begin
    t.closed <- true;
    match t.oc with
    | Some oc ->
      t.oc <- None;
      close_out oc
    | None -> ()
  end

let sink t =
  Sink.callback ~close:(fun () -> close t) (fun time e -> record t ~time e)
