type t = {
  window : float;
  collapse_ratio : float;
  recovery_ratio : float;
  min_peak : float;
  peak_tau : float;                   (* decay constant of the reference *)
  on_collapse : time:float -> rate:float -> peak:float -> unit;
  on_recover : time:float -> elapsed:float -> unit;
  samples : (float * float) Queue.t;  (* (time, bits) deliveries *)
  mutable window_bits : float;
  mutable peak : float;
  mutable last_seen : float;          (* nan before the first sample/tick *)
  mutable collapsed_at : float;       (* nan when not in an episode *)
  mutable episodes : int;
  mutable recoveries : float list;    (* reverse order *)
}

let create ?(window = 1.0) ?(collapse_ratio = 0.3) ?(recovery_ratio = 0.7)
    ?(min_peak = 0.) ?peak_tau ~on_collapse
    ?(on_recover = fun ~time:_ ~elapsed:_ -> ()) () =
  if window <= 0. then invalid_arg "Watchdog.create: window <= 0";
  if
    not (0. < collapse_ratio && collapse_ratio < recovery_ratio
         && recovery_ratio <= 1.)
  then
    invalid_arg "Watchdog.create: need 0 < collapse_ratio < recovery_ratio <= 1";
  let peak_tau =
    match peak_tau with Some tau -> tau | None -> 8. *. window
  in
  if peak_tau <= 0. then invalid_arg "Watchdog.create: peak_tau <= 0";
  {
    window;
    collapse_ratio;
    recovery_ratio;
    min_peak;
    peak_tau;
    on_collapse;
    on_recover;
    samples = Queue.create ();
    window_bits = 0.;
    peak = 0.;
    last_seen = Float.nan;
    collapsed_at = Float.nan;
    episodes = 0;
    recoveries = [];
  }

let evict t ~time =
  let horizon = time -. t.window in
  let rec go () =
    match Queue.peek_opt t.samples with
    | Some (at, bits) when at < horizon ->
      ignore (Queue.pop t.samples);
      t.window_bits <- t.window_bits -. bits;
      go ()
    | Some _ | None -> ()
  in
  go ()

let rate t = t.window_bits /. t.window
let in_collapse t = not (Float.is_nan t.collapsed_at)

(* Age the peak reference towards the current rate: without decay, one
   startup delivery burst would anchor the thresholds forever — steady
   operation at a third of that burst would read as a permanent
   "collapse" with an unreachable recovery bar.  Decay continues
   through an episode, so a long outage's recovery bar relaxes towards
   levels the recovered system can actually sustain; [min_peak] is the
   floor below which the aged reference disarms the detector
   entirely. *)
let advance t ~time =
  (if (not (Float.is_nan t.last_seen)) && time > t.last_seen then
     t.peak <- t.peak *. exp (-.(time -. t.last_seen) /. t.peak_tau));
  t.last_seen <- time

(* One evaluation of the detector.  Fires [on_collapse] exactly once
   per episode (at the collapse edge) and [on_recover] once when the
   windowed rate climbs back past the recovery threshold — the
   hysteresis gap between the two ratios prevents edge chatter. *)
let check t ~time =
  if t.peak >= t.min_peak && t.peak > 0. then begin
    let r = rate t in
    if in_collapse t then begin
      if r >= t.recovery_ratio *. t.peak then begin
        let elapsed = time -. t.collapsed_at in
        t.collapsed_at <- Float.nan;
        t.recoveries <- elapsed :: t.recoveries;
        t.on_recover ~time ~elapsed
      end
    end
    else if r < t.collapse_ratio *. t.peak then begin
      t.collapsed_at <- time;
      t.episodes <- t.episodes + 1;
      t.on_collapse ~time ~rate:r ~peak:t.peak
    end
  end

let note_delivery t ~time ~bits =
  advance t ~time;
  evict t ~time;
  Queue.add (time, bits) t.samples;
  t.window_bits <- t.window_bits +. bits;
  let r = rate t in
  if r > t.peak then t.peak <- r;
  check t ~time

let tick t ~time =
  advance t ~time;
  evict t ~time;
  let r = rate t in
  if r > t.peak then t.peak <- r;
  check t ~time

let episodes t = t.episodes
let peak t = t.peak
let recovery_times t = List.rev t.recoveries
let total_recovery_time t = List.fold_left ( +. ) 0. t.recoveries
