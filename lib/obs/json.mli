(** Minimal JSON values: enough for NDJSON export of metrics, trace
    events and timeseries, plus a parser so exports round-trip (the
    probe CLI and the tests both read their own output back).

    Numbers are printed with the shortest decimal representation that
    parses back to the same float, so [parse (to_string j) = Ok j]
    holds for every value this module itself produces. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact single-line rendering (no spaces outside strings). *)

val to_buffer : Buffer.t -> t -> unit

val parse : string -> (t, string) result
(** Parses one JSON value; trailing whitespace allowed, anything else
    after the value is an error.  Object key order is preserved. *)

val member : string -> t -> t option
(** Field lookup on an [Obj]; [None] on missing keys or non-objects. *)

val to_float : t -> float option
val to_int : t -> int option
val to_str : t -> string option
