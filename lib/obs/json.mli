(** Minimal JSON values: enough for NDJSON export of metrics, trace
    events and timeseries, plus a parser so exports round-trip (the
    probe CLI and the tests both read their own output back).

    Numbers are printed with the shortest decimal representation that
    parses back to the same float, so [parse (to_string j) = Ok j]
    holds for every value this module itself produces. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact single-line rendering (no spaces outside strings). *)

val to_buffer : Buffer.t -> t -> unit

val parse : string -> (t, string) result
(** Parses one JSON value; trailing whitespace allowed, anything else
    after the value is an error.  Object key order is preserved. *)

val member : string -> t -> t option
(** Field lookup on an [Obj]; [None] on missing keys or non-objects. *)

(** Incremental NDJSON reader: one parsed value per line, streamed
    through a fixed-size chunk buffer — memory is bounded by the
    longest {e line}, never the file, so multi-gigabyte traces (the
    workload engine's replay input) read in constant space.

    Line discipline: ['\n'] terminates a line and a trailing ['\r'] is
    stripped (CRLF files read like LF ones); blank lines are skipped; a
    final line without a terminator is still yielded, so a truncated
    tail surfaces as that line's parse [Error] rather than silent
    loss. *)
module Reader : sig
  type json := t
  type t

  val make : ?chunk_size:int -> (bytes -> int -> int) -> t
  (** [make refill] wraps a raw byte source: [refill buf n] writes at
      most [n] bytes into [buf] from offset 0 and returns the count,
      [0] meaning end of input.  [chunk_size] (default 8 KiB) sizes
      the internal buffer; lines longer than it simply span refills.
      @raise Invalid_argument if [chunk_size < 1]. *)

  val of_channel : ?chunk_size:int -> in_channel -> t
  val of_string : ?chunk_size:int -> string -> t
  (** For tests: same code path as {!of_channel}, fed from a string. *)

  val next : t -> (json, string) result option
  (** Next non-blank line's value; [Error] messages carry the 1-based
      line number.  [None] at end of input (and thereafter). *)

  val fold : t -> ('a -> (json, string) result -> 'a) -> 'a -> 'a
  (** [fold t f init] folds {!next} results until end of input. *)

  val line_no : t -> int
  (** Lines consumed so far (blank lines included). *)
end

val to_float : t -> float option
val to_int : t -> int option
val to_str : t -> string option
