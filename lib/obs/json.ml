type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* shortest of %.12g / %.15g / %.17g that round-trips exactly *)
let float_to_string x =
  if Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%.0f" x
  else begin
    let try_prec p =
      let s = Printf.sprintf "%.*g" p x in
      if float_of_string s = x then Some s else None
    in
    match try_prec 12 with
    | Some s -> s
    | None -> (
      match try_prec 15 with
      | Some s -> s
      | None -> Printf.sprintf "%.17g" x)
  end

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num x ->
    if Float.is_nan x then Buffer.add_string buf "null"
    else if Float.is_finite x then Buffer.add_string buf (float_to_string x)
    else Buffer.add_string buf (if x > 0. then "1e999" else "-1e999")
  | Str s -> escape_to buf s
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        to_buffer buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_to buf k;
        Buffer.add_char buf ':';
        to_buffer buf v)
      fields;
    Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 128 in
  to_buffer buf j;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing *)

exception Bad of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' -> begin
        if !pos >= n then fail "unterminated escape";
        let e = s.[!pos] in
        advance ();
        (match e with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'u' ->
          if !pos + 4 > n then fail "short \\u escape";
          let hex = String.sub s !pos 4 in
          pos := !pos + 4;
          let code =
            try int_of_string ("0x" ^ hex) with _ -> fail "bad \\u escape"
          in
          (* our own exports only escape control characters, so a plain
             byte is enough; other BMP points get a '?' placeholder *)
          if code < 0x80 then Buffer.add_char buf (Char.chr code)
          else Buffer.add_char buf '?'
        | _ -> fail "bad escape");
        loop ()
      end
      | c -> Buffer.add_char buf c; loop ()
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    if !pos = start then fail "expected number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some x -> Num x
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); fields ((k, v) :: acc)
          | Some '}' -> advance (); Obj (List.rev ((k, v) :: acc))
          | _ -> fail "expected ',' or '}'"
        in
        fields []
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec elems acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); elems (v :: acc)
          | Some ']' -> advance (); List (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']'"
        in
        elems []
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Incremental NDJSON reading *)

module Reader = struct
  type t = {
    refill : bytes -> int -> int;
    (* [refill buf n] reads at most [n] bytes into [buf] from offset 0
       and returns how many were read; 0 means end of input *)
    chunk : bytes;
    mutable chunk_len : int;   (* valid bytes in [chunk] *)
    mutable chunk_pos : int;   (* next unconsumed byte *)
    line : Buffer.t;           (* current (possibly partial) line *)
    mutable eof : bool;
    mutable line_no : int;
  }

  let default_chunk_size = 8192

  let make ?(chunk_size = default_chunk_size) refill =
    if chunk_size < 1 then invalid_arg "Json.Reader: chunk_size < 1";
    {
      refill;
      chunk = Bytes.create chunk_size;
      chunk_len = 0;
      chunk_pos = 0;
      line = Buffer.create 256;
      eof = false;
      line_no = 0;
    }

  let of_channel ?chunk_size ic =
    make ?chunk_size (fun buf n -> input ic buf 0 n)

  let of_string ?chunk_size s =
    let pos = ref 0 in
    make ?chunk_size (fun buf n ->
        let k = min n (String.length s - !pos) in
        Bytes.blit_string s !pos buf 0 k;
        pos := !pos + k;
        k)

  let line_no t = t.line_no

  (* one completed line, '\n' consumed and a trailing '\r' stripped
     (CRLF exports read back like LF ones); [None] only at end of
     input.  A final unterminated line is still yielded — its parse
     result tells the caller whether it was a whole value or a
     truncated one. *)
  let next_line t =
    let finish () =
      t.line_no <- t.line_no + 1;
      let s = Buffer.contents t.line in
      Buffer.clear t.line;
      let len = String.length s in
      if len > 0 && s.[len - 1] = '\r' then Some (String.sub s 0 (len - 1))
      else Some s
    in
    let rec scan () =
      if t.chunk_pos >= t.chunk_len then begin
        if t.eof then
          if Buffer.length t.line > 0 then finish () else None
        else begin
          let n = t.refill t.chunk (Bytes.length t.chunk) in
          if n = 0 then begin
            t.eof <- true;
            scan ()
          end
          else begin
            t.chunk_len <- n;
            t.chunk_pos <- 0;
            scan ()
          end
        end
      end
      else
        match Bytes.index_from_opt t.chunk t.chunk_pos '\n' with
        | Some i when i < t.chunk_len ->
          Buffer.add_subbytes t.line t.chunk t.chunk_pos (i - t.chunk_pos);
          t.chunk_pos <- i + 1;
          finish ()
        | _ ->
          Buffer.add_subbytes t.line t.chunk t.chunk_pos
            (t.chunk_len - t.chunk_pos);
          t.chunk_pos <- t.chunk_len;
          scan ()
    in
    scan ()

  let rec next t =
    match next_line t with
    | None -> None
    | Some "" -> next t (* blank lines separate nothing in NDJSON *)
    | Some line ->
      (match parse line with
      | Ok v -> Some (Ok v)
      | Error msg ->
        Some (Error (Printf.sprintf "line %d: %s" t.line_no msg)))

  let fold t f init =
    let rec go acc =
      match next t with None -> acc | Some r -> go (f acc r)
    in
    go init
end

(* ------------------------------------------------------------------ *)
(* Accessors *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_float = function
  | Num x -> Some x
  | _ -> None

let to_int = function
  | Num x when Float.is_integer x -> Some (int_of_float x)
  | _ -> None

let to_str = function
  | Str s -> Some s
  | _ -> None
