module T = Chunksim.Trace

let kind = function
  | T.Sent _ -> "sent"
  | T.Received _ -> "received"
  | T.Dropped _ -> "dropped"
  | T.Cached _ -> "cached"
  | T.Cache_hit _ -> "cache_hit"
  | T.Custody_released _ -> "custody_released"
  | T.Detoured _ -> "detoured"
  | T.Phase_change _ -> "phase_change"
  | T.Bp_signal _ -> "bp_signal"
  | T.Flow_complete _ -> "flow_complete"
  | T.Link_fault _ -> "link_fault"
  | T.Node_fault _ -> "node_fault"
  | T.Enqueued _ -> "enqueued"
  | T.Tx_begin _ -> "tx_begin"
  | T.Delivered _ -> "delivered"
  | T.Retransmit _ -> "retransmit"
  | T.Custody_evacuated _ -> "custody_evacuated"
  | T.Custody_evicted _ -> "custody_evicted"

let all_kinds =
  [
    "sent"; "received"; "dropped"; "cached"; "cache_hit"; "custody_released";
    "detoured"; "phase_change"; "bp_signal"; "flow_complete"; "link_fault";
    "node_fault"; "enqueued"; "tx_begin"; "delivered"; "retransmit";
    "custody_evacuated"; "custody_evicted";
  ]

let num i = Json.Num (float_of_int i)

let fields = function
  | T.Sent { node; link; packet } ->
    [ ("node", num node); ("link", num link); ("packet", Json.Str packet) ]
  | T.Received { node; packet } ->
    [ ("node", num node); ("packet", Json.Str packet) ]
  | T.Dropped { node; link; packet } ->
    [ ("node", num node); ("link", num link); ("packet", Json.Str packet) ]
  | T.Cached { node; flow; idx } | T.Cache_hit { node; flow; idx }
  | T.Custody_released { node; flow; idx } ->
    [ ("node", num node); ("flow", num flow); ("idx", num idx) ]
  | T.Detoured { node; flow; idx; via } ->
    [ ("node", num node); ("flow", num flow); ("idx", num idx); ("via", num via) ]
  | T.Phase_change { node; link; phase } ->
    [ ("node", num node); ("link", num link); ("phase", Json.Str phase) ]
  | T.Bp_signal { node; flow; engage } ->
    [ ("node", num node); ("flow", num flow); ("engage", Json.Bool engage) ]
  | T.Flow_complete { flow; fct } ->
    [ ("flow", num flow); ("fct", Json.Num fct) ]
  | T.Link_fault { link; up } ->
    [ ("link", num link); ("up", Json.Bool up) ]
  | T.Node_fault { node; up } ->
    [ ("node", num node); ("up", Json.Bool up) ]
  | T.Enqueued { node; link; flow; idx } ->
    [ ("node", num node); ("link", num link); ("flow", num flow);
      ("idx", num idx) ]
  | T.Tx_begin { link; flow; idx } ->
    [ ("link", num link); ("flow", num flow); ("idx", num idx) ]
  | T.Delivered { node; flow; idx } | T.Custody_evacuated { node; flow; idx }
  | T.Custody_evicted { node; flow; idx } ->
    [ ("node", num node); ("flow", num flow); ("idx", num idx) ]
  | T.Retransmit { flow; idx } -> [ ("flow", num flow); ("idx", num idx) ]

let to_json ~time e =
  Json.Obj
    (("type", Json.Str "event")
    :: ("t", Json.Num time)
    :: ("kind", Json.Str (kind e))
    :: fields e)

let csv_header = "t,kind,node,link,flow,idx,via,phase,engage,packet,fct"

(* quoting: packet descriptions may contain anything; the rest are
   plain tokens *)
let quote s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

(* ------------------------------------------------------------------ *)
(* Decoding — the inverse of [to_json], used by the report CLI and the
   round-trip tests *)

let of_json j =
  let ( let* ) r f = Result.bind r f in
  let field name =
    match Json.member name j with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "event: missing field %S" name)
  in
  let int_f name =
    let* v = field name in
    match Json.to_int v with
    | Some i -> Ok i
    | None -> Error (Printf.sprintf "event: field %S is not an int" name)
  in
  let float_f name =
    let* v = field name in
    match v with
    | Json.Num x -> Ok x
    | Json.Null -> Ok Float.nan (* the printer writes NaN as null *)
    | _ -> Error (Printf.sprintf "event: field %S is not a number" name)
  in
  let bool_f name =
    let* v = field name in
    match v with
    | Json.Bool b -> Ok b
    | _ -> Error (Printf.sprintf "event: field %S is not a bool" name)
  in
  let str_f name =
    let* v = field name in
    match Json.to_str v with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "event: field %S is not a string" name)
  in
  let* () =
    match Json.member "type" j with
    | Some (Json.Str "event") -> Ok ()
    | _ -> Error "event: type is not \"event\""
  in
  let* time = float_f "t" in
  let* k = str_f "kind" in
  let* e =
    match k with
    | "sent" ->
      let* node = int_f "node" in
      let* link = int_f "link" in
      let* packet = str_f "packet" in
      Ok (T.Sent { node; link; packet })
    | "received" ->
      let* node = int_f "node" in
      let* packet = str_f "packet" in
      Ok (T.Received { node; packet })
    | "dropped" ->
      let* node = int_f "node" in
      let* link = int_f "link" in
      let* packet = str_f "packet" in
      Ok (T.Dropped { node; link; packet })
    | "cached" | "cache_hit" | "custody_released" | "delivered"
    | "custody_evacuated" | "custody_evicted" ->
      let* node = int_f "node" in
      let* flow = int_f "flow" in
      let* idx = int_f "idx" in
      Ok
        (match k with
        | "cached" -> T.Cached { node; flow; idx }
        | "cache_hit" -> T.Cache_hit { node; flow; idx }
        | "custody_released" -> T.Custody_released { node; flow; idx }
        | "delivered" -> T.Delivered { node; flow; idx }
        | "custody_evacuated" -> T.Custody_evacuated { node; flow; idx }
        | _ -> T.Custody_evicted { node; flow; idx })
    | "detoured" ->
      let* node = int_f "node" in
      let* flow = int_f "flow" in
      let* idx = int_f "idx" in
      let* via = int_f "via" in
      Ok (T.Detoured { node; flow; idx; via })
    | "phase_change" ->
      let* node = int_f "node" in
      let* link = int_f "link" in
      let* phase = str_f "phase" in
      Ok (T.Phase_change { node; link; phase })
    | "bp_signal" ->
      let* node = int_f "node" in
      let* flow = int_f "flow" in
      let* engage = bool_f "engage" in
      Ok (T.Bp_signal { node; flow; engage })
    | "flow_complete" ->
      let* flow = int_f "flow" in
      let* fct = float_f "fct" in
      Ok (T.Flow_complete { flow; fct })
    | "link_fault" ->
      let* link = int_f "link" in
      let* up = bool_f "up" in
      Ok (T.Link_fault { link; up })
    | "node_fault" ->
      let* node = int_f "node" in
      let* up = bool_f "up" in
      Ok (T.Node_fault { node; up })
    | "enqueued" ->
      let* node = int_f "node" in
      let* link = int_f "link" in
      let* flow = int_f "flow" in
      let* idx = int_f "idx" in
      Ok (T.Enqueued { node; link; flow; idx })
    | "tx_begin" ->
      let* link = int_f "link" in
      let* flow = int_f "flow" in
      let* idx = int_f "idx" in
      Ok (T.Tx_begin { link; flow; idx })
    | "retransmit" ->
      let* flow = int_f "flow" in
      let* idx = int_f "idx" in
      Ok (T.Retransmit { flow; idx })
    | k -> Error (Printf.sprintf "event: unknown kind %S" k)
  in
  Ok (time, e)

let to_csv_row ~time e =
  let node, link, flow, idx, via, phase, engage, packet, fct =
    match e with
    | T.Sent { node; link; packet } ->
      (Some node, Some link, None, None, None, None, None, Some packet, None)
    | T.Received { node; packet } ->
      (Some node, None, None, None, None, None, None, Some packet, None)
    | T.Dropped { node; link; packet } ->
      (Some node, Some link, None, None, None, None, None, Some packet, None)
    | T.Cached { node; flow; idx } ->
      (Some node, None, Some flow, Some idx, None, None, None, None, None)
    | T.Cache_hit { node; flow; idx } ->
      (Some node, None, Some flow, Some idx, None, None, None, None, None)
    | T.Custody_released { node; flow; idx } ->
      (Some node, None, Some flow, Some idx, None, None, None, None, None)
    | T.Detoured { node; flow; idx; via } ->
      (Some node, None, Some flow, Some idx, Some via, None, None, None, None)
    | T.Phase_change { node; link; phase } ->
      (Some node, Some link, None, None, None, Some phase, None, None, None)
    | T.Bp_signal { node; flow; engage } ->
      (Some node, None, Some flow, None, None, None, Some engage, None, None)
    | T.Flow_complete { flow; fct } ->
      (None, None, Some flow, None, None, None, None, None, Some fct)
    (* fault events reuse the [engage] bool column for their up flag *)
    | T.Link_fault { link; up } ->
      (None, Some link, None, None, None, None, Some up, None, None)
    | T.Node_fault { node; up } ->
      (Some node, None, None, None, None, None, Some up, None, None)
    | T.Enqueued { node; link; flow; idx } ->
      (Some node, Some link, Some flow, Some idx, None, None, None, None, None)
    | T.Tx_begin { link; flow; idx } ->
      (None, Some link, Some flow, Some idx, None, None, None, None, None)
    | T.Delivered { node; flow; idx }
    | T.Custody_evacuated { node; flow; idx }
    | T.Custody_evicted { node; flow; idx } ->
      (Some node, None, Some flow, Some idx, None, None, None, None, None)
    | T.Retransmit { flow; idx } ->
      (None, None, Some flow, Some idx, None, None, None, None, None)
  in
  let i = function Some v -> string_of_int v | None -> "" in
  let s = function Some v -> quote v | None -> "" in
  let b = function Some v -> string_of_bool v | None -> "" in
  let f = function Some v -> Printf.sprintf "%.9g" v | None -> "" in
  String.concat ","
    [
      Printf.sprintf "%.9g" time; kind e; i node; i link; i flow; i idx; i via;
      s phase; b engage; s packet; f fct;
    ]
