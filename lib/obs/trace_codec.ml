module T = Chunksim.Trace

let kind = function
  | T.Sent _ -> "sent"
  | T.Received _ -> "received"
  | T.Dropped _ -> "dropped"
  | T.Cached _ -> "cached"
  | T.Cache_hit _ -> "cache_hit"
  | T.Custody_released _ -> "custody_released"
  | T.Detoured _ -> "detoured"
  | T.Phase_change _ -> "phase_change"
  | T.Bp_signal _ -> "bp_signal"
  | T.Flow_complete _ -> "flow_complete"
  | T.Link_fault _ -> "link_fault"
  | T.Node_fault _ -> "node_fault"

let all_kinds =
  [
    "sent"; "received"; "dropped"; "cached"; "cache_hit"; "custody_released";
    "detoured"; "phase_change"; "bp_signal"; "flow_complete"; "link_fault";
    "node_fault";
  ]

let num i = Json.Num (float_of_int i)

let fields = function
  | T.Sent { node; link; packet } ->
    [ ("node", num node); ("link", num link); ("packet", Json.Str packet) ]
  | T.Received { node; packet } ->
    [ ("node", num node); ("packet", Json.Str packet) ]
  | T.Dropped { node; link; packet } ->
    [ ("node", num node); ("link", num link); ("packet", Json.Str packet) ]
  | T.Cached { node; flow; idx } | T.Cache_hit { node; flow; idx }
  | T.Custody_released { node; flow; idx } ->
    [ ("node", num node); ("flow", num flow); ("idx", num idx) ]
  | T.Detoured { node; flow; idx; via } ->
    [ ("node", num node); ("flow", num flow); ("idx", num idx); ("via", num via) ]
  | T.Phase_change { node; link; phase } ->
    [ ("node", num node); ("link", num link); ("phase", Json.Str phase) ]
  | T.Bp_signal { node; flow; engage } ->
    [ ("node", num node); ("flow", num flow); ("engage", Json.Bool engage) ]
  | T.Flow_complete { flow; fct } ->
    [ ("flow", num flow); ("fct", Json.Num fct) ]
  | T.Link_fault { link; up } ->
    [ ("link", num link); ("up", Json.Bool up) ]
  | T.Node_fault { node; up } ->
    [ ("node", num node); ("up", Json.Bool up) ]

let to_json ~time e =
  Json.Obj
    (("type", Json.Str "event")
    :: ("t", Json.Num time)
    :: ("kind", Json.Str (kind e))
    :: fields e)

let csv_header = "t,kind,node,link,flow,idx,via,phase,engage,packet,fct"

(* quoting: packet descriptions may contain anything; the rest are
   plain tokens *)
let quote s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let to_csv_row ~time e =
  let node, link, flow, idx, via, phase, engage, packet, fct =
    match e with
    | T.Sent { node; link; packet } ->
      (Some node, Some link, None, None, None, None, None, Some packet, None)
    | T.Received { node; packet } ->
      (Some node, None, None, None, None, None, None, Some packet, None)
    | T.Dropped { node; link; packet } ->
      (Some node, Some link, None, None, None, None, None, Some packet, None)
    | T.Cached { node; flow; idx } ->
      (Some node, None, Some flow, Some idx, None, None, None, None, None)
    | T.Cache_hit { node; flow; idx } ->
      (Some node, None, Some flow, Some idx, None, None, None, None, None)
    | T.Custody_released { node; flow; idx } ->
      (Some node, None, Some flow, Some idx, None, None, None, None, None)
    | T.Detoured { node; flow; idx; via } ->
      (Some node, None, Some flow, Some idx, Some via, None, None, None, None)
    | T.Phase_change { node; link; phase } ->
      (Some node, Some link, None, None, None, Some phase, None, None, None)
    | T.Bp_signal { node; flow; engage } ->
      (Some node, None, Some flow, None, None, None, Some engage, None, None)
    | T.Flow_complete { flow; fct } ->
      (None, None, Some flow, None, None, None, None, None, Some fct)
    (* fault events reuse the [engage] bool column for their up flag *)
    | T.Link_fault { link; up } ->
      (None, Some link, None, None, None, None, Some up, None, None)
    | T.Node_fault { node; up } ->
      (Some node, None, None, None, None, None, Some up, None, None)
  in
  let i = function Some v -> string_of_int v | None -> "" in
  let s = function Some v -> quote v | None -> "" in
  let b = function Some v -> string_of_bool v | None -> "" in
  let f = function Some v -> Printf.sprintf "%.9g" v | None -> "" in
  String.concat ","
    [
      Printf.sprintf "%.9g" time; kind e; i node; i link; i flow; i idx; i via;
      s phase; b engage; s packet; f fct;
    ]
