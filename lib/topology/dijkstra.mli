(** Shortest paths.

    Two metrics are supported, matching how routes are costed in the
    paper's evaluation: [Hops] (unit weight per link — the metric used
    for path stretch and detour classification) and [Delay]
    (propagation-delay weight). *)

type metric =
  | Hops
  | Delay

type tree
(** Single-source shortest-path tree. *)

val run : ?metric:metric -> ?forbidden_links:(Link.t -> bool) ->
  ?forbidden_nodes:(Node.id -> bool) -> Graph.t -> Node.id -> tree
(** [run g s] computes shortest distances from [s] to every node.
    [forbidden_links] / [forbidden_nodes] prune the graph on the fly —
    this is how detour discovery removes the protected link.  The
    source is never pruned by [forbidden_nodes]. *)

val distance : tree -> Node.id -> float option
(** [None] when unreachable. *)

val path_to : tree -> Node.id -> Path.t option
(** Reconstructed shortest path from the tree's source. *)

val hop_distance : tree -> Node.id -> int option
(** Number of links on the reconstructed path (equals [distance] under
    the [Hops] metric). *)

val reachable : tree -> Node.id -> bool
val source : tree -> Node.id

val shortest_path : ?metric:metric -> Graph.t -> Node.id -> Node.id -> Path.t option
(** One-shot convenience wrapper around {!run} and {!path_to}. *)

val all_pairs_hops : Graph.t -> int array array
(** [all_pairs_hops g] is the matrix of hop distances; [max_int] where
    unreachable.  O(n * (n + m)) via per-source BFS. *)

val eccentricity : Graph.t -> Node.id -> int option
(** Longest hop distance from the node to any reachable node; [None]
    if the node reaches nothing else. *)

val next_hops : ?metric:metric -> Graph.t -> Node.id -> dst:Node.id -> Link.t list
(** All first links of equal-cost shortest paths from the node to
    [dst].  Empty when unreachable.  Used by ECMP. *)
