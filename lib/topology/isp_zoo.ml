type isp =
  | Exodus
  | Vsnl
  | Level3
  | Sprint
  | Att
  | Ebone
  | Telstra
  | Tiscali
  | Verio

let all =
  [ Exodus; Vsnl; Level3; Sprint; Att; Ebone; Telstra; Tiscali; Verio ]

let name = function
  | Exodus -> "Exodus (US)"
  | Vsnl -> "VSNL (IN)"
  | Level3 -> "Level 3"
  | Sprint -> "Sprint (US)"
  | Att -> "AT&T (US)"
  | Ebone -> "EBONE (EU)"
  | Telstra -> "Telstra (AUS)"
  | Tiscali -> "Tiscali (EU)"
  | Verio -> "Verio (US)"

let of_name s =
  let canon =
    String.lowercase_ascii s
    |> String.to_seq
    |> Seq.filter (fun c -> (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9'))
    |> String.of_seq
  in
  match canon with
  | "exodus" | "exodusus" -> Some Exodus
  | "vsnl" | "vsnlin" -> Some Vsnl
  | "level3" -> Some Level3
  | "sprint" | "sprintus" -> Some Sprint
  | "att" | "attus" -> Some Att
  | "ebone" | "eboneeu" -> Some Ebone
  | "telstra" | "telstraaus" -> Some Telstra
  | "tiscali" | "tiscalieu" -> Some Tiscali
  | "verio" | "verious" -> Some Verio
  | _ -> None

let table1_row = function
  | Exodus -> (49.77, 35.48, 6.68, 8.06)
  | Vsnl -> (25.00, 33.33, 0.00, 41.67)
  | Level3 -> (92.22, 6.55, 0.68, 0.55)
  | Sprint -> (56.66, 37.08, 1.81, 4.45)
  | Att -> (34.84, 61.69, 0.72, 2.74)
  | Ebone -> (50.66, 36.22, 6.30, 6.82)
  | Telstra -> (70.05, 10.42, 1.06, 18.47)
  | Tiscali -> (24.50, 39.85, 10.15, 25.50)
  | Verio -> (71.50, 17.09, 1.74, 9.68)

type spec = {
  target_links : int;
  fractions : float * float * float * float;
  core_capacity : float;
  ring_capacity : float;
  stub_capacity : float;
}

let spec isp =
  let f1, f2, f3, fna = table1_row isp in
  let target_links =
    match isp with
    | Exodus -> 217
    | Vsnl -> 12
    | Level3 -> 365
    | Sprint -> 330
    | Att -> 440
    | Ebone -> 254
    | Telstra -> 325
    | Tiscali -> 200
    | Verio -> 344
  in
  {
    target_links;
    fractions = (f1 /. 100., f2 /. 100., f3 /. 100., fna /. 100.);
    core_capacity = 40e9;
    ring_capacity = 10e9;
    stub_capacity = 2.5e9;
  }

(* Decompose [n] links into motifs of the given link sizes, minimising
   the leftover.  Brute-force over the count of the first motif size —
   sizes and counts here are tiny. *)
let decompose n size_a size_b =
  assert (size_a > 0 && size_b > 0);
  let best = ref (0, 0, n) in
  let max_a = n / size_a in
  for a = 0 to max_a do
    let rest = n - (a * size_a) in
    let b = rest / size_b in
    let leftover = rest - (b * size_b) in
    let _, _, best_left = !best in
    if leftover < best_left then best := (a, b, leftover)
  done;
  !best

(* The motif construction relies on three facts (proved by the detour
   tests): (i) every link of a K_c core (c >= 3) has a 1-hop detour;
   (ii) a cycle of length k attached to a single core node gives k links
   whose shortest detour is the rest of the cycle, i.e. class k - 2
   intermediates... more precisely class (k - 1) - 1 = k - 2?  We use
   triangles (class 1), squares (class 2) and pentagons (class 3);
   (iii) a chain of k inner nodes slung between two adjacent core nodes
   gives k + 1 links of class k. *)
let generate s =
  let f1, f2, f3, _fna = s.fractions in
  let total = s.target_links in
  let n1 = int_of_float (Float.round (f1 *. float_of_int total)) in
  let n2 = int_of_float (Float.round (f2 *. float_of_int total)) in
  let n3 = int_of_float (Float.round (f3 *. float_of_int total)) in
  let na = max 0 (total - n1 - n2 - n3) in
  (* core: largest clique within the 1-hop budget, at least a triangle *)
  let core_links c = c * (c - 1) / 2 in
  let c = ref 3 in
  while core_links (!c + 1) <= n1 do
    incr c
  done;
  let c = !c in
  let rem1 = max 0 (n1 - core_links c) in
  (* 1-hop leftovers: triangles (3 links) and 1-inner-node chains (2) *)
  let triangles, chains1, _left1 = decompose rem1 3 2 in
  (* 2-hop: squares (4 links) and 2-inner-node chains (3 links) *)
  let squares, chains2, _left2 = decompose n2 4 3 in
  (* 3+: pentagons (5 links) and 3-inner-node chains (4 links) *)
  let pentagons, chains3, _left3 = decompose n3 5 4 in
  let b = Graph.Builder.create () in
  let core =
    Array.init c (fun i ->
        Graph.Builder.add_node b ~role:Node.Core (Printf.sprintf "core%d" i))
  in
  let core_edge u v =
    Graph.Builder.add_edge b ~capacity:s.core_capacity ~delay:2e-3 u v
  in
  let ring_edge u v =
    Graph.Builder.add_edge b ~capacity:s.ring_capacity ~delay:3e-3 u v
  in
  let stub_edge u v =
    Graph.Builder.add_edge b ~capacity:s.stub_capacity ~delay:5e-3 u v
  in
  for i = 0 to c - 1 do
    for j = i + 1 to c - 1 do
      core_edge core.(i) core.(j)
    done
  done;
  (* round-robin attachment over core nodes *)
  let attach_counter = ref 0 in
  let next_core () =
    let h = core.(!attach_counter mod c) in
    incr attach_counter;
    h
  in
  let fresh = ref 0 in
  let new_node role prefix =
    let id =
      Graph.Builder.add_node b ~role (Printf.sprintf "%s%d" prefix !fresh)
    in
    incr fresh;
    id
  in
  (* cycle of [k] total nodes including the core anchor *)
  let attach_cycle k =
    let h = next_core () in
    let inner = Array.init (k - 1) (fun _ -> new_node Node.Aggregation "agg") in
    ring_edge h inner.(0);
    for i = 0 to k - 3 do
      ring_edge inner.(i) inner.(i + 1)
    done;
    ring_edge inner.(k - 2) h
  in
  (* chain with [k] inner nodes between two adjacent core anchors *)
  let attach_chain k =
    let h1 = next_core () in
    let h2 = core.((!attach_counter) mod c) in
    let h2 = if h2 = h1 then core.((!attach_counter + 1) mod c) else h2 in
    let inner = Array.init k (fun _ -> new_node Node.Aggregation "agg") in
    ring_edge h1 inner.(0);
    for i = 0 to k - 2 do
      ring_edge inner.(i) inner.(i + 1)
    done;
    ring_edge inner.(k - 1) h2
  in
  for _ = 1 to triangles do
    attach_cycle 3
  done;
  for _ = 1 to chains1 do
    attach_chain 1
  done;
  for _ = 1 to squares do
    attach_cycle 4
  done;
  for _ = 1 to chains2 do
    attach_chain 2
  done;
  for _ = 1 to pentagons do
    attach_cycle 5
  done;
  for _ = 1 to chains3 do
    attach_chain 3
  done;
  for _ = 1 to na do
    let h = next_core () in
    let leaf = new_node Node.Edge "stub" in
    stub_edge h leaf
  done;
  Graph.Builder.build b

(* the memo table is the one piece of global mutable state parallel
   sweep jobs can reach (every job calls [graph]), so it is
   mutex-protected; generation is deterministic, so racing domains
   would compute equal graphs either way — the lock just keeps the
   Hashtbl itself coherent *)
let cache : (isp, Graph.t) Hashtbl.t = Hashtbl.create 9
let cache_lock = Mutex.create ()

let graph isp =
  Mutex.protect cache_lock (fun () ->
      match Hashtbl.find_opt cache isp with
      | Some g -> g
      | None ->
        let g = generate (spec isp) in
        Hashtbl.add cache isp g;
        g)

let fig4_isps = [ Telstra; Exodus; Tiscali ]
