type id = int

type role =
  | Core
  | Aggregation
  | Edge
  | Host

type t = {
  id : id;
  name : string;
  role : role;
}

let make ?(role = Core) id name = { id; name; role }

let role_to_string = function
  | Core -> "core"
  | Aggregation -> "aggregation"
  | Edge -> "edge"
  | Host -> "host"

let pp ppf t = Format.fprintf ppf "%s#%d(%s)" t.name t.id (role_to_string t.role)

let equal a b = a.id = b.id

let compare a b = Int.compare a.id b.id
