type t = {
  id : int;
  src : Node.id;
  dst : Node.id;
  capacity : float;
  delay : float;
}

let make ~id ~src ~dst ~capacity ~delay =
  if capacity <= 0. then invalid_arg "Link.make: capacity must be > 0";
  if delay < 0. then invalid_arg "Link.make: delay must be >= 0";
  if src = dst then invalid_arg "Link.make: self-loop";
  { id; src; dst; capacity; delay }

let endpoints l = (l.src, l.dst)

let key l = (l.src, l.dst)

let ukey l = if l.src <= l.dst then (l.src, l.dst) else (l.dst, l.src)

let pp ppf l =
  Format.fprintf ppf "link#%d %d->%d (%.3g bps, %.3g s)" l.id l.src l.dst
    l.capacity l.delay

let equal a b = a.id = b.id

let compare a b = Int.compare a.id b.id
