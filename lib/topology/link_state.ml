type t = {
  up : bool array;
  mutable flips : int;
  mutable subs : (int -> bool -> unit) list; (* reverse subscription order *)
}

let create g = { up = Array.make (Graph.link_count g) true; flips = 0; subs = [] }

let link_count t = Array.length t.up

let check t i =
  if i < 0 || i >= Array.length t.up then
    invalid_arg (Printf.sprintf "Link_state: link id %d out of range" i)

let is_up t i =
  check t i;
  t.up.(i)

let set t i ~up =
  check t i;
  if t.up.(i) <> up then begin
    t.up.(i) <- up;
    t.flips <- t.flips + 1;
    List.iter (fun f -> f i up) (List.rev t.subs)
  end

let on_change t f = t.subs <- f :: t.subs

let down_links t =
  let acc = ref [] in
  for i = Array.length t.up - 1 downto 0 do
    if not t.up.(i) then acc := i :: !acc
  done;
  !acc

let all_up t = Array.for_all Fun.id t.up

let transitions t = t.flips
