let role_name = Node.role_to_string

let role_of_string = function
  | "core" -> Some Node.Core
  | "aggregation" -> Some Node.Aggregation
  | "edge" -> Some Node.Edge
  | "host" -> Some Node.Host
  | _ -> None

let to_string g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "# inrpp topology v1\n";
  List.iter
    (fun (v : Node.t) ->
      Buffer.add_string buf
        (Printf.sprintf "node %d %s %s\n" v.Node.id v.Node.name
           (role_name v.Node.role)))
    (Graph.nodes g);
  (* emit undirected pairs as [edge], stray directed links as [link] *)
  let emitted = Hashtbl.create 64 in
  List.iter
    (fun (l : Link.t) ->
      if not (Hashtbl.mem emitted l.Link.id) then begin
        match Graph.reverse g l with
        | Some r
          when r.Link.capacity = l.Link.capacity && r.Link.delay = l.Link.delay
          ->
          Hashtbl.replace emitted l.Link.id ();
          Hashtbl.replace emitted r.Link.id ();
          Buffer.add_string buf
            (Printf.sprintf "edge %d %d %.17g %.17g\n" l.Link.src l.Link.dst
               l.Link.capacity l.Link.delay)
        | _ ->
          Hashtbl.replace emitted l.Link.id ();
          Buffer.add_string buf
            (Printf.sprintf "link %d %d %.17g %.17g\n" l.Link.src l.Link.dst
               l.Link.capacity l.Link.delay)
      end)
    (Graph.links g);
  Buffer.contents buf

let of_string text =
  let b = Graph.Builder.create () in
  let expected_id = ref 0 in
  let error lineno msg = Error (Printf.sprintf "line %d: %s" lineno msg) in
  let lines = String.split_on_char '\n' text in
  let rec process lineno = function
    | [] -> Ok (Graph.Builder.build b)
    | line :: rest ->
      let line =
        match String.index_opt line '#' with
        | Some i -> String.sub line 0 i
        | None -> line
      in
      let tokens =
        String.split_on_char ' ' (String.trim line)
        |> List.filter (fun s -> s <> "")
      in
      let continue () = process (lineno + 1) rest in
      begin match tokens with
      | [] -> continue ()
      | [ "node"; id_s; nm; role_s ] -> begin
        match int_of_string_opt id_s, role_of_string role_s with
        | Some id, Some role ->
          if id <> !expected_id then
            error lineno
              (Printf.sprintf "expected node id %d, got %d" !expected_id id)
          else begin
            let got = Graph.Builder.add_node b ~role nm in
            assert (got = id);
            incr expected_id;
            continue ()
          end
        | None, _ -> error lineno "bad node id"
        | _, None -> error lineno ("unknown role " ^ role_s)
      end
      | [ ("link" | "edge") as kind; u_s; v_s; cap_s; delay_s ] -> begin
        match
          ( int_of_string_opt u_s,
            int_of_string_opt v_s,
            float_of_string_opt cap_s,
            float_of_string_opt delay_s )
        with
        | Some u, Some v, Some capacity, Some delay -> begin
          match
            if kind = "edge" then
              Graph.Builder.add_edge b ~capacity ~delay u v
            else Graph.Builder.add_link b ~capacity ~delay u v
          with
          | () -> continue ()
          | exception Invalid_argument msg -> error lineno msg
        end
        | _ -> error lineno "bad link fields"
      end
      | word :: _ -> error lineno ("unknown directive " ^ word)
      end
  in
  match process 1 lines with
  | exception Invalid_argument msg -> Error msg
  | result -> result

let save g path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string g))

let load path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let len = in_channel_length ic in
        of_string (really_input_string ic len))
