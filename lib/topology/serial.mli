(** Plain-text topology interchange.

    Line-oriented format, easy to diff and to produce from external
    datasets:

    {v
    # comment
    node <id> <name> [core|aggregation|edge|host]
    link <src> <dst> <capacity_bps> <delay_s>
    edge <u> <v> <capacity_bps> <delay_s>     # both directions
    v}

    Node ids must be dense and declared before use. *)

val to_string : Graph.t -> string

val of_string : string -> (Graph.t, string) result
(** Error messages carry the 1-based offending line number. *)

val save : Graph.t -> string -> unit
(** [save g path] writes {!to_string} to a file. *)

val load : string -> (Graph.t, string) result
