(** Node identifiers and attributes.

    Nodes are dense integer identifiers assigned by {!Graph} at
    construction time; [0 <= id < Graph.node_count g].  A node carries a
    human-readable name and a role used by capacity/delay assignment in
    the topology builders. *)

type id = int

(** Role of a node in an ISP-like topology.  Used by {!Isp_zoo} and
    {!Builders} to assign link capacities, and by traffic generators to
    choose sources and sinks. *)
type role =
  | Core        (** densely meshed backbone PoP *)
  | Aggregation (** regional/metro ring node *)
  | Edge        (** customer-facing stub node *)
  | Host        (** end host attached to the network *)

type t = {
  id : id;
  name : string;
  role : role;
}

val make : ?role:role -> id -> string -> t
(** [make id name] builds a node record; [role] defaults to [Core]. *)

val role_to_string : role -> string

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
val compare : t -> t -> int
