(** Paths through a graph.

    A path is a non-empty sequence of nodes joined by existing links.
    Construction validates against the graph, so a [Path.t] in hand is
    always walkable.  Costs come in two metrics, matching the two ways
    the paper measures routes: hop count (used for path stretch,
    Fig. 4b) and propagation delay. *)

type t = private {
  nodes : Node.id list;   (** at least one node; [src] first *)
  links : Link.t list;    (** [List.length links = List.length nodes - 1] *)
}

val of_nodes : Graph.t -> Node.id list -> (t, string) result
(** [of_nodes g ns] checks every consecutive pair is linked in [g].
    Multi-links resolve to the first link found. *)

val of_nodes_exn : Graph.t -> Node.id list -> t
(** @raise Invalid_argument when {!of_nodes} would return [Error]. *)

val of_links : Link.t list -> (t, string) result
(** [of_links ls] requires a non-empty chain where each link starts
    where the previous one ended. *)

val singleton : Node.id -> t
(** Zero-hop path (source = destination). *)

val src : t -> Node.id
val dst : t -> Node.id
val hops : t -> int
(** Number of links. *)

val delay : t -> float
(** Sum of link propagation delays, seconds. *)

val bottleneck : t -> float
(** Minimum link capacity along the path; [infinity] for a zero-hop
    path. *)

val mem_node : t -> Node.id -> bool
val mem_link : t -> Link.t -> bool
val is_simple : t -> bool
(** No repeated node. *)

val stretch : shortest:int -> t -> float
(** [stretch ~shortest p] is [hops p / shortest] (both as floats).
    @raise Invalid_argument if [shortest <= 0] while [hops p > 0]. *)

val concat : t -> t -> (t, string) result
(** [concat a b] glues paths when [dst a = src b]. *)

val splice : t -> at:Node.id -> replacement:t -> rejoin:Node.id -> (t, string) result
(** [splice p ~at ~replacement ~rejoin] replaces the segment of [p]
    between the first occurrence of [at] and the first occurrence of
    [rejoin] (which must come later) by [replacement], whose endpoints
    must be [at] and [rejoin].  Used to install detours around a
    congested link. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
