(** Detour-path discovery and classification — the engine behind the
    paper's Table 1.

    For a directed link [u -> v], a detour is an alternative route from
    [u] to [v] that does not use the link itself (in either direction:
    the physical link is assumed down or congested).  Its class is the
    number of {e intermediate} nodes on the shortest such route:
    [u -> w -> v] is a 1-hop detour, [u -> w -> x -> v] a 2-hop detour,
    and so on, exactly the buckets of Table 1. *)

type availability =
  | Detour of int  (** shortest alternative has this many intermediate nodes; [>= 1] *)
  | Unavailable    (** no alternative route exists *)

type profile = {
  one_hop : float;     (** fraction of links with a 1-hop detour *)
  two_hop : float;
  three_plus : float;
  unavailable : float;
  total_links : int;   (** undirected links classified *)
}
(** The four fractions sum to 1 (up to rounding). *)

val classify_link : Graph.t -> Link.t -> availability
(** Shortest-alternative class for one directed link.  Both directions
    of the physical link are excluded from the search. *)

val best_detour : Graph.t -> Link.t -> Path.t option
(** The shortest alternative path itself ([src] to [dst] of the link,
    avoiding both directions of it); [None] when [Unavailable]. *)

val detours_via :
  Graph.t -> Link.t -> max_intermediate:int -> (Node.id * Path.t) list
(** All detours of at most [max_intermediate] intermediate nodes,
    keyed by their first intermediate node (the neighbour the traffic
    is deflected to).  A neighbour appears at most once, with its
    shortest usable continuation.  Used to build {!Inrpp} detour
    tables. *)

val classify_links : Graph.t -> profile
(** Classify every {e undirected} link of the graph (Table 1 counts
    physical links once). *)

val pp_profile : Format.formatter -> profile -> unit
(** Prints percentages in Table-1 column order:
    1 hop, 2 hops, 3+ hops, N/A. *)
