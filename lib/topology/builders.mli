(** Deterministic and random topology generators.

    Regular topologies serve the unit tests and worked examples; the
    random families (Erdős–Rényi, Waxman, Barabási–Albert) provide
    workloads for property tests and ablations.  All random builders
    take an explicit 64-bit [seed] and are reproducible. *)

(** {1 Regular topologies} *)

val line : ?capacity:float -> ?delay:float -> int -> Graph.t
(** [line n]: n nodes in a chain.  @raise Invalid_argument if [n < 1]. *)

val ring : ?capacity:float -> ?delay:float -> int -> Graph.t
(** [ring n]: cycle of [n >= 3] nodes. *)

val star : ?capacity:float -> ?delay:float -> int -> Graph.t
(** [star n]: hub node 0 plus [n] leaves. [n >= 1]. *)

val full_mesh : ?capacity:float -> ?delay:float -> int -> Graph.t
(** [full_mesh n]: complete graph on [n >= 2] nodes. *)

val grid : ?capacity:float -> ?delay:float -> int -> int -> Graph.t
(** [grid rows cols]: 2-D lattice; node (r,c) has id [r * cols + c]. *)

val binary_tree : ?capacity:float -> ?delay:float -> int -> Graph.t
(** [binary_tree depth]: complete binary tree with [2^(depth+1) - 1]
    nodes; node 0 is the root.  [depth >= 0]. *)

val dumbbell :
  ?access_capacity:float -> ?bottleneck_capacity:float -> ?delay:float ->
  int -> Graph.t
(** [dumbbell n]: [n] sources - left router - right router - [n] sinks;
    the middle link is the bottleneck.  Sources are nodes [2..n+1],
    sinks [n+2..2n+1]; routers are 0 (left) and 1 (right). *)

val fig3 : unit -> Graph.t
(** The paper's Fig. 3 topology: nodes 1,2,3,4 (ids 0..3); links
    1-2 @ 10 Mbps, 2-4 @ 2 Mbps, 1-3 @ 5 Mbps, 3-4 @ 5 Mbps.
    The 3-path can absorb the 3 Mbps the 2-4 bottleneck cannot. *)

(** {1 Random families} *)

val erdos_renyi :
  ?capacity:float -> ?delay:float -> seed:int64 -> p:float -> int -> Graph.t
(** G(n, p); only the giant attempt is returned (may be disconnected —
    check {!Graph.is_connected} if that matters). [0 <= p <= 1]. *)

val waxman :
  ?capacity:float -> ?delay:float -> seed:int64 -> alpha:float ->
  beta:float -> int -> Graph.t
(** Waxman random geometric graph on the unit square; link probability
    [alpha * exp (-dist / (beta * sqrt 2.))].  Delays, when not
    overridden, are proportional to Euclidean distance. *)

val barabasi_albert : ?capacity:float -> ?delay:float -> seed:int64 ->
  m:int -> int -> Graph.t
(** Preferential attachment: each new node attaches [m >= 1] links to
    existing nodes weighted by degree.  Starts from an [m + 1] clique. *)
