(** Synthetic stand-ins for the nine Rocketfuel ISP PoP-level maps of
    the paper's Table 1.

    The real Rocketfuel data is not redistributable, so each ISP is a
    deterministic synthetic graph whose {e detour-availability profile}
    (fractions of links with 1-hop / 2-hop / 3+-hop / no detours)
    matches its Table 1 row.  The construction — a densely meshed core,
    attached rings and chains of controlled length, and single-homed
    stubs — mirrors how those classes arise in real ISPs: core mesh
    links detour in one hop, regional rings in as many hops as the ring
    is long, and customer tails not at all.  See DESIGN.md §3. *)

type isp =
  | Exodus
  | Vsnl
  | Level3
  | Sprint
  | Att
  | Ebone
  | Telstra
  | Tiscali
  | Verio

val all : isp list
(** Table 1 row order. *)

val name : isp -> string
val of_name : string -> isp option
(** Case-insensitive; accepts e.g. ["level3"], ["AT&T"], ["att"]. *)

val table1_row : isp -> float * float * float * float
(** The paper's reported percentages (1 hop, 2 hops, 3+ hops, N/A),
    each in [[0, 100]]. *)

val graph : isp -> Graph.t
(** The synthetic topology.  Deterministic: repeated calls return
    structurally identical graphs. *)

val fig4_isps : isp list
(** The three ISPs evaluated in Fig. 4: Telstra, Exodus, Tiscali. *)

(** {1 Generator (exposed for tests and ablations)} *)

type spec = {
  target_links : int;                     (** approximate undirected link count *)
  fractions : float * float * float * float; (** 1hop, 2hop, 3+, N/A — sum 1 *)
  core_capacity : float;
  ring_capacity : float;
  stub_capacity : float;
}

val spec : isp -> spec

val generate : spec -> Graph.t
(** Build a graph realising [spec] as closely as motif quantisation
    allows (classes come in units of 2–5 links). *)
