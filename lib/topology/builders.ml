let default_capacity = 1e9
let default_delay = 1e-3

let named_nodes b prefix n role =
  Array.init n (fun i ->
      Graph.Builder.add_node b ~role (Printf.sprintf "%s%d" prefix i))

let line ?(capacity = default_capacity) ?(delay = default_delay) n =
  if n < 1 then invalid_arg "Builders.line: n < 1";
  let b = Graph.Builder.create () in
  let ids = named_nodes b "n" n Node.Core in
  for i = 0 to n - 2 do
    Graph.Builder.add_edge b ~capacity ~delay ids.(i) ids.(i + 1)
  done;
  Graph.Builder.build b

let ring ?(capacity = default_capacity) ?(delay = default_delay) n =
  if n < 3 then invalid_arg "Builders.ring: n < 3";
  let b = Graph.Builder.create () in
  let ids = named_nodes b "n" n Node.Core in
  for i = 0 to n - 1 do
    Graph.Builder.add_edge b ~capacity ~delay ids.(i) ids.((i + 1) mod n)
  done;
  Graph.Builder.build b

let star ?(capacity = default_capacity) ?(delay = default_delay) n =
  if n < 1 then invalid_arg "Builders.star: n < 1";
  let b = Graph.Builder.create () in
  let hub = Graph.Builder.add_node b ~role:Node.Core "hub" in
  for i = 0 to n - 1 do
    let leaf =
      Graph.Builder.add_node b ~role:Node.Edge (Printf.sprintf "leaf%d" i)
    in
    Graph.Builder.add_edge b ~capacity ~delay hub leaf
  done;
  Graph.Builder.build b

let full_mesh ?(capacity = default_capacity) ?(delay = default_delay) n =
  if n < 2 then invalid_arg "Builders.full_mesh: n < 2";
  let b = Graph.Builder.create () in
  let ids = named_nodes b "n" n Node.Core in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      Graph.Builder.add_edge b ~capacity ~delay ids.(i) ids.(j)
    done
  done;
  Graph.Builder.build b

let grid ?(capacity = default_capacity) ?(delay = default_delay) rows cols =
  if rows < 1 || cols < 1 then invalid_arg "Builders.grid: empty dimension";
  let b = Graph.Builder.create () in
  let id r c = (r * cols) + c in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      let got =
        Graph.Builder.add_node b ~role:Node.Core
          (Printf.sprintf "g%d_%d" r c)
      in
      assert (got = id r c)
    done
  done;
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then
        Graph.Builder.add_edge b ~capacity ~delay (id r c) (id r (c + 1));
      if r + 1 < rows then
        Graph.Builder.add_edge b ~capacity ~delay (id r c) (id (r + 1) c)
    done
  done;
  Graph.Builder.build b

let binary_tree ?(capacity = default_capacity) ?(delay = default_delay) depth =
  if depth < 0 then invalid_arg "Builders.binary_tree: depth < 0";
  let n = (1 lsl (depth + 1)) - 1 in
  let b = Graph.Builder.create () in
  let ids = named_nodes b "t" n Node.Core in
  for i = 0 to n - 1 do
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    if l < n then Graph.Builder.add_edge b ~capacity ~delay ids.(i) ids.(l);
    if r < n then Graph.Builder.add_edge b ~capacity ~delay ids.(i) ids.(r)
  done;
  Graph.Builder.build b

let dumbbell ?(access_capacity = 1e9) ?(bottleneck_capacity = 1e8)
    ?(delay = default_delay) n =
  if n < 1 then invalid_arg "Builders.dumbbell: n < 1";
  let b = Graph.Builder.create () in
  let left = Graph.Builder.add_node b ~role:Node.Core "left" in
  let right = Graph.Builder.add_node b ~role:Node.Core "right" in
  Graph.Builder.add_edge b ~capacity:bottleneck_capacity ~delay left right;
  for i = 0 to n - 1 do
    let s =
      Graph.Builder.add_node b ~role:Node.Host (Printf.sprintf "src%d" i)
    in
    Graph.Builder.add_edge b ~capacity:access_capacity ~delay s left
  done;
  for i = 0 to n - 1 do
    let d =
      Graph.Builder.add_node b ~role:Node.Host (Printf.sprintf "dst%d" i)
    in
    Graph.Builder.add_edge b ~capacity:access_capacity ~delay right d
  done;
  Graph.Builder.build b

(* Paper Fig. 3: 1-2 is the 10 Mbps shared link, 2-4 the 2 Mbps
   bottleneck, and 1-3-4 the 5 Mbps detour branch able to absorb the
   3 Mbps overflow. *)
let fig3 () =
  let b = Graph.Builder.create () in
  let n1 = Graph.Builder.add_node b "1" in
  let n2 = Graph.Builder.add_node b "2" in
  let n3 = Graph.Builder.add_node b "3" in
  let n4 = Graph.Builder.add_node b "4" in
  Graph.Builder.add_edge b ~capacity:10e6 ~delay:1e-3 n1 n2;
  Graph.Builder.add_edge b ~capacity:2e6 ~delay:1e-3 n2 n4;
  Graph.Builder.add_edge b ~capacity:5e6 ~delay:1e-3 n1 n3;
  Graph.Builder.add_edge b ~capacity:5e6 ~delay:1e-3 n3 n4;
  (* node 2 can reach node 3 so node 2 can detour 2->3->4 *)
  Graph.Builder.add_edge b ~capacity:5e6 ~delay:1e-3 n2 n3;
  Graph.Builder.build b

let erdos_renyi ?(capacity = default_capacity) ?(delay = default_delay) ~seed
    ~p n =
  if n < 1 then invalid_arg "Builders.erdos_renyi: n < 1";
  if p < 0. || p > 1. then invalid_arg "Builders.erdos_renyi: p outside [0,1]";
  let rng = Sim.Rng.create seed in
  let b = Graph.Builder.create () in
  let ids = named_nodes b "n" n Node.Core in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Sim.Rng.float rng 1. < p then
        Graph.Builder.add_edge b ~capacity ~delay ids.(i) ids.(j)
    done
  done;
  Graph.Builder.build b

let waxman ?capacity ?delay ~seed ~alpha ~beta n =
  if n < 1 then invalid_arg "Builders.waxman: n < 1";
  if alpha <= 0. || alpha > 1. then invalid_arg "Builders.waxman: alpha";
  if beta <= 0. then invalid_arg "Builders.waxman: beta";
  let rng = Sim.Rng.create seed in
  let xs = Array.init n (fun _ -> Sim.Rng.float rng 1.) in
  let ys = Array.init n (fun _ -> Sim.Rng.float rng 1.) in
  let b = Graph.Builder.create () in
  let ids = named_nodes b "w" n Node.Core in
  let diag = sqrt 2. in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let dx = xs.(i) -. xs.(j) and dy = ys.(i) -. ys.(j) in
      let dist = sqrt ((dx *. dx) +. (dy *. dy)) in
      let prob = alpha *. exp (-.dist /. (beta *. diag)) in
      if Sim.Rng.float rng 1. < prob then begin
        let cap = match capacity with Some c -> c | None -> default_capacity in
        let dly =
          match delay with
          | Some d -> d
          | None -> 1e-3 +. (dist *. 5e-3) (* ~speed-of-light flavour *)
        in
        Graph.Builder.add_edge b ~capacity:cap ~delay:dly ids.(i) ids.(j)
      end
    done
  done;
  Graph.Builder.build b

let barabasi_albert ?(capacity = default_capacity) ?(delay = default_delay)
    ~seed ~m n =
  if m < 1 then invalid_arg "Builders.barabasi_albert: m < 1";
  if n < m + 1 then invalid_arg "Builders.barabasi_albert: n <= m";
  let rng = Sim.Rng.create seed in
  let b = Graph.Builder.create () in
  let ids = named_nodes b "b" n Node.Core in
  (* degree-weighted target multiset: every link endpoint appears once *)
  let endpoints = ref [] in
  let degree = Array.make n 0 in
  let connect u v =
    Graph.Builder.add_edge b ~capacity ~delay ids.(u) ids.(v);
    degree.(u) <- degree.(u) + 1;
    degree.(v) <- degree.(v) + 1;
    endpoints := u :: v :: !endpoints
  in
  (* seed clique on the first m+1 nodes *)
  for i = 0 to m do
    for j = i + 1 to m do
      connect i j
    done
  done;
  let endpoint_array = ref (Array.of_list !endpoints) in
  for v = m + 1 to n - 1 do
    (* draw m distinct targets weighted by degree *)
    let chosen = Hashtbl.create m in
    let arr = !endpoint_array in
    let attempts = ref 0 in
    while Hashtbl.length chosen < m && !attempts < 50 * m do
      incr attempts;
      let candidate = arr.(Sim.Rng.int rng (Array.length arr)) in
      if candidate <> v && not (Hashtbl.mem chosen candidate) then
        Hashtbl.replace chosen candidate ()
    done;
    (* fall back to lowest-id unchosen nodes if sampling stalled *)
    let u = ref 0 in
    while Hashtbl.length chosen < m do
      if !u <> v && not (Hashtbl.mem chosen !u) then
        Hashtbl.replace chosen !u ();
      incr u
    done;
    Hashtbl.iter (fun target () -> connect v target) chosen;
    endpoint_array := Array.of_list !endpoints
  done;
  Graph.Builder.build b
