let equal_cost_paths ?(metric = Dijkstra.Hops) ?(limit = 16) g s d =
  if s = d then [ Path.singleton s ]
  else begin
    (* Distances to destination let us walk the equal-cost DAG forward:
       a link (u,v) is on a shortest path iff
       dist(u) = weight(u,v) + dist(v). *)
    let tree_from_s = Dijkstra.run ~metric g s in
    match Dijkstra.distance tree_from_s d with
    | None -> []
    | Some _total ->
      let n = Graph.node_count g in
      (* dist_to_dst via reverse relaxation: reuse next_hops machinery by
         running Dijkstra on each node would be wasteful; recompute here
         with a simple reverse Dijkstra. *)
      let dist_to_dst = Array.make n infinity in
      (* Reverse Dijkstra using a sorted-list frontier; graphs here are
         small (hundreds of nodes). *)
      let visited = Array.make n false in
      let frontier = ref [ (0., d) ] in
      dist_to_dst.(d) <- 0.;
      let weight (l : Link.t) =
        match metric with Dijkstra.Hops -> 1. | Dijkstra.Delay -> l.Link.delay
      in
      let rec settle () =
        match !frontier with
        | [] -> ()
        | (dist, x) :: rest ->
          frontier := rest;
          if not visited.(x) then begin
            visited.(x) <- true;
            List.iter
              (fun (l : Link.t) ->
                let w = l.Link.src in
                let nd = dist +. weight l in
                if nd < dist_to_dst.(w) then begin
                  dist_to_dst.(w) <- nd;
                  frontier :=
                    List.merge
                      (fun (a, _) (b, _) -> Float.compare a b)
                      [ (nd, w) ] !frontier
                end)
              (Graph.in_links g x)
          end;
          settle ()
      in
      settle ();
      if not (Float.is_finite dist_to_dst.(s)) then []
      else begin
        let results = ref [] in
        let count = ref 0 in
        let rec dfs u rev_links =
          if !count < limit then begin
            if u = d then begin
              match Path.of_links (List.rev rev_links) with
              | Ok p ->
                results := p :: !results;
                incr count
              | Error _ -> ()
            end
            else
              List.iter
                (fun (l : Link.t) ->
                  let v = l.Link.dst in
                  if
                    Float.is_finite dist_to_dst.(v)
                    && dist_to_dst.(u) = weight l +. dist_to_dst.(v)
                  then dfs v (l :: rev_links))
                (Graph.out_links g u)
          end
        in
        dfs s [];
        List.rev !results
      end
  end

(* SplitMix64-style avalanche: cheap, stable, well distributed. *)
let mix64 x =
  let open Int64 in
  let x = logxor x (shift_right_logical x 30) in
  let x = mul x 0xbf58476d1ce4e5b9L in
  let x = logxor x (shift_right_logical x 27) in
  let x = mul x 0x94d049bb133111ebL in
  logxor x (shift_right_logical x 31)

let hash_flow ~flow_id ~buckets =
  if buckets <= 0 then invalid_arg "Ecmp.hash_flow: buckets must be positive";
  let h = mix64 (Int64.of_int (flow_id + 0x9e3779b9)) in
  Int64.to_int (Int64.unsigned_rem h (Int64.of_int buckets))

let pick paths ~flow_id =
  match paths with
  | [] -> None
  | _ ->
    let i = hash_flow ~flow_id ~buckets:(List.length paths) in
    List.nth_opt paths i
