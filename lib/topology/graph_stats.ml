type t = {
  nodes : int;
  links : int;
  avg_degree : float;
  max_degree : int;
  min_degree : int;
  diameter : int option;
  avg_path_length : float;
  clustering : float;
}

(* undirected neighbour sets *)
let neighbour_sets g =
  let n = Graph.node_count g in
  let sets = Array.make n [] in
  List.iter
    (fun (l : Link.t) ->
      let u, v = Link.ukey l in
      if not (List.mem v sets.(u)) then sets.(u) <- v :: sets.(u);
      if not (List.mem u sets.(v)) then sets.(v) <- u :: sets.(v))
    (Graph.links g);
  sets

let degree_distribution g =
  let sets = neighbour_sets g in
  let counts = Hashtbl.create 16 in
  Array.iter
    (fun ns ->
      let d = List.length ns in
      Hashtbl.replace counts d (1 + Option.value ~default:0 (Hashtbl.find_opt counts d)))
    sets;
  Hashtbl.fold (fun d c acc -> (d, c) :: acc) counts []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let compute g =
  let n = Graph.node_count g in
  let sets = neighbour_sets g in
  let degrees = Array.map List.length sets in
  let links = List.length (Graph.undirected_links g) in
  let sum_deg = Array.fold_left ( + ) 0 degrees in
  let avg_degree = if n = 0 then 0. else float_of_int sum_deg /. float_of_int n in
  let max_degree = Array.fold_left max 0 degrees in
  let min_degree =
    if n = 0 then 0 else Array.fold_left min max_int degrees
  in
  (* hop distances *)
  let matrix = Dijkstra.all_pairs_hops g in
  let diameter = ref 0 in
  let reachable_pairs = ref 0 in
  let total_dist = ref 0 in
  let disconnected = ref false in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then begin
        let d = matrix.(i).(j) in
        if d = max_int then disconnected := true
        else begin
          incr reachable_pairs;
          total_dist := !total_dist + d;
          if d > !diameter then diameter := d
        end
      end
    done
  done;
  let avg_path_length =
    if !reachable_pairs = 0 then 0.
    else float_of_int !total_dist /. float_of_int !reachable_pairs
  in
  (* local clustering: triangles among neighbours *)
  let clustering =
    if n = 0 then 0.
    else begin
      let acc = ref 0. in
      for u = 0 to n - 1 do
        let ns = sets.(u) in
        let k = List.length ns in
        if k >= 2 then begin
          let closed = ref 0 in
          List.iter
            (fun a ->
              List.iter
                (fun b' -> if a < b' && List.mem b' sets.(a) then incr closed)
                ns)
            ns;
          acc := !acc +. (2. *. float_of_int !closed /. float_of_int (k * (k - 1)))
        end
      done;
      !acc /. float_of_int n
    end
  in
  {
    nodes = n;
    links;
    avg_degree;
    max_degree;
    min_degree;
    diameter = (if !disconnected || n < 2 then None else Some !diameter);
    avg_path_length;
    clustering;
  }

let pp ppf s =
  Format.fprintf ppf
    "nodes=%d links=%d avg_deg=%.2f max_deg=%d min_deg=%d diameter=%s \
     avg_path=%.2f clustering=%.3f"
    s.nodes s.links s.avg_degree s.max_degree s.min_degree
    (match s.diameter with None -> "n/a" | Some d -> string_of_int d)
    s.avg_path_length s.clustering

(* Brandes' betweenness centrality: one BFS per source with dependency
   back-propagation.  O(nm) on unit weights. *)
let betweenness g =
  let n = Graph.node_count g in
  let cb = Array.make n 0. in
  let sigma = Array.make n 0. in
  let dist = Array.make n (-1) in
  let delta = Array.make n 0. in
  let preds = Array.make n [] in
  let stack = Stack.create () in
  let queue = Queue.create () in
  for s = 0 to n - 1 do
    Array.fill sigma 0 n 0.;
    Array.fill dist 0 n (-1);
    Array.fill delta 0 n 0.;
    Array.iteri (fun i _ -> preds.(i) <- []) preds;
    Stack.clear stack;
    Queue.clear queue;
    sigma.(s) <- 1.;
    dist.(s) <- 0;
    Queue.add s queue;
    while not (Queue.is_empty queue) do
      let v = Queue.pop queue in
      Stack.push v stack;
      List.iter
        (fun w ->
          if dist.(w) < 0 then begin
            dist.(w) <- dist.(v) + 1;
            Queue.add w queue
          end;
          if dist.(w) = dist.(v) + 1 then begin
            sigma.(w) <- sigma.(w) +. sigma.(v);
            preds.(w) <- v :: preds.(w)
          end)
        (Graph.succs g v)
    done;
    while not (Stack.is_empty stack) do
      let w = Stack.pop stack in
      List.iter
        (fun v ->
          delta.(v) <-
            delta.(v) +. (sigma.(v) /. sigma.(w) *. (1. +. delta.(w))))
        preds.(w);
      if w <> s then cb.(w) <- cb.(w) +. delta.(w)
    done
  done;
  cb
