(** Directed network links.

    A link is a unidirectional channel between two nodes with a fixed
    capacity (bits per second) and propagation delay (seconds).  Links
    carry a dense integer [id] assigned by {!Graph} so that per-link
    state elsewhere (allocations, counters) can live in flat arrays.

    Undirected physical links are represented as two directed links;
    {!Graph.reverse} recovers the opposite direction when it exists. *)

type t = {
  id : int;             (** dense index within the owning graph *)
  src : Node.id;
  dst : Node.id;
  capacity : float;     (** bits per second; [> 0.] *)
  delay : float;        (** propagation delay in seconds; [>= 0.] *)
}

val make : id:int -> src:Node.id -> dst:Node.id -> capacity:float -> delay:float -> t
(** [make ~id ~src ~dst ~capacity ~delay] validates and builds a link.
    @raise Invalid_argument if [capacity <= 0.], [delay < 0.] or
    [src = dst] (self-loops are meaningless for forwarding). *)

val endpoints : t -> Node.id * Node.id

val key : t -> Node.id * Node.id
(** [key l] is [(src, dst)]; the unordered variant is {!ukey}. *)

val ukey : t -> Node.id * Node.id
(** Unordered endpoint pair, smaller id first — identifies the
    underlying physical link shared by both directions. *)

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
val compare : t -> t -> int
