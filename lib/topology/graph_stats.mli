(** Structural statistics of a topology.

    Used to sanity-check the synthetic ISP graphs against what PoP-level
    maps look like, and by the benches' topology summaries. *)

type t = {
  nodes : int;
  links : int;              (** undirected count *)
  avg_degree : float;       (** undirected degree *)
  max_degree : int;
  min_degree : int;
  diameter : int option;    (** [None] when disconnected or trivial *)
  avg_path_length : float;  (** mean hop distance over connected pairs *)
  clustering : float;       (** mean local clustering coefficient *)
}

val compute : Graph.t -> t

val degree_distribution : Graph.t -> (int * int) list
(** [(degree, node_count)] pairs, ascending degree (undirected). *)

val betweenness : Graph.t -> float array
(** Node betweenness centrality (Brandes' algorithm over directed
    links, unit weights): how many shortest paths pass through each
    node.  Identifies the hotspots whose congestion INRPP's detours
    relieve.  Values are unnormalised raw pair counts. *)

val pp : Format.formatter -> t -> unit
