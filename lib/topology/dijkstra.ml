type metric =
  | Hops
  | Delay

let weight metric (l : Link.t) =
  match metric with
  | Hops -> 1.
  | Delay -> l.Link.delay

type tree = {
  t_source : Node.id;
  dist : float array;           (* infinity when unreachable *)
  pred : Link.t option array;   (* link used to reach the node *)
}

(* Minimal binary heap on (distance, node) pairs.  Stale entries are
   skipped on pop (lazy deletion), the standard Dijkstra trick. *)
module Heap = struct
  type t = {
    mutable data : (float * int) array;
    mutable size : int;
  }

  let create () = { data = Array.make 64 (0., 0); size = 0 }

  let swap h i j =
    let tmp = h.data.(i) in
    h.data.(i) <- h.data.(j);
    h.data.(j) <- tmp

  let push h prio v =
    if h.size = Array.length h.data then begin
      let bigger = Array.make (2 * h.size) (0., 0) in
      Array.blit h.data 0 bigger 0 h.size;
      h.data <- bigger
    end;
    h.data.(h.size) <- (prio, v);
    let i = ref h.size in
    h.size <- h.size + 1;
    while !i > 0 && fst h.data.((!i - 1) / 2) > fst h.data.(!i) do
      swap h ((!i - 1) / 2) !i;
      i := (!i - 1) / 2
    done

  let pop h =
    if h.size = 0 then None
    else begin
      let top = h.data.(0) in
      h.size <- h.size - 1;
      h.data.(0) <- h.data.(h.size);
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < h.size && fst h.data.(l) < fst h.data.(!smallest) then
          smallest := l;
        if r < h.size && fst h.data.(r) < fst h.data.(!smallest) then
          smallest := r;
        if !smallest <> !i then begin
          swap h !i !smallest;
          i := !smallest
        end
        else continue := false
      done;
      Some top
    end
end

let no_link_filter (_ : Link.t) = false
let no_node_filter (_ : Node.id) = false

let run ?(metric = Hops) ?(forbidden_links = no_link_filter)
    ?(forbidden_nodes = no_node_filter) g s =
  let n = Graph.node_count g in
  if s < 0 || s >= n then invalid_arg "Dijkstra.run: bad source";
  let dist = Array.make n infinity in
  let pred = Array.make n None in
  let settled = Array.make n false in
  let heap = Heap.create () in
  dist.(s) <- 0.;
  Heap.push heap 0. s;
  let rec loop () =
    match Heap.pop heap with
    | None -> ()
    | Some (d, u) ->
      if not settled.(u) && d <= dist.(u) then begin
        settled.(u) <- true;
        let relax (l : Link.t) =
          let v = l.Link.dst in
          if
            (not settled.(v))
            && (not (forbidden_links l))
            && not (forbidden_nodes v)
          then begin
            let nd = d +. weight metric l in
            if nd < dist.(v) then begin
              dist.(v) <- nd;
              pred.(v) <- Some l;
              Heap.push heap nd v
            end
          end
        in
        List.iter relax (Graph.out_links g u)
      end;
      loop ()
  in
  loop ();
  { t_source = s; dist; pred }

let distance t v =
  let d = t.dist.(v) in
  if Float.is_finite d then Some d else None

let reachable t v = Float.is_finite t.dist.(v)

let source t = t.t_source

let path_to t v =
  if not (reachable t v) then None
  else begin
    let rec build acc u =
      if u = t.t_source then acc
      else
        match t.pred.(u) with
        | None -> acc (* unreachable intermediate: impossible by invariant *)
        | Some l -> build (l :: acc) l.Link.src
    in
    let links = build [] v in
    if v = t.t_source then Some (Path.singleton v)
    else
      match Path.of_links links with
      | Ok p -> Some p
      | Error _ -> None
  end

let hop_distance t v =
  match path_to t v with
  | None -> None
  | Some p -> Some (Path.hops p)

let shortest_path ?metric g s d = path_to (run ?metric g s) d

let all_pairs_hops g =
  let n = Graph.node_count g in
  let result = Array.make_matrix n n max_int in
  let queue = Queue.create () in
  for s = 0 to n - 1 do
    let row = result.(s) in
    row.(s) <- 0;
    Queue.clear queue;
    Queue.add s queue;
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      let du = row.(u) in
      let visit v =
        if row.(v) = max_int then begin
          row.(v) <- du + 1;
          Queue.add v queue
        end
      in
      List.iter visit (Graph.succs g u)
    done
  done;
  result

let eccentricity g u =
  let t = run ~metric:Hops g u in
  let best = ref None in
  Array.iteri
    (fun v d ->
      if v <> u && Float.is_finite d then
        match !best with
        | None -> best := Some (int_of_float d)
        | Some b -> if int_of_float d > b then best := Some (int_of_float d))
    t.dist;
  !best

let next_hops ?(metric = Hops) g u ~dst =
  if u = dst then []
  else begin
    (* Distances from every neighbour to dst: run Dijkstra backwards from
       dst over reversed links, i.e. use predecessors.  Simpler: run a
       forward tree from each neighbour would be O(deg * n log n); instead
       build the reverse-graph tree from dst once. *)
    let n = Graph.node_count g in
    let dist_to_dst = Array.make n infinity in
    let settled = Array.make n false in
    let heap = Heap.create () in
    dist_to_dst.(dst) <- 0.;
    Heap.push heap 0. dst;
    let rec loop () =
      match Heap.pop heap with
      | None -> ()
      | Some (d, x) ->
        if (not settled.(x)) && d <= dist_to_dst.(x) then begin
          settled.(x) <- true;
          let relax (l : Link.t) =
            (* l : w -> x, so going forward w reaches dst through x *)
            let w = l.Link.src in
            if not settled.(w) then begin
              let nd = d +. weight metric l in
              if nd < dist_to_dst.(w) then begin
                dist_to_dst.(w) <- nd;
                Heap.push heap nd w
              end
            end
          in
          List.iter relax (Graph.in_links g x)
        end;
        loop ()
    in
    loop ();
    let du = dist_to_dst.(u) in
    if not (Float.is_finite du) then []
    else
      List.filter
        (fun (l : Link.t) ->
          let through = weight metric l +. dist_to_dst.(l.Link.dst) in
          Float.is_finite dist_to_dst.(l.Link.dst) && through = du)
        (Graph.out_links g u)
  end
