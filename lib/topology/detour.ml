type availability =
  | Detour of int
  | Unavailable

type profile = {
  one_hop : float;
  two_hop : float;
  three_plus : float;
  unavailable : float;
  total_links : int;
}

let excludes g (l : Link.t) =
  let rev_id =
    match Graph.reverse g l with
    | None -> -1
    | Some r -> r.Link.id
  in
  fun (l' : Link.t) -> l'.Link.id = l.Link.id || l'.Link.id = rev_id

let best_detour g (l : Link.t) =
  let tree =
    Dijkstra.run ~metric:Dijkstra.Hops ~forbidden_links:(excludes g l) g
      l.Link.src
  in
  Dijkstra.path_to tree l.Link.dst

let classify_link g l =
  match best_detour g l with
  | None -> Unavailable
  | Some p -> Detour (Path.hops p - 1)

let detours_via g (l : Link.t) ~max_intermediate =
  if max_intermediate < 1 then
    invalid_arg "Detour.detours_via: max_intermediate must be >= 1";
  let banned = excludes g l in
  let u = l.Link.src and v = l.Link.dst in
  let candidates =
    List.filter_map
      (fun (first : Link.t) ->
        if banned first then None
        else begin
          let w = first.Link.dst in
          if w = v then None (* parallel link, not a detour via a node *)
          else begin
            (* Shortest continuation w -> v avoiding the protected link and
               the origin u (the detour must not bounce back). *)
            let tree =
              Dijkstra.run ~metric:Dijkstra.Hops ~forbidden_links:banned
                ~forbidden_nodes:(fun x -> x = u)
                g w
            in
            match Dijkstra.path_to tree v with
            | None -> None
            | Some continuation ->
              (* total hops = 1 + hops(continuation); intermediates = total - 1 *)
              let intermediate = Path.hops continuation in
              if intermediate > max_intermediate then None
              else begin
                match
                  Path.of_links (first :: continuation.Path.links)
                with
                | Ok p -> Some (w, p)
                | Error _ -> None
              end
          end
        end)
      (Graph.out_links g u)
  in
  (* Sort by detour length, then neighbour id, for determinism. *)
  List.sort
    (fun (w1, p1) (w2, p2) ->
      match Int.compare (Path.hops p1) (Path.hops p2) with
      | 0 -> Int.compare w1 w2
      | c -> c)
    candidates

let classify_links g =
  let links = Graph.undirected_links g in
  let total = List.length links in
  let n1 = ref 0 and n2 = ref 0 and n3 = ref 0 and na = ref 0 in
  List.iter
    (fun l ->
      match classify_link g l with
      | Detour 1 -> incr n1
      | Detour 2 -> incr n2
      | Detour _ -> incr n3
      | Unavailable -> incr na)
    links;
  let frac c = if total = 0 then 0. else float_of_int c /. float_of_int total in
  {
    one_hop = frac !n1;
    two_hop = frac !n2;
    three_plus = frac !n3;
    unavailable = frac !na;
    total_links = total;
  }

let pp_profile ppf p =
  Format.fprintf ppf "1hop=%.2f%% 2hops=%.2f%% 3+hops=%.2f%% N/A=%.2f%% (%d links)"
    (100. *. p.one_hop) (100. *. p.two_hop) (100. *. p.three_plus)
    (100. *. p.unavailable) p.total_links
