let path_cost metric p =
  match (metric : Dijkstra.metric) with
  | Dijkstra.Hops -> float_of_int (Path.hops p)
  | Dijkstra.Delay -> Path.delay p

(* Candidate set ordered by (cost, nodes) so ties break
   deterministically. *)
module Candidates = Set.Make (struct
  type t = float * Node.id list * Path.t

  let compare (c1, n1, _) (c2, n2, _) =
    match Float.compare c1 c2 with
    | 0 -> compare n1 n2
    | c -> c
end)

let k_shortest ?(metric = Dijkstra.Hops) g ~k s d =
  if k <= 0 then invalid_arg "Yen.k_shortest: k must be positive";
  match Dijkstra.shortest_path ~metric g s d with
  | None -> []
  | Some first ->
    let accepted = ref [ first ] in
    let candidates = ref Candidates.empty in
    let seen = Hashtbl.create 16 in
    Hashtbl.add seen first.Path.nodes ();
    let add_candidate p =
      if not (Hashtbl.mem seen p.Path.nodes) then begin
        Hashtbl.add seen p.Path.nodes ();
        candidates :=
          Candidates.add (path_cost metric p, p.Path.nodes, p) !candidates
      end
    in
    let rec grow () =
      if List.length !accepted >= k then ()
      else begin
        let prev = List.hd !accepted in
        let prev_nodes = Array.of_list prev.Path.nodes in
        let prev_links = Array.of_list prev.Path.links in
        (* For each spur node on the previous path, find a deviation. *)
        for i = 0 to Array.length prev_nodes - 2 do
          let spur = prev_nodes.(i) in
          let root_nodes = Array.to_list (Array.sub prev_nodes 0 (i + 1)) in
          let root_links = Array.to_list (Array.sub prev_links 0 i) in
          (* Links leaving the spur node along any accepted path sharing
             this root must be removed. *)
          let banned_links = Hashtbl.create 8 in
          let ban_from (p : Path.t) =
            let pn = Array.of_list p.Path.nodes in
            let pl = Array.of_list p.Path.links in
            if Array.length pn > i then begin
              let same_root = ref true in
              for j = 0 to i do
                if pn.(j) <> prev_nodes.(j) then same_root := false
              done;
              if !same_root && Array.length pl > i then
                Hashtbl.replace banned_links pl.(i).Link.id ()
            end
          in
          List.iter ban_from !accepted;
          Candidates.iter (fun (_, _, p) -> ban_from p) !candidates;
          (* Root nodes other than the spur are forbidden (looplessness). *)
          let banned_nodes = Hashtbl.create 8 in
          List.iter
            (fun u -> if u <> spur then Hashtbl.replace banned_nodes u ())
            root_nodes;
          let tree =
            Dijkstra.run ~metric
              ~forbidden_links:(fun l -> Hashtbl.mem banned_links l.Link.id)
              ~forbidden_nodes:(fun u -> Hashtbl.mem banned_nodes u)
              g spur
          in
          match Dijkstra.path_to tree d with
          | None -> ()
          | Some spur_path ->
            let root =
              match root_links with
              | [] -> Path.singleton spur
              | ls -> begin
                match Path.of_links ls with
                | Ok p -> p
                | Error _ -> Path.singleton spur
              end
            in
            begin match Path.concat root spur_path with
            | Ok total -> if Path.is_simple total then add_candidate total
            | Error _ -> ()
            end
        done;
        match Candidates.min_elt_opt !candidates with
        | None -> ()
        | Some ((_, _, best) as entry) ->
          candidates := Candidates.remove entry !candidates;
          accepted := best :: !accepted;
          grow ()
      end
    in
    grow ();
    List.sort
      (fun a b ->
        match Float.compare (path_cost metric a) (path_cost metric b) with
        | 0 -> compare a.Path.nodes b.Path.nodes
        | c -> c)
      (List.rev !accepted)

let k_disjoint ?(metric = Dijkstra.Hops) g ~k s d =
  if k <= 0 then invalid_arg "Yen.k_disjoint: k must be positive";
  let used = Hashtbl.create 16 in
  let rec collect acc remaining =
    if remaining = 0 then List.rev acc
    else begin
      let tree =
        Dijkstra.run ~metric
          ~forbidden_links:(fun l -> Hashtbl.mem used l.Link.id)
          g s
      in
      match Dijkstra.path_to tree d with
      | None -> List.rev acc
      | Some p ->
        List.iter
          (fun (l : Link.t) -> Hashtbl.replace used l.Link.id ())
          p.Path.links;
        collect (p :: acc) (remaining - 1)
    end
  in
  collect [] k
