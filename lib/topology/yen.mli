(** Yen's algorithm: k shortest loopless paths.

    Used to enumerate candidate detours and by the multipath baselines
    (MPTCP needs several disjoint-ish e2e paths).  Paths are returned
    in non-decreasing cost order; fewer than [k] are returned when the
    graph does not contain that many loopless paths. *)

val k_shortest :
  ?metric:Dijkstra.metric -> Graph.t -> k:int -> Node.id -> Node.id -> Path.t list
(** [k_shortest g ~k s d].
    @raise Invalid_argument if [k <= 0]. *)

val k_disjoint :
  ?metric:Dijkstra.metric -> Graph.t -> k:int -> Node.id -> Node.id -> Path.t list
(** Greedy link-disjoint variant: repeatedly take the shortest path and
    remove its links from consideration.  At most [k] paths. *)
