(** Directed multigraph with dense node and link identifiers.

    This is the substrate every simulator in the repository builds on.
    Graphs are immutable once built: construct one with {!Builder},
    then query it.  Node ids are [0 .. node_count - 1] and link ids are
    [0 .. link_count - 1], so callers can keep per-node / per-link
    state in flat arrays. *)

type t

(** {1 Construction} *)

module Builder : sig
  type graph = t
  type t

  val create : unit -> t

  val add_node : t -> ?role:Node.role -> string -> Node.id
  (** [add_node b name] registers a node and returns its dense id. *)

  val add_link :
    t -> ?capacity:float -> ?delay:float -> Node.id -> Node.id -> unit
  (** [add_link b u v] adds a directed link [u -> v].
      [capacity] defaults to [1e9] bps, [delay] to [1e-3] s.
      @raise Invalid_argument on unknown endpoints or self-loop. *)

  val add_edge :
    t -> ?capacity:float -> ?delay:float -> Node.id -> Node.id -> unit
  (** [add_edge b u v] adds both directions [u -> v] and [v -> u]. *)

  val build : t -> graph
  (** Freeze into an immutable graph.
      @raise Invalid_argument if a duplicate directed link exists. *)
end

val of_edges :
  ?capacity:float -> ?delay:float -> int -> (int * int) list -> t
(** [of_edges n pairs] builds an undirected graph on [n] anonymous
    nodes (named ["n<i>"]) with an edge (both directions) per pair.
    Convenient in tests and builders. *)

(** {1 Queries} *)

val node_count : t -> int
val link_count : t -> int
(** Number of {e directed} links. *)

val node : t -> Node.id -> Node.t
val link : t -> int -> Link.t
val nodes : t -> Node.t list
val links : t -> Link.t list

val out_links : t -> Node.id -> Link.t list
val in_links : t -> Node.id -> Link.t list
val succs : t -> Node.id -> Node.id list
val preds : t -> Node.id -> Node.id list
val out_degree : t -> Node.id -> int

val find_link : t -> Node.id -> Node.id -> Link.t option
(** First directed link [u -> v] if any. *)

val reverse : t -> Link.t -> Link.t option
(** The opposite direction of the same physical link, when present. *)

val undirected_links : t -> Link.t list
(** One representative (the lower-id direction) per physical link.
    Purely directed links (no reverse) are included as themselves. *)

val total_capacity : t -> float
(** Sum of directed link capacities, bits per second. *)

val is_connected : t -> bool
(** Weak connectivity over the underlying undirected structure. *)

val fold_links : (Link.t -> 'a -> 'a) -> t -> 'a -> 'a
val iter_links : (Link.t -> unit) -> t -> unit
val fold_nodes : (Node.t -> 'a -> 'a) -> t -> 'a -> 'a

val pp : Format.formatter -> t -> unit
(** Summary line: node/link counts and capacity. *)
