(** Equal-Cost Multi-Path route sets (RFC 2992 style).

    ECMP is one of the two baselines in Fig. 4a.  For a source and
    destination we enumerate all shortest paths (up to a bound, the
    equal-cost DAG can be exponential) and hash flows onto them. *)

val equal_cost_paths :
  ?metric:Dijkstra.metric -> ?limit:int -> Graph.t -> Node.id -> Node.id -> Path.t list
(** All shortest paths from source to destination, up to [limit]
    (default 16), deterministic order.  Empty when unreachable. *)

val pick : Path.t list -> flow_id:int -> Path.t option
(** Deterministic hash-based selection among candidate paths, the
    per-flow splitting mode of RFC 2992 (no packet reordering). *)

val hash_flow : flow_id:int -> buckets:int -> int
(** The underlying hash: stable across runs, uniform-ish over buckets.
    @raise Invalid_argument if [buckets <= 0]. *)
