type t = {
  nodes : Node.id list;
  links : Link.t list;
}

let singleton u = { nodes = [ u ]; links = [] }

let of_nodes g ns =
  match ns with
  | [] -> Error "Path.of_nodes: empty node list"
  | [ u ] -> Ok (singleton u)
  | _ ->
    let rec walk acc = function
      | a :: (b :: _ as rest) -> begin
        match Graph.find_link g a b with
        | Some l -> walk (l :: acc) rest
        | None -> Error (Printf.sprintf "Path.of_nodes: no link %d->%d" a b)
      end
      | [ _ ] | [] -> Ok (List.rev acc)
    in
    begin match walk [] ns with
    | Error _ as e -> e
    | Ok links -> Ok { nodes = ns; links }
    end

let of_nodes_exn g ns =
  match of_nodes g ns with
  | Ok p -> p
  | Error msg -> invalid_arg msg

let of_links ls =
  match ls with
  | [] -> Error "Path.of_links: empty link list"
  | first :: _ ->
    let rec walk acc_nodes prev = function
      | [] -> Ok (List.rev acc_nodes)
      | (l : Link.t) :: rest ->
        if l.Link.src <> prev then
          Error
            (Printf.sprintf "Path.of_links: discontinuity at %d (link %d->%d)"
               prev l.Link.src l.Link.dst)
        else walk (l.Link.dst :: acc_nodes) l.Link.dst rest
    in
    begin match walk [ first.Link.src ] first.Link.src ls with
    | Error _ as e -> e
    | Ok nodes -> Ok { nodes; links = ls }
    end

let src p = List.hd p.nodes

let dst p =
  let rec last = function
    | [ x ] -> x
    | _ :: rest -> last rest
    | [] -> assert false
  in
  last p.nodes

let hops p = List.length p.links

let delay p = List.fold_left (fun acc (l : Link.t) -> acc +. l.Link.delay) 0. p.links

let bottleneck p =
  List.fold_left
    (fun acc (l : Link.t) -> Float.min acc l.Link.capacity)
    infinity p.links

let mem_node p u = List.mem u p.nodes

let mem_link p (l : Link.t) =
  List.exists (fun (l' : Link.t) -> l'.Link.id = l.Link.id) p.links

let is_simple p =
  let sorted = List.sort Int.compare p.nodes in
  let rec no_dup = function
    | a :: (b :: _ as rest) -> a <> b && no_dup rest
    | [ _ ] | [] -> true
  in
  no_dup sorted

let stretch ~shortest p =
  let h = hops p in
  if h = 0 then 1.
  else if shortest <= 0 then
    invalid_arg "Path.stretch: shortest must be positive"
  else float_of_int h /. float_of_int shortest

let concat a b =
  if dst a <> src b then
    Error
      (Printf.sprintf "Path.concat: endpoints mismatch (%d vs %d)" (dst a)
         (src b))
  else
    Ok { nodes = a.nodes @ List.tl b.nodes; links = a.links @ b.links }

(* [splice] works on indexed views of the path: node i sits before link
   i, so the prefix up to node index i keeps links [0 .. i-1] and the
   suffix from node index j keeps links [j ..]. *)
let splice p ~at ~replacement ~rejoin =
  if src replacement <> at || dst replacement <> rejoin then
    Error "Path.splice: replacement endpoints do not match at/rejoin"
  else
    let nodes = Array.of_list p.nodes in
    let links = Array.of_list p.links in
    let n = Array.length nodes in
    let index_from start x =
      let rec go i = if i >= n then None else if nodes.(i) = x then Some i else go (i + 1) in
      go start
    in
    match index_from 0 at with
    | None -> Error "Path.splice: at-node not on path"
    | Some i ->
      match index_from (i + 1) rejoin with
      | None -> Error "Path.splice: rejoin-node not after at-node"
      | Some j ->
        let prefix_nodes = Array.to_list (Array.sub nodes 0 i) in
        let prefix_links = Array.to_list (Array.sub links 0 i) in
        let suffix_nodes = Array.to_list (Array.sub nodes (j + 1) (n - j - 1)) in
        let suffix_links = Array.to_list (Array.sub links j (Array.length links - j)) in
        Ok
          {
            nodes = prefix_nodes @ replacement.nodes @ suffix_nodes;
            links = prefix_links @ replacement.links @ suffix_links;
          }

let equal a b =
  a.nodes = b.nodes
  && List.length a.links = List.length b.links
  && List.for_all2 Link.equal a.links b.links

let pp ppf p =
  Format.fprintf ppf "[%a]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "->")
       Format.pp_print_int)
    p.nodes
