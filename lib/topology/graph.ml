(* endpoint pairs are packed into one int so [find_link] (called from
   routing hot paths) neither allocates a tuple key nor pays the
   polymorphic hasher; node ids fit comfortably in 31 bits *)
let endpoint_key u v = (u lsl 31) lor v

type t = {
  node_arr : Node.t array;
  link_arr : Link.t array;
  out_adj : Link.t list array;   (* out-links per node, insertion order *)
  in_adj : Link.t list array;
  by_endpoints : (int, Link.t) Hashtbl.t;
}

module Builder = struct
  type graph = t

  type pending_link = {
    p_src : Node.id;
    p_dst : Node.id;
    p_capacity : float;
    p_delay : float;
  }

  type t = {
    mutable rev_nodes : Node.t list;
    mutable n : int;
    mutable rev_links : pending_link list;
    mutable m : int;
  }

  let create () = { rev_nodes = []; n = 0; rev_links = []; m = 0 }

  let add_node b ?(role = Node.Core) name =
    let id = b.n in
    b.rev_nodes <- Node.make ~role id name :: b.rev_nodes;
    b.n <- id + 1;
    id

  let check_endpoint b u =
    if u < 0 || u >= b.n then
      invalid_arg (Printf.sprintf "Graph.Builder: unknown node %d" u)

  let add_link b ?(capacity = 1e9) ?(delay = 1e-3) u v =
    check_endpoint b u;
    check_endpoint b v;
    if u = v then invalid_arg "Graph.Builder.add_link: self-loop";
    if capacity <= 0. then invalid_arg "Graph.Builder.add_link: capacity <= 0";
    if delay < 0. then invalid_arg "Graph.Builder.add_link: delay < 0";
    b.rev_links <-
      { p_src = u; p_dst = v; p_capacity = capacity; p_delay = delay }
      :: b.rev_links;
    b.m <- b.m + 1

  let add_edge b ?capacity ?delay u v =
    add_link b ?capacity ?delay u v;
    add_link b ?capacity ?delay v u

  let build b =
    let node_arr = Array.of_list (List.rev b.rev_nodes) in
    let n = Array.length node_arr in
    let pendings = List.rev b.rev_links in
    let link_arr =
      Array.of_list
        (List.mapi
           (fun id p ->
             Link.make ~id ~src:p.p_src ~dst:p.p_dst ~capacity:p.p_capacity
               ~delay:p.p_delay)
           pendings)
    in
    let out_adj = Array.make n [] and in_adj = Array.make n [] in
    let by_endpoints = Hashtbl.create (max 16 (Array.length link_arr)) in
    Array.iter
      (fun (l : Link.t) ->
        let k = endpoint_key l.Link.src l.Link.dst in
        if Hashtbl.mem by_endpoints k then
          invalid_arg
            (Printf.sprintf "Graph.Builder.build: duplicate link %d->%d"
               l.Link.src l.Link.dst);
        Hashtbl.add by_endpoints k l;
        out_adj.(l.Link.src) <- l :: out_adj.(l.Link.src);
        in_adj.(l.Link.dst) <- l :: in_adj.(l.Link.dst))
      link_arr;
    Array.iteri (fun i ls -> out_adj.(i) <- List.rev ls) out_adj;
    Array.iteri (fun i ls -> in_adj.(i) <- List.rev ls) in_adj;
    { node_arr; link_arr; out_adj; in_adj; by_endpoints }
end

let of_edges ?capacity ?delay n pairs =
  let b = Builder.create () in
  for i = 0 to n - 1 do
    ignore (Builder.add_node b (Printf.sprintf "n%d" i))
  done;
  List.iter (fun (u, v) -> Builder.add_edge b ?capacity ?delay u v) pairs;
  Builder.build b

let node_count g = Array.length g.node_arr
let link_count g = Array.length g.link_arr
let node g i = g.node_arr.(i)
let link g i = g.link_arr.(i)
let nodes g = Array.to_list g.node_arr
let links g = Array.to_list g.link_arr
let out_links g u = g.out_adj.(u)
let in_links g u = g.in_adj.(u)
let succs g u = List.map (fun (l : Link.t) -> l.Link.dst) g.out_adj.(u)
let preds g u = List.map (fun (l : Link.t) -> l.Link.src) g.in_adj.(u)
let out_degree g u = List.length g.out_adj.(u)

let find_link g u v = Hashtbl.find_opt g.by_endpoints (endpoint_key u v)

let reverse g (l : Link.t) = find_link g l.Link.dst l.Link.src

let undirected_links g =
  let keep (l : Link.t) =
    match reverse g l with
    | None -> true
    | Some r -> l.Link.id < r.Link.id
  in
  List.filter keep (links g)

let total_capacity g =
  Array.fold_left (fun acc (l : Link.t) -> acc +. l.Link.capacity) 0. g.link_arr

let is_connected g =
  let n = node_count g in
  if n = 0 then true
  else begin
    let seen = Array.make n false in
    let stack = ref [ 0 ] in
    seen.(0) <- true;
    let visited = ref 1 in
    while !stack <> [] do
      match !stack with
      | [] -> ()
      | u :: rest ->
        stack := rest;
        let push v =
          if not seen.(v) then begin
            seen.(v) <- true;
            incr visited;
            stack := v :: !stack
          end
        in
        List.iter push (succs g u);
        List.iter push (preds g u)
    done;
    !visited = n
  end

let fold_links f g acc = Array.fold_left (fun acc l -> f l acc) acc g.link_arr
let iter_links f g = Array.iter f g.link_arr
let fold_nodes f g acc = Array.fold_left (fun acc v -> f v acc) acc g.node_arr

let pp ppf g =
  Format.fprintf ppf "graph(%d nodes, %d links, %.3g bps total)"
    (node_count g) (link_count g) (total_capacity g)
