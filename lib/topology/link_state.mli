(** Mutable up/down view over a topology's directed links.

    The graph itself stays immutable; fault injection flips entries
    here, and everything that must react to an outage — the chunk
    router's detour filter, custody evacuation, the observability
    layer's per-link up/down timeseries — reads or subscribes to this
    view.  One instance is shared per run: the fault driver writes it,
    protocol and telemetry read it. *)

type t

val create : Graph.t -> t
(** All links start up. *)

val link_count : t -> int

val is_up : t -> int -> bool
(** By link id.  @raise Invalid_argument on an out-of-range id. *)

val set : t -> int -> up:bool -> unit
(** Idempotent: setting the current state fires no subscriber and
    counts no transition. *)

val on_change : t -> (int -> bool -> unit) -> unit
(** Subscribe to state flips; called as [f link_id up] after the entry
    is updated, in subscription order. *)

val down_links : t -> int list
(** Currently-down link ids, ascending. *)

val all_up : t -> bool

val transitions : t -> int
(** Total state flips so far (both directions). *)
