(** Text rendering of experiment outputs: aligned tables and ASCII
    CDF/bar plots, used by the bench harness to print the paper's
    tables and figure series. *)

type align =
  | Left
  | Right

val table :
  ?align:align list -> header:string list -> string list list ->
  Format.formatter -> unit -> unit
(** [table ~header rows ppf ()] prints an aligned table with a rule
    under the header.  Alignment defaults to [Left] for the first
    column and [Right] for the rest; a short [align] list is padded
    with its last element.
    @raise Invalid_argument when a row width differs from the header. *)

val bar_chart :
  ?width:int -> header:string -> (string * float) list ->
  Format.formatter -> unit -> unit
(** Horizontal bars scaled to the maximum value ([width] columns,
    default 40), with numeric labels — used for Fig. 4a-style grouped
    results. *)

val cdf_plot :
  ?width:int -> ?height:int -> header:string ->
  (string * (float * float) list) list -> Format.formatter -> unit -> unit
(** ASCII rendering of one or more CDF series ([(x, P)] pairs with P in
    [[0, 1]]).  Each series gets a distinct glyph; a legend follows the
    plot.  Used for Fig. 4b. *)

val percent : float -> string
(** [percent 0.1234] is ["12.34%"]. *)
