(** Fairness indices.

    Jain's index (Chiu & Jain, the paper's §3.1 metric):
    F = (Σ T)² / (n Σ T²) — 1 for equal shares, 1/n when one flow
    takes everything. *)

val jain : float array -> float
(** [1.] on an empty array or when every throughput is zero (the
    degenerate all-equal case).
    @raise Invalid_argument on negative throughputs. *)

val max_min_ratio : float array -> float
(** min / max throughput; [1.] when empty or all-zero. *)

val normalised_entropy : float array -> float
(** Shannon entropy of the throughput shares divided by [log n];
    1 for equal shares.  [1.] when fewer than two flows. *)
