type align =
  | Left
  | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else begin
    let fill = String.make (width - n) ' ' in
    match align with
    | Left -> s ^ fill
    | Right -> fill ^ s
  end

let table ?(align = [ Left; Right ]) ~header rows ppf () =
  let ncols = List.length header in
  List.iteri
    (fun i row ->
      if List.length row <> ncols then
        invalid_arg
          (Printf.sprintf "Report.table: row %d has %d cells, expected %d" i
             (List.length row) ncols))
    rows;
  let aligns =
    let rec fill i prev =
      if i >= ncols then []
      else begin
        match List.nth_opt align i with
        | Some a -> a :: fill (i + 1) a
        | None -> prev :: fill (i + 1) prev
      end
    in
    fill 0 Left
  in
  let widths =
    List.mapi
      (fun c h ->
        List.fold_left
          (fun acc row -> max acc (String.length (List.nth row c)))
          (String.length h) rows)
      header
  in
  let print_row cells =
    let padded =
      List.map2
        (fun (a, w) cell -> pad a w cell)
        (List.combine aligns widths)
        cells
    in
    Format.fprintf ppf "%s@." (String.concat "  " padded)
  in
  print_row header;
  Format.fprintf ppf "%s@."
    (String.concat "  " (List.map (fun w -> String.make w '-') widths));
  List.iter print_row rows

let bar_chart ?(width = 40) ~header entries ppf () =
  Format.fprintf ppf "%s@." header;
  let maxv =
    List.fold_left (fun acc (_, v) -> Float.max acc (Float.abs v)) 0. entries
  in
  let label_width =
    List.fold_left (fun acc (l, _) -> max acc (String.length l)) 0 entries
  in
  List.iter
    (fun (label, v) ->
      let bar_len =
        if maxv <= 0. then 0
        else int_of_float (Float.round (Float.abs v /. maxv *. float_of_int width))
      in
      Format.fprintf ppf "%s  %s %.3f@."
        (pad Left label_width label)
        (String.make bar_len '#') v)
    entries

let cdf_plot ?(width = 60) ?(height = 16) ~header series ppf () =
  Format.fprintf ppf "%s@." header;
  match series with
  | [] -> ()
  | _ ->
    let glyphs = [| '*'; 'o'; '+'; 'x'; '#'; '@' |] in
    let all_x = List.concat_map (fun (_, pts) -> List.map fst pts) series in
    (match all_x with
    | [] -> ()
    | x0 :: _ ->
      let xmin = List.fold_left Float.min x0 all_x in
      let xmax = List.fold_left Float.max x0 all_x in
      let xspan = if xmax > xmin then xmax -. xmin else 1. in
      let canvas = Array.make_matrix height width ' ' in
      List.iteri
        (fun si (_, pts) ->
          let glyph = glyphs.(si mod Array.length glyphs) in
          List.iter
            (fun (x, p) ->
              let col =
                int_of_float
                  (Float.round ((x -. xmin) /. xspan *. float_of_int (width - 1)))
              in
              let row =
                int_of_float
                  (Float.round ((1. -. p) *. float_of_int (height - 1)))
              in
              if row >= 0 && row < height && col >= 0 && col < width then
                canvas.(row).(col) <- glyph)
            pts)
        series;
      for r = 0 to height - 1 do
        let p = 1. -. (float_of_int r /. float_of_int (height - 1)) in
        Format.fprintf ppf "%4.2f |%s@." p (String.init width (fun c -> canvas.(r).(c)))
      done;
      Format.fprintf ppf "     +%s@." (String.make width '-');
      Format.fprintf ppf "      %-8.3g%s%8.3g@." xmin
        (String.make (max 1 (width - 16)) ' ')
        xmax;
      List.iteri
        (fun si (name, _) ->
          Format.fprintf ppf "      %c %s@." glyphs.(si mod Array.length glyphs) name)
        series)

let percent v = Printf.sprintf "%.2f%%" (100. *. v)
