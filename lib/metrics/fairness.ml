let validate throughputs =
  Array.iter
    (fun t ->
      if t < 0. || Float.is_nan t then
        invalid_arg "Fairness: negative or NaN throughput")
    throughputs

let jain throughputs =
  validate throughputs;
  let n = Array.length throughputs in
  if n = 0 then 1.
  else begin
    let sum = Array.fold_left ( +. ) 0. throughputs in
    let sum_sq = Array.fold_left (fun acc t -> acc +. (t *. t)) 0. throughputs in
    if sum_sq = 0. then 1. else sum *. sum /. (float_of_int n *. sum_sq)
  end

let max_min_ratio throughputs =
  validate throughputs;
  if Array.length throughputs = 0 then 1.
  else begin
    let mn = Array.fold_left Float.min infinity throughputs in
    let mx = Array.fold_left Float.max 0. throughputs in
    if mx = 0. then 1. else mn /. mx
  end

let normalised_entropy throughputs =
  validate throughputs;
  let n = Array.length throughputs in
  if n < 2 then 1.
  else begin
    let sum = Array.fold_left ( +. ) 0. throughputs in
    if sum = 0. then 1.
    else begin
      let h =
        Array.fold_left
          (fun acc t ->
            if t = 0. then acc
            else begin
              let p = t /. sum in
              acc -. (p *. log p)
            end)
          0. throughputs
      in
      h /. log (float_of_int n)
    end
  end
