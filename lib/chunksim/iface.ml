type discipline =
  | Fifo_discipline
  | Drr of float

type queue =
  | Q_fifo of Fifo.t
  | Q_drr of Rr_queue.t

(* Two transmitter implementations share this record.

   Fast path (no wire loss): the transmitter is a [next_free_at]
   virtual clock.  Popping a packet advances the clock by its
   serialisation time and schedules its arrival — one pre-allocated
   engine event per packet, no per-packet closure.  Pops that fall due
   while no event touches the interface are performed lazily ("catch
   up") by the next send, delivery or state read, with the start time
   taken from the virtual clock, so queue occupancy, DRR service
   order, delivery timestamps and utilisation are exactly those of an
   eager transmitter.  Transmission statistics accrue the same way:
   at most one popped packet's completion lies in the future at any
   instant, so a single pending record is settled lazily.

   Slow path (wire loss configured): the original two-event scheme —
   a serialisation-complete event that rolls the loss dice, then a
   propagation event per surviving packet — because the loss decision
   must happen at completion time in RNG order. *)
type t = {
  eng : Sim.Engine.t;
  l : Topology.Link.t;
  q : queue;
  effective_rate : float;
  prop_delay : float;
  deliver : Packet.t -> unit;
  loss : (float * Sim.Rng.t) option;
  (* fast path *)
  mutable next_free_at : float;  (* virtual clock: busy until this time *)
  mutable chain_stamp : int;     (* scheduling stamp of the send that
                                    began the current busy period *)
  wire : Packet.t Queue.t;       (* popped packets awaiting their arrival *)
  mutable arrive : unit -> unit; (* the shared delivery continuation *)
  mutable inflight_tx : float;   (* un-settled tx seconds … *)
  mutable inflight_bits : float; (* … and bits of the newest popped packet *)
  mutable inflight_pending : bool;
  (* slow path *)
  mutable is_busy : bool;
  (* fault state: a downed interface refuses admission, stops popping
     its queue, and destroys whatever was already on the wire *)
  mutable up : bool;
  mutable kill_wire : int;       (* in-flight packets to destroy on arrival *)
  mutable slow_inflight : int;   (* slow path: propagations scheduled, not arrived *)
  mutable fault_tap : Packet.t -> unit;
  (* span tracing: called with (serialisation start, packet) when a
     transmission begins; [None] costs one match per pop *)
  mutable span_tap : (float -> Packet.t -> unit) option;
  (* profiler kind id claimed by this interface's arrival events *)
  mutable prof_kind : int;
  (* statistics *)
  mutable busy_accum : float;    (* total seconds spent transmitting *)
  mutable tx_bits_acc : float;
  mutable tx_packets_acc : int;
  mutable wire_loss_acc : int;
  mutable fault_drops_acc : int;
}

let default_queue_bits = 64. *. 10e3 *. 8.

let link t = t.l

let rate t = t.effective_rate

let q_pop t =
  match t.q with
  | Q_fifo f -> Fifo.pop f
  | Q_drr d -> Rr_queue.pop d

let q_push t (p : Packet.t) =
  match t.q with
  | Q_fifo f -> Fifo.push f p
  | Q_drr d -> Rr_queue.push d ~class_id:(Packet.flow p) p

(* ------------------------------------------------------------------ *)
(* Fast path *)

(* accrue the newest popped packet once its completion time passes *)
let settle t ~now =
  if t.inflight_pending && t.next_free_at <= now then begin
    t.busy_accum <- t.busy_accum +. t.inflight_tx;
    t.tx_bits_acc <- t.tx_bits_acc +. t.inflight_bits;
    t.tx_packets_acc <- t.tx_packets_acc + 1;
    t.inflight_pending <- false
  end

(* start serialising [p] at the virtual clock and schedule its arrival.
   The arrival lies strictly in the future: a packet only waits in the
   queue while a predecessor is on the wire, and our caller pops it no
   later than the predecessor's arrival event, so
   [next_free_at + tx + prop > predecessor arrival >= now].  The
   arrival's tie-break epoch is the completion instant — where the
   eager two-event scheme would have scheduled the propagation — so
   it sorts identically among simultaneous events. *)
let start_tx t (p : Packet.t) =
  settle t ~now:t.next_free_at;
  let start = t.next_free_at in
  (match t.span_tap with Some f -> f start p | None -> ());
  let tx = p.Packet.size /. t.effective_rate in
  t.next_free_at <- start +. tx;
  t.inflight_tx <- tx;
  t.inflight_bits <- p.Packet.size;
  t.inflight_pending <- true;
  Queue.add p t.wire;
  Sim.Engine.schedule_fixed_at t.eng ~epoch:t.next_free_at
    ~parent_epoch:start ~stamp:t.chain_stamp
    ~time:(t.next_free_at +. t.prop_delay)
    t.arrive

(* Is the pending completion at [next_free_at] due?  Strictly past:
   yes.  At an exact tie the eager scheme's completion event — pushed
   when its packet started transmitting — has run already iff it
   sorts before the event executing right now, i.e. iff the
   transmission's start instant precedes the current event's epoch. *)
let completion_due t ~now =
  t.next_free_at < now
  || (t.next_free_at = now
      && t.next_free_at -. t.inflight_tx < Sim.Engine.current_epoch t.eng)

(* perform every pop whose completion event would already have run,
   exactly as the eager transmitter would have at those instants *)
let rec catch_up t ~now =
  if completion_due t ~now then begin
    if t.up then begin
      match q_pop t with
      | Some p ->
        start_tx t p;
        catch_up t ~now
      | None -> settle t ~now
    end
    else settle t ~now (* down: never pop, but do accrue past work *)
  end

(* the one pre-allocated continuation: deliver the oldest packet on
   the wire (arrivals fire in FIFO order — serialisation times are
   strictly positive, so arrival times strictly increase) *)
let on_arrival t =
  Sim.Engine.profile_mark t.eng t.prof_kind;
  let p = Queue.pop t.wire in
  catch_up t ~now:(Sim.Engine.now t.eng);
  (* packets that were on the wire when the link went down die at
     their would-be arrival instant (arrivals are FIFO, so the next
     [kill_wire] arrivals are exactly those packets) *)
  if t.kill_wire > 0 then begin
    t.kill_wire <- t.kill_wire - 1;
    t.fault_drops_acc <- t.fault_drops_acc + 1;
    t.fault_tap p
  end
  else t.deliver p

let send_fast t p =
  let now = Sim.Engine.now t.eng in
  catch_up t ~now;
  match q_push t p with
  | `Dropped -> `Dropped
  | `Queued ->
    (* Start transmitting right away only if the transmitter is truly
       idle (its last completion event has run — [inflight_pending]
       false covers the exact-tie case).  If a completion is pending
       at this very instant but ordered after the current event, the
       eager scheme would pop inside that later completion event;
       leaving the pop to a later catch-up reproduces both the pop's
       candidate set and the queue occupancy seen by any event ordered
       in between. *)
    if t.next_free_at < now || (t.next_free_at = now && not t.inflight_pending)
    then begin
      match q_pop t with
      | Some head ->
        t.next_free_at <- now;
        (* a busy period begins here: arrivals scheduled lazily for
           its later packets tie-break as if pushed now *)
        t.chain_stamp <- Sim.Engine.stamp t.eng;
        start_tx t head
      | None -> ()
    end;
    `Queued

(* ------------------------------------------------------------------ *)
(* Slow path: wire loss configured (the pre-overhaul two-event
   scheme, kept verbatim so the loss dice roll at completion time) *)

let rec kick t =
  if (not t.is_busy) && t.up then begin
    match q_pop t with
    | None -> ()
    | Some p ->
      t.is_busy <- true;
      (match t.span_tap with
      | Some f -> f (Sim.Engine.now t.eng) p
      | None -> ());
      let tx_time = p.Packet.size /. t.effective_rate in
      ignore
        (Sim.Engine.schedule t.eng ~delay:tx_time (fun () ->
             Sim.Engine.profile_mark t.eng t.prof_kind;
             t.is_busy <- false;
             t.busy_accum <- t.busy_accum +. tx_time;
             t.tx_bits_acc <- t.tx_bits_acc +. p.Packet.size;
             t.tx_packets_acc <- t.tx_packets_acc + 1;
             if not t.up then begin
               (* link went down mid-serialisation: the frame dies on
                  the cut wire (no loss dice, no propagation) *)
               t.fault_drops_acc <- t.fault_drops_acc + 1;
               t.fault_tap p
             end
             else begin
               let lost =
                 match t.loss with
                 | Some (prob, rng) when Sim.Rng.float rng 1. < prob ->
                   t.wire_loss_acc <- t.wire_loss_acc + 1;
                   true
                 | Some _ | None -> false
               in
               if not lost then begin
                 t.slow_inflight <- t.slow_inflight + 1;
                 ignore
                   (Sim.Engine.schedule t.eng ~delay:t.prop_delay (fun () ->
                        Sim.Engine.profile_mark t.eng t.prof_kind;
                        t.slow_inflight <- t.slow_inflight - 1;
                        if t.kill_wire > 0 then begin
                          t.kill_wire <- t.kill_wire - 1;
                          t.fault_drops_acc <- t.fault_drops_acc + 1;
                          t.fault_tap p
                        end
                        else t.deliver p))
               end;
               kick t
             end))
  end

(* ------------------------------------------------------------------ *)

let create ?(queue_bits = default_queue_bits) ?(speed_factor = 1.)
    ?(discipline = Fifo_discipline) ?loss eng l ~deliver =
  if queue_bits <= 0. then invalid_arg "Iface.create: queue_bits <= 0";
  if speed_factor <= 0. || speed_factor > 1. then
    invalid_arg "Iface.create: speed_factor outside (0,1]";
  (match loss with
  | Some (p, _) when p < 0. || p >= 1. ->
    invalid_arg "Iface.create: loss probability outside [0,1)"
  | Some _ | None -> ());
  let t =
    {
      eng;
      l;
      q =
        (match discipline with
        | Fifo_discipline -> Q_fifo (Fifo.create ~capacity:queue_bits)
        | Drr quantum ->
          Q_drr (Rr_queue.create ~quantum ~capacity:queue_bits ()));
      effective_rate = l.Topology.Link.capacity *. speed_factor;
      prop_delay = l.Topology.Link.delay;
      deliver;
      loss;
      next_free_at = 0.;
      chain_stamp = 0;
      wire = Queue.create ();
      arrive = (fun () -> ());
      inflight_tx = 0.;
      inflight_bits = 0.;
      inflight_pending = false;
      is_busy = false;
      up = true;
      kill_wire = 0;
      slow_inflight = 0;
      fault_tap = (fun _ -> ());
      span_tap = None;
      prof_kind = 0;
      busy_accum = 0.;
      tx_bits_acc = 0.;
      tx_packets_acc = 0;
      wire_loss_acc = 0;
      fault_drops_acc = 0;
    }
  in
  t.arrive <- (fun () -> on_arrival t);
  t

let send t p =
  if not t.up then `Dropped (* admission refusal while down *)
  else
    match t.loss with
    | None -> send_fast t p
    | Some _ -> begin
      match q_push t p with
      | `Dropped -> `Dropped
      | `Queued ->
        kick t;
        `Queued
    end

(* Reads catch the virtual transmitter up first, so observed queue
   occupancy, busy state and statistics are those of the eager
   two-event scheme at the same instant. *)
let sync t =
  if t.loss = None then catch_up t ~now:(Sim.Engine.now t.eng)

let queue_occupancy t =
  sync t;
  match t.q with
  | Q_fifo f -> Fifo.occupancy f
  | Q_drr d -> Rr_queue.occupancy d

let queue_capacity t =
  match t.q with
  | Q_fifo f -> Fifo.capacity f
  | Q_drr d -> Rr_queue.capacity d

let busy t =
  match t.loss with
  | None ->
    sync t;
    let now = Sim.Engine.now t.eng in
    (* at an exact tie the transmitter is still busy iff its
       completion event has not run yet (inflight still pending) *)
    t.next_free_at > now || (t.next_free_at = now && t.inflight_pending)
  | Some _ -> t.is_busy

let utilisation t ~now =
  sync t;
  if now <= 0. then 0. else t.busy_accum /. now

let tx_bits t =
  sync t;
  t.tx_bits_acc

let tx_packets t =
  sync t;
  t.tx_packets_acc

let drops t =
  match t.q with
  | Q_fifo f -> Fifo.total_dropped f
  | Q_drr d -> Rr_queue.total_dropped d

let wire_losses t = t.wire_loss_acc

(* ------------------------------------------------------------------ *)
(* Fault control *)

let is_up t = t.up

let fault_drops t = t.fault_drops_acc

let set_fault_tap t f = t.fault_tap <- f

let set_span_tap t f = t.span_tap <- f

let set_profile_kind t k = t.prof_kind <- k

let set_down ?(policy = `Drop_queued) t =
  if t.up then begin
    sync t;
    t.up <- false;
    (* everything already on the wire dies at its arrival instant *)
    t.kill_wire <- t.kill_wire + Queue.length t.wire + t.slow_inflight;
    match policy with
    | `Hold_queued -> ()
    | `Drop_queued ->
      let rec flush () =
        match q_pop t with
        | Some p ->
          t.fault_drops_acc <- t.fault_drops_acc + 1;
          t.fault_tap p;
          flush ()
        | None -> ()
      in
      flush ()
  end

let set_up t =
  if not t.up then begin
    t.up <- true;
    let now = Sim.Engine.now t.eng in
    match t.loss with
    | Some _ -> kick t
    | None ->
      (* The virtual transmitter may have gone idle during the outage;
         restart the busy period for any held packets.  Do not catch up
         with the stale clock first — pops while down were refused, so
         popping at [next_free_at] now would schedule arrivals in the
         past. *)
      settle t ~now;
      if t.next_free_at < now || (t.next_free_at = now && not t.inflight_pending)
      then begin
        match q_pop t with
        | Some head ->
          t.next_free_at <- now;
          t.chain_stamp <- Sim.Engine.stamp t.eng;
          start_tx t head
        | None -> ()
      end
  end
