type discipline =
  | Fifo_discipline
  | Drr of float

type queue =
  | Q_fifo of Fifo.t
  | Q_drr of Rr_queue.t

type t = {
  eng : Sim.Engine.t;
  l : Topology.Link.t;
  q : queue;
  effective_rate : float;
  deliver : Packet.t -> unit;
  loss : (float * Sim.Rng.t) option;
  mutable is_busy : bool;
  mutable busy_accum : float;   (* total seconds spent transmitting *)
  mutable tx_bits_acc : float;
  mutable tx_packets_acc : int;
  mutable wire_loss_acc : int;
}

let default_queue_bits = 64. *. 10e3 *. 8.

let create ?(queue_bits = default_queue_bits) ?(speed_factor = 1.)
    ?(discipline = Fifo_discipline) ?loss eng l ~deliver =
  if queue_bits <= 0. then invalid_arg "Iface.create: queue_bits <= 0";
  if speed_factor <= 0. || speed_factor > 1. then
    invalid_arg "Iface.create: speed_factor outside (0,1]";
  (match loss with
  | Some (p, _) when p < 0. || p >= 1. ->
    invalid_arg "Iface.create: loss probability outside [0,1)"
  | Some _ | None -> ());
  {
    eng;
    l;
    q =
      (match discipline with
      | Fifo_discipline -> Q_fifo (Fifo.create ~capacity:queue_bits)
      | Drr quantum -> Q_drr (Rr_queue.create ~quantum ~capacity:queue_bits ()));
    effective_rate = l.Topology.Link.capacity *. speed_factor;
    deliver;
    loss;
    is_busy = false;
    busy_accum = 0.;
    tx_bits_acc = 0.;
    tx_packets_acc = 0;
    wire_loss_acc = 0;
  }

let link t = t.l

let rate t = t.effective_rate

(* Serialise the head-of-line packet; on completion deliver it after
   the propagation delay and continue with the next one. *)
let q_pop t =
  match t.q with
  | Q_fifo f -> Fifo.pop f
  | Q_drr d -> Rr_queue.pop d

let q_push t (p : Packet.t) =
  match t.q with
  | Q_fifo f -> Fifo.push f p
  | Q_drr d -> Rr_queue.push d ~class_id:(Packet.flow p) p

let rec kick t =
  if not t.is_busy then begin
    match q_pop t with
    | None -> ()
    | Some p ->
      t.is_busy <- true;
      let tx_time = p.Packet.size /. t.effective_rate in
      ignore
        (Sim.Engine.schedule t.eng ~delay:tx_time (fun () ->
             t.is_busy <- false;
             t.busy_accum <- t.busy_accum +. tx_time;
             t.tx_bits_acc <- t.tx_bits_acc +. p.Packet.size;
             t.tx_packets_acc <- t.tx_packets_acc + 1;
             let lost =
               match t.loss with
               | Some (prob, rng) when Sim.Rng.float rng 1. < prob ->
                 t.wire_loss_acc <- t.wire_loss_acc + 1;
                 true
               | Some _ | None -> false
             in
             if not lost then
               ignore
                 (Sim.Engine.schedule t.eng ~delay:t.l.Topology.Link.delay
                    (fun () -> t.deliver p));
             kick t))
  end

let send t p =
  match q_push t p with
  | `Dropped -> `Dropped
  | `Queued ->
    kick t;
    `Queued

let queue_occupancy t =
  match t.q with
  | Q_fifo f -> Fifo.occupancy f
  | Q_drr d -> Rr_queue.occupancy d

let queue_capacity t =
  match t.q with
  | Q_fifo f -> Fifo.capacity f
  | Q_drr d -> Rr_queue.capacity d

let busy t = t.is_busy

let utilisation t ~now = if now <= 0. then 0. else t.busy_accum /. now

let tx_bits t = t.tx_bits_acc
let tx_packets t = t.tx_packets_acc
let drops t =
  match t.q with
  | Q_fifo f -> Fifo.total_dropped f
  | Q_drr d -> Rr_queue.total_dropped d

let wire_losses t = t.wire_loss_acc
