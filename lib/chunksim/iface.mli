(** Output interface: serialises packets onto one directed link.

    Owns a bounded FIFO; transmits at link rate; delivers each packet
    to the far node after the propagation delay.  Forwarding speed can
    be derated below nominal capacity (the paper's §3.3 footnote about
    not operating at full capacity) via [speed_factor]. *)

type t

(** Queue discipline: first-in-first-out, or per-flow deficit round
    robin (the paper's router scheduler, see {!Rr_queue}). *)
type discipline =
  | Fifo_discipline
  | Drr of float  (** quantum, bits per flow per round *)

val create :
  ?queue_bits:float -> ?speed_factor:float -> ?discipline:discipline ->
  ?loss:float * Sim.Rng.t -> Sim.Engine.t -> Topology.Link.t ->
  deliver:(Packet.t -> unit) -> t
(** [queue_bits] defaults to 64 chunks of 10 kB (≈ 5.1 Mbit);
    [speed_factor] in (0, 1], default 1; [discipline] defaults to
    FIFO.  [loss] injects random wire loss: each transmitted packet is
    discarded with the given probability (failure-injection tests);
    default none.
    @raise Invalid_argument on a non-positive queue, factor outside
    (0, 1] or loss probability outside [0, 1). *)

val link : t -> Topology.Link.t

val send : t -> Packet.t -> [ `Queued | `Dropped ]
(** Enqueue and start transmitting if idle. *)

val rate : t -> float
(** Effective transmit rate (capacity × speed_factor), bps. *)

val queue_occupancy : t -> float
(** Bits waiting (not counting the packet on the wire). *)

val queue_capacity : t -> float
val busy : t -> bool

val utilisation : t -> now:float -> float
(** Fraction of elapsed time the transmitter was busy. *)

val tx_bits : t -> float
val tx_packets : t -> int
val drops : t -> int
val wire_losses : t -> int
(** Packets discarded by loss injection. *)

(** {1 Fault control}

    An interface starts up.  While down it refuses admission ([send]
    returns [`Dropped]), pops nothing from its queue, and destroys
    whatever was on the wire when the outage began — each such packet
    dies at its would-be arrival instant so fault accounting stays in
    event order. *)

val is_up : t -> bool

val set_down : ?policy:[ `Drop_queued | `Hold_queued ] -> t -> unit
(** Take the interface down (idempotent).  [`Drop_queued] (default)
    also flushes the queue through the fault tap; [`Hold_queued] keeps
    queued packets for transmission after {!set_up}. *)

val set_up : t -> unit
(** Bring the interface back up (idempotent) and restart transmission
    of any held packets. *)

val fault_drops : t -> int
(** Packets destroyed by outages: killed on the wire plus flushed from
    the queue. *)

val set_fault_tap : t -> (Packet.t -> unit) -> unit
(** Called once per fault-destroyed packet, at the instant it dies.
    Default: ignore. *)

(** {1 Observability taps} *)

val set_span_tap : t -> (float -> Packet.t -> unit) option -> unit
(** Span tracing: [f start p] fires when [p]'s serialisation begins,
    with the serialisation start time (which, on the lazy loss-free
    path, may lie before the engine's current time — the pop is
    performed lazily at the virtual transmitter's clock).  Default
    [None]; the disabled cost is one match per transmitted packet. *)

val set_profile_kind : t -> int -> unit
(** Kind id (see {!Sim.Engine.profile_kind}) claimed by this
    interface's arrival/serialisation events.  Default 0. *)
