module Graph = Topology.Graph
module Link = Topology.Link

type handler = from:Topology.Link.t option -> Packet.t -> unit

type t = {
  g : Graph.t;
  eng : Sim.Engine.t;
  ifaces : Iface.t array;
  handlers : handler array;
  (* fault plumbing: a wire filter can swallow packets before they
     reach an interface (control-plane loss bursts); the net-level
     counter also absorbs kills reported by dead-node sinks *)
  mutable wire_filter : (Link.t -> Packet.t -> bool) option;
  mutable net_fault_drops : int;
}

let silent ~from:_ (_ : Packet.t) = ()

let create ?queue_bits ?speed_factor ?discipline ?loss_rate
    ?(loss_seed = 0xbadL) eng g =
  (* an explicit rate — even 0 — selects the legacy two-event transmit
     path; probability 0 never actually loses, which is exactly what
     the differential harness uses to pit the loss-free fast path
     against the legacy scheme on identical traffic *)
  let loss =
    match loss_rate with
    | Some p -> Some (p, Sim.Rng.create loss_seed)
    | None -> None
  in
  let handlers = Array.make (Graph.node_count g) silent in
  let t =
    {
      g;
      eng;
      ifaces = [||];
      handlers;
      wire_filter = None;
      net_fault_drops = 0;
    }
  in
  (* interfaces deliver into the destination node's *current* handler;
     the indirection through the record lets handlers be installed after
     interface construction *)
  let make_iface (l : Link.t) =
    Iface.create ?queue_bits ?speed_factor ?discipline ?loss eng l
      ~deliver:(fun p ->
        t.handlers.(l.Link.dst) ~from:(Some l) p)
  in
  let ifaces = Array.init (Graph.link_count g) (fun i -> make_iface (Graph.link g i)) in
  { t with ifaces }

let graph t = t.g
let engine t = t.eng

let set_handler t node h = t.handlers.(node) <- h

let iface t link_id = t.ifaces.(link_id)

let iface_count t = Array.length t.ifaces

let iter_ifaces t f = Array.iter f t.ifaces

let out_ifaces t node =
  List.map (fun (l : Link.t) -> t.ifaces.(l.Link.id)) (Graph.out_links t.g node)

let send t ~via p =
  match t.wire_filter with
  | Some f when f via p ->
    (* swallowed in transit: to the sender it looks like wire loss *)
    t.net_fault_drops <- t.net_fault_drops + 1;
    `Queued
  | Some _ | None -> Iface.send t.ifaces.(via.Link.id) p

let inject t ~at p = t.handlers.(at) ~from:None p

let total_drops t = Array.fold_left (fun acc i -> acc + Iface.drops i) 0 t.ifaces

let total_wire_losses t =
  Array.fold_left (fun acc i -> acc + Iface.wire_losses i) 0 t.ifaces

let total_tx_bits t =
  Array.fold_left (fun acc i -> acc +. Iface.tx_bits i) 0. t.ifaces

let handler t node = t.handlers.(node)

let set_wire_filter t f = t.wire_filter <- f

let set_fault_tap t f = Array.iter (fun i -> Iface.set_fault_tap i f) t.ifaces

let note_fault_kill t = t.net_fault_drops <- t.net_fault_drops + 1

let total_fault_drops t =
  t.net_fault_drops
  + Array.fold_left (fun acc i -> acc + Iface.fault_drops i) 0 t.ifaces

let mean_utilisation t =
  let n = Array.length t.ifaces in
  if n = 0 then 0.
  else begin
    let now = Sim.Engine.now t.eng in
    Array.fold_left (fun acc i -> acc +. Iface.utilisation i ~now) 0. t.ifaces
    /. float_of_int n
  end
