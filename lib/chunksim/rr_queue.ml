type cls = {
  id : int;
  q : Packet.t Queue.t;
  mutable deficit : float;
}

type t = {
  cap : float;
  quantum : float;
  classes : (int, cls) Hashtbl.t;
  mutable ring : cls list;      (* backlogged classes, service order *)
  mutable bits : float;
  mutable dropped : int;
}

let create ?(quantum = 10e3 *. 8.) ~capacity () =
  if capacity <= 0. then invalid_arg "Rr_queue.create: capacity <= 0";
  if quantum <= 0. then invalid_arg "Rr_queue.create: quantum <= 0";
  {
    cap = capacity;
    quantum;
    classes = Hashtbl.create 8;
    ring = [];
    bits = 0.;
    dropped = 0;
  }

let push t ~class_id (p : Packet.t) =
  if t.bits +. p.Packet.size > t.cap then begin
    t.dropped <- t.dropped + 1;
    `Dropped
  end
  else begin
    let c =
      match Hashtbl.find_opt t.classes class_id with
      | Some c -> c
      | None ->
        let c = { id = class_id; q = Queue.create (); deficit = 0. } in
        Hashtbl.add t.classes class_id c;
        c
    in
    if Queue.is_empty c.q then begin
      (* (re)joining the ring resets the deficit: no banked credit *)
      c.deficit <- 0.;
      t.ring <- t.ring @ [ c ]
    end;
    Queue.add p c.q;
    t.bits <- t.bits +. p.Packet.size;
    `Queued
  end

(* One DRR scan: serve the first class whose head fits its deficit,
   topping deficits up by one quantum as we pass.  Each pass either
   returns a packet or adds quantum to every backlogged class, so
   termination is bounded by max_packet/quantum passes. *)
let pop t =
  match t.ring with
  | [] -> None
  | _ ->
    let rec scan guard =
      match t.ring with
      | [] -> None
      | c :: rest -> begin
        match Queue.peek_opt c.q with
        | None ->
          (* empty class left in the ring: retire it *)
          t.ring <- rest;
          scan guard
        | Some head ->
          if head.Packet.size <= c.deficit then begin
            let p = Queue.take c.q in
            c.deficit <- c.deficit -. p.Packet.size;
            t.bits <- t.bits -. p.Packet.size;
            if Queue.is_empty c.q then t.ring <- rest
            else t.ring <- rest @ [ c ];
            Some p
          end
          else begin
            c.deficit <- c.deficit +. t.quantum;
            t.ring <- rest @ [ c ];
            if guard <= 0 then None else scan (guard - 1)
          end
      end
    in
    (* enough passes for the largest packet to accumulate credit *)
    let passes =
      List.length t.ring * (2 + int_of_float (t.cap /. t.quantum))
    in
    scan passes

let occupancy t = t.bits
let capacity t = t.cap
let is_empty t = t.bits <= 0.
let backlogged_classes t = List.length t.ring
let total_dropped t = t.dropped
