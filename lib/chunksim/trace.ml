type event =
  | Sent of { node : Topology.Node.id; link : int; packet : string }
  | Received of { node : Topology.Node.id; packet : string }
  | Dropped of { node : Topology.Node.id; link : int; packet : string }
  | Cached of { node : Topology.Node.id; flow : int; idx : int }
  | Cache_hit of { node : Topology.Node.id; flow : int; idx : int }
  | Custody_released of { node : Topology.Node.id; flow : int; idx : int }
  | Detoured of { node : Topology.Node.id; flow : int; idx : int; via : Topology.Node.id }
  | Phase_change of { node : Topology.Node.id; link : int; phase : string }
  | Bp_signal of { node : Topology.Node.id; flow : int; engage : bool }
  | Flow_complete of { flow : int; fct : float }
  | Link_fault of { link : int; up : bool }
  | Node_fault of { node : Topology.Node.id; up : bool }
  (* chunk-lifecycle events, recorded only when the trace's [lifecycle]
     flag is on (span tracing requested) *)
  | Enqueued of { node : Topology.Node.id; link : int; flow : int; idx : int }
  | Tx_begin of { link : int; flow : int; idx : int }
  | Delivered of { node : Topology.Node.id; flow : int; idx : int }
  | Retransmit of { flow : int; idx : int }
  | Custody_evacuated of { node : Topology.Node.id; flow : int; idx : int }
  | Custody_evicted of { node : Topology.Node.id; flow : int; idx : int }

type t = {
  limit : int;
  mutable rev_events : (float * event) list;
  mutable size : int;
  mutable taps : (float -> event -> unit) array;
  mutable lifecycle_on : bool;
}

let create ?(limit = 100_000) () =
  if limit <= 0 then invalid_arg "Trace.create: limit <= 0";
  { limit; rev_events = []; size = 0; taps = [||]; lifecycle_on = false }

let on_record t tap = t.taps <- Array.append t.taps [| tap |]

let set_lifecycle t on = t.lifecycle_on <- on
let lifecycle t = t.lifecycle_on

let record t ~time e =
  let taps = t.taps in
  for i = 0 to Array.length taps - 1 do
    taps.(i) time e
  done;
  t.rev_events <- (time, e) :: t.rev_events;
  t.size <- t.size + 1;
  if t.size > 2 * t.limit then begin
    (* amortised trim: keep the newest [limit] *)
    let rec take n acc = function
      | [] -> acc
      | x :: rest -> if n = 0 then acc else take (n - 1) (x :: acc) rest
    in
    t.rev_events <- List.rev (take t.limit [] t.rev_events);
    t.size <- t.limit
  end

let events t = List.rev t.rev_events

let count t pred =
  List.fold_left
    (fun acc (_, e) -> if pred e then acc + 1 else acc)
    0 t.rev_events

let find_all t pred = List.filter (fun (_, e) -> pred e) (events t)

let clear t =
  t.rev_events <- [];
  t.size <- 0

let pp_event ppf = function
  | Sent { node; link; packet } ->
    Format.fprintf ppf "n%d sent %s on l%d" node packet link
  | Received { node; packet } -> Format.fprintf ppf "n%d recv %s" node packet
  | Dropped { node; link; packet } ->
    Format.fprintf ppf "n%d dropped %s on l%d" node packet link
  | Cached { node; flow; idx } ->
    Format.fprintf ppf "n%d custody f%d#%d" node flow idx
  | Cache_hit { node; flow; idx } ->
    Format.fprintf ppf "n%d cache-hit f%d#%d" node flow idx
  | Custody_released { node; flow; idx } ->
    Format.fprintf ppf "n%d released f%d#%d" node flow idx
  | Detoured { node; flow; idx; via } ->
    Format.fprintf ppf "n%d detoured f%d#%d via n%d" node flow idx via
  | Phase_change { node; link; phase } ->
    Format.fprintf ppf "n%d l%d -> %s" node link phase
  | Bp_signal { node; flow; engage } ->
    Format.fprintf ppf "n%d bp f%d %s" node flow (if engage then "on" else "off")
  | Flow_complete { flow; fct } ->
    Format.fprintf ppf "f%d complete in %.4gs" flow fct
  | Link_fault { link; up } ->
    Format.fprintf ppf "l%d %s" link (if up then "up" else "down")
  | Node_fault { node; up } ->
    Format.fprintf ppf "n%d %s" node (if up then "restarted" else "crashed")
  | Enqueued { node; link; flow; idx } ->
    Format.fprintf ppf "n%d enqueued f%d#%d on l%d" node flow idx link
  | Tx_begin { link; flow; idx } ->
    Format.fprintf ppf "l%d tx f%d#%d" link flow idx
  | Delivered { node; flow; idx } ->
    Format.fprintf ppf "n%d delivered f%d#%d" node flow idx
  | Retransmit { flow; idx } -> Format.fprintf ppf "retransmit f%d#%d" flow idx
  | Custody_evacuated { node; flow; idx } ->
    Format.fprintf ppf "n%d evacuated f%d#%d" node flow idx
  | Custody_evicted { node; flow; idx } ->
    Format.fprintf ppf "n%d evicted f%d#%d" node flow idx
