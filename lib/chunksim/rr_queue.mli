(** Deficit round-robin queue — the paper's router scheduler.

    "Routers do not maintain per-flow queues, but have a scheduler
    which multiplexes data … in a round-robin fashion" (§3.3).  DRR
    approximates that with one lightweight sub-queue per traffic class
    (we classify by flow id) and a byte deficit per class, giving each
    backlogged class an equal share of the transmitter regardless of
    arrival pattern — unlike FIFO, where a bursty flow crowds others
    out.

    The byte budget is shared: a packet is tail-dropped when the whole
    structure is full, like {!Fifo}. *)

type t

val create : ?quantum:float -> capacity:float -> unit -> t
(** [quantum] bits of service per class per round (default one 10 kB
    chunk).  @raise Invalid_argument if either is non-positive. *)

val push : t -> class_id:int -> Packet.t -> [ `Queued | `Dropped ]

val pop : t -> Packet.t option
(** Next packet under DRR order. *)

val occupancy : t -> float
val capacity : t -> float
val is_empty : t -> bool
val backlogged_classes : t -> int
val total_dropped : t -> int
