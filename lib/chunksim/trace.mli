(** Structured event traces.

    Protocol layers append events; tests and the demo examples read
    them back filtered.  Keeps at most [limit] most-recent events to
    bound memory in long runs. *)

type event =
  | Sent of { node : Topology.Node.id; link : int; packet : string }
  | Received of { node : Topology.Node.id; packet : string }
  | Dropped of { node : Topology.Node.id; link : int; packet : string }
  | Cached of { node : Topology.Node.id; flow : int; idx : int }
  | Cache_hit of { node : Topology.Node.id; flow : int; idx : int }
  | Custody_released of { node : Topology.Node.id; flow : int; idx : int }
  | Detoured of { node : Topology.Node.id; flow : int; idx : int; via : Topology.Node.id }
  | Phase_change of { node : Topology.Node.id; link : int; phase : string }
  | Bp_signal of { node : Topology.Node.id; flow : int; engage : bool }
  | Flow_complete of { flow : int; fct : float }
  | Link_fault of { link : int; up : bool }
  | Node_fault of { node : Topology.Node.id; up : bool }
  (** {b Chunk-lifecycle events} — the span substrate.  Layers record
      these only when {!lifecycle} is on (span tracing requested), so
      ordinary trace/check runs carry no extra events. *)
  | Enqueued of { node : Topology.Node.id; link : int; flow : int; idx : int }
      (** a data chunk was admitted to [link]'s output queue at [node] *)
  | Tx_begin of { link : int; flow : int; idx : int }
      (** serialisation onto the wire began.  With the lazy fast-path
          transmitter the begin instant may lie {e before} the record
          time (pops are performed lazily with virtual start times), so
          consumers must sort per-chunk events by their [t], not by
          record order. *)
  | Delivered of { node : Topology.Node.id; flow : int; idx : int }
      (** the chunk reached its consumer *)
  | Retransmit of { flow : int; idx : int }
      (** the sender re-originated the chunk (receiver stuck on a hole) *)
  | Custody_evacuated of { node : Topology.Node.id; flow : int; idx : int }
      (** custody drained onto a detour rather than the primary path *)
  | Custody_evicted of { node : Topology.Node.id; flow : int; idx : int }
      (** custody destroyed by a wipe-policy crash *)

type t

val create : ?limit:int -> unit -> t
(** [limit] defaults to 100_000 events. *)

val set_lifecycle : t -> bool -> unit
(** Ask instrumented layers to record the chunk-lifecycle events
    (default off).  The flag is advisory: layers consult it via
    {!lifecycle} before building lifecycle records, so an untraced or
    span-free run pays nothing. *)

val lifecycle : t -> bool

val record : t -> time:float -> event -> unit

val on_record : t -> (float -> event -> unit) -> unit
(** Register a streaming tap: called synchronously on every {!record}
    with [(time, event)], before the ring stores it.  Taps let events
    flow to sinks (files, counters, callbacks — see [Obs.Sink])
    without being bounded by the ring's [limit].  Taps must not call
    {!record} on the same trace. *)

val events : t -> (float * event) list
(** Oldest first. *)

val count : t -> (event -> bool) -> int
val find_all : t -> (event -> bool) -> (float * event) list
val clear : t -> unit
val pp_event : Format.formatter -> event -> unit
