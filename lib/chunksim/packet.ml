type header =
  | Request of {
      flow : int;
      nc : int;
      ack : int;
      ac : int;
      route : Topology.Node.id list;
    }
  | Data of {
      flow : int;
      idx : int;
      anticipated : bool;
      via_detour : bool;
      detour_route : Topology.Node.id list;
      born : float;
    }
  | Backpressure of {
      flow : int;
      engage : bool;
    }

type t = {
  header : header;
  size : float;
}

let request_bits = 50. *. 8.
let backpressure_bits = 50. *. 8.

let request_routed ~route ~flow ~nc ~ack ~ac =
  if nc < 0 then invalid_arg "Packet.request: nc < 0";
  if ac < nc then invalid_arg "Packet.request: ac < nc";
  { header = Request { flow; nc; ack; ac; route }; size = request_bits }

let request ~flow ~nc ~ack ~ac = request_routed ~route:[] ~flow ~nc ~ack ~ac

let data ?(anticipated = false) ?(via_detour = false) ?(detour_route = [])
    ~flow ~idx ~born chunk_bits =
  if chunk_bits <= 0. then invalid_arg "Packet.data: chunk_bits <= 0";
  if idx < 0 then invalid_arg "Packet.data: idx < 0";
  {
    header = Data { flow; idx; anticipated; via_detour; detour_route; born };
    size = chunk_bits;
  }

let backpressure ~flow ~engage =
  { header = Backpressure { flow; engage }; size = backpressure_bits }

let flow t =
  match t.header with
  | Request { flow; _ } | Data { flow; _ } | Backpressure { flow; _ } -> flow

let is_data t =
  match t.header with
  | Data _ -> true
  | Request _ | Backpressure _ -> false

let pp ppf t =
  match t.header with
  | Request { flow; nc; ack; ac; _ } ->
    Format.fprintf ppf "req[f%d nc=%d ack=%d ac=%d]" flow nc ack ac
  | Data { flow; idx; anticipated; via_detour; _ } ->
    Format.fprintf ppf "data[f%d #%d%s%s]" flow idx
      (if anticipated then " ant" else "")
      (if via_detour then " det" else "")
  | Backpressure { flow; engage } ->
    Format.fprintf ppf "bp[f%d %s]" flow (if engage then "engage" else "release")
