type header =
  | Request of {
      flow : int;
      nc : int;
      ack : int;
      ac : int;
    }
  | Data of {
      mutable flow : int;
      mutable idx : int;
      mutable anticipated : bool;
      mutable via_detour : bool;
      mutable detour_route : Topology.Node.id list;
      mutable born : float;
    }
  | Backpressure of {
      flow : int;
      engage : bool;
    }

type t = {
  header : header;
  size : float;
}

let request_bits = 50. *. 8.
let backpressure_bits = 50. *. 8.

let request ~flow ~nc ~ack ~ac =
  if nc < 0 then invalid_arg "Packet.request: nc < 0";
  if ac < nc then invalid_arg "Packet.request: ac < nc";
  { header = Request { flow; nc; ack; ac }; size = request_bits }

let data ?(anticipated = false) ?(via_detour = false) ?(detour_route = [])
    ~flow ~idx ~born chunk_bits =
  if chunk_bits <= 0. then invalid_arg "Packet.data: chunk_bits <= 0";
  if idx < 0 then invalid_arg "Packet.data: idx < 0";
  {
    header = Data { flow; idx; anticipated; via_detour; detour_route; born };
    size = chunk_bits;
  }

let backpressure ~flow ~engage =
  { header = Backpressure { flow; engage }; size = backpressure_bits }

let flow t =
  match t.header with
  | Request { flow; _ } | Data { flow; _ } | Backpressure { flow; _ } -> flow

let is_data t =
  match t.header with
  | Data _ -> true
  | Request _ | Backpressure _ -> false

module Pool = struct
  type packet = t

  type t = {
    chunk_bits : float;
    mutable slab : packet array;   (* free packets live in [0, top) *)
    mutable top : int;
    mutable fresh : int;
    mutable reused : int;
    mutable released : int;
  }

  (* never handed out: Array.make needs a fill value *)
  let sentinel = { header = Backpressure { flow = -1; engage = false }; size = 1. }

  let create ~chunk_bits () =
    if chunk_bits <= 0. then invalid_arg "Packet.Pool.create: chunk_bits <= 0";
    { chunk_bits; slab = Array.make 64 sentinel; top = 0;
      fresh = 0; reused = 0; released = 0 }

  let data ?(anticipated = false) t ~flow ~idx ~born =
    if t.top = 0 then begin
      t.fresh <- t.fresh + 1;
      data ~anticipated ~flow ~idx ~born t.chunk_bits
    end
    else begin
      t.top <- t.top - 1;
      let p = t.slab.(t.top) in
      t.slab.(t.top) <- sentinel;
      t.reused <- t.reused + 1;
      (match p.header with
      | Data d ->
        d.flow <- flow;
        d.idx <- idx;
        d.anticipated <- anticipated;
        d.via_detour <- false;
        d.detour_route <- [];
        d.born <- born
      | Request _ | Backpressure _ -> assert false);
      p
    end

  let release t (p : packet) =
    match p.header with
    | Data _ when p.size = t.chunk_bits ->
      t.released <- t.released + 1;
      let n = Array.length t.slab in
      if t.top = n then begin
        let slab = Array.make (2 * n) sentinel in
        Array.blit t.slab 0 slab 0 n;
        t.slab <- slab
      end;
      t.slab.(t.top) <- p;
      t.top <- t.top + 1
    | Data _ | Request _ | Backpressure _ -> ()

  let stats t = (t.fresh, t.reused, t.released)
end

let pp ppf t =
  match t.header with
  | Request { flow; nc; ack; ac } ->
    Format.fprintf ppf "req[f%d nc=%d ack=%d ac=%d]" flow nc ack ac
  | Data { flow; idx; anticipated; via_detour; _ } ->
    Format.fprintf ppf "data[f%d #%d%s%s]" flow idx
      (if anticipated then " ant" else "")
      (if via_detour then " det" else "")
  | Backpressure { flow; engage } ->
    Format.fprintf ppf "bp[f%d %s]" flow (if engage then "engage" else "release")
