type t = {
  capacity : float;
  q : Packet.t Queue.t;
  mutable bits : float;
  mutable queued : int;
  mutable dropped : int;
  mutable dropped_bits : float;
}

let create ~capacity =
  if capacity <= 0. then invalid_arg "Fifo.create: capacity <= 0";
  {
    capacity;
    q = Queue.create ();
    bits = 0.;
    queued = 0;
    dropped = 0;
    dropped_bits = 0.;
  }

let push t (p : Packet.t) =
  if t.bits +. p.Packet.size > t.capacity then begin
    t.dropped <- t.dropped + 1;
    t.dropped_bits <- t.dropped_bits +. p.Packet.size;
    `Dropped
  end
  else begin
    Queue.add p t.q;
    t.bits <- t.bits +. p.Packet.size;
    t.queued <- t.queued + 1;
    `Queued
  end

let pop t =
  match Queue.take_opt t.q with
  | None -> None
  | Some p ->
    t.bits <- t.bits -. p.Packet.size;
    Some p

let peek t = Queue.peek_opt t.q
let occupancy t = t.bits
let length t = Queue.length t.q
let is_empty t = Queue.is_empty t.q
let capacity t = t.capacity
let total_queued t = t.queued
let total_dropped t = t.dropped
let total_dropped_bits t = t.dropped_bits
