(** Assembles a chunk-level network from a topology.

    One {!Iface} per directed link; per-node packet handlers installed
    by the protocol layer (router, sender, receiver logic live in
    {!Inrpp} and {!Baselines}).  Packets handed to {!send} queue on
    the interface of the chosen link and arrive at the far node's
    handler one transmission + propagation later. *)

type t

type handler = from:Topology.Link.t option -> Packet.t -> unit
(** [from] is the link the packet arrived on ([None] for locally
    injected packets). *)

val create :
  ?queue_bits:float -> ?speed_factor:float ->
  ?discipline:Iface.discipline -> ?loss_rate:float -> ?loss_seed:int64 ->
  Sim.Engine.t -> Topology.Graph.t -> t
(** Interface parameters are uniform; see {!Iface.create}.
    [loss_rate]/[loss_seed] inject seeded random wire loss on every
    link (default none).  Passing an explicit rate — even [0.] —
    selects the interfaces' legacy two-event transmit path; rate 0
    never actually loses, which the differential harness exploits to
    compare the loss-free fast path against the legacy scheme. *)

val graph : t -> Topology.Graph.t
val engine : t -> Sim.Engine.t

val set_handler : t -> Topology.Node.id -> handler -> unit
(** Replaces the node's handler (default: drop silently). *)

val iface : t -> int -> Iface.t
(** By link id. *)

val out_ifaces : t -> Topology.Node.id -> Iface.t list

val iface_count : t -> int

val iter_ifaces : t -> (Iface.t -> unit) -> unit
(** All interfaces in link-id order — the observability layer walks
    this to register per-interface gauges and timeseries probes. *)

val send : t -> via:Topology.Link.t -> Packet.t -> [ `Queued | `Dropped ]
(** Queue on the link's interface.  The packet will be delivered to
    [via.dst]'s handler. *)

val inject : t -> at:Topology.Node.id -> Packet.t -> unit
(** Run the node's handler directly (local origination), [from =
    None], on the current engine time. *)

val total_drops : t -> int
val total_wire_losses : t -> int
val total_tx_bits : t -> float

(** {1 Fault plumbing} — used by [Fault.Driver]; all no-ops by default *)

val handler : t -> Topology.Node.id -> handler
(** The node's current handler (for save/restore around a crash). *)

val set_wire_filter : t -> (Topology.Link.t -> Packet.t -> bool) option -> unit
(** When the filter returns [true] for a packet handed to {!send}, the
    packet is swallowed (counted as a fault drop, reported [`Queued] to
    the sender — indistinguishable from wire loss).  Control-plane loss
    bursts install a filter matching only Request/Backpressure. *)

val set_fault_tap : t -> (Packet.t -> unit) -> unit
(** Install a per-packet fault tap on every interface
    (see {!Iface.set_fault_tap}). *)

val note_fault_kill : t -> unit
(** Count one fault-destroyed packet at net level (dead-node sinks). *)

val total_fault_drops : t -> int
(** Packets destroyed by faults: interface outage kills plus
    wire-filter swallows plus {!note_fault_kill} reports. *)

val mean_utilisation : t -> float
(** Mean over interfaces of busy-time fraction at the current engine
    time. *)
