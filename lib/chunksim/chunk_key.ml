let bits = 31
let max_idx = (1 lsl bits) - 1
let pack ~flow ~idx = (flow lsl bits) lor (idx land max_idx)
let flow k = k lsr bits
let idx k = k land max_idx
