type lru_entry = {
  key : int;                      (* Chunk_key-packed (flow, idx) *)
  bits : float;
  mutable newer : lru_entry option;
  mutable older : lru_entry option;
}

type pressure = {
  capacity : float;
  free : float;
  custody_bits : float;
  flow_bits : float;
  flow_backlog : int;
  incoming_bits : float;
  flows : int;
}

module type POLICY = sig
  val name : string
  val admit : pressure -> bool
end

type policy = (module POLICY)

module Drop_tail = struct
  let name = "drop-tail"
  let admit _ = true
end

let drop_tail : policy = (module Drop_tail)

let object_runs ?(threshold = 0.5) () : policy =
  if not (0. < threshold && threshold <= 1.) then
    invalid_arg "Cache.object_runs: threshold must be in (0, 1]";
  (module struct
    let name = Printf.sprintf "object-runs(%.2f)" threshold

    (* Object-granularity admission: chunks continuing a run the store
       already committed to are always worth keeping (a partial object
       is useless downstream); new runs are admitted only while custody
       pressure is below the threshold fraction. *)
    let admit p =
      p.flow_backlog > 0
      || p.custody_bits +. p.incoming_bits <= threshold *. p.capacity
  end)

let fair_share ?(share = 1.0) () : policy =
  if share <= 0. then invalid_arg "Cache.fair_share: share <= 0";
  (module struct
    let name = Printf.sprintf "fair-share(%.2f)" share

    (* Per-flow fairness cap: no flow may grow its custody footprint
       past [share] times an equal split of the whole store across the
       flows currently holding custody.  A flow with no footprint yet
       always gets its first chunk in (the cap never starves). *)
    let admit p =
      let active = max 1 p.flows in
      let cap = share *. p.capacity /. float_of_int active in
      p.flow_bits = 0. || p.flow_bits +. p.incoming_bits <= cap
  end)

type t = {
  cap : float;
  high : float;
  low : float;
  (* custody: per-flow FIFO of (idx, bits) *)
  custody : (int, (int * float) Queue.t) Hashtbl.t;
  mutable custody_bits : float;
  (* popularity: LRU doubly-linked list + index *)
  popular : (int, lru_entry) Hashtbl.t;
  mutable popular_bits : float;
  mutable newest : lru_entry option;
  mutable oldest : lru_entry option;
  mutable hit_count : int;
  mutable miss_count : int;
  (* admission policy; [None] is the legacy always-admit hot path *)
  policy : policy option;
}

let create ?(high_water = 0.7) ?(low_water = 0.3) ?policy ~capacity () =
  if capacity <= 0. then invalid_arg "Cache.create: capacity <= 0";
  if not (0. <= low_water && low_water < high_water && high_water <= 1.) then
    invalid_arg "Cache.create: watermarks must satisfy 0 <= low < high <= 1";
  {
    cap = capacity;
    high = high_water *. capacity;
    low = low_water *. capacity;
    custody = Hashtbl.create 16;
    custody_bits = 0.;
    popular = Hashtbl.create 64;
    popular_bits = 0.;
    newest = None;
    oldest = None;
    hit_count = 0;
    miss_count = 0;
    policy;
  }

(* ------------------------------------------------------------------ *)
(* LRU plumbing *)

let unlink t e =
  (match e.older with
  | Some o -> o.newer <- e.newer
  | None -> t.oldest <- e.newer);
  (match e.newer with
  | Some n -> n.older <- e.older
  | None -> t.newest <- e.older);
  e.newer <- None;
  e.older <- None

let push_newest t e =
  e.older <- t.newest;
  e.newer <- None;
  (match t.newest with
  | Some n -> n.newer <- Some e
  | None -> t.oldest <- Some e);
  t.newest <- Some e

let evict_oldest t =
  match t.oldest with
  | None -> false
  | Some e ->
    unlink t e;
    Hashtbl.remove t.popular e.key;
    t.popular_bits <- t.popular_bits -. e.bits;
    true

(* ------------------------------------------------------------------ *)
(* Custody *)

let free_bits t = t.cap -. t.custody_bits -. t.popular_bits

let custody_bits_of_flow t ~flow =
  match Hashtbl.find_opt t.custody flow with
  | None -> 0.
  | Some q -> Queue.fold (fun acc (_, bits) -> acc +. bits) 0. q

let pressure_of t ~flow ~bits =
  let flow_bits, flow_backlog =
    match Hashtbl.find_opt t.custody flow with
    | None -> (0., 0)
    | Some q -> (Queue.fold (fun acc (_, b) -> acc +. b) 0. q, Queue.length q)
  in
  {
    capacity = t.cap;
    free = free_bits t;
    custody_bits = t.custody_bits;
    flow_bits;
    flow_backlog;
    incoming_bits = bits;
    flows = Hashtbl.length t.custody;
  }

let put_custody t ~flow ~idx ~bits =
  let rejected =
    match t.policy with
    | None -> false
    | Some (module P) -> not (P.admit (pressure_of t ~flow ~bits))
  in
  if rejected then `Rejected
  else
  (* custody may displace popularity content: evict LRU until it fits *)
  let rec make_room () =
    if free_bits t >= bits then true
    else if evict_oldest t then make_room ()
    else false
  in
  if not (make_room ()) then `Full
  else begin
    let q =
      match Hashtbl.find_opt t.custody flow with
      | Some q -> q
      | None ->
        let q = Queue.create () in
        Hashtbl.add t.custody flow q;
        q
    in
    Queue.add (idx, bits) q;
    t.custody_bits <- t.custody_bits +. bits;
    `Stored
  end

let take_custody t ~flow =
  match Hashtbl.find_opt t.custody flow with
  | None -> None
  | Some q ->
    (match Queue.take_opt q with
    | None -> None
    | Some (idx, bits) ->
      t.custody_bits <- t.custody_bits -. bits;
      if Queue.is_empty q then Hashtbl.remove t.custody flow;
      Some (idx, bits))

let peek_custody t ~flow =
  match Hashtbl.find_opt t.custody flow with
  | None -> None
  | Some q -> Queue.peek_opt q

let commit_custody t ~flow =
  match Hashtbl.find_opt t.custody flow with
  | None -> invalid_arg "Cache.commit_custody: flow holds no custody"
  | Some q ->
    (match Queue.take_opt q with
    | None -> invalid_arg "Cache.commit_custody: flow holds no custody"
    | Some (_, bits) ->
      t.custody_bits <- t.custody_bits -. bits;
      if Queue.is_empty q then Hashtbl.remove t.custody flow)

let custody_backlog t ~flow =
  match Hashtbl.find_opt t.custody flow with
  | None -> 0
  | Some q -> Queue.length q

let custody_occupancy t = t.custody_bits
let custody_is_empty t = Hashtbl.length t.custody = 0
let above_high t = t.custody_bits >= t.high
let below_low t = t.custody_bits <= t.low

let flows_in_custody t =
  Hashtbl.fold (fun flow _ acc -> flow :: acc) t.custody []
  |> List.sort Int.compare

(* ------------------------------------------------------------------ *)
(* Popularity *)

let insert_popular t ~flow ~idx ~bits =
  let key = Chunk_key.pack ~flow ~idx in
  (match Hashtbl.find_opt t.popular key with
  | Some existing ->
    unlink t existing;
    Hashtbl.remove t.popular key;
    t.popular_bits <- t.popular_bits -. existing.bits
  | None -> ());
  let rec make_room () =
    if free_bits t >= bits then true
    else if evict_oldest t then make_room ()
    else false
  in
  if make_room () then begin
    let e = { key; bits; newer = None; older = None } in
    Hashtbl.replace t.popular key e;
    t.popular_bits <- t.popular_bits +. bits;
    push_newest t e
  end

let lookup_popular t ~flow ~idx =
  match Hashtbl.find_opt t.popular (Chunk_key.pack ~flow ~idx) with
  | None ->
    t.miss_count <- t.miss_count + 1;
    false
  | Some e ->
    t.hit_count <- t.hit_count + 1;
    unlink t e;
    push_newest t e;
    true

let popular_occupancy t = t.popular_bits

(* ------------------------------------------------------------------ *)

let occupancy t = t.custody_bits +. t.popular_bits
let capacity t = t.cap
let policy_name t = Option.map (fun ((module P : POLICY)) -> P.name) t.policy
let hits t = t.hit_count
let misses t = t.miss_count

let holding_time t ~rate =
  if rate <= 0. then invalid_arg "Cache.holding_time: rate <= 0";
  t.cap /. rate
