(** Content store with custody semantics (the paper's core idea).

    Two regions share one byte budget:

    - the {e custody} region holds in-flight chunks the router accepted
      responsibility for during a back-pressure episode; FIFO per flow;
      never evicted, only handed downstream ({!take_custody});
    - the {e popularity} region is a plain LRU of chunks already
      forwarded, serving later requests for the same content (classic
      ICN caching).

    Custody admission respects high/low watermarks over the custody
    region: crossing high engages back-pressure upstream; dropping
    below low releases it (hysteresis avoids signal flapping). *)

type t

(** {1 Admission policy}

    Custody admission is policy-pluggable: a first-class module decides
    whether an offered chunk may enter the custody region, given a
    snapshot of store pressure.  [None] (the default) is the legacy
    always-admit path — byte-identical behaviour, no pressure snapshot
    computed. *)

type pressure = {
  capacity : float;       (** total store budget, bits *)
  free : float;           (** unallocated bits (both regions) *)
  custody_bits : float;   (** custody-region occupancy, bits *)
  flow_bits : float;      (** custody bits held for the offering flow *)
  flow_backlog : int;     (** custody chunks held for the offering flow *)
  incoming_bits : float;  (** size of the offered chunk *)
  flows : int;            (** flows currently holding custody *)
}
(** Store state at the moment of an admission decision. *)

module type POLICY = sig
  val name : string
  val admit : pressure -> bool
end

type policy = (module POLICY)

val drop_tail : policy
(** Always admit (capacity still bounds, via [`Full]) — the legacy
    behaviour, as an explicit policy. *)

val object_runs : ?threshold:float -> unit -> policy
(** Object-granularity admission (after {e Object-oriented Packet
    Caching for ICN}): chunks continuing a custody run the store
    already holds for the flow are always admitted — a partial object
    is useless downstream — while {e new} runs are refused once custody
    occupancy would exceed [threshold] (fraction of capacity, default
    0.5).
    @raise Invalid_argument unless [0 < threshold <= 1]. *)

val fair_share : ?share:float -> unit -> policy
(** Per-flow fairness cap (after {e FairCache}): a flow may not grow
    its custody footprint past [share] times an equal split of the
    store across the flows currently holding custody (default share
    1.0).  A flow with no footprint always gets its first chunk.
    @raise Invalid_argument if [share <= 0.]. *)

val create :
  ?high_water:float ->
  ?low_water:float ->
  ?policy:policy ->
  capacity:float ->
  unit ->
  t
(** [capacity] in bits.  Watermarks are fractions of capacity
    (defaults 0.7 and 0.3).  [policy] guards custody admission; omit it
    for the legacy always-admit path.
    @raise Invalid_argument if [capacity <= 0.] or the watermarks are
    not [0 <= low < high <= 1]. *)

val policy_name : t -> string option
(** Name of the installed admission policy, if any. *)

(** {1 Custody region} *)

val put_custody :
  t -> flow:int -> idx:int -> bits:float -> [ `Stored | `Full | `Rejected ]
(** [`Full] when the whole store cannot take the chunk — the caller
    must then drop (congestion collapse would follow; tests assert we
    engage back-pressure well before).  [`Rejected] when the admission
    policy refused the chunk (store may still have room); never
    returned without an installed policy. *)

val take_custody : t -> flow:int -> (int * float) option
(** Oldest held chunk of the flow, removed: [(idx, bits)]. *)

val peek_custody : t -> flow:int -> (int * float) option
(** Oldest held chunk of the flow, {e not} removed.  Pair with
    {!commit_custody} to keep an in-flight handoff charged against the
    store budget until it is known to succeed. *)

val commit_custody : t -> flow:int -> unit
(** Removes the chunk {!peek_custody} returned, releasing its budget.
    @raise Invalid_argument if the flow holds no custody chunk. *)

val custody_bits_of_flow : t -> flow:int -> float
(** Custody bits currently held for one flow (O(backlog)). *)

val custody_backlog : t -> flow:int -> int
(** Chunks currently held for the flow. *)

val custody_occupancy : t -> float
(** Bits across all flows. *)

val custody_is_empty : t -> bool
(** O(1): no flow holds any custody chunk.  The drain scheduler's
    fast-out — avoids walking flow lists four times per [ti] when the
    store is idle (the common case). *)

val above_high : t -> bool
val below_low : t -> bool
val flows_in_custody : t -> int list
(** Flows with at least one held chunk, ascending. *)

(** {1 Popularity (LRU) region} *)

val insert_popular : t -> flow:int -> idx:int -> bits:float -> unit
(** Adds to the LRU region, evicting least-recently-used entries if
    needed; never evicts custody. A chunk bigger than the free budget
    after eviction is simply not cached. *)

val lookup_popular : t -> flow:int -> idx:int -> bool
(** True on hit; refreshes recency. *)

val popular_occupancy : t -> float

(** {1 Stats} *)

val occupancy : t -> float
val capacity : t -> float
val hits : t -> int
val misses : t -> int
val holding_time : t -> rate:float -> float
(** §3.3 feasibility figure: time the whole store can absorb a
    full-rate inflow, [capacity / rate]. *)
