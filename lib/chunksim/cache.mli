(** Content store with custody semantics (the paper's core idea).

    Two regions share one byte budget:

    - the {e custody} region holds in-flight chunks the router accepted
      responsibility for during a back-pressure episode; FIFO per flow;
      never evicted, only handed downstream ({!take_custody});
    - the {e popularity} region is a plain LRU of chunks already
      forwarded, serving later requests for the same content (classic
      ICN caching).

    Custody admission respects high/low watermarks over the custody
    region: crossing high engages back-pressure upstream; dropping
    below low releases it (hysteresis avoids signal flapping). *)

type t

val create :
  ?high_water:float -> ?low_water:float -> capacity:float -> unit -> t
(** [capacity] in bits.  Watermarks are fractions of capacity
    (defaults 0.7 and 0.3).
    @raise Invalid_argument if [capacity <= 0.] or the watermarks are
    not [0 <= low < high <= 1]. *)

(** {1 Custody region} *)

val put_custody : t -> flow:int -> idx:int -> bits:float -> [ `Stored | `Full ]
(** [`Full] when the whole store cannot take the chunk — the caller
    must then drop (congestion collapse would follow; tests assert we
    engage back-pressure well before). *)

val take_custody : t -> flow:int -> (int * float) option
(** Oldest held chunk of the flow, removed: [(idx, bits)]. *)

val custody_backlog : t -> flow:int -> int
(** Chunks currently held for the flow. *)

val custody_occupancy : t -> float
(** Bits across all flows. *)

val custody_is_empty : t -> bool
(** O(1): no flow holds any custody chunk.  The drain scheduler's
    fast-out — avoids walking flow lists four times per [ti] when the
    store is idle (the common case). *)

val above_high : t -> bool
val below_low : t -> bool
val flows_in_custody : t -> int list
(** Flows with at least one held chunk, ascending. *)

(** {1 Popularity (LRU) region} *)

val insert_popular : t -> flow:int -> idx:int -> bits:float -> unit
(** Adds to the LRU region, evicting least-recently-used entries if
    needed; never evicts custody. A chunk bigger than the free budget
    after eviction is simply not cached. *)

val lookup_popular : t -> flow:int -> idx:int -> bool
(** True on hit; refreshes recency. *)

val popular_occupancy : t -> float

(** {1 Stats} *)

val occupancy : t -> float
val capacity : t -> float
val hits : t -> int
val misses : t -> int
val holding_time : t -> rate:float -> float
(** §3.3 feasibility figure: time the whole store can absorb a
    full-rate inflow, [capacity / rate]. *)
