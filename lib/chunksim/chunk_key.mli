(** Packed [(flow, idx)] chunk identifiers.

    Hot-path tables (custody, popularity LRU, conservation ledgers)
    key on a single immediate int instead of an [(int * int)] tuple:
    tuple keys allocate two words per lookup and push [Hashtbl]
    through the generic structural hasher, both of which show up on
    the per-chunk protocol path.  Packing also preserves order —
    ascending packed keys coincide with lexicographic [(flow, idx)]
    order (both components non-negative), which crash/wipe reporting
    relies on when it sorts wiped custody.

    Layout: flow in the high bits, idx in the low {!bits}.  Flow and
    chunk ids are small dense non-negative ints everywhere in this
    codebase; [idx] must fit in {!bits} bits. *)

val bits : int
(** Low-field width (31). *)

val max_idx : int
(** Largest representable chunk index, [2^bits - 1]. *)

val pack : flow:int -> idx:int -> int
val flow : int -> int
val idx : int -> int
