(** Packets of the chunk-level simulator.

    Three kinds, following the paper's §3.2 node model:

    - {e Requests} carry the triple ⟨Nc, ACKc, Ac⟩: the next chunk the
      application needs, a cumulative acknowledgment, and the last
      anticipated chunk (data not explicitly requested yet that the
      sender may push).
    - {e Data} carries one content chunk.  [detour_route] is the
      source-routed remainder installed when a router deflects the
      chunk around a congested link (the paper's spoof-the-identifier
      tunnelling); [via_detour] marks chunks that left the primary
      path at least once.
    - {e Backpressure} engages or releases the closed-loop mode for a
      flow, travelling hop-by-hop towards the sender. *)

type header =
  | Request of {
      flow : int;
      nc : int;        (** next chunk the application requests *)
      ack : int;       (** cumulative: all chunks < ack received *)
      ac : int;        (** last anticipated chunk (>= nc) *)
      route : Topology.Node.id list;
      (** PIT-less label stack: remaining nodes to the producer,
          stamped at the consumer and popped hop by hop.  Empty
          (and ignored) under stateful forwarding. *)
    }
  | Data of {
      flow : int;
      idx : int;                  (** chunk index within the flow *)
      anticipated : bool;         (** pushed ahead of an explicit request *)
      via_detour : bool;
      detour_route : Topology.Node.id list; (** remaining detour nodes to visit *)
      born : float;               (** sender timestamp (RTT sampling) *)
    }
  | Backpressure of {
      flow : int;
      engage : bool;   (** [true] = slow down, [false] = release *)
    }

type t = {
  header : header;
  size : float;        (** bits on the wire *)
}

val request : flow:int -> nc:int -> ack:int -> ac:int -> t
(** 50-byte header packet with an empty label stack (stateful
    forwarding).  @raise Invalid_argument if [ac < nc] or [nc < 0]. *)

val request_routed :
  route:Topology.Node.id list -> flow:int -> nc:int -> ack:int -> ac:int -> t
(** {!request} with the PIT-less label stack stamped: the remaining
    nodes to the producer, popped hop by hop by the routers. *)

val data :
  ?anticipated:bool -> ?via_detour:bool ->
  ?detour_route:Topology.Node.id list -> flow:int -> idx:int ->
  born:float -> float -> t
(** [data ~flow ~idx ~born chunk_bits].
    @raise Invalid_argument if [chunk_bits <= 0.] or [idx < 0]. *)

val backpressure : flow:int -> engage:bool -> t

val flow : t -> int
val is_data : t -> bool
val pp : Format.formatter -> t -> unit

val request_bits : float
(** Wire size of a request (50 bytes). *)

val backpressure_bits : float
(** Wire size of a back-pressure notification (50 bytes). *)
