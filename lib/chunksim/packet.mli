(** Packets of the chunk-level simulator.

    Three kinds, following the paper's §3.2 node model:

    - {e Requests} carry the triple ⟨Nc, ACKc, Ac⟩: the next chunk the
      application needs, a cumulative acknowledgment, and the last
      anticipated chunk (data not explicitly requested yet that the
      sender may push).
    - {e Data} carries one content chunk.  [detour_route] is the
      source-routed remainder installed when a router deflects the
      chunk around a congested link (the paper's spoof-the-identifier
      tunnelling); [via_detour] marks chunks that left the primary
      path at least once.
    - {e Backpressure} engages or releases the closed-loop mode for a
      flow, travelling hop-by-hop towards the sender. *)

type header =
  | Request of {
      flow : int;
      nc : int;        (** next chunk the application requests *)
      ack : int;       (** cumulative: all chunks < ack received *)
      ac : int;        (** last anticipated chunk (>= nc) *)
    }
  | Data of {
      mutable flow : int;
      mutable idx : int;                  (** chunk index within the flow *)
      mutable anticipated : bool;         (** pushed ahead of an explicit request *)
      mutable via_detour : bool;
      mutable detour_route : Topology.Node.id list; (** remaining detour nodes to visit *)
      mutable born : float;               (** sender timestamp (RTT sampling) *)
    }
  | Backpressure of {
      flow : int;
      engage : bool;   (** [true] = slow down, [false] = release *)
    }

type t = {
  header : header;
  size : float;        (** bits on the wire *)
}

val request : flow:int -> nc:int -> ack:int -> ac:int -> t
(** 50-byte header packet.  @raise Invalid_argument if [ac < nc] or
    [nc < 0]. *)

val data :
  ?anticipated:bool -> ?via_detour:bool ->
  ?detour_route:Topology.Node.id list -> flow:int -> idx:int ->
  born:float -> float -> t
(** [data ~flow ~idx ~born chunk_bits].
    @raise Invalid_argument if [chunk_bits <= 0.] or [idx < 0]. *)

val backpressure : flow:int -> engage:bool -> t

val flow : t -> int
val is_data : t -> bool
val pp : Format.formatter -> t -> unit

val request_bits : float
(** Wire size of a request (50 bytes). *)

val backpressure_bits : float
(** Wire size of a back-pressure notification (50 bytes). *)

(** Opt-in freelist for data packets.

    Each transmission is one [Data] record flowing hop-to-hop, so its
    lifetime is linear: allocated at the sender (or an ICN cache-hit
    synthesis), owned by exactly one queue/custody table/handler at a
    time, dead at delivery or drop.  The pool recycles those records
    instead of leaving them to the minor GC — data packets dominate
    allocation on the chunk hot path.

    Ownership contract: [release] may only be called by the packet's
    last owner (consumer delivery, a router drop, or the post-copy
    original of a detoured chunk).  Releasing a packet that is still
    referenced — custodied, queued on an interface, or in flight —
    corrupts the run: the pool will hand the same record to a new
    chunk while the old reference still reads it.  The pooled-vs-
    unpooled differential sweep in [test_validation] is the guard.

    Packets destroyed by fault injection (killed wires, flushed
    queues, crash wipes) are simply not returned; the pool refills
    with fresh allocations.  [Data] fields are mutable solely for the
    pool's benefit; all other code treats packets as immutable. *)
module Pool : sig
  type packet = t
  type t

  val create : chunk_bits:float -> unit -> t
  (** One pool per run; recycles only data packets of exactly
      [chunk_bits] (others are ignored by {!release}).
      @raise Invalid_argument if [chunk_bits <= 0.]. *)

  val data : ?anticipated:bool -> t -> flow:int -> idx:int -> born:float -> packet
  (** A data packet of [chunk_bits] — recycled when the freelist is
      non-empty, freshly allocated otherwise.  [via_detour] and
      [detour_route] always start cleared. *)

  val release : t -> packet -> unit
  (** Return a dead data packet to the freelist.  No-op on requests,
      back-pressure packets, and foreign chunk sizes. *)

  val stats : t -> int * int * int
  (** [(fresh, reused, released)] counters. *)
end
