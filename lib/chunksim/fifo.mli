(** Bounded drop-tail byte queue for interface buffers.

    Capacity is in bits; a packet that would overflow is dropped whole
    (tail drop), the baseline transports' loss signal.  Counters track
    totals for the experiment reports. *)

type t

val create : capacity:float -> t
(** @raise Invalid_argument if [capacity <= 0.]. *)

val push : t -> Packet.t -> [ `Queued | `Dropped ]
val pop : t -> Packet.t option
val peek : t -> Packet.t option
val occupancy : t -> float
(** Bits currently queued. *)

val length : t -> int
val is_empty : t -> bool
val capacity : t -> float

(** {1 Lifetime counters} *)

val total_queued : t -> int
val total_dropped : t -> int
val total_dropped_bits : t -> float
