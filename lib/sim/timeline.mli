(** Time-weighted series recorder.

    Records a piecewise-constant signal (link utilisation, cache
    occupancy, allocated rate...) and integrates it over time, so
    "mean utilisation over the run" is exact rather than sampled.
    Values may be recorded out of order only at the same timestamp;
    time must otherwise be non-decreasing. *)

type t

val create : ?initial:float -> start:float -> unit -> t
(** Signal value is [initial] (default [0.]) from [start] onwards. *)

val record : t -> time:float -> float -> unit
(** The signal takes the new value from [time] onwards.
    @raise Invalid_argument if [time] precedes the last record. *)

val value : t -> float
(** Current (latest) value. *)

val time_average : t -> until:float -> float
(** Time-weighted mean of the signal over [[start, until]].
    @raise Invalid_argument if [until] precedes the last record time.
    [0.] over an empty interval. *)

val integral : t -> until:float -> float
(** ∫ signal dt over [[start, until]]. *)

val peak : t -> float
(** Maximum value ever recorded (including the initial value). *)

val changes : t -> (float * float) list
(** [(time, value)] change points, oldest first, including the initial
    point. *)
