type handle = { mutable cancelled : bool }

type 'a entry = {
  time : float;
  seq : int;
  payload : 'a;
  h : handle;
}

type 'a t = {
  mutable data : 'a entry array;
  mutable size_total : int;    (* entries in heap incl. cancelled *)
  mutable live : int;          (* non-cancelled entries *)
  mutable next_seq : int;
}

let create () = { data = [||]; size_total = 0; live = 0; next_seq = 0 }

let entry_before a b =
  a.time < b.time || (a.time = b.time && a.seq < b.seq)

let swap t i j =
  let tmp = t.data.(i) in
  t.data.(i) <- t.data.(j);
  t.data.(j) <- tmp

let ensure_capacity t =
  let cap = Array.length t.data in
  if t.size_total = cap then begin
    let dummy =
      if cap = 0 then None else Some t.data.(0)
    in
    match dummy with
    | None -> ()
    | Some d ->
      let bigger = Array.make (2 * cap) d in
      Array.blit t.data 0 bigger 0 cap;
      t.data <- bigger
  end

let push t ~time payload =
  if Float.is_nan time then invalid_arg "Event_queue.push: NaN time";
  let h = { cancelled = false } in
  let e = { time; seq = t.next_seq; payload; h } in
  t.next_seq <- t.next_seq + 1;
  if Array.length t.data = 0 then t.data <- Array.make 16 e;
  ensure_capacity t;
  t.data.(t.size_total) <- e;
  let i = ref t.size_total in
  t.size_total <- t.size_total + 1;
  t.live <- t.live + 1;
  while !i > 0 && entry_before t.data.(!i) t.data.((!i - 1) / 2) do
    swap t !i ((!i - 1) / 2);
    i := (!i - 1) / 2
  done;
  h

let cancel h =
  (* live count is fixed up lazily at pop; a cancelled-twice handle must
     not decrement twice, hence the flag check lives with the queue: we
     cannot reach the queue from the handle, so live is adjusted when the
     entry is skipped.  To keep [size] accurate we instead record the
     cancellation only here and subtract cancelled-but-unpopped entries
     when reporting. *)
  h.cancelled <- true

let is_cancelled h = h.cancelled

let sift_down t =
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref !i in
    if l < t.size_total && entry_before t.data.(l) t.data.(!smallest) then
      smallest := l;
    if r < t.size_total && entry_before t.data.(r) t.data.(!smallest) then
      smallest := r;
    if !smallest <> !i then begin
      swap t !i !smallest;
      i := !smallest
    end
    else continue := false
  done

let remove_top t =
  t.size_total <- t.size_total - 1;
  if t.size_total > 0 then begin
    t.data.(0) <- t.data.(t.size_total);
    sift_down t
  end

let rec pop t =
  if t.size_total = 0 then None
  else begin
    let top = t.data.(0) in
    remove_top t;
    if top.h.cancelled then pop t
    else begin
      t.live <- t.live - 1;
      Some (top.time, top.payload)
    end
  end

let rec peek_time t =
  if t.size_total = 0 then None
  else begin
    let top = t.data.(0) in
    if top.h.cancelled then begin
      remove_top t;
      peek_time t
    end
    else Some top.time
  end

let size t =
  (* count live entries: cancelled ones not yet popped are excluded by
     scanning — kept O(n) but only used by tests and assertions. *)
  let n = ref 0 in
  for i = 0 to t.size_total - 1 do
    if not t.data.(i).h.cancelled then incr n
  done;
  t.live <- !n;
  !n

let is_empty t = size t = 0
