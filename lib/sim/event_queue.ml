(* Binary min-heap keyed on (time, epoch, parent, stamp, seq), with O(1) cancellation
   and O(1) size.

   The heap is stored as parallel arrays: [times], [epochs] and [parents] are flat
   float arrays (unboxed — key comparisons never chase a pointer) and
   [data] holds the payload entries.  Each entry carries a [handle]
   through which [cancel] updates the queue's live/dead counters
   directly, so [size] is a field read with no scanning and no side
   effects.

   The [epoch] key orders events that fire at the same instant: it is
   the (virtual) time at which the event was scheduled.  A caller that
   always pushes with epoch = its current clock gets plain FIFO
   (time, seq) order, because epochs are then non-decreasing in push
   order.  A caller that knows an event *would* have been scheduled at
   a later instant T by an equivalent eager process may push it early
   with [~epoch:T] and still take the same slot among same-time ties —
   the forwarding fast path relies on this to collapse two events into
   one without perturbing tie order.  [seq] (push order) is the final
   tie-break.

   Cancelled entries stay in the heap until they surface (lazy
   deletion) or until a compaction sweeps them out: when more than
   half the heap is dead weight, [push] filters the arrays in place
   and re-heapifies bottom-up.  Compaction preserves every live
   (time, seq) key, and the pop order is a function of those keys
   alone, so observable event order is unchanged.

   Events that will never be cancelled can be scheduled through
   [push_fixed], which shares one pre-allocated sentinel handle
   instead of allocating a fresh one per event — the forwarding fast
   path schedules every packet this way. *)

type counts = {
  mutable live : int;            (* schedulable entries in the heap *)
  mutable dead : int;            (* cancelled entries still in the heap *)
  mutable pushed_total : int;
  mutable cancelled_total : int;
  mutable compactions : int;
}

type handle = {
  mutable cancelled : bool;
  mutable in_heap : bool;
  counts : counts;
}

type stats = {
  scheduled : int;
  cancelled : int;
  compacted : int;
}

type 'a entry = {
  seq : int;
  stamp : int;        (* penultimate tie-break; defaults to [seq] *)
  payload : 'a;
  h : handle;
}

type 'a t = {
  mutable times : float array;   (* heap order, parallel to [data] *)
  mutable epochs : float array;  (* scheduling instants, same order *)
  mutable parents : float array; (* the scheduler's own epochs *)
  mutable data : 'a entry array;
  mutable size_total : int;      (* entries in heap incl. cancelled *)
  mutable next_seq : int;
  counts : counts;
  fixed : handle;                (* shared handle for push_fixed *)
  last_time : float array;       (* singleton cell: time of last pop *)
  last_epoch : float array;      (* singleton cell: epoch of last pop *)
}

let create () =
  let counts =
    { live = 0; dead = 0; pushed_total = 0; cancelled_total = 0;
      compactions = 0 }
  in
  {
    times = [||];
    epochs = [||];
    parents = [||];
    data = [||];
    size_total = 0;
    next_seq = 0;
    counts;
    fixed = { cancelled = false; in_heap = true; counts };
    last_time = [| nan |];
    last_epoch = [| nan |];
  }

let entry_before t i j =
  t.times.(i) < t.times.(j)
  || (t.times.(i) = t.times.(j)
      && (t.epochs.(i) < t.epochs.(j)
          || (t.epochs.(i) = t.epochs.(j)
              && (t.parents.(i) < t.parents.(j)
                  || (t.parents.(i) = t.parents.(j)
                      && (t.data.(i).stamp < t.data.(j).stamp
                          || (t.data.(i).stamp = t.data.(j).stamp
                              && t.data.(i).seq < t.data.(j).seq)))))))

let swap t i j =
  let tt = t.times.(i) in
  t.times.(i) <- t.times.(j);
  t.times.(j) <- tt;
  let te = t.epochs.(i) in
  t.epochs.(i) <- t.epochs.(j);
  t.epochs.(j) <- te;
  let tp = t.parents.(i) in
  t.parents.(i) <- t.parents.(j);
  t.parents.(j) <- tp;
  let tmp = t.data.(i) in
  t.data.(i) <- t.data.(j);
  t.data.(j) <- tmp

let sift_up t start =
  let i = ref start in
  while !i > 0 && entry_before t !i ((!i - 1) / 2) do
    swap t !i ((!i - 1) / 2);
    i := (!i - 1) / 2
  done

let sift_down t start =
  let i = ref start in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref !i in
    if l < t.size_total && entry_before t l !smallest then smallest := l;
    if r < t.size_total && entry_before t r !smallest then smallest := r;
    if !smallest <> !i then begin
      swap t !i !smallest;
      i := !smallest
    end
    else continue := false
  done

let ensure_capacity t e =
  let cap = Array.length t.data in
  if cap = 0 then begin
    t.times <- Array.make 16 0.;
    t.epochs <- Array.make 16 0.;
    t.parents <- Array.make 16 0.;
    t.data <- Array.make 16 e
  end
  else if t.size_total = cap then begin
    let times = Array.make (2 * cap) 0. in
    Array.blit t.times 0 times 0 cap;
    t.times <- times;
    let epochs = Array.make (2 * cap) 0. in
    Array.blit t.epochs 0 epochs 0 cap;
    t.epochs <- epochs;
    let parents = Array.make (2 * cap) 0. in
    Array.blit t.parents 0 parents 0 cap;
    t.parents <- parents;
    let data = Array.make (2 * cap) t.data.(0) in
    Array.blit t.data 0 data 0 cap;
    t.data <- data
  end

(* Drop cancelled entries in place and rebuild the heap bottom-up
   (Floyd).  Live keys are untouched, so pop order is preserved. *)
let compact t =
  let n = ref 0 in
  for i = 0 to t.size_total - 1 do
    let e = t.data.(i) in
    if e.h.cancelled then e.h.in_heap <- false
    else begin
      t.times.(!n) <- t.times.(i);
      t.epochs.(!n) <- t.epochs.(i);
      t.parents.(!n) <- t.parents.(i);
      t.data.(!n) <- e;
      incr n
    end
  done;
  t.size_total <- !n;
  t.counts.dead <- 0;
  for i = (!n / 2) - 1 downto 0 do
    sift_down t i
  done;
  t.counts.compactions <- t.counts.compactions + 1

(* compaction threshold: worth a sweep once the heap is mostly dead
   weight, and big enough that the O(n) cost is amortised *)
let needs_compaction t =
  t.size_total >= 64 && 2 * t.counts.dead > t.size_total

let push_entry t ~time ~epoch ~parent e =
  if Float.is_nan time then invalid_arg "Event_queue.push: NaN time";
  if needs_compaction t then compact t;
  ensure_capacity t e;
  t.times.(t.size_total) <- time;
  t.epochs.(t.size_total) <- epoch;
  t.parents.(t.size_total) <- parent;
  t.data.(t.size_total) <- e;
  t.size_total <- t.size_total + 1;
  t.counts.live <- t.counts.live + 1;
  t.counts.pushed_total <- t.counts.pushed_total + 1;
  sift_up t (t.size_total - 1)

let push ?(epoch = neg_infinity) ?(parent = neg_infinity) t ~time payload =
  let h = { cancelled = false; in_heap = true; counts = t.counts } in
  push_entry t ~time ~epoch ~parent
    { seq = t.next_seq; stamp = t.next_seq; payload; h };
  t.next_seq <- t.next_seq + 1;
  h

let push_fixed ?(epoch = neg_infinity) ?(parent = neg_infinity) ?stamp t
    ~time payload =
  let stamp = match stamp with Some s -> s | None -> t.next_seq in
  push_entry t ~time ~epoch ~parent
    { seq = t.next_seq; stamp; payload; h = t.fixed };
  t.next_seq <- t.next_seq + 1

let next_stamp t = t.next_seq

let cancel (h : handle) =
  if not h.cancelled then begin
    h.cancelled <- true;
    h.counts.cancelled_total <- h.counts.cancelled_total + 1;
    if h.in_heap then begin
      h.counts.live <- h.counts.live - 1;
      h.counts.dead <- h.counts.dead + 1
    end
  end

let is_cancelled (h : handle) = h.cancelled

let remove_top t =
  t.size_total <- t.size_total - 1;
  if t.size_total > 0 then begin
    t.times.(0) <- t.times.(t.size_total);
    t.epochs.(0) <- t.epochs.(t.size_total);
    t.parents.(0) <- t.parents.(t.size_total);
    t.data.(0) <- t.data.(t.size_total);
    sift_down t 0
  end

(* surface a live entry at the top, discarding cancelled ones *)
let rec clean_top t =
  if t.size_total > 0 then begin
    let e = t.data.(0) in
    if e.h.cancelled then begin
      e.h.in_heap <- false;
      t.counts.dead <- t.counts.dead - 1;
      remove_top t;
      clean_top t
    end
  end

(* Engine fast path: pop the earliest live event if it is due at or
   before [horizon]; its time lands in the [last_time] cell (read it
   via [last_popped_time] / the cell from [last_time_cell]) so the
   caller pays no option-of-tuple allocation for the timestamp. *)
let pop_if_before t ~horizon =
  clean_top t;
  if t.size_total = 0 || t.times.(0) > horizon then None
  else begin
    let e = t.data.(0) in
    t.last_time.(0) <- t.times.(0);
    t.last_epoch.(0) <- t.epochs.(0);
    e.h.in_heap <- false;
    t.counts.live <- t.counts.live - 1;
    remove_top t;
    Some e.payload
  end

let last_popped_time t = t.last_time.(0)

let last_time_cell t = t.last_time

let last_epoch_cell t = t.last_epoch

let pop t =
  match pop_if_before t ~horizon:infinity with
  | None -> None
  | Some payload -> Some (t.last_time.(0), payload)

let peek_time t =
  clean_top t;
  if t.size_total = 0 then None else Some t.times.(0)

let size t = t.counts.live

let is_empty t = t.counts.live = 0

let stats t =
  {
    scheduled = t.counts.pushed_total;
    cancelled = t.counts.cancelled_total;
    compacted = t.counts.compactions;
  }
