type t = {
  queue : (unit -> unit) Event_queue.t;
  time_cell : float array;       (* the queue's last-popped-time cell *)
  epoch_cell : float array;      (* … and its last-popped-epoch cell *)
  mutable clock : float;
  mutable cur_epoch : float;     (* epoch of the executing event;
                                    [infinity] outside event execution *)
  mutable handled : int;
}

let create () =
  let queue = Event_queue.create () in
  {
    queue;
    time_cell = Event_queue.last_time_cell queue;
    epoch_cell = Event_queue.last_epoch_cell queue;
    clock = 0.;
    cur_epoch = infinity;
    handled = 0;
  }

let now t = t.clock

let current_epoch t = t.cur_epoch

(* Tie-break parent for an ordinary push: the executing event's own
   epoch (outside event execution, the clock itself). *)
let push_parent t = Float.min t.cur_epoch t.clock

let schedule_at t ~time f =
  if Float.is_nan time then invalid_arg "Engine.schedule_at: NaN time";
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: time %g < now %g" time t.clock);
  Event_queue.push t.queue ~epoch:t.clock ~parent:(push_parent t) ~time f

let schedule t ~delay f =
  if Float.is_nan delay || delay < 0. then
    invalid_arg "Engine.schedule: negative or NaN delay";
  schedule_at t ~time:(t.clock +. delay) f

let stamp t = Event_queue.next_stamp t.queue

let schedule_fixed_at ?epoch ?parent_epoch ?stamp t ~time f =
  if Float.is_nan time then invalid_arg "Engine.schedule_fixed_at: NaN time";
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule_fixed_at: time %g < now %g" time
         t.clock);
  let epoch =
    match epoch with
    | None -> t.clock
    | Some e ->
      if Float.is_nan e || e > time then
        invalid_arg "Engine.schedule_fixed_at: epoch > time";
      e
  in
  let parent =
    match parent_epoch with
    | None -> if epoch = t.clock then push_parent t else epoch
    | Some p ->
      if Float.is_nan p || p > epoch then
        invalid_arg "Engine.schedule_fixed_at: parent_epoch > epoch";
      p
  in
  Event_queue.push_fixed ?stamp t.queue ~epoch ~parent ~time f

let schedule_fixed t ~delay f =
  if Float.is_nan delay || delay < 0. then
    invalid_arg "Engine.schedule_fixed: negative or NaN delay";
  schedule_fixed_at t ~time:(t.clock +. delay) f

let cancel = Event_queue.cancel

type periodic = {
  mutable next : Event_queue.handle option;
  mutable stopped : bool;
}

let schedule_periodic t ~interval f =
  if interval <= 0. then
    invalid_arg "Engine.schedule_periodic: interval <= 0";
  let p = { next = None; stopped = false } in
  let rec tick () =
    if not p.stopped then
      if f () then p.next <- Some (schedule t ~delay:interval tick)
      else p.next <- None
  in
  p.next <- Some (schedule t ~delay:interval tick);
  p

let cancel_periodic p =
  p.stopped <- true;
  (match p.next with
  | Some h -> Event_queue.cancel h
  | None -> ());
  p.next <- None

let periodic_active p = not p.stopped && p.next <> None

let step t =
  match Event_queue.pop_if_before t.queue ~horizon:infinity with
  | None -> false
  | Some f ->
    t.clock <- t.time_cell.(0);
    t.cur_epoch <- t.epoch_cell.(0);
    t.handled <- t.handled + 1;
    f ();
    true

let run ?until ?(max_events = 100_000_000) t =
  let horizon = match until with Some h -> h | None -> infinity in
  let budget = ref max_events in
  let continue = ref true in
  while !continue do
    if !budget <= 0 then continue := false
    else begin
      match Event_queue.pop_if_before t.queue ~horizon with
      | None -> continue := false
      | Some f ->
        t.clock <- t.time_cell.(0);
        t.cur_epoch <- t.epoch_cell.(0);
        t.handled <- t.handled + 1;
        f ();
        decr budget
    end
  done;
  (* when stopped by the horizon or by draining the queue (not by the
     runaway guard), the clock advances to [until] per the contract
     and every event at or before the final clock has run *)
  if !budget > 0 || Event_queue.is_empty t.queue then begin
    t.cur_epoch <- infinity;
    match until with
    | Some h -> t.clock <- Float.max t.clock h
    | None -> ()
  end

let pending t = Event_queue.size t.queue

let events_handled t = t.handled

let queue_stats t = Event_queue.stats t.queue
