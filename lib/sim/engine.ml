type t = {
  queue : (unit -> unit) Event_queue.t;
  mutable clock : float;
  mutable handled : int;
}

let create () = { queue = Event_queue.create (); clock = 0.; handled = 0 }

let now t = t.clock

let schedule_at t ~time f =
  if Float.is_nan time then invalid_arg "Engine.schedule_at: NaN time";
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: time %g < now %g" time t.clock);
  Event_queue.push t.queue ~time f

let schedule t ~delay f =
  if Float.is_nan delay || delay < 0. then
    invalid_arg "Engine.schedule: negative or NaN delay";
  schedule_at t ~time:(t.clock +. delay) f

let cancel = Event_queue.cancel

let schedule_periodic t ~interval f =
  if interval <= 0. then
    invalid_arg "Engine.schedule_periodic: interval <= 0";
  let rec tick () =
    if f () then ignore (schedule t ~delay:interval tick)
  in
  ignore (schedule t ~delay:interval tick)

let step t =
  match Event_queue.pop t.queue with
  | None -> false
  | Some (time, f) ->
    t.clock <- time;
    t.handled <- t.handled + 1;
    f ();
    true

let run ?until ?(max_events = 100_000_000) t =
  let budget = ref max_events in
  let continue = ref true in
  while !continue do
    if !budget <= 0 then continue := false
    else begin
      match Event_queue.peek_time t.queue with
      | None -> continue := false
      | Some next -> begin
        match until with
        | Some horizon when next > horizon ->
          t.clock <- Float.max t.clock horizon;
          continue := false
        | _ ->
          ignore (step t);
          decr budget
      end
    end
  done;
  match until with
  | Some horizon when Event_queue.peek_time t.queue = None ->
    (* queue drained before the horizon: advance to it, matching the
       contract that [run ~until] leaves the clock at the horizon *)
    t.clock <- Float.max t.clock horizon
  | _ -> ()

let pending t = Event_queue.size t.queue

let events_handled t = t.handled
