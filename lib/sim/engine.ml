type t = {
  queue : (unit -> unit) Event_queue.t;
  time_cell : float array;       (* the queue's last-popped-time cell *)
  epoch_cell : float array;      (* … and its last-popped-epoch cell *)
  mutable clock : float;
  mutable cur_epoch : float;     (* epoch of the executing event;
                                    [infinity] outside event execution *)
  mutable handled : int;
  (* self-profiler: per-kind wall/allocation attribution.  Kind ids
     are interned at setup; handlers claim their kind with
     [profile_mark]; the run loop measures around each handler only
     while [prof_enabled] (one branch per event otherwise). *)
  mutable prof_enabled : bool;
  mutable prof_clock : unit -> float;
  mutable prof_names : string array;   (* id -> kind name; 0 = other *)
  mutable prof_events : int array;
  mutable prof_wall : float array;
  mutable prof_words : float array;
  mutable prof_cur : int;
}

let create () =
  let queue = Event_queue.create () in
  {
    queue;
    time_cell = Event_queue.last_time_cell queue;
    epoch_cell = Event_queue.last_epoch_cell queue;
    clock = 0.;
    cur_epoch = infinity;
    handled = 0;
    prof_enabled = false;
    prof_clock = Sys.time;
    prof_names = [| "other" |];
    prof_events = [| 0 |];
    prof_wall = [| 0. |];
    prof_words = [| 0. |];
    prof_cur = 0;
  }

let now t = t.clock

let current_epoch t = t.cur_epoch

(* Tie-break parent for an ordinary push: the executing event's own
   epoch (outside event execution, the clock itself). *)
let push_parent t = Float.min t.cur_epoch t.clock

let schedule_at t ~time f =
  if Float.is_nan time then invalid_arg "Engine.schedule_at: NaN time";
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: time %g < now %g" time t.clock);
  Event_queue.push t.queue ~epoch:t.clock ~parent:(push_parent t) ~time f

let schedule t ~delay f =
  if Float.is_nan delay || delay < 0. then
    invalid_arg "Engine.schedule: negative or NaN delay";
  schedule_at t ~time:(t.clock +. delay) f

let stamp t = Event_queue.next_stamp t.queue

let schedule_fixed_at ?epoch ?parent_epoch ?stamp t ~time f =
  if Float.is_nan time then invalid_arg "Engine.schedule_fixed_at: NaN time";
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule_fixed_at: time %g < now %g" time
         t.clock);
  let epoch =
    match epoch with
    | None -> t.clock
    | Some e ->
      if Float.is_nan e || e > time then
        invalid_arg "Engine.schedule_fixed_at: epoch > time";
      e
  in
  let parent =
    match parent_epoch with
    | None -> if epoch = t.clock then push_parent t else epoch
    | Some p ->
      if Float.is_nan p || p > epoch then
        invalid_arg "Engine.schedule_fixed_at: parent_epoch > epoch";
      p
  in
  Event_queue.push_fixed ?stamp t.queue ~epoch ~parent ~time f

let schedule_fixed t ~delay f =
  if Float.is_nan delay || delay < 0. then
    invalid_arg "Engine.schedule_fixed: negative or NaN delay";
  schedule_fixed_at t ~time:(t.clock +. delay) f

let cancel = Event_queue.cancel

type periodic = {
  mutable next : Event_queue.handle option;
  mutable stopped : bool;
}

let schedule_periodic t ~interval f =
  if interval <= 0. then
    invalid_arg "Engine.schedule_periodic: interval <= 0";
  let p = { next = None; stopped = false } in
  let rec tick () =
    if not p.stopped then
      if f () then p.next <- Some (schedule t ~delay:interval tick)
      else p.next <- None
  in
  p.next <- Some (schedule t ~delay:interval tick);
  p

let cancel_periodic p =
  p.stopped <- true;
  (match p.next with
  | Some h -> Event_queue.cancel h
  | None -> ());
  p.next <- None

let periodic_active p = not p.stopped && p.next <> None

(* ------------------------------------------------------------------ *)
(* Self-profiler *)

let profile_kind t name =
  let n = Array.length t.prof_names in
  let rec find i = if i >= n then -1 else if t.prof_names.(i) = name then i else find (i + 1) in
  let i = find 0 in
  if i >= 0 then i
  else begin
    t.prof_names <- Array.append t.prof_names [| name |];
    t.prof_events <- Array.append t.prof_events [| 0 |];
    t.prof_wall <- Array.append t.prof_wall [| 0. |];
    t.prof_words <- Array.append t.prof_words [| 0. |];
    n
  end

let profile_mark t k = if t.prof_enabled then t.prof_cur <- k

let profile_start ?clock t =
  (match clock with Some c -> t.prof_clock <- c | None -> ());
  t.prof_enabled <- true

let profile_stop t = t.prof_enabled <- false

let profiling t = t.prof_enabled

let profile_rows t =
  List.filter
    (fun (_, events, _, _) -> events > 0)
    (List.init (Array.length t.prof_names) (fun i ->
         (t.prof_names.(i), t.prof_events.(i), t.prof_wall.(i),
          t.prof_words.(i))))

(* Measure one handler.  Order matters: the clock reads (which box a
   float) stay outside the [Gc.minor_words] window, so the profiler
   attributes only the handler's own allocation. *)
let[@inline] profiled t f =
  t.prof_cur <- 0;
  let c0 = t.prof_clock () in
  let w0 = Gc.minor_words () in
  f ();
  let w1 = Gc.minor_words () in
  let c1 = t.prof_clock () in
  let k = t.prof_cur in
  t.prof_events.(k) <- t.prof_events.(k) + 1;
  t.prof_wall.(k) <- t.prof_wall.(k) +. (c1 -. c0);
  t.prof_words.(k) <- t.prof_words.(k) +. (w1 -. w0)

(* ------------------------------------------------------------------ *)

let step t =
  match Event_queue.pop_if_before t.queue ~horizon:infinity with
  | None -> false
  | Some f ->
    t.clock <- t.time_cell.(0);
    t.cur_epoch <- t.epoch_cell.(0);
    t.handled <- t.handled + 1;
    if t.prof_enabled then profiled t f else f ();
    true

let run ?until ?(max_events = 100_000_000) t =
  let horizon = match until with Some h -> h | None -> infinity in
  let budget = ref max_events in
  let continue = ref true in
  while !continue do
    if !budget <= 0 then continue := false
    else begin
      match Event_queue.pop_if_before t.queue ~horizon with
      | None -> continue := false
      | Some f ->
        t.clock <- t.time_cell.(0);
        t.cur_epoch <- t.epoch_cell.(0);
        t.handled <- t.handled + 1;
        if t.prof_enabled then profiled t f else f ();
        decr budget
    end
  done;
  (* when stopped by the horizon or by draining the queue (not by the
     runaway guard), the clock advances to [until] per the contract
     and every event at or before the final clock has run *)
  if !budget > 0 || Event_queue.is_empty t.queue then begin
    t.cur_epoch <- infinity;
    match until with
    | Some h -> t.clock <- Float.max t.clock h
    | None -> ()
  end

let pending t = Event_queue.size t.queue

let events_handled t = t.handled

let queue_stats t = Event_queue.stats t.queue
