(** Discrete-event simulation engine.

    The engine owns a virtual clock and an event queue of closures.
    Handlers run strictly in time order (FIFO among simultaneous
    events) and may schedule further events.  Time never goes
    backwards: scheduling into the past raises. *)

type t

val create : unit -> t

val now : t -> float
(** Current virtual time, seconds.  Starts at [0.]. *)

val current_epoch : t -> float
(** Scheduling epoch of the event currently being executed — the
    instant at which it was scheduled, the key that orders it among
    same-time ties (see {!Event_queue}).  [infinity] when no event is
    executing (before the first event and after {!run} returns having
    drained or reached its horizon), meaning every event at or before
    [now] has already run. *)

val schedule : t -> delay:float -> (unit -> unit) -> Event_queue.handle
(** [schedule t ~delay f] runs [f] at [now t +. delay].
    @raise Invalid_argument if [delay < 0.] or NaN. *)

val schedule_at : t -> time:float -> (unit -> unit) -> Event_queue.handle
(** Absolute-time variant.  @raise Invalid_argument if
    [time < now t]. *)

val schedule_fixed : t -> delay:float -> (unit -> unit) -> unit
(** Like {!schedule} for events that are never cancelled: no handle
    is allocated or returned (see {!Event_queue.push_fixed}).  The
    forwarding hot path uses this. *)

val stamp : t -> int
(** Monotone scheduling stamp (the next event-queue insertion number).
    Capture it when a causal chain begins and pass it to
    {!schedule_fixed_at} so later lazy schedules order among full ties
    as if pushed when the chain began. *)

val schedule_fixed_at :
  ?epoch:float -> ?parent_epoch:float -> ?stamp:int -> t -> time:float ->
  (unit -> unit) -> unit
(** Absolute-time variant of {!schedule_fixed}.  [epoch] (default
    [now]) positions the event among same-time ties as if it had been
    scheduled at that instant; it may lie in the past (a lazy caller
    scheduling an event that an equivalent eager process would have
    scheduled earlier) but never after the event itself.
    [parent_epoch] (default [epoch] when [epoch] is given, else the
    executing event's epoch) breaks remaining ties: the instant at
    which the scheduling process was itself scheduled.  The forwarding
    fast path schedules each packet's arrival when it notices the
    transmission started, with epoch = the transmission's completion
    (when the eager two-event transmitter would have scheduled the
    propagation) and parent epoch = the transmission's start (when
    that transmitter would have scheduled the completion), so tie
    order is preserved.
    @raise Invalid_argument if [epoch > time], [parent_epoch > epoch]
    or NaN. *)

val cancel : Event_queue.handle -> unit

type periodic
(** A running periodic schedule; cancellable. *)

val schedule_periodic : t -> interval:float -> (unit -> bool) -> periodic
(** [schedule_periodic t ~interval f] runs [f] every [interval]
    seconds starting at [now + interval], until [f] returns [false]
    or the returned handle is cancelled.
    @raise Invalid_argument if [interval <= 0.]. *)

val cancel_periodic : periodic -> unit
(** Stop a periodic schedule; idempotent.  The pending tick is
    cancelled in the queue, so no further calls to [f] happen. *)

val periodic_active : periodic -> bool
(** [true] while ticks are still scheduled (not cancelled and [f] has
    not returned [false]). *)

val run : ?until:float -> ?max_events:int -> t -> unit
(** Drain the queue.  Stops when empty, when the next event is later
    than [until], or after [max_events] handled events (a runaway
    guard; default 100 million).  When stopped by [until], the clock
    is advanced to [until]. *)

val step : t -> bool
(** Process exactly one event; [false] when the queue is empty. *)

val pending : t -> int
(** Live scheduled events.  O(1). *)

val events_handled : t -> int
(** Total events processed since creation. *)

val queue_stats : t -> Event_queue.stats
(** Scheduling / cancellation / compaction counters of the underlying
    event queue. *)

(** {1 Self-profiler}

    Attribute wall-clock and minor-heap allocation per event kind.
    Kinds are interned ids claimed by handlers: a handler calls
    {!profile_mark} with its kind at the top of its closure, and the
    run loop — only while profiling is on — measures the clock and
    [Gc.minor_words] around each event and accrues the deltas under
    the claimed kind (id 0, ["other"], when nothing marked).  While
    profiling is off both [profile_mark] and the run loop cost one
    branch per call and allocate nothing, so an unprofiled run is
    bit-identical and alloc-identical to an uninstrumented one. *)

val profile_kind : t -> string -> int
(** Intern a kind name (setup time); returns its id.  Idempotent per
    name. *)

val profile_mark : t -> int -> unit
(** Claim the currently executing event for the kind.  No-op while
    profiling is off. *)

val profile_start : ?clock:(unit -> float) -> t -> unit
(** Enable measurement.  [clock] (default [Sys.time]) supplies wall
    time; pass [Unix.gettimeofday] from layers that link unix. *)

val profile_stop : t -> unit

val profiling : t -> bool

val profile_rows : t -> (string * int * float * float) list
(** [(kind, events, wall_seconds, minor_words)] per kind with at least
    one event, registration order. *)
