(** Discrete-event simulation engine.

    The engine owns a virtual clock and an event queue of closures.
    Handlers run strictly in time order (FIFO among simultaneous
    events) and may schedule further events.  Time never goes
    backwards: scheduling into the past raises. *)

type t

val create : unit -> t

val now : t -> float
(** Current virtual time, seconds.  Starts at [0.]. *)

val schedule : t -> delay:float -> (unit -> unit) -> Event_queue.handle
(** [schedule t ~delay f] runs [f] at [now t +. delay].
    @raise Invalid_argument if [delay < 0.] or NaN. *)

val schedule_at : t -> time:float -> (unit -> unit) -> Event_queue.handle
(** Absolute-time variant.  @raise Invalid_argument if
    [time < now t]. *)

val cancel : Event_queue.handle -> unit

val schedule_periodic : t -> interval:float -> (unit -> bool) -> unit
(** [schedule_periodic t ~interval f] runs [f] every [interval]
    seconds starting at [now + interval], until [f] returns [false].
    @raise Invalid_argument if [interval <= 0.]. *)

val run : ?until:float -> ?max_events:int -> t -> unit
(** Drain the queue.  Stops when empty, when the next event is later
    than [until], or after [max_events] handled events (a runaway
    guard; default 100 million).  When stopped by [until], the clock
    is advanced to [until]. *)

val step : t -> bool
(** Process exactly one event; [false] when the queue is empty. *)

val pending : t -> int
(** Live scheduled events. *)

val events_handled : t -> int
(** Total events processed since creation. *)
