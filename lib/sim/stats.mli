(** Statistics collectors: running moments, percentiles, CDFs.

    Used by every experiment to summarise throughput, stretch and
    completion-time samples, and by the benches to print the paper's
    figure series. *)

(** {1 Running moments (Welford)} *)

module Running : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  (** [0.] when empty. *)

  val variance : t -> float
  (** Unbiased sample variance; [0.] for fewer than two samples. *)

  val stddev : t -> float
  val min : t -> float
  (** [infinity] when empty. *)

  val max : t -> float
  (** [neg_infinity] when empty. *)

  val sum : t -> float
  val merge : t -> t -> t
  (** Combine two collectors (parallel Welford merge). *)
end

(** {1 Sample sets (exact percentiles)} *)

module Samples : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val to_sorted_array : t -> float array
  val mean : t -> float

  val percentile : t -> float -> float
  (** [percentile s p] with [p] in [[0, 100]], linear interpolation.
      @raise Invalid_argument on empty set or p outside range. *)

  val median : t -> float

  val cdf : ?points:int -> t -> (float * float) list
  (** [(value, P(X <= value))] pairs suitable for plotting; [points]
      (default 50) evenly spaced in rank. Empty list when no samples. *)

  val cdf_at : t -> float -> float
  (** Empirical [P(X <= x)]; [0.] on empty set. *)

  val mean_ci95 : t -> float * float
  (** [(mean, half_width)] of the 95% confidence interval under the
      normal approximation ([1.96 * s / sqrt n]); half-width is [0.]
      for fewer than two samples.
      @raise Invalid_argument on an empty set. *)
end

(** {1 Fixed-bin histogram} *)

module Histogram : sig
  type t

  val create : lo:float -> hi:float -> bins:int -> t
  (** @raise Invalid_argument if [hi <= lo] or [bins <= 0]. *)

  val add : t -> float -> unit
  (** Out-of-range samples clamp into the first/last bin. *)

  val counts : t -> int array
  val total : t -> int
  val bin_edges : t -> float array
  (** [bins + 1] edges. *)

  val pp : Format.formatter -> t -> unit
  (** ASCII bar rendering, one line per bin. *)
end
