(** Deterministic pseudo-random numbers (SplitMix64).

    Every stochastic element of the repository draws through this
    module from an explicit seed, so all experiments replay bit-for-bit
    — a requirement for regenerating the paper's tables.  SplitMix64 is
    small, fast, passes BigCrush, and supports cheap stream splitting
    for independent sub-generators. *)

type t

val create : int64 -> t
(** Independent generator from a seed.  Equal seeds give equal
    streams. *)

val split : t -> t
(** A new generator statistically independent of the parent; the
    parent advances by one step. *)

val copy : t -> t

(** {1 Raw draws} *)

val next_int64 : t -> int64
val float : t -> float -> float
(** [float t bound] draws uniformly from [[0, bound)].
    @raise Invalid_argument if [bound <= 0.]. *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)

val bool : t -> bool

(** {1 Distributions} *)

val uniform : t -> lo:float -> hi:float -> float
(** @raise Invalid_argument if [hi < lo]. *)

val exponential : t -> mean:float -> float
(** Inter-arrival times of a Poisson process.
    @raise Invalid_argument if [mean <= 0.]. *)

val pareto : t -> shape:float -> scale:float -> float
(** Heavy-tailed flow sizes.  Mean is [shape * scale / (shape - 1)]
    when [shape > 1].  @raise Invalid_argument if [shape <= 0.] or
    [scale <= 0.]. *)

val zipf : t -> n:int -> s:float -> int
(** Rank in [[1, n]] under Zipf with exponent [s] (content
    popularity).  O(n) setup per call is avoided by inverse-CDF on a
    cached table — callers drawing many values should use
    {!zipf_sampler}. *)

val zipf_sampler : n:int -> s:float -> t -> int
(** Precomputed-table sampler; partially apply to [(n, s)] and reuse. *)

val poisson : t -> mean:float -> int
(** Number of events in an interval. Knuth's method below mean 30,
    normal approximation above.  @raise Invalid_argument if
    [mean < 0.]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates. *)

val choose : t -> 'a list -> 'a option
(** Uniform element of the list; [None] on empty. *)
