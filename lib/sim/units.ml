let bits x = x
let bytes x = 8. *. x
let kilobytes x = bytes (1e3 *. x)
let megabytes x = bytes (1e6 *. x)
let gigabytes x = bytes (1e9 *. x)
let kibibytes x = bytes (1024. *. x)
let mebibytes x = bytes (1024. *. 1024. *. x)
let gibibytes x = bytes (1024. *. 1024. *. 1024. *. x)

let bps x = x
let kbps x = 1e3 *. x
let mbps x = 1e6 *. x
let gbps x = 1e9 *. x

let seconds x = x
let milliseconds x = 1e-3 *. x
let microseconds x = 1e-6 *. x

let transmission_time ~bits ~rate =
  if rate <= 0. then invalid_arg "Units.transmission_time: rate <= 0";
  bits /. rate

let holding_time ~cache_bits ~rate = transmission_time ~bits:cache_bits ~rate

let pp_scaled ppf value unit_names factor =
  (* unit_names from smallest to largest, each [factor] apart *)
  let rec scale v = function
    | [ last ] -> (v, last)
    | name :: rest -> if Float.abs v < factor then (v, name) else scale (v /. factor) rest
    | [] -> (v, "?")
  in
  let v, name = scale value unit_names in
  Format.fprintf ppf "%.4g %s" v name

let pp_rate ppf r = pp_scaled ppf r [ "bps"; "kbps"; "Mbps"; "Gbps"; "Tbps" ] 1e3

let pp_size ppf bits =
  pp_scaled ppf (bits /. 8.) [ "B"; "kB"; "MB"; "GB"; "TB" ] 1e3

let pp_time ppf t =
  if t = 0. then Format.pp_print_string ppf "0 s"
  else if Float.abs t >= 1. then Format.fprintf ppf "%.4g s" t
  else if Float.abs t >= 1e-3 then Format.fprintf ppf "%.4g ms" (t *. 1e3)
  else if Float.abs t >= 1e-6 then Format.fprintf ppf "%.4g us" (t *. 1e6)
  else Format.fprintf ppf "%.4g ns" (t *. 1e9)
