(** Physical units used across the simulators.

    Everything is carried as [float] in base SI units — seconds, bits,
    bits per second — with named constructors so call sites read like
    the paper ("a 10 GB cache after a 40 Gbps link"). *)

(** {1 Data sizes (bits)} *)

val bits : float -> float
val bytes : float -> float
val kilobytes : float -> float
val megabytes : float -> float
val gigabytes : float -> float
val kibibytes : float -> float
val mebibytes : float -> float
val gibibytes : float -> float

(** {1 Rates (bits per second)} *)

val bps : float -> float
val kbps : float -> float
val mbps : float -> float
val gbps : float -> float

(** {1 Times (seconds)} *)

val seconds : float -> float
val milliseconds : float -> float
val microseconds : float -> float

(** {1 Derived} *)

val transmission_time : bits:float -> rate:float -> float
(** [bits / rate]. @raise Invalid_argument if [rate <= 0.]. *)

val holding_time : cache_bits:float -> rate:float -> float
(** Time a cache of [cache_bits] can absorb a full-rate inflow — the
    §3.3 custody feasibility number. *)

(** {1 Pretty-printing} *)

val pp_rate : Format.formatter -> float -> unit
(** e.g. ["2.5 Gbps"]. *)

val pp_size : Format.formatter -> float -> unit
(** e.g. ["10.0 GB"] (decimal bytes). *)

val pp_time : Format.formatter -> float -> unit
(** e.g. ["1.25 ms"]. *)
