(** Priority queue of timestamped events (binary min-heap).

    Ties on time break by scheduling epoch, then by the scheduler's
    own epoch ([parent]), then by insertion sequence number, so
    simultaneous events run FIFO in scheduling order —
    important for reproducibility of the discrete-event simulators.
    The epoch is the (virtual) instant the event was scheduled at:
    callers that push with [~epoch] equal to their current clock get
    plain FIFO order, while a caller that knows an event would have
    been scheduled at a later instant by an equivalent eager process
    may push it early and still occupy the same slot among same-time
    ties (the forwarding fast path depends on this).  Cancellation is
    O(1) lazy: cancelled handles are skipped when they surface, and
    the heap is compacted in place once cancelled entries outnumber
    live ones.  [size] and [is_empty] are O(1): the handle carries the
    queue's counters and updates them at cancel time. *)

type 'a t

type handle
(** Token for cancelling a scheduled event. *)

type stats = {
  scheduled : int;   (** total entries ever pushed *)
  cancelled : int;   (** total cancel calls on live handles *)
  compacted : int;   (** heap compaction sweeps performed *)
}

val create : unit -> 'a t

val push : ?epoch:float -> ?parent:float -> 'a t -> time:float -> 'a -> handle
(** [epoch] is the instant this event was scheduled; [parent] the
    instant its scheduler was itself scheduled (a second-level
    tie-break for events sharing both time and epoch).  Both default
    to [neg_infinity], which reduces tie order to plain insertion
    order.
    @raise Invalid_argument if [time] is NaN. *)

val push_fixed :
  ?epoch:float -> ?parent:float -> ?stamp:int -> 'a t -> time:float -> 'a ->
  unit
(** Like {!push} for events that will never be cancelled: shares one
    sentinel handle instead of allocating one per event.  The hot
    forwarding path schedules every packet this way.  [stamp] (default
    the entry's own insertion number) is the penultimate tie-break,
    letting a lazy caller order an event as if it had been pushed when
    its causal chain began (see {!next_stamp}). *)

val next_stamp : 'a t -> int
(** The stamp the next push will receive — capture it to order later
    [push_fixed ~stamp] calls as if they happened now. *)

val cancel : handle -> unit
(** Idempotent.  O(1): adjusts the owning queue's live count through
    the handle; the entry itself is removed lazily. *)

val is_cancelled : handle -> bool

val pop : 'a t -> (float * 'a) option
(** Earliest live event, removed.  [None] when empty. *)

val pop_if_before : 'a t -> horizon:float -> 'a option
(** Earliest live event, removed, provided its time is [<= horizon];
    [None] when empty or the next event lies beyond the horizon.  The
    popped time is stored in the queue's last-time cell (see
    {!last_popped_time}) instead of being returned, so the caller
    pays no tuple allocation.  Pass [infinity] for an unbounded pop. *)

val last_popped_time : 'a t -> float
(** Time of the most recent successful {!pop} / {!pop_if_before};
    NaN before the first pop. *)

val last_time_cell : 'a t -> float array
(** The singleton cell behind {!last_popped_time}, for callers that
    read it on every event and want to skip the function call (the
    engine's run loop).  Do not write to it. *)

val last_epoch_cell : 'a t -> float array
(** Singleton cell holding the scheduling epoch of the most recently
    popped event; NaN before the first pop.  Do not write to it. *)

val peek_time : 'a t -> float option
(** Time of the earliest live event without removing it. *)

val size : 'a t -> int
(** Live (non-cancelled) entries.  O(1), no side effects. *)

val is_empty : 'a t -> bool
(** O(1). *)

val stats : 'a t -> stats
(** Scheduling / cancellation / compaction counters since [create]. *)
