(** Priority queue of timestamped events (binary min-heap).

    Ties on time break by insertion sequence number, so simultaneous
    events run FIFO — important for reproducibility of the
    discrete-event simulators.  Cancellation is O(1) lazy: cancelled
    handles are skipped at pop time. *)

type 'a t

type handle
(** Token for cancelling a scheduled event. *)

val create : unit -> 'a t

val push : 'a t -> time:float -> 'a -> handle
(** @raise Invalid_argument if [time] is NaN. *)

val cancel : handle -> unit
(** Idempotent. *)

val is_cancelled : handle -> bool

val pop : 'a t -> (float * 'a) option
(** Earliest live event, removed.  [None] when empty. *)

val peek_time : 'a t -> float option
(** Time of the earliest live event without removing it. *)

val size : 'a t -> int
(** Live (non-cancelled) entries. *)

val is_empty : 'a t -> bool
