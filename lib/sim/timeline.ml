type t = {
  start : float;
  mutable last_time : float;
  mutable last_value : float;
  mutable area : float;         (* integral over [start, last_time] *)
  mutable peak_v : float;
  mutable rev_changes : (float * float) list;
}

let create ?(initial = 0.) ~start () =
  {
    start;
    last_time = start;
    last_value = initial;
    area = 0.;
    peak_v = initial;
    rev_changes = [ (start, initial) ];
  }

let record t ~time v =
  if time < t.last_time then
    invalid_arg
      (Printf.sprintf "Timeline.record: time %g < last %g" time t.last_time);
  t.area <- t.area +. (t.last_value *. (time -. t.last_time));
  t.last_time <- time;
  t.last_value <- v;
  if v > t.peak_v then t.peak_v <- v;
  t.rev_changes <- (time, v) :: t.rev_changes

let value t = t.last_value

let integral t ~until =
  if until < t.last_time then
    invalid_arg "Timeline.integral: until precedes last record";
  t.area +. (t.last_value *. (until -. t.last_time))

let time_average t ~until =
  let span = until -. t.start in
  if span <= 0. then 0. else integral t ~until /. span

let peak t = t.peak_v

let changes t = List.rev t.rev_changes
