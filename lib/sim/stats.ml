module Running = struct
  type t = {
    mutable n : int;
    mutable mean_acc : float;
    mutable m2 : float;
    mutable min_v : float;
    mutable max_v : float;
    mutable sum_v : float;
  }

  let create () =
    {
      n = 0;
      mean_acc = 0.;
      m2 = 0.;
      min_v = infinity;
      max_v = neg_infinity;
      sum_v = 0.;
    }

  let add t x =
    t.n <- t.n + 1;
    let delta = x -. t.mean_acc in
    t.mean_acc <- t.mean_acc +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean_acc));
    if x < t.min_v then t.min_v <- x;
    if x > t.max_v then t.max_v <- x;
    t.sum_v <- t.sum_v +. x

  let count t = t.n
  let mean t = if t.n = 0 then 0. else t.mean_acc
  let variance t = if t.n < 2 then 0. else t.m2 /. float_of_int (t.n - 1)
  let stddev t = sqrt (variance t)
  let min t = t.min_v
  let max t = t.max_v
  let sum t = t.sum_v

  let merge a b =
    if a.n = 0 then { b with n = b.n }
    else if b.n = 0 then { a with n = a.n }
    else begin
      let n = a.n + b.n in
      let fa = float_of_int a.n and fb = float_of_int b.n in
      let fn = float_of_int n in
      let delta = b.mean_acc -. a.mean_acc in
      let mean_acc = a.mean_acc +. (delta *. fb /. fn) in
      let m2 = a.m2 +. b.m2 +. (delta *. delta *. fa *. fb /. fn) in
      {
        n;
        mean_acc;
        m2;
        min_v = Float.min a.min_v b.min_v;
        max_v = Float.max a.max_v b.max_v;
        sum_v = a.sum_v +. b.sum_v;
      }
    end
end

module Samples = struct
  type t = {
    mutable data : float array;
    mutable n : int;
    mutable sorted : bool;
  }

  let create () = { data = Array.make 64 0.; n = 0; sorted = true }

  let add t x =
    if t.n = Array.length t.data then begin
      let bigger = Array.make (2 * t.n) 0. in
      Array.blit t.data 0 bigger 0 t.n;
      t.data <- bigger
    end;
    t.data.(t.n) <- x;
    t.n <- t.n + 1;
    t.sorted <- false

  let count t = t.n

  let ensure_sorted t =
    if not t.sorted then begin
      let view = Array.sub t.data 0 t.n in
      Array.sort Float.compare view;
      Array.blit view 0 t.data 0 t.n;
      t.sorted <- true
    end

  let to_sorted_array t =
    ensure_sorted t;
    Array.sub t.data 0 t.n

  let mean t =
    if t.n = 0 then 0.
    else begin
      let s = ref 0. in
      for i = 0 to t.n - 1 do
        s := !s +. t.data.(i)
      done;
      !s /. float_of_int t.n
    end

  let percentile t p =
    if t.n = 0 then invalid_arg "Stats.Samples.percentile: empty";
    if p < 0. || p > 100. then
      invalid_arg "Stats.Samples.percentile: p outside [0,100]";
    ensure_sorted t;
    let rank = p /. 100. *. float_of_int (t.n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = int_of_float (Float.ceil rank) in
    if lo = hi then t.data.(lo)
    else begin
      let w = rank -. float_of_int lo in
      ((1. -. w) *. t.data.(lo)) +. (w *. t.data.(hi))
    end

  let median t = percentile t 50.

  let cdf ?(points = 50) t =
    if t.n = 0 then []
    else begin
      ensure_sorted t;
      let pts = Stdlib.max 2 (Stdlib.min points t.n) in
      List.init pts (fun i ->
          let rank =
            float_of_int i /. float_of_int (pts - 1) *. float_of_int (t.n - 1)
          in
          let idx = int_of_float (Float.round rank) in
          let idx = Stdlib.min (t.n - 1) (Stdlib.max 0 idx) in
          (t.data.(idx), float_of_int (idx + 1) /. float_of_int t.n))
    end

  let mean_ci95 t =
    if t.n = 0 then invalid_arg "Stats.Samples.mean_ci95: empty";
    let m = mean t in
    if t.n < 2 then (m, 0.)
    else begin
      let acc = ref 0. in
      for i = 0 to t.n - 1 do
        let d = t.data.(i) -. m in
        acc := !acc +. (d *. d)
      done;
      let s = sqrt (!acc /. float_of_int (t.n - 1)) in
      (m, 1.96 *. s /. sqrt (float_of_int t.n))
    end

  let cdf_at t x =
    if t.n = 0 then 0.
    else begin
      ensure_sorted t;
      (* count of samples <= x, binary search for upper bound *)
      let lo = ref 0 and hi = ref t.n in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if t.data.(mid) <= x then lo := mid + 1 else hi := mid
      done;
      float_of_int !lo /. float_of_int t.n
    end
end

module Histogram = struct
  type t = {
    lo : float;
    hi : float;
    bins : int;
    counts : int array;
    mutable total : int;
  }

  let create ~lo ~hi ~bins =
    if hi <= lo then invalid_arg "Stats.Histogram.create: hi <= lo";
    if bins <= 0 then invalid_arg "Stats.Histogram.create: bins <= 0";
    { lo; hi; bins; counts = Array.make bins 0; total = 0 }

  let add t x =
    let raw =
      int_of_float (float_of_int t.bins *. (x -. t.lo) /. (t.hi -. t.lo))
    in
    let idx = Stdlib.min (t.bins - 1) (Stdlib.max 0 raw) in
    t.counts.(idx) <- t.counts.(idx) + 1;
    t.total <- t.total + 1

  let counts t = Array.copy t.counts
  let total t = t.total

  let bin_edges t =
    Array.init (t.bins + 1) (fun i ->
        t.lo +. (float_of_int i *. (t.hi -. t.lo) /. float_of_int t.bins))

  let pp ppf t =
    let maxc = Array.fold_left Stdlib.max 1 t.counts in
    let edges = bin_edges t in
    for i = 0 to t.bins - 1 do
      let bar_len = t.counts.(i) * 40 / maxc in
      Format.fprintf ppf "[%8.3g, %8.3g) %6d %s@." edges.(i) edges.(i + 1)
        t.counts.(i)
        (String.make bar_len '#')
    done
end
