type t = { mutable state : int64 }

let golden_gamma = 0x9e3779b97f4a7c15L

let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  logxor z (shift_right_logical z 31)

let create seed = { state = mix64 seed }

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = create (next_int64 t)

let copy t = { state = t.state }

(* 53-bit mantissa in [0,1) *)
let unit_float t =
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits *. 0x1.0p-53

let float t bound =
  if bound <= 0. then invalid_arg "Rng.float: bound <= 0";
  unit_float t *. bound

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound <= 0";
  (* rejection-free modulo is fine: bounds here are tiny vs 2^64 *)
  Int64.to_int (Int64.unsigned_rem (next_int64 t) (Int64.of_int bound))

let bool t = Int64.logand (next_int64 t) 1L = 1L

let uniform t ~lo ~hi =
  if hi < lo then invalid_arg "Rng.uniform: hi < lo";
  lo +. (unit_float t *. (hi -. lo))

let exponential t ~mean =
  if mean <= 0. then invalid_arg "Rng.exponential: mean <= 0";
  let u = 1. -. unit_float t in
  -.mean *. log u

let pareto t ~shape ~scale =
  if shape <= 0. then invalid_arg "Rng.pareto: shape <= 0";
  if scale <= 0. then invalid_arg "Rng.pareto: scale <= 0";
  let u = 1. -. unit_float t in
  scale /. (u ** (1. /. shape))

let zipf_sampler ~n ~s =
  if n <= 0 then invalid_arg "Rng.zipf_sampler: n <= 0";
  if s < 0. then invalid_arg "Rng.zipf_sampler: s < 0";
  let cdf = Array.make n 0. in
  let acc = ref 0. in
  for k = 1 to n do
    acc := !acc +. (1. /. (float_of_int k ** s));
    cdf.(k - 1) <- !acc
  done;
  let total = !acc in
  fun t ->
    let u = unit_float t *. total in
    (* binary search for first cdf >= u *)
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if cdf.(mid) < u then lo := mid + 1 else hi := mid
    done;
    !lo + 1

let zipf t ~n ~s = zipf_sampler ~n ~s t

let poisson t ~mean =
  if mean < 0. then invalid_arg "Rng.poisson: mean < 0";
  if mean = 0. then 0
  else if mean < 30. then begin
    (* Knuth: multiply uniforms until below exp(-mean) *)
    let limit = exp (-.mean) in
    let rec go k p =
      let p = p *. unit_float t in
      if p <= limit then k else go (k + 1) p
    in
    go 0 1.
  end
  else begin
    (* normal approximation with continuity correction *)
    let u1 = 1. -. unit_float t and u2 = unit_float t in
    let z = sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2) in
    let v = mean +. (sqrt mean *. z) +. 0.5 in
    if v < 0. then 0 else int_of_float v
  end

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let choose t = function
  | [] -> None
  | l -> List.nth_opt l (int t (List.length l))
