(** Multipath coupled-AIMD transport — the e2eRPP comparator (§2.2).

    Up to [subflows] link-disjoint end-to-end paths per flow, each
    with its own window, coupled by MPTCP's linked increase so the
    aggregate is no more aggressive than one TCP.  Resource pooling
    across {e end-to-end} paths only: no in-network detours, no
    custody.

    Like {!Aimd}, this is a parameter-only preset over
    {!Harness.run_pull}: the coupled linked-increase lives in
    {!Puller} (keyed on [coupled = true]), path diversity in
    {!Harness.prepare}'s disjoint-path setup. *)

val run :
  ?subflows:int -> ?chunk_bits:float -> ?queue_bits:float ->
  ?horizon:float -> ?obs:Obs.Observer.t -> ?faults:Fault.Schedule.t -> Topology.Graph.t ->
  Inrpp.Protocol.flow_spec list -> Run_result.t
(** [subflows] defaults to 2 (fewer when the topology offers fewer
    disjoint paths).  [obs] is forwarded to {!Harness.run_pull}, so an
    instrumented MPTCP run emits the same metric and series names
    (labelled [protocol=MPTCP]) as the other baselines. *)
