(** Matched-scenario comparison: INRPP against the e2e baselines.

    Runs the same topology and flow set through INRPP (chunk-level,
    {!Inrpp.Protocol}), AIMD, MPTCP and RCP, and returns one
    {!Run_result.t} per protocol — the `protocols` experiment. *)

type protocol =
  | Inrpp_proto
  | Aimd_proto
  | Mptcp_proto
  | Rcp_proto
  | Hbh_proto  (** hop-by-hop interest shaping, the paper's ref. [45] *)

val all : protocol list
val name : protocol -> string

val run_one :
  ?cfg:Inrpp.Config.t -> ?horizon:float -> protocol ->
  Topology.Graph.t -> Inrpp.Protocol.flow_spec list -> Run_result.t
(** The INRPP chunk size, queue size and horizon are taken from / kept
    consistent with [cfg] across all protocols. *)

val run_all :
  ?cfg:Inrpp.Config.t -> ?horizon:float -> ?protocols:protocol list ->
  Topology.Graph.t -> Inrpp.Protocol.flow_spec list -> Run_result.t list
