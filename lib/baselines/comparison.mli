(** Matched-scenario comparison: INRPP against the e2e baselines.

    Runs the same topology and flow set through INRPP (chunk-level,
    {!Inrpp.Protocol}), AIMD, MPTCP and RCP, and returns one
    {!Run_result.t} per protocol — the `protocols` experiment. *)

type protocol =
  | Inrpp_proto
  | Aimd_proto
  | Mptcp_proto
  | Rcp_proto
  | Hbh_proto  (** hop-by-hop interest shaping, the paper's ref. [45] *)

val all : protocol list
val name : protocol -> string

val run_one :
  ?cfg:Inrpp.Config.t -> ?horizon:float -> ?obs:Obs.Observer.t ->
  ?faults:Fault.Schedule.t -> protocol -> Topology.Graph.t ->
  Inrpp.Protocol.flow_spec list -> Run_result.t
(** The INRPP chunk size, queue size and horizon are taken from / kept
    consistent with [cfg] across all protocols.  [obs] instruments the
    run (every protocol now accepts an observer).  [faults] replays
    the same schedule against whichever protocol runs — a schedule is
    an immutable value, so passing one to every protocol makes the
    failures apples-to-apples (INRPP recovers in-network; the
    baselines fall back on end-to-end loss recovery). *)

val run_all :
  ?cfg:Inrpp.Config.t -> ?horizon:float -> ?protocols:protocol list ->
  ?observe:(protocol -> Obs.Observer.t option) ->
  ?faults:Fault.Schedule.t -> Topology.Graph.t ->
  Inrpp.Protocol.flow_spec list -> Run_result.t list
(** [observe] supplies at most one fresh observer per protocol run —
    an observer instruments exactly one run (its sampler installs
    once), so the comparison takes a factory rather than a shared
    observer.  Each protocol's series carry a
    [("protocol", name p)] label. *)
