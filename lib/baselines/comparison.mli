(** Matched-scenario comparison: INRPP against the e2e baselines.

    Runs the same topology and flow set through INRPP (chunk-level,
    {!Inrpp.Protocol}), AIMD, MPTCP and RCP, and returns one
    {!Run_result.t} per protocol — the `protocols` experiment. *)

type protocol =
  | Inrpp_proto
  | Aimd_proto
  | Mptcp_proto
  | Rcp_proto
  | Hbh_proto  (** hop-by-hop interest shaping, the paper's ref. [45] *)

val all : protocol list
val name : protocol -> string

val run_one :
  ?cfg:Inrpp.Config.t -> ?horizon:float -> ?obs:Obs.Observer.t -> protocol ->
  Topology.Graph.t -> Inrpp.Protocol.flow_spec list -> Run_result.t
(** The INRPP chunk size, queue size and horizon are taken from / kept
    consistent with [cfg] across all protocols.  [obs] instruments the
    run (every protocol now accepts an observer). *)

val run_all :
  ?cfg:Inrpp.Config.t -> ?horizon:float -> ?protocols:protocol list ->
  ?observe:(protocol -> Obs.Observer.t option) -> Topology.Graph.t ->
  Inrpp.Protocol.flow_spec list -> Run_result.t list
(** [observe] supplies at most one fresh observer per protocol run —
    an observer instruments exactly one run (its sampler installs
    once), so the comparison takes a factory rather than a shared
    observer.  Each protocol's series carry a
    [("protocol", name p)] label. *)
