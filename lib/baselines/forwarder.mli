(** Plain store-and-forward router for the baseline transports.

    Forwards requests towards the producer and data towards the
    consumer along fixed per-flow next hops.  No caches, no detours,
    no back-pressure: a full interface queue drops the packet — the
    loss signal AIMD-style transports rely on. *)

type t

val create : net:Chunksim.Net.t -> node:Topology.Node.id -> t

val install_flow :
  t -> flow:int -> data_link:Topology.Link.t option ->
  req_link:Topology.Link.t option -> unit

val set_local_producer : t -> (Chunksim.Packet.t -> unit) -> unit
val set_local_consumer : t -> (Chunksim.Packet.t -> unit) -> unit

val handler : t -> Chunksim.Net.handler
val originate_data : t -> Chunksim.Packet.t -> unit

val drops : t -> int
(** Data packets lost at this node (queue overflow or no route). *)
