(** AIMD congestion window with RTT/RTO estimation (Jacobson).

    Window units are chunks.  Slow start doubles per RTT until
    [ssthresh], then congestion avoidance adds one chunk per window
    per RTT.  A loss halves the window — at most once per RTT, so a
    burst of losses counts as one congestion event.  The coupled
    variant implements MPTCP's linked-increase (LIA): a subflow's
    growth is damped by the aggregate window across subflows. *)

type t

val create : ?init:float -> ?ssthresh:float -> unit -> t
(** Defaults: initial window 2, ssthresh 64.
    @raise Invalid_argument if [init < 1.] or [ssthresh < 1.]. *)

val size : t -> float
(** Current window; always >= 1. *)

val capacity : t -> int
(** [floor (size t)] — chunks allowed outstanding. *)

val on_ack : t -> now:float -> rtt_sample:float -> unit
(** Standard AIMD increase plus RTT estimator update. *)

val on_ack_coupled : t -> now:float -> rtt_sample:float -> total_window:float -> unit
(** LIA increase: [min (1/total, 1/w)] per ack in congestion
    avoidance. *)

val on_loss : t -> now:float -> unit
(** Multiplicative decrease (at most once per current RTT estimate). *)

val rto : t -> float
(** Retransmission timeout: [srtt + 4 * rttvar], floored at 10 ms,
    initially 1 s. *)

val srtt : t -> float
(** Smoothed RTT; [0.] before the first sample. *)

val in_slow_start : t -> bool
val losses : t -> int
