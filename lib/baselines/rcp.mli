(** RCP-style processor-sharing rate control (Dukkipati & McKeown,
    the paper's reference [14]).

    Receivers pace requests at an explicitly assigned fair rate
    instead of probing with a window.  The rate is the max-min fair
    share of the flow's fixed path among currently active flows,
    recomputed periodically — an idealisation of RCP's router
    feedback (we read the share from a fluid computation rather than
    carrying a rate field hop by hop; see DESIGN.md).  Single path,
    no detours, no custody. *)

val run :
  ?chunk_bits:float -> ?queue_bits:float -> ?horizon:float ->
  ?update_interval:float -> ?obs:Obs.Observer.t -> ?faults:Fault.Schedule.t -> Topology.Graph.t ->
  Inrpp.Protocol.flow_spec list -> Run_result.t
(** [update_interval] (default 50 ms) is the rate-feedback period.
    [obs] adds the shared network series (see {!Harness.observe_net}),
    a sampled per-flow [rcp_rate_bps] series, and receiver-side
    [flow_fct_seconds] / [chunk_queueing_delay_seconds] histograms,
    labelled [("protocol", "RCP")]. *)
