(** Window-driven pull engine: the receiver side of the AIMD-family
    baselines.

    Chunks are requested one per request packet (no anticipation — the
    classic interest-per-data ICN transport, cf. ICP).  Each subflow
    runs its own AIMD window over its own wire flow id and path;
    chunk indices are striped across subflows on demand.  With
    [coupled = true] the windows grow per MPTCP's linked-increase.
    A per-subflow RTO requeues expired chunks and halves the window —
    loss is the only congestion signal, exactly the e2e behaviour the
    paper argues against. *)

type t

val create :
  eng:Sim.Engine.t -> chunk_bits:float -> total_chunks:int ->
  coupled:bool -> subflow_request:(int -> Chunksim.Packet.t -> unit) array ->
  wire_ids:int array -> on_complete:(fct:float -> unit) -> t
(** [subflow_request.(j)] transmits a request for subflow [j];
    [wire_ids.(j)] is the flow id used on the wire by subflow [j].
    @raise Invalid_argument if arrays are empty or lengths differ. *)

val start : t -> unit

val handle_data : t -> subflow:int -> Chunksim.Packet.t -> unit

val is_complete : t -> bool
val retransmissions : t -> int
(** Chunks requeued after an RTO. *)

val loss_events : t -> int
val received : t -> int
