type t = {
  mutable w : float;
  mutable ssthresh : float;
  mutable srtt_v : float;
  mutable rttvar : float;
  mutable have_sample : bool;
  mutable last_cut : float;
  mutable loss_events : int;
}

let create ?(init = 2.) ?(ssthresh = 64.) () =
  if init < 1. then invalid_arg "Window.create: init < 1";
  if ssthresh < 1. then invalid_arg "Window.create: ssthresh < 1";
  {
    w = init;
    ssthresh;
    srtt_v = 0.;
    rttvar = 0.;
    have_sample = false;
    last_cut = neg_infinity;
    loss_events = 0;
  }

let size t = t.w
let capacity t = max 1 (int_of_float t.w)

let update_rtt t sample =
  if sample > 0. then begin
    if not t.have_sample then begin
      t.srtt_v <- sample;
      t.rttvar <- sample /. 2.;
      t.have_sample <- true
    end
    else begin
      let delta = Float.abs (sample -. t.srtt_v) in
      t.rttvar <- (0.75 *. t.rttvar) +. (0.25 *. delta);
      t.srtt_v <- (0.875 *. t.srtt_v) +. (0.125 *. sample)
    end
  end

let grow t increment =
  t.w <- t.w +. increment

let on_ack t ~now:_ ~rtt_sample =
  update_rtt t rtt_sample;
  if t.w < t.ssthresh then grow t 1. else grow t (1. /. t.w)

let on_ack_coupled t ~now:_ ~rtt_sample ~total_window =
  update_rtt t rtt_sample;
  if t.w < t.ssthresh then grow t 1.
  else begin
    let total = Float.max total_window t.w in
    grow t (Float.min (1. /. total) (1. /. t.w))
  end

let rto t =
  if not t.have_sample then 1.
  else Float.max 0.01 (t.srtt_v +. (4. *. t.rttvar))

let srtt t = t.srtt_v

let on_loss t ~now =
  let guard = if t.have_sample then t.srtt_v else 0.05 in
  if now -. t.last_cut >= guard then begin
    t.last_cut <- now;
    t.loss_events <- t.loss_events + 1;
    t.ssthresh <- Float.max 2. (t.w /. 2.);
    t.w <- t.ssthresh
  end

let in_slow_start t = t.w < t.ssthresh
let losses t = t.loss_events
