module Graph = Topology.Graph
module Path = Topology.Path
module Net = Chunksim.Net
module Packet = Chunksim.Packet

type setup = {
  eng : Sim.Engine.t;
  net : Chunksim.Net.t;
  forwarders : Forwarder.t array;
  paths : Topology.Path.t array array;
  wire_ids : int array array;
}

let install_path forwarders g ~wire (path : Path.t) =
  let nodes = Array.of_list path.Path.nodes in
  let links = Array.of_list path.Path.links in
  let n = Array.length nodes in
  for k = 0 to n - 1 do
    let data_link = if k < n - 1 then Some links.(k) else None in
    let req_link =
      if k > 0 then Graph.find_link g nodes.(k) nodes.(k - 1) else None
    in
    Forwarder.install_flow forwarders.(nodes.(k)) ~flow:wire ~data_link
      ~req_link
  done

let prepare ?queue_bits ~paths_per_flow g specs =
  if paths_per_flow < 1 then invalid_arg "Harness.prepare: paths_per_flow < 1";
  if specs = [] then invalid_arg "Harness.prepare: no flows";
  let eng = Sim.Engine.create () in
  let net = Net.create ?queue_bits eng g in
  let forwarders =
    Array.init (Graph.node_count g) (fun node -> Forwarder.create ~net ~node)
  in
  let next_wire = ref 0 in
  let fresh_wire () =
    let w = !next_wire in
    incr next_wire;
    w
  in
  let flows =
    List.map
      (fun (spec : Inrpp.Protocol.flow_spec) ->
        let candidate_paths =
          Topology.Yen.k_disjoint g ~k:paths_per_flow spec.Inrpp.Protocol.src
            spec.Inrpp.Protocol.dst
        in
        match candidate_paths with
        | [] ->
          invalid_arg
            (Printf.sprintf "Harness.prepare: flow %d -> %d unroutable"
               spec.Inrpp.Protocol.src spec.Inrpp.Protocol.dst)
        | ps ->
          let ps = Array.of_list ps in
          let wires = Array.map (fun _ -> fresh_wire ()) ps in
          Array.iteri
            (fun j p -> install_path forwarders g ~wire:wires.(j) p)
            ps;
          (ps, wires))
      specs
  in
  {
    eng;
    net;
    forwarders;
    paths = Array.of_list (List.map fst flows);
    wire_ids = Array.of_list (List.map snd flows);
  }

(* Baselines take fault schedules mechanically: interfaces flip,
   crashed nodes eat packets, bursts drop control traffic.  There is
   no recovery layer — no detours, no custody — which is exactly what
   the resilience comparison measures. *)
let apply_faults ?faults s =
  match faults with
  | Some sched when not (Fault.Schedule.is_empty sched) ->
    ignore (Fault.Driver.install s.net sched : Fault.Driver.t)
  | Some _ | None -> ()

(* Shared observability wiring for baseline runs: callback metrics on
   the forwarders and interfaces plus sampled per-interface series
   (the per-protocol interface series of the comparison runs).
   Returns the sampler — still stopped — and the protocol label so
   the caller can add its own flow series before {!Obs.Sampler.start}. *)
let observe_net o ~protocol ~horizon s =
  let reg = Obs.Observer.registry o in
  let proto_label = ("protocol", protocol) in
  Array.iteri
    (fun node fwd ->
      Obs.Metric.callback reg
        ~labels:[ proto_label; ("node", string_of_int node) ]
        "forwarder_drops_total"
        (fun () -> float_of_int (Forwarder.drops fwd)))
    s.forwarders;
  Net.iter_ifaces s.net (fun i ->
      let l = Chunksim.Iface.link i in
      let labels =
        [ proto_label; ("link", string_of_int l.Topology.Link.id) ]
      in
      let f name fn = Obs.Metric.callback reg ~labels name fn in
      f "iface_tx_bits_total" (fun () -> Chunksim.Iface.tx_bits i);
      f "iface_drops_total" (fun () ->
          float_of_int (Chunksim.Iface.drops i));
      f "iface_queue_bits" (fun () -> Chunksim.Iface.queue_occupancy i));
  let smp =
    Obs.Observer.install_sampler o ~eng:s.eng
      ~default_interval:(horizon /. 200.)
  in
  Net.iter_ifaces s.net (fun i ->
      let l = Chunksim.Iface.link i in
      let labels =
        [ proto_label; ("link", string_of_int l.Topology.Link.id) ]
      in
      let track name fn = ignore (Obs.Sampler.track smp ~labels name fn) in
      track "iface_queue_bits" (fun () -> Chunksim.Iface.queue_occupancy i);
      track "iface_utilisation" (fun () ->
          Chunksim.Iface.utilisation i ~now:(Sim.Engine.now s.eng)));
  (smp, proto_label)

(* unloaded latency of a path: propagation plus one serialisation per
   hop — the floor against which receivers measure queueing delay *)
let path_base_delay ~chunk_bits (path : Path.t) =
  List.fold_left
    (fun acc (l : Topology.Link.t) ->
      acc +. l.Topology.Link.delay +. (chunk_bits /. l.Topology.Link.capacity))
    0. path.Path.links

let run_pull ~protocol ~coupled ~paths_per_flow ?(chunk_bits = 10e3 *. 8.)
    ?queue_bits ?(horizon = 120.) ?obs ?faults g specs =
  let s = prepare ?queue_bits ~paths_per_flow g specs in
  apply_faults ?faults s;
  let specs_arr = Array.of_list specs in
  let nflows = Array.length specs_arr in
  let fcts = Array.make nflows None in
  let completed = ref 0 in
  let finished_at = ref None in
  (* receiver-side distribution metrics (only when observed): FCT per
     completed flow, and queueing delay per delivered chunk — arrival
     time minus the send timestamp minus the subflow path's unloaded
     latency *)
  let fct_hist, qdelay_by_wire =
    match obs with
    | None -> (None, None)
    | Some o ->
      let reg = Obs.Observer.registry o in
      let proto_label = ("protocol", protocol) in
      let by_wire = Hashtbl.create 32 in
      Array.iteri
        (fun i wires ->
          let h =
            Obs.Metric.histogram reg
              ~labels:[ proto_label; ("flow", string_of_int i) ]
              ~lo:0. ~hi:10. ~bins:50 "chunk_queueing_delay_seconds"
          in
          Array.iteri
            (fun j wire ->
              Hashtbl.replace by_wire wire
                (path_base_delay ~chunk_bits s.paths.(i).(j), h))
            wires)
        s.wire_ids;
      ( Some
          (Obs.Metric.histogram reg ~labels:[ proto_label ] ~lo:0.
             ~hi:horizon ~bins:64 "flow_fct_seconds"),
        Some by_wire )
  in
  (* producers: wire id -> responder *)
  let producers : (int, Packet.t -> unit) Hashtbl.t = Hashtbl.create 32 in
  (* consumers: wire id -> (puller, subflow index) *)
  let consumers : (int, Puller.t * int) Hashtbl.t = Hashtbl.create 32 in
  let pullers =
    Array.init nflows (fun i ->
        let spec = specs_arr.(i) in
        let wires = s.wire_ids.(i) in
        let subflow_request =
          Array.map
            (fun _wire _j (p : Packet.t) ->
              Net.inject s.net ~at:spec.Inrpp.Protocol.dst p)
            wires
        in
        let puller =
          Puller.create ~eng:s.eng ~chunk_bits
            ~total_chunks:spec.Inrpp.Protocol.chunks ~coupled
            ~subflow_request ~wire_ids:wires
            ~on_complete:(fun ~fct ->
              fcts.(i) <- Some fct;
              (match fct_hist with
              | Some h -> Obs.Metric.observe h fct
              | None -> ());
              incr completed;
              if !completed = nflows then
                finished_at := Some (Sim.Engine.now s.eng))
        in
        Array.iteri
          (fun j wire ->
            Hashtbl.replace consumers wire (puller, j);
            let src_forwarder = s.forwarders.(spec.Inrpp.Protocol.src) in
            Hashtbl.replace producers wire (fun (p : Packet.t) ->
                match p.Packet.header with
                | Packet.Request { nc; _ } ->
                  if nc < spec.Inrpp.Protocol.chunks then
                    Forwarder.originate_data src_forwarder
                      (Packet.data ~flow:wire ~idx:nc
                         ~born:(Sim.Engine.now s.eng) chunk_bits)
                | Packet.Data _ | Packet.Backpressure _ -> ()))
          wires;
        puller)
  in
  (* endpoint hooks *)
  Array.iteri
    (fun node fwd ->
      Forwarder.set_local_producer fwd (fun p ->
          match Hashtbl.find_opt producers (Packet.flow p) with
          | Some respond -> respond p
          | None -> ());
      let observe_data =
        match qdelay_by_wire with
        | None -> fun (_ : Packet.t) -> ()
        | Some by_wire ->
          fun (p : Packet.t) -> (
            match p.Packet.header with
            | Packet.Data { flow; born; _ } -> (
              match Hashtbl.find_opt by_wire flow with
              | Some (base, h) ->
                let d = Sim.Engine.now s.eng -. born -. base in
                Obs.Metric.observe h (Float.max 0. d)
              | None -> ())
            | _ -> ())
      in
      Forwarder.set_local_consumer fwd (fun p ->
          observe_data p;
          match Hashtbl.find_opt consumers (Packet.flow p) with
          | Some (puller, j) -> Puller.handle_data puller ~subflow:j p
          | None -> ());
      Net.set_handler s.net node (Forwarder.handler fwd))
    s.forwarders;
  (* observability: the baseline stack has no trace, so an observer
     gets callback metrics, sampled series and the receiver-side
     histograms only *)
  (match obs with
  | None -> ()
  | Some o ->
    let reg = Obs.Observer.registry o in
    let smp, proto_label = observe_net o ~protocol ~horizon s in
    Array.iteri
      (fun i p ->
        let labels = [ proto_label; ("flow", string_of_int i) ] in
        let f name fn = Obs.Metric.callback reg ~labels name fn in
        f "puller_retransmissions_total" (fun () ->
            float_of_int (Puller.retransmissions p));
        f "puller_loss_events_total" (fun () ->
            float_of_int (Puller.loss_events p));
        f "puller_chunks_received" (fun () ->
            float_of_int (Puller.received p));
        ignore
          (Obs.Sampler.track smp ~labels "chunks_received" (fun () ->
               float_of_int (Puller.received p))))
      pullers;
    Obs.Sampler.start ~stop:(fun () -> !completed = nflows) smp);
  (* flow starts *)
  Array.iteri
    (fun i spec ->
      ignore
        (Sim.Engine.schedule s.eng ~delay:spec.Inrpp.Protocol.start (fun () ->
             Puller.start pullers.(i))))
    specs_arr;
  Sim.Engine.run ~until:horizon s.eng;
  let sim_time =
    match !finished_at with
    | Some tm -> tm
    | None -> Sim.Engine.now s.eng
  in
  Run_result.make ~protocol ~fcts ~chunk_bits
    ~chunks:(Array.map (fun sp -> sp.Inrpp.Protocol.chunks) specs_arr)
    ~drops:(Array.fold_left (fun acc f -> acc + Forwarder.drops f) 0 s.forwarders)
    ~retransmissions:
      (Array.fold_left (fun acc p -> acc + Puller.retransmissions p) 0 pullers)
    ~sim_time
