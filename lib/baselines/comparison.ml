type protocol =
  | Inrpp_proto
  | Aimd_proto
  | Mptcp_proto
  | Rcp_proto
  | Hbh_proto

let all = [ Inrpp_proto; Aimd_proto; Mptcp_proto; Rcp_proto; Hbh_proto ]

let name = function
  | Inrpp_proto -> "INRPP"
  | Aimd_proto -> "AIMD"
  | Mptcp_proto -> "MPTCP"
  | Rcp_proto -> "RCP"
  | Hbh_proto -> "HBH"

let inrpp_as_run_result ~cfg ~(specs : Inrpp.Protocol.flow_spec list)
    (r : Inrpp.Protocol.result) =
  let fcts = Array.map (fun fr -> fr.Inrpp.Protocol.fct) r.Inrpp.Protocol.flows in
  Run_result.make ~protocol:"INRPP" ~fcts
    ~chunk_bits:cfg.Inrpp.Config.chunk_bits
    ~chunks:
      (Array.of_list (List.map (fun sp -> sp.Inrpp.Protocol.chunks) specs))
    ~drops:r.Inrpp.Protocol.total_drops
    ~retransmissions:
      (Array.fold_left
         (fun acc fr -> acc + fr.Inrpp.Protocol.duplicates)
         0 r.Inrpp.Protocol.flows)
    ~sim_time:r.Inrpp.Protocol.sim_time

(* the workload is resolved to a concrete flow list up front — every
   protocol must see the same flows, so generation happens once here
   (per call) rather than inside each protocol's runner *)
let resolve_specs ?workload g specs =
  match workload with
  | None -> specs
  | Some w ->
    specs
    @ List.map
        (fun (r : Workload.Request.t) ->
          Inrpp.Protocol.flow_spec ~start:r.Workload.Request.start
            ~content:r.Workload.Request.content ~src:r.Workload.Request.src
            ~dst:r.Workload.Request.dst r.Workload.Request.chunks)
        (Workload.Gen.requests w g)

let run_one ?(cfg = Inrpp.Config.default) ?(horizon = 120.) ?obs ?faults
    ?workload protocol g specs =
  let specs = resolve_specs ?workload g specs in
  let chunk_bits = cfg.Inrpp.Config.chunk_bits in
  let queue_bits = cfg.Inrpp.Config.queue_bits in
  match protocol with
  | Inrpp_proto ->
    inrpp_as_run_result ~cfg ~specs
      (Inrpp.Protocol.run ~cfg ~horizon ?obs ?faults g specs)
  | Aimd_proto ->
    Aimd.run ~chunk_bits ~queue_bits ~horizon ?obs ?faults g specs
  | Mptcp_proto ->
    Mptcp.run ~chunk_bits ~queue_bits ~horizon ?obs ?faults g specs
  | Rcp_proto -> Rcp.run ~chunk_bits ~queue_bits ~horizon ?obs ?faults g specs
  | Hbh_proto -> Hbh.run ~chunk_bits ~queue_bits ~horizon ?obs ?faults g specs

let run_all ?cfg ?horizon ?(protocols = all) ?observe ?faults ?workload g
    specs =
  let specs = resolve_specs ?workload g specs in
  List.map
    (fun p ->
      let obs =
        match observe with
        | Some f -> f p
        | None -> None
      in
      run_one ?cfg ?horizon ?obs ?faults p g specs)
    protocols
