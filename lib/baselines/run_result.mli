(** Common result shape for transport runs, so the comparison harness
    can tabulate INRPP against the baselines uniformly. *)

type t = {
  protocol : string;
  flows : int;
  completed : int;
  fcts : float option array;     (** per flow, [None] if unfinished *)
  drops : int;
  retransmissions : int;         (** loss-recovery data packets *)
  goodput : float;               (** delivered application bits / sim_time *)
  sim_time : float;
  mean_fct : float;              (** over completed flows; 0 when none *)
  jain : float;                  (** fairness over per-flow mean rates *)
}

val make :
  protocol:string -> fcts:float option array -> chunk_bits:float ->
  chunks:int array -> drops:int -> retransmissions:int -> sim_time:float -> t
(** Derives the summary fields.  [chunks.(i)] is flow [i]'s transfer
    length; per-flow mean rate (for Jain) is
    [chunks * chunk_bits / fct]. *)

val to_json : t -> Obs.Json.t
(** One object per run — the machine-readable sidecar record the
    comparison harness emits next to its ASCII table.  [fcts] become a
    list with [null] for unfinished flows. *)

val pp : Format.formatter -> t -> unit
val pp_table : Format.formatter -> t list -> unit
