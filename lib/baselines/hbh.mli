(** Hop-by-hop interest shaping (Rozhnova & Fdida, the paper's
    reference [45]).

    Routers pace the {e request} stream per flow so the returning data
    matches each flow's fair share of the data link the requests'
    answers will traverse — congestion control without e2e probing,
    but still single-path and bottleneck-bound.  The paper's §4
    critique, which this implementation makes measurable: it needs
    per-flow request queues at every hop and transmits at the path's
    slowest link ({e global stability}), so it cannot exploit detours
    or in-network storage.

    Lossless like INRPP (data is never sent faster than it can
    drain), but no faster than the bottleneck. *)

val run :
  ?chunk_bits:float -> ?queue_bits:float -> ?horizon:float ->
  ?obs:Obs.Observer.t -> ?faults:Fault.Schedule.t -> Topology.Graph.t ->
  Inrpp.Protocol.flow_spec list -> Run_result.t
(** Defaults as in {!Harness.run_pull}.  [obs] adds the shared network
    series (see {!Harness.observe_net}), a sampled per-flow
    [chunks_received] series, and receiver-side [flow_fct_seconds] /
    [chunk_queueing_delay_seconds] histograms, labelled
    [("protocol", "HBH")]. *)
