let run ?chunk_bits ?queue_bits ?horizon ?obs ?faults g specs =
  Harness.run_pull ~protocol:"AIMD" ~coupled:false ~paths_per_flow:1
    ?chunk_bits ?queue_bits ?horizon ?obs ?faults g specs
