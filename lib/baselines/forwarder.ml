module Packet = Chunksim.Packet
module Net = Chunksim.Net

type entry = {
  data_link : Topology.Link.t option;
  req_link : Topology.Link.t option;
}

type t = {
  net : Net.t;
  node : Topology.Node.id;
  flows : (int, entry) Hashtbl.t;
  mutable drop_count : int;
  mutable local_producer : (Packet.t -> unit) option;
  mutable local_consumer : (Packet.t -> unit) option;
}

let create ~net ~node =
  {
    net;
    node;
    flows = Hashtbl.create 16;
    drop_count = 0;
    local_producer = None;
    local_consumer = None;
  }

let install_flow t ~flow ~data_link ~req_link =
  Hashtbl.replace t.flows flow { data_link; req_link }

let set_local_producer t f = t.local_producer <- Some f
let set_local_consumer t f = t.local_consumer <- Some f

let drop t = t.drop_count <- t.drop_count + 1

let forward_data t (p : Packet.t) =
  match Hashtbl.find_opt t.flows (Packet.flow p) with
  | None -> drop t
  | Some entry -> begin
    match entry.data_link with
    | Some l -> begin
      match Net.send t.net ~via:l p with
      | `Queued -> ()
      | `Dropped -> drop t
    end
    | None -> begin
      match t.local_consumer with
      | Some consumer -> consumer p
      | None -> drop t
    end
  end

let forward_request t (p : Packet.t) =
  match Hashtbl.find_opt t.flows (Packet.flow p) with
  | None -> drop t
  | Some entry -> begin
    match entry.req_link with
    | Some l -> ignore (Net.send t.net ~via:l p)
    | None -> begin
      match t.local_producer with
      | Some producer -> producer p
      | None -> drop t
    end
  end

let handler t : Net.handler =
 fun ~from:_ p ->
  match p.Packet.header with
  | Packet.Data _ -> forward_data t p
  | Packet.Request _ -> forward_request t p
  | Packet.Backpressure _ -> ()

let originate_data = forward_data

let drops t = t.drop_count
