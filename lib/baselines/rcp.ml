module Packet = Chunksim.Packet
module Net = Chunksim.Net

type flow_state = {
  spec : Inrpp.Protocol.flow_spec;
  sess : Inrpp.Session.t;
  wire : int;
  path : Topology.Path.t;
  outstanding : (int, float) Hashtbl.t;
  retry : int Queue.t;
  retry_set : (int, unit) Hashtbl.t;
  mutable rate : float;          (* assigned fair rate, bps *)
  mutable next_seq : int;
  mutable started : float option;
  mutable finished : bool;
  mutable pacing_armed : bool;
  mutable retx : int;
}

let max_outstanding = 512

let run ?(chunk_bits = 10e3 *. 8.) ?queue_bits ?(horizon = 120.)
    ?(update_interval = 0.05) ?obs ?faults g specs =
  if update_interval <= 0. then invalid_arg "Rcp.run: update_interval <= 0";
  let s = Harness.prepare ?queue_bits ~paths_per_flow:1 g specs in
  Harness.apply_faults ?faults s;
  let specs_arr = Array.of_list specs in
  let nflows = Array.length specs_arr in
  let fcts = Array.make nflows None in
  let completed = ref 0 in
  let finished_at = ref None in
  let states =
    Array.init nflows (fun i ->
        {
          spec = specs_arr.(i);
          sess =
            Inrpp.Session.create
              ~total_chunks:specs_arr.(i).Inrpp.Protocol.chunks;
          wire = s.Harness.wire_ids.(i).(0);
          path = s.Harness.paths.(i).(0);
          outstanding = Hashtbl.create 32;
          retry = Queue.create ();
          retry_set = Hashtbl.create 8;
          rate = chunk_bits *. 10.;  (* modest initial rate *)
          next_seq = 0;
          started = None;
          finished = false;
          pacing_armed = false;
          retx = 0;
        })
  in
  (* receiver-side distributions (only when observed) *)
  let base_delay =
    Array.map
      (fun st -> Harness.path_base_delay ~chunk_bits st.path)
      states
  in
  let fct_hist, qdelay_hist =
    match obs with
    | None -> (None, None)
    | Some o ->
      let reg = Obs.Observer.registry o in
      let proto_label = ("protocol", "RCP") in
      ( Some
          (Obs.Metric.histogram reg ~labels:[ proto_label ] ~lo:0.
             ~hi:horizon ~bins:64 "flow_fct_seconds"),
        Some
          (Array.init nflows (fun i ->
               Obs.Metric.histogram reg
                 ~labels:[ proto_label; ("flow", string_of_int i) ]
                 ~lo:0. ~hi:10. ~bins:50 "chunk_queueing_delay_seconds")) )
  in
  (* explicit rate feedback: max-min share among active flows *)
  let update_rates () =
    let active =
      Array.to_list states
      |> List.filter (fun st -> st.started <> None && not st.finished)
    in
    match active with
    | [] -> ()
    | _ ->
      let demands =
        Array.of_list (List.map (fun st -> (st.path, infinity)) active)
      in
      let rates = Flowsim.Allocation.max_min g demands in
      List.iteri
        (fun j st -> st.rate <- Float.max (chunk_bits /. 1.) rates.(j))
        active
  in
  let next_chunk st =
    let rec from_retry () =
      match Queue.take_opt st.retry with
      | Some idx ->
        Hashtbl.remove st.retry_set idx;
        if Inrpp.Session.next_needed st.sess > idx then from_retry ()
        else Some idx
      | None ->
        let rec fresh () =
          if st.next_seq >= Inrpp.Session.total st.sess then None
          else begin
            let idx = st.next_seq in
            st.next_seq <- idx + 1;
            if Inrpp.Session.next_needed st.sess > idx then fresh ()
            else Some idx
          end
        in
        fresh ()
    in
    from_retry ()
  in
  let send_request st idx =
    Hashtbl.replace st.outstanding idx (Sim.Engine.now s.Harness.eng);
    Net.inject s.Harness.net ~at:st.spec.Inrpp.Protocol.dst
      (Packet.request ~flow:st.wire ~nc:idx
         ~ack:(Inrpp.Session.next_needed st.sess)
         ~ac:idx)
  in
  (* request pacing at the assigned rate *)
  let rec pace st =
    if (not st.finished) && not st.pacing_armed then begin
      st.pacing_armed <- true;
      let gap = chunk_bits /. st.rate in
      ignore
        (Sim.Engine.schedule s.Harness.eng ~delay:gap (fun () ->
             st.pacing_armed <- false;
             if not st.finished then begin
               if Hashtbl.length st.outstanding < max_outstanding then begin
                 match next_chunk st with
                 | Some idx -> send_request st idx
                 | None -> ()
               end;
               pace st
             end))
    end
  in
  (* loss recovery: conservative fixed check *)
  let rec check_timeouts st =
    if not st.finished then begin
      let now = Sim.Engine.now s.Harness.eng in
      let expired =
        Hashtbl.fold
          (fun idx t0 acc -> if now -. t0 > 0.5 then idx :: acc else acc)
          st.outstanding []
      in
      List.iter
        (fun idx ->
          Hashtbl.remove st.outstanding idx;
          if not (Hashtbl.mem st.retry_set idx) then begin
            Hashtbl.replace st.retry_set idx ();
            Queue.add idx st.retry;
            st.retx <- st.retx + 1
          end)
        expired;
      ignore
        (Sim.Engine.schedule s.Harness.eng ~delay:0.1 (fun () ->
             check_timeouts st))
    end
  in
  (* endpoint hooks *)
  let producers : (int, flow_state) Hashtbl.t = Hashtbl.create 32 in
  let consumers : (int, int) Hashtbl.t = Hashtbl.create 32 in
  Array.iteri
    (fun i st ->
      Hashtbl.replace producers st.wire st;
      Hashtbl.replace consumers st.wire i)
    states;
  Array.iteri
    (fun node fwd ->
      ignore node;
      Forwarder.set_local_producer fwd (fun p ->
          match p.Packet.header, Hashtbl.find_opt producers (Packet.flow p) with
          | Packet.Request { nc; _ }, Some st
            when nc < st.spec.Inrpp.Protocol.chunks ->
            Forwarder.originate_data
              s.Harness.forwarders.(st.spec.Inrpp.Protocol.src)
              (Packet.data ~flow:st.wire ~idx:nc
                 ~born:(Sim.Engine.now s.Harness.eng) chunk_bits)
          | _ -> ());
      Forwarder.set_local_consumer fwd (fun p ->
          match p.Packet.header, Hashtbl.find_opt consumers (Packet.flow p) with
          | Packet.Data { idx; born; _ }, Some i ->
            (match qdelay_hist with
            | Some hs ->
              let d =
                Sim.Engine.now s.Harness.eng -. born -. base_delay.(i)
              in
              Obs.Metric.observe hs.(i) (Float.max 0. d)
            | None -> ());
            let st = states.(i) in
            if not st.finished then begin
              Hashtbl.remove st.outstanding idx;
              match Inrpp.Session.receive st.sess idx with
              | `New ->
                if Inrpp.Session.is_complete st.sess then begin
                  st.finished <- true;
                  let now = Sim.Engine.now s.Harness.eng in
                  let fct =
                    match st.started with
                    | Some t0 -> now -. t0
                    | None -> now
                  in
                  fcts.(i) <- Some fct;
                  (match fct_hist with
                  | Some h -> Obs.Metric.observe h fct
                  | None -> ());
                  incr completed;
                  if !completed = nflows then finished_at := Some now
                end
              | `Duplicate -> ()
            end
          | _ -> ());
      Net.set_handler s.Harness.net node (Forwarder.handler fwd))
    s.Harness.forwarders;
  (* observability: shared net series plus RCP's assigned-rate series *)
  (match obs with
  | None -> ()
  | Some o ->
    let reg = Obs.Observer.registry o in
    let smp, proto_label = Harness.observe_net o ~protocol:"RCP" ~horizon s in
    Array.iteri
      (fun i st ->
        let labels = [ proto_label; ("flow", string_of_int i) ] in
        Obs.Metric.callback reg ~labels "rcp_retransmissions_total"
          (fun () -> float_of_int st.retx);
        let track name fn = ignore (Obs.Sampler.track smp ~labels name fn) in
        track "rcp_rate_bps" (fun () -> st.rate);
        track "chunks_received" (fun () ->
            float_of_int (Inrpp.Session.received_count st.sess)))
      states;
    Obs.Sampler.start ~stop:(fun () -> !completed = nflows) smp);
  (* rate feedback loop *)
  ignore
  @@ Sim.Engine.schedule_periodic s.Harness.eng ~interval:update_interval
       (fun () ->
         update_rates ();
         !completed < nflows);
  (* flow starts *)
  Array.iteri
    (fun i st ->
      ignore
        (Sim.Engine.schedule s.Harness.eng
           ~delay:st.spec.Inrpp.Protocol.start (fun () ->
             st.started <- Some (Sim.Engine.now s.Harness.eng);
             update_rates ();
             pace st;
             check_timeouts st));
      ignore i)
    states;
  Sim.Engine.run ~until:horizon s.Harness.eng;
  let sim_time =
    match !finished_at with
    | Some tm -> tm
    | None -> Sim.Engine.now s.Harness.eng
  in
  Run_result.make ~protocol:"RCP" ~fcts ~chunk_bits
    ~chunks:(Array.map (fun sp -> sp.Inrpp.Protocol.chunks) specs_arr)
    ~drops:
      (Array.fold_left
         (fun acc f -> acc + Forwarder.drops f)
         0 s.Harness.forwarders)
    ~retransmissions:(Array.fold_left (fun acc st -> acc + st.retx) 0 states)
    ~sim_time
