type t = {
  protocol : string;
  flows : int;
  completed : int;
  fcts : float option array;
  drops : int;
  retransmissions : int;
  goodput : float;
  sim_time : float;
  mean_fct : float;
  jain : float;
}

let make ~protocol ~fcts ~chunk_bits ~chunks ~drops ~retransmissions ~sim_time
    =
  let n = Array.length fcts in
  if Array.length chunks <> n then
    invalid_arg "Run_result.make: fcts/chunks length mismatch";
  let completed = ref 0 in
  let fct_sum = ref 0. in
  let delivered = ref 0. in
  let rates = Array.make n 0. in
  Array.iteri
    (fun i fct ->
      match fct with
      | Some v ->
        incr completed;
        fct_sum := !fct_sum +. v;
        let bits = float_of_int chunks.(i) *. chunk_bits in
        delivered := !delivered +. bits;
        if v > 0. then rates.(i) <- bits /. v
      | None -> ())
    fcts;
  {
    protocol;
    flows = n;
    completed = !completed;
    fcts;
    drops;
    retransmissions;
    goodput = (if sim_time > 0. then !delivered /. sim_time else 0.);
    sim_time;
    mean_fct =
      (if !completed > 0 then !fct_sum /. float_of_int !completed else 0.);
    jain = Metrics.Fairness.jain rates;
  }

let to_json r =
  Obs.Json.Obj
    [
      ("protocol", Obs.Json.Str r.protocol);
      ("flows", Obs.Json.Num (float_of_int r.flows));
      ("completed", Obs.Json.Num (float_of_int r.completed));
      ( "fcts",
        Obs.Json.List
          (Array.to_list
             (Array.map
                (function
                  | Some v -> Obs.Json.Num v
                  | None -> Obs.Json.Null)
                r.fcts)) );
      ("drops", Obs.Json.Num (float_of_int r.drops));
      ("retransmissions", Obs.Json.Num (float_of_int r.retransmissions));
      ("goodput", Obs.Json.Num r.goodput);
      ("sim_time", Obs.Json.Num r.sim_time);
      ("mean_fct", Obs.Json.Num r.mean_fct);
      ("jain", Obs.Json.Num r.jain);
    ]

let pp ppf r =
  Format.fprintf ppf
    "%-6s %d/%d done mean_fct=%.3gs goodput=%a jain=%.3f drops=%d retx=%d"
    r.protocol r.completed r.flows r.mean_fct Sim.Units.pp_rate r.goodput
    r.jain r.drops r.retransmissions

let pp_table ppf rows =
  Format.fprintf ppf "%-8s %6s %10s %12s %7s %7s %7s@." "protocol" "done"
    "mean_fct" "goodput" "jain" "drops" "retx";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-8s %3d/%-3d %9.3gs %12s %7.3f %7d %7d@."
        r.protocol r.completed r.flows r.mean_fct
        (Format.asprintf "%a" Sim.Units.pp_rate r.goodput)
        r.jain r.drops r.retransmissions)
    rows
