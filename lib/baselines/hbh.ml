module Packet = Chunksim.Packet
module Net = Chunksim.Net
module Link = Topology.Link

(* Per-node, per-flow shaping state: requests queue here and leave
   paced at the flow's share of its data link. *)
type shaper = {
  rq : Packet.t Queue.t;
  mutable busy : bool;
  pace_gap : float;          (* seconds between forwarded requests *)
  forward : Packet.t -> unit;
}

type node_state = {
  shapers : (int, shaper) Hashtbl.t;
  data_links : (int, Link.t option) Hashtbl.t;  (* flow -> downstream link *)
}

let run ?(chunk_bits = 10e3 *. 8.) ?queue_bits ?(horizon = 120.) ?obs ?faults
    g specs =
  let s = Harness.prepare ?queue_bits ~paths_per_flow:1 g specs in
  Harness.apply_faults ?faults s;
  let eng = s.Harness.eng in
  let specs_arr = Array.of_list specs in
  let nflows = Array.length specs_arr in
  let fcts = Array.make nflows None in
  let completed = ref 0 in
  let finished_at = ref None in
  (* receiver-side distributions (only when observed) *)
  let base_delay =
    Array.init nflows (fun i ->
        Harness.path_base_delay ~chunk_bits s.Harness.paths.(i).(0))
  in
  let fct_hist, qdelay_hist =
    match obs with
    | None -> (None, None)
    | Some o ->
      let reg = Obs.Observer.registry o in
      let proto_label = ("protocol", "HBH") in
      ( Some
          (Obs.Metric.histogram reg ~labels:[ proto_label ] ~lo:0.
             ~hi:horizon ~bins:64 "flow_fct_seconds"),
        Some
          (Array.init nflows (fun i ->
               Obs.Metric.histogram reg
                 ~labels:[ proto_label; ("flow", string_of_int i) ]
                 ~lo:0. ~hi:10. ~bins:50 "chunk_queueing_delay_seconds")) )
  in
  (* how many flows send data over each directed link: the processor
     sharing denominator of the shaper *)
  let flows_on_link = Hashtbl.create 32 in
  Array.iter
    (fun paths ->
      List.iter
        (fun (l : Link.t) ->
          Hashtbl.replace flows_on_link l.Link.id
            (1 + Option.value ~default:0 (Hashtbl.find_opt flows_on_link l.Link.id)))
        paths.(0).Topology.Path.links)
    s.Harness.paths;
  let states =
    Array.init (Topology.Graph.node_count g) (fun _ ->
        { shapers = Hashtbl.create 4; data_links = Hashtbl.create 4 })
  in
  (* sessions at the consumers *)
  let sessions = Array.make nflows None in
  let retx = ref 0 in
  (* endpoint dispatch by wire id (single subflow: wire = flow index) *)
  let producers : (int, Packet.t -> unit) Hashtbl.t = Hashtbl.create 16 in
  let consumers : (int, int) Hashtbl.t = Hashtbl.create 16 in
  Array.iteri
    (fun i spec ->
      let wire = s.Harness.wire_ids.(i).(0) in
      let path = s.Harness.paths.(i).(0) in
      sessions.(i) <-
        Some (Inrpp.Session.create ~total_chunks:spec.Inrpp.Protocol.chunks);
      Hashtbl.replace consumers wire i;
      let src_fwd = s.Harness.forwarders.(spec.Inrpp.Protocol.src) in
      Hashtbl.replace producers wire (fun (p : Packet.t) ->
          match p.Packet.header with
          | Packet.Request { nc; _ } when nc < spec.Inrpp.Protocol.chunks ->
            Forwarder.originate_data src_fwd
              (Packet.data ~flow:wire ~idx:nc ~born:(Sim.Engine.now eng)
                 chunk_bits)
          | _ -> ());
      (* register the flow's data link at every path node so shapers
         know their pacing denominator *)
      let nodes = Array.of_list path.Topology.Path.nodes in
      let links = Array.of_list path.Topology.Path.links in
      Array.iteri
        (fun k node ->
          Hashtbl.replace states.(node).data_links wire
            (if k < Array.length links then Some links.(k) else None))
        nodes)
    specs_arr;
  (* shaped request relay installed on every node handler *)
  let rec service sh =
    if not sh.busy then begin
      match Queue.take_opt sh.rq with
      | None -> ()
      | Some p ->
        sh.busy <- true;
        sh.forward p;
        ignore
          (Sim.Engine.schedule eng ~delay:sh.pace_gap (fun () ->
               sh.busy <- false;
               service sh))
    end
  in
  let shaper_for node wire =
    let st = states.(node) in
    match Hashtbl.find_opt st.shapers wire with
    | Some sh -> sh
    | None ->
      let pace_gap =
        match Hashtbl.find_opt st.data_links wire with
        | Some (Some l) ->
          let sharers =
            Option.value ~default:1 (Hashtbl.find_opt flows_on_link l.Link.id)
          in
          chunk_bits /. (l.Link.capacity /. float_of_int (max 1 sharers))
        | _ -> 0.
      in
      let fwd = s.Harness.forwarders.(node) in
      let sh =
        {
          rq = Queue.create ();
          busy = false;
          pace_gap = Float.max 1e-6 pace_gap;
          forward =
            (fun p ->
              (* reuse the plain forwarder's request routing *)
              let h = Forwarder.handler fwd in
              h ~from:None p);
        }
      in
      Hashtbl.replace st.shapers wire sh;
      sh
  in
  Array.iteri
    (fun node fwd ->
      Forwarder.set_local_producer fwd (fun p ->
          match Hashtbl.find_opt producers (Packet.flow p) with
          | Some respond -> respond p
          | None -> ());
      Forwarder.set_local_consumer fwd (fun p ->
          match p.Packet.header, Hashtbl.find_opt consumers (Packet.flow p) with
          | Packet.Data { idx; born; _ }, Some i -> begin
            (match qdelay_hist with
            | Some hs ->
              let d = Sim.Engine.now eng -. born -. base_delay.(i) in
              Obs.Metric.observe hs.(i) (Float.max 0. d)
            | None -> ());
            match sessions.(i) with
            | Some sess when not (Inrpp.Session.is_complete sess) -> begin
              match Inrpp.Session.receive sess idx with
              | `New ->
                if Inrpp.Session.is_complete sess then begin
                  let now = Sim.Engine.now eng in
                  let fct = now -. specs_arr.(i).Inrpp.Protocol.start in
                  fcts.(i) <- Some fct;
                  (match fct_hist with
                  | Some h -> Obs.Metric.observe h fct
                  | None -> ());
                  incr completed;
                  if !completed = nflows then finished_at := Some now
                end
              | `Duplicate -> ()
            end
            | _ -> ()
          end
          | _ -> ());
      (* intercept requests for shaping; everything else forwards plainly *)
      Net.set_handler s.Harness.net node (fun ~from p ->
          match p.Packet.header with
          | Packet.Request _ ->
            let sh = shaper_for node (Packet.flow p) in
            Queue.add p sh.rq;
            service sh
          | Packet.Data _ | Packet.Backpressure _ ->
            Forwarder.handler fwd ~from p))
    s.Harness.forwarders;
  (* observability: shared net series plus per-flow progress *)
  (match obs with
  | None -> ()
  | Some o ->
    let smp, proto_label = Harness.observe_net o ~protocol:"HBH" ~horizon s in
    Array.iteri
      (fun i _ ->
        let labels = [ proto_label; ("flow", string_of_int i) ] in
        ignore
          (Obs.Sampler.track smp ~labels "chunks_received" (fun () ->
               match sessions.(i) with
               | Some sess ->
                 float_of_int (Inrpp.Session.received_count sess)
               | None -> 0.)))
      specs_arr;
    Obs.Sampler.start ~stop:(fun () -> !completed = nflows) smp);
  (* consumers: window of outstanding interests, self-clocked; the
     shapers inside the network do the congestion control *)
  let window = 32 in
  Array.iteri
    (fun i spec ->
      let wire = s.Harness.wire_ids.(i).(0) in
      let dst = spec.Inrpp.Protocol.dst in
      let next = ref 0 in
      let request idx =
        Net.inject s.Harness.net ~at:dst
          (Packet.request ~flow:wire ~nc:idx ~ack:0 ~ac:idx)
      in
      let rec top_up () =
        match sessions.(i) with
        | Some sess when not (Inrpp.Session.is_complete sess) ->
          (* keep [window] interests in flight: one new request per
             arrival is triggered from a periodic refresh to keep the
             code simple and allocation-free on the data path *)
          let in_flight = !next - Inrpp.Session.received_count sess in
          if in_flight < window && !next < spec.Inrpp.Protocol.chunks then begin
            request !next;
            incr next
          end;
          ignore (Sim.Engine.schedule eng ~delay:(chunk_bits /. 10e6) top_up)
        | _ -> ()
      in
      ignore
        (Sim.Engine.schedule eng ~delay:spec.Inrpp.Protocol.start (fun () ->
             top_up ())))
    specs_arr;
  Sim.Engine.run ~until:horizon eng;
  let sim_time =
    match !finished_at with
    | Some tm -> tm
    | None -> Sim.Engine.now eng
  in
  Run_result.make ~protocol:"HBH" ~fcts ~chunk_bits
    ~chunks:(Array.map (fun sp -> sp.Inrpp.Protocol.chunks) specs_arr)
    ~drops:
      (Array.fold_left
         (fun acc f -> acc + Forwarder.drops f)
         0 s.Harness.forwarders)
    ~retransmissions:!retx ~sim_time
