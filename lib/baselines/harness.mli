(** Shared plumbing for the baseline transports: builds the
    store-and-forward network, installs per-subflow routing state,
    wires producers/consumers and runs the engine. *)

type setup = {
  eng : Sim.Engine.t;
  net : Chunksim.Net.t;
  forwarders : Forwarder.t array;
  paths : Topology.Path.t array array;  (** [paths.(flow).(subflow)] *)
  wire_ids : int array array;           (** matching wire flow ids *)
}

val prepare :
  ?queue_bits:float -> paths_per_flow:int -> Topology.Graph.t ->
  Inrpp.Protocol.flow_spec list -> setup
(** Computes up to [paths_per_flow] link-disjoint paths per flow (at
    least one — @raise Invalid_argument when unroutable), allocates
    wire ids and installs forwarding state.
    @raise Invalid_argument if [paths_per_flow < 1] or no flows. *)

val observe_net :
  Obs.Observer.t -> protocol:string -> horizon:float -> setup ->
  Obs.Sampler.t * (string * string)
(** Register the network-level instrumentation every baseline shares:
    callback metrics ([forwarder_drops_total], per-link [iface_*]) and
    sampled per-interface [iface_queue_bits] / [iface_utilisation]
    series, all labelled [("protocol", protocol)].  Installs the
    observer's sampler (at [horizon /. 200.] by default) but does not
    start it; returns it with the protocol label so the caller can add
    flow series, then call {!Obs.Sampler.start}. *)

val apply_faults : ?faults:Fault.Schedule.t -> setup -> unit
(** Install a fault schedule on the prepared network: purely
    mechanical (interfaces flip, crashed nodes destroy arriving
    packets, bursts drop Request/Backpressure traffic).  The baselines
    have no in-network recovery, so their response to faults is
    whatever their end-to-end loss recovery does — the comparison the
    resilience experiment draws.  No-op for an empty/absent
    schedule. *)

val path_base_delay : chunk_bits:float -> Topology.Path.t -> float
(** Unloaded latency of a path: propagation plus one serialisation
    per hop — the floor receivers subtract when histogramming
    queueing delay. *)

val run_pull :
  protocol:string -> coupled:bool -> paths_per_flow:int ->
  ?chunk_bits:float -> ?queue_bits:float -> ?horizon:float ->
  ?obs:Obs.Observer.t -> ?faults:Fault.Schedule.t -> Topology.Graph.t ->
  Inrpp.Protocol.flow_spec list -> Run_result.t
(** Window-driven pull transport over the prepared network (see
    {!Puller}); the engine of both {!Aimd} and {!Mptcp}.
    Defaults: 10 kB chunks, 64-chunk queues, 120 s horizon.

    [obs] instruments the run with callback metrics
    ([forwarder_drops_total], [puller_retransmissions_total],
    [puller_loss_events_total], [puller_chunks_received], per-link
    [iface_*]) and sampled [iface_queue_bits] / [iface_utilisation] /
    per-flow [chunks_received] series, all labelled with [protocol],
    plus receiver-side distributions: [flow_fct_seconds] and per-flow
    [chunk_queueing_delay_seconds] histograms.  The baseline stack
    has no packet trace, so the observer's sinks are not attached. *)
