(** Single-path end-to-end AIMD transport — the TCP-like comparator
    the paper argues against (§2.1).

    Receiver-driven interest control (one request per chunk) with an
    AIMD window, slow start, RTO loss recovery; plain drop-tail
    forwarding; shortest single path.

    This module is deliberately a parameter-only preset: all transport
    behaviour (windows, RTO, striping, store-and-forward plumbing,
    observability) lives in {!Puller}/{!Forwarder}/{!Harness}, shared
    with {!Mptcp} — AIMD {e is} the single-path uncoupled point in
    that family, so there is nothing protocol-specific to implement
    here beyond fixing [coupled = false] and [paths_per_flow = 1]. *)

val run :
  ?chunk_bits:float -> ?queue_bits:float -> ?horizon:float ->
  ?obs:Obs.Observer.t -> ?faults:Fault.Schedule.t -> Topology.Graph.t ->
  Inrpp.Protocol.flow_spec list -> Run_result.t
(** Defaults as in {!Harness.run_pull}; [obs] is forwarded there, so
    an instrumented AIMD run emits the same metric and series names
    (labelled [protocol=AIMD]) as every other baseline. *)
