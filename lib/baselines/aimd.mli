(** Single-path end-to-end AIMD transport — the TCP-like comparator
    the paper argues against (§2.1).

    Receiver-driven interest control (one request per chunk) with an
    AIMD window, slow start, RTO loss recovery; plain drop-tail
    forwarding; shortest single path. *)

val run :
  ?chunk_bits:float -> ?queue_bits:float -> ?horizon:float ->
  Topology.Graph.t -> Inrpp.Protocol.flow_spec list -> Run_result.t
(** Defaults as in {!Harness.run_pull}. *)
