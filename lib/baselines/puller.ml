module Packet = Chunksim.Packet

type sub = {
  win : Window.t;
  outstanding : (int, float) Hashtbl.t;
  wire : int;
  send : int -> Packet.t -> unit;   (* subflow index baked in by caller *)
  index : int;
}

type t = {
  eng : Sim.Engine.t;
  total_chunks : int;
  sess : Inrpp.Session.t;
  coupled : bool;
  subs : sub array;
  retry : int Queue.t;
  retry_set : (int, unit) Hashtbl.t;
  on_complete : fct:float -> unit;
  mutable next_seq : int;
  mutable started : float option;
  mutable finished : bool;
  mutable retx : int;
}

let create ~eng ~chunk_bits:_ ~total_chunks ~coupled ~subflow_request
    ~wire_ids ~on_complete =
  let n = Array.length subflow_request in
  if n = 0 then invalid_arg "Puller.create: no subflows";
  if Array.length wire_ids <> n then
    invalid_arg "Puller.create: wire_ids length mismatch";
  {
    eng;
    total_chunks;
    sess = Inrpp.Session.create ~total_chunks;
    coupled;
    subs =
      Array.init n (fun j ->
          {
            win = Window.create ();
            outstanding = Hashtbl.create 32;
            wire = wire_ids.(j);
            send = subflow_request.(j);
            index = j;
          });
    retry = Queue.create ();
    retry_set = Hashtbl.create 8;
    on_complete;
    next_seq = 0;
    started = None;
    finished = false;
    retx = 0;
  }

let total_window t =
  Array.fold_left (fun acc s -> acc +. Window.size s.win) 0. t.subs

(* next chunk index to fetch: retries first, then fresh sequence; skips
   anything already received *)
let rec next_chunk t =
  match Queue.take_opt t.retry with
  | Some idx ->
    Hashtbl.remove t.retry_set idx;
    if Inrpp.Session.next_needed t.sess > idx then next_chunk t
    else Some idx
  | None ->
    let rec fresh () =
      if t.next_seq >= t.total_chunks then None
      else begin
        let idx = t.next_seq in
        t.next_seq <- idx + 1;
        if Inrpp.Session.next_needed t.sess > idx then fresh () else Some idx
      end
    in
    fresh ()

let request_on t (s : sub) idx =
  Hashtbl.replace s.outstanding idx (Sim.Engine.now t.eng);
  let ack = Inrpp.Session.next_needed t.sess in
  s.send s.index (Packet.request ~flow:s.wire ~nc:idx ~ack ~ac:idx)

let fill t =
  if not t.finished then begin
    let progress = ref true in
    while !progress do
      progress := false;
      Array.iter
        (fun s ->
          if Hashtbl.length s.outstanding < Window.capacity s.win then begin
            match next_chunk t with
            | Some idx ->
              request_on t s idx;
              progress := true
            | None -> ()
          end)
        t.subs
    done
  end

let rec check_timeouts t =
  if not t.finished then begin
    let now = Sim.Engine.now t.eng in
    Array.iter
      (fun s ->
        let deadline = Window.rto s.win in
        let expired =
          Hashtbl.fold
            (fun idx t0 acc -> if now -. t0 > deadline then idx :: acc else acc)
            s.outstanding []
        in
        if expired <> [] then begin
          Window.on_loss s.win ~now;
          List.iter
            (fun idx ->
              Hashtbl.remove s.outstanding idx;
              if not (Hashtbl.mem t.retry_set idx) then begin
                Hashtbl.replace t.retry_set idx ();
                Queue.add idx t.retry;
                t.retx <- t.retx + 1
              end)
            expired
        end)
      t.subs;
    fill t;
    ignore (Sim.Engine.schedule t.eng ~delay:0.02 (fun () -> check_timeouts t))
  end

let start t =
  if t.started = None then begin
    t.started <- Some (Sim.Engine.now t.eng);
    fill t;
    check_timeouts t
  end

let handle_data t ~subflow (p : Packet.t) =
  match p.Packet.header with
  | Packet.Data { idx; _ } when not t.finished ->
    let now = Sim.Engine.now t.eng in
    let s = t.subs.(subflow) in
    (match Hashtbl.find_opt s.outstanding idx with
    | Some t0 ->
      Hashtbl.remove s.outstanding idx;
      let rtt_sample = now -. t0 in
      if t.coupled then
        Window.on_ack_coupled s.win ~now ~rtt_sample
          ~total_window:(total_window t)
      else Window.on_ack s.win ~now ~rtt_sample
    | None -> ());
    (match Inrpp.Session.receive t.sess idx with
    | `New ->
      if Inrpp.Session.is_complete t.sess then begin
        t.finished <- true;
        let fct =
          match t.started with
          | Some s0 -> now -. s0
          | None -> now
        in
        t.on_complete ~fct
      end
      else fill t
    | `Duplicate -> ())
  | Packet.Data _ | Packet.Request _ | Packet.Backpressure _ -> ()

let is_complete t = t.finished
let retransmissions t = t.retx
let loss_events t =
  Array.fold_left (fun acc s -> acc + Window.losses s.win) 0 t.subs
let received t = Inrpp.Session.received_count t.sess
