let run ?(subflows = 2) ?chunk_bits ?queue_bits ?horizon ?obs ?faults g specs
    =
  if subflows < 1 then invalid_arg "Mptcp.run: subflows < 1";
  Harness.run_pull ~protocol:"MPTCP" ~coupled:true ~paths_per_flow:subflows
    ?chunk_bits ?queue_bits ?horizon ?obs ?faults g specs
