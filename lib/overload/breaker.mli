(** Receiver-side retransmission circuit breaker.

    Pure state machine; the receiver drives it from its timeout handler
    and its data path.  Closed → normal retransmission, debited from a
    budget of {e consecutive} barren timeouts; exhausting the budget
    opens the breaker.  Open → no retransmissions at all until
    [probe_interval] elapses, then a single half-open probe; an
    answered probe (any new data) closes the breaker and refunds the
    budget, an unanswered one re-opens it.  Under a permanent
    partition the send rate is therefore bounded by
    [budget + elapsed / probe_interval] — no retransmission storm. *)

type state = Closed | Open | Half_open

type t

val create : budget:int -> probe_interval:float -> t
(** @raise Invalid_argument if [budget < 0] or [probe_interval <= 0.]. *)

val on_timeout : t -> now:float -> [ `Retry | `Probe | `Wait ]
(** The receiver's retransmission timer fired with no progress since it
    was armed.  [`Retry]: retransmit normally.  [`Probe]: send exactly
    one half-open probe.  [`Wait]: send nothing. *)

val on_progress : t -> unit
(** New data arrived: close the breaker, reset the budget. *)

val state : t -> state

val trips : t -> int
(** Times the breaker transitioned Closed → Open. *)

val probes : t -> int
(** Half-open probes sent. *)
