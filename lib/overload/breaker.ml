type state = Closed | Open | Half_open

type t = {
  budget : int;
  probe_interval : float;
  mutable state : state;
  mutable barren : int;
  mutable last_probe : float;
  mutable trips : int;
  mutable probes : int;
}

let create ~budget ~probe_interval =
  if budget < 0 then invalid_arg "Breaker.create: budget < 0";
  if probe_interval <= 0. then invalid_arg "Breaker.create: probe_interval <= 0";
  {
    budget;
    probe_interval;
    state = Closed;
    barren = 0;
    last_probe = neg_infinity;
    trips = 0;
    probes = 0;
  }

let state t = t.state
let trips t = t.trips
let probes t = t.probes

let on_progress t =
  t.state <- Closed;
  t.barren <- 0

(* A barren timeout fired.  [`Retry] — retransmit as before (budget not
   exhausted).  [`Probe] — the breaker is half-open: send exactly one
   probe retransmission.  [`Wait] — the breaker is open and the probe
   interval has not elapsed; send nothing. *)
let on_timeout t ~now =
  match t.state with
  | Closed ->
    if t.barren < t.budget then begin
      t.barren <- t.barren + 1;
      `Retry
    end
    else begin
      t.state <- Open;
      t.trips <- t.trips + 1;
      t.last_probe <- now;
      `Wait
    end
  | Half_open ->
    (* the previous probe went unanswered: back to open *)
    t.state <- Open;
    `Wait
  | Open ->
    if now -. t.last_probe >= t.probe_interval -. 1e-9 then begin
      t.state <- Half_open;
      t.last_probe <- now;
      t.probes <- t.probes + 1;
      `Probe
    end
    else `Wait
