(** Overload-control configuration.

    One record switches on the whole graceful-degradation layer:
    custody admission policy, router load shedding, the receiver
    circuit breaker, and the collapse watchdog.  Everything is off by
    default — [Inrpp.Protocol.run] without [?overload] behaves exactly
    as before this layer existed, and {!off} is the same thing spelled
    as a config (the differential tests pin both). *)

type admission =
  | Drop_tail
      (** Legacy always-admit behaviour (capacity still bounds). *)
  | Object_runs of { threshold : float }
      (** Object-granularity admission: never break a custody run the
          store already committed to; refuse {e new} runs above
          [threshold] custody occupancy.  See
          {!Chunksim.Cache.object_runs}. *)
  | Fair_share of { share : float }
      (** Per-flow fairness cap over the custody region.  See
          {!Chunksim.Cache.fair_share}. *)

type t = {
  admission : admission;  (** custody admission policy *)
  shed_threshold : float;
      (** custody occupancy (fraction of store capacity) above which
          the router sheds new custody admissions outright — in-custody
          chunks are never shed.  [infinity] disables. *)
  early_bp_threshold : float;
      (** custody occupancy fraction at which back-pressure engages
          {e early}, before the store's high watermark.  [infinity]
          disables (back-pressure then engages at the watermark as
          before). *)
  neighbor_pressure : float;
      (** refuse detours whose first hop lands on a neighbour whose
          custody occupancy fraction is at or above this.  [infinity]
          disables. *)
  retry_budget : int;
      (** consecutive barren retransmissions a receiver may send before
          its circuit breaker opens.  [max_int] disables. *)
  probe_interval : float;
      (** half-open probe spacing (seconds) once the breaker is open. *)
  watchdog_window : float;
      (** collapse-watchdog sliding window (seconds); [0.] disables the
          watchdog entirely. *)
  collapse_ratio : float;
      (** collapse declared when windowed goodput falls below this
          fraction of the peak observed. *)
  recovery_ratio : float;
      (** episode ends when windowed goodput recovers to this fraction
          of peak; must exceed [collapse_ratio] (hysteresis). *)
}

val default : t
(** Sensible active defaults: object-runs admission at 0.6, shed at
    0.9, early back-pressure at 0.5, neighbour refusal at 0.85, retry
    budget 4 with 1 s probes, 1 s watchdog window with 0.3/0.7
    collapse/recovery ratios. *)

val off : t
(** Every mechanism disabled.  [run ~overload:off] is bit-identical to
    [run] without the argument. *)

val validate : t -> unit
(** @raise Invalid_argument on out-of-range fields. *)

val watchdog_enabled : t -> bool
(** [watchdog_window > 0.] *)

val policy : t -> Chunksim.Cache.policy option
(** The cache admission policy this config asks for; [None] for
    {!Drop_tail} (the legacy no-policy hot path). *)

val admission_name : t -> string
(** Short label for tables: ["drop-tail"], ["object-runs"],
    ["fair-share"]. *)
