type admission =
  | Drop_tail
  | Object_runs of { threshold : float }
  | Fair_share of { share : float }

type t = {
  admission : admission;
  shed_threshold : float;
  early_bp_threshold : float;
  neighbor_pressure : float;
  retry_budget : int;
  probe_interval : float;
  watchdog_window : float;
  collapse_ratio : float;
  recovery_ratio : float;
}

let default =
  {
    admission = Object_runs { threshold = 0.6 };
    shed_threshold = 0.9;
    early_bp_threshold = 0.5;
    neighbor_pressure = 0.85;
    retry_budget = 4;
    probe_interval = 1.0;
    watchdog_window = 1.0;
    collapse_ratio = 0.3;
    recovery_ratio = 0.7;
  }

let off =
  {
    admission = Drop_tail;
    shed_threshold = infinity;
    early_bp_threshold = infinity;
    neighbor_pressure = infinity;
    retry_budget = max_int;
    probe_interval = infinity;
    watchdog_window = 0.;
    collapse_ratio = 0.;
    recovery_ratio = 0.;
  }

let watchdog_enabled t = t.watchdog_window > 0.

let validate t =
  let fail fmt = Printf.ksprintf invalid_arg fmt in
  (match t.admission with
  | Drop_tail -> ()
  | Object_runs { threshold } ->
    if not (0. < threshold && threshold <= 1.) then
      fail "Overload.Config: object_runs threshold %g not in (0, 1]" threshold
  | Fair_share { share } ->
    if share <= 0. then fail "Overload.Config: fair_share share %g <= 0" share);
  if t.shed_threshold <= 0. then
    fail "Overload.Config: shed_threshold %g <= 0" t.shed_threshold;
  if t.early_bp_threshold <= 0. then
    fail "Overload.Config: early_bp_threshold %g <= 0" t.early_bp_threshold;
  if t.neighbor_pressure <= 0. then
    fail "Overload.Config: neighbor_pressure %g <= 0" t.neighbor_pressure;
  if t.retry_budget < 0 then
    fail "Overload.Config: retry_budget %d < 0" t.retry_budget;
  if t.probe_interval <= 0. then
    fail "Overload.Config: probe_interval %g <= 0" t.probe_interval;
  if t.watchdog_window < 0. then
    fail "Overload.Config: watchdog_window %g < 0" t.watchdog_window;
  if watchdog_enabled t then begin
    if not (0. < t.collapse_ratio && t.collapse_ratio < t.recovery_ratio
            && t.recovery_ratio <= 1.) then
      fail
        "Overload.Config: watchdog ratios must satisfy 0 < collapse (%g) < \
         recovery (%g) <= 1"
        t.collapse_ratio t.recovery_ratio
  end

let policy t : Chunksim.Cache.policy option =
  match t.admission with
  | Drop_tail -> None
  | Object_runs { threshold } -> Some (Chunksim.Cache.object_runs ~threshold ())
  | Fair_share { share } -> Some (Chunksim.Cache.fair_share ~share ())

let admission_name t =
  match t.admission with
  | Drop_tail -> "drop-tail"
  | Object_runs _ -> "object-runs"
  | Fair_share _ -> "fair-share"
