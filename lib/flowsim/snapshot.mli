(** Saturated-demand snapshot experiments — the Fig. 4a/4b methodology.

    The paper evaluates INRP against SP and ECMP by measuring how much
    of the network's bandwidth each scheme can put to use when senders
    push open-loop ("if senders see extra available bandwidth they
    insert more data in the network", §3.3).  A snapshot places a set
    of everlasting flows between random node pairs, allocates
    bandwidth once with the strategy's allocator, and reads off
    utilisation; an ensemble of seeded snapshots gives the averages the
    figure reports.  This avoids simulating the (strategy-independent)
    Poisson arrival churn while measuring exactly the quantity the
    figure plots. *)

type result = {
  strategy : string;
  throughput : float;
  (** Σ delivered flow rate / Σ offered demand — the Fig. 4a series *)
  utilisation : float;
  (** Σ carried-per-link / Σ capacity (INRP counts detour legs and
      traffic later dropped, so compare schemes on [throughput]) *)
  goodput : float;
  (** Σ delivered flow rate, bps *)
  delivered_fraction : float;
  (** goodput / Σ sender push rate; 1.0 means nothing was held back *)
  mean_stretch : float;
  (** rate-weighted mean path stretch *)
  detoured_fraction : float;
  (** share of traffic that crossed at least one detour (INRP only) *)
  stretch_samples : Sim.Stats.Samples.t;
  (** per-flow rate-weighted stretch values — the Fig. 4b CDF *)
  flows : int;
}

val run :
  ?endpoints:Workload.endpoints -> ?demand:float ->
  strategy:Routing.strategy ->
  nflows:int -> seed:int64 -> Topology.Graph.t -> result
(** One snapshot: [nflows] everlasting flows between distinct random
    pairs, each offering [demand] bps (default [infinity]: senders
    take everything their first link grants).
    @raise Invalid_argument if [nflows <= 0] or [demand <= 0.]. *)

val ensemble :
  ?endpoints:Workload.endpoints -> ?demand:float ->
  strategy:Routing.strategy ->
  nflows:int -> seeds:int64 list -> Topology.Graph.t -> result
(** Mean over seeds; stretch samples pooled.
    @raise Invalid_argument on an empty seed list. *)

val pp : Format.formatter -> result -> unit
