module Graph = Topology.Graph
module Path = Topology.Path

type config = {
  strategy : Routing.strategy;
  arrival_rate : float;
  size : Workload.size_dist;
  endpoints : Workload.endpoints;
  warmup : float;
  duration : float;
  seed : int64;
  max_active : int;
}

let config ?(size = Workload.Exponential 4e6) ?(endpoints = Workload.Any_pair)
    ?(warmup = 2.) ?(duration = 8.) ?(seed = 1L) ?(max_active = 4000)
    ~strategy ~arrival_rate () =
  { strategy; arrival_rate; size; endpoints; warmup; duration; seed; max_active }

type state = {
  g : Graph.t;
  cfg : config;
  eng : Sim.Engine.t;
  wl : Workload.t;
  router : Routing.t;
  active : (int, Flow.t) Hashtbl.t;
  mutable last_update : float;
  mutable next_flow_id : int;
  mutable completion_handle : Sim.Event_queue.handle option;
  (* measurement *)
  mutable window_offered : float;
  mutable window_delivered : float;
  mutable window_arrivals : int;
  mutable window_rejected : int;
  mutable window_completions : int;
  fct_samples : Sim.Stats.Samples.t;
  stretch_samples : Sim.Stats.Samples.t;
  active_tl : Sim.Timeline.t;
  detour_tl : Sim.Timeline.t;
  mutable stretch_weight : float;   (* Σ delivered bits of completed flows *)
  mutable stretch_bits : float;     (* Σ delivered × stretch *)
}

let window_start st = st.cfg.warmup
let window_end st = st.cfg.warmup +. st.cfg.duration

let in_window st a b = a >= window_start st -. 1e-12 && b <= window_end st +. 1e-12

let sorted_flows st =
  let fs = Hashtbl.fold (fun _ f acc -> f :: acc) st.active [] in
  List.sort (fun (a : Flow.t) b -> Int.compare a.Flow.id b.Flow.id) fs

(* Drain every active flow from [last_update] to [now] at its current
   rate; bits drained inside the measurement window are accounted. *)
let advance_to st now =
  let dt = now -. st.last_update in
  if dt > 0. then begin
    let measured = in_window st st.last_update now in
    Hashtbl.iter
      (fun _ (f : Flow.t) ->
        let before = f.Flow.remaining in
        Flow.advance f ~dt;
        if measured then
          st.window_delivered <-
            st.window_delivered +. (before -. f.Flow.remaining))
      st.active;
    st.last_update <- now
  end

let record_active st =
  Sim.Timeline.record st.active_tl ~time:(Sim.Engine.now st.eng)
    (float_of_int (Hashtbl.length st.active))

(* completion handling is mutually recursive with reallocation via the
   event queue; tie the knot through a forward reference *)
let handle_completion_ref = ref (fun (_ : state) -> ())

let reallocate st =
  let now = Sim.Engine.now st.eng in
  let flows = Array.of_list (sorted_flows st) in
  let demands =
    Array.map (fun (f : Flow.t) -> (f.Flow.path, infinity)) flows
  in
  begin match Routing.strategy st.router with
  | Routing.Inrp options ->
    let res =
      Allocation.inrp ~options ~detours:(Routing.detours st.router) st.g
        demands
    in
    Array.iteri
      (fun i (f : Flow.t) ->
        f.Flow.rate <- res.Allocation.delivered.(i);
        f.Flow.effective_hops <- res.Allocation.effective_hops.(i))
      flows;
    Sim.Timeline.record st.detour_tl ~time:now res.Allocation.detoured_fraction
  | Routing.Sp | Routing.Ecmp _ ->
    let rates = Allocation.max_min st.g demands in
    Array.iteri
      (fun i (f : Flow.t) ->
        f.Flow.rate <- rates.(i);
        f.Flow.effective_hops <- float_of_int (Path.hops f.Flow.path))
      flows
  end;
  (* reschedule the next completion *)
  (match st.completion_handle with
  | Some h -> Sim.Engine.cancel h
  | None -> ());
  st.completion_handle <- None;
  let soonest = ref infinity in
  Array.iter
    (fun (f : Flow.t) ->
      if f.Flow.rate > 1e-9 then begin
        let eta = f.Flow.remaining /. f.Flow.rate in
        if eta < !soonest then soonest := eta
      end)
    flows;
  if Float.is_finite !soonest then begin
    let handler () = !handle_completion_ref st in
    (* floor the delay at 1 ns: an ETA below the float clock's
       resolution would fire at the same timestamp, drain nothing and
       loop forever *)
    st.completion_handle <-
      Some (Sim.Engine.schedule st.eng ~delay:(Float.max 1e-9 !soonest) handler)
  end

let handle_completion st =
  let now = Sim.Engine.now st.eng in
  advance_to st now;
  st.completion_handle <- None;
  let done_flows =
    (* a flow is complete when its residue is negligible in absolute
       terms or drains within a nanosecond at its current rate *)
    List.filter
      (fun (f : Flow.t) ->
        f.Flow.remaining <= 1e-6 || f.Flow.remaining <= f.Flow.rate *. 1e-9)
      (sorted_flows st)
  in
  List.iter
    (fun (f : Flow.t) ->
      f.Flow.completed_at <- Some now;
      Hashtbl.remove st.active f.Flow.id;
      if now >= window_start st && now <= window_end st then begin
        st.window_completions <- st.window_completions + 1;
        (match Flow.fct f with
        | Some v when f.Flow.arrival >= window_start st ->
          Sim.Stats.Samples.add st.fct_samples v
        | _ -> ());
        let s = Flow.stretch f in
        Sim.Stats.Samples.add st.stretch_samples s;
        st.stretch_weight <- st.stretch_weight +. f.Flow.delivered_bits;
        st.stretch_bits <- st.stretch_bits +. (f.Flow.delivered_bits *. s)
      end)
    done_flows;
  record_active st;
  reallocate st

let () = handle_completion_ref := handle_completion

let handle_arrival st =
  let now = Sim.Engine.now st.eng in
  advance_to st now;
  let id = st.next_flow_id in
  st.next_flow_id <- id + 1;
  let src, dst, size = Workload.draw_flow st.wl ~time:now ~id in
  let measured = now >= window_start st && now < window_end st in
  if measured then begin
    st.window_arrivals <- st.window_arrivals + 1;
    st.window_offered <- st.window_offered +. size
  end;
  let admitted =
    Hashtbl.length st.active < st.cfg.max_active
    &&
    match Routing.route st.router ~flow_id:id src dst with
    | None -> false
    | Some path ->
      let shortest_hops =
        Option.value ~default:(Path.hops path)
          (Routing.shortest_hops st.router src dst)
      in
      let f =
        Flow.make ~id ~src ~dst ~size ~arrival:now ~shortest_hops ~path
      in
      Hashtbl.add st.active id f;
      true
  in
  if (not admitted) && measured then
    st.window_rejected <- st.window_rejected + 1;
  record_active st;
  reallocate st

let run ?obs g cfg =
  if cfg.warmup < 0. || cfg.duration <= 0. then
    invalid_arg "Simulator.run: bad warmup/duration";
  if cfg.arrival_rate <= 0. then invalid_arg "Simulator.run: arrival_rate <= 0";
  let eng = Sim.Engine.create () in
  let st =
    {
      g;
      cfg;
      eng;
      wl =
        Workload.create ~endpoints:cfg.endpoints ~arrival_rate:cfg.arrival_rate
          ~size:cfg.size ~seed:cfg.seed g;
      router = Routing.create g cfg.strategy;
      active = Hashtbl.create 256;
      last_update = 0.;
      next_flow_id = 0;
      completion_handle = None;
      window_offered = 0.;
      window_delivered = 0.;
      window_arrivals = 0;
      window_rejected = 0;
      window_completions = 0;
      fct_samples = Sim.Stats.Samples.create ();
      stretch_samples = Sim.Stats.Samples.create ();
      active_tl = Sim.Timeline.create ~start:0. ();
      detour_tl = Sim.Timeline.create ~start:0. ();
      stretch_weight = 0.;
      stretch_bits = 0.;
    }
  in
  let horizon = window_end st in
  (* observability: counters as callback metrics over the window
     accumulators; a sampler records the flow population, the running
     delivered/offered bits and the INRP detour fraction *)
  (match obs with
  | None -> ()
  | Some o ->
    let reg = Obs.Observer.registry o in
    let labels = [ ("strategy", Routing.name cfg.strategy) ] in
    let f name fn = Obs.Metric.callback reg ~labels name fn in
    f "flows_arrived_total" (fun () -> float_of_int st.window_arrivals);
    f "flows_rejected_total" (fun () -> float_of_int st.window_rejected);
    f "flows_completed_total" (fun () -> float_of_int st.window_completions);
    f "offered_bits_total" (fun () -> st.window_offered);
    f "delivered_bits_total" (fun () -> st.window_delivered);
    f "active_flows" (fun () -> float_of_int (Hashtbl.length st.active));
    let smp =
      Obs.Observer.install_sampler o ~eng
        ~default_interval:(cfg.duration /. 100.)
    in
    let track name fn = ignore (Obs.Sampler.track smp ~labels name fn) in
    track "active_flows" (fun () -> float_of_int (Hashtbl.length st.active));
    track "delivered_bits" (fun () -> st.window_delivered);
    track "offered_bits" (fun () -> st.window_offered);
    if Routing.is_inrp cfg.strategy then
      track "detour_fraction" (fun () -> Sim.Timeline.value st.detour_tl);
    Obs.Sampler.start ~stop:(fun () -> Sim.Engine.now eng >= horizon) smp);
  (* arrival process *)
  let rec schedule_next_arrival () =
    let gap = Workload.next_interarrival st.wl in
    let at = Sim.Engine.now eng +. gap in
    if at <= horizon then
      ignore
        (Sim.Engine.schedule eng ~delay:gap (fun () ->
             handle_arrival st;
             schedule_next_arrival ()))
  in
  schedule_next_arrival ();
  (* boundary markers so drain intervals never straddle the window *)
  ignore (Sim.Engine.schedule eng ~delay:cfg.warmup (fun () ->
      advance_to st (Sim.Engine.now eng)));
  ignore (Sim.Engine.schedule eng ~delay:horizon (fun () ->
      advance_to st (Sim.Engine.now eng)));
  Sim.Engine.run ~until:horizon eng;
  advance_to st horizon;
  let mean_fct =
    if Sim.Stats.Samples.count st.fct_samples = 0 then 0.
    else Sim.Stats.Samples.mean st.fct_samples
  in
  let p95_fct =
    if Sim.Stats.Samples.count st.fct_samples = 0 then 0.
    else Sim.Stats.Samples.percentile st.fct_samples 95.
  in
  {
    Results.strategy = Routing.name cfg.strategy;
    warmup = cfg.warmup;
    duration = cfg.duration;
    arrivals = st.window_arrivals;
    rejected = st.window_rejected;
    completions = st.window_completions;
    offered_bits = st.window_offered;
    delivered_bits = st.window_delivered;
    throughput =
      (if st.window_offered > 0. then st.window_delivered /. st.window_offered
       else 0.);
    mean_fct;
    p95_fct;
    mean_active = Sim.Timeline.time_average st.active_tl ~until:horizon;
    mean_stretch =
      (if st.stretch_weight > 0. then st.stretch_bits /. st.stretch_weight
       else 1.);
    stretch_samples = st.stretch_samples;
    detoured_fraction =
      (if Routing.is_inrp cfg.strategy then
         Sim.Timeline.time_average st.detour_tl ~until:horizon
       else 0.);
  }

let run_static g ~strategy pairs =
  let router = Routing.create g strategy in
  let paths =
    List.mapi
      (fun i (src, dst) ->
        match Routing.route router ~flow_id:i src dst with
        | Some p -> p
        | None ->
          invalid_arg
            (Printf.sprintf "Simulator.run_static: %d -> %d unroutable" src dst))
      pairs
  in
  let demands = Array.of_list (List.map (fun p -> (p, infinity)) paths) in
  match strategy with
  | Routing.Inrp options ->
    let res =
      Allocation.inrp ~options ~detours:(Routing.detours router) g demands
    in
    res.Allocation.delivered
  | Routing.Sp | Routing.Ecmp _ -> Allocation.max_min g demands
