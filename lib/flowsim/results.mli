(** Measurement output of a flow-level simulation run. *)

type t = {
  strategy : string;
  warmup : float;
  duration : float;              (** measurement window, seconds *)
  arrivals : int;                (** flows arriving inside the window *)
  rejected : int;                (** arrivals refused (unroutable or admission cap) *)
  completions : int;             (** flows completing inside the window *)
  offered_bits : float;          (** bits of all window arrivals *)
  delivered_bits : float;        (** bits drained inside the window *)
  throughput : float;            (** delivered / offered; the Fig. 4a metric *)
  mean_fct : float;              (** seconds; 0 when no completions *)
  p95_fct : float;
  mean_active : float;           (** time-averaged concurrent flows *)
  mean_stretch : float;          (** bits-weighted, completed flows *)
  stretch_samples : Sim.Stats.Samples.t; (** per-completed-flow stretch (Fig. 4b) *)
  detoured_fraction : float;     (** time-averaged share of delivered traffic
                                     riding at least one detour (INRP only) *)
}

val stretch_cdf : ?points:int -> t -> (float * float) list
(** [(stretch, P(X <= stretch))] — the Fig. 4b series. *)

val pp : Format.formatter -> t -> unit
(** One-line summary. *)

val pp_table : Format.formatter -> t list -> unit
(** Aligned comparison table (one row per run). *)
