type size_dist =
  | Fixed of float
  | Exponential of float
  | Pareto of { shape : float; mean : float }

let mean_size = function
  | Fixed s -> s
  | Exponential m -> m
  | Pareto { mean; _ } -> mean

let draw_size rng = function
  | Fixed s -> s
  | Exponential m -> Float.max 1. (Sim.Rng.exponential rng ~mean:m)
  | Pareto { shape; mean } ->
    if shape <= 1. then invalid_arg "Workload.draw_size: Pareto shape <= 1";
    let scale = mean *. (shape -. 1.) /. shape in
    Float.max 1. (Sim.Rng.pareto rng ~shape ~scale)

type endpoints =
  | Any_pair
  | Role_pairs of Topology.Node.role list

type t = {
  g : Topology.Graph.t;
  rng : Sim.Rng.t;
  arrival_rate : float;
  size : size_dist;
  candidates : int array;   (* node ids eligible as endpoints *)
}

let create ?(endpoints = Any_pair) ~arrival_rate ~size ~seed g =
  if arrival_rate <= 0. then invalid_arg "Workload.create: arrival_rate <= 0";
  if Topology.Graph.node_count g < 2 then
    invalid_arg "Workload.create: need at least two nodes";
  let all = Array.init (Topology.Graph.node_count g) Fun.id in
  let candidates =
    match endpoints with
    | Any_pair -> all
    | Role_pairs roles ->
      let filtered =
        Array.of_list
          (List.filter_map
             (fun (v : Topology.Node.t) ->
               if List.mem v.Topology.Node.role roles then
                 Some v.Topology.Node.id
               else None)
             (Topology.Graph.nodes g))
      in
      if Array.length filtered < 2 then all else filtered
  in
  { g; rng = Sim.Rng.create seed; arrival_rate; size; candidates }

let next_interarrival t = Sim.Rng.exponential t.rng ~mean:(1. /. t.arrival_rate)

let draw_flow t ~time:_ ~id:_ =
  let n = Array.length t.candidates in
  let src = t.candidates.(Sim.Rng.int t.rng n) in
  let rec other () =
    let d = t.candidates.(Sim.Rng.int t.rng n) in
    if d = src then other () else d
  in
  let dst = other () in
  (src, dst, draw_size t.rng t.size)

let offered_load t = t.arrival_rate *. mean_size t.size
