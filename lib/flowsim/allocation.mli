(** Bandwidth allocation over a topology.

    Two allocators, matching the two transport philosophies the paper
    contrasts (§3.1):

    - {!max_min}: classic end-to-end max-min fairness by progressive
      filling — the idealised behaviour of TCP-like closed-loop control
      on fixed single paths ({e global stability, local fairness}).

    - {!inrp}: the In-Network Resource Pooling allocation — every link
      is shared equally among the flows crossing it ({e global
      fairness}); traffic a primary link cannot carry overflows onto
      detour paths around that link ({e local stability}); whatever
      still does not fit is held back (back-pressure) and the flow's
      delivered rate drops accordingly.  Reproduces the Fig. 3 worked
      example exactly and drives Fig. 4a/4b. *)

val max_min : Topology.Graph.t -> (Topology.Path.t * float) array -> float array
(** [max_min g demands] where each element is (path, demand-cap in bps;
    [infinity] for unbounded).  Returns the max-min fair rate of each
    flow.  Zero-hop paths get their demand (or [0.] if unbounded).
    O(links² × flows) worst case — fine at ISP scale. *)

(** Options for the INRP allocator. *)
type inrp_options = {
  rounds : int;          (** water-filling granularity; >= 10 sensible *)
  max_detour : int;      (** detour depth: 0 disables, 1 = paper's 1-hop,
                             2 adds the "one extra hop" recursion *)
  allow_further : bool;  (** nodes on a detour may detour one extra hop
                             (paper's Fig. 4 setting) — includes
                             2-intermediate detours as fallback *)
  bp_iterations : int;   (** back-pressure fixed-point passes: after each
                             pass a sender's cap drops to what it could
                             deliver, modelling the closed-loop mode of
                             §3.2 — undeliverable traffic stops wasting
                             upstream capacity.  1 = pure open loop. *)
  source_detour : bool;  (** the source node acts as a router for its own
                             traffic: it may detour around its congested
                             first link (PoP-level semantics, used for
                             Fig. 4).  When [false], senders multiplex
                             into the primary first link by processor
                             sharing and never detour there — the §3.2
                             end-host sender model of the Fig. 3 worked
                             example. *)
}

val default_inrp : inrp_options
(** [{ rounds = 50; max_detour = 1; allow_further = true;
      bp_iterations = 4; source_detour = true }] *)

val fig3_inrp : inrp_options
(** {!default_inrp} with [source_detour = false]. *)

type inrp_result = {
  delivered : float array;       (** per-flow delivered rate at dst, bps *)
  pushed : float array;          (** per-flow rate injected by the sender *)
  effective_hops : float array;  (** rate-weighted hops of the route mix *)
  detoured_fraction : float;     (** fraction of delivered traffic that
                                     used at least one detour link *)
  link_carried : float array;    (** per-link carried rate, bps, indexed
                                      by link id — includes traffic later
                                      dropped downstream *)
}

val inrp :
  ?options:inrp_options ->
  detours:(Topology.Link.t -> (Topology.Node.id * Topology.Path.t) list) ->
  Topology.Graph.t ->
  (Topology.Path.t * float) array ->
  inrp_result
(** [inrp ~detours g demands]: [demands] as in {!max_min}; a flow's
    push rate is the minimum of its demand cap and its processor-sharing
    share of its first link.  [detours l] lists detour paths around
    link [l] (see {!Topology.Detour.detours_via}); it is consulted only
    for saturated links and should be memoised by the caller. *)

module Detour_table : sig
  type t

  val create : ?max_intermediate:int -> Topology.Graph.t -> t
  (** Lazy, memoised per-link detour sets ([max_intermediate] default
      2: 1-hop detours first, 2-hop recursion fallback). *)

  val find : t -> Topology.Link.t -> (Topology.Node.id * Topology.Path.t) list
end
