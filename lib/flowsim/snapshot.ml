module Graph = Topology.Graph
module Path = Topology.Path
module Link = Topology.Link

type result = {
  strategy : string;
  throughput : float;
  utilisation : float;
  goodput : float;
  delivered_fraction : float;
  mean_stretch : float;
  detoured_fraction : float;
  stretch_samples : Sim.Stats.Samples.t;
  flows : int;
}

let draw_pairs ~endpoints ~nflows ~seed g =
  (* reuse the workload's endpoint filtering; arrival rate is unused *)
  let wl = Workload.create ~endpoints ~arrival_rate:1. ~size:(Workload.Fixed 1.) ~seed g in
  List.init nflows (fun id ->
      let src, dst, _ = Workload.draw_flow wl ~time:0. ~id in
      (src, dst))

let utilisation_of_rates g paths rates =
  let nlinks = Graph.link_count g in
  let carried = Array.make nlinks 0. in
  Array.iteri
    (fun i p ->
      List.iter
        (fun (l : Link.t) ->
          carried.(l.Link.id) <- carried.(l.Link.id) +. rates.(i))
        p.Path.links)
    paths;
  let total_cap = Graph.total_capacity g in
  if total_cap <= 0. then 0.
  else Array.fold_left ( +. ) 0. carried /. total_cap

let run ?(endpoints = Workload.Any_pair) ?(demand = infinity) ~strategy
    ~nflows ~seed g =
  if nflows <= 0 then invalid_arg "Snapshot.run: nflows <= 0";
  if demand <= 0. then invalid_arg "Snapshot.run: demand <= 0";
  let router = Routing.create g strategy in
  let pairs = draw_pairs ~endpoints ~nflows ~seed g in
  (* drop unroutable pairs (disconnected graphs) *)
  let routed =
    List.filteri
      (fun i (src, dst) -> Routing.route router ~flow_id:i src dst <> None)
      pairs
  in
  let paths =
    Array.of_list
      (List.mapi
         (fun i (src, dst) ->
           Option.get (Routing.route router ~flow_id:i src dst))
         routed)
  in
  let shortest =
    Array.of_list
      (List.map
         (fun (src, dst) ->
           Option.value ~default:1 (Routing.shortest_hops router src dst))
         routed)
  in
  let demands = Array.map (fun p -> (p, demand)) paths in
  let offered =
    if Float.is_finite demand then demand *. float_of_int (Array.length paths)
    else 0.
  in
  let throughput_of goodput =
    if offered > 0. then goodput /. offered else 0.
  in
  let stretch_samples = Sim.Stats.Samples.create () in
  let record_stretches rates hops =
    Array.iteri
      (fun i r ->
        if r > 0. then begin
          let sh = float_of_int (max 1 shortest.(i)) in
          Sim.Stats.Samples.add stretch_samples (hops i /. sh)
        end)
      rates
  in
  match strategy with
  | Routing.Inrp options ->
    let res =
      Allocation.inrp ~options ~detours:(Routing.detours router) g demands
    in
    let total_cap = Graph.total_capacity g in
    let carried = Array.fold_left ( +. ) 0. res.Allocation.link_carried in
    let goodput = Array.fold_left ( +. ) 0. res.Allocation.delivered in
    let pushed = Array.fold_left ( +. ) 0. res.Allocation.pushed in
    record_stretches res.Allocation.delivered (fun i ->
        res.Allocation.effective_hops.(i));
    let weighted_stretch =
      let num = ref 0. and den = ref 0. in
      Array.iteri
        (fun i r ->
          if r > 0. then begin
            let sh = float_of_int (max 1 shortest.(i)) in
            num := !num +. (r *. (res.Allocation.effective_hops.(i) /. sh));
            den := !den +. r
          end)
        res.Allocation.delivered;
      if !den > 0. then !num /. !den else 1.
    in
    {
      strategy = Routing.name strategy;
      throughput = throughput_of goodput;
      utilisation = (if total_cap > 0. then carried /. total_cap else 0.);
      goodput;
      delivered_fraction = (if pushed > 0. then goodput /. pushed else 0.);
      mean_stretch = weighted_stretch;
      detoured_fraction = res.Allocation.detoured_fraction;
      stretch_samples;
      flows = Array.length paths;
    }
  | Routing.Sp | Routing.Ecmp _ ->
    let rates = Allocation.max_min g demands in
    let goodput = Array.fold_left ( +. ) 0. rates in
    record_stretches rates (fun i -> float_of_int (Path.hops paths.(i)));
    let weighted_stretch =
      let num = ref 0. and den = ref 0. in
      Array.iteri
        (fun i r ->
          if r > 0. then begin
            let sh = float_of_int (max 1 shortest.(i)) in
            num := !num +. (r *. (float_of_int (Path.hops paths.(i)) /. sh));
            den := !den +. r
          end)
        rates;
      if !den > 0. then !num /. !den else 1.
    in
    {
      strategy = Routing.name strategy;
      throughput = throughput_of goodput;
      utilisation = utilisation_of_rates g paths rates;
      goodput;
      delivered_fraction = 1.;
      mean_stretch = weighted_stretch;
      detoured_fraction = 0.;
      stretch_samples;
      flows = Array.length paths;
    }

let ensemble ?(endpoints = Workload.Any_pair) ?demand ~strategy ~nflows
    ~seeds g =
  match seeds with
  | [] -> invalid_arg "Snapshot.ensemble: no seeds"
  | _ ->
    let results =
      List.map
        (fun seed -> run ~endpoints ?demand ~strategy ~nflows ~seed g)
        seeds
    in
    let n = float_of_int (List.length results) in
    let mean f = List.fold_left (fun acc r -> acc +. f r) 0. results /. n in
    let pooled = Sim.Stats.Samples.create () in
    List.iter
      (fun r ->
        Array.iter
          (Sim.Stats.Samples.add pooled)
          (Sim.Stats.Samples.to_sorted_array r.stretch_samples))
      results;
    {
      strategy = (List.hd results).strategy;
      throughput = mean (fun r -> r.throughput);
      utilisation = mean (fun r -> r.utilisation);
      goodput = mean (fun r -> r.goodput);
      delivered_fraction = mean (fun r -> r.delivered_fraction);
      mean_stretch = mean (fun r -> r.mean_stretch);
      detoured_fraction = mean (fun r -> r.detoured_fraction);
      stretch_samples = pooled;
      flows = List.fold_left (fun acc r -> acc + r.flows) 0 results;
    }

let pp ppf r =
  Format.fprintf ppf
    "%-5s thr=%.3f util=%.3f goodput=%a delivered=%.2f stretch=%.3f \
     detoured=%.1f%% (%d flows)"
    r.strategy r.throughput r.utilisation Sim.Units.pp_rate r.goodput
    r.delivered_fraction
    r.mean_stretch
    (100. *. r.detoured_fraction)
    r.flows
