module Path = Topology.Path
module Link = Topology.Link
module Graph = Topology.Graph

(* ------------------------------------------------------------------ *)
(* Classic end-to-end max-min by progressive filling. *)

let max_min g demands =
  let nflows = Array.length demands in
  let nlinks = Graph.link_count g in
  let residual = Array.init nlinks (fun i -> (Graph.link g i).Link.capacity) in
  let rates = Array.make nflows 0. in
  let frozen = Array.make nflows false in
  (* zero-hop flows: no link constraint *)
  Array.iteri
    (fun f (p, demand) ->
      if Path.hops p = 0 then begin
        rates.(f) <- (if Float.is_finite demand then demand else 0.);
        frozen.(f) <- true
      end)
    demands;
  let link_ids p = List.map (fun (l : Link.t) -> l.Link.id) p.Path.links in
  let unfrozen_on = Array.make nlinks 0 in
  let recount () =
    Array.fill unfrozen_on 0 nlinks 0;
    Array.iteri
      (fun f (p, _) ->
        if not frozen.(f) then
          List.iter
            (fun l -> unfrozen_on.(l) <- unfrozen_on.(l) + 1)
            (link_ids p))
      demands
  in
  let all_frozen () = Array.for_all Fun.id frozen in
  let guard = ref (nflows + nlinks + 2) in
  while (not (all_frozen ())) && !guard > 0 do
    decr guard;
    recount ();
    (* smallest feasible uniform increment across unfrozen flows *)
    let delta = ref infinity in
    Array.iteri
      (fun f (p, demand) ->
        if not frozen.(f) then begin
          let headroom = demand -. rates.(f) in
          if headroom < !delta then delta := headroom;
          List.iter
            (fun l ->
              let share = residual.(l) /. float_of_int unfrozen_on.(l) in
              if share < !delta then delta := share)
            (link_ids p)
        end)
      demands;
    let delta = Float.max 0. !delta in
    (* apply the increment and freeze exhausted flows *)
    Array.iteri
      (fun f (p, demand) ->
        if not frozen.(f) then begin
          rates.(f) <- rates.(f) +. delta;
          List.iter
            (fun l -> residual.(l) <- residual.(l) -. delta)
            (link_ids p);
          if rates.(f) >= demand -. 1e-9 then frozen.(f) <- true
        end)
      demands;
    (* freeze flows riding a saturated link *)
    Array.iteri
      (fun f (p, _) ->
        if not frozen.(f) then
          if
            List.exists
              (fun l -> residual.(l) <= 1e-9 *. (Graph.link g l).Link.capacity)
              (link_ids p)
          then frozen.(f) <- true)
      demands
  done;
  rates

(* ------------------------------------------------------------------ *)
(* INRP hop-by-hop allocation. *)

type inrp_options = {
  rounds : int;
  max_detour : int;
  allow_further : bool;
  bp_iterations : int;
  source_detour : bool;
}

let default_inrp =
  {
    rounds = 50;
    max_detour = 1;
    allow_further = true;
    bp_iterations = 4;
    source_detour = true;
  }

let fig3_inrp = { default_inrp with source_detour = false }

type inrp_result = {
  delivered : float array;
  pushed : float array;
  effective_hops : float array;
  detoured_fraction : float;
  link_carried : float array;
}

(* A parcel of fluid walking a path: [clean] bits/s that never left the
   primary route, [det] bits/s that crossed at least one detour, and
   the hop-weighted sum used for path-stretch accounting. *)
type parcel = {
  clean : float;
  det : float;
  wh : float;
}

let parcel_amount p = p.clean +. p.det

(* One open-loop pass: push at the first-link processor-sharing share
   (capped by [caps]), spill overflow onto detours, drop what no link
   will take.  The back-pressure fixed point in [inrp] tightens [caps]
   between passes. *)
let inrp_pass ~options ~detours g demands caps =
  let nflows = Array.length demands in
  let nlinks = Graph.link_count g in
  (* sender push rates.  Router-style sources ([source_detour]) inject
     up to their node's aggregate outgoing capacity and let the walk
     below share links and spill to detours; end-host-style sources
     multiplex into their primary first link by processor sharing,
     computed as max-min over one-link paths. *)
  let pushed =
    if options.source_detour then
      Array.mapi
        (fun i (p, _) ->
          let out_cap =
            List.fold_left
              (fun acc (l : Link.t) -> acc +. l.Link.capacity)
              0.
              (Graph.out_links g (Path.src p))
          in
          Float.min caps.(i) out_cap)
        demands
    else begin
      let first_link_demands =
        Array.mapi
          (fun i (p, _) ->
            let demand = caps.(i) in
            match p.Path.links with
            | [] -> (p, 0.)
            | first :: _ -> begin
              match Path.of_links [ first ] with
              | Ok single -> (single, demand)
              | Error _ -> (p, 0.)
            end)
          demands
      in
      max_min g first_link_demands
    end
  in
  let residual = Array.init nlinks (fun i -> (Graph.link g i).Link.capacity) in
  let delivered = Array.make nflows 0. in
  let weighted = Array.make nflows 0. in
  let total_clean = ref 0. and total_det = ref 0. in
  let detour_cache = Hashtbl.create 64 in
  let detour_list (l : Link.t) =
    if options.max_detour = 0 then []
    else begin
      match Hashtbl.find_opt detour_cache l.Link.id with
      | Some ds -> ds
      | None ->
        let max_int_hops =
          if options.allow_further then max options.max_detour 2
          else options.max_detour
        in
        let ds =
          List.filter
            (fun (_, dp) ->
              Path.hops dp <= max_int_hops + 1
              (* a detour with k intermediates has k + 1 hops *))
            (detours l)
        in
        Hashtbl.add detour_cache l.Link.id ds;
        ds
    end
  in
  let take link_id amount =
    let granted = Float.min amount residual.(link_id) in
    residual.(link_id) <- residual.(link_id) -. granted;
    granted
  in
  (* grant [amount] across every link of [dpath] atomically *)
  let take_path (dpath : Path.t) amount =
    let grantable =
      List.fold_left
        (fun acc (l : Link.t) -> Float.min acc residual.(l.Link.id))
        amount dpath.Path.links
    in
    if grantable > 0. then
      List.iter
        (fun (l : Link.t) ->
          let got = take l.Link.id grantable in
          (* the min above guarantees full grants *)
          assert (got >= grantable -. 1e-9))
        dpath.Path.links;
    Float.max 0. grantable
  in
  let quantum = Array.map (fun r -> r /. float_of_int options.rounds) pushed in
  for round = 0 to options.rounds - 1 do
    for slot = 0 to nflows - 1 do
      (* rotate service order so no flow systematically goes first *)
      let f = (slot + round) mod nflows in
      let p, _ = demands.(f) in
      let q = quantum.(f) in
      if q > 0. && Path.hops p > 0 then begin
        let carry = ref { clean = q; det = 0.; wh = 0. } in
        List.iter
          (fun (l : Link.t) ->
            let amount = parcel_amount !carry in
            if amount > 1e-15 then begin
              let granted = take l.Link.id amount in
              let frac = granted /. amount in
              let kept =
                {
                  clean = !carry.clean *. frac;
                  det = !carry.det *. frac;
                  wh = (!carry.wh *. frac) +. granted;
                }
              in
              let overflow = amount -. granted in
              (* route the overflow through detours around [l] *)
              let via_detours = ref { clean = 0.; det = 0.; wh = 0. } in
              if overflow > 1e-15 then begin
                let left = ref overflow in
                List.iter
                  (fun (_, dpath) ->
                    if !left > 1e-15 then begin
                      let d = take_path dpath !left in
                      if d > 0. then begin
                        let dfrac = d /. overflow in
                        let wh_inherit =
                          !carry.wh *. (overflow /. amount) *. dfrac
                        in
                        via_detours :=
                          {
                            clean = !via_detours.clean;
                            det = !via_detours.det +. d;
                            wh =
                              !via_detours.wh +. wh_inherit
                              +. (d *. float_of_int (Path.hops dpath));
                          };
                        left := !left -. d
                      end
                    end)
                  (detour_list l)
              end;
              carry :=
                {
                  clean = kept.clean;
                  det = kept.det +. !via_detours.det;
                  wh = kept.wh +. !via_detours.wh;
                }
            end)
          p.Path.links;
        delivered.(f) <- delivered.(f) +. parcel_amount !carry;
        weighted.(f) <- weighted.(f) +. !carry.wh;
        total_clean := !total_clean +. !carry.clean;
        total_det := !total_det +. !carry.det
      end
    done
  done;
  let effective_hops =
    Array.init nflows (fun f ->
        if delivered.(f) > 0. then weighted.(f) /. delivered.(f)
        else float_of_int (Path.hops (fst demands.(f))))
  in
  let total = !total_clean +. !total_det in
  let link_carried =
    Array.init nlinks (fun i ->
        (Graph.link g i).Link.capacity -. residual.(i))
  in
  {
    delivered;
    pushed;
    effective_hops;
    detoured_fraction = (if total > 0. then !total_det /. total else 0.);
    link_carried;
  }

let inrp ?(options = default_inrp) ~detours g demands =
  if options.rounds < 1 then invalid_arg "Allocation.inrp: rounds < 1";
  if options.bp_iterations < 1 then
    invalid_arg "Allocation.inrp: bp_iterations < 1";
  let caps = Array.map snd demands in
  let result = ref (inrp_pass ~options ~detours g demands caps) in
  (* Back-pressure: tighten each sender to what it proved deliverable,
     with head-room on the exploratory passes so freed capacity can be
     re-claimed; the final pass runs without head-room so the returned
     allocation wastes (almost) nothing. *)
  let max_capacity =
    Graph.fold_links (fun l acc -> Float.max acc l.Link.capacity) g 0.
  in
  for pass = 2 to options.bp_iterations do
    let final = pass = options.bp_iterations in
    let slack = if final then 1.0 else 1.25 in
    (* a small probe keeps fully-blocked senders able to re-grow when
       other senders back off — the rate with which receivers keep
       requesting in closed-loop mode *)
    let probe = if final then 0. else 0.01 *. max_capacity in
    Array.iteri
      (fun i (_, original) ->
        caps.(i) <-
          Float.min original ((!result.delivered.(i) *. slack) +. probe))
      demands;
    result := inrp_pass ~options ~detours g demands caps
  done;
  !result

(* ------------------------------------------------------------------ *)

module Detour_table = struct
  type t = {
    g : Graph.t;
    max_intermediate : int;
    cache : (int, (Topology.Node.id * Path.t) list) Hashtbl.t;
  }

  let create ?(max_intermediate = 2) g =
    if max_intermediate < 1 then
      invalid_arg "Detour_table.create: max_intermediate < 1";
    { g; max_intermediate; cache = Hashtbl.create 64 }

  let find t (l : Link.t) =
    match Hashtbl.find_opt t.cache l.Link.id with
    | Some ds -> ds
    | None ->
      let ds =
        Topology.Detour.detours_via t.g l
          ~max_intermediate:t.max_intermediate
      in
      Hashtbl.add t.cache l.Link.id ds;
      ds
  end
