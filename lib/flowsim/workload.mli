(** Traffic generation: Poisson flow arrivals between random node
    pairs, with configurable size distributions — the workload of the
    paper's Fig. 4 evaluation. *)

type size_dist =
  | Fixed of float                      (** bits *)
  | Exponential of float                (** mean bits *)
  | Pareto of { shape : float; mean : float }
      (** heavy-tailed; [shape > 1] so the mean exists *)

val mean_size : size_dist -> float

val draw_size : Sim.Rng.t -> size_dist -> float
(** Always [> 0]. *)

(** Which nodes may source/sink traffic. *)
type endpoints =
  | Any_pair            (** uniform over distinct connected pairs *)
  | Role_pairs of Topology.Node.role list
      (** both endpoints drawn from nodes with one of these roles;
          falls back to [Any_pair] when fewer than two such nodes *)

type t

val create :
  ?endpoints:endpoints -> arrival_rate:float -> size:size_dist ->
  seed:int64 -> Topology.Graph.t -> t
(** [arrival_rate] in flows per second.
    @raise Invalid_argument if [arrival_rate <= 0.] or the graph has
    fewer than two nodes. *)

val next_interarrival : t -> float
(** Exponential with mean [1 / arrival_rate]. *)

val draw_flow : t -> time:float -> id:int -> (Topology.Node.id * Topology.Node.id * float)
(** [(src, dst, size)]; src and dst are distinct. *)

val offered_load : t -> float
(** [arrival_rate * mean size] in bps — aggregate demand injected. *)
