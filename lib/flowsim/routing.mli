(** Route selection strategies — the three systems compared in
    Fig. 4a. *)

type strategy =
  | Sp
      (** single shortest path (hop metric), deterministic tie-break *)
  | Ecmp of int
      (** equal-cost multipath: hash the flow onto one of up to [n]
          shortest paths *)
  | Inrp of Allocation.inrp_options
      (** shortest primary path; bandwidth allocation may spill onto
          detours per the INRP options *)

val sp : strategy
val ecmp : strategy
(** [Ecmp 8]. *)

val inrp : strategy
(** [Inrp Allocation.default_inrp]. *)

val name : strategy -> string
(** ["SP"], ["ECMP"], ["INRP"] — Fig. 4a series labels. *)

val is_inrp : strategy -> bool

type t
(** Routing state for one graph: caches shortest-path trees and detour
    tables so per-flow routing is cheap. *)

val create : Topology.Graph.t -> strategy -> t
val strategy : t -> strategy

val route :
  t -> flow_id:int -> Topology.Node.id -> Topology.Node.id ->
  Topology.Path.t option
(** Primary path for a new flow; [None] when unreachable. *)

val shortest_hops : t -> Topology.Node.id -> Topology.Node.id -> int option

val detours :
  t -> Topology.Link.t -> (Topology.Node.id * Topology.Path.t) list
(** Detour candidates around a link (memoised); empty for non-INRP
    strategies. *)
