(** Fluid flow-level discrete-event simulator.

    Flows arrive Poisson-distributed, get a route from the configured
    strategy, and share bandwidth according to the matching allocator
    ({!Allocation.max_min} for SP/ECMP, {!Allocation.inrp} for INRP).
    Rates are recomputed on every arrival and departure; between
    events, flows drain fluidly at their allocated rate.  This is the
    simulator of the paper's §3.3 evaluation (Figs. 4a and 4b). *)

type config = {
  strategy : Routing.strategy;
  arrival_rate : float;          (** flows per second *)
  size : Workload.size_dist;
  endpoints : Workload.endpoints;
  warmup : float;                (** seconds before measurement starts *)
  duration : float;              (** measurement window length *)
  seed : int64;
  max_active : int;              (** admission cap (runaway guard) *)
}

val config :
  ?size:Workload.size_dist -> ?endpoints:Workload.endpoints ->
  ?warmup:float -> ?duration:float -> ?seed:int64 -> ?max_active:int ->
  strategy:Routing.strategy -> arrival_rate:float -> unit -> config
(** Defaults: 4 Mbit exponential sizes, any endpoint pair, 2 s warmup,
    8 s window, seed 1, cap 4000. *)

val run : ?obs:Obs.Observer.t -> Topology.Graph.t -> config -> Results.t
(** [obs] instruments the run: the window accumulators become callback
    metrics (labelled by strategy) and a sampler records
    [active_flows], [delivered_bits], [offered_bits] and — for INRP —
    [detour_fraction] timeseries at [duration / 100] resolution (or
    the observer's override).
    @raise Invalid_argument on non-positive durations or rates. *)

val run_static :
  Topology.Graph.t -> strategy:Routing.strategy ->
  (Topology.Node.id * Topology.Node.id) list -> float array
(** Allocate a fixed set of everlasting flows once and return their
    rates — no event loop.  This is the Fig. 3 worked-example entry
    point.  @raise Invalid_argument if some pair is unroutable. *)
