module Graph = Topology.Graph
module Dijkstra = Topology.Dijkstra
module Ecmp_paths = Topology.Ecmp

type strategy =
  | Sp
  | Ecmp of int
  | Inrp of Allocation.inrp_options

let sp = Sp
let ecmp = Ecmp 8
let inrp = Inrp Allocation.default_inrp

let name = function
  | Sp -> "SP"
  | Ecmp _ -> "ECMP"
  | Inrp _ -> "INRP"

let is_inrp = function
  | Inrp _ -> true
  | Sp | Ecmp _ -> false

(* (src, dst) packed into one int: keeps ECMP cache lookups off the
   polymorphic hasher and allocation-free on the per-flow path *)
let pair_key src dst = (src lsl 31) lor dst

type t = {
  g : Graph.t;
  strat : strategy;
  trees : (Topology.Node.id, Dijkstra.tree) Hashtbl.t;
  ecmp_cache : (int, Topology.Path.t list) Hashtbl.t;
  table : Allocation.Detour_table.t;
}

let create g strat =
  {
    g;
    strat;
    trees = Hashtbl.create 32;
    ecmp_cache = Hashtbl.create 64;
    table = Allocation.Detour_table.create g;
  }

let strategy t = t.strat

let tree t src =
  match Hashtbl.find_opt t.trees src with
  | Some tr -> tr
  | None ->
    let tr = Dijkstra.run ~metric:Dijkstra.Hops t.g src in
    Hashtbl.add t.trees src tr;
    tr

let shortest_hops t src dst = Dijkstra.hop_distance (tree t src) dst

let route t ~flow_id src dst =
  match t.strat with
  | Sp | Inrp _ -> Dijkstra.path_to (tree t src) dst
  | Ecmp limit ->
    let paths =
      match Hashtbl.find_opt t.ecmp_cache (pair_key src dst) with
      | Some ps -> ps
      | None ->
        let ps = Ecmp_paths.equal_cost_paths ~limit t.g src dst in
        Hashtbl.add t.ecmp_cache (pair_key src dst) ps;
        ps
    in
    Ecmp_paths.pick paths ~flow_id

let detours t l =
  match t.strat with
  | Inrp _ -> Allocation.Detour_table.find t.table l
  | Sp | Ecmp _ -> []
