type t = {
  id : int;
  src : Topology.Node.id;
  dst : Topology.Node.id;
  size : float;
  arrival : float;
  shortest_hops : int;
  mutable path : Topology.Path.t;
  mutable remaining : float;
  mutable rate : float;
  mutable effective_hops : float;
  mutable delivered_bits : float;
  mutable weighted_hops : float;
  mutable completed_at : float option;
}

let make ~id ~src ~dst ~size ~arrival ~shortest_hops ~path =
  if size <= 0. then invalid_arg "Flow.make: size <= 0";
  if src = dst then invalid_arg "Flow.make: src = dst";
  {
    id;
    src;
    dst;
    size;
    arrival;
    shortest_hops;
    path;
    remaining = size;
    rate = 0.;
    effective_hops = float_of_int (Topology.Path.hops path);
    delivered_bits = 0.;
    weighted_hops = 0.;
    completed_at = None;
  }

let is_complete f = f.remaining <= 0.

let advance f ~dt =
  if dt < 0. then invalid_arg "Flow.advance: negative dt";
  let drained = Float.min f.remaining (f.rate *. dt) in
  f.remaining <- f.remaining -. drained;
  f.delivered_bits <- f.delivered_bits +. drained;
  f.weighted_hops <- f.weighted_hops +. (drained *. f.effective_hops)

let stretch f =
  if f.delivered_bits <= 0. || f.shortest_hops = 0 then 1.
  else
    f.weighted_hops /. f.delivered_bits /. float_of_int f.shortest_hops

let fct f = Option.map (fun t -> t -. f.arrival) f.completed_at

let pp ppf f =
  Format.fprintf ppf "flow#%d %d->%d %.3g bits (%.3g left @ %a)" f.id f.src
    f.dst f.size f.remaining Sim.Units.pp_rate f.rate
