(** Fluid flows.

    A flow is a transfer of [size] bits between two nodes.  The
    simulator assigns it a route and, on every arrival/departure event,
    a rate; bits drain at that rate until the flow completes.  The
    mutable fields are owned by {!Simulator}. *)

type t = {
  id : int;
  src : Topology.Node.id;
  dst : Topology.Node.id;
  size : float;                      (** bits *)
  arrival : float;                   (** seconds *)
  shortest_hops : int;               (** hop count of the shortest route *)
  mutable path : Topology.Path.t;    (** current primary route *)
  mutable remaining : float;         (** bits still to deliver *)
  mutable rate : float;              (** current delivered rate, bps *)
  mutable effective_hops : float;    (** rate-weighted hop count of the
                                         route mix currently in use;
                                         set by the allocator *)
  mutable delivered_bits : float;
  mutable weighted_hops : float;     (** Σ (bits × hops used), for stretch *)
  mutable completed_at : float option;
}

val make :
  id:int -> src:Topology.Node.id -> dst:Topology.Node.id -> size:float ->
  arrival:float -> shortest_hops:int -> path:Topology.Path.t -> t
(** @raise Invalid_argument if [size <= 0.] or [src = dst]. *)

val is_complete : t -> bool

val advance : t -> dt:float -> unit
(** Drain [rate *. dt] bits (never below zero) and accumulate the
    delivered-bits and weighted-hops counters.
    @raise Invalid_argument if [dt < 0.]. *)

val stretch : t -> float
(** Bits-weighted mean path stretch of everything delivered so far:
    [weighted_hops / delivered_bits / shortest_hops].  [1.] when
    nothing was delivered yet or the flow is single-hop. *)

val fct : t -> float option
(** Flow completion time, [completed_at - arrival]. *)

val pp : Format.formatter -> t -> unit
