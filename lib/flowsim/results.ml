type t = {
  strategy : string;
  warmup : float;
  duration : float;
  arrivals : int;
  rejected : int;
  completions : int;
  offered_bits : float;
  delivered_bits : float;
  throughput : float;
  mean_fct : float;
  p95_fct : float;
  mean_active : float;
  mean_stretch : float;
  stretch_samples : Sim.Stats.Samples.t;
  detoured_fraction : float;
}

let stretch_cdf ?points t = Sim.Stats.Samples.cdf ?points t.stretch_samples

let pp ppf r =
  Format.fprintf ppf
    "%-5s throughput=%.3f fct=%.3gs stretch=%.3f detoured=%.1f%% \
     (%d arrivals, %d done, %d rejected)"
    r.strategy r.throughput r.mean_fct r.mean_stretch
    (100. *. r.detoured_fraction)
    r.arrivals r.completions r.rejected

let pp_table ppf rows =
  Format.fprintf ppf "%-6s %10s %10s %10s %9s %9s %9s@." "strat" "thruput"
    "mean_fct" "p95_fct" "stretch" "detour%" "done";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-6s %10.3f %9.3gs %9.3gs %9.3f %9.1f %9d@."
        r.strategy r.throughput r.mean_fct r.p95_fct r.mean_stretch
        (100. *. r.detoured_fraction)
        r.completions)
    rows
