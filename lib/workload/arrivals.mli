(** Open-loop session arrivals: a non-homogeneous Poisson process with
    a diurnal rate curve and optional flash-crowd bursts, sampled by
    Lewis–Shedler thinning so the stream is exact for any bounded rate
    function.

    The generator is a pure function of its parameters and [seed]: two
    generators built with equal arguments emit identical streams, and a
    parallel sweep that builds one per job reproduces the sequential
    bytes at any domain count. *)

type burst = {
  at : float;        (** burst onset, seconds *)
  duration : float;  (** seconds the boost lasts *)
  boost : float;     (** rate multiplier while active, [>= 1.] *)
}

val burst : at:float -> duration:float -> boost:float -> burst
(** @raise Invalid_argument if [at < 0.], [duration <= 0.] or
    [boost < 1.]. *)

type t

val create :
  ?diurnal_amplitude:float -> ?diurnal_period:float -> ?bursts:burst list ->
  rate:float -> seed:int64 -> unit -> t
(** [rate] is the base session arrival rate (sessions per second).
    [diurnal_amplitude] in [[0, 1)] (default 0: homogeneous Poisson)
    modulates it as [rate * (1 + a * sin (2πt / period))] with
    [diurnal_period] (default 86400 s); bursts multiply the modulated
    rate while active (overlapping bursts compound).
    @raise Invalid_argument if [rate <= 0.], [diurnal_amplitude]
    outside [[0, 1)] or [diurnal_period <= 0.]. *)

val rate_at : t -> float -> float
(** Instantaneous arrival rate at an absolute time. *)

val peak_rate : t -> float
(** The thinning envelope: an upper bound on {!rate_at} over all
    times (base × diurnal crest × compounded burst boosts). *)

val next : t -> float
(** The next arrival time, strictly after the previous one (the
    generator starts at time 0).  Unbounded — callers cut the stream
    at their horizon. *)
