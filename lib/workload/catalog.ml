type t = {
  objects : int;
  alpha : float;
  chunk_min : int;
  chunk_max : int;
  chunk_shape : float;
  chunk_counts : int array;            (* per object, drawn at create *)
  zipf : Sim.Rng.t -> int;             (* rank in [1, objects] *)
  harmonic : float;                    (* sum of k^-alpha, k = 1..objects *)
}

(* inverse-CDF of the bounded Pareto on [lo, hi_excl); [u] in [0, 1) *)
let bounded_pareto ~shape ~lo ~hi_excl u =
  let c = 1. -. ((lo /. hi_excl) ** shape) in
  lo *. ((1. -. (u *. c)) ** (-1. /. shape))

let create ?(alpha = 0.8) ?(chunk_shape = 1.2) ?(chunk_min = 4)
    ?(chunk_max = 256) ~objects ~seed () =
  if objects <= 0 then invalid_arg "Catalog.create: objects <= 0";
  if alpha < 0. then invalid_arg "Catalog.create: alpha < 0";
  if chunk_shape <= 0. then invalid_arg "Catalog.create: chunk_shape <= 0";
  if not (1 <= chunk_min && chunk_min <= chunk_max) then
    invalid_arg "Catalog.create: need 1 <= chunk_min <= chunk_max";
  let rng = Sim.Rng.create seed in
  let lo = float_of_int chunk_min and hi_excl = float_of_int (chunk_max + 1) in
  let chunk_counts =
    Array.init objects (fun _ ->
        if chunk_min = chunk_max then chunk_min
        else
          let x =
            bounded_pareto ~shape:chunk_shape ~lo ~hi_excl
              (Sim.Rng.float rng 1.)
          in
          (* floor keeps the integer survival exactly the continuous
             tail at integer thresholds; the clamp only guards float
             edge cases at the interval ends *)
          max chunk_min (min chunk_max (int_of_float x)))
  in
  let harmonic = ref 0. in
  for k = 1 to objects do
    harmonic := !harmonic +. (float_of_int k ** -.alpha)
  done;
  {
    objects;
    alpha;
    chunk_min;
    chunk_max;
    chunk_shape;
    chunk_counts;
    zipf = Sim.Rng.zipf_sampler ~n:objects ~s:alpha;
    harmonic = !harmonic;
  }

let objects t = t.objects
let alpha t = t.alpha

let chunks t id =
  if id < 0 || id >= t.objects then invalid_arg "Catalog.chunks: bad object id";
  t.chunk_counts.(id)

let mean_chunks t =
  float_of_int (Array.fold_left ( + ) 0 t.chunk_counts)
  /. float_of_int t.objects

let draw t rng = t.zipf rng - 1

let probability t id =
  if id < 0 || id >= t.objects then
    invalid_arg "Catalog.probability: bad object id";
  (float_of_int (id + 1) ** -.t.alpha) /. t.harmonic

let survival t k =
  if k <= t.chunk_min then 1.
  else if k > t.chunk_max then 0.
  else begin
    let lo = float_of_int t.chunk_min
    and hi_excl = float_of_int (t.chunk_max + 1)
    and x = float_of_int k in
    let c = 1. -. ((lo /. hi_excl) ** t.chunk_shape) in
    (((lo /. x) ** t.chunk_shape) -. ((lo /. hi_excl) ** t.chunk_shape)) /. c
  end
