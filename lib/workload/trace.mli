(** NDJSON workload traces: persist a generated request stream and
    replay it later (or replay a trace produced elsewhere).

    Reading streams through {!Obs.Json.Reader}, so memory is bounded by
    the longest line, never the file — replaying a multi-gigabyte trace
    costs the same space as a ten-line one. *)

val save : out_channel -> Request.t list -> unit
(** One {!Request.to_json} object per line. *)

val save_file : string -> Request.t list -> unit

val load : ?max_requests:int -> in_channel -> (Request.t list, string) result
(** Requests in file order; stops early at [max_requests] when given.
    The first malformed line (bad JSON — including a truncated final
    line — or a JSON value {!Request.of_json} rejects) fails the whole
    load with its line number; blank lines and CRLF endings are
    tolerated. *)

val load_file : ?max_requests:int -> string -> (Request.t list, string) result

val validate : Topology.Graph.t -> Request.t list -> (unit, string) result
(** Checks every request's endpoints are distinct node ids of the
    graph — run before handing a foreign trace to a simulator. *)
