type t = {
  start : float;
  src : int;
  dst : int;
  content : int;
  chunks : int;
}

let to_json r =
  Obs.Json.Obj
    [
      ("t", Obs.Json.Num r.start);
      ("src", Obs.Json.Num (float_of_int r.src));
      ("dst", Obs.Json.Num (float_of_int r.dst));
      ("content", Obs.Json.Num (float_of_int r.content));
      ("chunks", Obs.Json.Num (float_of_int r.chunks));
    ]

let of_json j =
  let num name =
    match Option.bind (Obs.Json.member name j) Obs.Json.to_float with
    | Some x -> Ok x
    | None -> Error (Printf.sprintf "request: missing number %S" name)
  in
  let int name =
    match Option.bind (Obs.Json.member name j) Obs.Json.to_int with
    | Some x -> Ok x
    | None -> Error (Printf.sprintf "request: missing integer %S" name)
  in
  let ( let* ) = Result.bind in
  let* start = num "t" in
  let* src = int "src" in
  let* dst = int "dst" in
  let* content = int "content" in
  let* chunks = int "chunks" in
  if start < 0. then Error "request: negative start time"
  else if chunks <= 0 then Error "request: chunks <= 0"
  else if src < 0 || dst < 0 || content < 0 then
    Error "request: negative id"
  else if src = dst then Error "request: src = dst"
  else Ok { start; src; dst; content; chunks }

let equal a b =
  a.start = b.start && a.src = b.src && a.dst = b.dst
  && a.content = b.content && a.chunks = b.chunks

let pp fmt r =
  Format.fprintf fmt "@[t=%.6f %d->%d content=%d chunks=%d@]" r.start r.src
    r.dst r.content r.chunks
