(** Maps catalogue requests to (producer, consumer) node pairs on any
    {!Topology.Graph}.

    Producers are the nodes serving content, consumers the nodes
    requesting it; both sets are selected by role (with a fallback to
    every node when a role list matches nothing — small test graphs
    often carry a single role).  Draws reject unroutable pairs using a
    per-producer reachability memo, so every pair a session emits is
    safe to hand to [Inrpp.Protocol.flow_spec]. *)

type t

val create :
  ?producers:Topology.Node.role list -> ?consumers:Topology.Node.role list ->
  ?affinity:float -> seed:int64 -> Topology.Graph.t -> t
(** Role lists default to every node.  A role list that matches no
    node falls back to every node too (mirroring
    [Flowsim.Workload.Role_pairs]).

    [affinity] (default 0) is the probability that a draw repeats the
    previous draw's pair instead of sampling a fresh one — consecutive
    requests sticking to the same (server, client) pair, which
    concentrates load on a few paths in the EBONE/VSNL scenarios.  At
    0 the draw sequence is byte-identical to pre-affinity sessions (no
    extra RNG draws are made).
    @raise Invalid_argument if the graph has fewer than two nodes, no
    routable (producer, consumer) pair exists at all, or [affinity] is
    outside [0,1]. *)

val producers : t -> Topology.Node.id list
val consumers : t -> Topology.Node.id list

val draw : t -> Topology.Node.id * Topology.Node.id
(** A uniformly drawn routable [(producer, consumer)] pair with
    distinct endpoints. *)
