(** Maps catalogue requests to (producer, consumer) node pairs on any
    {!Topology.Graph}.

    Producers are the nodes serving content, consumers the nodes
    requesting it; both sets are selected by role (with a fallback to
    every node when a role list matches nothing — small test graphs
    often carry a single role).  Draws reject unroutable pairs using a
    per-producer reachability memo, so every pair a session emits is
    safe to hand to [Inrpp.Protocol.flow_spec]. *)

type t

val create :
  ?producers:Topology.Node.role list -> ?consumers:Topology.Node.role list ->
  seed:int64 -> Topology.Graph.t -> t
(** Role lists default to every node.  A role list that matches no
    node falls back to every node too (mirroring
    [Flowsim.Workload.Role_pairs]).
    @raise Invalid_argument if the graph has fewer than two nodes or
    no routable (producer, consumer) pair exists at all. *)

val producers : t -> Topology.Node.id list
val consumers : t -> Topology.Node.id list

val draw : t -> Topology.Node.id * Topology.Node.id
(** A uniformly drawn routable [(producer, consumer)] pair with
    distinct endpoints. *)
