(** Content catalogue: Zipf(α) popularity over [objects] items, each
    with a chunk count drawn once (at creation) from a bounded Pareto —
    the standard request mix of the ICN caching literature.

    A catalogue is immutable after {!create} and a pure function of its
    parameters and [seed], so two catalogues built with equal arguments
    are indistinguishable — the property the domain-parallel sweeps
    rely on (each job builds its own copy).

    Object ids are [0 .. objects - 1] in popularity order: object 0 is
    the hottest (Zipf rank 1). *)

type t

val create :
  ?alpha:float -> ?chunk_shape:float -> ?chunk_min:int -> ?chunk_max:int ->
  objects:int -> seed:int64 -> unit -> t
(** [alpha] (default 0.8) is the Zipf exponent; [chunk_min] /
    [chunk_max] (defaults 4 / 256) bound the per-object chunk count and
    [chunk_shape] (default 1.2) is the Pareto tail exponent between
    them.
    @raise Invalid_argument if [objects <= 0], [alpha < 0.],
    [chunk_shape <= 0.] or not [1 <= chunk_min <= chunk_max]. *)

val objects : t -> int
val alpha : t -> float

val chunks : t -> int -> int
(** Chunk count of an object, in [[chunk_min, chunk_max]].
    @raise Invalid_argument on an id outside [[0, objects)]. *)

val mean_chunks : t -> float
(** Average chunk count over the catalogue (not popularity-weighted). *)

val draw : t -> Sim.Rng.t -> int
(** Draw an object id with Zipf popularity using the caller's
    generator (the catalogue itself holds no draw state). *)

val probability : t -> int -> float
(** Exact popularity mass of an object: [id^-α / H] with the same
    finite-N normalisation {!draw} samples from — what the
    statistical-law tests derive their tolerances against. *)

val survival : t -> int -> float
(** [survival t k]: the exact probability that an object's chunk count
    is [>= k] under the bounded-Pareto draw used at creation; [1.] at
    or below [chunk_min], [0.] above [chunk_max]. *)
