(** One generated transfer request: the workload engine's output unit,
    convertible to an [Inrpp.Protocol.flow_spec] by the consumer (the
    dependency points that way — the protocol depends on the workload,
    never the reverse). *)

type t = {
  start : float;   (** arrival time, seconds *)
  src : int;       (** producer node id *)
  dst : int;       (** consumer node id *)
  content : int;   (** catalogue object id — the popularity-cache key *)
  chunks : int;    (** transfer length in chunks, [> 0] *)
}

val to_json : t -> Obs.Json.t
(** One NDJSON trace row:
    [{"t":...,"src":...,"dst":...,"content":...,"chunks":...}]. *)

val of_json : Obs.Json.t -> (t, string) result
(** Inverse of {!to_json}; rejects missing fields, non-integer ids,
    negative times and non-positive chunk counts. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
