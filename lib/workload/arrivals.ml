type burst = { at : float; duration : float; boost : float }

let burst ~at ~duration ~boost =
  if at < 0. then invalid_arg "Arrivals.burst: at < 0";
  if duration <= 0. then invalid_arg "Arrivals.burst: duration <= 0";
  if boost < 1. then invalid_arg "Arrivals.burst: boost < 1";
  { at; duration; boost }

type t = {
  rate : float;
  amplitude : float;
  period : float;
  bursts : burst list;
  peak : float;
  rng : Sim.Rng.t;
  mutable now : float;
}

let create ?(diurnal_amplitude = 0.) ?(diurnal_period = 86_400.)
    ?(bursts = []) ~rate ~seed () =
  if rate <= 0. then invalid_arg "Arrivals.create: rate <= 0";
  if diurnal_amplitude < 0. || diurnal_amplitude >= 1. then
    invalid_arg "Arrivals.create: diurnal_amplitude outside [0, 1)";
  if diurnal_period <= 0. then invalid_arg "Arrivals.create: period <= 0";
  (* envelope: assume every burst is active at the diurnal crest — a
     loose but safe thinning bound (overlaps compound) *)
  let boost_bound =
    List.fold_left (fun acc b -> acc *. b.boost) 1. bursts
  in
  {
    rate;
    amplitude = diurnal_amplitude;
    period = diurnal_period;
    bursts;
    peak = rate *. (1. +. diurnal_amplitude) *. boost_bound;
    rng = Sim.Rng.create seed;
    now = 0.;
  }

let rate_at t time =
  let diurnal =
    1. +. (t.amplitude *. sin (2. *. Float.pi *. time /. t.period))
  in
  let boost =
    List.fold_left
      (fun acc b ->
        if time >= b.at && time < b.at +. b.duration then acc *. b.boost
        else acc)
      1. t.bursts
  in
  t.rate *. diurnal *. boost

let peak_rate t = t.peak

(* Lewis–Shedler: candidate gaps at the envelope rate, accepted with
   probability rate(t)/peak — an exact sample of the inhomogeneous
   process for any rate function below the envelope *)
let next t =
  let rec step () =
    t.now <- t.now +. Sim.Rng.exponential t.rng ~mean:(1. /. t.peak);
    if Sim.Rng.float t.rng 1. <= rate_at t t.now /. t.peak then t.now
    else step ()
  in
  step ()
