(** Scenario generation: ties {!Catalog}, {!Arrivals} and {!Session}
    into a bounded stream of {!Request.t}.

    A {!spec} is an immutable parameter record — safe to share across
    domains — and {!requests} is a {e pure function} of [(spec,
    graph)]: it builds fresh sub-generators from seeds derived off
    [spec.seed], so two calls (in the same domain or different ones)
    return identical lists.  This is the property the workload
    determinism suite pins at [--domains 1/2/4]. *)

type spec = {
  seed : int64;
  horizon : float;        (** generate arrivals in [[0, horizon)] *)
  max_requests : int;     (** hard cap on the stream length *)
  (* catalogue *)
  objects : int;
  alpha : float;          (** Zipf exponent *)
  chunk_min : int;
  chunk_max : int;
  chunk_shape : float;    (** bounded-Pareto tail exponent *)
  (* arrivals *)
  rate : float;           (** base sessions per second *)
  diurnal_amplitude : float;
  diurnal_period : float;
  bursts : Arrivals.burst list;
  (* session endpoints *)
  producers : Topology.Node.role list;
  consumers : Topology.Node.role list;
  affinity : float;
  (** probability a draw repeats the previous (producer, consumer)
      pair (see {!Session.create}); 0 = independent draws, and the
      stream is byte-identical to pre-affinity specs *)
}

val default : spec
(** Seed 1, 10 s horizon, 256-request cap, 64-object catalogue at
    α = 0.8, chunks Pareto(1.2) on [4, 64], 8 sessions/s, no diurnal
    modulation or bursts, any-role endpoints, affinity 0. *)

val requests : spec -> Topology.Graph.t -> Request.t list
(** The generated stream, in arrival order.  Pure: equal arguments
    give equal (structurally and byte-identical) lists.
    @raise Invalid_argument on invalid parameters (see {!Catalog},
    {!Arrivals}, {!Session}) or a graph with no routable pair. *)

val requests_seq : spec -> Topology.Graph.t -> Request.t Seq.t
(** The same stream, lazily: element [n] is generated at its first
    force, so consuming a prefix costs only that prefix — million-
    request overload runs stay memory-bounded.  Memoized, hence
    persistent: forcing any prefix twice returns identical requests
    (the generator state is imperative underneath), and
    [List.of_seq (requests_seq spec g) = requests spec g] always.
    Argument validation is eager; generation is not. *)

val offered_chunks : spec -> float
(** Expected chunks injected over the horizon at the {e base} rate —
    a sizing aid for store/horizon choices, not an exact load figure
    (diurnal curves and bursts shift it). *)
