type t = {
  g : Topology.Graph.t;
  producers : Topology.Node.id array;
  consumers : Topology.Node.id array;
  rng : Sim.Rng.t;
  affinity : float;
  mutable last : (Topology.Node.id * Topology.Node.id) option;
  (* per-producer shortest-path tree, computed on first draw of that
     producer — session setup cost stays proportional to the producers
     actually used, not the graph *)
  trees : Topology.Dijkstra.tree option array;
}

let nodes_with_roles g roles =
  let all = Topology.Graph.nodes g in
  let picked =
    match roles with
    | [] -> all
    | _ ->
      (match
         List.filter (fun n -> List.mem n.Topology.Node.role roles) all
       with
      | [] -> all (* fallback: a role list matching nothing means "any" *)
      | l -> l)
  in
  Array.of_list (List.map (fun n -> n.Topology.Node.id) picked)

let tree t producer =
  match t.trees.(producer) with
  | Some tr -> tr
  | None ->
    let tr = Topology.Dijkstra.run t.g producer in
    t.trees.(producer) <- Some tr;
    tr

let routable t src dst =
  src <> dst && Topology.Dijkstra.reachable (tree t src) dst

let create ?(producers = []) ?(consumers = []) ?(affinity = 0.) ~seed g =
  if Topology.Graph.node_count g < 2 then
    invalid_arg "Session.create: graph has fewer than two nodes";
  if not (affinity >= 0. && affinity <= 1.) then
    invalid_arg "Session.create: affinity outside [0,1]";
  let t =
    {
      g;
      producers = nodes_with_roles g producers;
      consumers = nodes_with_roles g consumers;
      rng = Sim.Rng.create seed;
      affinity;
      last = None;
      trees = Array.make (Topology.Graph.node_count g) None;
    }
  in
  let any_routable =
    Array.exists
      (fun p -> Array.exists (fun c -> routable t p c) t.consumers)
      t.producers
  in
  if not any_routable then
    invalid_arg "Session.create: no routable (producer, consumer) pair";
  t

let producers t = Array.to_list t.producers
let consumers t = Array.to_list t.consumers

let draw t =
  let rec go () =
    let p = t.producers.(Sim.Rng.int t.rng (Array.length t.producers)) in
    let c = t.consumers.(Sim.Rng.int t.rng (Array.length t.consumers)) in
    if routable t p c then (p, c) else go ()
  in
  (* session affinity: repeat the previous pair with probability
     [affinity] — consecutive requests from the same client hit the
     same server, concentrating load on a few paths (the EBONE/VSNL
     hot-pair scenarios).  At affinity 0 the branch makes no RNG draw
     at all, so existing request streams stay byte-identical. *)
  let pair =
    match t.last with
    | Some pc when t.affinity > 0. && Sim.Rng.float t.rng 1. < t.affinity ->
      pc
    | Some _ | None -> go ()
  in
  t.last <- Some pair;
  pair
