type spec = {
  seed : int64;
  horizon : float;
  max_requests : int;
  objects : int;
  alpha : float;
  chunk_min : int;
  chunk_max : int;
  chunk_shape : float;
  rate : float;
  diurnal_amplitude : float;
  diurnal_period : float;
  bursts : Arrivals.burst list;
  producers : Topology.Node.role list;
  consumers : Topology.Node.role list;
  affinity : float;
}

let default =
  {
    seed = 1L;
    horizon = 10.;
    max_requests = 256;
    objects = 64;
    alpha = 0.8;
    chunk_min = 4;
    chunk_max = 64;
    chunk_shape = 1.2;
    rate = 8.;
    diurnal_amplitude = 0.;
    diurnal_period = 86_400.;
    bursts = [];
    producers = [];
    consumers = [];
    affinity = 0.;
  }

(* The generator state behind one traversal of the stream: built
   lazily at the first force, one request per subsequent force.  The
   draw order (catalogue object, then session pair, per arrival) is
   the contract — [requests] and [requests_seq] must stay
   byte-identical. *)
let requests_seq spec g =
  if spec.horizon <= 0. then invalid_arg "Gen.requests: horizon <= 0";
  if spec.max_requests < 0 then invalid_arg "Gen.requests: max_requests < 0";
  let make () =
    (* four independent sub-seeds derived from the one spec seed: the
       draws of one component never shift another's stream *)
    let root = Sim.Rng.create spec.seed in
    let sub () = Sim.Rng.next_int64 root in
    let catalog_seed = sub () in
    let arrival_seed = sub () in
    let session_seed = sub () in
    let object_seed = sub () in
    let catalog =
      Catalog.create ~alpha:spec.alpha ~chunk_shape:spec.chunk_shape
        ~chunk_min:spec.chunk_min ~chunk_max:spec.chunk_max
        ~objects:spec.objects ~seed:catalog_seed ()
    in
    let arrivals =
      Arrivals.create ~diurnal_amplitude:spec.diurnal_amplitude
        ~diurnal_period:spec.diurnal_period ~bursts:spec.bursts
        ~rate:spec.rate ~seed:arrival_seed ()
    in
    let session =
      Session.create ~producers:spec.producers ~consumers:spec.consumers
        ~affinity:spec.affinity ~seed:session_seed g
    in
    let object_rng = Sim.Rng.create object_seed in
    (catalog, arrivals, session, object_rng)
  in
  let rec step state n () =
    if n >= spec.max_requests then Seq.Nil
    else begin
      let ((catalog, arrivals, session, object_rng) as state) =
        match state with Some s -> s | None -> make ()
      in
      let at = Arrivals.next arrivals in
      if at >= spec.horizon then Seq.Nil
      else begin
        let content = Catalog.draw catalog object_rng in
        let src, dst = Session.draw session in
        let r =
          {
            Request.start = at;
            src;
            dst;
            content;
            chunks = Catalog.chunks catalog content;
          }
        in
        Seq.Cons (r, step (Some state) (n + 1))
      end
    end
  in
  (* memoized: the generator state is imperative (three RNG streams),
     so a bare thunk chain would misdraw if any prefix were forced
     twice — memoization makes the stream persistent like a list *)
  Seq.memoize (step None 0)

let requests spec g = List.of_seq (requests_seq spec g)

let offered_chunks spec =
  (* base-rate expectation with the catalogue's expected chunk count:
     E[chunks] under the bounded Pareto, not a sampled mean *)
  let lo = float_of_int spec.chunk_min
  and hi_excl = float_of_int (spec.chunk_max + 1)
  and a = spec.chunk_shape in
  let mean =
    if spec.chunk_min = spec.chunk_max then lo
    else if Float.abs (a -. 1.) < 1e-9 then
      (* shape 1: E[X] = log(H/L) * L*H/(H-L) for the truncated law *)
      lo *. hi_excl /. (hi_excl -. lo) *. log (hi_excl /. lo)
    else
      let c = 1. -. ((lo /. hi_excl) ** a) in
      a /. (a -. 1.) /. c
      *. (lo -. (hi_excl *. ((lo /. hi_excl) ** a)))
  in
  spec.rate *. spec.horizon *. mean
