let save oc requests =
  let buf = Buffer.create 4096 in
  List.iter
    (fun r ->
      Obs.Json.to_buffer buf (Request.to_json r);
      Buffer.add_char buf '\n';
      if Buffer.length buf > 65536 then begin
        Buffer.output_buffer oc buf;
        Buffer.clear buf
      end)
    requests;
  Buffer.output_buffer oc buf

let save_file path requests =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> save oc requests)

let load ?max_requests ic =
  let reader = Obs.Json.Reader.of_channel ic in
  let limit = Option.value max_requests ~default:max_int in
  let rec go acc n =
    if n >= limit then Ok (List.rev acc)
    else
      match Obs.Json.Reader.next reader with
      | None -> Ok (List.rev acc)
      | Some (Error msg) -> Error msg
      | Some (Ok j) ->
        (match Request.of_json j with
        | Ok r -> go (r :: acc) (n + 1)
        | Error msg ->
          Error
            (Printf.sprintf "line %d: %s"
               (Obs.Json.Reader.line_no reader)
               msg))
  in
  go [] 0

let load_file ?max_requests path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> load ?max_requests ic)

let validate g requests =
  let n = Topology.Graph.node_count g in
  let rec go i = function
    | [] -> Ok ()
    | r :: rest ->
      if r.Request.src < 0 || r.Request.src >= n then
        Error (Printf.sprintf "request %d: src %d outside graph" i r.Request.src)
      else if r.Request.dst < 0 || r.Request.dst >= n then
        Error (Printf.sprintf "request %d: dst %d outside graph" i r.Request.dst)
      else if r.Request.src = r.Request.dst then
        Error (Printf.sprintf "request %d: src = dst" i)
      else go (i + 1) rest
  in
  go 0 requests
