(** Per-link detour candidates for the chunk-level router.

    Memoised view over {!Topology.Detour.detours_via}: for each
    directed link, the list of detour hops — the first link to take
    and the node sequence a deflected packet must then visit to rejoin
    the primary path at the far end of the protected link. *)

type candidate = {
  first_link : Topology.Link.t;      (** the deflection hop *)
  rest : Topology.Node.id list;      (** nodes after the first hop, ending
                                         at the protected link's dst *)
  links : Topology.Link.t list;      (** every link of the detour path,
                                         [first_link] included — used to
                                         check queue room along the whole
                                         detour (the paper's one-hop
                                         neighbour state exchange) *)
  hops : int;                        (** total detour path length *)
}

type t

val create : ?max_intermediate:int -> Topology.Graph.t -> t
(** [max_intermediate] defaults to 2. *)

val candidates : t -> Topology.Link.t -> candidate list
(** Shortest detours first; empty when the link has none within the
    depth bound. *)

val has_detour : t -> Topology.Link.t -> bool
