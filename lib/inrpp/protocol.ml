module Graph = Topology.Graph
module Link = Topology.Link
module Path = Topology.Path
module Net = Chunksim.Net
module Packet = Chunksim.Packet
module Trace = Chunksim.Trace

type flow_spec = {
  src : Topology.Node.id;
  dst : Topology.Node.id;
  chunks : int;
  start : float;
  content : int option;
}

let flow_spec ?(start = 0.) ?content ~src ~dst chunks =
  if chunks <= 0 then invalid_arg "Protocol.flow_spec: chunks <= 0";
  if src = dst then invalid_arg "Protocol.flow_spec: src = dst";
  if start < 0. then invalid_arg "Protocol.flow_spec: negative start";
  { src; dst; chunks; start; content }

type flow_result = {
  spec : flow_spec;
  fct : float option;
  chunks_received : int;
  duplicates : int;
  requests_sent : int;
}

type result = {
  flows : flow_result array;
  completed : int;
  sim_time : float;
  total_drops : int;
  forwarded_data : int;
  detoured : int;
  custody_stored : int;
  custody_released : int;
  bp_engages : int;
  bp_releases : int;
  cache_hits : int;
  phase_transitions : int;
  peak_custody_bits : float;
  mean_utilisation : float;
  goodput : float;
  engine_events : int;
  chunks_lost_in_custody : int;
  failovers : int;
  recovery_time : float option;
  shed : int;
  detours_refused : int;
  collapse_episodes : int;
  collapse_recovery_time : float option;
  flow_entries_live : int;
  flow_entries_peak : int;
  flow_entries_recycled : int;
  flow_table_bytes : int;
  trace : Chunksim.Trace.t option;
}

(* sampler encoding of an interface phase: -1 = no estimator yet *)
let phase_value = function
  | None -> -1.
  | Some Phase.Push_data -> 0.
  | Some Phase.Detour -> 1.
  | Some Phase.Backpressure -> 2.

let phase_names = [| "push"; "detour"; "backpressure" |]

let run ?(cfg = Config.default) ?(horizon = 60.) ?(collect_trace = false)
    ?loss_rate ?obs ?check ?faults ?workload ?overload g specs =
  (match Config.validate cfg with
  | Ok _ -> ()
  | Error msg -> invalid_arg ("Protocol.run: " ^ msg));
  (match overload with
  | Some ov -> Overload.Config.validate ov
  | None -> ());
  (* generated flows ride behind the static list so existing scenarios
     keep their flow ids; generation is a pure function of (spec,
     graph), so a run with a workload is as replayable as one without.
     The generator is consumed as a lazy stream in one pass — no
     materialised request list, no intermediate append — so very long
     workloads cost only the final spec list. *)
  let specs =
    match workload with
    | None -> specs
    | Some w ->
      List.of_seq
        (Seq.append (List.to_seq specs)
           (Seq.map
              (fun (r : Workload.Request.t) ->
                {
                  src = r.Workload.Request.src;
                  dst = r.Workload.Request.dst;
                  chunks = r.Workload.Request.chunks;
                  start = r.Workload.Request.start;
                  content = Some r.Workload.Request.content;
                })
              (Workload.Gen.requests_seq w g)))
  in
  if specs = [] then invalid_arg "Protocol.run: no flows";
  if horizon <= 0. then invalid_arg "Protocol.run: horizon <= 0";
  let pitless = cfg.Config.pitless in
  let total_flows = List.length specs in
  let fcts = Array.make total_flows None in
  (* PIT-less label stacks, per flow: the remaining nodes to the
     consumer (stamped onto data at the sender) and to the producer
     (stamped onto requests at the receiver).  Route reconvergence
     re-stamps them; in-flight packets ride their stale stack out. *)
  let data_routes = Array.make total_flows [] in
  let req_routes = Array.make total_flows [] in
  (* every node a flow's state was installed on, including nodes added
     by reconvergence — the teardown set (cfg.flow_teardown) *)
  let install_sites = Array.make total_flows [] in
  let eng = Sim.Engine.create () in
  let net =
    let discipline =
      if cfg.Config.drr_scheduler then
        Chunksim.Iface.Drr cfg.Config.chunk_bits
      else Chunksim.Iface.Fifo_discipline
    in
    Net.create ~queue_bits:cfg.Config.queue_bits
      ~speed_factor:cfg.Config.speed_factor ~discipline ?loss_rate eng g
  in
  let trace =
    if collect_trace || Option.is_some obs || Option.is_some check then
      Some (Trace.create ())
    else None
  in
  (match (obs, trace) with
  | Some o, Some tr -> Obs.Observer.attach_trace o tr
  | _ -> ());
  (* span tracing: chunk-lifecycle events exist only when an observer
     carries a span collector, so every other run — goldens, bench,
     check, differential — sees the unchanged event stream *)
  let spans_on =
    match obs with
    | Some o -> Option.is_some (Obs.Observer.spans o)
    | None -> false
  in
  (match trace with
  | Some tr when spans_on -> Trace.set_lifecycle tr true
  | _ -> ());
  let recorder =
    match obs with Some o -> Obs.Observer.recorder o | None -> None
  in
  let detours =
    Detour_table.create ~max_intermediate:(max 1 cfg.Config.max_detour) g
  in
  (* the link-state view exists in every run (all-up without faults,
     which is behaviourally identical to not having one) so router
     wiring does not depend on whether a schedule was passed *)
  let link_state = Topology.Link_state.create g in
  let faults_active =
    match faults with
    | Some s -> not (Fault.Schedule.is_empty s)
    | None -> false
  in
  let routers =
    Array.init (Graph.node_count g) (fun node ->
        Router.create ~cfg ~net ~node ~detours ~link_state ?trace ?overload ())
  in
  (* neighbour-pressure oracle for detour refusal: each router can ask
     any node's custody occupancy fraction.  Installed only when the
     overload config would ever consult it. *)
  (match overload with
  | Some ov when ov.Overload.Config.neighbor_pressure < infinity ->
    let pressure node =
      let cache = Router.cache routers.(node) in
      Chunksim.Cache.custody_occupancy cache /. Chunksim.Cache.capacity cache
    in
    Array.iter (fun r -> Router.set_neighbor_pressure r pressure) routers
  | Some _ | None -> ());
  (* collapse watchdog: sliding-window goodput over consumer
     deliveries; a collapse dumps the flight recorder (when armed) so
     the events leading into the episode are on disk for post-mortem *)
  let watchdog =
    match overload with
    | Some ov when Overload.Config.watchdog_enabled ov ->
      Some
        (Obs.Watchdog.create ~window:ov.Overload.Config.watchdog_window
           ~collapse_ratio:ov.Overload.Config.collapse_ratio
           ~recovery_ratio:ov.Overload.Config.recovery_ratio
           ~on_collapse:(fun ~time ~rate ~peak ->
             match recorder with
             | Some rc ->
               Obs.Recorder.dump rc
                 ~reason:
                   (Printf.sprintf
                      "goodput collapse: %.3g bps in window (peak %.3g)" rate
                      peak)
                 ~time
             | None -> ())
           ())
    | Some _ | None -> None
  in
  (* wire-time span taps: the interface hands back each data packet's
     virtual transmission start (possibly earlier than now — see
     Trace.Tx_begin), recorded against the packed chunk key *)
  (match trace with
  | Some tr when spans_on ->
    Net.iter_ifaces net (fun i ->
        let li = (Chunksim.Iface.link i).Link.id in
        Chunksim.Iface.set_span_tap i
          (Some
             (fun start p ->
               match p.Packet.header with
               | Packet.Data { flow; idx; _ } ->
                 Trace.record tr ~time:start
                   (Trace.Tx_begin { link = li; flow; idx })
               | Packet.Request _ | Packet.Backpressure _ -> ())))
  | _ -> ());
  (* engine self-profiler: attribute wall-clock and minor-allocation
     deltas per event kind.  Kind ids are interned once here; marking
     is one store per event, and the whole feature is a single branch
     in the engine loop when no observer asked for it. *)
  let profiling =
    match obs with
    | Some o when Obs.Observer.profile_requested o ->
      (match Obs.Observer.clock o with
      | Some c -> Sim.Engine.profile_start ~clock:c eng
      | None -> Sim.Engine.profile_start eng);
      true
    | _ -> false
  in
  let k_tick = if profiling then Sim.Engine.profile_kind eng "tick" else 0 in
  let k_drain = if profiling then Sim.Engine.profile_kind eng "drain" else 0 in
  let k_sampler =
    if profiling then Sim.Engine.profile_kind eng "sampler" else 0
  in
  let k_flow_start =
    if profiling then Sim.Engine.profile_kind eng "flow_start" else 0
  in
  if profiling then begin
    let k_arrival = Sim.Engine.profile_kind eng "packet" in
    Net.iter_ifaces net (fun i ->
        Chunksim.Iface.set_profile_kind i k_arrival)
  end;
  (* invariant checkers: streaming checkers tap the trace, the custody
     ledger rides the estimator-tick probe (no extra engine events),
     and conservation is fed from the sender/consumer wrappers below *)
  let conservation =
    match (check, trace) with
    | Some chk, Some tr ->
      Check.Invariant.attach tr (Check.Invariant.phase_legality chk);
      Check.Invariant.attach tr (Check.Invariant.bp_ordering chk);
      let lossy = match loss_rate with Some r -> r > 0. | None -> false in
      let cons = Check.Invariant.Conservation.create ~lossy chk in
      Check.Invariant.attach tr (Check.Invariant.Conservation.handler cons);
      Array.iter
        (fun r ->
          Check.Invariant.custody_ledger chk
            ~name:(Printf.sprintf "node %d" (Router.node r))
            (fun () ->
              let cache = Router.cache r in
              let backlog =
                List.fold_left
                  (fun acc f ->
                    acc + Chunksim.Cache.custody_backlog cache ~flow:f)
                  0
                  (Chunksim.Cache.flows_in_custody cache)
              in
              (Router.custody_packet_count r, backlog)))
        routers;
      Some cons
    | _ -> None
  in
  (* flight recorder: dump the recent-event ring the instant an
     invariant trips, while the state that tripped it is still inside
     the window *)
  (match (check, recorder) with
  | Some chk, Some rc ->
    Check.Invariant.on_violation chk (fun v ->
        Obs.Recorder.dump rc
          ~reason:("invariant: " ^ v.Check.Invariant.checker)
          ~time:v.Check.Invariant.time)
  | _ -> ());
  (* fault injection: the driver flips interfaces and detaches handlers
     mechanically; the callbacks layer protocol recovery (router
     failover, custody wipe attribution) and accounting on top.
     Recovery time is measured from each disruption to the next
     delivery anywhere in the network. *)
  let pending_disruptions = ref [] in
  let recovery_total = ref 0. in
  let recovery_count = ref 0 in
  let note_recovery_delivery now =
    match !pending_disruptions with
    | [] -> ()
    | ds ->
      List.iter
        (fun t0 ->
          recovery_total := !recovery_total +. (now -. t0);
          incr recovery_count)
        ds;
      pending_disruptions := []
  in
  let kill_data (p : Packet.t) =
    match (conservation, p.Packet.header) with
    | Some cons, Packet.Data { flow; idx; _ } ->
      Check.Invariant.Conservation.note_fault_loss cons
        ~time:(Sim.Engine.now eng) ~flow ~idx
    | _ -> ()
  in
  (* Route reconvergence: detoured data is source-routed and survives
     an outage on its own, but requests and back-pressure carry only a
     flow id — their hop-by-hop state must follow the residual
     topology.  After every link or node transition each flow is
     re-resolved in the surviving graph and its per-node next hops
     updated in place; a partitioned flow keeps its stale state until
     the topology heals. *)
  let reconverge () =
    let forbidden (l : Link.t) =
      not (Topology.Link_state.is_up link_state l.Link.id)
    in
    List.iteri
      (fun flow_id (spec : flow_spec) ->
        (* a released flow stays released: resurrecting its entries
           would leak them for the rest of the run *)
        if cfg.Config.flow_teardown && fcts.(flow_id) <> None then ()
        else
          let tree =
            Topology.Dijkstra.run ~forbidden_links:forbidden g spec.src
          in
          match Topology.Dijkstra.path_to tree spec.dst with
          | None -> ()
          | Some path ->
            if pitless then begin
              data_routes.(flow_id) <- List.tl path.Path.nodes;
              req_routes.(flow_id) <- List.tl (List.rev path.Path.nodes)
            end
            else begin
              let nodes = Array.of_list path.Path.nodes in
              let links = Array.of_list path.Path.links in
              let n = Array.length nodes in
              for k = 0 to n - 1 do
                let data_link = if k < n - 1 then Some links.(k) else None in
                let req_link =
                  if k > 0 then Graph.find_link g nodes.(k) nodes.(k - 1)
                  else None
                in
                Router.reroute_flow routers.(nodes.(k)) ?content:spec.content
                  ~flow:flow_id ~data_link ~req_link ()
              done;
              if cfg.Config.flow_teardown then
                install_sites.(flow_id) <-
                  List.fold_left
                    (fun acc nd ->
                      if List.mem nd acc then acc else nd :: acc)
                    install_sites.(flow_id) path.Path.nodes
            end)
      specs
  in
  let driver =
    match faults with
    | Some sched when faults_active ->
      Net.set_fault_tap net kill_data;
      let record ev =
        match trace with
        | Some tr -> Trace.record tr ~time:(Sim.Engine.now eng) ev
        | None -> ()
      in
      let disrupted () =
        pending_disruptions := Sim.Engine.now eng :: !pending_disruptions
      in
      Some
        (Fault.Driver.install ~link_state
           ~on_link_down:(fun link ->
             record (Trace.Link_fault { link; up = false });
             disrupted ();
             Array.iter (fun r -> Router.on_link_down r link) routers;
             reconverge ())
           ~on_link_up:(fun link ->
             record (Trace.Link_fault { link; up = true });
             Array.iter (fun r -> Router.on_link_up r link) routers;
             reconverge ())
           ~on_node_crash:(fun node policy ->
             record (Trace.Node_fault { node; up = false });
             disrupted ();
             let policy =
               match policy with
               | Fault.Schedule.Wipe_custody -> `Wipe
               | Fault.Schedule.Preserve_custody -> `Preserve
             in
             let wiped = Router.crash routers.(node) ~policy in
             (match conservation with
             | Some cons ->
               let now = Sim.Engine.now eng in
               List.iter
                 (fun (flow, idx) ->
                   Check.Invariant.Conservation.note_fault_loss cons
                     ~time:now ~flow ~idx)
                 wiped
             | None -> ());
             (match trace with
             | Some tr when Trace.lifecycle tr ->
               let now = Sim.Engine.now eng in
               List.iter
                 (fun (flow, idx) ->
                   Trace.record tr ~time:now
                     (Trace.Custody_evicted { node; flow; idx }))
                 wiped
             | Some _ | None -> ());
             (match recorder with
             | Some rc when wiped <> [] ->
               Obs.Recorder.dump rc
                 ~reason:
                   (Printf.sprintf "custody wiped: node %d lost %d chunks"
                      node (List.length wiped))
                 ~time:(Sim.Engine.now eng)
             | Some _ | None -> ());
             reconverge ())
           ~on_node_restart:(fun node ->
             record (Trace.Node_fault { node; up = true });
             Router.restart routers.(node);
             reconverge ())
           ~on_data_killed:kill_data net sched)
    | _ -> None
  in
  (* per-node endpoint dispatch: several flows may start or end at the
     same node *)
  let producers : (int, (int, Sender.t) Hashtbl.t) Hashtbl.t =
    Hashtbl.create 8
  in
  let consumers : (int, (int, Receiver.t) Hashtbl.t) Hashtbl.t =
    Hashtbl.create 8
  in
  let endpoint_table tbl node =
    match Hashtbl.find_opt tbl node with
    | Some sub -> sub
    | None ->
      let sub = Hashtbl.create 4 in
      Hashtbl.add tbl node sub;
      sub
  in
  let completed = ref 0 in
  let finished_at = ref None in
  let all_done () = !completed = total_flows in
  (* distribution metrics, observed at the receivers: per-flow
     completion times and per-chunk queueing delay (arrival time minus
     send timestamp minus the primary path's unloaded latency, so a
     detoured chunk shows its detour cost as queueing).  Histograms
     exist only when an observer asks; the handlers stay callback-free
     otherwise. *)
  let base_delay = Array.make total_flows 0. in
  let fct_hist, qdelay_hist =
    match obs with
    | None -> (None, None)
    | Some o ->
      let reg = Obs.Observer.registry o in
      ( Some
          (Obs.Metric.histogram reg ~lo:0. ~hi:horizon ~bins:64
             "flow_fct_seconds"),
        Some
          (Array.init total_flows (fun i ->
               Obs.Metric.histogram reg
                 ~labels:[ ("flow", string_of_int i) ]
                 ~lo:0. ~hi:10. ~bins:50 "chunk_queueing_delay_seconds")) )
  in
  (* set up each flow along its shortest path *)
  let receivers = Array.make total_flows None in
  List.iteri
    (fun flow_id spec ->
      let path =
        match Topology.Dijkstra.shortest_path g spec.src spec.dst with
        | Some p -> p
        | None ->
          invalid_arg
            (Printf.sprintf "Protocol.run: flow %d -> %d unroutable" spec.src
               spec.dst)
      in
      let nodes = Array.of_list path.Path.nodes in
      let links = Array.of_list path.Path.links in
      base_delay.(flow_id) <-
        List.fold_left
          (fun acc (l : Link.t) ->
            acc +. l.Link.delay
            +. (cfg.Config.chunk_bits
               /. (l.Link.capacity *. cfg.Config.speed_factor)))
          0. path.Path.links;
      let n = Array.length nodes in
      if pitless then begin
        (* no router state: the endpoints carry the whole path as a
           label stack — data towards the consumer, requests towards
           the producer *)
        data_routes.(flow_id) <- List.tl path.Path.nodes;
        req_routes.(flow_id) <- List.tl (List.rev path.Path.nodes)
      end
      else begin
        for k = 0 to n - 1 do
          let data_link = if k < n - 1 then Some links.(k) else None in
          let req_link =
            if k > 0 then Graph.find_link g nodes.(k) nodes.(k - 1) else None
          in
          Router.install_flow routers.(nodes.(k)) ?content:spec.content
            ~flow:flow_id ~data_link ~req_link ()
        done;
        install_sites.(flow_id) <- path.Path.nodes
      end;
      (* senders sharing an outgoing link pace at its processor-sharing
         share (§3.2: flows multiplexed processor-sharing) *)
      let pace_rate =
        match path.Path.links with
        | first :: _ ->
          let sharers =
            List.fold_left
              (fun acc (other : flow_spec) ->
                match Topology.Dijkstra.shortest_path g other.src other.dst with
                | Some op -> begin
                  match op.Path.links with
                  | f2 :: _ when f2.Link.id = first.Link.id -> acc + 1
                  | _ -> acc
                end
                | None -> acc)
              0 specs
          in
          first.Link.capacity *. cfg.Config.speed_factor
          /. float_of_int (max 1 sharers)
        | [] -> cfg.Config.chunk_bits (* unreachable: src <> dst *)
      in
      let transmit =
        let src_router = routers.(spec.src) in
        let base p =
          (* a crashed producer node transmits nothing (and the chunk is
             not counted as pushed — it never reached any wire) *)
          if not (Router.is_crashed src_router) then begin
            (match conservation with
            | Some cons -> (
              match p.Packet.header with
              | Packet.Data { flow; idx; _ } ->
                Check.Invariant.Conservation.note_push cons ~flow ~idx
              | _ -> ())
            | None -> ());
            let p =
              if pitless then begin
                match p.Packet.header with
                | Packet.Data d ->
                  {
                    p with
                    Packet.header =
                      Packet.Data
                        { d with detour_route = data_routes.(flow_id) };
                  }
                | Packet.Request _ | Packet.Backpressure _ -> p
              end
              else p
            in
            Router.originate_data src_router p
          end
        in
        base
      in
      let sender =
        Sender.create ~cfg ~eng ?trace ~flow:flow_id
          ~total_chunks:spec.chunks ~pace_rate ~transmit ()
      in
      Hashtbl.replace (endpoint_table producers spec.src) flow_id sender;
      let receiver =
        Receiver.create ~cfg ~eng ~flow:flow_id ~total_chunks:spec.chunks
          ~send_request:(fun p ->
            let p =
              if pitless then begin
                match p.Packet.header with
                | Packet.Request r ->
                  {
                    p with
                    Packet.header =
                      Packet.Request { r with route = req_routes.(flow_id) };
                  }
                | Packet.Data _ | Packet.Backpressure _ -> p
              end
              else p
            in
            Net.inject net ~at:spec.dst p)
          ~on_complete:(fun ~fct ->
            fcts.(flow_id) <- Some fct;
            (* teardown: recycle this flow's entry at every node it was
               installed on (fcts is set first, so reconvergence will
               not resurrect the entries) *)
            if cfg.Config.flow_teardown then begin
              List.iter
                (fun nd -> Router.release_flow routers.(nd) ~flow:flow_id)
                install_sites.(flow_id);
              install_sites.(flow_id) <- []
            end;
            (match fct_hist with
            | Some h -> Obs.Metric.observe h fct
            | None -> ());
            incr completed;
            if all_done () then finished_at := Some (Sim.Engine.now eng);
            match trace with
            | Some tr ->
              Trace.record tr ~time:(Sim.Engine.now eng)
                (Trace.Flow_complete { flow = flow_id; fct })
            | None -> ())
          ?overload ()
      in
      receivers.(flow_id) <- Some receiver;
      Hashtbl.replace (endpoint_table consumers spec.dst) flow_id receiver)
    specs;
  (* install node handlers: endpoint dispatch sits on top of routing *)
  for node = 0 to Graph.node_count g - 1 do
    let router = routers.(node) in
    (match Hashtbl.find_opt producers node with
    | Some senders ->
      Router.set_local_producer router (fun p ->
          match Hashtbl.find_opt senders (Packet.flow p) with
          | Some s -> Sender.handle s p
          | None -> ())
    | None -> ());
    (match Hashtbl.find_opt consumers node with
    | Some recvs ->
      let observe_data =
        match qdelay_hist with
        | None -> fun (_ : Packet.t) -> ()
        | Some hs ->
          fun (p : Packet.t) -> (
            match p.Packet.header with
            | Packet.Data { flow; born; _ } ->
              let d = Sim.Engine.now eng -. born -. base_delay.(flow) in
              Obs.Metric.observe hs.(flow) (Float.max 0. d)
            | _ -> ())
      in
      Router.set_local_consumer router (fun p ->
          observe_data p;
          (match trace with
          | Some tr when Trace.lifecycle tr -> begin
            match p.Packet.header with
            | Packet.Data { flow; idx; _ } ->
              Trace.record tr ~time:(Sim.Engine.now eng)
                (Trace.Delivered { node; flow; idx })
            | Packet.Request _ | Packet.Backpressure _ -> ()
          end
          | Some _ | None -> ());
          (if Option.is_some driver then
             match p.Packet.header with
             | Packet.Data _ ->
               note_recovery_delivery (Sim.Engine.now eng)
             | _ -> ());
          (match conservation with
          | Some cons -> (
            match p.Packet.header with
            | Packet.Data { flow; idx; _ } ->
              Check.Invariant.Conservation.note_delivery cons
                ~time:(Sim.Engine.now eng) ~flow ~idx
            | _ -> ())
          | None -> ());
          (match watchdog with
          | Some wd -> (
            match p.Packet.header with
            | Packet.Data _ ->
              Obs.Watchdog.note_delivery wd ~time:(Sim.Engine.now eng)
                ~bits:p.Packet.size
            | _ -> ())
          | None -> ());
          match Hashtbl.find_opt recvs (Packet.flow p) with
          | Some r -> Receiver.handle_data r p
          | None -> ())
    | None -> ());
    Net.set_handler net node (Router.handler router)
  done;
  (* observability: callback metrics read the counters the stack
     already maintains (zero hot-path cost), and a periodic sampler
     records per-interface phase / rate / queue and per-node custody
     timeseries at the estimator-tick resolution *)
  (match obs with
  | None -> ()
  | Some o ->
    let reg = Obs.Observer.registry o in
    Array.iter
      (fun r ->
        let labels = [ ("node", string_of_int (Router.node r)) ] in
        let c = Router.counters r in
        let fi name get =
          Obs.Metric.callback reg ~labels name (fun () ->
              float_of_int (get ()))
        in
        fi "router_forwarded_data_total" (fun () -> c.Router.forwarded_data);
        fi "router_detoured_total" (fun () -> c.Router.detoured);
        fi "router_custody_stored_total" (fun () -> c.Router.custody_stored);
        fi "router_custody_released_total" (fun () ->
            c.Router.custody_released);
        fi "router_dropped_total" (fun () -> c.Router.dropped);
        fi "router_bp_engages_total" (fun () -> c.Router.bp_engages);
        fi "router_bp_releases_total" (fun () -> c.Router.bp_releases);
        fi "router_cache_hits_total" (fun () -> c.Router.cache_hits);
        fi "router_phase_transitions_total" (fun () ->
            Router.phase_transitions r);
        fi "router_bp_active_flows" (fun () -> Router.bp_active_flows r);
        fi "router_flow_entries_live" (fun () -> Router.flow_entries_live r);
        fi "router_flow_entries_peak" (fun () -> Router.flow_entries_peak r);
        fi "router_flow_entries_recycled_total" (fun () ->
            Router.flow_entries_recycled r);
        fi "router_flow_table_bytes" (fun () -> Router.flow_table_bytes r);
        (* overload counters exist only when the control layer is on,
           so default runs export byte-identical metric sets *)
        if Option.is_some overload then begin
          fi "router_shed_total" (fun () -> c.Router.shed);
          fi "router_detours_refused_total" (fun () -> c.Router.detours_refused)
        end;
        Obs.Metric.callback reg ~labels "router_custody_occupancy_bits"
          (fun () -> Chunksim.Cache.custody_occupancy (Router.cache r)))
      routers;
    (match watchdog with
    | Some wd ->
      Obs.Metric.callback reg "watchdog_collapse_episodes" (fun () ->
          float_of_int (Obs.Watchdog.episodes wd));
      Obs.Metric.callback reg "watchdog_in_collapse" (fun () ->
          if Obs.Watchdog.in_collapse wd then 1. else 0.);
      Obs.Metric.callback reg "watchdog_recovery_seconds_total" (fun () ->
          Obs.Watchdog.total_recovery_time wd);
      Obs.Metric.callback reg "watchdog_goodput_peak_bps" (fun () ->
          Obs.Watchdog.peak wd)
    | None -> ());
    Net.iter_ifaces net (fun i ->
        let l = Chunksim.Iface.link i in
        let labels =
          [ ("link", string_of_int l.Link.id);
            ("src", string_of_int l.Link.src);
            ("dst", string_of_int l.Link.dst) ]
        in
        let f name fn = Obs.Metric.callback reg ~labels name fn in
        f "iface_tx_bits_total" (fun () -> Chunksim.Iface.tx_bits i);
        f "iface_drops_total" (fun () ->
            float_of_int (Chunksim.Iface.drops i));
        f "iface_queue_bits" (fun () -> Chunksim.Iface.queue_occupancy i);
        f "iface_utilisation" (fun () ->
            Chunksim.Iface.utilisation i ~now:(Sim.Engine.now eng)));
    Hashtbl.iter
      (fun node senders ->
        Hashtbl.iter
          (fun flow s ->
            let labels =
              [ ("node", string_of_int node); ("flow", string_of_int flow) ]
            in
            let f name fn = Obs.Metric.callback reg ~labels name fn in
            f "sender_tx_packets_total" (fun () ->
                float_of_int (Sender.sent_packets s));
            f "sender_backlog_chunks" (fun () ->
                float_of_int (Sender.backlog s));
            f "sender_in_backpressure" (fun () ->
                if Sender.in_backpressure s then 1. else 0.))
          senders)
      producers;
    Hashtbl.iter
      (fun node recvs ->
        Hashtbl.iter
          (fun flow r ->
            let labels =
              [ ("node", string_of_int node); ("flow", string_of_int flow) ]
            in
            let f name fn = Obs.Metric.callback reg ~labels name fn in
            f "receiver_requests_total" (fun () ->
                float_of_int (Receiver.requests_sent r));
            f "receiver_duplicates_total" (fun () ->
                float_of_int (Receiver.duplicates r));
            f "receiver_chunks_received" (fun () ->
                float_of_int (Session.received_count (Receiver.session r))))
          recvs)
      consumers;
    let smp =
      Obs.Observer.install_sampler o ~eng ~default_interval:cfg.Config.ti
    in
    (* attribute the sampler's own engine events to their profiler
       bucket (hooks run first on each tick), and when a wall clock
       was configured surface the sampler's self-observation — its
       tick count and cumulative probe time — as metrics.  Registered
       only then, so clockless runs export byte-identical output. *)
    if profiling then
      Obs.Sampler.on_sample smp (fun () ->
          Sim.Engine.profile_mark eng k_sampler);
    if Obs.Sampler.self_observing smp then begin
      Obs.Metric.callback reg "sampler_ticks_total" (fun () ->
          float_of_int (Obs.Sampler.ticks smp));
      Obs.Metric.callback reg "sampler_probe_seconds_total" (fun () ->
          Obs.Sampler.probe_seconds smp)
    end;
    Net.iter_ifaces net (fun i ->
        let l = Chunksim.Iface.link i in
        let r = routers.(l.Link.src) in
        let li = l.Link.id in
        let labels =
          [ ("node", string_of_int l.Link.src);
            ("link", string_of_int li) ]
        in
        let track name fn = ignore (Obs.Sampler.track smp ~labels name fn) in
        track "iface_phase" (fun () ->
            phase_value (Router.phase_of_link r li));
        track "iface_anticipated_bps" (fun () ->
            Option.value ~default:0. (Router.anticipated_rate_of_link r li));
        track "iface_anticipated_ratio" (fun () ->
            Option.value ~default:0. (Router.ratio_of_link r li));
        track "iface_queue_bits" (fun () ->
            Chunksim.Iface.queue_occupancy i);
        track "iface_utilisation" (fun () ->
            Chunksim.Iface.utilisation i ~now:(Sim.Engine.now eng));
        (* time-in-phase fractions, accumulated between samples *)
        let acc = [| 0.; 0.; 0. |] in
        let last_t = ref (Sim.Engine.now eng) in
        let last_ph = ref (-1) in
        Obs.Sampler.on_sample smp (fun () ->
            let t_now = Sim.Engine.now eng in
            if !last_ph >= 0 then
              acc.(!last_ph) <- acc.(!last_ph) +. (t_now -. !last_t);
            last_t := t_now;
            last_ph :=
              int_of_float (phase_value (Router.phase_of_link r li)));
        Array.iteri
          (fun pi pname ->
            let labels = ("phase", pname) :: labels in
            ignore
              (Obs.Sampler.track smp ~labels "iface_phase_occupancy"
                 (fun () ->
                   let tot = acc.(0) +. acc.(1) +. acc.(2) in
                   if tot <= 0. then 0. else acc.(pi) /. tot)))
          phase_names);
    Array.iter
      (fun r ->
        let labels = [ ("node", string_of_int (Router.node r)) ] in
        let track name fn = ignore (Obs.Sampler.track smp ~labels name fn) in
        track "custody_bits" (fun () ->
            Chunksim.Cache.custody_occupancy (Router.cache r));
        track "bp_active_flows" (fun () ->
            float_of_int (Router.bp_active_flows r));
        let c = Router.counters r in
        track "detoured_total" (fun () -> float_of_int c.Router.detoured))
      routers;
    (* fault observability only exists when a schedule is live, so a
       no-fault run's metric/timeseries output is byte-identical *)
    (match driver with
    | None -> ()
    | Some d ->
      let fc name fn =
        Obs.Metric.callback reg name (fun () -> float_of_int (fn ()))
      in
      fc "fault_link_downs_total" (fun () -> Fault.Driver.link_downs d);
      fc "fault_link_ups_total" (fun () -> Fault.Driver.link_ups d);
      fc "fault_node_crashes_total" (fun () -> Fault.Driver.node_crashes d);
      fc "fault_node_restarts_total" (fun () ->
          Fault.Driver.node_restarts d);
      fc "fault_control_drops_total" (fun () -> Fault.Driver.control_drops d);
      fc "fault_packet_kills_total" (fun () -> Net.total_fault_drops net);
      Net.iter_ifaces net (fun i ->
          let l = Chunksim.Iface.link i in
          ignore
            (Obs.Sampler.track smp
               ~labels:[ ("link", string_of_int l.Link.id) ]
               "link_up"
               (fun () ->
                 if Topology.Link_state.is_up link_state l.Link.id then 1.
                 else 0.))));
    Obs.Sampler.start ~stop:all_done smp);
  (* periodic estimator ticks and custody drains; track custody peak *)
  let peak_custody = ref 0. in
  ignore
  @@ Sim.Engine.schedule_periodic eng ~interval:cfg.Config.ti (fun () ->
      Sim.Engine.profile_mark eng k_tick;
      Array.iter
        (fun r ->
          Router.tick r;
          let occ = Chunksim.Cache.custody_occupancy (Router.cache r) in
          if occ > !peak_custody then peak_custody := occ)
        routers;
      (match check with
      | Some chk -> Check.Invariant.probe chk ~time:(Sim.Engine.now eng)
      | None -> ());
      (* the watchdog needs a heartbeat: a total stall delivers nothing,
         so without ticks there would be no edge to detect it on *)
      (match watchdog with
      | Some wd when not (all_done ()) ->
        Obs.Watchdog.tick wd ~time:(Sim.Engine.now eng)
      | Some _ | None -> ());
      not (all_done ()));
  ignore
  @@ Sim.Engine.schedule_periodic eng ~interval:(cfg.Config.ti /. 4.)
       (fun () ->
         Sim.Engine.profile_mark eng k_drain;
         Array.iter Router.drain routers;
         not (all_done ()));
  (* flow starts *)
  List.iteri
    (fun flow_id spec ->
      ignore
        (Sim.Engine.schedule eng ~delay:spec.start (fun () ->
             Sim.Engine.profile_mark eng k_flow_start;
             match receivers.(flow_id) with
             | Some r -> Receiver.start r
             | None -> ())))
    specs;
  Sim.Engine.run ~until:horizon eng;
  (* harvest the profiler before anything else touches the engine *)
  (match obs with
  | Some o when profiling ->
    Sim.Engine.profile_stop eng;
    Obs.Observer.set_profile_rows o (Sim.Engine.profile_rows eng)
  | _ -> ());
  (* a disruption with no delivery after it means recovery never
     happened: capture the tail of the run for post-mortem *)
  (match recorder with
  | Some rc when !pending_disruptions <> [] ->
    Obs.Recorder.dump rc
      ~reason:
        (Printf.sprintf "%d disruption(s) with no subsequent delivery"
           (List.length !pending_disruptions))
      ~time:(Sim.Engine.now eng)
  | Some _ | None -> ());
  (match check with
  | Some chk -> Check.Invariant.probe chk ~time:(Sim.Engine.now eng)
  | None -> ());
  (match conservation with
  | Some cons ->
    let in_custody =
      Array.fold_left
        (fun acc r -> acc + Router.custody_packet_count r)
        0 routers
    in
    let drops =
      Array.fold_left
        (fun acc r -> acc + (Router.counters r).Router.dropped)
        0 routers
    in
    Check.Invariant.Conservation.finish cons ~time:(Sim.Engine.now eng)
      ~quiescent:(all_done ()) ~in_custody ~drops
      ~wire_losses:(Net.total_wire_losses net)
  | None -> ());
  let sim_time =
    match !finished_at with
    | Some t -> t
    | None -> Sim.Engine.now eng
  in
  let sum f = Array.fold_left (fun acc r -> acc + f (Router.counters r)) 0 routers in
  let delivered_bits =
    List.fold_left
      (fun acc (spec, fr) ->
        ignore spec;
        acc +. (float_of_int fr *. cfg.Config.chunk_bits))
      0.
      (List.mapi
         (fun i spec ->
           ( spec,
             match receivers.(i) with
             | Some r -> Session.received_count (Receiver.session r)
             | None -> 0 ))
         specs)
  in
  let flows =
    Array.of_list
      (List.mapi
         (fun i spec ->
           let r = Option.get receivers.(i) in
           {
             spec;
             fct = fcts.(i);
             chunks_received = Session.received_count (Receiver.session r);
             duplicates = Receiver.duplicates r;
             requests_sent = Receiver.requests_sent r;
           })
         specs)
  in
  {
    flows;
    completed = !completed;
    sim_time;
    (* interface-queue refusals were handled by the routers (detour or
       custody); only router-level drops are real losses *)
    total_drops = sum (fun c -> c.Router.dropped);
    forwarded_data = sum (fun c -> c.Router.forwarded_data);
    detoured = sum (fun c -> c.Router.detoured);
    custody_stored = sum (fun c -> c.Router.custody_stored);
    custody_released = sum (fun c -> c.Router.custody_released);
    bp_engages = sum (fun c -> c.Router.bp_engages);
    bp_releases = sum (fun c -> c.Router.bp_releases);
    cache_hits = sum (fun c -> c.Router.cache_hits);
    phase_transitions =
      Array.fold_left (fun acc r -> acc + Router.phase_transitions r) 0 routers;
    peak_custody_bits = !peak_custody;
    mean_utilisation = Net.mean_utilisation net;
    goodput = (if sim_time > 0. then delivered_bits /. sim_time else 0.);
    engine_events = Sim.Engine.events_handled eng;
    chunks_lost_in_custody = sum (fun c -> c.Router.custody_wiped);
    failovers = sum (fun c -> c.Router.failovers);
    recovery_time =
      (if !recovery_count > 0 then
         Some (!recovery_total /. float_of_int !recovery_count)
       else None);
    shed = sum (fun c -> c.Router.shed);
    detours_refused = sum (fun c -> c.Router.detours_refused);
    collapse_episodes =
      (match watchdog with Some wd -> Obs.Watchdog.episodes wd | None -> 0);
    collapse_recovery_time =
      (match watchdog with
      | Some wd -> begin
        match Obs.Watchdog.recovery_times wd with
        | [] -> None
        | ts ->
          Some (List.fold_left ( +. ) 0. ts /. float_of_int (List.length ts))
      end
      | None -> None);
    flow_entries_live =
      Array.fold_left (fun acc r -> acc + Router.flow_entries_live r) 0 routers;
    flow_entries_peak =
      Array.fold_left (fun acc r -> acc + Router.flow_entries_peak r) 0 routers;
    flow_entries_recycled =
      Array.fold_left
        (fun acc r -> acc + Router.flow_entries_recycled r)
        0 routers;
    flow_table_bytes =
      Array.fold_left (fun acc r -> acc + Router.flow_table_bytes r) 0 routers;
    trace;
  }

let pp_result ppf r =
  Format.fprintf ppf
    "%d/%d flows done in %.3gs; goodput=%a util=%.3f detoured=%d custody=%d \
     (peak %a) bp=%d/%d drops=%d transitions=%d"
    r.completed (Array.length r.flows) r.sim_time Sim.Units.pp_rate r.goodput
    r.mean_utilisation r.detoured r.custody_stored Sim.Units.pp_size
    r.peak_custody_bits r.bp_engages r.bp_releases r.total_drops
    r.phase_transitions
