type route =
  | Primary
  | Via of int

type entry = {
  mutable route : route;
  mutable last : float;
}

type t = {
  gap : float;
  table : (int, entry) Hashtbl.t;
}

let create ~gap =
  if gap < 0. then invalid_arg "Flowlet.create: gap < 0";
  { gap; table = Hashtbl.create 32 }

let choose t ~flow ~now ~preferred =
  match Hashtbl.find_opt t.table flow with
  | None ->
    Hashtbl.add t.table flow { route = preferred; last = now };
    preferred
  | Some e ->
    if now -. e.last > t.gap then e.route <- preferred;
    e.last <- now;
    e.route

let current t ~flow =
  Option.map (fun e -> e.route) (Hashtbl.find_opt t.table flow)

let forget t ~flow = Hashtbl.remove t.table flow

let active_flows t = Hashtbl.length t.table
