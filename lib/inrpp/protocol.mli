(** End-to-end INRPP transfers over the chunk-level simulator.

    Wires routers on every node, a {!Sender} at each flow's producer
    and a {!Receiver} at its consumer, installs forward/reverse flow
    state along shortest paths, schedules the estimator ticks and
    custody drains, and runs the engine.  This is the entry point of
    the protocol-behaviour experiments (`phases`, `backpressure`,
    `protocols`) and of the examples. *)

type flow_spec = {
  src : Topology.Node.id;
  dst : Topology.Node.id;
  chunks : int;
  start : float;  (** seconds *)
  content : int option;
  (** popularity-cache key; two transfers of the same [content] hit
      each other's on-path copies when {!Config.t.icn_caching} is on *)
}

val flow_spec :
  ?start:float -> ?content:int -> src:Topology.Node.id ->
  dst:Topology.Node.id -> int -> flow_spec
(** [flow_spec ~src ~dst chunks]; [start] defaults to 0.
    @raise Invalid_argument if [chunks <= 0] or [src = dst]. *)

type flow_result = {
  spec : flow_spec;
  fct : float option;           (** completion time, [None] if unfinished *)
  chunks_received : int;
  duplicates : int;
  requests_sent : int;
}

type result = {
  flows : flow_result array;
  completed : int;
  sim_time : float;              (** when the run stopped *)
  total_drops : int;             (** interface + router drops *)
  forwarded_data : int;
  detoured : int;
  custody_stored : int;
  custody_released : int;
  bp_engages : int;
  bp_releases : int;
  cache_hits : int;               (** requests answered by on-path caches *)
  phase_transitions : int;
  peak_custody_bits : float;     (** max over routers and ticks *)
  mean_utilisation : float;
  goodput : float;               (** delivered application bits / sim_time *)
  engine_events : int;           (** events the engine processed *)
  chunks_lost_in_custody : int;
  (** custody chunks destroyed by [`Wipe]-policy node crashes *)
  failovers : int;
  (** flows moved onto (or back off) detours by link outages *)
  recovery_time : float option;
  (** mean time from a disruption (link down / node crash) to the next
      chunk delivery anywhere; [None] when no faults fired *)
  shed : int;
  (** custody admissions refused by overload control (threshold
      shedding + policy rejections); 0 without [?overload] *)
  detours_refused : int;
  (** detour candidates refused because the neighbour was pressured;
      0 without [?overload] *)
  collapse_episodes : int;
  (** collapse episodes the watchdog declared; 0 without a watchdog *)
  collapse_recovery_time : float option;
  (** mean time-to-recovery across recovered collapse episodes;
      [None] when no episode recovered (or no watchdog ran) *)
  flow_entries_live : int;
  (** flow-table entries still installed across all routers at the end
      of the run; 0 under PIT-less forwarding, and 0 after a fully
      completed run with [cfg.flow_teardown] on *)
  flow_entries_peak : int;
  (** summed per-router high-water marks of live entries *)
  flow_entries_recycled : int;
  (** released entries whose slot went back on a free list *)
  flow_table_bytes : int;
  (** approximate heap retained by the flow tables across all routers
      (see {!Router.flow_table_bytes}); ≈ 0 under PIT-less forwarding *)
  trace : Chunksim.Trace.t option;
}

val run :
  ?cfg:Config.t -> ?horizon:float -> ?collect_trace:bool ->
  ?loss_rate:float -> ?obs:Obs.Observer.t -> ?check:Check.Invariant.t ->
  ?faults:Fault.Schedule.t -> ?workload:Workload.Gen.spec ->
  ?overload:Overload.Config.t ->
  Topology.Graph.t -> flow_spec list -> result
(** [horizon] (default 60 s) bounds the run; the engine also stops as
    soon as every flow completes.  [loss_rate] injects seeded random
    wire loss on every link (failure-injection testing; default none —
    the protocol's own behaviour never drops unless the store
    overflows).

    [obs] instruments the run: router/interface/endpoint counters are
    registered as callback metrics (read at snapshot time — no
    hot-path cost), the observer's sinks are attached to the trace
    (implies trace collection, so [result.trace] is [Some _]), and a
    sampler records per-interface phase ([iface_phase],
    [iface_phase_occupancy] per phase label), anticipated rate
    ([iface_anticipated_bps]/[_ratio]), queue and utilisation series
    plus per-node [custody_bits], [bp_active_flows] and
    [detoured_total] at interval [cfg.ti] (or the observer's
    override).

    [check] enforces runtime invariants throughout the run (implies
    trace collection): phase-transition legality, back-pressure
    ordering and chunk conservation stream off the trace taps, and the
    custody-ledger probe rides the estimator tick.  Inspect the
    collector with [Check.Invariant.ok]/[report] after the run.

    [faults] replays a {!Fault.Schedule} against the run: link
    outages fail flows over onto detours (or engage back-pressure when
    no path survives), node crashes detach handlers and wipe or
    preserve custody, and control-loss bursts stress the request
    plane.  Custody lost to [`Wipe] crashes and packets destroyed on
    dead links are attributed to the conservation checker (when
    [check] is given) rather than reported as leaks.  An empty or
    absent schedule leaves the run bit-identical to a build without
    fault support.

    [workload] appends generated flows (Zipf catalogue, open-loop
    Poisson sessions — see {!Workload.Gen}) behind the static list;
    each request's catalogue object becomes the flow's [content] key,
    so a hot catalogue exercises the popularity region of the content
    stores when [cfg.icn_caching] is on.  Generation is a pure
    function of [(workload, g)], so runs stay bit-replayable.  The
    static list may be empty when a workload is given.  The request
    stream is consumed lazily ({!Workload.Gen.requests_seq}), so very
    long workloads never materialise an intermediate request list.

    With [cfg.pitless] no router flow state is installed at all: the
    sender stamps each data packet with the remaining path as a
    source-routed label stack (and the receiver its requests with the
    reverse), routers pop labels instead of consulting the flow table,
    and everything the paper builds on that state — custody, detours,
    back-pressure — is structurally off.  Route reconvergence
    re-stamps the label stacks instead of rerouting router entries.
    With [cfg.flow_teardown] a completed flow's entries are released
    (and their slots recycled) at every node the flow was installed
    on, including nodes added by reconvergence.

    [overload] switches on the graceful-degradation layer
    ({!Overload.Config}): pluggable custody admission at every router,
    load shedding and early back-pressure above the configured store
    pressures, refusal of detours into pressured neighbours, the
    receiver-side retransmission circuit breaker, and the collapse
    watchdog (whose episodes dump the observer's flight recorder when
    one is armed).  Absent — or set to {!Overload.Config.off} — the
    run is bit-identical to the pre-overload protocol.
    @raise Invalid_argument on an invalid config, no flows at all
    (empty static list and no or empty workload), or an unroutable
    flow. *)

val pp_result : Format.formatter -> result -> unit
