type t = {
  cfg : Config.t;
  eng : Sim.Engine.t;
  trace : Chunksim.Trace.t option;
  flow : int;
  total_chunks : int;
  pace_rate : float;
  transmit : Chunksim.Packet.t -> unit;
  pending : (int * bool) Queue.t;    (* (chunk, anticipated) awaiting pacing *)
  mutable highest_enqueued : int;    (* -1 before the first invitation *)
  mutable highest_sent : int;
  mutable busy : bool;               (* pacing timer armed *)
  mutable last_nc : int;
  mutable nc_repeats : int;
  mutable bp : bool;
  mutable tx_count : int;
  retx_at : (int, float) Hashtbl.t;
}

let create ~cfg ~eng ?trace ~flow ~total_chunks ~pace_rate ~transmit () =
  if total_chunks <= 0 then invalid_arg "Sender.create: total_chunks <= 0";
  if pace_rate <= 0. then invalid_arg "Sender.create: pace_rate <= 0";
  {
    cfg;
    eng;
    trace;
    flow;
    total_chunks;
    pace_rate;
    transmit;
    pending = Queue.create ();
    highest_enqueued = -1;
    highest_sent = -1;
    busy = false;
    last_nc = -1;
    nc_repeats = 0;
    bp = false;
    tx_count = 0;
    retx_at = Hashtbl.create 8;
  }

let now t = Sim.Engine.now t.eng

let send_chunk t ~anticipated idx =
  let p =
    Chunksim.Packet.data ~anticipated ~flow:t.flow ~idx ~born:(now t)
      t.cfg.Config.chunk_bits
  in
  t.tx_count <- t.tx_count + 1;
  if idx > t.highest_sent then t.highest_sent <- idx;
  t.transmit p

(* drain the backlog one transmission time apart *)
let rec service t =
  if not t.busy then begin
    match Queue.take_opt t.pending with
    | None -> ()
    | Some (idx, anticipated) ->
      t.busy <- true;
      send_chunk t ~anticipated idx;
      let gap = t.cfg.Config.chunk_bits /. t.pace_rate in
      ignore
        (Sim.Engine.schedule t.eng ~delay:gap (fun () ->
             t.busy <- false;
             service t))
  end

let retransmit_ok t idx =
  let current = now t in
  match Hashtbl.find_opt t.retx_at idx with
  | Some last when current -. last < t.cfg.Config.request_timeout /. 2. ->
    false
  | _ ->
    Hashtbl.replace t.retx_at idx current;
    true

let handle_request t ~nc ~ac =
  if nc < t.total_chunks then begin
    (* several requests in a row repeating the same Nc mean the
       receiver is stuck on a hole: retransmit that chunk.  One or two
       repeats are normal while detoured chunks arrive out of order. *)
    if nc = t.last_nc then t.nc_repeats <- t.nc_repeats + 1
    else begin
      t.last_nc <- nc;
      t.nc_repeats <- 0
    end;
    let stalled = t.nc_repeats >= 2 in
    if stalled && nc <= t.highest_sent && retransmit_ok t nc then begin
      (* lifecycle-gated (Trace.set_lifecycle): span consumers need the
         retransmit marker to flag polluted per-chunk attribution *)
      (match t.trace with
      | Some tr when Chunksim.Trace.lifecycle tr ->
        Chunksim.Trace.record tr ~time:(now t)
          (Chunksim.Trace.Retransmit { flow = t.flow; idx = nc })
      | Some _ | None -> ());
      send_chunk t ~anticipated:false nc
    end;
    if t.bp then begin
      (* closed loop: one new chunk per request *)
      if nc > t.highest_enqueued then begin
        t.highest_enqueued <- nc;
        send_chunk t ~anticipated:false nc
      end
    end
    else begin
      (* open loop: invite everything up to Ac into the paced backlog *)
      let start = t.highest_enqueued + 1 in
      let stop = min ac (t.total_chunks - 1) in
      for idx = start to stop do
        Queue.add (idx, idx > nc) t.pending
      done;
      if stop > t.highest_enqueued then t.highest_enqueued <- stop;
      service t
    end
  end

let enter_backpressure t =
  (* freeze the open-loop backlog; un-invite what was never sent so the
     closed loop re-issues it 1-for-1 *)
  t.bp <- true;
  Queue.clear t.pending;
  t.highest_enqueued <- t.highest_sent

let handle t (p : Chunksim.Packet.t) =
  match p.Chunksim.Packet.header with
  | Chunksim.Packet.Request { flow; nc; ac; _ } when flow = t.flow ->
    handle_request t ~nc ~ac
  | Chunksim.Packet.Backpressure { flow; engage } when flow = t.flow ->
    if engage then enter_backpressure t else t.bp <- false
  | Chunksim.Packet.Request _ | Chunksim.Packet.Backpressure _
  | Chunksim.Packet.Data _ ->
    ()

let pushed t = t.highest_sent + 1
let backlog t = Queue.length t.pending
let sent_packets t = t.tx_count
let in_backpressure t = t.bp
