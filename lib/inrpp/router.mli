(** INRPP router (paper §3.3).

    Per outgoing interface the router runs an anticipated-rate
    estimator and a phase machine; data is forwarded at line rate in
    push-data, deflected onto detour paths (flowlet granularity,
    source-routed to the rejoin node) in detour, and taken into
    custody with an explicit upstream notification in back-pressure.
    Custody drains back onto the primary interface as soon as it has
    room, and the notification is released once the store falls below
    its low watermark.

    A router also relays the two endpoint roles: requests reaching the
    producer node go to the local {!Sender}, data reaching the
    consumer node goes to the local {!Receiver}. *)

type t

type counters = {
  mutable forwarded_data : int;
  mutable detoured : int;
  mutable custody_stored : int;
  mutable custody_released : int;
  mutable dropped : int;
  mutable bp_engages : int;
  mutable bp_releases : int;
  mutable cache_hits : int;
  mutable failovers : int;      (* flows moved onto detours by an outage *)
  mutable custody_wiped : int;  (* custody chunks lost to crashes *)
  mutable shed : int;           (* admissions refused by overload control *)
  mutable detours_refused : int;(* detour candidates refused: neighbour pressure *)
}

val create :
  cfg:Config.t -> net:Chunksim.Net.t -> node:Topology.Node.id ->
  detours:Detour_table.t -> ?link_state:Topology.Link_state.t ->
  ?trace:Chunksim.Trace.t -> ?overload:Overload.Config.t -> unit -> t
(** [link_state] makes the router outage-aware: detour candidates with
    a down hop are unusable, and a down primary interface routes
    through the detour set.  Without it every link is assumed up
    (pre-fault behaviour, bit-identical).  [overload] switches on
    overload control: the config's admission policy guards the custody
    store, admissions shed above [shed_threshold], back-pressure
    engages early at [early_bp_threshold], and detours into pressured
    neighbours are refused (see {!set_neighbor_pressure}).  Without it
    (or with {!Overload.Config.off}) behaviour is bit-identical to the
    legacy path. *)

val set_neighbor_pressure : t -> (Topology.Node.id -> float) -> unit
(** Install the neighbour custody-occupancy oracle (fraction of store
    capacity, by node id) used to refuse detours into pressured
    neighbours.  Installed by the protocol layer, which owns the
    router array; stands in for the paper's periodic utilisation
    exchange between one-hop neighbours.  Only consulted when
    [overload] is active with a finite [neighbor_pressure]. *)

val install_flow :
  t -> ?content:int -> flow:int -> data_link:Topology.Link.t option ->
  req_link:Topology.Link.t option -> unit -> unit
(** [data_link]: next hop towards the consumer ([None] at the
    consumer).  [req_link]: next hop towards the producer ([None] at
    the producer).  [content] (default the flow id) keys the
    popularity cache, so repeated transfers of the same object hit
    on-path copies when [icn_caching] is enabled. *)

val reroute_flow :
  t -> ?content:int -> flow:int -> data_link:Topology.Link.t option ->
  req_link:Topology.Link.t option -> unit -> unit
(** Route reconvergence after an outage: like {!install_flow} but
    preserves the entry's back-pressure and flowlet state when the
    flow is already installed.  Rerouting onto a live data link clears
    the outage condition (fail-over flag, outage back-pressure). *)

val release_flow : t -> flow:int -> unit
(** Tear down the flow's table entry and recycle its slot (free-list,
    see {!Flow_table}).  Silent — no upstream back-pressure signalling:
    the flow is finished and its sender is about to go quiet on its
    own.  Custody still held for the flow can only be duplicate copies
    (the consumer acknowledged every chunk), so they are purged and
    counted as drops, keeping the custody ledger balanced.  No-op when
    the flow is not installed; safe while crashed. *)

val set_local_producer : t -> (Chunksim.Packet.t -> unit) -> unit
val set_local_consumer : t -> (Chunksim.Packet.t -> unit) -> unit

val handler : t -> Chunksim.Net.handler
(** Install into the {!Chunksim.Net} node slot. *)

val originate_data : t -> Chunksim.Packet.t -> unit
(** Entry point for the local sender: forwards through this router's
    own phase/detour/custody logic. *)

val tick : t -> unit
(** Close an estimator interval and update every interface phase.
    Schedule every [cfg.ti]. *)

val drain : t -> unit
(** Move custody chunks onto primary interfaces with queue room and
    release back-pressure when the store empties below the low
    watermark.  Schedule a few times per [cfg.ti].  A drain target
    that refuses admission (full or down) puts the chunk back into
    custody — chunks are never leaked.  No-op while crashed. *)

(** {1 Fault recovery} *)

val on_link_down : t -> int -> unit
(** Notify the router that some link just went down.  Every flow whose
    primary interface is down fails over to surviving detours (counted
    in [failovers]) or, when no path remains, engages back-pressure
    towards the sender; custody for the dead next-hop evacuates
    immediately via a drain. *)

val on_link_up : t -> int -> unit
(** Inverse: flows return to recovered primaries (releasing
    outage back-pressure) and held custody drains. *)

val crash : t -> policy:[ `Wipe | `Preserve ] -> (int * int) list
(** Crash this router: control state (estimators, phases,
    back-pressure flags) is always lost; [`Wipe] also empties the
    custody store and returns the wiped [(flow, idx)] list (sorted)
    for fault attribution, [`Preserve] models non-volatile custody.
    {!tick} and {!drain} are no-ops until {!restart}.  Idempotent. *)

val restart : t -> unit
val is_crashed : t -> bool

val phase_of_link : t -> int -> Phase.phase option
(** Current phase of the interface for the given link id; [None] when
    the link does not leave this node or carried no data yet. *)

val anticipated_rate_of_link : t -> int -> float option
(** Smoothed r_a of the interface's estimator, bps; [None] as for
    {!phase_of_link}. *)

val ratio_of_link : t -> int -> float option
(** r_a / capacity — the phase-machine input. *)

val estimator_links : t -> int list
(** Link ids with live estimators (i.e. interfaces that carried this
    router's data or requests), ascending — the observability layer's
    per-interface probe set. *)

val bp_active_flows : t -> int
(** Flows for which this router currently has back-pressure engaged
    (locally originated or relayed upstream). *)

(** {1 Flow-table occupancy} *)

val flow_entries_live : t -> int
(** Flow-table entries installed right now. *)

val flow_entries_peak : t -> int
(** High-water mark of {!flow_entries_live} over the router's life. *)

val flow_entries_recycled : t -> int
(** Releases whose slot went back on the free list ({!release_flow}
    calls that found the flow installed). *)

val flow_table_bytes : t -> int
(** Approximate heap footprint of the flow table (slot arrays + index
    + flowlet pins; see DESIGN §14 for the accounting). *)

val cache : t -> Chunksim.Cache.t
val counters : t -> counters
val node : t -> Topology.Node.id

val custody_packet_count : t -> int
(** Chunks in the custody packet table right now — must equal the
    cache's custody-region chunk count ([Check]'s ledger invariant). *)

val phase_transitions : t -> int
(** Summed across interfaces. *)
