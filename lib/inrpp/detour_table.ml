module Path = Topology.Path
module Link = Topology.Link

type candidate = {
  first_link : Link.t;
  rest : Topology.Node.id list;
  links : Link.t list;
  hops : int;
}

type t = {
  g : Topology.Graph.t;
  max_intermediate : int;
  cache : (int, candidate list) Hashtbl.t;
}

let create ?(max_intermediate = 2) g =
  if max_intermediate < 1 then
    invalid_arg "Detour_table.create: max_intermediate < 1";
  { g; max_intermediate; cache = Hashtbl.create 64 }

let candidates t (l : Link.t) =
  match Hashtbl.find_opt t.cache l.Link.id with
  | Some cs -> cs
  | None ->
    let ds =
      Topology.Detour.detours_via t.g l ~max_intermediate:t.max_intermediate
    in
    let cs =
      List.filter_map
        (fun (_, dpath) ->
          match dpath.Path.links with
          | [] -> None
          | first :: _ ->
            (* nodes after the first hop: drop src and the first
               intermediate *)
            let rest =
              match dpath.Path.nodes with
              | _ :: _ :: rest -> rest
              | _ -> []
            in
            Some
              {
                first_link = first;
                rest;
                links = dpath.Path.links;
                hops = Path.hops dpath;
              })
        ds
    in
    Hashtbl.add t.cache l.Link.id cs;
    cs

let has_detour t l = candidates t l <> []
