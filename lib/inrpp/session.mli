(** Receiver-side transfer bookkeeping.

    Tracks which chunks of a flow have arrived (detours reorder, so
    arbitrary arrival order must be handled), the lowest missing index
    (the next Nc to request), and completion. *)

type t

val create : total_chunks:int -> t
(** @raise Invalid_argument if [total_chunks <= 0]. *)

val total : t -> int

val receive : t -> int -> [ `New | `Duplicate ]
(** Record arrival of chunk [idx].
    @raise Invalid_argument if [idx] is outside [0, total). *)

val next_needed : t -> int
(** Lowest index not yet received; [total] when complete. *)

val received_count : t -> int
val is_complete : t -> bool
val highest_received : t -> int
(** [-1] before any arrival. *)

val missing_below : t -> int -> int list
(** Missing indices strictly below the given bound, ascending —
    the retransmission set. *)
