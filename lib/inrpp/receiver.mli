(** Data receiver (consumer endpoint), paper §3.2.

    Requests data at the application rate: one request per arriving
    chunk (flow balance), each carrying ⟨Nc = lowest missing, ACKc,
    Ac = Nc-side anticipation window⟩.  Before any data arrives,
    requests are paced at the configured initial rate.  A progress
    timeout re-requests the lowest missing chunk — the explicit-timer
    loss recovery the paper prescribes instead of treating
    out-of-order arrival as congestion. *)

type t

val create :
  cfg:Config.t -> eng:Sim.Engine.t -> flow:int -> total_chunks:int ->
  send_request:(Chunksim.Packet.t -> unit) ->
  on_complete:(fct:float -> unit) -> ?overload:Overload.Config.t -> unit -> t
(** [overload] arms the retransmission circuit breaker
    ({!Overload.Breaker}) with the config's [retry_budget] and
    [probe_interval]: after the budget of consecutive barren timeouts
    the receiver stops retransmitting and probes at the interval
    instead.  Without it (or with an infinite budget) retransmission
    behaviour is the legacy timeout/backoff loop, bit-identical.
    @raise Invalid_argument if [total_chunks <= 0]. *)

val start : t -> unit
(** Send the first request and arm the timers.  Idempotent. *)

val handle_data : t -> Chunksim.Packet.t -> unit
(** Process a Data packet for this flow (others ignored). *)

val session : t -> Session.t

val breaker : t -> Overload.Breaker.t option
(** The circuit breaker, when overload control armed one. *)

val requests_sent : t -> int
val duplicates : t -> int
val started_at : t -> float option
val completed_at : t -> float option
