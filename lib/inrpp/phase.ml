type phase =
  | Push_data
  | Detour
  | Backpressure

type t = {
  engage : float;
  release : float;
  mutable state : phase;
  mutable changes : int;
}

let create ~engage ~release =
  if not (0. <= release && release < engage) then
    invalid_arg "Phase.create: need 0 <= release < engage";
  { engage; release; state = Push_data; changes = 0 }

let current t = t.state

let set t next =
  if next <> t.state then begin
    t.state <- next;
    t.changes <- t.changes + 1
  end;
  next

let update t ~ratio ~detour_usable ~custody_pressure ~custody_drained =
  match t.state with
  | Push_data ->
    if ratio >= t.engage then
      if detour_usable then set t Detour else set t Backpressure
    else t.state
  | Detour ->
    if custody_pressure then set t Backpressure
    else if ratio <= t.release then set t Push_data
    else if not detour_usable then set t Backpressure
    else t.state
  | Backpressure ->
    if custody_drained && ratio <= t.release then set t Push_data
    else if custody_drained && detour_usable then set t Detour
    else t.state

let to_string = function
  | Push_data -> "push-data"
  | Detour -> "detour"
  | Backpressure -> "backpressure"

let transitions t = t.changes
