type t = {
  total_chunks : int;
  got : Bytes.t;              (* one byte per chunk; dense and simple *)
  mutable count : int;
  mutable lowest_missing : int;
  mutable highest : int;
}

let create ~total_chunks =
  if total_chunks <= 0 then invalid_arg "Session.create: total_chunks <= 0";
  {
    total_chunks;
    got = Bytes.make total_chunks '\000';
    count = 0;
    lowest_missing = 0;
    highest = -1;
  }

let total t = t.total_chunks

let receive t idx =
  if idx < 0 || idx >= t.total_chunks then
    invalid_arg
      (Printf.sprintf "Session.receive: chunk %d outside [0,%d)" idx
         t.total_chunks);
  if Bytes.get t.got idx <> '\000' then `Duplicate
  else begin
    Bytes.set t.got idx '\001';
    t.count <- t.count + 1;
    if idx > t.highest then t.highest <- idx;
    if idx = t.lowest_missing then begin
      let i = ref (t.lowest_missing + 1) in
      while !i < t.total_chunks && Bytes.get t.got !i <> '\000' do
        incr i
      done;
      t.lowest_missing <- !i
    end;
    `New
  end

let next_needed t = t.lowest_missing
let received_count t = t.count
let is_complete t = t.count = t.total_chunks
let highest_received t = t.highest

let missing_below t bound =
  let bound = min bound t.total_chunks in
  let rec collect i acc =
    if i < t.lowest_missing then acc
    else
      collect (i - 1) (if Bytes.get t.got i = '\000' then i :: acc else acc)
  in
  if bound <= t.lowest_missing then []
  else collect (bound - 1) []
