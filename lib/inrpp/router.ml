module Link = Topology.Link
module Packet = Chunksim.Packet
module Net = Chunksim.Net
module Iface = Chunksim.Iface
module Cache = Chunksim.Cache
module Chunk_key = Chunksim.Chunk_key
module Trace = Chunksim.Trace

type counters = {
  mutable forwarded_data : int;
  mutable detoured : int;
  mutable custody_stored : int;
  mutable custody_released : int;
  mutable dropped : int;
  mutable bp_engages : int;
  mutable bp_releases : int;
  mutable cache_hits : int;
  mutable failovers : int;
  mutable custody_wiped : int;
  mutable shed : int;
  mutable detours_refused : int;
}

(* A detour candidate with everything the per-packet usability scan
   needs resolved ahead of time: hop interfaces, their admission
   limits, and (lazily) the first hop's estimator.  The static
   conditions — depth bound, every hop up — are folded into cache
   membership; only queue room is re-checked per scan, so the scan
   allocates nothing. *)
type dcand = {
  dc_first : Link.t;
  dc_via : Topology.Node.id;       (* first hop's dst: the flowlet pin *)
  dc_rest : Topology.Node.id list; (* source route after the first hop *)
  dc_ifaces : Iface.t array;       (* every hop, candidate order *)
  dc_limits : float array;         (* threshold * capacity per hop *)
  mutable dc_est : Rate_estimator.t option;
}

(* Per-link candidate cache, invalidated by generation: every
   link-state flip and every crash bumps [ls_gen], so a stale
   generation means the static filter must be recomputed.  Between
   bumps, up-ness cannot change (all transitions go through
   [on_link_down]/[on_link_up]). *)
type dcache = {
  mutable dk_gen : int;
  mutable dk_cands : dcand array;
}

(* Hot-path state resolved once per (flow, data link) instead of per
   packet: interface handle, queue-admission limit, and lazy
   phase/estimator references.  Dropped whenever the flow's link
   changes (reroute) or control state dies (crash); the lazy fields
   resolve through the same [phase]/[estimator] functions as before,
   so creation instants — observable through the sampler's
   [estimator_links] probe set — are unchanged. *)
type hot = {
  h_link : Link.t;
  h_iface : Iface.t;
  h_limit : float;                 (* threshold * capacity of h_iface *)
  mutable h_phase : Phase.t option;
  mutable h_est : Rate_estimator.t option;
  mutable h_dcache : dcache option;
}

type flow_entry = {
  content : int;                  (* cache key shared across transfers *)
  mutable data_link : Link.t option;
  mutable req_link : Link.t option;
  mutable bp_local : bool;        (* this router engaged BP upstream *)
  mutable bp_forwarded : bool;    (* we relayed a downstream engage *)
  mutable detour_override : bool; (* downstream BP absorbed by detouring here *)
  mutable bp_outage : bool;       (* engaged because no path survives an outage *)
  mutable failed_over : bool;     (* primary down, currently riding detours *)
  mutable hot : hot option;
}

type t = {
  cfg : Config.t;
  net : Net.t;
  node_id : Topology.Node.id;
  detours : Detour_table.t;
  link_state : Topology.Link_state.t option;
  trace : Trace.t option;
  flows : (int, flow_entry) Hashtbl.t;
  (* dense mirror of [flows] for the per-packet lookup; [flows] stays
     the iteration structure (drain/fault/crash walk it), so artefact-
     visible iteration order is untouched *)
  mutable flow_arr : flow_entry option array;
  store : Cache.t;
  custody_packets : (int, Packet.t) Hashtbl.t;  (* Chunk_key-packed *)
  estimators : (int, Rate_estimator.t) Hashtbl.t;
  phases : (int, Phase.t) Hashtbl.t;
  dcaches : (int, dcache) Hashtbl.t;
  flowlets : Flowlet.t;
  c : counters;
  mutable ls_gen : int;           (* link-state generation, see dcache *)
  mutable bp_locals : int;        (* entries with bp_local = true *)
  mutable local_producer : (Packet.t -> unit) option;
  mutable local_consumer : (Packet.t -> unit) option;
  mutable crashed : bool;
  (* overload control; [None] is the legacy path throughout *)
  overload : Overload.Config.t option;
  mutable neighbor_pressure : (Topology.Node.id -> float) option;
}

let create ~cfg ~net ~node ~detours ?link_state ?trace ?overload () =
  {
    cfg;
    net;
    node_id = node;
    detours;
    link_state;
    trace;
    flows = Hashtbl.create 16;
    flow_arr = [||];
    store =
      Cache.create ~high_water:cfg.Config.cache_high_water
        ~low_water:cfg.Config.cache_low_water
        ?policy:(Option.bind overload (fun ov -> Overload.Config.policy ov))
        ~capacity:cfg.Config.cache_bits ();
    custody_packets = Hashtbl.create 64;
    estimators = Hashtbl.create 8;
    phases = Hashtbl.create 8;
    dcaches = Hashtbl.create 8;
    flowlets = Flowlet.create ~gap:cfg.Config.flowlet_gap;
    c =
      {
        forwarded_data = 0;
        detoured = 0;
        custody_stored = 0;
        custody_released = 0;
        dropped = 0;
        bp_engages = 0;
        bp_releases = 0;
        cache_hits = 0;
        failovers = 0;
        custody_wiped = 0;
        shed = 0;
        detours_refused = 0;
      };
    ls_gen = 0;
    bp_locals = 0;
    local_producer = None;
    local_consumer = None;
    crashed = false;
    overload;
    neighbor_pressure = None;
  }

let set_neighbor_pressure t f = t.neighbor_pressure <- Some f

let now t = Sim.Engine.now (Net.engine t.net)

let record t e =
  match t.trace with
  | Some tr -> Trace.record tr ~time:(now t) e
  | None -> ()

(* Dropped events carry a formatted packet string; build it only when
   a trace is actually attached (bench runs drop packets too). *)
let record_drop t ~link (p : Packet.t) =
  match t.trace with
  | Some tr ->
    Trace.record tr ~time:(now t)
      (Trace.Dropped
         {
           node = t.node_id;
           link;
           packet = Format.asprintf "%a" Packet.pp p;
         })
  | None -> ()

(* chunk-lifecycle events are gated per-trace (Trace.set_lifecycle) so
   check/differential runs and the artefact goldens see an unchanged
   event stream unless a span collector asked for them *)
let record_enqueued t ~link (p : Packet.t) =
  match t.trace with
  | Some tr when Trace.lifecycle tr -> begin
    match p.Packet.header with
    | Packet.Data { flow; idx; _ } ->
      Trace.record tr ~time:(now t)
        (Trace.Enqueued { node = t.node_id; link; flow; idx })
    | Packet.Request _ | Packet.Backpressure _ -> ()
  end
  | Some _ | None -> ()

let record_evacuated t ~flow ~idx =
  match t.trace with
  | Some tr when Trace.lifecycle tr ->
    Trace.record tr ~time:(now t)
      (Trace.Custody_evacuated { node = t.node_id; flow; idx })
  | Some _ | None -> ()

let estimator t (l : Link.t) =
  match Hashtbl.find t.estimators l.Link.id with
  | e -> e
  | exception Not_found ->
    let e =
      Rate_estimator.create ~ti:t.cfg.Config.ti
        ~alpha:t.cfg.Config.estimator_alpha
        ~capacity:(l.Link.capacity *. t.cfg.Config.speed_factor)
    in
    Hashtbl.add t.estimators l.Link.id e;
    e

let phase t (l : Link.t) =
  match Hashtbl.find t.phases l.Link.id with
  | p -> p
  | exception Not_found ->
    let p =
      Phase.create ~engage:t.cfg.Config.engage_ratio
        ~release:t.cfg.Config.release_ratio
    in
    Hashtbl.add t.phases l.Link.id p;
    p

(* ------------------------------------------------------------------ *)
(* Flow table *)

let flow_find t flow =
  if flow >= 0 && flow < Array.length t.flow_arr then t.flow_arr.(flow)
  else None

let ensure_flow_capacity t flow =
  let n = Array.length t.flow_arr in
  if flow >= n then begin
    let m = ref (max 16 (2 * n)) in
    while flow >= !m do
      m := 2 * !m
    done;
    let arr = Array.make !m None in
    Array.blit t.flow_arr 0 arr 0 n;
    t.flow_arr <- arr
  end

let install_flow t ?content ~flow ~data_link ~req_link () =
  if flow < 0 then invalid_arg "Router.install_flow: flow < 0";
  (match Hashtbl.find_opt t.flows flow with
  | Some old when old.bp_local -> t.bp_locals <- t.bp_locals - 1
  | Some _ | None -> ());
  let entry =
    {
      content = Option.value ~default:flow content;
      data_link;
      req_link;
      bp_local = false;
      bp_forwarded = false;
      detour_override = false;
      bp_outage = false;
      failed_over = false;
      hot = None;
    }
  in
  Hashtbl.replace t.flows flow entry;
  ensure_flow_capacity t flow;
  t.flow_arr.(flow) <- Some entry

let set_local_producer t f = t.local_producer <- Some f
let set_local_consumer t f = t.local_consumer <- Some f

let link_is_up t (l : Link.t) =
  match t.link_state with
  | Some ls -> Topology.Link_state.is_up ls l.Link.id
  | None -> true

(* ------------------------------------------------------------------ *)
(* Detour candidate cache *)

(* detour candidates around [l] within the configured depth and with
   every hop up; queue room is the per-scan dynamic check.  Remote
   queue state stands in for the paper's periodic utilisation exchange
   between one-hop neighbours. *)
let build_cands t (l : Link.t) =
  let usable =
    List.filter
      (fun (cand : Detour_table.candidate) ->
        cand.Detour_table.hops - 1 <= t.cfg.Config.max_detour
        && List.for_all (fun hop -> link_is_up t hop) cand.Detour_table.links)
      (Detour_table.candidates t.detours l)
  in
  Array.of_list
    (List.map
       (fun (cand : Detour_table.candidate) ->
         let ifaces =
           Array.of_list
             (List.map
                (fun (hop : Link.t) -> Net.iface t.net hop.Link.id)
                cand.Detour_table.links)
         in
         let limits =
           Array.map
             (fun i ->
               t.cfg.Config.detour_queue_threshold *. Iface.queue_capacity i)
             ifaces
         in
         {
           dc_first = cand.Detour_table.first_link;
           dc_via = cand.Detour_table.first_link.Link.dst;
           dc_rest = cand.Detour_table.rest;
           dc_ifaces = ifaces;
           dc_limits = limits;
           dc_est = None;
         })
       usable)

let refresh_dcache t (l : Link.t) dk =
  if dk.dk_gen <> t.ls_gen then begin
    dk.dk_cands <- build_cands t l;
    dk.dk_gen <- t.ls_gen
  end

let dcache_of t (l : Link.t) =
  let dk =
    match Hashtbl.find t.dcaches l.Link.id with
    | dk -> dk
    | exception Not_found ->
      let dk = { dk_gen = t.ls_gen - 1; dk_cands = [||] } in
      Hashtbl.add t.dcaches l.Link.id dk;
      dk
  in
  refresh_dcache t l dk;
  dk

(* Detour refusal into pressured neighbours: with overload control on,
   a candidate whose first hop lands on a neighbour already above the
   configured custody-occupancy fraction is unusable — deflecting load
   into a store that is itself shedding only spreads the collapse.
   The pressure function is installed by the protocol layer (it owns
   the router array); queue room is still checked first so the counter
   only counts candidates refused {e solely} because of pressure. *)
let cand_pressure_ok t (c : dcand) =
  match t.overload, t.neighbor_pressure with
  | Some ov, Some pressure_of
    when ov.Overload.Config.neighbor_pressure < infinity ->
    if pressure_of c.dc_via >= ov.Overload.Config.neighbor_pressure then begin
      t.c.detours_refused <- t.c.detours_refused + 1;
      false
    end
    else true
  | (Some _ | None), _ -> true

let cand_ok t (c : dcand) =
  let n = Array.length c.dc_ifaces in
  let rec ok i =
    i >= n
    || (Iface.queue_occupancy c.dc_ifaces.(i) < c.dc_limits.(i) && ok (i + 1))
  in
  ok 0 && cand_pressure_ok t c

let first_usable t dk =
  let n = Array.length dk.dk_cands in
  let rec go i =
    if i >= n then -1 else if cand_ok t dk.dk_cands.(i) then i else go (i + 1)
  in
  go 0

let usable_with_via t dk via =
  let n = Array.length dk.dk_cands in
  let rec go i =
    if i >= n then -1
    else if dk.dk_cands.(i).dc_via = via && cand_ok t dk.dk_cands.(i) then i
    else go (i + 1)
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Per-flow hot state *)

let hot_of t entry (l : Link.t) =
  match entry.hot with
  | Some h when h.h_link == l -> h
  | Some _ | None ->
    let i = Net.iface t.net l.Link.id in
    let h =
      {
        h_link = l;
        h_iface = i;
        h_limit = t.cfg.Config.detour_queue_threshold *. Iface.queue_capacity i;
        h_phase = None;
        h_est = None;
        h_dcache = None;
      }
    in
    entry.hot <- Some h;
    h

let hot_phase t h =
  match h.h_phase with
  | Some p -> p
  | None ->
    let p = phase t h.h_link in
    h.h_phase <- Some p;
    p

let hot_est t h =
  match h.h_est with
  | Some e -> e
  | None ->
    let e = estimator t h.h_link in
    h.h_est <- Some e;
    e

let hot_dcache t h =
  match h.h_dcache with
  | Some dk ->
    refresh_dcache t h.h_link dk;
    dk
  | None ->
    let dk = dcache_of t h.h_link in
    h.h_dcache <- Some dk;
    dk

let entry_dcache t entry (l : Link.t) =
  match entry.hot with
  | Some h when h.h_link == l -> hot_dcache t h
  | Some _ | None -> dcache_of t l

(* ------------------------------------------------------------------ *)
(* Back-pressure signalling *)

let signal_upstream t entry ~flow ~engage =
  let pkt = Packet.backpressure ~flow ~engage in
  if engage then t.c.bp_engages <- t.c.bp_engages + 1
  else t.c.bp_releases <- t.c.bp_releases + 1;
  record t (Trace.Bp_signal { node = t.node_id; flow; engage });
  match entry.req_link with
  | Some l -> ignore (Net.send t.net ~via:l pkt)
  | None -> begin
    (* we are at the producer node: tell the local sender directly *)
    match t.local_producer with
    | Some producer -> producer pkt
    | None -> ()
  end

(* The "local" engage slot is shared between custody pressure and
   path-outage pressure: at most one upstream engage is outstanding
   for the pair, which preserves the checker's ≤2 balance per
   (node, flow) — the second slot being the relayed downstream
   engage. *)
let engage_local t entry ~flow ~slot =
  let was = entry.bp_local || entry.bp_outage in
  (match slot with
  | `Custody ->
    if not entry.bp_local then begin
      entry.bp_local <- true;
      t.bp_locals <- t.bp_locals + 1
    end
  | `Outage -> entry.bp_outage <- true);
  if not was then signal_upstream t entry ~flow ~engage:true

let release_local t entry ~flow ~slot =
  let had =
    match slot with `Custody -> entry.bp_local | `Outage -> entry.bp_outage
  in
  (match slot with
  | `Custody ->
    if entry.bp_local then begin
      entry.bp_local <- false;
      t.bp_locals <- t.bp_locals - 1
    end
  | `Outage -> entry.bp_outage <- false);
  if had && not (entry.bp_local || entry.bp_outage) then
    signal_upstream t entry ~flow ~engage:false

(* Route reconvergence: point an existing entry at new primary links
   without disturbing its flowlet or custody state.  A reroute onto a
   live data link ends any outage condition the old path caused. *)
let reroute_flow t ?content ~flow ~data_link ~req_link () =
  match Hashtbl.find_opt t.flows flow with
  | Some entry ->
    entry.data_link <- data_link;
    entry.req_link <- req_link;
    entry.hot <- None;
    (match data_link with
    | Some l when link_is_up t l ->
      entry.failed_over <- false;
      if entry.bp_outage then release_local t entry ~flow ~slot:`Outage
    | Some _ | None -> ())
  | None -> install_flow t ?content ~flow ~data_link ~req_link ()

(* ------------------------------------------------------------------ *)
(* Custody *)

(* Load shedding (overload control only): above [shed_threshold]
   custody occupancy, refuse the admission outright — new chunks are
   shed {e before} in-custody chunks are endangered, and the upstream
   hears about it immediately instead of at store exhaustion. *)
let shed_admission t =
  match t.overload with
  | Some ov when ov.Overload.Config.shed_threshold < infinity ->
    Cache.custody_occupancy t.store
    >= ov.Overload.Config.shed_threshold *. Cache.capacity t.store
  | Some _ | None -> false

(* Early back-pressure (overload control only): escalate upstream at
   [early_bp_threshold] occupancy, before the store's high watermark —
   under a flash crowd the watermark fires too late to stop the wave
   already in flight. *)
let early_bp t =
  match t.overload with
  | Some ov when ov.Overload.Config.early_bp_threshold < infinity ->
    Cache.custody_occupancy t.store
    >= ov.Overload.Config.early_bp_threshold *. Cache.capacity t.store
  | Some _ | None -> false

let custody t entry flow (p : Packet.t) =
  match p.Packet.header with
  | Packet.Data { idx; _ } -> begin
    let key = Chunk_key.pack ~flow ~idx in
    if Hashtbl.mem t.custody_packets key then begin
      (* duplicate copy (a retransmit racing the custodied original):
         admitting it would put a second entry in the store's custody
         queue while the packet table holds one payload per (flow,
         idx), so the duplicate could never drain — it would leak
         store space until the end of the run.  Drop it; the
         custodied copy is already scheduled to move on. *)
      t.c.dropped <- t.c.dropped + 1;
      record_drop t ~link:(-1) p
    end
    else if shed_admission t then begin
      t.c.shed <- t.c.shed + 1;
      engage_local t entry ~flow ~slot:`Custody;
      t.c.dropped <- t.c.dropped + 1;
      record_drop t ~link:(-1) p
    end
    else
      match Cache.put_custody t.store ~flow ~idx ~bits:p.Packet.size with
      | `Stored ->
        Hashtbl.replace t.custody_packets key p;
        t.c.custody_stored <- t.c.custody_stored + 1;
        record t (Trace.Cached { node = t.node_id; flow; idx });
        (* back-pressure engages at the high watermark, not on the first
           stored chunk — small excursions are what the store is for *)
        if Cache.above_high t.store || early_bp t then
          engage_local t entry ~flow ~slot:`Custody
      | `Rejected ->
        (* the admission policy refused the chunk: shed it and make the
           upstream slow down, exactly as for threshold shedding *)
        t.c.shed <- t.c.shed + 1;
        engage_local t entry ~flow ~slot:`Custody;
        t.c.dropped <- t.c.dropped + 1;
        record_drop t ~link:(-1) p
      | `Full ->
        (* the store itself overflowed: the congestion-collapse guard the
           paper's back-pressure exists to prevent *)
        engage_local t entry ~flow ~slot:`Custody;
        t.c.dropped <- t.c.dropped + 1;
        record_drop t ~link:(-1) p
  end
  | Packet.Request _ | Packet.Backpressure _ -> ()

(* ------------------------------------------------------------------ *)
(* Data forwarding *)

let send_detour t flow (c : dcand) (p : Packet.t) =
  let idx =
    match p.Packet.header with
    | Packet.Data { idx; _ } -> idx
    | Packet.Request _ | Packet.Backpressure _ -> -1
  in
  let p' =
    match p.Packet.header with
    | Packet.Data d ->
      {
        p with
        Packet.header =
          Packet.Data { d with via_detour = true; detour_route = c.dc_rest };
      }
    | Packet.Request _ | Packet.Backpressure _ -> p
  in
  let est =
    match c.dc_est with
    | Some e -> e
    | None ->
      let e = estimator t c.dc_first in
      c.dc_est <- Some e;
      e
  in
  Rate_estimator.note_transit est ~bits:p.Packet.size;
  match Net.send t.net ~via:c.dc_first p' with
  | `Queued ->
    t.c.detoured <- t.c.detoured + 1;
    record t
      (Trace.Detoured { node = t.node_id; flow; idx; via = c.dc_via });
    record_enqueued t ~link:c.dc_first.Link.id p';
    `Queued
  | `Dropped ->
    t.c.dropped <- t.c.dropped + 1;
    `Dropped

(* Deflect [p] onto the best usable detour around [l]; prefers the
   flow's previously pinned detour (flowlet stability), falls back to
   custody when no detour has queue room — including when the chosen
   detour's admission fails under the candidate check (a race with new
   arrivals, or an interface that just went down). *)
let try_detour t entry flow (l : Link.t) (p : Packet.t) =
  let dk = entry_dcache t entry l in
  let fi = first_usable t dk in
  if fi < 0 then custody t entry flow p
  else begin
    let first = dk.dk_cands.(fi) in
    let pinned =
      Flowlet.choose t.flowlets ~flow ~now:(now t)
        ~preferred:(Flowlet.Via first.dc_via)
    in
    let chosen =
      match pinned with
      | Flowlet.Via via ->
        if via = first.dc_via then first
        else begin
          let vi = usable_with_via t dk via in
          if vi >= 0 then dk.dk_cands.(vi)
          else first (* pinned detour filled up; re-route *)
        end
      | Flowlet.Primary -> first
    in
    match send_detour t flow chosen p with
    | `Queued -> () (* the detour copy went out; [p] is dead *)
    | `Dropped -> custody t entry flow p
  end

let maybe_cache_popular t entry (p : Packet.t) =
  if t.cfg.Config.icn_caching then begin
    match p.Packet.header with
    | Packet.Data { idx; _ } ->
      Cache.insert_popular t.store ~flow:entry.content ~idx
        ~bits:p.Packet.size
    | Packet.Request _ | Packet.Backpressure _ -> ()
  end

let forward_on_primary t entry flow (l : Link.t) (p : Packet.t) =
  match Net.send t.net ~via:l p with
  | `Queued ->
    t.c.forwarded_data <- t.c.forwarded_data + 1;
    record_enqueued t ~link:l.Link.id p
  | `Dropped ->
    (* overflowing queue falls through to detours, then custody —
       congestion is handled locally even before the estimator
       notices it *)
    try_detour t entry flow l p

let forward_primary_path t entry flow (p : Packet.t) =
  maybe_cache_popular t entry p;
  match entry.data_link with
  | None -> begin
    match t.local_consumer with
    | Some consumer -> consumer p
    | None -> t.c.dropped <- t.c.dropped + 1
  end
  | Some l -> begin
    let h = hot_of t entry l in
    if not (link_is_up t l) then
      (* primary interface is down: go straight to the detour set (the
         paper's detour phase, triggered by outage rather than rate);
         custody is the fallback when no detour survives *)
      try_detour t entry flow l p
    else
      let ph = Phase.current (hot_phase t h) in
      let effective =
        if entry.detour_override && ph = Phase.Push_data then Phase.Detour
        else ph
      in
      match effective with
      | Phase.Push_data -> forward_on_primary t entry flow l p
      | Phase.Detour ->
        if Iface.queue_occupancy h.h_iface < h.h_limit then begin
          Flowlet.(
            ignore (choose t.flowlets ~flow ~now:(now t) ~preferred:Primary));
          forward_on_primary t entry flow l p
        end
        else try_detour t entry flow l p
      | Phase.Backpressure -> custody t entry flow p
  end

let handle_data t (p : Packet.t) =
  match p.Packet.header with
  | Packet.Data ({ flow; detour_route; _ } as d) -> begin
    match detour_route with
    | next :: rest -> begin
      (* mid-detour: source-routed towards the rejoin node *)
      match Topology.Graph.find_link (Net.graph t.net) t.node_id next with
      | None -> t.c.dropped <- t.c.dropped + 1
      | Some l ->
        let p' =
          { p with Packet.header = Packet.Data { d with detour_route = rest } }
        in
        Rate_estimator.note_transit (estimator t l) ~bits:p.Packet.size;
        (match Net.send t.net ~via:l p' with
        | `Queued ->
          t.c.forwarded_data <- t.c.forwarded_data + 1;
          record_enqueued t ~link:l.Link.id p'
        | `Dropped -> t.c.dropped <- t.c.dropped + 1)
    end
    | [] -> begin
      match flow_find t flow with
      | None -> t.c.dropped <- t.c.dropped + 1
      | Some entry -> forward_primary_path t entry flow p
    end
  end
  | Packet.Request _ | Packet.Backpressure _ -> ()

(* ------------------------------------------------------------------ *)
(* Requests and back-pressure packets *)

let handle_request t (p : Packet.t) =
  match p.Packet.header with
  | Packet.Request { flow; nc; _ } -> begin
    match flow_find t flow with
    | None -> t.c.dropped <- t.c.dropped + 1
    | Some entry ->
      (* ICN short-circuit: a popularity-cached copy answers the request
         locally and the request is not forwarded upstream *)
      if
        t.cfg.Config.icn_caching
        && Cache.lookup_popular t.store ~flow:entry.content ~idx:nc
      then begin
        t.c.cache_hits <- t.c.cache_hits + 1;
        record t (Trace.Cache_hit { node = t.node_id; flow; idx = nc });
        let data =
          Packet.data ~flow ~idx:nc ~born:(now t) t.cfg.Config.chunk_bits
        in
        forward_primary_path t entry flow data
      end
      else begin
        (* every forwarded request predicts one chunk leaving through
           the data interface (eq. 1 bookkeeping) *)
        (match entry.data_link with
        | Some dl ->
          Rate_estimator.note_request
            (hot_est t (hot_of t entry dl))
            ~expected_bits:t.cfg.Config.chunk_bits
        | None -> ());
        match entry.req_link with
        | Some l -> ignore (Net.send t.net ~via:l p)
        | None -> begin
          match t.local_producer with
          | Some producer -> producer p
          | None -> t.c.dropped <- t.c.dropped + 1
        end
      end
  end
  | Packet.Data _ | Packet.Backpressure _ -> ()

let handle_backpressure t (p : Packet.t) =
  match p.Packet.header with
  | Packet.Backpressure { flow; engage } -> begin
    match flow_find t flow with
    | None -> ()
    | Some entry ->
      if engage then begin
        (* paper §3.3: the upstream node first tries to bypass the
           congested area with a deeper detour, else relays the
           notification towards the sender *)
        let can_absorb =
          match entry.data_link with
          | Some l -> first_usable t (entry_dcache t entry l) >= 0
          | None -> false
        in
        if can_absorb then entry.detour_override <- true
        else begin
          entry.bp_forwarded <- true;
          signal_upstream t entry ~flow ~engage:true
        end
      end
      else begin
        entry.detour_override <- false;
        if entry.bp_forwarded then begin
          entry.bp_forwarded <- false;
          signal_upstream t entry ~flow ~engage:false
        end
      end
  end
  | Packet.Data _ | Packet.Request _ -> ()

let handler t : Net.handler =
 fun ~from:_ p ->
  match p.Packet.header with
  | Packet.Data _ -> handle_data t p
  | Packet.Request _ -> handle_request t p
  | Packet.Backpressure _ -> handle_backpressure t p

let originate_data t p = handle_data t p

(* ------------------------------------------------------------------ *)
(* Periodic work *)

let tick t =
  if t.crashed then ()
  else
    Hashtbl.iter
      (fun link_id est ->
        Rate_estimator.tick est;
        let l = Topology.Graph.link (Net.graph t.net) link_id in
        let ph = phase t l in
        let before = Phase.current ph in
        let after =
          Phase.update ph ~ratio:(Rate_estimator.ratio est)
            ~detour_usable:(first_usable t (dcache_of t l) >= 0)
            ~custody_pressure:(Cache.above_high t.store)
            ~custody_drained:(Cache.below_low t.store)
        in
        if before <> after then
          record t
            (Trace.Phase_change
               { node = t.node_id; link = link_id; phase = Phase.to_string after }))
      t.estimators

let drain t =
  if t.crashed then ()
  else begin
    (* release custody one chunk per flow per round so competing flows
       share the recovered bandwidth round-robin (the paper's scheduler
       multiplexes flows in round-robin fashion) *)
    if not (Cache.custody_is_empty t.store) then begin
      let release_one flow =
        match flow_find t flow with
        | None -> false
        | Some entry -> begin
          match entry.data_link with
          | None -> false
          | Some l ->
            let h = hot_of t entry l in
            let out =
              if
                link_is_up t l
                && Iface.queue_occupancy h.h_iface < h.h_limit
              then `Primary
              else begin
                let dk = hot_dcache t h in
                let fi = first_usable t dk in
                if fi >= 0 then `Detour dk.dk_cands.(fi) else `None
              end
            in
            match out with
            | `None -> false
            | (`Primary | `Detour _) as out -> begin
              (* peek-then-commit: the chunk stays charged against the
                 store budget until the handoff is known to have
                 succeeded, so nothing can be admitted into the
                 transient gap a failed evacuation used to open (the
                 old take-then-re-put also double-counted
                 [custody_stored] and could lose the chunk outright if
                 the re-put found the store full) *)
              match Cache.peek_custody t.store ~flow with
              | None -> false
              | Some (idx, _bits) -> begin
                t.c.custody_released <- t.c.custody_released + 1;
                record t
                  (Trace.Custody_released { node = t.node_id; flow; idx });
                let key = Chunk_key.pack ~flow ~idx in
                match Hashtbl.find t.custody_packets key with
                | exception Not_found ->
                  (* store entry without a payload cannot be handed off;
                     discharge it so drain cannot spin on the flow *)
                  Cache.commit_custody t.store ~flow;
                  true
                | p ->
                  let sent =
                    match out with
                    | `Primary -> begin
                      match Net.send t.net ~via:l p with
                      | `Queued ->
                        t.c.forwarded_data <- t.c.forwarded_data + 1;
                        record_enqueued t ~link:l.Link.id p;
                        true
                      | `Dropped -> false
                    end
                    | `Detour cand -> begin
                      match send_detour t flow cand p with
                      | `Queued ->
                        (* custody left this node sideways, not down the
                           primary: the recovery path's evacuation
                           signal *)
                        record_evacuated t ~flow ~idx;
                        true
                      | `Dropped -> false
                    end
                  in
                  if sent then begin
                    Cache.commit_custody t.store ~flow;
                    Hashtbl.remove t.custody_packets key;
                    true
                  end
                  else begin
                    (* raced with new arrivals, or the interface just
                       went down: the chunk never left custody, so undo
                       the release accounting and stop draining this
                       flow for the round — never leak, never
                       double-admit *)
                    t.c.custody_released <- t.c.custody_released - 1;
                    false
                  end
              end
            end
        end
      in
      let flows = Cache.flows_in_custody t.store in
      let progress = ref true in
      while !progress do
        progress := false;
        List.iter (fun flow -> if release_one flow then progress := true) flows
      done
    end;
    (* release upstream pressure once the store has drained enough *)
    if t.bp_locals > 0 && Cache.below_low t.store then
      Hashtbl.iter
        (fun flow entry ->
          if entry.bp_local && Cache.custody_backlog t.store ~flow = 0 then
            release_local t entry ~flow ~slot:`Custody)
        t.flows
  end

(* ------------------------------------------------------------------ *)
(* Fault recovery *)

(* Re-evaluate every flow whose primary interface is down: ride the
   surviving detours when there are any ("down or congested" links
   trigger the detour phase, paper §3.3), stop the sender when no path
   remains.  Called by the protocol layer on every link-state flip
   plus a drain, so custody held for a dead next-hop evacuates onto
   detours at the outage instant. *)
let on_link_down t _link_id =
  t.ls_gen <- t.ls_gen + 1;
  if not t.crashed then begin
    Hashtbl.iter
      (fun flow entry ->
        match entry.data_link with
        | Some l when not (link_is_up t l) ->
          if first_usable t (entry_dcache t entry l) >= 0 then begin
            if not entry.failed_over then begin
              entry.failed_over <- true;
              t.c.failovers <- t.c.failovers + 1
            end
          end
          else engage_local t entry ~flow ~slot:`Outage
        | Some _ | None -> ())
      t.flows;
    drain t
  end

let on_link_up t _link_id =
  t.ls_gen <- t.ls_gen + 1;
  if not t.crashed then begin
    Hashtbl.iter
      (fun flow entry ->
        match entry.data_link with
        | Some l ->
          if link_is_up t l then begin
            entry.failed_over <- false;
            if entry.bp_outage then release_local t entry ~flow ~slot:`Outage
          end
          else if first_usable t (entry_dcache t entry l) >= 0 then begin
            (* primary still down but a detour came back *)
            if entry.bp_outage then release_local t entry ~flow ~slot:`Outage;
            if not entry.failed_over then begin
              entry.failed_over <- true;
              t.c.failovers <- t.c.failovers + 1
            end
          end
        | None -> ())
      t.flows;
    drain t
  end

let crash t ~policy =
  if t.crashed then []
  else begin
    t.crashed <- true;
    (* control state is volatile under every policy; hot caches hold
       references into the estimator/phase tables being reset, so they
       die with it *)
    Hashtbl.iter
      (fun _ entry ->
        entry.bp_local <- false;
        entry.bp_forwarded <- false;
        entry.detour_override <- false;
        entry.bp_outage <- false;
        entry.failed_over <- false;
        entry.hot <- None)
      t.flows;
    t.bp_locals <- 0;
    Hashtbl.reset t.estimators;
    Hashtbl.reset t.phases;
    t.ls_gen <- t.ls_gen + 1;
    match policy with
    | `Preserve -> []
    | `Wipe ->
      let wiped =
        List.sort compare
          (Hashtbl.fold (fun k _ acc -> k :: acc) t.custody_packets [])
        |> List.map (fun k -> (Chunk_key.flow k, Chunk_key.idx k))
      in
      (* empty the store's custody region coherently with the table *)
      List.iter
        (fun flow ->
          let rec strip () =
            match Cache.take_custody t.store ~flow with
            | Some _ -> strip ()
            | None -> ()
          in
          strip ())
        (Cache.flows_in_custody t.store);
      Hashtbl.reset t.custody_packets;
      t.c.custody_wiped <- t.c.custody_wiped + List.length wiped;
      wiped
  end

let restart t = t.crashed <- false

let is_crashed t = t.crashed

let phase_of_link t link_id =
  Option.map Phase.current (Hashtbl.find_opt t.phases link_id)

let anticipated_rate_of_link t link_id =
  Option.map Rate_estimator.anticipated_rate
    (Hashtbl.find_opt t.estimators link_id)

let ratio_of_link t link_id =
  Option.map Rate_estimator.ratio (Hashtbl.find_opt t.estimators link_id)

let estimator_links t =
  List.sort Int.compare
    (Hashtbl.fold (fun link_id _ acc -> link_id :: acc) t.estimators [])

let bp_active_flows t =
  Hashtbl.fold
    (fun _ entry acc -> if entry.bp_local || entry.bp_forwarded then acc + 1 else acc)
    t.flows 0

let cache t = t.store
let counters t = t.c
let node t = t.node_id
let custody_packet_count t = Hashtbl.length t.custody_packets

let phase_transitions t =
  Hashtbl.fold (fun _ p acc -> acc + Phase.transitions p) t.phases 0
