module Link = Topology.Link
module Packet = Chunksim.Packet
module Net = Chunksim.Net
module Iface = Chunksim.Iface
module Cache = Chunksim.Cache
module Chunk_key = Chunksim.Chunk_key
module Trace = Chunksim.Trace
module Ft = Flow_table

type counters = {
  mutable forwarded_data : int;
  mutable detoured : int;
  mutable custody_stored : int;
  mutable custody_released : int;
  mutable dropped : int;
  mutable bp_engages : int;
  mutable bp_releases : int;
  mutable cache_hits : int;
  mutable failovers : int;
  mutable custody_wiped : int;
  mutable shed : int;
  mutable detours_refused : int;
}

(* A detour candidate with everything the per-packet usability scan
   needs resolved ahead of time: hop interfaces, their admission
   limits, and (lazily) the first hop's estimator.  The static
   conditions — depth bound, every hop up — are folded into cache
   membership; only queue room is re-checked per scan, so the scan
   allocates nothing. *)
type dcand = {
  dc_first : Link.t;
  dc_via : Topology.Node.id;       (* first hop's dst: the flowlet pin *)
  dc_rest : Topology.Node.id list; (* source route after the first hop *)
  dc_ifaces : Iface.t array;       (* every hop, candidate order *)
  dc_limits : float array;         (* threshold * capacity per hop *)
  mutable dc_est : Rate_estimator.t option;
}

(* Per-link candidate cache, invalidated by generation: every
   link-state flip and every crash bumps [ls_gen], so a stale
   generation means the static filter must be recomputed.  Between
   bumps, up-ness cannot change (all transitions go through
   [on_link_down]/[on_link_up]). *)
type dcache = {
  mutable dk_gen : int;
  mutable dk_cands : dcand array;
}

(* Hot-path state resolved once per (flow, data link) instead of per
   packet: interface handle, queue-admission limit, and lazy
   phase/estimator references.  Dropped whenever the flow's link
   changes (reroute) or control state dies (crash); the lazy fields
   resolve through the same [phase]/[estimator] functions as before,
   so creation instants — observable through the sampler's
   [estimator_links] probe set — are unchanged. *)
type hot = {
  h_link : Link.t;
  h_iface : Iface.t;
  h_limit : float;                 (* threshold * capacity of h_iface *)
  mutable h_phase : Phase.t option;
  mutable h_est : Rate_estimator.t option;
  mutable h_dcache : dcache option;
}

type t = {
  cfg : Config.t;
  net : Net.t;
  node_id : Topology.Node.id;
  detours : Detour_table.t;
  link_state : Topology.Link_state.t option;
  trace : Trace.t option;
  (* per-flow forwarding state: next hops as link ids, flag bitfield,
     flowlet pin and hot cache, slot-indexed with free-list recycling
     (struct-of-arrays by default, the record layout as the
     differential reference — see Flow_table) *)
  ft : hot Ft.t;
  store : Cache.t;
  custody_packets : (int, Packet.t) Hashtbl.t;  (* Chunk_key-packed *)
  estimators : (int, Rate_estimator.t) Hashtbl.t;
  phases : (int, Phase.t) Hashtbl.t;
  dcaches : (int, dcache) Hashtbl.t;
  c : counters;
  mutable ls_gen : int;           (* link-state generation, see dcache *)
  mutable bp_locals : int;        (* entries with bp_local = true *)
  mutable local_producer : (Packet.t -> unit) option;
  mutable local_consumer : (Packet.t -> unit) option;
  mutable crashed : bool;
  (* overload control; [None] is the legacy path throughout *)
  overload : Overload.Config.t option;
  mutable neighbor_pressure : (Topology.Node.id -> float) option;
}

let create ~cfg ~net ~node ~detours ?link_state ?trace ?overload () =
  {
    cfg;
    net;
    node_id = node;
    detours;
    link_state;
    trace;
    ft =
      Ft.create ~store:cfg.Config.flow_store ~gap:cfg.Config.flowlet_gap ();
    store =
      Cache.create ~high_water:cfg.Config.cache_high_water
        ~low_water:cfg.Config.cache_low_water
        ?policy:(Option.bind overload (fun ov -> Overload.Config.policy ov))
        ~capacity:cfg.Config.cache_bits ();
    custody_packets = Hashtbl.create 64;
    estimators = Hashtbl.create 8;
    phases = Hashtbl.create 8;
    dcaches = Hashtbl.create 8;
    c =
      {
        forwarded_data = 0;
        detoured = 0;
        custody_stored = 0;
        custody_released = 0;
        dropped = 0;
        bp_engages = 0;
        bp_releases = 0;
        cache_hits = 0;
        failovers = 0;
        custody_wiped = 0;
        shed = 0;
        detours_refused = 0;
      };
    ls_gen = 0;
    bp_locals = 0;
    local_producer = None;
    local_consumer = None;
    crashed = false;
    overload;
    neighbor_pressure = None;
  }

let set_neighbor_pressure t f = t.neighbor_pressure <- Some f

let now t = Sim.Engine.now (Net.engine t.net)

(* canonical link object for a stored id: Graph.link is O(1) and
   returns the same physical Link.t the adjacency lists hold, so the
   hot cache's [h_link == l] identity check keeps working *)
let link_of t id = Topology.Graph.link (Net.graph t.net) id

let record t e =
  match t.trace with
  | Some tr -> Trace.record tr ~time:(now t) e
  | None -> ()

(* Dropped events carry a formatted packet string; build it only when
   a trace is actually attached (bench runs drop packets too). *)
let record_drop t ~link (p : Packet.t) =
  match t.trace with
  | Some tr ->
    Trace.record tr ~time:(now t)
      (Trace.Dropped
         {
           node = t.node_id;
           link;
           packet = Format.asprintf "%a" Packet.pp p;
         })
  | None -> ()

(* chunk-lifecycle events are gated per-trace (Trace.set_lifecycle) so
   check/differential runs and the artefact goldens see an unchanged
   event stream unless a span collector asked for them *)
let record_enqueued t ~link (p : Packet.t) =
  match t.trace with
  | Some tr when Trace.lifecycle tr -> begin
    match p.Packet.header with
    | Packet.Data { flow; idx; _ } ->
      Trace.record tr ~time:(now t)
        (Trace.Enqueued { node = t.node_id; link; flow; idx })
    | Packet.Request _ | Packet.Backpressure _ -> ()
  end
  | Some _ | None -> ()

let record_evacuated t ~flow ~idx =
  match t.trace with
  | Some tr when Trace.lifecycle tr ->
    Trace.record tr ~time:(now t)
      (Trace.Custody_evacuated { node = t.node_id; flow; idx })
  | Some _ | None -> ()

let estimator t (l : Link.t) =
  match Hashtbl.find t.estimators l.Link.id with
  | e -> e
  | exception Not_found ->
    let e =
      Rate_estimator.create ~ti:t.cfg.Config.ti
        ~alpha:t.cfg.Config.estimator_alpha
        ~capacity:(l.Link.capacity *. t.cfg.Config.speed_factor)
    in
    Hashtbl.add t.estimators l.Link.id e;
    e

let phase t (l : Link.t) =
  match Hashtbl.find t.phases l.Link.id with
  | p -> p
  | exception Not_found ->
    let p =
      Phase.create ~engage:t.cfg.Config.engage_ratio
        ~release:t.cfg.Config.release_ratio
    in
    Hashtbl.add t.phases l.Link.id p;
    p

(* ------------------------------------------------------------------ *)
(* Flow table *)

let link_id = function Some (l : Link.t) -> l.Link.id | None -> -1

let install_flow t ?content ~flow ~data_link ~req_link () =
  if flow < 0 then invalid_arg "Router.install_flow: flow < 0";
  let slot = Ft.find t.ft flow in
  if slot >= 0 && Ft.bp_local t.ft slot then t.bp_locals <- t.bp_locals - 1;
  ignore
    (Ft.install t.ft ~flow
       ~content:(Option.value ~default:flow content)
       ~data_link:(link_id data_link) ~req_link:(link_id req_link))

let set_local_producer t f = t.local_producer <- Some f
let set_local_consumer t f = t.local_consumer <- Some f

let link_is_up t (l : Link.t) =
  match t.link_state with
  | Some ls -> Topology.Link_state.is_up ls l.Link.id
  | None -> true

(* ------------------------------------------------------------------ *)
(* Detour candidate cache *)

(* detour candidates around [l] within the configured depth and with
   every hop up; queue room is the per-scan dynamic check.  Remote
   queue state stands in for the paper's periodic utilisation exchange
   between one-hop neighbours. *)
let build_cands t (l : Link.t) =
  let usable =
    List.filter
      (fun (cand : Detour_table.candidate) ->
        cand.Detour_table.hops - 1 <= t.cfg.Config.max_detour
        && List.for_all (fun hop -> link_is_up t hop) cand.Detour_table.links)
      (Detour_table.candidates t.detours l)
  in
  Array.of_list
    (List.map
       (fun (cand : Detour_table.candidate) ->
         let ifaces =
           Array.of_list
             (List.map
                (fun (hop : Link.t) -> Net.iface t.net hop.Link.id)
                cand.Detour_table.links)
         in
         let limits =
           Array.map
             (fun i ->
               t.cfg.Config.detour_queue_threshold *. Iface.queue_capacity i)
             ifaces
         in
         {
           dc_first = cand.Detour_table.first_link;
           dc_via = cand.Detour_table.first_link.Link.dst;
           dc_rest = cand.Detour_table.rest;
           dc_ifaces = ifaces;
           dc_limits = limits;
           dc_est = None;
         })
       usable)

let refresh_dcache t (l : Link.t) dk =
  if dk.dk_gen <> t.ls_gen then begin
    dk.dk_cands <- build_cands t l;
    dk.dk_gen <- t.ls_gen
  end

let dcache_of t (l : Link.t) =
  let dk =
    match Hashtbl.find t.dcaches l.Link.id with
    | dk -> dk
    | exception Not_found ->
      let dk = { dk_gen = t.ls_gen - 1; dk_cands = [||] } in
      Hashtbl.add t.dcaches l.Link.id dk;
      dk
  in
  refresh_dcache t l dk;
  dk

(* Detour refusal into pressured neighbours: with overload control on,
   a candidate whose first hop lands on a neighbour already above the
   configured custody-occupancy fraction is unusable — deflecting load
   into a store that is itself shedding only spreads the collapse.
   The pressure function is installed by the protocol layer (it owns
   the router array); queue room is still checked first so the counter
   only counts candidates refused {e solely} because of pressure. *)
let cand_pressure_ok t (c : dcand) =
  match t.overload, t.neighbor_pressure with
  | Some ov, Some pressure_of
    when ov.Overload.Config.neighbor_pressure < infinity ->
    if pressure_of c.dc_via >= ov.Overload.Config.neighbor_pressure then begin
      t.c.detours_refused <- t.c.detours_refused + 1;
      false
    end
    else true
  | (Some _ | None), _ -> true

let cand_ok t (c : dcand) =
  let n = Array.length c.dc_ifaces in
  let rec ok i =
    i >= n
    || (Iface.queue_occupancy c.dc_ifaces.(i) < c.dc_limits.(i) && ok (i + 1))
  in
  ok 0 && cand_pressure_ok t c

let first_usable t dk =
  let n = Array.length dk.dk_cands in
  let rec go i =
    if i >= n then -1 else if cand_ok t dk.dk_cands.(i) then i else go (i + 1)
  in
  go 0

let usable_with_via t dk via =
  let n = Array.length dk.dk_cands in
  let rec go i =
    if i >= n then -1
    else if dk.dk_cands.(i).dc_via = via && cand_ok t dk.dk_cands.(i) then i
    else go (i + 1)
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Per-flow hot state *)

let hot_of t slot (l : Link.t) =
  match Ft.hot t.ft slot with
  | Some h when h.h_link == l -> h
  | Some _ | None ->
    let i = Net.iface t.net l.Link.id in
    let h =
      {
        h_link = l;
        h_iface = i;
        h_limit = t.cfg.Config.detour_queue_threshold *. Iface.queue_capacity i;
        h_phase = None;
        h_est = None;
        h_dcache = None;
      }
    in
    Ft.set_hot t.ft slot (Some h);
    h

let hot_phase t h =
  match h.h_phase with
  | Some p -> p
  | None ->
    let p = phase t h.h_link in
    h.h_phase <- Some p;
    p

let hot_est t h =
  match h.h_est with
  | Some e -> e
  | None ->
    let e = estimator t h.h_link in
    h.h_est <- Some e;
    e

let hot_dcache t h =
  match h.h_dcache with
  | Some dk ->
    refresh_dcache t h.h_link dk;
    dk
  | None ->
    let dk = dcache_of t h.h_link in
    h.h_dcache <- Some dk;
    dk

let slot_dcache t slot (l : Link.t) =
  match Ft.hot t.ft slot with
  | Some h when h.h_link == l -> hot_dcache t h
  | Some _ | None -> dcache_of t l

(* ------------------------------------------------------------------ *)
(* Back-pressure signalling *)

let signal_upstream t slot ~flow ~engage =
  let pkt = Packet.backpressure ~flow ~engage in
  if engage then t.c.bp_engages <- t.c.bp_engages + 1
  else t.c.bp_releases <- t.c.bp_releases + 1;
  record t (Trace.Bp_signal { node = t.node_id; flow; engage });
  let rl = Ft.req_link t.ft slot in
  if rl >= 0 then ignore (Net.send t.net ~via:(link_of t rl) pkt)
  else begin
    (* we are at the producer node: tell the local sender directly *)
    match t.local_producer with
    | Some producer -> producer pkt
    | None -> ()
  end

(* The "local" engage slot is shared between custody pressure and
   path-outage pressure: at most one upstream engage is outstanding
   for the pair, which preserves the checker's ≤2 balance per
   (node, flow) — the second slot being the relayed downstream
   engage. *)
let engage_local t slot ~flow ~which =
  let was = Ft.bp_local t.ft slot || Ft.bp_outage t.ft slot in
  (match which with
  | `Custody ->
    if not (Ft.bp_local t.ft slot) then begin
      Ft.set_bp_local t.ft slot true;
      t.bp_locals <- t.bp_locals + 1
    end
  | `Outage -> Ft.set_bp_outage t.ft slot true);
  if not was then signal_upstream t slot ~flow ~engage:true

let release_local t slot ~flow ~which =
  let had =
    match which with
    | `Custody -> Ft.bp_local t.ft slot
    | `Outage -> Ft.bp_outage t.ft slot
  in
  (match which with
  | `Custody ->
    if Ft.bp_local t.ft slot then begin
      Ft.set_bp_local t.ft slot false;
      t.bp_locals <- t.bp_locals - 1
    end
  | `Outage -> Ft.set_bp_outage t.ft slot false);
  if had && not (Ft.bp_local t.ft slot || Ft.bp_outage t.ft slot) then
    signal_upstream t slot ~flow ~engage:false

(* Route reconvergence: point an existing entry at new primary links
   without disturbing its flowlet or custody state.  A reroute onto a
   live data link ends any outage condition the old path caused. *)
let reroute_flow t ?content ~flow ~data_link ~req_link () =
  let slot = Ft.find t.ft flow in
  if slot < 0 then install_flow t ?content ~flow ~data_link ~req_link ()
  else begin
    Ft.set_links t.ft slot ~data_link:(link_id data_link)
      ~req_link:(link_id req_link);
    Ft.set_hot t.ft slot None;
    match data_link with
    | Some l when link_is_up t l ->
      Ft.set_failed_over t.ft slot false;
      if Ft.bp_outage t.ft slot then release_local t slot ~flow ~which:`Outage
    | Some _ | None -> ()
  end

(* ------------------------------------------------------------------ *)
(* Custody *)

(* Load shedding (overload control only): above [shed_threshold]
   custody occupancy, refuse the admission outright — new chunks are
   shed {e before} in-custody chunks are endangered, and the upstream
   hears about it immediately instead of at store exhaustion. *)
let shed_admission t =
  match t.overload with
  | Some ov when ov.Overload.Config.shed_threshold < infinity ->
    Cache.custody_occupancy t.store
    >= ov.Overload.Config.shed_threshold *. Cache.capacity t.store
  | Some _ | None -> false

(* Early back-pressure (overload control only): escalate upstream at
   [early_bp_threshold] occupancy, before the store's high watermark —
   under a flash crowd the watermark fires too late to stop the wave
   already in flight. *)
let early_bp t =
  match t.overload with
  | Some ov when ov.Overload.Config.early_bp_threshold < infinity ->
    Cache.custody_occupancy t.store
    >= ov.Overload.Config.early_bp_threshold *. Cache.capacity t.store
  | Some _ | None -> false

let custody t slot flow (p : Packet.t) =
  match p.Packet.header with
  | Packet.Data { idx; _ } -> begin
    let key = Chunk_key.pack ~flow ~idx in
    if Hashtbl.mem t.custody_packets key then begin
      (* duplicate copy (a retransmit racing the custodied original):
         admitting it would put a second entry in the store's custody
         queue while the packet table holds one payload per (flow,
         idx), so the duplicate could never drain — it would leak
         store space until the end of the run.  Drop it; the
         custodied copy is already scheduled to move on. *)
      t.c.dropped <- t.c.dropped + 1;
      record_drop t ~link:(-1) p
    end
    else if shed_admission t then begin
      t.c.shed <- t.c.shed + 1;
      engage_local t slot ~flow ~which:`Custody;
      t.c.dropped <- t.c.dropped + 1;
      record_drop t ~link:(-1) p
    end
    else
      match Cache.put_custody t.store ~flow ~idx ~bits:p.Packet.size with
      | `Stored ->
        Hashtbl.replace t.custody_packets key p;
        t.c.custody_stored <- t.c.custody_stored + 1;
        record t (Trace.Cached { node = t.node_id; flow; idx });
        (* back-pressure engages at the high watermark, not on the first
           stored chunk — small excursions are what the store is for *)
        if Cache.above_high t.store || early_bp t then
          engage_local t slot ~flow ~which:`Custody
      | `Rejected ->
        (* the admission policy refused the chunk: shed it and make the
           upstream slow down, exactly as for threshold shedding *)
        t.c.shed <- t.c.shed + 1;
        engage_local t slot ~flow ~which:`Custody;
        t.c.dropped <- t.c.dropped + 1;
        record_drop t ~link:(-1) p
      | `Full ->
        (* the store itself overflowed: the congestion-collapse guard the
           paper's back-pressure exists to prevent *)
        engage_local t slot ~flow ~which:`Custody;
        t.c.dropped <- t.c.dropped + 1;
        record_drop t ~link:(-1) p
  end
  | Packet.Request _ | Packet.Backpressure _ -> ()

(* ------------------------------------------------------------------ *)
(* Data forwarding *)

let send_detour t flow (c : dcand) (p : Packet.t) =
  let idx =
    match p.Packet.header with
    | Packet.Data { idx; _ } -> idx
    | Packet.Request _ | Packet.Backpressure _ -> -1
  in
  let p' =
    match p.Packet.header with
    | Packet.Data d ->
      {
        p with
        Packet.header =
          Packet.Data { d with via_detour = true; detour_route = c.dc_rest };
      }
    | Packet.Request _ | Packet.Backpressure _ -> p
  in
  let est =
    match c.dc_est with
    | Some e -> e
    | None ->
      let e = estimator t c.dc_first in
      c.dc_est <- Some e;
      e
  in
  Rate_estimator.note_transit est ~bits:p.Packet.size;
  match Net.send t.net ~via:c.dc_first p' with
  | `Queued ->
    t.c.detoured <- t.c.detoured + 1;
    record t
      (Trace.Detoured { node = t.node_id; flow; idx; via = c.dc_via });
    record_enqueued t ~link:c.dc_first.Link.id p';
    `Queued
  | `Dropped ->
    t.c.dropped <- t.c.dropped + 1;
    `Dropped

(* Deflect [p] onto the best usable detour around [l]; prefers the
   flow's previously pinned detour (flowlet stability), falls back to
   custody when no detour has queue room — including when the chosen
   detour's admission fails under the candidate check (a race with new
   arrivals, or an interface that just went down). *)
let try_detour t slot flow (l : Link.t) (p : Packet.t) =
  let dk = slot_dcache t slot l in
  let fi = first_usable t dk in
  if fi < 0 then custody t slot flow p
  else begin
    let first = dk.dk_cands.(fi) in
    let pinned =
      Ft.flowlet_choose t.ft slot ~now:(now t)
        ~preferred:(Flowlet.Via first.dc_via)
    in
    let chosen =
      match pinned with
      | Flowlet.Via via ->
        if via = first.dc_via then first
        else begin
          let vi = usable_with_via t dk via in
          if vi >= 0 then dk.dk_cands.(vi)
          else first (* pinned detour filled up; re-route *)
        end
      | Flowlet.Primary -> first
    in
    match send_detour t flow chosen p with
    | `Queued -> () (* the detour copy went out; [p] is dead *)
    | `Dropped -> custody t slot flow p
  end

let maybe_cache_popular t slot (p : Packet.t) =
  if t.cfg.Config.icn_caching then begin
    match p.Packet.header with
    | Packet.Data { idx; _ } ->
      Cache.insert_popular t.store ~flow:(Ft.content t.ft slot) ~idx
        ~bits:p.Packet.size
    | Packet.Request _ | Packet.Backpressure _ -> ()
  end

let forward_on_primary t slot flow (l : Link.t) (p : Packet.t) =
  match Net.send t.net ~via:l p with
  | `Queued ->
    t.c.forwarded_data <- t.c.forwarded_data + 1;
    record_enqueued t ~link:l.Link.id p
  | `Dropped ->
    (* overflowing queue falls through to detours, then custody —
       congestion is handled locally even before the estimator
       notices it *)
    try_detour t slot flow l p

let forward_primary_path t slot flow (p : Packet.t) =
  maybe_cache_popular t slot p;
  let dl = Ft.data_link t.ft slot in
  if dl < 0 then begin
    match t.local_consumer with
    | Some consumer -> consumer p
    | None -> t.c.dropped <- t.c.dropped + 1
  end
  else begin
    let l = link_of t dl in
    let h = hot_of t slot l in
    if not (link_is_up t l) then
      (* primary interface is down: go straight to the detour set (the
         paper's detour phase, triggered by outage rather than rate);
         custody is the fallback when no detour survives *)
      try_detour t slot flow l p
    else
      let ph = Phase.current (hot_phase t h) in
      let effective =
        if Ft.detour_override t.ft slot && ph = Phase.Push_data then
          Phase.Detour
        else ph
      in
      match effective with
      | Phase.Push_data -> forward_on_primary t slot flow l p
      | Phase.Detour ->
        if Iface.queue_occupancy h.h_iface < h.h_limit then begin
          ignore
            (Ft.flowlet_choose t.ft slot ~now:(now t)
               ~preferred:Flowlet.Primary);
          forward_on_primary t slot flow l p
        end
        else try_detour t slot flow l p
      | Phase.Backpressure -> custody t slot flow p
  end

let handle_data t (p : Packet.t) =
  match p.Packet.header with
  | Packet.Data ({ flow; detour_route; _ } as d) -> begin
    match detour_route with
    | next :: rest -> begin
      (* mid-detour: source-routed towards the rejoin node.  Under
         PIT-less forwarding this branch {e is} the data plane — the
         sender stamps the whole path as the label stack. *)
      match Topology.Graph.find_link (Net.graph t.net) t.node_id next with
      | None -> t.c.dropped <- t.c.dropped + 1
      | Some l ->
        let p' =
          { p with Packet.header = Packet.Data { d with detour_route = rest } }
        in
        Rate_estimator.note_transit (estimator t l) ~bits:p.Packet.size;
        (match Net.send t.net ~via:l p' with
        | `Queued ->
          t.c.forwarded_data <- t.c.forwarded_data + 1;
          record_enqueued t ~link:l.Link.id p'
        | `Dropped -> t.c.dropped <- t.c.dropped + 1)
    end
    | [] ->
      if t.cfg.Config.pitless then begin
        (* label stack exhausted at the consumer node: deliver without
           any flow-table consultation *)
        match t.local_consumer with
        | Some consumer -> consumer p
        | None -> t.c.dropped <- t.c.dropped + 1
      end
      else begin
        let slot = Ft.find t.ft flow in
        if slot < 0 then t.c.dropped <- t.c.dropped + 1
        else forward_primary_path t slot flow p
      end
  end
  | Packet.Request _ | Packet.Backpressure _ -> ()

(* ------------------------------------------------------------------ *)
(* Requests and back-pressure packets *)

(* PIT-less request plane: pop the next label and relay; an exhausted
   stack means this is the producer node.  No estimator bookkeeping —
   the anticipated-rate/phase machinery exists to manage the per-flow
   state this mode deliberately does without. *)
let handle_request_pitless t (p : Packet.t) =
  match p.Packet.header with
  | Packet.Request ({ route; _ } as r) -> begin
    match route with
    | next :: rest -> begin
      match Topology.Graph.find_link (Net.graph t.net) t.node_id next with
      | None -> t.c.dropped <- t.c.dropped + 1
      | Some l ->
        let p' =
          { p with Packet.header = Packet.Request { r with route = rest } }
        in
        ignore (Net.send t.net ~via:l p')
    end
    | [] -> begin
      match t.local_producer with
      | Some producer -> producer p
      | None -> t.c.dropped <- t.c.dropped + 1
    end
  end
  | Packet.Data _ | Packet.Backpressure _ -> ()

let handle_request t (p : Packet.t) =
  match p.Packet.header with
  | Packet.Request { flow; nc; _ } -> begin
    let slot = Ft.find t.ft flow in
    if slot < 0 then t.c.dropped <- t.c.dropped + 1
    else if
      (* ICN short-circuit: a popularity-cached copy answers the request
         locally and the request is not forwarded upstream *)
      t.cfg.Config.icn_caching
      && Cache.lookup_popular t.store ~flow:(Ft.content t.ft slot) ~idx:nc
    then begin
      t.c.cache_hits <- t.c.cache_hits + 1;
      record t (Trace.Cache_hit { node = t.node_id; flow; idx = nc });
      let data =
        Packet.data ~flow ~idx:nc ~born:(now t) t.cfg.Config.chunk_bits
      in
      forward_primary_path t slot flow data
    end
    else begin
      (* every forwarded request predicts one chunk leaving through
         the data interface (eq. 1 bookkeeping) *)
      let dl = Ft.data_link t.ft slot in
      if dl >= 0 then
        Rate_estimator.note_request
          (hot_est t (hot_of t slot (link_of t dl)))
          ~expected_bits:t.cfg.Config.chunk_bits;
      let rl = Ft.req_link t.ft slot in
      if rl >= 0 then ignore (Net.send t.net ~via:(link_of t rl) p)
      else begin
        match t.local_producer with
        | Some producer -> producer p
        | None -> t.c.dropped <- t.c.dropped + 1
      end
    end
  end
  | Packet.Data _ | Packet.Backpressure _ -> ()

let handle_backpressure t (p : Packet.t) =
  match p.Packet.header with
  | Packet.Backpressure { flow; engage } -> begin
    let slot = Ft.find t.ft flow in
    if slot < 0 then ()
    else if engage then begin
      (* paper §3.3: the upstream node first tries to bypass the
         congested area with a deeper detour, else relays the
         notification towards the sender *)
      let can_absorb =
        let dl = Ft.data_link t.ft slot in
        dl >= 0 && first_usable t (slot_dcache t slot (link_of t dl)) >= 0
      in
      if can_absorb then Ft.set_detour_override t.ft slot true
      else begin
        Ft.set_bp_forwarded t.ft slot true;
        signal_upstream t slot ~flow ~engage:true
      end
    end
    else begin
      Ft.set_detour_override t.ft slot false;
      if Ft.bp_forwarded t.ft slot then begin
        Ft.set_bp_forwarded t.ft slot false;
        signal_upstream t slot ~flow ~engage:false
      end
    end
  end
  | Packet.Data _ | Packet.Request _ -> ()

let handler t : Net.handler =
  if t.cfg.Config.pitless then
    fun ~from:_ p ->
      match p.Packet.header with
      | Packet.Data _ -> handle_data t p
      | Packet.Request _ -> handle_request_pitless t p
      | Packet.Backpressure _ -> ()
  else
    fun ~from:_ p ->
      match p.Packet.header with
      | Packet.Data _ -> handle_data t p
      | Packet.Request _ -> handle_request t p
      | Packet.Backpressure _ -> handle_backpressure t p

let originate_data t p = handle_data t p

(* ------------------------------------------------------------------ *)
(* Flow teardown *)

(* Silent release: no upstream signalling — the flow is finished, its
   sender is about to go quiet on its own.  Custody still held for the
   flow can only be duplicate copies (the consumer has every chunk),
   so purge them as drops to keep the custody ledger and conservation
   accounting balanced.  Works while crashed (the slot and store are
   not control state). *)
let release_flow t ~flow =
  let slot = Ft.find t.ft flow in
  if slot >= 0 then begin
    if Ft.bp_local t.ft slot then t.bp_locals <- t.bp_locals - 1;
    let rec strip () =
      match Cache.take_custody t.store ~flow with
      | Some (idx, _bits) ->
        Hashtbl.remove t.custody_packets (Chunk_key.pack ~flow ~idx);
        t.c.dropped <- t.c.dropped + 1;
        strip ()
      | None -> ()
    in
    strip ();
    Ft.release t.ft ~flow
  end

(* ------------------------------------------------------------------ *)
(* Periodic work *)

let tick t =
  if t.crashed then ()
  else
    Hashtbl.iter
      (fun link_id est ->
        Rate_estimator.tick est;
        let l = Topology.Graph.link (Net.graph t.net) link_id in
        let ph = phase t l in
        let before = Phase.current ph in
        let after =
          Phase.update ph ~ratio:(Rate_estimator.ratio est)
            ~detour_usable:(first_usable t (dcache_of t l) >= 0)
            ~custody_pressure:(Cache.above_high t.store)
            ~custody_drained:(Cache.below_low t.store)
        in
        if before <> after then
          record t
            (Trace.Phase_change
               { node = t.node_id; link = link_id; phase = Phase.to_string after }))
      t.estimators

let drain t =
  if t.crashed then ()
  else begin
    (* release custody one chunk per flow per round so competing flows
       share the recovered bandwidth round-robin (the paper's scheduler
       multiplexes flows in round-robin fashion) *)
    if not (Cache.custody_is_empty t.store) then begin
      let release_one flow =
        let slot = Ft.find t.ft flow in
        if slot < 0 then false
        else begin
          let dl = Ft.data_link t.ft slot in
          if dl < 0 then false
          else begin
            let l = link_of t dl in
            let h = hot_of t slot l in
            let out =
              if
                link_is_up t l
                && Iface.queue_occupancy h.h_iface < h.h_limit
              then `Primary
              else begin
                let dk = hot_dcache t h in
                let fi = first_usable t dk in
                if fi >= 0 then `Detour dk.dk_cands.(fi) else `None
              end
            in
            match out with
            | `None -> false
            | (`Primary | `Detour _) as out -> begin
              (* peek-then-commit: the chunk stays charged against the
                 store budget until the handoff is known to have
                 succeeded, so nothing can be admitted into the
                 transient gap a failed evacuation used to open (the
                 old take-then-re-put also double-counted
                 [custody_stored] and could lose the chunk outright if
                 the re-put found the store full) *)
              match Cache.peek_custody t.store ~flow with
              | None -> false
              | Some (idx, _bits) -> begin
                t.c.custody_released <- t.c.custody_released + 1;
                record t
                  (Trace.Custody_released { node = t.node_id; flow; idx });
                let key = Chunk_key.pack ~flow ~idx in
                match Hashtbl.find t.custody_packets key with
                | exception Not_found ->
                  (* store entry without a payload cannot be handed off;
                     discharge it so drain cannot spin on the flow *)
                  Cache.commit_custody t.store ~flow;
                  true
                | p ->
                  let sent =
                    match out with
                    | `Primary -> begin
                      match Net.send t.net ~via:l p with
                      | `Queued ->
                        t.c.forwarded_data <- t.c.forwarded_data + 1;
                        record_enqueued t ~link:l.Link.id p;
                        true
                      | `Dropped -> false
                    end
                    | `Detour cand -> begin
                      match send_detour t flow cand p with
                      | `Queued ->
                        (* custody left this node sideways, not down the
                           primary: the recovery path's evacuation
                           signal *)
                        record_evacuated t ~flow ~idx;
                        true
                      | `Dropped -> false
                    end
                  in
                  if sent then begin
                    Cache.commit_custody t.store ~flow;
                    Hashtbl.remove t.custody_packets key;
                    true
                  end
                  else begin
                    (* raced with new arrivals, or the interface just
                       went down: the chunk never left custody, so undo
                       the release accounting and stop draining this
                       flow for the round — never leak, never
                       double-admit *)
                    t.c.custody_released <- t.c.custody_released - 1;
                    false
                  end
              end
            end
          end
        end
      in
      let flows = Cache.flows_in_custody t.store in
      let progress = ref true in
      while !progress do
        progress := false;
        List.iter (fun flow -> if release_one flow then progress := true) flows
      done
    end;
    (* release upstream pressure once the store has drained enough *)
    if t.bp_locals > 0 && Cache.below_low t.store then
      Ft.iter t.ft (fun flow slot ->
          if Ft.bp_local t.ft slot && Cache.custody_backlog t.store ~flow = 0
          then release_local t slot ~flow ~which:`Custody)
  end

(* ------------------------------------------------------------------ *)
(* Fault recovery *)

(* Re-evaluate every flow whose primary interface is down: ride the
   surviving detours when there are any ("down or congested" links
   trigger the detour phase, paper §3.3), stop the sender when no path
   remains.  Called by the protocol layer on every link-state flip
   plus a drain, so custody held for a dead next-hop evacuates onto
   detours at the outage instant. *)
let on_link_down t _link_id =
  t.ls_gen <- t.ls_gen + 1;
  if not t.crashed then begin
    Ft.iter t.ft (fun flow slot ->
        let dl = Ft.data_link t.ft slot in
        if dl >= 0 then begin
          let l = link_of t dl in
          if not (link_is_up t l) then
            if first_usable t (slot_dcache t slot l) >= 0 then begin
              if not (Ft.failed_over t.ft slot) then begin
                Ft.set_failed_over t.ft slot true;
                t.c.failovers <- t.c.failovers + 1
              end
            end
            else engage_local t slot ~flow ~which:`Outage
        end);
    drain t
  end

let on_link_up t _link_id =
  t.ls_gen <- t.ls_gen + 1;
  if not t.crashed then begin
    Ft.iter t.ft (fun flow slot ->
        let dl = Ft.data_link t.ft slot in
        if dl >= 0 then begin
          let l = link_of t dl in
          if link_is_up t l then begin
            Ft.set_failed_over t.ft slot false;
            if Ft.bp_outage t.ft slot then
              release_local t slot ~flow ~which:`Outage
          end
          else if first_usable t (slot_dcache t slot l) >= 0 then begin
            (* primary still down but a detour came back *)
            if Ft.bp_outage t.ft slot then
              release_local t slot ~flow ~which:`Outage;
            if not (Ft.failed_over t.ft slot) then begin
              Ft.set_failed_over t.ft slot true;
              t.c.failovers <- t.c.failovers + 1
            end
          end
        end);
    drain t
  end

let crash t ~policy =
  if t.crashed then []
  else begin
    t.crashed <- true;
    (* control state is volatile under every policy; hot caches hold
       references into the estimator/phase tables being reset, so they
       die with it *)
    Ft.iter t.ft (fun _ slot ->
        Ft.set_bp_local t.ft slot false;
        Ft.set_bp_forwarded t.ft slot false;
        Ft.set_detour_override t.ft slot false;
        Ft.set_bp_outage t.ft slot false;
        Ft.set_failed_over t.ft slot false;
        Ft.set_hot t.ft slot None);
    t.bp_locals <- 0;
    Hashtbl.reset t.estimators;
    Hashtbl.reset t.phases;
    t.ls_gen <- t.ls_gen + 1;
    match policy with
    | `Preserve -> []
    | `Wipe ->
      let wiped =
        List.sort compare
          (Hashtbl.fold (fun k _ acc -> k :: acc) t.custody_packets [])
        |> List.map (fun k -> (Chunk_key.flow k, Chunk_key.idx k))
      in
      (* empty the store's custody region coherently with the table *)
      List.iter
        (fun flow ->
          let rec strip () =
            match Cache.take_custody t.store ~flow with
            | Some _ -> strip ()
            | None -> ()
          in
          strip ())
        (Cache.flows_in_custody t.store);
      Hashtbl.reset t.custody_packets;
      t.c.custody_wiped <- t.c.custody_wiped + List.length wiped;
      wiped
  end

let restart t = t.crashed <- false

let is_crashed t = t.crashed

let phase_of_link t link_id =
  Option.map Phase.current (Hashtbl.find_opt t.phases link_id)

let anticipated_rate_of_link t link_id =
  Option.map Rate_estimator.anticipated_rate
    (Hashtbl.find_opt t.estimators link_id)

let ratio_of_link t link_id =
  Option.map Rate_estimator.ratio (Hashtbl.find_opt t.estimators link_id)

let estimator_links t =
  List.sort Int.compare
    (Hashtbl.fold (fun link_id _ acc -> link_id :: acc) t.estimators [])

let bp_active_flows t =
  let n = ref 0 in
  Ft.iter t.ft (fun _ slot ->
      if Ft.bp_local t.ft slot || Ft.bp_forwarded t.ft slot then incr n);
  !n

let flow_entries_live t = Ft.live t.ft
let flow_entries_peak t = Ft.peak t.ft
let flow_entries_recycled t = Ft.recycled t.ft
let flow_table_bytes t = Ft.approx_bytes t.ft

let cache t = t.store
let counters t = t.c
let node t = t.node_id
let custody_packet_count t = Hashtbl.length t.custody_packets

let phase_transitions t =
  Hashtbl.fold (fun _ p acc -> acc + Phase.transitions p) t.phases 0
