(** Per-flow forwarding state, compacted.

    The router keeps one entry per flow crossing it: next hops for
    data and requests, five back-pressure/fail-over flags, the flowlet
    pin and a per-(flow, link) hot cache.  This module owns that state
    behind a slot-indexed interface with two interchangeable layouts:

    - [`Soa] (default): int-indexed struct-of-arrays — packed int
      fields for identity and next hops (link {e ids}, [-1] = none), a
      one-byte flag bitfield per slot, unboxed float timestamps for
      the flowlet clock, and free-list recycling of released slots.
      Steady-state cost is a few dozen bytes per flow, measured and
      frozen by the [flows_1m] benchmark.
    - [`Legacy]: the PR-5 record-per-flow layout (hashtable of mutable
      records plus a dense mirror array indexed by flow id), kept as
      the differential-testing reference.

    Both layouts drive iteration off a stdlib [Hashtbl] fed the same
    key sequence, so {!iter} order — observable through the drain and
    fault loops — is identical between them.  The 50-seed
    SoA-vs-legacy sweep in [test/test_validation.ml] pins this.

    Next hops are stored as link ids rather than [Link.t] to keep a
    slot at two words; resolve through [Topology.Graph.link] (O(1),
    returns the canonical physical link). *)

type 'hot t
(** ['hot] is the router's per-(flow, link) hot-cache record; the
    table stores it opaquely so the layouts stay reusable. *)

val create : store:[ `Soa | `Legacy ] -> gap:float -> unit -> 'hot t
(** [gap] is the flowlet idle gap (see {!flowlet_choose}).
    @raise Invalid_argument if [gap < 0]. *)

val find : 'hot t -> int -> int
(** [find t flow] is the flow's slot, or [-1] when not installed. *)

val install :
  'hot t -> flow:int -> content:int -> data_link:int -> req_link:int -> int
(** Install (or reinstall) a flow; returns its slot.  A reinstall
    keeps the slot and the flowlet pin but resets links, flags and the
    hot cache — exactly the legacy [Hashtbl.replace] semantics, where
    the separate flowlet table survived reinstalls.
    @raise Invalid_argument if [flow < 0]. *)

val release : 'hot t -> flow:int -> unit
(** Free the flow's slot onto the free list (counted in {!recycled});
    a later {!install} may hand the slot to a different flow.  No-op
    when the flow is not installed. *)

val flow_of : 'hot t -> int -> int
(** Inverse of {!find} for live slots. *)

val content : 'hot t -> int -> int

val data_link : 'hot t -> int -> int
(** Next-hop link id towards the consumer; [-1] = none (consumer node). *)

val req_link : 'hot t -> int -> int
(** Next-hop link id towards the producer; [-1] = none (producer node). *)

val set_links : 'hot t -> int -> data_link:int -> req_link:int -> unit

val bp_local : 'hot t -> int -> bool
val set_bp_local : 'hot t -> int -> bool -> unit
val bp_forwarded : 'hot t -> int -> bool
val set_bp_forwarded : 'hot t -> int -> bool -> unit
val detour_override : 'hot t -> int -> bool
val set_detour_override : 'hot t -> int -> bool -> unit
val bp_outage : 'hot t -> int -> bool
val set_bp_outage : 'hot t -> int -> bool -> unit
val failed_over : 'hot t -> int -> bool
val set_failed_over : 'hot t -> int -> bool -> unit

val hot : 'hot t -> int -> 'hot option
val set_hot : 'hot t -> int -> 'hot option -> unit

val flowlet_choose :
  'hot t -> int -> now:float -> preferred:Flowlet.route -> Flowlet.route
(** Per-slot flowlet pinning with {!Flowlet.choose} semantics: the
    first call pins [preferred]; later calls return the pin, replacing
    it with [preferred] only after an idle gap longer than [gap]. *)

val iter : 'hot t -> (int -> int -> unit) -> unit
(** [iter t f] calls [f flow slot] for every live entry, in the
    layout-independent hashtable order (see module doc). *)

val live : _ t -> int
(** Installed entries right now. *)

val peak : _ t -> int
(** High-water mark of {!live} over the table's lifetime. *)

val recycled : _ t -> int
(** Slots returned to the free list by {!release}. *)

val approx_bytes : _ t -> int
(** Estimated retained heap for the per-flow state (arrays at current
    capacity plus hashtable overhead; the legacy layout counts its
    records).  An accounting estimate for gauges and reports — the
    frozen bytes/flow figure comes from the [flows_1m] benchmark's
    live-words measurement, not from this. *)
