(** Data sender (producer endpoint), paper §3.2.

    Two modes.  {e push-data}: every request ⟨Nc, ACKc, Ac⟩ invites
    the sender to push all chunks up to Ac — requested plus
    anticipated.  Pushing is paced at the sender's outgoing-link rate
    (the open loop sends "as much data as the outgoing link can
    carry", not an instantaneous dump): invited chunks join a pending
    backlog serviced one transmission time apart.  {e back-pressure}:
    after an engage notification the backlog freezes and the sender
    ships exactly one chunk per request (1-to-1 flow balance) until
    released.  Retransmissions (a request repeating the previous Nc,
    i.e. the receiver is stuck on a hole) bypass the backlog and are
    rate-limited per chunk. *)

type t

val create :
  cfg:Config.t -> eng:Sim.Engine.t ->
  ?trace:Chunksim.Trace.t ->
  flow:int -> total_chunks:int -> pace_rate:float ->
  transmit:(Chunksim.Packet.t -> unit) -> unit -> t
(** [pace_rate]: bits per second at which the backlog drains —
    normally the capacity of the producer's outgoing link.
    [transmit] hands a data packet to the local router.  [trace]
    receives lifecycle-gated [Retransmit] events (see
    {!Chunksim.Trace.set_lifecycle}).
    @raise Invalid_argument if [total_chunks <= 0] or
    [pace_rate <= 0.]. *)

val handle : t -> Chunksim.Packet.t -> unit
(** Process a Request or Backpressure packet addressed to this flow;
    other packets and other flows are ignored. *)

val pushed : t -> int
(** Chunks transmitted at least once. *)

val backlog : t -> int
(** Invited chunks not yet transmitted. *)

val sent_packets : t -> int
(** Data packets transmitted, retransmissions included. *)

val in_backpressure : t -> bool
