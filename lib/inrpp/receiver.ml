type t = {
  cfg : Config.t;
  eng : Sim.Engine.t;
  flow : int;
  sess : Session.t;
  send_request : Chunksim.Packet.t -> unit;
  on_complete : fct:float -> unit;
  mutable started : float option;
  mutable completed : float option;
  mutable req_count : int;
  mutable dup_count : int;
  mutable last_progress : float;
  mutable timeout_armed : bool;
  mutable timeout_scale : float;  (* exponential backoff multiplier *)
  (* retransmission circuit breaker (overload control); None = legacy *)
  breaker : Overload.Breaker.t option;
}

let create ~cfg ~eng ~flow ~total_chunks ~send_request ~on_complete
    ?overload () =
  {
    cfg;
    eng;
    flow;
    sess = Session.create ~total_chunks;
    send_request;
    on_complete;
    started = None;
    completed = None;
    req_count = 0;
    dup_count = 0;
    last_progress = 0.;
    timeout_armed = false;
    timeout_scale = 1.;
    breaker =
      Option.map
        (fun (ov : Overload.Config.t) ->
          Overload.Breaker.create ~budget:ov.retry_budget
            ~probe_interval:ov.probe_interval)
        overload;
  }

let request t =
  let nc = Session.next_needed t.sess in
  if nc < Session.total t.sess then begin
    let ac =
      min
        (Session.total t.sess - 1)
        (max nc (Session.highest_received t.sess) + t.cfg.Config.anticipation)
    in
    t.req_count <- t.req_count + 1;
    t.send_request (Chunksim.Packet.request ~flow:t.flow ~nc ~ack:nc ~ac)
  end

(* Re-request timer with exponential backoff: each barren firing (no
   progress for a whole interval) re-requests and widens the interval
   by [timeout_backoff], capped at [timeout_backoff_cap ×
   request_timeout]; any progress resets the interval.  During a long
   partition the request count therefore grows logarithmically then
   linearly at the capped interval instead of linearly at 1/timeout. *)
let rec arm_timeout t =
  if not t.timeout_armed then begin
    t.timeout_armed <- true;
    let delay = t.cfg.Config.request_timeout *. t.timeout_scale in
    ignore
      (Sim.Engine.schedule t.eng ~delay (fun () ->
           t.timeout_armed <- false;
           if t.completed = None then begin
             let now = Sim.Engine.now t.eng in
             if now -. t.last_progress >= delay -. 1e-9 then begin
               let action =
                 match t.breaker with
                 | None -> `Retry
                 | Some b -> Overload.Breaker.on_timeout b ~now
               in
               match action with
               | `Retry ->
                 request t;
                 t.timeout_scale <-
                   Float.min
                     (t.timeout_scale *. t.cfg.Config.timeout_backoff)
                     t.cfg.Config.timeout_backoff_cap
               | `Probe ->
                 (* half-open: exactly one probe, no backoff growth —
                    the breaker's probe interval is the pacing now *)
                 request t
               | `Wait -> ()
             end;
             arm_timeout t
           end))
  end

let start t =
  if t.started = None then begin
    t.started <- Some (Sim.Engine.now t.eng);
    t.last_progress <- Sim.Engine.now t.eng;
    request t;
    (* pace extra requests until data flows, like TCP's initial window *)
    let gap = 1. /. t.cfg.Config.initial_request_rate in
    let rec prime n =
      if n > 0 then
        ignore
          (Sim.Engine.schedule t.eng ~delay:gap (fun () ->
               if Session.received_count t.sess = 0 && t.completed = None
               then begin
                 request t;
                 prime (n - 1)
               end))
    in
    prime 3;
    arm_timeout t
  end

let handle_data t (p : Chunksim.Packet.t) =
  match p.Chunksim.Packet.header with
  | Chunksim.Packet.Data { flow; idx; _ } when flow = t.flow ->
    if t.completed = None then begin
      let now = Sim.Engine.now t.eng in
      (match Session.receive t.sess idx with
      | `Duplicate -> t.dup_count <- t.dup_count + 1
      | `New ->
        t.last_progress <- now;
        t.timeout_scale <- 1.;
        (match t.breaker with
        | Some b -> Overload.Breaker.on_progress b
        | None -> ());
        if Session.is_complete t.sess then begin
          t.completed <- Some now;
          let fct =
            match t.started with
            | Some s -> now -. s
            | None -> now
          in
          t.on_complete ~fct
        end
        else request t)
    end
  | Chunksim.Packet.Data _ | Chunksim.Packet.Request _
  | Chunksim.Packet.Backpressure _ ->
    ()

let session t = t.sess
let breaker t = t.breaker
let requests_sent t = t.req_count
let duplicates t = t.dup_count
let started_at t = t.started
let completed_at t = t.completed
