(* The estimator record is deliberately all-float: records whose
   fields are all floats get OCaml's flat unboxed representation, so
   the per-packet [note_request]/[note_transit] stores and the
   per-interval [tick] update touch no boxed values and allocate
   nothing.  This is why the tick counter lives in the record as a
   float ([intervals] converts on read, a cold path) — one int field
   would box every float field and put an allocation on the protocol
   hot path.  The EWMA arithmetic is kept exactly as before
   (divisions, not precomputed reciprocals) so results are
   bit-identical to the boxed implementation. *)
type t = {
  ti : float;
  alpha : float;
  one_minus_alpha : float;
  capacity : float;
  mutable interval_bits : float;
  mutable ra : float;
  mutable ticks : float;
}

let create ~ti ~alpha ~capacity =
  if ti <= 0. then invalid_arg "Rate_estimator.create: ti <= 0";
  if alpha < 0. || alpha > 1. then
    invalid_arg "Rate_estimator.create: alpha outside [0,1]";
  if capacity <= 0. then invalid_arg "Rate_estimator.create: capacity <= 0";
  {
    ti;
    alpha;
    one_minus_alpha = 1. -. alpha;
    capacity;
    interval_bits = 0.;
    ra = 0.;
    ticks = 0.;
  }

let note_request t ~expected_bits =
  t.interval_bits <- t.interval_bits +. expected_bits

let note_transit t ~bits = t.interval_bits <- t.interval_bits +. bits

let tick t =
  let instant = t.interval_bits /. t.ti in
  t.ra <- (t.alpha *. instant) +. (t.one_minus_alpha *. t.ra);
  t.interval_bits <- 0.;
  t.ticks <- t.ticks +. 1.

let anticipated_rate t = t.ra

let ratio t = t.ra /. t.capacity

let intervals t = int_of_float t.ticks

module Shares = struct
  type t = {
    n : int;
    counts : int array array;   (* counts.(from).(to) *)
    totals : int array;         (* per from-iface *)
  }

  let create ~ifaces =
    if ifaces <= 0 then invalid_arg "Shares.create: ifaces <= 0";
    {
      n = ifaces;
      counts = Array.make_matrix ifaces ifaces 0;
      totals = Array.make ifaces 0;
    }

  let check t i name =
    if i < 0 || i >= t.n then
      invalid_arg (Printf.sprintf "Shares.%s: iface %d out of range" name i)

  let note t ~from_iface ~to_iface =
    check t from_iface "note";
    check t to_iface "note";
    t.counts.(from_iface).(to_iface) <- t.counts.(from_iface).(to_iface) + 1;
    t.totals.(from_iface) <- t.totals.(from_iface) + 1

  let y t ~from_iface ~to_iface =
    check t from_iface "y";
    check t to_iface "y";
    if t.totals.(from_iface) = 0 then 0.
    else
      float_of_int t.counts.(from_iface).(to_iface)
      /. float_of_int t.totals.(from_iface)

  let reset t =
    Array.iter (fun row -> Array.fill row 0 t.n 0) t.counts;
    Array.fill t.totals 0 t.n 0
end
