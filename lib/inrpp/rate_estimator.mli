(** Anticipated-rate estimation (paper §3.3, eq. 1).

    Each router interface tracks the requests it forwards upstream per
    measurement interval T_i; every forwarded request predicts one
    chunk of data arriving back and leaving through a known data
    interface within roughly one RTT.  Summing those predictions per
    outgoing data interface gives the {e anticipated rate} r_a(i),
    which the phase machine compares against the interface's actual
    rate r(i).

    r_a is smoothed with an EWMA across intervals so a single bursty
    interval does not flip phases (the link-swapping concern of §4). *)

type t

val create : ti:float -> alpha:float -> capacity:float -> t
(** @raise Invalid_argument if [ti <= 0.], [alpha] outside [0, 1] or
    [capacity <= 0.]. *)

val note_request : t -> expected_bits:float -> unit
(** A request predicting [expected_bits] of data through this
    interface was forwarded during the current interval. *)

val note_transit : t -> bits:float -> unit
(** Data already in flight through this interface that was {e not}
    predicted by a counted request (detoured traffic arriving from
    off-path).  Counted into the same interval. *)

val tick : t -> unit
(** Close the current interval: fold its demand into the EWMA and
    reset the counters.  Call every [ti] seconds. *)

val anticipated_rate : t -> float
(** Smoothed r_a, bps. *)

val ratio : t -> float
(** r_a / capacity — the phase-machine input. *)

val intervals : t -> int
(** Ticks so far. *)

(** {1 Request-share bookkeeping (eq. 1 verbatim)} *)

module Shares : sig
  type t
  (** Per-router matrix of request counts: how many requests arriving
      on interface [i] were forwarded to each other interface — the
      y_{i→j} ratios of eq. 1. *)

  val create : ifaces:int -> t
  val note : t -> from_iface:int -> to_iface:int -> unit
  val y : t -> from_iface:int -> to_iface:int -> float
  (** Fraction of [from_iface]'s forwarded requests that went to
      [to_iface]; [0.] when nothing was forwarded. *)

  val reset : t -> unit
end
