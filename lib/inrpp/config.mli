(** Protocol constants.

    One record gathers every tunable of the INRPP implementation; the
    ablation benches sweep individual fields.  All sizes in bits,
    times in seconds, rates in bits per second. *)

type t = {
  chunk_bits : float;
  (** content chunk wire size (default 10 kB) *)
  anticipation : int;
  (** Ac window: how many chunks beyond Nc a request invites the
      sender to push (paper §3.2, "a constant parameter set
      globally") *)
  initial_request_rate : float;
  (** requests per second while no data has arrived yet — the
      "initial window" analogue *)
  request_timeout : float;
  (** receiver retransmits the request for its lowest missing chunk
      after this much silence (the paper's explicit timers/NACKs) *)
  timeout_backoff : float;
  (** multiplicative backoff of the re-request timer while a flow
      makes no progress (≥ 1; 1 disables backoff).  Keeps re-request
      storms from melting a partitioned network *)
  timeout_backoff_cap : float;
  (** ceiling on the backoff multiplier: the re-request interval never
      exceeds [timeout_backoff_cap × request_timeout] *)
  ti : float;
  (** measurement interval T_i of the anticipated-rate estimator;
      the paper suggests ≈ average RTT *)
  estimator_alpha : float;
  (** EWMA smoothing of r_a across intervals, in [0, 1]; higher =
      more reactive *)
  engage_ratio : float;
  (** enter detour/back-pressure when r_a / r crosses this *)
  release_ratio : float;
  (** return towards push when r_a / r falls below this
      (hysteresis against link swapping, an open issue the paper
      flags in §4) *)
  max_detour : int;
  (** intermediate nodes allowed on a detour (1 = paper's headline;
      2 covers "nodes on the detour path can further detour by one
      extra hop") *)
  flowlet_gap : float;
  (** idle gap after which a flow may be re-pinned to a different
      path (flowlet switching, avoids reordering within bursts) *)
  detour_queue_threshold : float;
  (** a detour first-hop is usable while its queue occupancy is
      below this fraction *)
  cache_bits : float;
  (** content-store capacity per router *)
  cache_high_water : float;
  cache_low_water : float;
  queue_bits : float;
  (** interface buffer *)
  speed_factor : float;
  (** derate interface transmit speed (§3.3 footnote); (0, 1] *)
  drr_scheduler : bool;
  (** per-flow deficit-round-robin interface queues instead of FIFO —
      the §3.3 "round-robin scheduler" (ablation [ablation-sched]) *)
  icn_caching : bool;
  (** classic ICN on-path caching: routers insert forwarded chunks
      into the popularity (LRU) region of their content store and
      answer later requests for the same content locally.  Off by
      default: the paper's experiments concern the custody role of
      storage; the [icn-cache] bench shows the two roles composing. *)
  flow_store : [ `Soa | `Legacy ];
  (** per-flow forwarding-state layout in the routers (see
      {!Flow_table}): [`Soa] (default) is the compacted
      struct-of-arrays table with free-list recycling, [`Legacy] the
      PR-5 record-per-flow layout kept as the differential-testing
      reference.  Behaviourally identical — the 50-seed sweep pins
      byte-identical results. *)
  pitless : bool;
  (** PIT-less forwarding ablation ("Living in a PIT-less World",
      PAPERS.md): routers keep {e no} per-flow state.  Forwarding
      state rides in the packet as a source-routed label stack —
      data carries the remaining path in [detour_route], requests in
      [route], both stamped at the endpoints — and routers pop labels
      instead of consulting the flow table.  The cost of statelessness
      is the loss of everything the paper builds on that state: no
      custody, no detours, no back-pressure.  Incompatible with
      [icn_caching] (no content keys at routers). *)
  flow_teardown : bool;
  (** recycle router flow-table entries when a flow completes: the
      protocol layer releases every node the flow was installed on
      (including nodes added by route reconvergence during an outage).
      Off by default — with teardown on, late duplicate chunks of a
      completed flow are dropped at the first stateful router instead
      of riding to the consumer, which perturbs drop counters; the
      millions-of-flows runs and the leak regression tests switch it
      on. *)
}

val default : t
(** 10 kB chunks, Ac = 8, 100 req/s initial, 200 ms timeout (backoff
    off by default — the fault experiments enable ×2 capped at ×32),
    T_i = 40 ms, α = 0.3, engage 0.95 / release 0.75, 1-hop detours
    (+1 recursion), 20 ms flowlets, queue threshold 0.5, 4 MB cache
    (0.7/0.3 watermarks), 64-chunk queues, full speed, SoA flow
    store, stateful forwarding, no teardown. *)

val validate : t -> (t, string) result
(** All range checks; returns the config unchanged when valid. *)

val chunk_tx_time : t -> rate:float -> float
(** Serialisation time of one chunk at [rate]. *)
