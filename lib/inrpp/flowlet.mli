(** Flowlet pinning (Sinha et al., cited by the paper for detour
    granularity).

    A flow's packets within one burst must stay on one route to avoid
    reordering; after an idle gap longer than [gap] the flow may be
    re-pinned to a different route.  The router consults this table
    when the detour phase considers moving a flow off the primary
    path. *)

type route =
  | Primary
  | Via of int
      (** index into the link's detour-candidate list *)

type t

val create : gap:float -> t
(** @raise Invalid_argument if [gap < 0.]. *)

val choose :
  t -> flow:int -> now:float -> preferred:route -> route
(** [choose t ~flow ~now ~preferred]: if the flow is mid-flowlet
    (last packet within [gap]), keep its pinned route; otherwise pin
    [preferred] and return it.  Always updates the last-packet time. *)

val current : t -> flow:int -> route option

val forget : t -> flow:int -> unit
(** Drop the flow's pin (flow teardown); the next {!choose} re-pins
    from scratch.  No-op when the flow has no entry. *)

val active_flows : t -> int
