(** Per-interface phase machine (paper §3.3).

    {v
    Push ── ratio ≥ engage, detour usable ──▶ Detour
    Push ── ratio ≥ engage, no detour ──────▶ Backpressure
    Detour ── custody pressure ─────────────▶ Backpressure
    Detour ── ratio ≤ release ──────────────▶ Push
    Backpressure ── custody drained and ratio ≤ release ──▶ Push
    v}

    Dual thresholds give hysteresis so estimator noise does not flap
    the interface between phases (link-swap stability, §4). *)

type phase =
  | Push_data
  | Detour
  | Backpressure

type t

val create : engage:float -> release:float -> t
(** @raise Invalid_argument unless [0 <= release < engage]. *)

val current : t -> phase

val update :
  t -> ratio:float -> detour_usable:bool -> custody_pressure:bool ->
  custody_drained:bool -> phase
(** Feed the latest estimator ratio and local state; returns the (new)
    phase.  [custody_pressure]: the custody region crossed its high
    watermark.  [custody_drained]: it fell below the low one. *)

val to_string : phase -> string
val transitions : t -> int
(** Number of phase changes so far (a stability metric). *)
