type t = {
  chunk_bits : float;
  anticipation : int;
  initial_request_rate : float;
  request_timeout : float;
  timeout_backoff : float;
  timeout_backoff_cap : float;
  ti : float;
  estimator_alpha : float;
  engage_ratio : float;
  release_ratio : float;
  max_detour : int;
  flowlet_gap : float;
  detour_queue_threshold : float;
  cache_bits : float;
  cache_high_water : float;
  cache_low_water : float;
  queue_bits : float;
  speed_factor : float;
  drr_scheduler : bool;
  icn_caching : bool;
  flow_store : [ `Soa | `Legacy ];
  pitless : bool;
  flow_teardown : bool;
}

let default =
  {
    chunk_bits = 10e3 *. 8.;
    anticipation = 8;
    initial_request_rate = 100.;
    request_timeout = 0.2;
    timeout_backoff = 1.;
    timeout_backoff_cap = 32.;
    ti = 0.04;
    estimator_alpha = 0.3;
    engage_ratio = 0.95;
    release_ratio = 0.75;
    max_detour = 2;
    flowlet_gap = 0.02;
    detour_queue_threshold = 0.5;
    cache_bits = 4e6 *. 8.;
    cache_high_water = 0.7;
    cache_low_water = 0.3;
    queue_bits = 64. *. 10e3 *. 8.;
    speed_factor = 1.;
    drr_scheduler = false;
    icn_caching = false;
    flow_store = `Soa;
    pitless = false;
    flow_teardown = false;
  }

let validate c =
  let err msg = Error ("Config: " ^ msg) in
  if c.chunk_bits <= 0. then err "chunk_bits <= 0"
  else if c.anticipation < 0 then err "anticipation < 0"
  else if c.initial_request_rate <= 0. then err "initial_request_rate <= 0"
  else if c.request_timeout <= 0. then err "request_timeout <= 0"
  else if c.timeout_backoff < 1. then err "timeout_backoff < 1"
  else if c.timeout_backoff_cap < 1. then err "timeout_backoff_cap < 1"
  else if c.ti <= 0. then err "ti <= 0"
  else if c.estimator_alpha < 0. || c.estimator_alpha > 1. then
    err "estimator_alpha outside [0,1]"
  else if c.engage_ratio <= c.release_ratio then
    err "engage_ratio must exceed release_ratio"
  else if c.engage_ratio > 2. || c.release_ratio < 0. then
    err "phase ratios out of range"
  else if c.max_detour < 0 then err "max_detour < 0"
  else if c.flowlet_gap < 0. then err "flowlet_gap < 0"
  else if c.detour_queue_threshold <= 0. || c.detour_queue_threshold > 1. then
    err "detour_queue_threshold outside (0,1]"
  else if c.cache_bits <= 0. then err "cache_bits <= 0"
  else if
    not
      (0. <= c.cache_low_water
      && c.cache_low_water < c.cache_high_water
      && c.cache_high_water <= 1.)
  then err "cache watermarks must satisfy 0 <= low < high <= 1"
  else if c.queue_bits <= 0. then err "queue_bits <= 0"
  else if c.speed_factor <= 0. || c.speed_factor > 1. then
    err "speed_factor outside (0,1]"
  else if c.pitless && c.icn_caching then
    err "pitless forwarding has no per-flow content keys for icn_caching"
  else Ok c

let chunk_tx_time c ~rate =
  if rate <= 0. then invalid_arg "Config.chunk_tx_time: rate <= 0";
  c.chunk_bits /. rate
